lib/core/deployment.mli: Mbox Netgraph Netpkt Policy
