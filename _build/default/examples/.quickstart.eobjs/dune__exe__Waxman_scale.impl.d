examples/waxman_scale.ml: Format List Netgraph Ospf Policy Sdm Sim Unix
