lib/core/lp_formulation.ml: Array Candidate Deployment Hashtbl List Lp Mbox Measurement Option Policy Printf Weights Weights_sd
