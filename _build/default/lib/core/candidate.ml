type t = {
  deployment : Deployment.t;
  sets : (int * Policy.Action.nf, Mbox.Middlebox.t list) Hashtbl.t;
}

let implements (dep : Deployment.t) entity nf =
  match entity with
  | Mbox.Entity.Proxy _ -> false
  | Mbox.Entity.Middlebox i ->
    Policy.Action.equal_nf dep.Deployment.middleboxes.(i).Mbox.Middlebox.nf nf

let compute ?(exclude = []) dep ~k =
  let sets = Hashtbl.create 256 in
  let excluded id = List.mem id exclude in
  let functions = Deployment.functions dep in
  let entities =
    List.init (Array.length dep.Deployment.proxies) (fun i -> Mbox.Entity.Proxy i)
    @ List.init (Array.length dep.Deployment.middleboxes) (fun i ->
          Mbox.Entity.Middlebox i)
  in
  List.iter
    (fun nf ->
      let offering =
        List.filter
          (fun (m : Mbox.Middlebox.t) -> not (excluded m.id))
          (Deployment.middleboxes_of dep nf)
      in
      if offering = [] then
        invalid_arg
          ("Candidate.compute: no middlebox implements "
          ^ Policy.Action.nf_to_string nf);
      let kn = k nf in
      if kn < 1 then invalid_arg "Candidate.compute: k must be >= 1";
      let kn = min kn (List.length offering) in
      List.iter
        (fun entity ->
          if not (implements dep entity nf) then begin
            let ranked =
              List.sort
                (fun (a : Mbox.Middlebox.t) (b : Mbox.Middlebox.t) ->
                  let da = Deployment.distance dep entity (Mbox.Entity.Middlebox a.id)
                  and db = Deployment.distance dep entity (Mbox.Entity.Middlebox b.id) in
                  match compare da db with 0 -> compare a.id b.id | c -> c)
                offering
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: rest -> x :: take (n - 1) rest
            in
            Hashtbl.replace sets (Mbox.Entity.hash_key entity, nf) (take kn ranked)
          end)
        entities)
    functions;
  { deployment = dep; sets }

let get t entity nf =
  if implements t.deployment entity nf then
    invalid_arg "Candidate.get: entity implements the function itself";
  match Hashtbl.find_opt t.sets (Mbox.Entity.hash_key entity, nf) with
  | Some l -> l
  | None -> raise Not_found

let closest t entity nf =
  match get t entity nf with
  | [] -> assert false (* compute guarantees non-empty sets *)
  | m :: _ -> m

let fingerprint t entity =
  let functions = List.sort Policy.Action.compare_nf (Deployment.functions t.deployment) in
  List.concat_map
    (fun nf ->
      if implements t.deployment entity nf then []
      else
        let ids = List.map (fun (m : Mbox.Middlebox.t) -> m.id) (get t entity nf) in
        -1 :: ids)
    functions

let deployment t = t.deployment
