(* Smoke tests for the report renderers: every printer must produce
   non-empty, well-formed output for real experiment results, and the
   CSV exports must be structurally valid. *)

let render pp v =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let small_figure () =
  Sim.Experiment.run_figure Sim.Experiment.Campus ~flow_counts:[ 2_000 ] ()

let test_figure_rendering () =
  let fig = small_figure () in
  let out = render Sim.Report.pp_figure fig in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [ "campus"; "-- FW --"; "-- IDS --"; "-- WP --"; "-- TM --"; "HP"; "Rand"; "LB" ]

let test_figure_csv () =
  let fig = small_figure () in
  let csv = Sim.Report.figure_csv fig in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  (* Header plus one row per (4 types x 1 volume point). *)
  Alcotest.(check int) "row count" 5 (List.length lines);
  Alcotest.(check string) "header" "nf,flows,packets,hp,rand,lb" (List.hd lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "six columns" 6
        (List.length (String.split_on_char ',' line)))
    lines

let test_table3_rendering_and_csv () =
  let rows = Sim.Experiment.run_table3 ~flows:2_000 () in
  let out = render Sim.Report.pp_table3 rows in
  Alcotest.(check bool) "mentions max" true (contains out "max.");
  Alcotest.(check bool) "mentions min" true (contains out "min.");
  let csv = Sim.Report.table3_csv rows in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 4 types" 5 (List.length lines)

let test_millions () =
  Alcotest.(check string) "millions" "1.66M" (Sim.Report.millions 1_660_000.0);
  Alcotest.(check string) "thousands" "12.7k" (Sim.Report.millions 12_737.0);
  Alcotest.(check string) "units" "42" (Sim.Report.millions 42.0)

let test_ablation_printers () =
  (* Tiny runs through every remaining printer. *)
  let cache = Sim.Experiment.ablation_cache ~flows:100 () in
  Alcotest.(check bool) "cache report" true
    (contains (render Sim.Report.pp_cache_ablation cache) "lookup fraction");
  let frag = Sim.Experiment.ablation_fragmentation ~flows:100 () in
  Alcotest.(check bool) "frag report" true
    (contains (render Sim.Report.pp_frag_ablation frag) "label switching");
  let lat = Sim.Experiment.ablation_latency ~flows:100 () in
  Alcotest.(check bool) "latency report" true
    (contains (render Sim.Report.pp_latency_ablation lat) "overhead")

let suite =
  [
    Alcotest.test_case "figure rendering" `Slow test_figure_rendering;
    Alcotest.test_case "figure CSV" `Slow test_figure_csv;
    Alcotest.test_case "table3 rendering and CSV" `Slow test_table3_rendering_and_csv;
    Alcotest.test_case "millions formatting" `Quick test_millions;
    Alcotest.test_case "ablation printers" `Slow test_ablation_printers;
  ]
