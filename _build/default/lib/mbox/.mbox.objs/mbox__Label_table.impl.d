lib/mbox/label_table.ml: Hashtbl List Netpkt Policy
