type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;
  sport : int;
  dport : int;
  ttl : int;
  label : int option;
}

let size = 20
let max_label = (1 lsl 21) - 1

let make ?(ttl = 64) ~src ~dst ~proto ~sport ~dport () =
  { src; dst; proto; sport; dport; ttl; label = None }

let of_flow ?ttl f =
  make ?ttl ~src:f.Flow.src ~dst:f.Flow.dst ~proto:f.Flow.proto
    ~sport:f.Flow.sport ~dport:f.Flow.dport ()

let flow t =
  Flow.make ~src:t.src ~dst:t.dst ~proto:t.proto ~sport:t.sport ~dport:t.dport

let with_label t l =
  if l < 0 || l > max_label then invalid_arg "Header.with_label: label out of range";
  { t with label = Some l }

let clear_label t = { t with label = None }
let with_dst t dst = { t with dst }
let with_src t src = { t with src }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let pp ppf t =
  Format.fprintf ppf "%s:%d>%s:%d/%d ttl=%d%s" (Addr.to_string t.src) t.sport
    (Addr.to_string t.dst) t.dport t.proto t.ttl
    (match t.label with None -> "" | Some l -> Printf.sprintf " label=%d" l)
