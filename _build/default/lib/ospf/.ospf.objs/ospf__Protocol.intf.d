lib/ospf/protocol.mli: Netgraph
