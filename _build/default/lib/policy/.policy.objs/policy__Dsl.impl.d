lib/policy/dsl.ml: Action Buffer Descriptor List Netpkt Option Printf Result Rule String
