lib/mbox/label_table.mli: Netpkt Policy
