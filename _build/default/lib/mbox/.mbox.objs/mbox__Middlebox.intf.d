lib/mbox/middlebox.mli: Format Netpkt Policy
