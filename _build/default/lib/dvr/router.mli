(** A distance-vector router (EIGRP-flavoured, simplified).

    The paper's networks "forward packets based on classical routing
    protocols such as OSPF and EIGRP"; this is the EIGRP-side
    substrate: each router keeps, per destination, the best known
    distance and the neighbour it goes through, and advertises its
    vector to neighbours with split horizon and poisoned reverse.
    Without link failures (our simulations are static once converged)
    the protocol converges to exact shortest-path distances, and
    because every next hop strictly decreases the distance to the
    destination, the resulting hop-by-hop forwarding is loop-free. *)

type t

type advertisement = {
  from : int;
  entries : (int * float) list;
      (** (destination, distance); [infinity] = poisoned *)
}

val create : id:int -> neighbors:(int * float) list -> t

val id : t -> int

val initial_advertisements : t -> (int * advertisement) list
(** The self-route announcements to send each neighbour at start-up
    (per-neighbour because of poisoned reverse). *)

val receive : t -> advertisement -> bool
(** Integrate a neighbour's vector; [true] when any route changed
    (meaning new advertisements must be emitted). *)

val advertisement_for : t -> neighbor:int -> advertisement
(** The current vector as seen by one neighbour: routes through that
    neighbour are poisoned to [infinity]. *)

val distances : t -> node_count:int -> float array
(** Current best distances ([infinity] where unknown). *)

val table : t -> node_count:int -> Netgraph.Routing.table
(** Forwarding table from the current routes. *)
