lib/sim/controlplane.ml: Array Format List Mbox Netgraph Policy Sdm
