(** Packets, possibly IP-over-IP encapsulated.

    A packet is a header plus either an opaque payload (sized in
    bytes) or a whole inner packet — the hot-potato strategy tunnels
    the original packet as the payload of a fresh outer header, which
    adds {!Header.size} bytes and is what may push the packet over the
    MTU (Sec. III.E's motivation for label switching). *)

type body = Payload of int | Encap of t

and t = { header : Header.t; body : body }

val plain : Header.t -> payload_bytes:int -> t
(** Raises [Invalid_argument] on a negative payload size. *)

val size : t -> int
(** Total on-wire bytes, headers included (inner headers too). *)

val encapsulate : src:Addr.t -> dst:Addr.t -> t -> t
(** Wrap in an outer IP header (protocol 4, IP-in-IP).  The inner
    packet is untouched. *)

val decapsulate : t -> t option
(** Strip one outer header; [None] if the packet is not encapsulated. *)

val is_encapsulated : t -> bool

val inner_flow : t -> Flow.t
(** The 5-tuple of the innermost header — what policies match on. *)

val innermost : t -> t

val pp : Format.formatter -> t -> unit
