(* Replicated controller: quorum agreement and audited failover.

   A narrative for the replicated control plane: three controller
   replicas at distinct attachment routers run the live
   re-optimization loop over a lossy control channel.  Every candidate
   configuration goes through a propose/accept/commit quorum round and
   is pushed to the data plane only once a majority accepted it.  Two
   failure stories:

   - the lead replica crashes mid-run: its in-flight pushes die, a
     standby is deterministically re-elected one detection delay
     later, and the new leader re-optimizes and carries on;
   - a split-brain partition isolates the leader on the minority side:
     its rounds can no longer reach quorum, so it refuses to publish
     and the data plane keeps running on the last committed
     configuration until the partition heals.

   Both runs are audited online: the quorum-agreement invariant
   certifies that no version was ever published without a commit and
   that no two replicas committed different configs for one version.

     dune exec examples/quorum_failover.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows:300 () in
  let rules = workload.Sim.Workload.rules in
  let hp =
    match Sdm.Controller.configure deployment ~rules Sdm.Controller.Hot_potato with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* A fault-free probe fixes the horizon the epochs and faults are
     placed within. *)
  let probe = Sim.Pktsim.run ~controller:hp ~workload () in
  let horizon = probe.Sim.Pktsim.sim_time in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = horizon /. 5.0;
      reconcile_interval = horizon /. 20.0;
      replicas = 3;
    }
  in
  let report name (s : Sim.Pktsim.stats) =
    Format.printf "%s:@." name;
    Format.printf
      "  versions committed+published %d; rounds %d (commits %d, aborts %d)@."
      s.Sim.Pktsim.final_config_version s.Sim.Pktsim.quorum_rounds
      s.Sim.Pktsim.quorum_commits s.Sim.Pktsim.quorum_aborts;
    Format.printf
      "  quorum traffic: %d messages, %d lost; leader changes %d; degraded %d@."
      s.Sim.Pktsim.quorum_msgs s.Sim.Pktsim.quorum_lost
      s.Sim.Pktsim.leader_changes s.Sim.Pktsim.config_degraded;
    Format.printf "  per-replica committed versions: %s@."
      (String.concat ", "
         (Array.to_list
            (Array.map string_of_int s.Sim.Pktsim.replica_versions)));
    (match s.Sim.Pktsim.audit_report with
    | Some r ->
      Format.printf "  audit: %d events checked, %d violations@."
        r.Audit.Checker.events r.Audit.Checker.violations
    | None -> ());
    Format.printf "@."
  in
  let run name events =
    let faults =
      Fault.Schedule.make ~control_loss:0.05 ~loss_seed:23 events
    in
    report name
      (Sim.Pktsim.run
         ~config:
           {
             Sim.Pktsim.default_config with
             faults = Some faults;
             live = Some live;
             audit = true;
           }
         ~controller:hp ~workload ())
  in

  Format.printf
    "three controller replicas, majority quorum, 5%% control loss@.@.";

  (* Story 1: the lead replica (replica 0) crashes at 30% of the
     horizon and never comes back.  One detection delay later the
     lowest-id survivor takes over. *)
  run "leader crash + failover"
    Fault.Schedule.[ { at = 0.3 *. horizon; what = Ctrl_crash 0 } ];

  (* Story 2: split brain.  Every link of the leader's attachment
     router fails at 35% of the horizon and is restored at 70%: the
     leader ends up alone on the minority side, its quorum rounds
     abort, and nothing is published until the partition heals. *)
  let leader_router = Sim.Controlplane.default_router deployment in
  let cut =
    List.map
      (fun { Netgraph.Graph.dst; _ } -> (leader_router, dst))
      (Netgraph.Graph.neighbors
         deployment.Sdm.Deployment.topo.Netgraph.Topology.graph leader_router)
  in
  run "split-brain partition"
    (List.map
       (fun (u, v) ->
         Fault.Schedule.{ at = 0.35 *. horizon; what = Link_fail (u, v) })
       cut
    @ List.map
        (fun (u, v) ->
          Fault.Schedule.
            { at = 0.7 *. horizon; what = Link_restore (u, v) })
        cut)
