(** Two-phase dense primal simplex.

    Solves  min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0.

    Phase 1 minimises the sum of artificial variables to find a basic
    feasible solution; phase 2 optimises the real objective.  Pricing
    is Dantzig (most negative reduced cost) with a permanent switch to
    Bland's rule after a long degenerate streak, which guarantees
    termination.  Dense float arrays throughout: the paper's Eq. (2)
    instances stay in the low thousands of variables, where a dense
    tableau is simple and fast enough.

    This module is the raw engine; prefer the {!Model} builder. *)

type sense = Le | Ge | Eq

type result =
  | Optimal of float array (** optimal values of the structural variables *)
  | Infeasible
  | Unbounded

val solve : cost:float array -> rows:(float array * sense * float) array -> result
(** [solve ~cost ~rows]: [cost] has one entry per structural variable;
    each row is (coefficients, sense, rhs) with coefficient arrays of
    the same length.  Raises [Invalid_argument] on ragged input and
    [Failure] if the iteration cap (a defensive bound far above any
    realistic run) is hit. *)
