(** FNV-1a hashing.

    Used for flow-identifier hashing: the paper's probabilistic
    middlebox selection hashes the 5-tuple of a packet to a value [r]
    in [\[0, N)] and picks the candidate whose cumulative weight bucket
    contains [r].  The hash must be deterministic across runs, which
    rules out OCaml's seeded [Hashtbl.hash]. *)

val fnv_offset : int64
val fnv_prime : int64

val string : string -> int64
(** FNV-1a over the bytes of a string. *)

val fold_int : int64 -> int -> int64
(** [fold_int acc n] mixes the 8 bytes of [n] into the running hash
    [acc].  Start from {!fnv_offset}. *)

val ints : int list -> int64
(** Hash a list of ints (e.g. the fields of a flow identifier). *)

(** {2 Non-allocating entry points}

    Bit-identical to folding the same ints with {!ints} /
    {!fold_int}, but computed in two 32-bit native-int limbs so the
    per-packet fast path boxes nothing until the final result (and,
    for the [_unit] variants, nothing at all beyond the returned
    float).  The test suite pins the old/new agreement. *)

val combine2 : int -> int -> int64
(** [combine2 a b = ints [a; b]], without intermediate boxing. *)

val combine3 : int -> int -> int -> int64
(** [combine3 a b c = ints [a; b; c]]. *)

val combine5 : int -> int -> int -> int -> int -> int64
(** [combine5 a b c d e = ints [a; b; c; d; e]] — the 5-tuple flow
    hash. *)

val combine7 : int -> int -> int -> int -> int -> int -> int -> int64
(** Seven-int fold: flow 5-tuple plus entity key plus salt — the
    rendezvous/steering key. *)

val combine7_unit : int -> int -> int -> int -> int -> int -> int -> float
(** [to_unit_interval (combine7 ...)] without boxing the hash. *)

val score_unit : int64 -> int -> float
(** [score_unit key salt = to_unit_interval (fmix64 (fold_int key
    salt))] without boxing any intermediate: the per-candidate
    rendezvous score. *)

val mix2_int : int -> int -> int
(** Non-negative native-int mixer for open-addressing probe
    sequences.  Deterministic but {e not} FNV — do not feed its value
    into anything a digest or an oracle pins. *)

val fmix64 : int64 -> int64
(** Murmur3's 64-bit avalanche finalizer: a bijection on [int64] under
    which a single-bit input change flips every output bit with
    probability ~1/2.  Applied after an FNV-1a fold when downstream
    consumers need independent-looking hashes — rendezvous selection
    scores, and the per-entry hashes XOR-folded into order-independent
    state digests (a raw FNV hash would let correlated entries cancel). *)

val to_unit_interval : int64 -> float
(** Map a hash to a float in [\[0, 1)], uniformly. *)

val to_range : int64 -> int -> int
(** [to_range h n] maps a hash to [\[0, n)].  [n] must be > 0. *)
