lib/policy/rule.ml: Action Descriptor Format List
