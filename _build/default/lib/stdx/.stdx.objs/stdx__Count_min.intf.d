lib/stdx/count_min.mli:
