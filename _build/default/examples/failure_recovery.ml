(* Failure recovery: the "dependable" in dependable policy enforcement.

   A middlebox dies mid-epoch.  Three things can happen to the traffic
   that was flowing through it:

   1. nothing (unacceptable — packets would blackhole);
   2. local fast failover: every proxy/middlebox skips the dead
      candidate and renormalises its forwarding weights over the
      survivors — no controller involvement, stale LP weights;
   3. controller re-optimization: failure is reported, the controller
      recomputes candidate sets without the dead box and re-solves the
      load-balancing LP.

   This example kills the busiest IDS middlebox on the campus topology
   and measures all three strategies through the transition.  Policy
   enforcement is never interrupted: every flow still traverses its
   full chain (asserted at the end).

     dune exec examples/failure_recovery.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let flows = 60_000 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let lb =
    match
      Sdm.Controller.configure deployment ~rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let before = Sim.Flowsim.run ~controller:lb ~workload () in

  (* Pick the busiest IDS box as the victim. *)
  let ids_boxes = Sdm.Deployment.middleboxes_of deployment Policy.Action.IDS in
  let victim =
    List.fold_left
      (fun best (m : Mbox.Middlebox.t) ->
        if before.Sim.Flowsim.loads.(m.id) > before.Sim.Flowsim.loads.(best) then
          m.id
        else best)
      (List.hd ids_boxes).Mbox.Middlebox.id ids_boxes
  in
  Format.printf "victim: mbox%d (IDS), carrying %s packets before failure@."
    victim
    (Sim.Report.millions before.Sim.Flowsim.loads.(victim));

  let ids_max result =
    List.fold_left
      (fun acc (m : Mbox.Middlebox.t) ->
        if m.id = victim then acc else max acc result.Sim.Flowsim.loads.(m.id))
      0.0 ids_boxes
  in
  Format.printf "max IDS load before failure: %s@."
    (Sim.Report.millions (ids_max before));

  (* Phase 1: fast failover, stale weights. *)
  let alive id = id <> victim in
  let failover = Sim.Flowsim.run ~alive ~controller:lb ~workload () in
  assert (failover.Sim.Flowsim.loads.(victim) = 0.0);
  Format.printf "@.phase 1 - local fast failover (no controller):@.";
  Format.printf "  max surviving IDS load: %s@."
    (Sim.Report.millions (ids_max failover));

  (* Phase 2: the controller re-optimizes without the victim. *)
  let reopt =
    match
      Sdm.Controller.configure deployment ~rules ~failed:[ victim ]
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let after = Sim.Flowsim.run ~controller:reopt ~workload () in
  assert (after.Sim.Flowsim.loads.(victim) = 0.0);
  Format.printf "@.phase 2 - controller re-optimization:@.";
  Format.printf "  max surviving IDS load: %s (LP optimum %s)@."
    (Sim.Report.millions (ids_max after))
    (Sim.Report.millions
       (Option.get reopt.Sdm.Controller.lp).Sdm.Lp_formulation.lambda);

  (* Enforcement never lapses: total middlebox work is identical in all
     three runs (every flow still visits its full chain). *)
  let total r = Array.fold_left ( +. ) 0.0 r.Sim.Flowsim.loads in
  assert (abs_float (total before -. total failover) < 1e-6);
  assert (abs_float (total before -. total after) < 1e-6);
  Format.printf
    "@.every flow kept its full chain through both phases (total middlebox \
     work unchanged: %s packet-hops).@."
    (Sim.Report.millions (total before))
