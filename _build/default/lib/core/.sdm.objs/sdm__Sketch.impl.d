lib/core/sketch.ml: Array List Measurement Policy Stdx
