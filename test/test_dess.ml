(* Tests for the discrete-event engine: ordering, FIFO stability,
   cancellation, horizons. *)

let test_empty_run () =
  let e = Dess.Engine.create () in
  Dess.Engine.run e;
  Alcotest.(check (float 1e-9)) "time stays 0" 0.0 (Dess.Engine.now e);
  Alcotest.(check int) "no events" 0 (Dess.Engine.events_processed e)

let test_time_ordering () =
  let e = Dess.Engine.create () in
  let log = ref [] in
  ignore (Dess.Engine.schedule e ~delay:3.0 (fun _ -> log := 3 :: !log));
  ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> log := 1 :: !log));
  ignore (Dess.Engine.schedule e ~delay:2.0 (fun _ -> log := 2 :: !log));
  Dess.Engine.run e;
  Alcotest.(check (list int)) "fire order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "final clock" 3.0 (Dess.Engine.now e)

let test_fifo_same_time () =
  let e = Dess.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> log := i :: !log))
  done;
  Dess.Engine.run e;
  Alcotest.(check (list int)) "insertion order at same instant"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_nested_scheduling () =
  let e = Dess.Engine.create () in
  let log = ref [] in
  ignore
    (Dess.Engine.schedule e ~delay:1.0 (fun e ->
         log := `A :: !log;
         ignore
           (Dess.Engine.schedule e ~delay:0.5 (fun _ -> log := `B :: !log))));
  ignore (Dess.Engine.schedule e ~delay:2.0 (fun _ -> log := `C :: !log));
  Dess.Engine.run e;
  Alcotest.(check int) "three events" 3 (Dess.Engine.events_processed e);
  match List.rev !log with
  | [ `A; `B; `C ] -> ()
  | _ -> Alcotest.fail "nested event misordered"

let test_cancel () =
  let e = Dess.Engine.create () in
  let fired = ref false in
  let h = Dess.Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Dess.Engine.cancel e h;
  Dess.Engine.run e;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_cancel_after_fire_is_noop () =
  let e = Dess.Engine.create () in
  let h = Dess.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  Dess.Engine.run e;
  Dess.Engine.cancel e h;
  ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> ()));
  Dess.Engine.run e;
  Alcotest.(check int) "second event still fires" 2 (Dess.Engine.events_processed e)

let test_run_until () =
  let e = Dess.Engine.create () in
  let log = ref [] in
  ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> log := 1 :: !log));
  ignore (Dess.Engine.schedule e ~delay:5.0 (fun _ -> log := 5 :: !log));
  Dess.Engine.run ~until:2.0 e;
  Alcotest.(check (list int)) "only early events" [ 1 ] (List.rev !log);
  Alcotest.(check int) "late event still pending" 1 (Dess.Engine.pending e);
  Dess.Engine.run e;
  Alcotest.(check (list int)) "late event eventually fires" [ 1; 5 ] (List.rev !log)

let test_negative_delay () =
  let e = Dess.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Dess.Engine.schedule e ~delay:(-1.0) (fun _ -> ())))

let test_schedule_at_past () =
  let e = Dess.Engine.create () in
  ignore (Dess.Engine.schedule e ~delay:2.0 (fun _ -> ()));
  Dess.Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Dess.Engine.schedule_at e ~time:1.0 (fun _ -> ())))

let test_step () =
  let e = Dess.Engine.create () in
  let n = ref 0 in
  ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> incr n));
  ignore (Dess.Engine.schedule e ~delay:2.0 (fun _ -> incr n));
  Alcotest.(check bool) "first step" true (Dess.Engine.step e);
  Alcotest.(check int) "one fired" 1 !n;
  Alcotest.(check bool) "second step" true (Dess.Engine.step e);
  Alcotest.(check bool) "exhausted" false (Dess.Engine.step e)

let test_event_counters () =
  let e = Dess.Engine.create () in
  Alcotest.(check int) "nothing scheduled" 0 (Dess.Engine.events_scheduled e);
  let h = Dess.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  ignore
    (Dess.Engine.schedule e ~delay:2.0 (fun e ->
         ignore (Dess.Engine.schedule e ~delay:1.0 (fun _ -> ()))));
  Dess.Engine.cancel e h;
  Dess.Engine.run e;
  (* events_scheduled counts every schedule call, including the nested
     one and the cancelled one; events_processed skips the cancelled. *)
  Alcotest.(check int) "scheduled" 3 (Dess.Engine.events_scheduled e);
  Alcotest.(check int) "processed" 2 (Dess.Engine.events_processed e)

let qcheck_ordering =
  QCheck.Test.make ~count:100 ~name:"events always fire in time order"
    QCheck.(list (float_range 0.0 100.0))
    (fun delays ->
      let e = Dess.Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          ignore (Dess.Engine.schedule e ~delay:d (fun e -> fired := Dess.Engine.now e :: !fired)))
        delays;
      Dess.Engine.run e;
      let fired = List.rev !fired in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted fired && List.length fired = List.length delays)

let test_event_pool_reuse () =
  (* Steady state — a self-rescheduling event chain — must recycle
     pooled cells instead of allocating one record per event.  A
     top-level recursive action closes over nothing, so the bracketed
     minor-heap delta is the engine's own footprint: well under a word
     per event once the pool and heap are warm (the pre-pool engine
     cost ~15 words/event in records and heap churn). *)
  let rec tick e =
    if Dess.Engine.events_processed e < 50_000 then
      ignore (Dess.Engine.schedule e ~delay:1.0 tick)
  in
  let e = Dess.Engine.create () in
  (* Warm-up: reach steady state (pool grown, heap array sized). *)
  ignore (Dess.Engine.schedule e ~delay:1.0 tick);
  Dess.Engine.run ~until:10_000.0 e;
  let processed0 = Dess.Engine.events_processed e in
  let before = Gc.minor_words () in
  Dess.Engine.run e;
  let fired = Dess.Engine.events_processed e - processed0 in
  let per_event = (Gc.minor_words () -. before) /. float_of_int fired in
  Alcotest.(check bool) "chain ran" true (fired > 30_000);
  if per_event > 1.0 then
    Alcotest.failf "steady state allocates %.2f minor words/event" per_event

let suite =
  [
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "time ordering" `Quick test_time_ordering;
    Alcotest.test_case "FIFO at same instant" `Quick test_fifo_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_is_noop;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "negative delay" `Quick test_negative_delay;
    Alcotest.test_case "schedule_at past" `Quick test_schedule_at_past;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "event counters" `Quick test_event_counters;
    QCheck_alcotest.to_alcotest qcheck_ordering;
    Alcotest.test_case "event pool reuse" `Quick test_event_pool_reuse;
  ]
