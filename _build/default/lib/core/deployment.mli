(** A deployment: topology + middleboxes + policy proxies.

    The controller's static world view (Sec. III.B: "configured with
    the complete network topology with subnet addresses, the placement
    of all middleboxes").  Construction precomputes all-pairs
    shortest-path distances over the router graph; entity-to-entity
    distances reduce to attachment-router distances because both
    in-path and off-path attachments are transparent to routing. *)

type t = {
  topo : Netgraph.Topology.t;
  middleboxes : Mbox.Middlebox.t array;  (** indexed by middlebox id *)
  proxies : Mbox.Proxy.t array;          (** indexed by proxy id *)
  dist : float array array;              (** router-to-router shortest-path cost *)
  subnet_order : (int * int * int) array;
      (** (base, prefix length, proxy id) sorted by base — the binary-
          search index behind {!proxy_of_addr}.  Subnets are disjoint,
          so the greatest base <= addr is the only candidate. *)
}

val make :
  topo:Netgraph.Topology.t ->
  middleboxes:Mbox.Middlebox.t array ->
  proxies:Mbox.Proxy.t array ->
  t
(** Validates ids are dense (array position = id), attachment routers
    exist, middlebox addresses are unique, and proxy subnets are
    disjoint. *)

val entity_router : t -> Mbox.Entity.t -> int

val distance : t -> Mbox.Entity.t -> Mbox.Entity.t -> float

val middleboxes_of : t -> Policy.Action.nf -> Mbox.Middlebox.t list
(** The paper's [M^e], ascending id. *)

val functions : t -> Policy.Action.nf list
(** The paper's Pi: distinct functions implemented by the deployment,
    in first-appearance order. *)

val proxy_of_addr : t -> Netpkt.Addr.t -> Mbox.Proxy.t option
(** The proxy whose stub subnet contains the address.  O(log #proxies)
    — hot enough to sit on the per-packet path of the simulators. *)

val middlebox_of_addr : t -> Netpkt.Addr.t -> Mbox.Middlebox.t option

val subnet_of : t -> int -> Netpkt.Addr.Prefix.t
(** Subnet of proxy [i]. *)

(* {2 Standard builders} *)

val mbox_addr : int -> Netpkt.Addr.t
(** 192.168.x.y address assigned to middlebox id. *)

val proxy_addr : int -> Netpkt.Addr.t
(** 10.x.y.1 address assigned to proxy id. *)

val proxy_subnet : int -> Netpkt.Addr.Prefix.t
(** 10.x.y.0/24 stub subnet of proxy id. *)

val standard :
  topo:Netgraph.Topology.t ->
  mbox_counts:(Policy.Action.nf * int) list ->
  seed:int ->
  t
(** The evaluation's deployment recipe: one proxy per edge router
    (subnet 10.i.0/24-style), and for each (function, count) pair that
    many middleboxes attached to randomly chosen core routers. *)
