let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) fnv_prime

let string s =
  let acc = ref fnv_offset in
  String.iter (fun c -> acc := byte !acc (Char.code c)) s;
  !acc

let fold_int acc n =
  let acc = ref acc in
  for shift = 0 to 7 do
    acc := byte !acc ((n lsr (shift * 8)) land 0xff)
  done;
  !acc

let ints l = List.fold_left fold_int fnv_offset l

(* Murmur3's 64-bit avalanche finalizer.  FNV-1a alone leaves hashes
   of near-identical inputs correlated (only the trailing bytes
   differ); the finalizer flips every output bit with probability ~1/2
   under a single-bit input change, which is what both the rendezvous
   selector and the order-independent state digests need. *)
let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xC4CEB9FE1A85EC53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

(* Use the top 53 bits so the float mantissa is filled uniformly. *)
let to_unit_interval h =
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits /. 9007199254740992.0

let to_range h n =
  if n <= 0 then invalid_arg "Xhash.to_range: n must be positive";
  let v = Int64.to_int h land max_int in
  v mod n
