lib/core/sketch.mli: Measurement Policy
