(** Control-plane cost model.

    The paper's architectural argument is that the SDM controller is
    cheap to operate: it talks only to proxies and middleboxes (not to
    every switch), only at configuration time (never per flow), and —
    with Eq. (2)'s aggregated variables — ships small weight tables.
    This module prices that traffic over the real topology: each
    entity's configuration travels hop-by-hop from the controller's
    attachment router, and each proxy's measurement report travels
    back.

    Sizes are modelled with fixed per-item byte costs (policy row
    16 B, candidate entry 4 B, weight cell 12 B, measurement cell
    12 B) — crude, but uniform across the formulations being
    compared. *)

type report = {
  controller_router : int;
  devices_managed : int;     (** proxies + middleboxes *)
  routers_total : int;       (** what an SDN controller would manage *)
  config_messages : int;     (** one per managed device *)
  config_bytes : int;
  config_byte_hops : int;    (** Σ bytes x hop count — network cost *)
  time_to_configure : float; (** max hops x link delay *)
  report_bytes_per_epoch : int; (** proxies' measurement reports *)
}

val device_count : Sdm.Deployment.t -> int
(** Proxies plus middleboxes — everything the controller configures. *)

val device_of_entity : Sdm.Deployment.t -> Mbox.Entity.t -> int
(** Flat device index: proxies first (by id), then middleboxes.  The
    convention shared by {!Pktsim}'s per-device statistics and the
    audit layer's [Config_install] events. *)

val entity_of_device : Sdm.Deployment.t -> int -> Mbox.Entity.t
(** Inverse of {!device_of_entity}.  Raises [Invalid_argument] out of
    range. *)

val default_router : Sdm.Deployment.t -> int
(** The controller's attachment router when none is given: the first
    gateway, falling back to the first core router. *)

val replica_routers : Sdm.Deployment.t -> primary:int -> n:int -> int list
(** Deterministic attachment routers for [n] controller replicas:
    [primary] first, then the remaining gateways in topology order,
    then the cores.  Raises [Invalid_argument] when [n < 1] or the
    topology lacks [n] distinct transit routers. *)

val entity_bytes : Sdm.Controller.t -> Mbox.Entity.t -> int
(** Size of one entity's configuration under the byte model above —
    also what {!Pktsim}'s live control plane charges per config-push
    message. *)

val price :
  ?controller_router:int ->
  ?link_delay:float ->
  Sdm.Controller.t ->
  traffic:Sdm.Measurement.t ->
  report
(** [controller_router] defaults to the first gateway, falling back to
    the first core router. *)

val pp_report : Format.formatter -> report -> unit
