(* Tests for the LP substrate: the Model builder and the two-phase
   simplex.  Includes a brute-force vertex-enumeration oracle used by
   property tests on random small LPs. *)

let check_float = Alcotest.(check (float 1e-6))

(* --- Hand-checked instances ------------------------------------- *)

let test_trivial_min () =
  (* min x  s.t. x >= 3 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 3.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 3.0 sol.Lp.Model.objective;
    check_float "x" 3.0 (Lp.Model.value sol x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_two_var () =
  (* min -x - 2y  s.t. x + y <= 4; x <= 2; y <= 3.  Optimum at (1,3): -7. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 4.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, y) ] Lp.Model.Le 3.0;
  Lp.Model.set_objective m [ (-1.0, x); (-2.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" (-7.0) sol.Lp.Model.objective;
    check_float "x" 1.0 (Lp.Model.value sol x);
    check_float "y" 3.0 (Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_equality () =
  (* min x + y  s.t. x + y = 5; x - y = 1.  Unique point (3,2): 5. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Eq 5.0;
  Lp.Model.add_constraint m [ (1.0, x); (-1.0, y) ] Lp.Model.Eq 1.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 5.0 sol.Lp.Model.objective;
    check_float "x" 3.0 (Lp.Model.value sol x);
    check_float "y" 2.0 (Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_infeasible () =
  (* x <= 1 and x >= 2 cannot both hold. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 2.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Infeasible -> ()
  | o -> Alcotest.failf "expected infeasible, got %a" Lp.Model.pp_outcome o

let test_unbounded () =
  (* min -x  s.t. x >= 0 only. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.set_objective m [ (-1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Unbounded -> ()
  | o -> Alcotest.failf "expected unbounded, got %a" Lp.Model.pp_outcome o

let test_negative_rhs () =
  (* min x  s.t. -x <= -4  (i.e. x >= 4). *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (-1.0, x) ] Lp.Model.Le (-4.0);
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol -> check_float "x" 4.0 (Lp.Model.value sol x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_degenerate () =
  (* Redundant constraints stressing degenerate pivots. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
  Lp.Model.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 1.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol -> check_float "objective" (-1.0) sol.Lp.Model.objective
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_redundant_equalities () =
  (* A duplicated equality leaves a redundant row in phase 1. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Eq 2.0;
  Lp.Model.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Model.Eq 4.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "objective" 0.0 sol.Lp.Model.objective;
    check_float "sum" 2.0 (Lp.Model.value sol x +. Lp.Model.value sol y)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

let test_min_max_load_shape () =
  (* A miniature of the paper's LP: route volume 10 from s to two
     servers y1 (capacity 1) and y2 (capacity 4), minimising the max
     load factor lambda:
       min l  s.t.  t1 + t2 = 10;  t1 <= l*1;  t2 <= l*4.
     Optimum: l = 2, t1 = 2, t2 = 8. *)
  let m = Lp.Model.create () in
  let t1 = Lp.Model.var m "t1"
  and t2 = Lp.Model.var m "t2"
  and l = Lp.Model.var m "lambda" in
  Lp.Model.add_constraint m [ (1.0, t1); (1.0, t2) ] Lp.Model.Eq 10.0;
  Lp.Model.add_constraint m [ (1.0, t1); (-1.0, l) ] Lp.Model.Le 0.0;
  Lp.Model.add_constraint m [ (1.0, t2); (-4.0, l) ] Lp.Model.Le 0.0;
  Lp.Model.set_objective m [ (1.0, l) ];
  match Lp.Model.solve m with
  | Lp.Model.Optimal sol ->
    check_float "lambda" 2.0 (Lp.Model.value sol l);
    check_float "t1" 2.0 (Lp.Model.value sol t1);
    check_float "t2" 8.0 (Lp.Model.value sol t2)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Model.pp_outcome o

(* --- Warm-started re-solves -------------------------------------- *)

(* The warm-start contract under test: [resolve] after in-place edits
   reaches the same verdict and objective as a from-scratch cold
   solve; an unchanged problem warm-solves in exactly zero pivots; and
   every perturbation the basis cannot absorb — structural growth,
   sense flips, infeasibility, unboundedness — falls back to the cold
   two-phase path with [stats.fallback] set, never looping and never
   returning a stale plan. *)

let two_var_model () =
  (* The instance from [test_two_var]: optimum -7 at (1,3). *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 4.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, y) ] Lp.Model.Le 3.0;
  Lp.Model.set_objective m [ (-1.0, x); (-2.0, y) ];
  (m, x, y)

let objective_exn name = function
  | Lp.Model.Optimal sol -> sol.Lp.Model.objective
  | o -> Alcotest.failf "%s: expected optimal, got %a" name Lp.Model.pp_outcome o

let test_warm_noop_zero_pivots () =
  let m, _, _ = two_var_model () in
  let o1, s1, snap = Lp.Model.solve_ext m in
  check_float "cold objective" (-7.0) (objective_exn "cold" o1);
  Alcotest.(check bool) "cold solve is not warm" false s1.Lp.Simplex.warm_used;
  Alcotest.(check bool) "cold solve is not a fallback" false
    s1.Lp.Simplex.fallback;
  let o2, s2, _ = Lp.Model.resolve m ~prev:snap in
  check_float "warm objective" (-7.0) (objective_exn "warm" o2);
  Alcotest.(check bool) "basis carried" true s2.Lp.Simplex.warm_used;
  Alcotest.(check int) "zero pivots on the unchanged problem" 0
    s2.Lp.Simplex.pivots

let test_warm_cost_perturbation () =
  let m, x, y = two_var_model () in
  let _, _, snap = Lp.Model.solve_ext m in
  (* min -2x - y over the same polytope: optimum -6 at (2,2). *)
  Lp.Model.set_objective m [ (-2.0, x); (-1.0, y) ];
  let o, s, _ = Lp.Model.resolve m ~prev:snap in
  check_float "re-optimized objective" (-6.0) (objective_exn "warm" o);
  Alcotest.(check bool) "cost change keeps the basis" true
    s.Lp.Simplex.warm_used

let test_warm_rhs_perturbation () =
  let m, _, _ = two_var_model () in
  let _, _, snap = Lp.Model.solve_ext m in
  (* Tighten y <= 3 to y <= 2: the old basis refactorises to (2,2),
     still feasible; optimum -6. *)
  Lp.Model.set_rhs m 2 2.0;
  let o, s, _ = Lp.Model.resolve m ~prev:snap in
  check_float "re-optimized objective" (-6.0) (objective_exn "warm" o);
  Alcotest.(check bool) "rhs change keeps the basis" true
    s.Lp.Simplex.warm_used

let test_warm_empty_model () =
  (* The degenerate extreme: no variables, no rows.  The basis import
     rejects an empty layout, so the re-solve must run (trivially)
     cold and report the fallback. *)
  let m = Lp.Model.create () in
  let o1, _, snap = Lp.Model.solve_ext m in
  check_float "empty objective" 0.0 (objective_exn "empty" o1);
  let o2, s, _ = Lp.Model.resolve m ~prev:snap in
  check_float "still trivial" 0.0 (objective_exn "empty resolve" o2);
  Alcotest.(check bool) "no warm path for an empty model" false
    s.Lp.Simplex.warm_used;
  Alcotest.(check bool) "fallback reported" true s.Lp.Simplex.fallback

let test_warm_zero_cost () =
  (* All-zero objective: every feasible point is optimal and every
     re-solve from the old basis is immediately optimal. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 1.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 5.0;
  let o1, _, snap = Lp.Model.solve_ext m in
  check_float "zero objective" 0.0 (objective_exn "zero cost" o1);
  let o2, s, _ = Lp.Model.resolve m ~prev:snap in
  check_float "still zero" 0.0 (objective_exn "zero resolve" o2);
  Alcotest.(check bool) "basis carried" true s.Lp.Simplex.warm_used;
  Alcotest.(check int) "no pivots needed" 0 s.Lp.Simplex.pivots

let test_warm_degenerate_ties () =
  (* The redundant-constraint instance from [test_degenerate]: the
     perturbed re-solve must terminate and agree with a cold solve
     despite degenerate ties in the ratio test. *)
  let build () =
    let m = Lp.Model.create () in
    let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
    Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
    Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Le 1.0;
    Lp.Model.add_constraint m [ (2.0, x); (2.0, y) ] Lp.Model.Le 2.0;
    Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 1.0;
    Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
    m
  in
  let m = build () in
  let _, _, snap = Lp.Model.solve_ext m in
  Lp.Model.set_rhs m 3 0.5;
  let o, s, _ = Lp.Model.resolve m ~prev:snap in
  let cold = build () in
  Lp.Model.set_rhs cold 3 0.5;
  let o_cold = Lp.Model.solve cold in
  check_float "agrees with cold" (objective_exn "cold" o_cold)
    (objective_exn "warm" o);
  Alcotest.(check bool) "carried or honestly fell back" true
    (s.Lp.Simplex.warm_used <> s.Lp.Simplex.fallback)

let test_warm_unbounded_perturbation () =
  (* A bounded optimum whose objective flips to an unbounded
     direction: the warm attempt meets the unbounded ray and must
     abandon the basis; the verdict comes from the cold path. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, y) ] Lp.Model.Ge 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let o1, _, snap = Lp.Model.solve_ext m in
  check_float "bounded before" 0.0 (objective_exn "before" o1);
  Lp.Model.set_objective m [ (-1.0, y) ];
  (match Lp.Model.resolve m ~prev:snap with
  | Lp.Model.Unbounded, s, _ ->
    Alcotest.(check bool) "fallback counted" true s.Lp.Simplex.fallback;
    Alcotest.(check bool) "warm did not claim the verdict" false
      s.Lp.Simplex.warm_used
  | o, _, _ -> Alcotest.failf "expected unbounded, got %a" Lp.Model.pp_outcome o)

let test_warm_infeasible_perturbation () =
  (* 1 <= x <= 2 solved, then the lower bound pushed to 3: the old
     basis is primal infeasible and the cold path must own the
     Infeasible verdict. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 2.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let o1, _, snap = Lp.Model.solve_ext m in
  check_float "optimal before" 1.0 (objective_exn "before" o1);
  Lp.Model.set_rhs m 1 3.0;
  (match Lp.Model.resolve m ~prev:snap with
  | Lp.Model.Infeasible, s, _ ->
    Alcotest.(check bool) "fallback counted" true s.Lp.Simplex.fallback
  | o, _, _ ->
    Alcotest.failf "expected infeasible, got %a" Lp.Model.pp_outcome o)

let test_warm_sense_flip_fallback () =
  (* An RHS edit that flips the normalised sense (Le with a negative
     RHS becomes Ge): the basis signature no longer matches and the
     import must be rejected outright. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Le 5.0;
  Lp.Model.add_constraint m [ (1.0, x) ] Lp.Model.Ge 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let _, _, snap = Lp.Model.solve_ext m in
  Lp.Model.set_rhs m 0 (-1.0);
  (match Lp.Model.resolve m ~prev:snap with
  | Lp.Model.Infeasible, s, _ ->
    Alcotest.(check bool) "signature mismatch falls back" true
      s.Lp.Simplex.fallback;
    Alcotest.(check bool) "no warm claim" false s.Lp.Simplex.warm_used
  | o, _, _ ->
    Alcotest.failf "expected infeasible, got %a" Lp.Model.pp_outcome o)

let test_warm_structural_growth () =
  (* Adding a variable and a row after the snapshot: the layout grew,
     so the snapshot cannot even be offered to the engine — still a
     failed warm attempt from the caller's point of view. *)
  let m, x, _ = two_var_model () in
  let _, _, snap = Lp.Model.solve_ext m in
  let z = Lp.Model.var m "z" in
  Lp.Model.add_constraint m [ (1.0, x); (1.0, z) ] Lp.Model.Le 10.0;
  let o, s, _ = Lp.Model.resolve m ~prev:snap in
  check_float "grown model solved cold" (-7.0) (objective_exn "grown" o);
  Alcotest.(check bool) "fallback counted" true s.Lp.Simplex.fallback;
  Alcotest.(check bool) "no warm claim" false s.Lp.Simplex.warm_used

let test_simplex_warm_layout_mismatch () =
  (* Raw engine: a basis exported from one layout offered to another
     is rejected at import and the cold path answers. *)
  let _, _, basis =
    Lp.Simplex.solve_ext ~cost:[| 1.0 |]
      ~rows:[| ([| 1.0 |], Lp.Simplex.Ge, 3.0) |]
      ()
  in
  let o, s, _ =
    Lp.Simplex.solve_ext ?warm_basis:basis ~cost:[| 1.0; 0.0 |]
      ~rows:[| ([| 1.0; 1.0 |], Lp.Simplex.Ge, 3.0) |]
      ()
  in
  (match o with
  | Lp.Simplex.Optimal _ -> ()
  | _ -> Alcotest.fail "expected optimal from the cold path");
  Alcotest.(check bool) "rejected at import" true s.Lp.Simplex.fallback;
  Alcotest.(check bool) "no warm claim" false s.Lp.Simplex.warm_used

(* --- Brute-force oracle ------------------------------------------ *)

(* Enumerate basic solutions of {A x cmp b, x >= 0} for 2-variable
   LPs by intersecting all constraint-boundary pairs (including the
   axes) and keeping feasible points; the LP optimum, when bounded and
   feasible, is attained at one of them. *)
module Oracle = struct
  type row = { a : float; b : float; cmp : Lp.Model.cmp; rhs : float }

  let feasible rows (x, y) =
    x >= -1e-7 && y >= -1e-7
    && List.for_all
         (fun { a; b; cmp; rhs } ->
           let v = (a *. x) +. (b *. y) in
           match cmp with
           | Lp.Model.Le -> v <= rhs +. 1e-7
           | Lp.Model.Ge -> v >= rhs -. 1e-7
           | Lp.Model.Eq -> abs_float (v -. rhs) <= 1e-7)
         rows

  let intersect (a1, b1, c1) (a2, b2, c2) =
    let det = (a1 *. b2) -. (a2 *. b1) in
    if abs_float det < 1e-12 then None
    else Some (((c1 *. b2) -. (c2 *. b1)) /. det, ((a1 *. c2) -. (a2 *. c1)) /. det)

  let best rows ~cx ~cy =
    let lines =
      (0.0, 1.0, 0.0) :: (1.0, 0.0, 0.0)
      :: List.map (fun { a; b; rhs; _ } -> (a, b, rhs)) rows
    in
    let candidates =
      List.concat_map
        (fun l1 -> List.filter_map (fun l2 -> intersect l1 l2) lines)
        lines
    in
    List.fold_left
      (fun best pt ->
        if feasible rows pt then begin
          let x, y = pt in
          let v = (cx *. x) +. (cy *. y) in
          match best with Some b when b <= v -> best | _ -> Some v
        end
        else best)
      None candidates
end

let qcheck_vs_oracle =
  let open QCheck in
  let cmp_gen = Gen.oneofl [ Lp.Model.Le; Lp.Model.Ge ] in
  let row_gen =
    Gen.map4
      (fun a b cmp rhs -> { Oracle.a; b; cmp; rhs })
      (Gen.float_range (-5.0) 5.0)
      (Gen.float_range (-5.0) 5.0)
      cmp_gen
      (Gen.float_range 0.0 10.0)
  in
  let lp_gen =
    Gen.pair
      (Gen.list_size (Gen.int_range 1 5) row_gen)
      (Gen.pair (Gen.float_range (-3.0) 3.0) (Gen.float_range (-3.0) 3.0))
  in
  Test.make ~count:300 ~name:"simplex agrees with 2-var vertex enumeration"
    (make lp_gen)
    (fun (rows, (cx, cy)) ->
      let m = Lp.Model.create () in
      let x = Lp.Model.var m "x" and y = Lp.Model.var m "y" in
      List.iter
        (fun { Oracle.a; b; cmp; rhs } ->
          Lp.Model.add_constraint m [ (a, x); (b, y) ] cmp rhs)
        rows;
      Lp.Model.set_objective m [ (cx, x); (cy, y) ];
      match (Lp.Model.solve m, Oracle.best rows ~cx ~cy) with
      | Lp.Model.Optimal sol, Some oracle ->
        (* Allow sloppy tolerance: the oracle uses naive arithmetic. *)
        abs_float (sol.Lp.Model.objective -. oracle) < 1e-4
                                                       *. (1.0 +. abs_float oracle)
      | Lp.Model.Infeasible, None -> true
      | Lp.Model.Unbounded, _ ->
        (* The oracle cannot certify unboundedness; accept when it
           found no better bounded answer contradiction.  Verify by
           checking the simplex did not miss a finite optimum: for an
           unbounded LP every vertex value is an upper bound on
           nothing, so just accept. *)
        true
      | Lp.Model.Optimal _, None -> false
      | Lp.Model.Infeasible, Some _ -> false)

let qcheck_feasibility =
  let open QCheck in
  (* Random LPs in 4 variables: whenever the solver says Optimal, the
     reported point must satisfy every constraint. *)
  let term_gen = Gen.float_range (-4.0) 4.0 in
  let row_gen =
    Gen.map3
      (fun coefs cmp rhs -> (coefs, cmp, rhs))
      (Gen.array_size (Gen.return 4) term_gen)
      (Gen.oneofl [ Lp.Model.Le; Lp.Model.Ge; Lp.Model.Eq ])
      (Gen.float_range 0.0 8.0)
  in
  Test.make ~count:300 ~name:"optimal solutions satisfy all constraints"
    (make
       (Gen.pair
          (Gen.list_size (Gen.int_range 1 6) row_gen)
          (Gen.array_size (Gen.return 4) term_gen)))
    (fun (rows, cost) ->
      let m = Lp.Model.create () in
      let vars = Array.init 4 (fun i -> Lp.Model.var m (Printf.sprintf "x%d" i)) in
      List.iter
        (fun (coefs, cmp, rhs) ->
          let terms = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
          Lp.Model.add_constraint m terms cmp rhs)
        rows;
      Lp.Model.set_objective m
        (Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) cost));
      match Lp.Model.solve m with
      | Lp.Model.Optimal sol ->
        List.for_all
          (fun (coefs, cmp, rhs) ->
            let v = ref 0.0 in
            Array.iteri (fun i c -> v := !v +. (c *. Lp.Model.value sol vars.(i))) coefs;
            match cmp with
            | Lp.Model.Le -> !v <= rhs +. 1e-5
            | Lp.Model.Ge -> !v >= rhs -. 1e-5
            | Lp.Model.Eq -> abs_float (!v -. rhs) <= 1e-5)
          rows
        && Array.for_all (fun var -> Lp.Model.value sol var >= -1e-7) vars
      | Lp.Model.Infeasible | Lp.Model.Unbounded -> true)

(* --- Warm/cold differential properties ---------------------------- *)

(* Shared generator scaffolding: random 4-variable LPs as in
   [qcheck_feasibility], plus a random small perturbation — new
   objective coefficients, one RHS, or one whole row. *)

let random_lp_gen =
  let open QCheck in
  let term_gen = Gen.float_range (-4.0) 4.0 in
  let row_gen =
    Gen.map3
      (fun coefs cmp rhs -> (coefs, cmp, rhs))
      (Gen.array_size (Gen.return 4) term_gen)
      (Gen.oneofl [ Lp.Model.Le; Lp.Model.Ge; Lp.Model.Eq ])
      (Gen.float_range 0.0 8.0)
  in
  ( Gen.pair
      (Gen.list_size (Gen.int_range 1 6) row_gen)
      (Gen.array_size (Gen.return 4) term_gen),
    row_gen,
    term_gen )

let build_random_lp (rows, cost) =
  let m = Lp.Model.create () in
  let vars = Array.init 4 (fun i -> Lp.Model.var m (Printf.sprintf "x%d" i)) in
  let terms coefs = Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs) in
  List.iter
    (fun (coefs, cmp, rhs) -> Lp.Model.add_constraint m (terms coefs) cmp rhs)
    rows;
  Lp.Model.set_objective m (terms cost);
  (m, vars)

let qcheck_warm_vs_cold =
  let open QCheck in
  let lp_gen, row_gen, term_gen = random_lp_gen in
  let perturb_gen =
    Gen.oneof
      [
        Gen.map (fun c -> `Cost c) (Gen.array_size (Gen.return 4) term_gen);
        Gen.map2
          (fun i rhs -> `Rhs (i, rhs))
          (Gen.int_range 0 97)
          (Gen.float_range 0.0 8.0);
        Gen.map2 (fun i row -> `Row (i, row)) (Gen.int_range 0 97) row_gen;
      ]
  in
  Test.make ~count:300
    ~name:"warm resolve agrees with cold solve after a perturbation"
    (make (Gen.pair lp_gen perturb_gen))
    (fun ((rows, cost), perturb) ->
      let nrows = List.length rows in
      let apply (m, vars) =
        let terms coefs =
          Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) coefs)
        in
        match perturb with
        | `Cost c -> Lp.Model.set_objective m (terms c)
        | `Rhs (i, rhs) -> Lp.Model.set_rhs m (i mod nrows) rhs
        | `Row (i, (coefs, cmp, rhs)) ->
          Lp.Model.replace_constraint m (i mod nrows) (terms coefs) cmp rhs
      in
      (* Warm chain: solve, edit in place, resolve from the snapshot. *)
      let wm, wvars = build_random_lp (rows, cost) in
      let _, _, snap = Lp.Model.solve_ext wm in
      apply (wm, wvars);
      let warm_o, _, _ = Lp.Model.resolve wm ~prev:snap in
      (* Cold reference: an independent model with the same edit. *)
      let cm, cvars = build_random_lp (rows, cost) in
      apply (cm, cvars);
      match (warm_o, Lp.Model.solve cm) with
      | Lp.Model.Optimal w, Lp.Model.Optimal c ->
        (* Two exact optima of the same LP, possibly different bases:
           allow a loose numerical tolerance. *)
        abs_float (w.Lp.Model.objective -. c.Lp.Model.objective)
        <= 1e-4 *. (1.0 +. abs_float c.Lp.Model.objective)
      | Lp.Model.Infeasible, Lp.Model.Infeasible -> true
      | Lp.Model.Unbounded, Lp.Model.Unbounded -> true
      | _ -> false)

let qcheck_warm_noop =
  let open QCheck in
  let lp_gen, _, _ = random_lp_gen in
  Test.make ~count:300
    ~name:"unperturbed re-solve: zero pivots warm, fallback otherwise"
    (make lp_gen)
    (fun (rows, cost) ->
      let m, _ = build_random_lp (rows, cost) in
      let o1, _, snap = Lp.Model.solve_ext m in
      let o2, s, _ = Lp.Model.resolve m ~prev:snap in
      match (o1, o2) with
      | Lp.Model.Optimal a, Lp.Model.Optimal b ->
        (* An optimal basis re-imports and is immediately optimal:
           exactly zero pivots, same objective.  Zero is trivially
           <= the cold pivot count. *)
        s.Lp.Simplex.warm_used && (not s.Lp.Simplex.fallback)
        && s.Lp.Simplex.pivots = 0
        && abs_float (a.Lp.Model.objective -. b.Lp.Model.objective)
           <= 1e-9 *. (1.0 +. abs_float a.Lp.Model.objective)
      | Lp.Model.Infeasible, Lp.Model.Infeasible
      | Lp.Model.Unbounded, Lp.Model.Unbounded ->
        (* No basis to carry: the cold path reran and the failed warm
           attempt is reported as a fallback. *)
        s.Lp.Simplex.fallback && not s.Lp.Simplex.warm_used
      | _ -> false)

let suite =
  [
    Alcotest.test_case "trivial min" `Quick test_trivial_min;
    Alcotest.test_case "two variables" `Quick test_two_var;
    Alcotest.test_case "equalities" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
    Alcotest.test_case "degenerate pivots" `Quick test_degenerate;
    Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
    Alcotest.test_case "min-max load shape" `Quick test_min_max_load_shape;
    Alcotest.test_case "warm: no-op re-solve is free" `Quick
      test_warm_noop_zero_pivots;
    Alcotest.test_case "warm: cost perturbation" `Quick
      test_warm_cost_perturbation;
    Alcotest.test_case "warm: rhs perturbation" `Quick
      test_warm_rhs_perturbation;
    Alcotest.test_case "warm: empty model falls back" `Quick
      test_warm_empty_model;
    Alcotest.test_case "warm: all-zero cost" `Quick test_warm_zero_cost;
    Alcotest.test_case "warm: degenerate ties" `Quick test_warm_degenerate_ties;
    Alcotest.test_case "warm: unbounded perturbation falls back" `Quick
      test_warm_unbounded_perturbation;
    Alcotest.test_case "warm: infeasible perturbation falls back" `Quick
      test_warm_infeasible_perturbation;
    Alcotest.test_case "warm: sense flip falls back" `Quick
      test_warm_sense_flip_fallback;
    Alcotest.test_case "warm: structural growth falls back" `Quick
      test_warm_structural_growth;
    Alcotest.test_case "warm: raw engine rejects layout mismatch" `Quick
      test_simplex_warm_layout_mismatch;
    QCheck_alcotest.to_alcotest qcheck_vs_oracle;
    QCheck_alcotest.to_alcotest qcheck_feasibility;
    QCheck_alcotest.to_alcotest qcheck_warm_vs_cold;
    QCheck_alcotest.to_alcotest qcheck_warm_noop;
  ]
