(** A long-running link-state routing session with topology changes.

    {!Protocol.converge} answers "what tables does a static network
    settle on"; a session keeps the routers and their databases alive
    so that links can fail afterwards: on [fail_link] both endpoints
    drop the adjacency, re-originate their LSAs, and the updates flood
    through the *surviving* links until the network quiesces again.
    Tables then match a global Dijkstra oracle on the reduced graph —
    the reconvergence property tests assert exactly that.

    Limitations, as documented trade-offs: LSA aging/flushing is not
    modelled, so a failure that partitions the network leaves stale
    routes toward the lost partition (real OSPF ages them out in
    MaxAge seconds); tests therefore only fail links that keep the
    graph connected. *)

type t

val start : ?link_delay:float -> ?jitter_seed:int -> Netgraph.Topology.t -> t
(** Flood to initial convergence. *)

val fail_link : t -> int -> int -> unit
(** [fail_link t u v] — both ends notice, re-originate, re-flood to
    quiescence.  Raises [Invalid_argument] if the link does not exist
    (or has already failed). *)

val recover_link : t -> int -> int -> unit
(** [recover_link t u v] — the link comes back at its last advertised
    cost (the original topology cost, or the [change_cost] value if it
    was recosted before failing); both ends re-originate and the
    network reconverges.  Raises [Invalid_argument] if the link is not
    currently failed. *)

val change_cost : t -> int -> int -> float -> unit
(** [change_cost t u v cost] — a metric update (traffic engineering,
    interface renegotiation): both ends re-originate with the new cost
    and the network reconverges.  Raises [Invalid_argument] on a
    non-existent/failed link or a non-positive cost. *)

val tables : t -> Netgraph.Routing.table array
(** Current per-router forwarding tables (computed from each router's
    own database). *)

val surviving_graph : t -> Netgraph.Graph.t
(** The topology minus failed links — the oracle's input. *)

val messages : t -> int
(** Cumulative LSA transmissions, including reconvergence traffic. *)
