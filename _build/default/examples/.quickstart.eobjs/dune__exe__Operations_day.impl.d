examples/operations_day.ml: Array Format List Mbox Netgraph Policy Sdm Sim
