(** Plain-text rendering of experiment outputs in the shape the paper
    reports them: one series block per middlebox type for the figures
    (x = total traffic, y = max load, three strategy columns), and the
    max/min table for Table III. *)

val pp_figure : Format.formatter -> Experiment.figure -> unit

val pp_table3 : Format.formatter -> Experiment.table3_row list -> unit

val pp_k_ablation : Format.formatter -> Experiment.k_point list -> unit

val pp_cache_ablation : Format.formatter -> Experiment.cache_stats -> unit

val pp_cache_size_ablation :
  Format.formatter -> Experiment.cache_size_point list -> unit

val pp_frag_ablation : Format.formatter -> Experiment.frag_stats -> unit

val pp_lp_ablation : Format.formatter -> Experiment.lp_compare -> unit

val pp_failure_ablation : Format.formatter -> Experiment.failure_report -> unit

val pp_chaos_ablation : Format.formatter -> Experiment.chaos_report -> unit

val pp_live_ablation : Format.formatter -> Experiment.live_report -> unit

val pp_quorum_ablation : Format.formatter -> Experiment.quorum_report -> unit

val pp_corrupt_ablation : Format.formatter -> Experiment.corrupt_report -> unit

val pp_reopt_ablation : Format.formatter -> Experiment.reopt_report -> unit
(** ABL-REOPT: one row per (scenario, cold/warm) packet-level run, the
    per-step controller-level churn replay, and a final deterministic
    ["warm/cold objective agreement: A/T replay steps"] line CI greps. *)

val pp_sketch_ablation : Format.formatter -> Experiment.sketch_point list -> unit

val pp_epochs : Format.formatter -> Epochsim.epoch_metrics list -> unit

val pp_latency_ablation : Format.formatter -> Experiment.latency_report -> unit

val pp_queue_ablation : Format.formatter -> Experiment.queue_report -> unit

val millions : float -> string
(** "1.66M"-style rendering used across reports. *)

val figure_csv : Experiment.figure -> string
(** Machine-readable form for plotting: header
    [nf,flows,packets,hp,rand,lb], one row per (type, volume point). *)

val table3_csv : Experiment.table3_row list -> string
(** Header [nf,hp_max,hp_min,rand_max,rand_min,lb_max,lb_min]. *)

val live_csv : Experiment.live_report -> string
(** One row per control-loss point of ABL-LIVE; header
    [loss,injected,delivered,violating,versions,pushes,acks,lost,degraded,stale,bytes,max_load,audit].
    The [audit] column is the online audit's violation count, empty
    when auditing was off. *)

val live_devices_csv : Experiment.live_report -> string
(** Per-device view of ABL-LIVE's lossiest row; header
    [device,version,lag,retries,lost]. *)

val quorum_csv : Experiment.quorum_report -> string
(** One row per ABL-QUORUM chaos scenario; header
    [scenario,loss,injected,delivered,violating,versions,rounds,commits,aborts,msgs,lost,elections,degraded,stale,uncommitted,replica_versions,audit].
    [replica_versions] is "/"-separated per-replica committed
    versions; the [audit] column is empty when auditing was off. *)

val corrupt_csv : Experiment.corrupt_report -> string
(** One row per ABL-CORRUPT cell (plan × rate × sweep period); header
    [plan,rate,sweep_period,injected,delivered,corruptions,manifested,detected,repaired,violating,window_mean,window_max,sweep_rounds,sweep_msgs,sweep_bytes,audit].
    [sweep_period] is empty on sweep-disabled rows; the [audit] column
    is empty when auditing was off. *)

val reopt_csv : Experiment.reopt_report -> string
(** One row per ABL-REOPT packet-level run (scenario × cold/warm);
    header
    [scenario,routers,mode,reopts,pivots,phase1,warm_used,fallback,injected,delivered,violating,versions,degraded,max_load,audit].
    The [audit] column is empty when auditing was off. *)

val reopt_steps_csv : Experiment.reopt_report -> string
(** Per-step view of ABL-REOPT's controller-level differential replay;
    header
    [scenario,step,failed,cold_pivots,warm_pivots,cold_lambda,warm_lambda,warm_used,fallback,agree].
    [failed] is "+"-separated middlebox ids, empty on no-change steps. *)
