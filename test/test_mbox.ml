(* Tests for enforcement entities, middlebox/proxy descriptors and the
   label table. *)

let test_entity_keys () =
  let entities =
    [ Mbox.Entity.Proxy 0; Mbox.Entity.Proxy 1; Mbox.Entity.Middlebox 0;
      Mbox.Entity.Middlebox 1 ]
  in
  let keys = List.map Mbox.Entity.hash_key entities in
  Alcotest.(check int) "keys distinct" 4 (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "equal" true
    (Mbox.Entity.equal (Mbox.Entity.Proxy 3) (Mbox.Entity.Proxy 3));
  Alcotest.(check bool) "kind matters" false
    (Mbox.Entity.equal (Mbox.Entity.Proxy 3) (Mbox.Entity.Middlebox 3));
  Alcotest.(check string) "to_string" "mbox7"
    (Mbox.Entity.to_string (Mbox.Entity.Middlebox 7))

let test_middlebox_make () =
  let m =
    Mbox.Middlebox.make ~id:2 ~nf:Policy.Action.FW ~router:5
      ~addr:(Netpkt.Addr.of_string "192.168.0.2") ()
  in
  Alcotest.(check (float 1e-9)) "default capacity" 1.0 m.Mbox.Middlebox.capacity;
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Middlebox.make: capacity must be positive") (fun () ->
      ignore
        (Mbox.Middlebox.make ~id:0 ~nf:Policy.Action.FW ~capacity:0.0 ~router:0
           ~addr:0 ()))

let key src label = { Mbox.Label_table.src = Netpkt.Addr.of_string src; label }

let test_label_table_roundtrip () =
  let t = Mbox.Label_table.create () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 7)
    ~actions:Policy.Action.[ FW; IDS ]
    ~next:(Some (Netpkt.Addr.of_string "192.168.0.3"))
    ~final_dst:None;
  (match Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.1" 7) with
  | Some e ->
    Alcotest.(check bool) "next present" true (e.Mbox.Label_table.next <> None)
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "other label absent" true
    (Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.1" 8) = None);
  (* Same label from a different source is a different key — the
     paper's src|l concatenation. *)
  Alcotest.(check bool) "other source absent" true
    (Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.2" 7) = None);
  Alcotest.(check int) "size" 1 (Mbox.Label_table.size t);
  Mbox.Label_table.remove t (key "10.0.0.1" 7);
  Alcotest.(check int) "removed" 0 (Mbox.Label_table.size t)

let test_label_table_invariants () =
  let t = Mbox.Label_table.create () in
  Alcotest.check_raises "both next and dst"
    (Invalid_argument "Label_table.insert: both next and final_dst") (fun () ->
      Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1) ~actions:[]
        ~next:(Some 1) ~final_dst:(Some 2));
  Alcotest.check_raises "neither next nor dst"
    (Invalid_argument "Label_table.insert: neither next nor final_dst")
    (fun () ->
      Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1) ~actions:[]
        ~next:None ~final_dst:None)

let test_label_table_last_hop () =
  let t = Mbox.Label_table.create () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 3)
    ~actions:Policy.Action.[ IDS ]
    ~next:None
    ~final_dst:(Some (Netpkt.Addr.of_string "10.5.0.9"));
  match Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 3) with
  | Some { Mbox.Label_table.final_dst = Some d; next = None; _ } ->
    Alcotest.(check string) "restores destination" "10.5.0.9"
      (Netpkt.Addr.to_string d)
  | _ -> Alcotest.fail "expected last-hop entry"

let test_label_table_soft_state () =
  let t = Mbox.Label_table.create ~timeout:10.0 () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 5)
    ~actions:Policy.Action.[ FW ]
    ~next:None
    ~final_dst:(Some (Netpkt.Addr.of_string "10.5.0.9"));
  Alcotest.(check bool) "alive before timeout" true
    (Mbox.Label_table.lookup t ~now:9.0 (key "10.0.0.1" 5) <> None);
  (* The lookup refreshed last_used; still alive at 18. *)
  Alcotest.(check bool) "refreshed" true
    (Mbox.Label_table.lookup t ~now:18.0 (key "10.0.0.1" 5) <> None);
  Alcotest.(check bool) "expired" true
    (Mbox.Label_table.lookup t ~now:40.0 (key "10.0.0.1" 5) = None);
  Alcotest.(check int) "gone from table" 0 (Mbox.Label_table.size t)

let test_label_table_purge () =
  let t = Mbox.Label_table.create ~timeout:5.0 () in
  for i = 0 to 9 do
    Mbox.Label_table.insert t ~now:(float_of_int i)
      (key "10.0.0.1" i)
      ~actions:Policy.Action.[ FW ]
      ~next:(Some 1) ~final_dst:None
  done;
  let dropped = Mbox.Label_table.purge t ~now:11.0 in
  Alcotest.(check int) "entries older than 5 dropped" 6 dropped;
  Alcotest.(check int) "survivors" 4 (Mbox.Label_table.size t)

let test_label_table_versions () =
  let t = Mbox.Label_table.create () in
  (* Entries carry the configuration version that installed them;
     the default is 0 (static configuration). *)
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Mbox.Label_table.insert t ~now:0.0 ~version:1 (key "10.0.0.1" 2)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Mbox.Label_table.insert t ~now:0.0 ~version:2 (key "10.0.0.1" 3)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  (match Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 1) with
  | Some e -> Alcotest.(check int) "default version" 0 e.Mbox.Label_table.version
  | None -> Alcotest.fail "expected entry");
  (* Installing version 2 keeps the adjacent version 1 staged and
     expires everything older — the update-boundary semantics. *)
  let dropped = Mbox.Label_table.purge_versions_below t ~version:1 in
  Alcotest.(check int) "one entry below the floor" 1 dropped;
  Alcotest.(check int) "survivors" 2 (Mbox.Label_table.size t);
  Alcotest.(check bool) "v0 entry expired across the boundary" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 1) = None);
  Alcotest.(check bool) "adjacent version survives" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 2) <> None);
  Alcotest.(check bool) "current version survives" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 3) <> None);
  (* Purging below a floor no entry reaches empties the table. *)
  Alcotest.(check int) "purge everything" 2
    (Mbox.Label_table.purge_versions_below t ~version:10);
  Alcotest.(check int) "empty" 0 (Mbox.Label_table.size t);
  (* Idempotent on an empty table. *)
  Alcotest.(check int) "nothing left to purge" 0
    (Mbox.Label_table.purge_versions_below t ~version:10)

let test_proxy_make () =
  let subnet = Netpkt.Addr.Prefix.of_string "10.3.0.0/16" in
  let p =
    Mbox.Proxy.make ~id:3 ~subnet ~router:7
      ~addr:(Netpkt.Addr.of_string "10.3.0.1") ()
  in
  Alcotest.(check int) "id" 3 p.Mbox.Proxy.id;
  Alcotest.(check int) "router" 7 p.Mbox.Proxy.router;
  Alcotest.(check bool) "in-path by default" true
    (p.Mbox.Proxy.attachment = Mbox.Proxy.In_path);
  let rendered = Format.asprintf "%a" Mbox.Proxy.pp p in
  Alcotest.(check string) "pp" "proxy3(10.3.0.0/16@r7)" rendered;
  match Mbox.Proxy.make ~id:(-1) ~subnet ~router:0 ~addr:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id accepted"

let test_proxy_off_path () =
  let subnet = Netpkt.Addr.Prefix.of_string "10.4.0.0/16" in
  let p =
    Mbox.Proxy.make ~id:4 ~subnet ~router:2 ~attachment:Mbox.Proxy.Off_path
      ~addr:(Netpkt.Addr.of_string "10.4.0.1") ()
  in
  Alcotest.(check bool) "off-path preserved" true
    (p.Mbox.Proxy.attachment = Mbox.Proxy.Off_path);
  Alcotest.(check bool) "subnet covers its own address" true
    (Netpkt.Addr.Prefix.contains p.Mbox.Proxy.subnet p.Mbox.Proxy.addr)

let suite =
  [
    Alcotest.test_case "entity keys" `Quick test_entity_keys;
    Alcotest.test_case "proxy make" `Quick test_proxy_make;
    Alcotest.test_case "proxy off-path" `Quick test_proxy_off_path;
    Alcotest.test_case "middlebox make" `Quick test_middlebox_make;
    Alcotest.test_case "label table roundtrip" `Quick test_label_table_roundtrip;
    Alcotest.test_case "label table invariants" `Quick test_label_table_invariants;
    Alcotest.test_case "label table last hop" `Quick test_label_table_last_hop;
    Alcotest.test_case "label table soft state" `Quick test_label_table_soft_state;
    Alcotest.test_case "label table purge" `Quick test_label_table_purge;
    Alcotest.test_case "label table versions" `Quick test_label_table_versions;
  ]
