type body = Payload of int | Encap of t

and t = { header : Header.t; body : body }

let plain header ~payload_bytes =
  if payload_bytes < 0 then invalid_arg "Packet.plain: negative payload";
  { header; body = Payload payload_bytes }

let rec size t =
  Header.size + (match t.body with Payload n -> n | Encap inner -> size inner)

let ip_in_ip_proto = 4

let encapsulate ~src ~dst t =
  let header =
    Header.make ~src ~dst ~proto:ip_in_ip_proto ~sport:0 ~dport:0 ()
  in
  { header; body = Encap t }

let decapsulate t = match t.body with Encap inner -> Some inner | Payload _ -> None

let is_encapsulated t = match t.body with Encap _ -> true | Payload _ -> false

let rec innermost t =
  match t.body with Payload _ -> t | Encap inner -> innermost inner

let inner_flow t = Header.flow (innermost t).header

let rec pp ppf t =
  match t.body with
  | Payload n -> Format.fprintf ppf "[%a | %dB]" Header.pp t.header n
  | Encap inner -> Format.fprintf ppf "[%a | %a]" Header.pp t.header pp inner
