type policy_class = Many_to_one | One_to_many | One_to_one

let class_chain = function
  | Many_to_one -> Policy.Action.[ FW; IDS ]
  | One_to_many -> Policy.Action.[ FW; IDS; WP ]
  | One_to_one -> Policy.Action.[ IDS; TM ]

let class_name = function
  | Many_to_one -> "many-to-one"
  | One_to_many -> "one-to-many"
  | One_to_one -> "one-to-one"

type flow_spec = {
  id : int;
  flow : Netpkt.Flow.t;
  src_proxy : int;
  dst_proxy : int;
  rule_id : int option;
  intended_class : policy_class;
  packets : int;
  packet_bytes : int;
}

type t = {
  rules : Policy.Rule.t list;
  flows : flow_spec array;
  total_packets : int;
}

(* Service ports: distinct ranges per class keep the generated rules
   from capturing each other's traffic more than realism requires. *)
let m2o_port i = 1024 + i
let o2o_port i = 2048 + i

type proto_policy = {
  p_class : policy_class option;
  desc : Policy.Descriptor.t;
  actions : Policy.Action.t;
  (* Concrete endpoints a matching flow should use; [None] = draw at
     random from all proxies. *)
  fixed_src : int option;
  fixed_dst : int option;
  dport : int;
}

let generate_protos ~deployment ~per_class ~rng =
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  if n_proxies < 2 then invalid_arg "Workload: need at least two proxies";
  let subnet i = Sdm.Deployment.subnet_of deployment i in
  let pick () = Stdx.Rng.int rng n_proxies in
  let pick_other s =
    let rec go () =
      let d = pick () in
      if d = s then go () else d
    in
    go ()
  in
  let m2o =
    List.init per_class (fun i ->
        let d = pick () in
        let port = m2o_port i in
        {
          p_class = Some Many_to_one;
          desc =
            Policy.Descriptor.make ~dst:(subnet d)
              ~dport:(Policy.Descriptor.Port port) ();
          actions = class_chain Many_to_one;
          fixed_src = None;
          fixed_dst = Some d;
          dport = port;
        })
  in
  let o2m =
    List.concat
      (List.init per_class (fun _ ->
           let s = pick () in
           let forward =
             {
               p_class = Some One_to_many;
               desc =
                 Policy.Descriptor.make ~src:(subnet s)
                   ~dport:(Policy.Descriptor.Port 80) ();
               actions = class_chain One_to_many;
               fixed_src = Some s;
               fixed_dst = None;
               dport = 80;
             }
           in
           (* Companion policy for the return web traffic (Sec. IV.A):
              the chain reversed, matching responses from port 80. *)
           let return_ =
             {
               p_class = None;
               desc =
                 Policy.Descriptor.make ~dst:(subnet s)
                   ~sport:(Policy.Descriptor.Port 80) ();
               actions = Policy.Action.[ WP; IDS; FW ];
               fixed_src = None;
               fixed_dst = Some s;
               dport = 0;
             }
           in
           [ forward; return_ ]))
  in
  let o2o =
    List.init per_class (fun i ->
        let s = pick () in
        let d = pick_other s in
        let port = o2o_port i in
        {
          p_class = Some One_to_one;
          desc =
            Policy.Descriptor.make ~src:(subnet s) ~dst:(subnet d)
              ~dport:(Policy.Descriptor.Port port) ();
          actions = class_chain One_to_one;
          fixed_src = Some s;
          fixed_dst = Some d;
          dport = port;
        })
  in
  m2o @ o2m @ o2o

let generate_rules ~deployment ~per_class ~rng =
  let protos = generate_protos ~deployment ~per_class ~rng in
  List.mapi
    (fun id proto ->
      ( Policy.Rule.make ~id ~descriptor:proto.desc ~actions:proto.actions,
        proto.p_class ))
    protos

(* Trimodal packet sizes: 40 B pure ACKs, 576 B legacy datagrams,
   1500 B full-MTU data.  Only the fragmentation ablation cares. *)
let draw_packet_bytes rng =
  let u = Stdx.Rng.float rng 1.0 in
  if u < 0.4 then 40 else if u < 0.5 then 576 else 1500

let generate ~deployment ?(per_class = 5) ?(seed = 42) ?rule_seed ?class_mix
    ~flows () =
  (* Policies and flows draw from separate streams so a volume sweep
     can scale traffic while holding the policy set fixed. *)
  let rule_seed = Option.value ~default:seed rule_seed in
  let rng_rules = Stdx.Rng.create rule_seed in
  let rng = Stdx.Rng.create (seed + 0x5D) in
  let protos = generate_protos ~deployment ~per_class ~rng:rng_rules in
  let rules =
    List.mapi
      (fun id p -> Policy.Rule.make ~id ~descriptor:p.desc ~actions:p.actions)
      protos
  in
  let trie = Policy.Trie.build rules in
  let by_class cls =
    List.filter (fun p -> p.p_class = Some cls) protos |> Array.of_list
  in
  let classes =
    [| (Many_to_one, by_class Many_to_one);
       (One_to_many, by_class One_to_many);
       (One_to_one, by_class One_to_one) |]
  in
  Array.iter
    (fun (cls, ps) ->
      if Array.length ps = 0 then
        invalid_arg ("Workload.generate: no policies in class " ^ class_name cls))
    classes;
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  (* Calibrated so that 30k flows ~ 1M packets, as in the paper. *)
  let sizes = Stdx.Power_law.calibrate ~lo:1 ~hi:5000 ~mean:(1e6 /. 30e3) in
  let host rng proxy =
    (* A random host inside the stub subnet, skipping .0 and .1. *)
    let subnet = Sdm.Deployment.subnet_of deployment proxy in
    Netpkt.Addr.Prefix.nth_addr subnet (2 + Stdx.Rng.int rng 250)
  in
  let pick_proxy () = Stdx.Rng.int rng n_proxies in
  let pick_other s =
    let rec go () =
      let d = pick_proxy () in
      if d = s then go () else d
    in
    go ()
  in
  let total_packets = ref 0 in
  let pick_class =
    match class_mix with
    | None -> fun id -> classes.(id mod 3)
    | Some (a, b, c) ->
      if a < 0.0 || b < 0.0 || c < 0.0 || a +. b +. c <= 0.0 then
        invalid_arg "Workload.generate: bad class mix";
      let total = a +. b +. c in
      fun _ ->
        let u = Stdx.Rng.float rng total in
        if u < a then classes.(0) else if u < a +. b then classes.(1) else classes.(2)
  in
  let make_flow id =
    let cls, ps = pick_class id in
    let proto = Stdx.Rng.choose rng ps in
    let src_proxy, dst_proxy =
      match (proto.fixed_src, proto.fixed_dst) with
      | Some s, Some d -> (s, d)
      | Some s, None -> (s, pick_other s)
      | None, Some d -> (pick_other d, d)
      | None, None -> assert false
    in
    let flow =
      Netpkt.Flow.make ~src:(host rng src_proxy) ~dst:(host rng dst_proxy)
        ~proto:6
        ~sport:(20000 + Stdx.Rng.int rng 40000)
        ~dport:proto.dport
    in
    let rule_id =
      Option.map (fun r -> r.Policy.Rule.id) (Policy.Trie.first_match trie flow)
    in
    let packets = Stdx.Power_law.sample sizes rng in
    total_packets := !total_packets + packets;
    {
      id;
      flow;
      src_proxy;
      dst_proxy;
      rule_id;
      intended_class = cls;
      packets;
      packet_bytes = draw_packet_bytes rng;
    }
  in
  let flows = Array.init flows make_flow in
  { rules; flows; total_packets = !total_packets }

let measure t =
  let m = Sdm.Measurement.create () in
  Array.iter
    (fun fs ->
      match fs.rule_id with
      | None -> ()
      | Some rule ->
        Sdm.Measurement.add m ~src:fs.src_proxy ~dst:fs.dst_proxy ~rule
          (float_of_int fs.packets))
    t.flows;
  m

let rule_of t fs =
  match fs.rule_id with
  | None -> None
  | Some id -> List.find_opt (fun r -> r.Policy.Rule.id = id) t.rules
