let ( let* ) = Result.bind

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_addr tok =
  if tok = "any" then Ok Netpkt.Addr.Prefix.any
  else
    match Netpkt.Addr.Prefix.of_string tok with
    | p -> Ok p
    | exception Invalid_argument _ -> Error (Printf.sprintf "bad address %S" tok)

let parse_port tok =
  if tok = "any" then Ok Descriptor.Any_port
  else
    match String.index_opt tok '-' with
    | None -> (
      match int_of_string_opt tok with
      | Some p when p >= 0 && p <= 65535 -> Ok (Descriptor.Port p)
      | _ -> Error (Printf.sprintf "bad port %S" tok))
    | Some i -> (
      let a = String.sub tok 0 i
      and b = String.sub tok (i + 1) (String.length tok - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <= b && a >= 0 && b <= 65535 ->
        Ok (Descriptor.Port_range (a, b))
      | _ -> Error (Printf.sprintf "bad port range %S" tok))

let parse_proto tok =
  match tok with
  | "any" -> Ok Descriptor.Any_proto
  | "tcp" -> Ok (Descriptor.Proto 6)
  | "udp" -> Ok (Descriptor.Proto 17)
  | "icmp" -> Ok (Descriptor.Proto 1)
  | _ -> (
    match int_of_string_opt tok with
    | Some p when p >= 0 && p <= 255 -> Ok (Descriptor.Proto p)
    | _ -> Error (Printf.sprintf "bad protocol %S" tok))

let parse_actions toks =
  match toks with
  | [ "permit" ] -> Ok Action.permit
  | [] -> Error "missing actions after =>"
  | _ ->
    let names =
      List.concat_map (String.split_on_char ',') toks
      |> List.filter (fun s -> s <> "")
    in
    if names = [] then Error "missing actions after =>"
    else Ok (List.map Action.nf_of_string names)

(* Optional fields in any order, each exactly once. *)
let rec parse_fields acc = function
  | [] -> Ok (acc, [])
  | "=>" :: rest -> Ok (acc, rest)
  | "sport" :: tok :: rest ->
    let* p = parse_port tok in
    parse_fields (`Sport p :: acc) rest
  | "dport" :: tok :: rest ->
    let* p = parse_port tok in
    parse_fields (`Dport p :: acc) rest
  | "proto" :: tok :: rest ->
    let* p = parse_proto tok in
    parse_fields (`Proto p :: acc) rest
  | tok :: _ -> Error (Printf.sprintf "unexpected token %S" tok)

let parse_line line =
  match tokenize line with
  | "from" :: src_tok :: "to" :: dst_tok :: rest ->
    let* src = parse_addr src_tok in
    let* dst = parse_addr dst_tok in
    let* fields, after = parse_fields [] rest in
    let* actions = parse_actions after in
    let field_count tag =
      List.length
        (List.filter
           (fun f ->
             match (f, tag) with
             | `Sport _, `S | `Dport _, `D | `Proto _, `P -> true
             | _ -> false)
           fields)
    in
    if field_count `S > 1 || field_count `D > 1 || field_count `P > 1 then
      Error "duplicate field"
    else begin
      let sport =
        List.find_map (function `Sport p -> Some p | _ -> None) fields
        |> Option.value ~default:Descriptor.Any_port
      in
      let dport =
        List.find_map (function `Dport p -> Some p | _ -> None) fields
        |> Option.value ~default:Descriptor.Any_port
      in
      let proto =
        List.find_map (function `Proto p -> Some p | _ -> None) fields
        |> Option.value ~default:Descriptor.Any_proto
      in
      Ok (Descriptor.make ~src ~dst ~sport ~dport ~proto (), actions)
    end
  | [] -> Error "empty policy"
  | tok :: _ -> Error (Printf.sprintf "expected \"from\", got %S" tok)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno id acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let body = String.trim (strip_comment line) in
      if body = "" then go (lineno + 1) id acc rest
      else
        match parse_line body with
        | Ok (descriptor, actions) ->
          go (lineno + 1) (id + 1)
            (Rule.make ~id ~descriptor ~actions :: acc)
            rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 0 [] lines

let print_addr p =
  if Netpkt.Addr.Prefix.is_any p then "any" else Netpkt.Addr.Prefix.to_string p

let print_port = function
  | Descriptor.Any_port -> None
  | Descriptor.Port p -> Some (string_of_int p)
  | Descriptor.Port_range (a, b) -> Some (Printf.sprintf "%d-%d" a b)

let print_rule (rule : Rule.t) =
  let d = rule.Rule.descriptor in
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "from %s to %s" (print_addr d.Descriptor.src)
       (print_addr d.Descriptor.dst));
  (match print_port d.Descriptor.sport with
  | Some s -> Buffer.add_string buf (" sport " ^ s)
  | None -> ());
  (match print_port d.Descriptor.dport with
  | Some s -> Buffer.add_string buf (" dport " ^ s)
  | None -> ());
  (match d.Descriptor.proto with
  | Descriptor.Any_proto -> ()
  | Descriptor.Proto 6 -> Buffer.add_string buf " proto tcp"
  | Descriptor.Proto 17 -> Buffer.add_string buf " proto udp"
  | Descriptor.Proto 1 -> Buffer.add_string buf " proto icmp"
  | Descriptor.Proto p -> Buffer.add_string buf (" proto " ^ string_of_int p));
  Buffer.add_string buf " => ";
  (match rule.Rule.actions with
  | [] -> Buffer.add_string buf "permit"
  | actions ->
    Buffer.add_string buf
      (String.concat ", " (List.map Action.nf_to_string actions)));
  Buffer.contents buf

let print rules = String.concat "\n" (List.map print_rule rules) ^ "\n"

let table_one_text =
  "# Table I example policies (enterprise prefix 128.40.0.0/16)\n"
  ^ print (Rule.table_one (Netpkt.Addr.Prefix.of_string "128.40.0.0/16"))
