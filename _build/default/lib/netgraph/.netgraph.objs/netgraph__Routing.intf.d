lib/netgraph/routing.mli: Graph
