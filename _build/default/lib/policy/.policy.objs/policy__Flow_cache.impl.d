lib/policy/flow_cache.ml: Action List Netpkt
