(** IPv4-like packet headers.

    Carries the fields the enforcement system reads or writes: the
    5-tuple, TTL, and the "unused fields" (ToS byte and fragmentation
    offset) in which Sec. III.E embeds a locally unique label.  The
    label occupies the 8 ToS bits plus the 13 offset bits, giving 21
    usable bits; embedding a label adds no bytes to the packet, which
    is the whole point of label switching. *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;
  sport : int;
  dport : int;
  ttl : int;
  label : int option;  (** the ToS+offset label field; [None] = unset *)
}

val size : int
(** Bytes an IPv4 header occupies on the wire (20, no options). *)

val max_label : int
(** Largest embeddable label: 2^21 - 1. *)

val make :
  ?ttl:int -> src:Addr.t -> dst:Addr.t -> proto:int -> sport:int -> dport:int ->
  unit -> t

val of_flow : ?ttl:int -> Flow.t -> t
val flow : t -> Flow.t

val with_label : t -> int -> t
(** Raises [Invalid_argument] if the label exceeds {!max_label}. *)

val clear_label : t -> t
val with_dst : t -> Addr.t -> t
val with_src : t -> Addr.t -> t
val decrement_ttl : t -> t option
(** [None] when the TTL would reach zero (packet dropped). *)

val pp : Format.formatter -> t -> unit
