(* Tests for the link-state routing substrate: LSA semantics, flooding
   convergence, and equality with the global Dijkstra oracle. *)

let test_lsa_newer () =
  let a = Ospf.Lsa.make ~origin:1 ~seq:2 ~links:[ (2, 1.0) ] in
  let b = Ospf.Lsa.make ~origin:1 ~seq:1 ~links:[ (2, 1.0) ] in
  Alcotest.(check bool) "a newer" true (Ospf.Lsa.newer_than a b);
  Alcotest.(check bool) "b older" false (Ospf.Lsa.newer_than b a);
  let c = Ospf.Lsa.make ~origin:2 ~seq:3 ~links:[] in
  Alcotest.check_raises "different origins"
    (Invalid_argument "Lsa.newer_than: different origins") (fun () ->
      ignore (Ospf.Lsa.newer_than a c))

let test_router_install () =
  let r = Ospf.Router.create ~id:0 ~neighbors:[ (1, 1.0) ] in
  let lsa1 = Ospf.Lsa.make ~origin:5 ~seq:1 ~links:[ (0, 1.0) ] in
  Alcotest.(check bool) "new LSA installs" true (Ospf.Router.install r lsa1);
  Alcotest.(check bool) "same LSA refuses" false (Ospf.Router.install r lsa1);
  let lsa2 = Ospf.Lsa.make ~origin:5 ~seq:2 ~links:[ (0, 2.0) ] in
  Alcotest.(check bool) "newer LSA installs" true (Ospf.Router.install r lsa2);
  Alcotest.(check bool) "older LSA refuses" false (Ospf.Router.install r lsa1);
  Alcotest.(check int) "lsdb size" 1 (Ospf.Router.lsdb_size r)

let test_router_originate_bumps_seq () =
  let r = Ospf.Router.create ~id:3 ~neighbors:[] in
  let a = Ospf.Router.originate r in
  let b = Ospf.Router.originate r in
  Alcotest.(check bool) "seq grows" true (b.Ospf.Lsa.seq > a.Ospf.Lsa.seq)

let tables_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : int array) y -> x = y) a b

let check_topology topo =
  let result = Ospf.Protocol.converge topo in
  let oracle = Netgraph.Routing.build_all topo.Netgraph.Topology.graph in
  Alcotest.(check bool) "tables equal oracle" true
    (tables_equal result.Ospf.Protocol.tables oracle);
  Alcotest.(check bool) "some messages flowed" true
    (result.Ospf.Protocol.stats.Ospf.Protocol.messages > 0)

let test_converge_campus () = check_topology (Netgraph.Campus.generate ~seed:3 ())

let test_converge_waxman_small () =
  let params = { Netgraph.Waxman.default_params with edges = 50; cores = 10 } in
  check_topology (Netgraph.Waxman.generate ~params ~seed:3 ())

let test_converge_line () =
  (* Pathological diameter: a 30-node line. *)
  let g = Netgraph.Graph.create 30 in
  for i = 0 to 28 do
    Netgraph.Graph.add_edge g i (i + 1) 1.0
  done;
  let roles = Array.make 30 Netgraph.Topology.Core in
  let topo = Netgraph.Topology.make ~name:"line" ~graph:g ~roles in
  check_topology topo

let qcheck_converge_random =
  QCheck.Test.make ~count:20 ~name:"flooded tables = oracle on random graphs"
    QCheck.(make Gen.(pair (int_range 3 20) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      let topo =
        Netgraph.Random_graph.topology ~rng ~nodes:n ~extra_edges:0 ()
      in
      let result = Ospf.Protocol.converge ~jitter_seed:seed topo in
      tables_equal result.Ospf.Protocol.tables
        (Netgraph.Routing.build_all topo.Netgraph.Topology.graph))

let test_full_lsdb () =
  let topo = Netgraph.Campus.generate ~seed:4 () in
  let n = Netgraph.Graph.node_count topo.Netgraph.Topology.graph in
  let result = Ospf.Protocol.converge topo in
  ignore result;
  (* Convergence implies every router heard every LSA; spot-check by
     recomputing with a different jitter seed and demanding identical
     tables (flooding must be jitter-independent once quiescent). *)
  let again = Ospf.Protocol.converge ~jitter_seed:12345 topo in
  Alcotest.(check bool) "jitter-independent result" true
    (tables_equal result.Ospf.Protocol.tables again.Ospf.Protocol.tables);
  Alcotest.(check int) "n tables" n (Array.length result.Ospf.Protocol.tables)

(* --- Reconvergence after link failures ------------------------------ *)

let bridges g =
  (* Edges whose removal disconnects the graph — the failures the
     session model cannot handle (no LSA aging). *)
  List.filter
    (fun (u, v, _) ->
      let n = Netgraph.Graph.node_count g in
      let g' = Netgraph.Graph.create n in
      List.iter
        (fun (a, b, c) ->
          if not (a = u && b = v) then Netgraph.Graph.add_edge g' a b c)
        (Netgraph.Graph.edges g);
      not (Netgraph.Graph.is_connected g'))
    (Netgraph.Graph.edges g)

let test_session_matches_converge () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  let oracle = Netgraph.Routing.build_all topo.Netgraph.Topology.graph in
  Alcotest.(check bool) "initial tables" true
    (tables_equal (Ospf.Session.tables session) oracle)

let test_session_reconverges_after_failure () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  let baseline_messages = Ospf.Session.messages session in
  (* Fail three non-bridge links in sequence; after each, tables must
     match Dijkstra on the surviving graph. *)
  let failed = ref 0 in
  List.iter
    (fun (u, v, _) ->
      if !failed < 3 then begin
        let survivors = Ospf.Session.surviving_graph session in
        (* Skip if removing (u,v) would disconnect what is left. *)
        let still_connected =
          let n = Netgraph.Graph.node_count survivors in
          let g' = Netgraph.Graph.create n in
          List.iter
            (fun (a, b, c) ->
              if not (a = min u v && b = max u v) then
                Netgraph.Graph.add_edge g' a b c)
            (Netgraph.Graph.edges survivors);
          Netgraph.Graph.is_connected g'
        in
        if still_connected then begin
          incr failed;
          Ospf.Session.fail_link session u v;
          let oracle =
            Netgraph.Routing.build_all (Ospf.Session.surviving_graph session)
          in
          Alcotest.(check bool)
            (Printf.sprintf "tables after failing %d-%d" u v)
            true
            (tables_equal (Ospf.Session.tables session) oracle)
        end
      end)
    (Netgraph.Graph.edges topo.Netgraph.Topology.graph);
  Alcotest.(check int) "three failures exercised" 3 !failed;
  Alcotest.(check bool) "reconvergence traffic flowed" true
    (Ospf.Session.messages session > baseline_messages)

let test_session_rejects_bad_failures () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  (match Ospf.Session.fail_link session 0 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "accepted a self-link");
  let u, v, _ = List.hd (Netgraph.Graph.edges topo.Netgraph.Topology.graph) in
  Ospf.Session.fail_link session u v;
  match Ospf.Session.fail_link session u v with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "accepted a double failure"

let test_session_cost_change () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  (* Raise the metric on a gateway-core link: reconverged tables must
     equal the oracle on the re-weighted graph. *)
  let gw = List.hd (Netgraph.Topology.gateways topo) in
  let core = List.hd (Netgraph.Topology.cores topo) in
  Ospf.Session.change_cost session gw core 10.0;
  let oracle = Netgraph.Routing.build_all (Ospf.Session.surviving_graph session) in
  Alcotest.(check bool) "tables after re-costing" true
    (tables_equal (Ospf.Session.tables session) oracle);
  (* And the surviving graph really carries the new cost. *)
  Alcotest.(check (option (float 1e-9))) "new cost visible" (Some 10.0)
    (Netgraph.Graph.cost (Ospf.Session.surviving_graph session) gw core);
  (* Changing it again (e.g. back down) also reconverges. *)
  Ospf.Session.change_cost session gw core 1.0;
  let oracle = Netgraph.Routing.build_all (Ospf.Session.surviving_graph session) in
  Alcotest.(check bool) "tables after reverting" true
    (tables_equal (Ospf.Session.tables session) oracle);
  (* Bad inputs are rejected. *)
  Alcotest.(check bool) "rejects non-positive cost" true
    (match Ospf.Session.change_cost session gw core 0.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_session_recover_link () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  let oracle = Netgraph.Routing.build_all topo.Netgraph.Topology.graph in
  (* Fail a non-bridge link, then bring it back: tables and the
     surviving graph must match the pristine network again. *)
  let u, v, c =
    List.find
      (fun e -> not (List.mem e (bridges topo.Netgraph.Topology.graph)))
      (Netgraph.Graph.edges topo.Netgraph.Topology.graph)
  in
  Ospf.Session.fail_link session u v;
  let messages_while_down = Ospf.Session.messages session in
  Ospf.Session.recover_link session u v;
  Alcotest.(check bool) "tables back to pristine" true
    (tables_equal (Ospf.Session.tables session) oracle);
  Alcotest.(check (option (float 1e-9))) "original cost restored" (Some c)
    (Netgraph.Graph.cost (Ospf.Session.surviving_graph session) u v);
  Alcotest.(check bool) "recovery flooded LSAs" true
    (Ospf.Session.messages session > messages_while_down)

let test_session_recover_rejects_never_failed () =
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  let u, v, _ = List.hd (Netgraph.Graph.edges topo.Netgraph.Topology.graph) in
  (match Ospf.Session.recover_link session u v with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "recovered a link that never failed");
  (* Recovery is symmetric in its endpoints, and one-shot. *)
  Ospf.Session.fail_link session u v;
  Ospf.Session.recover_link session v u;
  match Ospf.Session.recover_link session u v with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double recovery accepted"

let test_session_recover_preserves_recost () =
  (* A link whose metric was changed, then failed, comes back at the
     changed metric — the session remembers the operator's re-costing. *)
  let topo = Netgraph.Campus.generate ~seed:3 () in
  let session = Ospf.Session.start topo in
  let u, v, _ =
    List.find
      (fun e -> not (List.mem e (bridges topo.Netgraph.Topology.graph)))
      (Netgraph.Graph.edges topo.Netgraph.Topology.graph)
  in
  Ospf.Session.change_cost session u v 10.0;
  Ospf.Session.fail_link session u v;
  Ospf.Session.recover_link session u v;
  Alcotest.(check (option (float 1e-9))) "re-costed metric survives" (Some 10.0)
    (Netgraph.Graph.cost (Ospf.Session.surviving_graph session) u v);
  let oracle = Netgraph.Routing.build_all (Ospf.Session.surviving_graph session) in
  Alcotest.(check bool) "tables match oracle" true
    (tables_equal (Ospf.Session.tables session) oracle)

let qcheck_session_random_failures =
  QCheck.Test.make ~count:15 ~name:"session reconverges on random graphs"
    QCheck.(make Gen.(pair (int_range 4 14) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      (* Extra edges create failure headroom. *)
      let topo =
        Netgraph.Random_graph.topology ~rng ~nodes:n ~extra_edges:n ~max_cost:3 ()
      in
      let g = topo.Netgraph.Topology.graph in
      let session = Ospf.Session.start ~jitter_seed:seed topo in
      let non_bridges =
        List.filter
          (fun (u, v, c) -> not (List.mem (u, v, c) (bridges g)))
          (Netgraph.Graph.edges g)
      in
      match non_bridges with
      | [] -> true (* nothing safely failable *)
      | (u, v, _) :: _ ->
        Ospf.Session.fail_link session u v;
        tables_equal (Ospf.Session.tables session)
          (Netgraph.Routing.build_all (Ospf.Session.surviving_graph session)))

let suite =
  [
    Alcotest.test_case "lsa ordering" `Quick test_lsa_newer;
    Alcotest.test_case "session matches converge" `Quick test_session_matches_converge;
    Alcotest.test_case "session reconverges after failures" `Quick
      test_session_reconverges_after_failure;
    Alcotest.test_case "session rejects bad failures" `Quick
      test_session_rejects_bad_failures;
    Alcotest.test_case "session link cost change" `Quick test_session_cost_change;
    Alcotest.test_case "session link recovery" `Quick test_session_recover_link;
    Alcotest.test_case "session recovery rejects never-failed" `Quick
      test_session_recover_rejects_never_failed;
    Alcotest.test_case "session recovery preserves recost" `Quick
      test_session_recover_preserves_recost;
    QCheck_alcotest.to_alcotest qcheck_session_random_failures;
    Alcotest.test_case "router install" `Quick test_router_install;
    Alcotest.test_case "originate bumps seq" `Quick test_router_originate_bumps_seq;
    Alcotest.test_case "converge campus" `Quick test_converge_campus;
    Alcotest.test_case "converge waxman (small)" `Quick test_converge_waxman_small;
    Alcotest.test_case "converge 30-node line" `Quick test_converge_line;
    QCheck_alcotest.to_alcotest qcheck_converge_random;
    Alcotest.test_case "jitter independence" `Quick test_full_lsdb;
  ]
