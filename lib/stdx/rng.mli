(** Deterministic pseudo-random number generation.

    A [splitmix64] generator: fast, statistically solid for simulation
    purposes, and fully deterministic from a seed so that every
    experiment in this repository is reproducible bit-for-bit.  Each
    generator owns its own state; there is no hidden global. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t].  Used to give sub-components their own streams.  Because it
    advances the parent, the derived stream depends on how many draws
    preceded the split — use {!derive} when the derivation must be
    order-independent. *)

val derive : t -> int -> t
(** [derive t i] is the [i]-th child stream of [t]'s current state.
    Unlike {!split} it does {e not} advance [t]: the same [(t, i)]
    always yields the same stream no matter how many other children
    were derived before or after, which is what lets a parallel sweep
    hand every cell its own generator while remaining bit-identical to
    a sequential one.  Distinct indices give statistically independent
    streams (the index is scrambled through the splitmix64 finalizer
    before being folded into the state), and every child is
    independent of the parent's own output stream.  Raises
    [Invalid_argument] on a negative index. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct elements.
    Raises [Invalid_argument] if [k > Array.length arr]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
