lib/sim/report.ml: Buffer Epochsim Experiment Format List Policy Printf
