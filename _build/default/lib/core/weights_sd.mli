(** Per-(source, destination) forwarding weights — Eq. (1)'s
    t_{s,d,p}(x,y) values.

    The exact formulation keeps a separate split per (source subnet,
    destination subnet) pair; an enforcing node recovers (s, d) from
    the packet's addresses and looks its row up here, falling back to
    the aggregated {!Weights} (and ultimately hot-potato) when a pair
    was never measured. *)

type t

val create : unit -> t

val set :
  t -> Mbox.Entity.t -> rule:int -> nf:Policy.Action.nf ->
  src:int -> dst:int -> (int * float) array -> unit
(** [src]/[dst] are proxy ids. *)

val find :
  t -> Mbox.Entity.t -> rule:int -> nf:Policy.Action.nf ->
  src:int -> dst:int -> (int * float) array option

val entries : t -> int
(** Row count — the dissemination volume Eq. (2) exists to avoid. *)

val cells : t -> int
