test/test_packet.ml: Alcotest Fmt Gen List Netpkt QCheck QCheck_alcotest
