lib/ospf/protocol.ml: Array Dess List Netgraph Router Stdx
