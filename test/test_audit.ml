(* Tests for the online invariant audit harness (lib/audit): clean
   audited runs across the simulator's feature combinations, audit-off
   bit-identity, deliberate corruption detection, synthetic checker
   unit tests on hand-built event streams, the Pktsim<->Flowsim
   differential oracle, and deterministic-replay properties. *)

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let campus ?(seed = 21) () =
  Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed

let pkt_config =
  { Sim.Pktsim.default_config with packet_interval = 0.5; start_window = 20.0 }

let audited = { pkt_config with Sim.Pktsim.audit = true }

let setup ?(strategy = `Lb) ?(flows = 200) ?(seed = 21) () =
  let dep = campus ~seed () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed ~flows () in
  let kind =
    match strategy with
    | `Hp -> Sdm.Controller.Hot_potato
    | `Rand -> Sdm.Controller.Random_uniform
    | `Lb -> Sdm.Controller.Load_balanced (Sim.Workload.measure workload)
  in
  match Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules kind with
  | Error e -> Alcotest.fail e
  | Ok controller -> (controller, workload)

let report (s : Sim.Pktsim.stats) =
  match s.Sim.Pktsim.audit_report with
  | Some r -> r
  | None -> Alcotest.fail "audited run produced no audit report"

let check_clean name (s : Sim.Pktsim.stats) =
  let r = report s in
  (match r.Audit.Checker.sample with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: %d violation(s), first: %s" name
      r.Audit.Checker.violations
      (Format.asprintf "%a" Audit.Checker.pp_violation v));
  Alcotest.(check bool) (name ^ " ok") true (Audit.Checker.ok r);
  r

(* --- Audited end-to-end runs ------------------------------------------- *)

let test_audit_clean_run () =
  let controller, workload = setup () in
  let s = Sim.Pktsim.run ~config:audited ~controller ~workload () in
  let r = check_clean "clean LB run" s in
  Alcotest.(check int) "every packet audited" s.Sim.Pktsim.injected_packets
    r.Audit.Checker.packets;
  Alcotest.(check int) "every flow audited"
    (Array.length workload.Sim.Workload.flows)
    r.Audit.Checker.flows;
  Alcotest.(check int) "deliveries split"
    s.Sim.Pktsim.delivered_packets
    (r.Audit.Checker.delivered + r.Audit.Checker.wp_served);
  Alcotest.(check bool) "steering decisions observed" true
    (r.Audit.Checker.decisions > 0);
  Alcotest.(check bool) "events outnumber packets" true
    (r.Audit.Checker.events > r.Audit.Checker.packets);
  (* The report pretty-printer holds together. *)
  let text = Format.asprintf "%a" Audit.Checker.pp_report r in
  Alcotest.(check bool) "report renders" true
    (String.length text > 0 && String.index_opt text 'a' <> None)

let test_audit_off_bit_identical () =
  (* The audit is a pure observer: switching it on changes no other
     statistic, bit for bit. *)
  let controller, workload = setup () in
  let plainr = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let auditedr = Sim.Pktsim.run ~config:audited ~controller ~workload () in
  Alcotest.(check bool) "no report when off" true
    (plainr.Sim.Pktsim.audit_report = None);
  ignore (check_clean "audited twin" auditedr);
  Alcotest.(check bool) "all other stats bit-identical" true
    ({ auditedr with Sim.Pktsim.audit_report = None } = plainr)

let test_audit_clean_variants () =
  (* Every data-path feature the simulator has, audited: plain
     tunnelling, ECMP, web-proxy cache serving, label expiry plus
     teardown recovery, bounded caches, FIFO queueing, hot potato. *)
  let controller, workload = setup ~flows:120 () in
  let variants =
    [
      ("no label switching", { audited with Sim.Pktsim.label_switching = false });
      ("ecmp", { audited with Sim.Pktsim.ecmp = true });
      ("wp cache", { audited with Sim.Pktsim.wp_cache_hit_ratio = 0.5 });
      ( "label expiry",
        { audited with Sim.Pktsim.packet_interval = 10.0; label_timeout = 3.0 } );
      ("bounded caches", { audited with Sim.Pktsim.cache_capacity = Some 64 });
      ("queueing", { audited with Sim.Pktsim.service_rate = 2.0 });
    ]
  in
  List.iter
    (fun (name, config) ->
      let s = Sim.Pktsim.run ~config ~controller ~workload () in
      ignore (check_clean name s);
      if name = "wp cache" then
        Alcotest.(check bool) "wp actually served" true
          (s.Sim.Pktsim.wp_cache_served > 0);
      if name = "label expiry" then
        Alcotest.(check bool) "misses actually happened" true
          (s.Sim.Pktsim.label_misses > 0))
    variants;
  let hp_controller, _ = setup ~strategy:`Hp ~flows:120 () in
  ignore
    (check_clean "hot potato"
       (Sim.Pktsim.run ~config:audited ~controller:hp_controller ~workload ()))

let test_audit_catches_bypass () =
  (* The deliberate-corruption hook: every 5th packet skips its chain.
     The audit must catch each escape as a chain violation carrying the
     packet's hop history. *)
  let controller, workload = setup ~flows:100 () in
  let config = { audited with Sim.Pktsim.debug_bypass_chain = Some 5 } in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  let r = report s in
  Alcotest.(check bool) "violations found" true (r.Audit.Checker.violations > 0);
  Alcotest.(check bool) "not ok" false (Audit.Checker.ok r);
  let chains =
    List.filter
      (fun v -> v.Audit.Checker.invariant = Audit.Checker.Chain)
      r.Audit.Checker.sample
  in
  Alcotest.(check bool) "chain violations sampled" true (chains <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "violation carries a trace" true
        (v.Audit.Checker.trace <> []);
      Alcotest.(check bool) "trace starts at admission" true
        (match v.Audit.Checker.trace with
        | first :: _ ->
          (* The oldest trace line is the admission record. *)
          contains_sub first "admitted at proxy"
        | [] -> false))
    chains;
  (* The escape is invisible to the simulator's own counters — only
     the audit sees it. *)
  Alcotest.(check int) "sim itself counted no violations" 0
    s.Sim.Pktsim.policy_violations

let test_audit_clean_chaos () =
  (* A full chaos run — crash, recovery, link loss, control loss, the
     detection-delay blind window — audits clean: dead-box and
     link-loss drops are legitimate terminals, failover re-steering is
     sticky per liveness view, and nothing else trips. *)
  let controller, workload = setup ~flows:150 () in
  let schedule =
    Fault.Schedule.make ~link_loss:0.02 ~control_loss:0.2 ~loss_seed:7
      Fault.Schedule.
        [
          { at = 15.0; what = Mbox_crash 0 };
          { at = 45.0; what = Mbox_recover 0 };
        ]
  in
  List.iter
    (fun failover ->
      let config =
        {
          audited with
          Sim.Pktsim.faults = Some schedule;
          detection_delay = 3.0;
          failover;
        }
      in
      let s = Sim.Pktsim.run ~config ~controller ~workload () in
      let r =
        check_clean (Printf.sprintf "chaos failover=%b" failover) s
      in
      Alcotest.(check int) "audit saw every drop" s.Sim.Pktsim.dropped_packets
        r.Audit.Checker.dropped)
    [ true; false ]

let test_audit_clean_live () =
  (* The live control plane: epoch re-optimizations publish versions
     over a lossy channel while traffic flows.  Version-tagged caches,
     clamped decisions and staged installs must all audit clean. *)
  let controller, workload = setup ~strategy:`Hp ~flows:120 () in
  let probe = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = probe.Sim.Pktsim.sim_time /. 4.0;
      reconcile_interval = probe.Sim.Pktsim.sim_time /. 16.0;
    }
  in
  let schedule = Fault.Schedule.make ~control_loss:0.10 ~loss_seed:5 [] in
  let config =
    { audited with Sim.Pktsim.faults = Some schedule; live = Some live }
  in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  let r = check_clean "live run" s in
  Alcotest.(check bool) "versions were published" true
    (s.Sim.Pktsim.final_config_version > 0);
  Alcotest.(check int) "audit tracked every version"
    s.Sim.Pktsim.final_config_version r.Audit.Checker.versions

let test_ablation_audit_plumbing () =
  (* The Experiment layer threads [?audit] down to every packet-level
     row and reports the per-row verdicts. *)
  let chaos =
    Sim.Experiment.ablation_chaos ~flows:80 ~audit:true
      ~detection_delays:[ 5.0 ] ()
  in
  List.iter
    (fun (row : Sim.Experiment.chaos_row) ->
      Alcotest.(check (option int))
        ("chaos row " ^ row.Sim.Experiment.chaos_mode)
        (Some 0) row.Sim.Experiment.chaos_audit)
    chaos.Sim.Experiment.chaos_rows;
  let live =
    Sim.Experiment.ablation_live ~flows:80 ~audit:true ~control_losses:[ 0.05 ]
      ()
  in
  List.iter
    (fun (row : Sim.Experiment.live_row) ->
      Alcotest.(check (option int)) "live row" (Some 0)
        row.Sim.Experiment.live_audit)
    live.Sim.Experiment.live_rows;
  (* Audit off: the rows say so instead of claiming a clean pass. *)
  let plain =
    Sim.Experiment.ablation_chaos ~flows:80 ~detection_delays:[ 5.0 ] ()
  in
  List.iter
    (fun (row : Sim.Experiment.chaos_row) ->
      Alcotest.(check (option int)) "unaudited row" None
        row.Sim.Experiment.chaos_audit)
    plain.Sim.Experiment.chaos_rows

let test_audit_reopt_ablation () =
  (* Warm-started in-run plans under churn: the audited ABL-REOPT runs
     — crash, concurrent crash, staged recovery, control loss, warm
     and cold rows alike — must satisfy every enforcement invariant
     (LP-plan feasibility and mixed-version hygiene included), and the
     controller-level replay must agree on the optimum at every
     step. *)
  let r = Sim.Experiment.ablation_reopt ~flows:80 ~audit:true () in
  List.iter
    (fun (row : Sim.Experiment.reopt_row) ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s warm=%b audits clean" row.Sim.Experiment.rp_scenario
           row.Sim.Experiment.rp_warm)
        (Some 0) row.Sim.Experiment.rp_audit)
    r.Sim.Experiment.rp_rows;
  Alcotest.(check int) "four audited rows" 4
    (List.length r.Sim.Experiment.rp_rows);
  Alcotest.(check int) "warm/cold optima agree on every replay step"
    r.Sim.Experiment.rp_total r.Sim.Experiment.rp_agree;
  (* Warm starting must not perturb the data plane: per scenario the
     warm row injects the same packets and publishes the same number
     of versions as the cold row. *)
  List.iter
    (fun (info : Sim.Experiment.reopt_scenario_info) ->
      let row warm =
        List.find
          (fun (row : Sim.Experiment.reopt_row) ->
            row.Sim.Experiment.rp_scenario = info.Sim.Experiment.ri_name
            && row.Sim.Experiment.rp_warm = warm)
          r.Sim.Experiment.rp_rows
      in
      let cold = row false and warm = row true in
      Alcotest.(check int)
        (info.Sim.Experiment.ri_name ^ " same injected")
        cold.Sim.Experiment.rp_injected warm.Sim.Experiment.rp_injected;
      Alcotest.(check int)
        (info.Sim.Experiment.ri_name ^ " same versions")
        cold.Sim.Experiment.rp_versions warm.Sim.Experiment.rp_versions)
    r.Sim.Experiment.rp_infos

let test_audit_reopt_jobs_shards_identical () =
  (* The sharding discipline extends to the new experiment: the whole
     report — audited rows, pivot counters, replay steps, float
     lambdas — is structurally identical under {1,1} and {2,2}. *)
  let a = Sim.Experiment.ablation_reopt ~flows:60 ~audit:true ~jobs:1 ~shards:1 () in
  let b = Sim.Experiment.ablation_reopt ~flows:60 ~audit:true ~jobs:2 ~shards:2 () in
  Alcotest.(check bool) "jobs/shards bit-identity" true (a = b)

(* --- Synthetic event streams: each invariant fires ---------------------- *)

let mk_flow i =
  Netpkt.Flow.make ~src:(1000 + i) ~dst:2000 ~proto:6 ~sport:(i mod 60000)
    ~dport:80

let enforced_rule (controller : Sdm.Controller.t) =
  List.find
    (fun (r : Policy.Rule.t) ->
      not (Policy.Action.is_permit r.Policy.Rule.actions))
    controller.Sdm.Controller.rules

let fresh_checker ?min_samples () =
  let controller, _ = setup ~flows:10 () in
  (Audit.Checker.create ?min_samples ~controller (), controller)

let violations_of ?expect checker =
  let r = Audit.Checker.finalize ?expect checker in
  (r.Audit.Checker.violations, r.Audit.Checker.sample)

let test_checker_lost_packet () =
  let c, controller = fresh_checker () in
  let rule = enforced_rule controller in
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid = 0;
         time = 1.0;
         flow = mk_flow 0;
         proxy = 0;
         admission =
           Audit.Event.Chained
             { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel };
         version = 0;
         bytes = 100;
         label = None;
       });
  let n, sample = violations_of c in
  Alcotest.(check int) "one violation" 1 n;
  match sample with
  | [ v ] ->
    Alcotest.(check bool) "conservation" true
      (v.Audit.Checker.invariant = Audit.Checker.Conservation)
  | _ -> Alcotest.fail "expected exactly one sampled violation"

let test_checker_duplicate_terminal () =
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid = 0;
         time = 1.0;
         flow = mk_flow 0;
         proxy = 0;
         admission = Audit.Event.Unmatched;
         version = 0;
         bytes = 64;
         label = None;
       });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 2.0; bytes = 64 });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 3.0; bytes = 64 });
  let n, _ = violations_of c in
  Alcotest.(check int) "duplicate delivery flagged" 1 n

let test_checker_chain_violations () =
  let c, controller = fresh_checker () in
  let rule = enforced_rule controller in
  let admit aid =
    Audit.Checker.record c
      (Audit.Event.Admitted
         {
           aid;
           time = 1.0;
           flow = mk_flow aid;
           proxy = 0;
           admission =
             Audit.Event.Chained
               { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel };
           version = 0;
           bytes = 100;
           label = None;
         })
  in
  (* Packet 0: delivered with an empty chain. *)
  admit 0;
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 2.0; bytes = 100 });
  (* Packet 1: full correct chain — no violation. *)
  admit 1;
  List.iteri
    (fun i nf ->
      Audit.Checker.record c
        (Audit.Event.Enforced
           { aid = 1; time = 2.0 +. float_of_int i; mbox = i; nf }))
    rule.Policy.Rule.actions;
  Audit.Checker.record c (Audit.Event.Delivered { aid = 1; time = 9.0; bytes = 100 });
  (* Packet 2: wrong function enforced. *)
  let wrong =
    if rule.Policy.Rule.actions = [ Policy.Action.TM ] then Policy.Action.FW
    else Policy.Action.TM
  in
  admit 2;
  Audit.Checker.record c
    (Audit.Event.Enforced { aid = 2; time = 2.0; mbox = 0; nf = wrong });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 2; time = 3.0; bytes = 100 });
  let n, sample = violations_of c in
  Alcotest.(check int) "two chain violations" 2 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "chain invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Chain);
      Alcotest.(check bool) "has trace" true (v.Audit.Checker.trace <> []))
    sample

let test_checker_stickiness () =
  let c, controller = fresh_checker () in
  let rule = enforced_rule controller in
  let nf = List.hd rule.Policy.Rule.actions in
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid = 0;
         time = 1.0;
         flow = mk_flow 0;
         proxy = 0;
         admission =
           Audit.Event.Chained
             { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel };
         version = 0;
         bytes = 100;
         label = None;
       });
  let steer ~time ~mbox =
    Audit.Checker.record c
      (Audit.Event.Steered
         {
           aid = 0;
           time;
           entity = Mbox.Entity.Proxy 0;
           rule_id = rule.Policy.Rule.id;
           nf;
           version = 0;
           view = 0L;
           mbox;
         })
  in
  steer ~time:1.0 ~mbox:0;
  steer ~time:2.0 ~mbox:0;
  (* same choice: fine *)
  steer ~time:3.0 ~mbox:1;
  (* different choice, same key: violation *)
  Audit.Checker.record c (Audit.Event.Dropped { aid = 0; time = 4.0; reason = Audit.Event.Link_loss });
  let n, sample = violations_of c in
  Alcotest.(check int) "one stickiness violation" 1 n;
  Alcotest.(check bool) "right invariant" true
    (match sample with
    | [ v ] -> v.Audit.Checker.invariant = Audit.Checker.Stickiness
    | _ -> false)

let test_checker_label_hygiene () =
  let c, _ = fresh_checker () in
  (* A hit on a label nobody installed. *)
  Audit.Checker.record c
    (Audit.Event.Label_hit { mbox = 0; time = 1.0; src = 7; label = 3; version = 0 });
  (* An insert tagged with a version the device is not running. *)
  Audit.Checker.record c
    (Audit.Event.Label_insert { mbox = 1; time = 2.0; src = 7; label = 4; version = 9 });
  let n, sample = violations_of c in
  Alcotest.(check int) "two hygiene violations" 2 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "hygiene invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Hygiene))
    sample

let test_checker_label_purged_on_install () =
  let c, controller = fresh_checker () in
  let n_proxies =
    Array.length controller.Sdm.Controller.deployment.Sdm.Deployment.proxies
  in
  let dev = n_proxies in
  (* mbox 0's device index *)
  Audit.Checker.record c
    (Audit.Event.Label_insert { mbox = 0; time = 1.0; src = 7; label = 3; version = 0 });
  Audit.Checker.record c (Audit.Event.Config_publish { time = 2.0; version = 1 });
  Audit.Checker.record c (Audit.Event.Config_install { dev; time = 3.0; version = 1 });
  (* Still staged: v0 is within {installed-1, installed}. *)
  Audit.Checker.record c
    (Audit.Event.Label_hit { mbox = 0; time = 4.0; src = 7; label = 3; version = 0 });
  Audit.Checker.record c (Audit.Event.Config_publish { time = 5.0; version = 2 });
  Audit.Checker.record c (Audit.Event.Config_install { dev; time = 6.0; version = 2 });
  (* Now v0 must have been purged: using it is a hygiene violation. *)
  Audit.Checker.record c
    (Audit.Event.Label_hit { mbox = 0; time = 7.0; src = 7; label = 3; version = 0 });
  let n, _ = violations_of c in
  Alcotest.(check int) "stale-label use flagged" 1 n

let test_checker_config_hygiene () =
  let c, _ = fresh_checker () in
  (* Installing a version that was never published. *)
  Audit.Checker.record c (Audit.Event.Config_install { dev = 0; time = 1.0; version = 5 });
  (* Publishing then regressing a device. *)
  Audit.Checker.record c (Audit.Event.Config_publish { time = 2.0; version = 1 });
  Audit.Checker.record c (Audit.Event.Config_install { dev = 1; time = 3.0; version = 1 });
  Audit.Checker.record c (Audit.Event.Config_install { dev = 1; time = 4.0; version = 0 });
  let n, _ = violations_of c in
  Alcotest.(check int) "unpublished + regression" 2 n

(* --- Quorum agreement ---------------------------------------------- *)

let test_checker_quorum_clean () =
  (* The happy path of the replicated control plane: propose, a quorum
     of accepts, commits on every replica, then publish — no findings.
     Leader elections are informational and never flagged. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.0; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_accept { time = 1.1; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_accept { time = 1.2; version = 1; replica = 1; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.3; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.4; version = 1; replica = 1; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.5; version = 1; replica = 2; digest = 7L });
  Audit.Checker.record c (Audit.Event.Leader_elect { time = 1.6; replica = 1; previous = 0 });
  Audit.Checker.record c (Audit.Event.Config_publish { time = 2.0; version = 1 });
  let n, _ = violations_of c in
  Alcotest.(check int) "clean quorum round" 0 n

let test_checker_quorum_publish_gate () =
  (* Once any quorum event has been seen, no version may reach the
     publish stage without a commit; a legacy single-controller stream
     (no quorum events at all) stays exempt. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c (Audit.Event.Config_publish { time = 1.0; version = 1 });
  let n, _ = violations_of c in
  Alcotest.(check int) "legacy stream exempt" 0 n;
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.0; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.1; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c (Audit.Event.Config_publish { time = 1.2; version = 1 });
  Audit.Checker.record c (Audit.Event.Config_publish { time = 2.0; version = 2 });
  let n, sample = violations_of c in
  Alcotest.(check int) "uncommitted publish flagged" 1 n;
  Alcotest.(check bool) "quorum invariant" true
    (match sample with
    | [ v ] -> v.Audit.Checker.invariant = Audit.Checker.Quorum
    | _ -> false)

let test_checker_quorum_divergent_commit () =
  (* Two replicas committing different digests for one version is the
     split-brain disaster the round exists to prevent.  A superseding
     re-proposal of the same version is legal; divergent commits are
     not. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.0; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.1; version = 1; replica = 0; digest = 9L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.2; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.3; version = 1; replica = 1; digest = 9L });
  let n, sample = violations_of c in
  Alcotest.(check int) "divergent commit flagged" 1 n;
  Alcotest.(check bool) "quorum invariant" true
    (match sample with
    | [ v ] -> v.Audit.Checker.invariant = Audit.Checker.Quorum
    | _ -> false)

let test_checker_quorum_unproposed () =
  (* Accepting or committing a (version, digest) nobody proposed means
     the round was skipped. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Quorum_accept { time = 1.0; version = 3; replica = 1; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.1; version = 4; replica = 1; digest = 8L });
  let n, _ = violations_of c in
  Alcotest.(check int) "unproposed accept + commit" 2 n

let test_checker_quorum_commit_regression () =
  (* A replica's committed version may never move backwards. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.0; version = 1; replica = 0; digest = 7L });
  Audit.Checker.record c
    (Audit.Event.Quorum_propose { time = 1.1; version = 2; replica = 0; digest = 8L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.2; version = 2; replica = 0; digest = 8L });
  Audit.Checker.record c
    (Audit.Event.Quorum_commit { time = 1.3; version = 1; replica = 0; digest = 7L });
  let n, sample = violations_of c in
  Alcotest.(check int) "commit regression flagged" 1 n;
  Alcotest.(check bool) "quorum invariant" true
    (match sample with
    | [ v ] -> v.Audit.Checker.invariant = Audit.Checker.Quorum
    | _ -> false)

(* --- Corruption repair --------------------------------------------- *)

let label_site = Audit.Event.Label_site { mbox = 0; src = 7; label = 3 }

let corrupt_inject ?(cid = 0) ?(kind = Audit.Event.Lost_entry)
    ?(site = label_site) ?(deadline = 10.0) ~time c =
  Audit.Checker.record c
    (Audit.Event.Corrupt_inject { time; cid; kind; site; deadline })

let test_checker_repair_clean () =
  (* The happy anti-entropy path: inject, manifest, detect, repair
     within the deadline — no findings.  A corruption that never
     manifested needs no repair either. *)
  let c, _ = fresh_checker () in
  corrupt_inject c ~cid:0 ~time:1.0 ~deadline:10.0;
  Audit.Checker.record c
    (Audit.Event.Corrupt_manifest { time = 2.0; cid = 0; aid = -1 });
  Audit.Checker.record c (Audit.Event.Corrupt_detect { time = 3.0; dev = 2 });
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 4.0; cid = 0; dev = 2; action = Audit.Event.Purged });
  corrupt_inject c ~cid:1 ~time:5.0 ~deadline:6.0;
  (* cid 1 never manifests: benign by construction, even unrepaired
     and past its deadline. *)
  let n, _ = violations_of c in
  Alcotest.(check int) "clean repair round" 0 n

let test_checker_repair_deadline () =
  (* A manifested corruption repaired after its deadline is flagged on
     arrival; one never repaired at all is caught at finalize — but
     only when the deadline is finite (sweep disabled = infinite). *)
  let late, _ = fresh_checker () in
  corrupt_inject late ~cid:0 ~time:1.0 ~deadline:5.0;
  Audit.Checker.record late
    (Audit.Event.Corrupt_manifest { time = 2.0; cid = 0; aid = -1 });
  Audit.Checker.record late
    (Audit.Event.Corrupt_repair
       { time = 6.0; cid = 0; dev = 2; action = Audit.Event.Rebased });
  let n, sample = violations_of late in
  Alcotest.(check int) "late repair flagged" 1 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "repair invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Repair))
    sample;
  let never, _ = fresh_checker () in
  corrupt_inject never ~cid:0 ~time:1.0 ~deadline:5.0;
  Audit.Checker.record never
    (Audit.Event.Corrupt_manifest { time = 2.0; cid = 0; aid = -1 });
  let n, _ = violations_of never in
  Alcotest.(check int) "never repaired flagged at finalize" 1 n;
  let unswept, _ = fresh_checker () in
  corrupt_inject unswept ~cid:0 ~time:1.0 ~deadline:infinity;
  Audit.Checker.record unswept
    (Audit.Event.Corrupt_manifest { time = 2.0; cid = 0; aid = -1 });
  let n, _ = violations_of unswept in
  Alcotest.(check int) "infinite deadline unenforceable" 0 n

let test_checker_repair_stream_hygiene () =
  (* The repair mirror distrusts the stream itself: detections with
     nothing injected, repairs of unknown corruption ids, double
     repairs, and manifestations after the repair are all findings. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c (Audit.Event.Corrupt_detect { time = 0.5; dev = 0 });
  corrupt_inject c ~cid:0 ~time:1.0 ~deadline:infinity;
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 2.0; cid = 0; dev = 2; action = Audit.Event.Purged });
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 3.0; cid = 0; dev = 2; action = Audit.Event.Purged });
  Audit.Checker.record c
    (Audit.Event.Corrupt_manifest { time = 4.0; cid = 0; aid = -1 });
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 5.0; cid = 9; dev = 2; action = Audit.Event.Purged });
  let n, _ = violations_of c in
  Alcotest.(check int)
    "unarmed detect + double repair + manifest-after-repair + unknown cid" 4 n

let test_checker_repair_staged_window () =
  (* A repair may only re-install certified state: a published version
     that does not regress the device it lands on. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c (Audit.Event.Config_publish { time = 1.0; version = 1 });
  Audit.Checker.record c
    (Audit.Event.Config_install { dev = 0; time = 1.5; version = 1 });
  Audit.Checker.record c
    (Audit.Event.Config_install { dev = 1; time = 1.6; version = 1 });
  corrupt_inject c ~cid:0 ~kind:Audit.Event.Lost_config
    ~site:(Audit.Event.Config_site { dev = 0 })
    ~time:2.0 ~deadline:infinity;
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 3.0; cid = 0; dev = 0; action = Audit.Event.Reinstalled 5 });
  corrupt_inject c ~cid:1 ~kind:Audit.Event.Lost_config
    ~site:(Audit.Event.Config_site { dev = 1 })
    ~time:4.0 ~deadline:infinity;
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 5.0; cid = 1; dev = 1; action = Audit.Event.Reinstalled 0 });
  let n, sample = violations_of c in
  Alcotest.(check int) "unpublished + regressing reinstall" 2 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "repair invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Repair))
    sample

let test_checker_resurrect_excuse () =
  (* A hit on a resurrected label site is the corruption manifesting —
     the injector announces it, so hygiene must not double-count it;
     once the site is repaired the excuse dies with it. *)
  let c, _ = fresh_checker () in
  corrupt_inject c ~cid:0 ~kind:Audit.Event.Resurrected ~time:1.0
    ~deadline:infinity;
  Audit.Checker.record c
    (Audit.Event.Label_hit
       { mbox = 0; time = 2.0; src = 7; label = 3; version = 0 });
  Audit.Checker.record c
    (Audit.Event.Corrupt_repair
       { time = 3.0; cid = 0; dev = 2; action = Audit.Event.Purged });
  Audit.Checker.record c
    (Audit.Event.Label_hit
       { mbox = 0; time = 4.0; src = 7; label = 3; version = 0 });
  (* Exactly one finding: the pre-repair hit was excused, the
     post-repair one is ordinary hygiene. *)
  let n, sample = violations_of c in
  Alcotest.(check int) "post-repair hit is hygiene again" 1 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "hygiene invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Hygiene))
    sample

let test_checker_counter_cross_check () =
  let c, controller = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid = 0;
         time = 1.0;
         flow = mk_flow 0;
         proxy = 0;
         admission = Audit.Event.Unmatched;
         version = 0;
         bytes = 64;
         label = None;
       });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 2.0; bytes = 64 });
  let n_mboxes =
    Array.length controller.Sdm.Controller.deployment.Sdm.Deployment.middleboxes
  in
  (* Matching totals: clean. *)
  let n, _ =
    violations_of
      ~expect:
        {
          Audit.Checker.injected = 1;
          delivered = 1;
          dropped = 0;
          wp_served = 0;
          fragments = 0;
          loads = Array.make n_mboxes 0.0;
        }
      c
  in
  Alcotest.(check int) "matching totals are clean" 0 n;
  (* A second finalize with a cooked injected counter flags it. *)
  let c2, _ = fresh_checker () in
  let n2, _ =
    violations_of
      ~expect:
        {
          Audit.Checker.injected = 3;
          delivered = 0;
          dropped = 0;
          wp_served = 0;
          fragments = 0;
          loads = Array.make n_mboxes 0.0;
        }
      c2
  in
  Alcotest.(check int) "cooked counter flagged" 1 n2

let test_checker_feasibility () =
  (* Steer a large population of distinct flows all to one candidate
     under a Random_uniform plan: the observed split is far outside
     the binomial tolerance and must be flagged. *)
  let controller, _ = setup ~strategy:`Rand ~flows:10 () in
  let rule = enforced_rule controller in
  let nf = List.hd rule.Policy.Rule.actions in
  let cands =
    Sdm.Candidate.get controller.Sdm.Controller.candidates (Mbox.Entity.Proxy 0)
      nf
  in
  Alcotest.(check bool) "needs >= 2 candidates" true (List.length cands >= 2);
  let target = (List.hd cands).Mbox.Middlebox.id in
  let c = Audit.Checker.create ~min_samples:64 ~controller () in
  for i = 0 to 199 do
    Audit.Checker.record c
      (Audit.Event.Admitted
         {
           aid = i;
           time = 1.0;
           flow = mk_flow i;
           proxy = 0;
           admission =
             Audit.Event.Chained
               { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel };
           version = 0;
           bytes = 100;
           label = None;
         });
    Audit.Checker.record c
      (Audit.Event.Steered
         {
           aid = i;
           time = 1.0;
           entity = Mbox.Entity.Proxy 0;
           rule_id = rule.Policy.Rule.id;
           nf;
           version = 0;
           view = 0L;
           mbox = target;
         });
    (* Dropped terminals keep the conservation and chain checks quiet
       so the feasibility signal stands alone. *)
    Audit.Checker.record c
      (Audit.Event.Dropped { aid = i; time = 2.0; reason = Audit.Event.Link_loss })
  done;
  let r = Audit.Checker.finalize c in
  Alcotest.(check bool) "group was large enough to test" true
    (r.Audit.Checker.feasibility_groups >= 1);
  Alcotest.(check bool) "concentration flagged" true
    (r.Audit.Checker.violations >= 1);
  Alcotest.(check bool) "as a feasibility violation" true
    (List.exists
       (fun v -> v.Audit.Checker.invariant = Audit.Checker.Feasibility)
       r.Audit.Checker.sample)

let wp_rule (controller : Sdm.Controller.t) =
  List.find
    (fun (r : Policy.Rule.t) ->
      List.exists (Policy.Action.equal_nf Policy.Action.WP)
        r.Policy.Rule.actions)
    controller.Sdm.Controller.rules

let admit_chained c (rule : Policy.Rule.t) aid =
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid;
         time = 1.0;
         flow = mk_flow aid;
         proxy = 0;
         admission =
           Audit.Event.Chained
             { rule_id = rule.Policy.Rule.id; mode = Audit.Event.Tunnel };
         version = 0;
         bytes = 100;
         label = None;
       })

let test_checker_wp_cut_short () =
  (* A cache hit at the WP legally ends the chain early: the enforced
     prefix up to and including the WP satisfies the rule. *)
  let c, controller = fresh_checker () in
  let rule = wp_rule controller in
  admit_chained c rule 0;
  let rec prefix_through_wp i = function
    | [] -> ()
    | nf :: rest ->
      Audit.Checker.record c
        (Audit.Event.Enforced { aid = 0; time = 2.0 +. float_of_int i; mbox = i; nf });
      if not (Policy.Action.equal_nf nf Policy.Action.WP) then
        prefix_through_wp (i + 1) rest
  in
  prefix_through_wp 0 rule.Policy.Rule.actions;
  Audit.Checker.record c (Audit.Event.Wp_served { aid = 0; time = 9.0; mbox = 0 });
  let r = Audit.Checker.finalize c in
  Alcotest.(check int) "clean" 0 r.Audit.Checker.violations;
  Alcotest.(check int) "wp-served counted" 1 r.Audit.Checker.wp_served

let test_checker_wp_needs_wp_tail () =
  (* Served "from the cache" without ever reaching a WP: chain violation. *)
  let c, controller = fresh_checker () in
  let rule = wp_rule controller in
  admit_chained c rule 0;
  Audit.Checker.record c (Audit.Event.Wp_served { aid = 0; time = 2.0; mbox = 0 });
  let n, sample = violations_of c in
  Alcotest.(check int) "one violation" 1 n;
  Alcotest.(check bool) "chain invariant" true
    (match sample with
    | [ v ] -> v.Audit.Checker.invariant = Audit.Checker.Chain
    | _ -> false)

let test_checker_byte_mismatch () =
  let c, _ = fresh_checker () in
  Audit.Checker.record c
    (Audit.Event.Admitted
       {
         aid = 0;
         time = 1.0;
         flow = mk_flow 0;
         proxy = 0;
         admission = Audit.Event.Unmatched;
         version = 0;
         bytes = 100;
         label = None;
       });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 2.0; bytes = 90 });
  let n, sample = violations_of c in
  Alcotest.(check int) "one violation" 1 n;
  match sample with
  | [ v ] ->
    Alcotest.(check bool) "conservation" true
      (v.Audit.Checker.invariant = Audit.Checker.Conservation);
    Alcotest.(check bool) "detail names both sizes" true
      (contains_sub v.Audit.Checker.detail "admitted 100B but delivered 90B")
  | _ -> Alcotest.fail "expected exactly one sampled violation"

let test_checker_orphan_events () =
  (* Terminal and mid-path events for packets never admitted are each
     a conservation violation. *)
  let c, _ = fresh_checker () in
  Audit.Checker.record c (Audit.Event.Delivered { aid = 5; time = 1.0; bytes = 64 });
  Audit.Checker.record c
    (Audit.Event.Enforced { aid = 6; time = 1.0; mbox = 0; nf = Policy.Action.FW });
  Audit.Checker.record c (Audit.Event.Fragmented { aid = 7; time = 1.0; extra = 2 });
  let n, sample = violations_of c in
  Alcotest.(check int) "three violations" 3 n;
  List.iter
    (fun v ->
      Alcotest.(check bool) "conservation invariant" true
        (v.Audit.Checker.invariant = Audit.Checker.Conservation))
    sample

let test_checker_permit_untouched () =
  (* Permitted (non-chained) traffic must bypass the middleboxes
     entirely: enforcement on it is a chain violation, and a clean
     permit delivery is not. *)
  let c, _ = fresh_checker () in
  let admit aid =
    Audit.Checker.record c
      (Audit.Event.Admitted
         {
           aid;
           time = 1.0;
           flow = mk_flow aid;
           proxy = 0;
           admission = Audit.Event.Permit (Some 0);
           version = 0;
           bytes = 64;
           label = None;
         })
  in
  admit 0;
  Audit.Checker.record c (Audit.Event.Delivered { aid = 0; time = 2.0; bytes = 64 });
  admit 1;
  Audit.Checker.record c
    (Audit.Event.Enforced { aid = 1; time = 2.0; mbox = 0; nf = Policy.Action.FW });
  Audit.Checker.record c (Audit.Event.Delivered { aid = 1; time = 3.0; bytes = 64 });
  let n, sample = violations_of c in
  Alcotest.(check int) "one violation" 1 n;
  Alcotest.(check bool) "chain invariant with trace" true
    (match sample with
    | [ v ] ->
      v.Audit.Checker.invariant = Audit.Checker.Chain
      && v.Audit.Checker.trace <> []
    | _ -> false)

(* --- Pktsim <-> Flowsim differential oracle ----------------------------- *)

let test_differential_oracle () =
  (* The tentpole's second half: on fault-free static configurations
     the analytic flow-level loads and the packet-level loads must
     agree exactly, for every steering baseline. *)
  List.iter
    (fun (name, strategy) ->
      let controller, workload = setup ~strategy ~flows:150 () in
      let flow_result = Sim.Flowsim.run ~controller ~workload () in
      let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
      let verdict = Sim.Flowsim.differential flow_result stats in
      if not verdict.Audit.Differential.ok then
        Alcotest.failf "%s differential: %s" name
          verdict.Audit.Differential.detail;
      Alcotest.(check (float 0.0)) (name ^ " exact") 0.0
        verdict.Audit.Differential.max_abs)
    [ ("hp", `Hp); ("rand", `Rand); ("lb", `Lb) ]

let test_differential_detects_divergence () =
  let expected = [| 10.0; 20.0; 30.0 |] in
  let observed = [| 10.0; 21.0; 30.0 |] in
  let v = Audit.Differential.compare ~expected ~observed () in
  Alcotest.(check bool) "divergence fails" false v.Audit.Differential.ok;
  Alcotest.(check int) "worst entry" 1 v.Audit.Differential.worst;
  Alcotest.(check (float 1e-12)) "max abs" 1.0 v.Audit.Differential.max_abs;
  let loose = Audit.Differential.compare ~abs_tol:2.0 ~expected ~observed () in
  Alcotest.(check bool) "tolerance admits it" true loose.Audit.Differential.ok;
  let short = Audit.Differential.compare ~expected ~observed:[| 10.0 |] () in
  Alcotest.(check bool) "length mismatch fails" false
    short.Audit.Differential.ok;
  let exact = Audit.Differential.compare ~expected ~observed:expected () in
  Alcotest.(check bool) "identity passes" true exact.Audit.Differential.ok

(* --- Deterministic replay ----------------------------------------------- *)

let qcheck_audited_replay =
  (* Identical seed and configuration give identical stats — including
     the audit report — across two fresh runs, with faults, the live
     control plane and auditing all on.  And every such run audits
     clean: no configuration reachable by this generator produces a
     false positive. *)
  QCheck.Test.make ~count:10 ~name:"audited runs replay bit-identically"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create (seed + 3) in
      let controller, workload = setup ~flows:60 () in
      let schedule =
        Fault.Schedule.make
          ~link_loss:(Stdx.Rng.float rng 0.03)
          ~control_loss:(Stdx.Rng.float rng 0.2)
          ~loss_seed:(seed + 11)
          Fault.Schedule.
            [
              { at = 5.0 +. Stdx.Rng.float rng 20.0; what = Mbox_crash 0 };
              { at = 60.0 +. Stdx.Rng.float rng 20.0; what = Mbox_recover 0 };
            ]
      in
      let live =
        { Sim.Pktsim.default_live with epoch_interval = 40.0; reconcile_interval = 7.0 }
      in
      let config =
        {
          audited with
          Sim.Pktsim.seed = seed mod 1000;
          faults = Some schedule;
          detection_delay = 1.0 +. Stdx.Rng.float rng 10.0;
          live = Some live;
        }
      in
      let a = Sim.Pktsim.run ~config ~controller ~workload () in
      let b = Sim.Pktsim.run ~config ~controller ~workload () in
      Audit.Checker.ok (report a) && a = b)

let suite =
  [
    Alcotest.test_case "clean audited run" `Quick test_audit_clean_run;
    Alcotest.test_case "audit off is bit-identical" `Quick
      test_audit_off_bit_identical;
    Alcotest.test_case "feature variants audit clean" `Slow
      test_audit_clean_variants;
    Alcotest.test_case "bypass corruption is caught" `Quick
      test_audit_catches_bypass;
    Alcotest.test_case "chaos run audits clean" `Quick test_audit_clean_chaos;
    Alcotest.test_case "live run audits clean" `Quick test_audit_clean_live;
    Alcotest.test_case "ablation audit plumbing" `Slow
      test_ablation_audit_plumbing;
    Alcotest.test_case "reopt ablation audits clean" `Slow
      test_audit_reopt_ablation;
    Alcotest.test_case "reopt jobs/shards bit-identity" `Slow
      test_audit_reopt_jobs_shards_identical;
    Alcotest.test_case "checker: lost packet" `Quick test_checker_lost_packet;
    Alcotest.test_case "checker: duplicate terminal" `Quick
      test_checker_duplicate_terminal;
    Alcotest.test_case "checker: chain violations" `Quick
      test_checker_chain_violations;
    Alcotest.test_case "checker: stickiness" `Quick test_checker_stickiness;
    Alcotest.test_case "checker: label hygiene" `Quick
      test_checker_label_hygiene;
    Alcotest.test_case "checker: label purge window" `Quick
      test_checker_label_purged_on_install;
    Alcotest.test_case "checker: config hygiene" `Quick
      test_checker_config_hygiene;
    Alcotest.test_case "checker: quorum clean round" `Quick
      test_checker_quorum_clean;
    Alcotest.test_case "checker: quorum publish gate" `Quick
      test_checker_quorum_publish_gate;
    Alcotest.test_case "checker: quorum divergent commit" `Quick
      test_checker_quorum_divergent_commit;
    Alcotest.test_case "checker: quorum unproposed" `Quick
      test_checker_quorum_unproposed;
    Alcotest.test_case "checker: quorum commit regression" `Quick
      test_checker_quorum_commit_regression;
    Alcotest.test_case "checker: repair clean round" `Quick
      test_checker_repair_clean;
    Alcotest.test_case "checker: repair deadline" `Quick
      test_checker_repair_deadline;
    Alcotest.test_case "checker: repair stream hygiene" `Quick
      test_checker_repair_stream_hygiene;
    Alcotest.test_case "checker: repair staged window" `Quick
      test_checker_repair_staged_window;
    Alcotest.test_case "checker: resurrect excuse" `Quick
      test_checker_resurrect_excuse;
    Alcotest.test_case "checker: counter cross-check" `Quick
      test_checker_counter_cross_check;
    Alcotest.test_case "checker: LB feasibility" `Quick
      test_checker_feasibility;
    Alcotest.test_case "checker: wp cut-short is legal" `Quick
      test_checker_wp_cut_short;
    Alcotest.test_case "checker: wp-serve needs a WP tail" `Quick
      test_checker_wp_needs_wp_tail;
    Alcotest.test_case "checker: byte mismatch" `Quick
      test_checker_byte_mismatch;
    Alcotest.test_case "checker: orphan events" `Quick
      test_checker_orphan_events;
    Alcotest.test_case "checker: permitted traffic untouched" `Quick
      test_checker_permit_untouched;
    Alcotest.test_case "differential oracle on baselines" `Quick
      test_differential_oracle;
    Alcotest.test_case "differential detects divergence" `Quick
      test_differential_detects_divergence;
    QCheck_alcotest.to_alcotest qcheck_audited_replay;
  ]
