(** Static verification of a controller configuration.

    Inspired by the invariant-checking line of work the paper cites
    (VeriFlow): before a configuration is pushed, prove that it cannot
    violate the enforcement semantics, whatever per-flow choices the
    hash selector makes at run time.

    Checked invariants, over every rule and every entity that can hold
    traffic of that rule:

    - {b completeness}: at each position of the rule's action list,
      every reachable deciding entity has a non-empty candidate set
      for the next function (so no packet can strand mid-chain);
    - {b function correctness}: every candidate implements exactly the
      function it is consulted for;
    - {b weight sanity} (LB only): every weight row references only
      members of the corresponding candidate set, with non-negative
      weights;
    - {b table consistency}: each middlebox's policy table holds only
      rules that mention its function, and each proxy's table holds
      every rule its subnet's traffic can match;
    - {b chain well-formedness}: no action list repeats a function.

    The walk explores all candidate choices (not just the hash's), so
    a pass certifies every flow the policies can classify. *)

type violation =
  | Empty_candidates of Mbox.Entity.t * int * Policy.Action.nf
      (** (deciding entity, rule id, function with no candidates) *)
  | Wrong_function of Mbox.Entity.t * int * Policy.Action.nf * int
      (** candidate middlebox (last int) does not implement the function *)
  | Foreign_weight of Mbox.Entity.t * int * Policy.Action.nf * int
      (** LB weight row references a non-candidate middlebox *)
  | Negative_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Table_mismatch of Mbox.Entity.t * int
      (** entity's policy table holds an irrelevant rule, or misses a
          relevant one (rule id given) *)
  | Duplicate_function of int  (** rule id with a repeated function *)

val pp_violation : Format.formatter -> violation -> unit

val check : Controller.t -> (unit, violation list) result
(** Empty violation list = certified. *)
