lib/dvr/router.mli: Netgraph
