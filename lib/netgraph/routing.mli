(** Per-router forwarding tables.

    A table maps every destination node to the next hop on the
    (deterministically tie-broken) shortest path, which is exactly the
    state OSPF installs in each router.  This module computes the
    tables from a global view; the [ospf] library computes the same
    tables by distributed LSA flooding, and an integration test checks
    the two agree. *)

type table = int array
(** [table.(dst)] is the next-hop node id, [dst] itself when the router
    is the destination, or [-1] when unreachable. *)

val table_for : Graph.t -> int -> table

val build_all : Graph.t -> table array
(** One table per node. *)

val next_hop : table -> int -> int option

val walk : table array -> src:int -> dst:int -> int list
(** Follow next hops from [src] to [dst]; returns the node sequence
    including both endpoints.  Raises [Failure] if a loop or a dead end
    is encountered (cannot happen on tables produced by
    {!build_all}). *)

type ecmp_table = int array array
(** [ecmp.(dst)] is every next hop lying on some shortest path
    (ascending node id); [[|dst|]] at the destination itself; [[||]]
    when unreachable.  An array, not a list: hash-based ECMP spreading
    picks hop [i] of the set on every packet of every transit router,
    so the choice must be O(1) indexing. *)

val build_all_ecmp : Graph.t -> ecmp_table array
(** Equal-cost multipath: the full next-hop sets real OSPF/EIGRP
    routers install.  Any per-packet or per-flow choice from these sets
    realises a shortest path (every hop strictly decreases the
    remaining distance), so hash-based ECMP spreading cannot loop. *)
