test/test_stdx.ml: Alcotest Array Fun Hashtbl Int64 List Option QCheck QCheck_alcotest Stdx
