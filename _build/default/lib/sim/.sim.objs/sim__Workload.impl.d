lib/sim/workload.ml: Array List Netpkt Option Policy Sdm Stdx
