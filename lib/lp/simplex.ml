type sense = Le | Ge | Eq

type result = Optimal of float array | Infeasible | Unbounded

(* An exported optimal basis: the layout signature of the tableau it
   came from (variable count and per-row normalised senses — these fix
   the slack/artificial column assignment) plus the basic column of
   every constraint row.  Importing it into a compatible perturbed
   problem skips phase 1 entirely. *)
type basis = {
  b_n : int;
  b_senses : sense array;
  b_cols : int array;
}

type stats = {
  pivots : int;          (* simplex pivots performed by this call *)
  phase1_pivots : int;   (* of those, phase-1 (and drive-out) pivots *)
  warm_used : bool;      (* the warm basis carried the solve to optimality *)
  fallback : bool;       (* a warm basis was supplied but the cold
                            two-phase path had to run *)
}

let eps = 1e-9

(* Tableau layout: [a] has [m] constraint rows and one objective row
   (index m).  Columns: [0, width) are variables (structural, then
   slack/surplus, then artificial), column [width] is the RHS.  The
   objective row holds reduced costs, and its RHS holds the negated
   objective value. *)
type tableau = {
  a : float array array;
  m : int;
  width : int;
  basis : int array; (* basic variable of each row *)
}

let pivot t ~row ~col =
  let a = t.a in
  let piv = a.(row).(col) in
  let arow = a.(row) in
  let inv = 1.0 /. piv in
  for j = 0 to t.width do
    arow.(j) <- arow.(j) *. inv
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let f = a.(i).(col) in
      if f <> 0.0 then begin
        let ai = a.(i) in
        for j = 0 to t.width do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* Entering column: Dantzig unless [bland]; [allowed col] filters out
   artificial columns during phase 2. *)
let entering t ~bland ~allowed =
  let obj = t.a.(t.m) in
  if bland then begin
    let rec find j =
      if j >= t.width then None
      else if allowed j && obj.(j) < -.eps then Some j
      else find (j + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) and best_v = ref (-.eps) in
    for j = 0 to t.width - 1 do
      if allowed j && obj.(j) < !best_v then begin
        best := j;
        best_v := obj.(j)
      end
    done;
    if !best = -1 then None else Some !best
  end

(* Leaving row: minimum ratio; ties by smallest basic variable index
   (lexicographic enough for Bland's rule to terminate). *)
let leaving t ~col =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let coef = t.a.(i).(col) in
    if coef > eps then begin
      let ratio = t.a.(i).(t.width) /. coef in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps
            && (!best = -1 || t.basis.(i) < t.basis.(!best)))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  if !best = -1 then None else Some !best

exception Unbounded_lp

let iteration_cap = 2_000_000

(* Run simplex iterations until no entering column remains.  [count]
   only observes pivots — no float the tableau sees depends on it. *)
let optimise t ~count ~allowed =
  let degenerate_streak = ref 0 in
  let bland = ref false in
  let iter = ref 0 in
  let continue = ref true in
  while !continue do
    incr iter;
    if !iter > iteration_cap then failwith "Simplex: iteration cap exceeded";
    match entering t ~bland:!bland ~allowed with
    | None -> continue := false
    | Some col -> (
      match leaving t ~col with
      | None -> raise Unbounded_lp
      | Some row ->
        let ratio = t.a.(row).(t.width) /. t.a.(row).(col) in
        if ratio < eps then begin
          incr degenerate_streak;
          if !degenerate_streak > 1000 then bland := true
        end
        else degenerate_streak := 0;
        incr count;
        pivot t ~row ~col)
  done

let solve_ext ?warm_basis ~cost ~rows () =
  let n = Array.length cost in
  let m = Array.length rows in
  Array.iter
    (fun (coefs, _, _) ->
      if Array.length coefs <> n then invalid_arg "Simplex.solve: ragged rows")
    rows;
  (* Count auxiliary columns: one slack/surplus per inequality, one
     artificial per Ge/Eq row (and per Le row with negative RHS once
     normalised). *)
  let norm =
    Array.map
      (fun (coefs, sense, rhs) ->
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) coefs,
            (match sense with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (coefs, sense, rhs))
      rows
  in
  let senses = Array.map (fun (_, sense, _) -> sense) norm in
  let slacks = ref 0 and artificials = ref 0 in
  Array.iter
    (fun (_, sense, _) ->
      match sense with
      | Le ->
        incr slacks
      | Ge ->
        incr slacks;
        incr artificials
      | Eq -> incr artificials)
    norm;
  let width = n + !slacks + !artificials in
  let art_first = n + !slacks in
  let build () =
    let a = Array.make_matrix (m + 1) (width + 1) 0.0 in
    let basis = Array.make m (-1) in
    let slack_col = ref n and art_col = ref art_first in
    Array.iteri
      (fun i (coefs, sense, rhs) ->
        Array.blit coefs 0 a.(i) 0 n;
        a.(i).(width) <- rhs;
        (match sense with
        | Le ->
          a.(i).(!slack_col) <- 1.0;
          basis.(i) <- !slack_col;
          incr slack_col
        | Ge ->
          a.(i).(!slack_col) <- -1.0;
          incr slack_col;
          a.(i).(!art_col) <- 1.0;
          basis.(i) <- !art_col;
          incr art_col
        | Eq ->
          a.(i).(!art_col) <- 1.0;
          basis.(i) <- !art_col;
          incr art_col))
      norm;
    { a; m; width; basis }
  in
  let is_artificial j = j >= art_first in
  let pivots = ref 0 and phase1_pivots = ref 0 in
  let export t =
    Some { b_n = n; b_senses = senses; b_cols = Array.copy t.basis }
  in
  (* Phase-2 objective row over the current basis, then optimise with
     artificial columns barred from entering.  Shared by both paths. *)
  let phase2 t =
    let a = t.a in
    for j = 0 to width do
      a.(m).(j) <- 0.0
    done;
    for j = 0 to n - 1 do
      a.(m).(j) <- cost.(j)
    done;
    for i = 0 to m - 1 do
      let b = t.basis.(i) in
      if b < n && cost.(b) <> 0.0 then begin
        let f = cost.(b) in
        for j = 0 to width do
          a.(m).(j) <- a.(m).(j) -. (f *. a.(i).(j))
        done
      end
    done;
    optimise t ~count:pivots ~allowed:(fun j -> not (is_artificial j));
    let values = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if t.basis.(i) < n then values.(t.basis.(i)) <- a.(i).(width)
    done;
    (* Clamp the tiny negatives numerical noise can leave behind. *)
    Array.iteri (fun j v -> if v < 0.0 && v > -1e-7 then values.(j) <- 0.0) values;
    (values, export t)
  in
  (* ---- Warm path: refactorise to the imported basis, verify primal
     feasibility, run phase 2 only.  Any doubt — layout mismatch,
     singular basis, infeasible or inconsistent RHS, unboundedness
     claimed from the warm basis — abandons the attempt and reruns the
     authoritative cold two-phase path, so a warm answer is only ever
     an optimum the cold path would also have reached. *)
  let try_warm b =
    if
      b.b_n <> n || m = 0 || n = 0
      || Array.length b.b_senses <> m
      || b.b_senses <> senses
      || Array.length b.b_cols <> m
      || Array.exists (fun c -> c < 0 || c >= width) b.b_cols
    then None
    else begin
      let cols = Array.copy b.b_cols in
      Array.sort compare cols;
      let distinct = ref true in
      for i = 1 to m - 1 do
        if cols.(i) = cols.(i - 1) then distinct := false
      done;
      if not !distinct then None
      else begin
        let t = build () in
        (* Install the basis as a column set: for each basis column
           pick the unassigned row with the largest pivot element —
           insensitive to the row order the exporter happened to have,
           and singularity shows up as no usable pivot. *)
        let assigned = Array.make m false in
        let singular = ref false in
        Array.iter
          (fun col ->
            if not !singular then begin
              let best = ref (-1) and best_v = ref 0.0 in
              for i = 0 to m - 1 do
                if not assigned.(i) then begin
                  let v = abs_float t.a.(i).(col) in
                  if v > !best_v then begin
                    best := i;
                    best_v := v
                  end
                end
              done;
              if !best_v <= 1e-7 then singular := true
              else begin
                pivot t ~row:!best ~col;
                assigned.(!best) <- true
              end
            end)
          cols;
        if !singular then None
        else begin
          (* Primal feasibility of the imported basis under the new
             RHS; an artificial kept basic by the exporter (redundant
             row) must still carry value ~0 or the perturbed row is
             inconsistent. *)
          let feasible = ref true in
          for i = 0 to m - 1 do
            let rhs = t.a.(i).(width) in
            if is_artificial t.basis.(i) then begin
              if abs_float rhs > 1e-7 then feasible := false
            end
            else if rhs < -1e-7 then feasible := false
            else if rhs < 0.0 then t.a.(i).(width) <- 0.0
          done;
          if not !feasible then None
          else
            match phase2 t with
            | values, basis -> Some (Optimal values, basis)
            | exception Unbounded_lp -> None
        end
      end
    end
  in
  let warm =
    match warm_basis with None -> None | Some b -> try_warm b
  in
  match warm with
  | Some (outcome, basis) ->
    ( outcome,
      {
        pivots = !pivots;
        phase1_pivots = !phase1_pivots;
        warm_used = true;
        fallback = false;
      },
      basis )
  | None ->
    let fallback = warm_basis <> None in
    let stats () =
      {
        pivots = !pivots;
        phase1_pivots = !phase1_pivots;
        warm_used = false;
        fallback;
      }
    in
    let cold () =
      let t = build () in
      let a = t.a in
      (* ---- Phase 1: minimise the artificial sum. ---- *)
      if !artificials > 0 then begin
        (* Objective row = -(sum of artificial rows) expressed on
           non-basic columns: start from cost 1 on artificials, then
           eliminate the basic artificials row by row. *)
        for j = art_first to width - 1 do
          a.(m).(j) <- 1.0
        done;
        for i = 0 to m - 1 do
          if is_artificial t.basis.(i) then
            for j = 0 to width do
              a.(m).(j) <- a.(m).(j) -. a.(i).(j)
            done
        done;
        (try optimise t ~count:phase1_pivots ~allowed:(fun _ -> true)
         with Unbounded_lp -> failwith "Simplex: phase 1 cannot be unbounded");
        let phase1 = -.a.(m).(width) in
        if phase1 > 1e-6 then raise Exit
      end;
      (* Drive any zero-valued basic artificials out of the basis. *)
      for i = 0 to m - 1 do
        if is_artificial t.basis.(i) then begin
          let col = ref (-1) in
          for j = 0 to art_first - 1 do
            if !col = -1 && abs_float a.(i).(j) > eps then col := j
          done;
          if !col >= 0 then begin
            incr phase1_pivots;
            pivot t ~row:i ~col:!col
          end
          (* Otherwise the row is redundant (all-zero over real
             columns); the artificial stays basic at value ~0 and,
             because phase 2 never lets artificial columns enter, its
             value can only change through pivots in this row, which
             the ratio test performs only at ratio 0 here. *)
        end
      done;
      (* ---- Phase 2: real objective. ---- *)
      match phase2 t with
      | values, basis -> (Optimal values, stats (), basis)
      | exception Unbounded_lp -> (Unbounded, stats (), None)
    in
    (try cold () with Exit -> (Infeasible, stats (), None))

let solve ~cost ~rows =
  let outcome, _, _ = solve_ext ~cost ~rows () in
  outcome
