lib/netgraph/topology.mli: Format Graph
