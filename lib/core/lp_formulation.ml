type result = {
  lambda : float;
  weights : Weights.t;
  weights_sd : Weights_sd.t option;
  loads : float array;
  lp_vars : int;
  lp_constraints : int;
  lp_pivots : int;
  lp_phase1_pivots : int;
  lp_warm_used : bool;
  lp_fallback : bool;
  lp_snapshot : Lp.Model.snapshot option;
}

(* Shared LP-building state: the model, the lambda variable, the
   per-middlebox load expressions, and the rows from which forwarding
   weights are extracted after solving. *)
type builder = {
  model : Lp.Model.t;
  lambda : Lp.Model.var;
  load_terms : (float * Lp.Model.var) list array; (* per middlebox id *)
  mutable weight_rows :
    (Mbox.Entity.t
    * int
    * Policy.Action.nf
    * (int * int) option (* Eq. (1) commodity (src, dst), if any *)
    * (int * Lp.Model.var) list)
    list;
}

let new_builder dep =
  let model = Lp.Model.create () in
  {
    model;
    lambda = Lp.Model.var model "lambda";
    load_terms = Array.make (Array.length dep.Deployment.middleboxes) [];
    weight_rows = [];
  }

let terms_of vars = List.map (fun (_, v) -> (1.0, v)) vars

(* One policy chain contributes entry, per-stage transfer and exit
   variables plus conservation rows.  [entry_groups] is the list of
   (weight recipients, representative entity, volume); recipients all
   share the representative's candidate sets. *)
let add_chain ?commodity b cand ~rule_id ~chain ~entry_groups =
  let chain = Array.of_list chain in
  let n_stages = Array.length chain in
  (* stage_in.(i): (middlebox id, var) inflow pairs of stage i.
     stage_out.(i): per middlebox id, the outflow vars. *)
  let stage_in = Array.make n_stages [] in
  let stage_out = Array.make n_stages [] in
  let reachable = Array.make n_stages [] in
  (* Entry variables. *)
  List.iter
    (fun (recipients, repr, volume) ->
      let cands = Candidate.get cand repr chain.(0) in
      let vars =
        List.map
          (fun (mb : Mbox.Middlebox.t) ->
            ( mb.id,
              Lp.Model.var b.model
                (Printf.sprintf "in_p%d_%s_y%d" rule_id
                   (Mbox.Entity.to_string repr) mb.id) ))
          cands
      in
      Lp.Model.add_constraint b.model (terms_of vars) Lp.Model.Eq volume;
      stage_in.(0) <- vars @ stage_in.(0);
      List.iter
        (fun entity ->
          b.weight_rows <-
            (entity, rule_id, chain.(0), commodity, vars) :: b.weight_rows)
        recipients)
    entry_groups;
  reachable.(0) <-
    List.sort_uniq compare (List.map fst stage_in.(0));
  (* Transfer variables between consecutive stages, restricted to
     middleboxes actually reachable at the upstream stage. *)
  for i = 0 to n_stages - 2 do
    List.iter
      (fun x_id ->
        let x_entity = Mbox.Entity.Middlebox x_id in
        let cands = Candidate.get cand x_entity chain.(i + 1) in
        let vars =
          List.map
            (fun (mb : Mbox.Middlebox.t) ->
              ( mb.id,
                Lp.Model.var b.model
                  (Printf.sprintf "t_p%d_s%d_x%d_y%d" rule_id i x_id mb.id) ))
            cands
        in
        stage_out.(i) <- (x_id, vars) :: stage_out.(i);
        stage_in.(i + 1) <- vars @ stage_in.(i + 1);
        b.weight_rows <-
          (x_entity, rule_id, chain.(i + 1), commodity, vars) :: b.weight_rows)
      reachable.(i);
    reachable.(i + 1) <-
      List.sort_uniq compare (List.map fst stage_in.(i + 1))
  done;
  (* Exit variables (aggregated over destinations; see .mli note). *)
  let last = n_stages - 1 in
  List.iter
    (fun x_id ->
      let v =
        Lp.Model.var b.model (Printf.sprintf "out_p%d_x%d" rule_id x_id)
      in
      stage_out.(last) <- (x_id, [ (-1, v) ]) :: stage_out.(last))
    reachable.(last);
  (* Conservation and load accounting per stage and reachable box. *)
  for i = 0 to n_stages - 1 do
    List.iter
      (fun y_id ->
        let inflow =
          List.filter_map
            (fun (id, v) -> if id = y_id then Some (1.0, v) else None)
            stage_in.(i)
        in
        let outflow =
          match List.assoc_opt y_id stage_out.(i) with
          | Some vars -> List.map (fun (_, v) -> (-1.0, v)) vars
          | None -> []
        in
        Lp.Model.add_constraint b.model (inflow @ outflow) Lp.Model.Eq 0.0;
        b.load_terms.(y_id) <- inflow @ b.load_terms.(y_id))
      reachable.(i)
  done

(* Secondary/tertiary objective weights.  Minimising lambda alone is
   degenerate: once the bottleneck middlebox type is balanced, every
   other type may be left arbitrarily skewed below lambda.  The paper's
   results (Fig. 4/5, Table III) show LB balancing *every* type, so we
   refine lexicographically: for each function e, a variable for the
   type's max load (minimised with weight [eps_type_max]) and one for
   its min load (maximised with weight [eps_type_min]).  The weights
   keep the refinement subordinate to lambda: the primary optimum is
   perturbed by at most ~0.1%. *)
let eps_type_max = 1e-4
let eps_type_min = 1e-8

let finish b cand ?lambda_cap ?warm () =
  let dep = Candidate.deployment cand in
  (* Per-type max/min variables over middleboxes that can carry load. *)
  let type_vars = Hashtbl.create 8 in
  let type_var nf =
    match Hashtbl.find_opt type_vars nf with
    | Some pair -> pair
    | None ->
      let name = Policy.Action.nf_to_string nf in
      let pair =
        ( Lp.Model.var b.model ("max_" ^ name),
          Lp.Model.var b.model ("min_" ^ name) )
      in
      Hashtbl.replace type_vars nf pair;
      pair
  in
  Array.iteri
    (fun x_id terms ->
      if terms <> [] then begin
        let mb = dep.Deployment.middleboxes.(x_id) in
        let cap = mb.Mbox.Middlebox.capacity in
        Lp.Model.add_constraint b.model
          ((-.cap, b.lambda) :: terms)
          Lp.Model.Le 0.0;
        let vmax, vmin = type_var mb.Mbox.Middlebox.nf in
        Lp.Model.add_constraint b.model ((-.cap, vmax) :: terms) Lp.Model.Le 0.0;
        Lp.Model.add_constraint b.model ((-.cap, vmin) :: terms) Lp.Model.Ge 0.0
      end)
    b.load_terms;
  (match lambda_cap with
  | Some cap ->
    Lp.Model.add_constraint b.model [ (1.0, b.lambda) ] Lp.Model.Le cap
  | None -> ());
  let refinement =
    Hashtbl.fold
      (fun _ (vmax, vmin) acc ->
        (eps_type_max, vmax) :: (-.eps_type_min, vmin) :: acc)
      type_vars []
  in
  Lp.Model.set_objective b.model ((1.0, b.lambda) :: refinement);
  (* [?warm] threads the previous plan's snapshot through the solver:
     the basis is reused when the rebuilt model still has the same
     layout (phase 2 only), and the cold two-phase path runs otherwise
     — float-identical to an un-warmed solve, so warm-off runs stay
     bit-identical. *)
  let outcome, sstats, snapshot = Lp.Model.solve_ext ?prev:warm b.model in
  match outcome with
  | Lp.Model.Infeasible -> Error "load-balancing LP infeasible"
  | Lp.Model.Unbounded -> Error "load-balancing LP unbounded (bug)"
  | Lp.Model.Optimal sol ->
    let weights = Weights.create () in
    (* Rows are pushed most-recent-first; accumulate sums so the exact
       formulation's many per-(s,d) rows aggregate cleanly into the
       fallback table while also populating the per-commodity one. *)
    let weights_sd = Weights_sd.create () in
    let any_commodity = ref false in
    let acc :
        (int * int * Policy.Action.nf, (int, float) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 256
    in
    let row_entities = Hashtbl.create 256 in
    List.iter
      (fun (entity, rule, nf, commodity, vars) ->
        (match commodity with
        | Some (src, dst) ->
          any_commodity := true;
          let row =
            List.map (fun (y, var) -> (y, Lp.Model.value sol var)) vars
            |> Array.of_list
          in
          Weights_sd.set weights_sd entity ~rule ~nf ~src ~dst row
        | None -> ());
        let key = (Mbox.Entity.hash_key entity, rule, nf) in
        Hashtbl.replace row_entities key (entity, rule, nf);
        let cell =
          match Hashtbl.find_opt acc key with
          | Some c -> c
          | None ->
            let c = Hashtbl.create 8 in
            Hashtbl.replace acc key c;
            c
        in
        List.iter
          (fun (y, var) ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt cell y) in
            Hashtbl.replace cell y (prev +. Lp.Model.value sol var))
          vars)
      b.weight_rows;
    Hashtbl.iter
      (fun key cell ->
        let entity, rule, nf = Hashtbl.find row_entities key in
        let row =
          Hashtbl.fold (fun y v l -> (y, v) :: l) cell []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list
        in
        (* An all-zero row asserts nothing: the selector would fall
           back to closest-live exactly as if the row were absent, so
           absence is the honest representation — and it lets Verify
           require every row actually present to normalize.  Per-(s,d)
           rows are NOT filtered: their absence falls through to the
           aggregate row, which would change picks. *)
        let total = Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 row in
        if total > 0.0 then Weights.set weights entity ~rule ~nf row)
      acc;
    let loads =
      Array.map
        (fun terms ->
          List.fold_left
            (fun s (c, v) -> s +. (c *. Lp.Model.value sol v))
            0.0 terms)
        b.load_terms
    in
    Ok
      {
        lambda = Lp.Model.value sol b.lambda;
        weights;
        weights_sd = (if !any_commodity then Some weights_sd else None);
        loads;
        lp_vars = Lp.Model.num_vars b.model;
        lp_constraints = Lp.Model.num_constraints b.model;
        lp_pivots = sstats.Lp.Simplex.pivots;
        lp_phase1_pivots = sstats.Lp.Simplex.phase1_pivots;
        lp_warm_used = sstats.Lp.Simplex.warm_used;
        lp_fallback = sstats.Lp.Simplex.fallback;
        lp_snapshot = Some snapshot;
      }

let check_chain rule =
  let chain = rule.Policy.Rule.actions in
  if Policy.Action.has_duplicates chain then
    Error
      (Printf.sprintf "rule %d repeats a function in its action list"
         rule.Policy.Rule.id)
  else Ok chain

(* Group traffic sources by candidate-set fingerprint.  Members of a
   group see identical candidate sets, so one aggregated entry
   constraint represents them exactly (DESIGN.md, substitution notes). *)
let group_entry_sources cand ~group_sources sources =
  if not group_sources then
    List.map
      (fun (s, volume) ->
        let e = Mbox.Entity.Proxy s in
        ([ e ], e, volume))
      sources
  else begin
    let groups = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun (s, volume) ->
        let e = Mbox.Entity.Proxy s in
        let fp = Candidate.fingerprint cand e in
        match Hashtbl.find_opt groups fp with
        | Some cell ->
          let members, repr, total = !cell in
          cell := (e :: members, repr, total +. volume)
        | None ->
          let cell = ref ([ e ], e, volume) in
          Hashtbl.replace groups fp cell;
          order := fp :: !order)
      sources;
    List.rev_map (fun fp -> !(Hashtbl.find groups fp)) !order
  end

let solve_simplified cand ~rules ~traffic ?(group_sources = true) ?lambda_cap
    ?warm () =
  let b = new_builder (Candidate.deployment cand) in
  let rec add = function
    | [] -> Ok ()
    | rule :: rest -> (
      match check_chain rule with
      | Error _ as e -> e
      | Ok [] -> add rest (* permit: no middlebox traffic *)
      | Ok chain ->
        let sources = Measurement.sources_for traffic ~rule:rule.Policy.Rule.id in
        if sources = [] then add rest
        else begin
          let entry_groups = group_entry_sources cand ~group_sources sources in
          add_chain b cand ~rule_id:rule.Policy.Rule.id ~chain ~entry_groups;
          add rest
        end)
  in
  match add rules with
  | Error e -> Error e
  | Ok () -> finish b cand ?lambda_cap ?warm ()
  | exception Not_found ->
    Error "a rule references a function no middlebox implements"

let solve_exact cand ~rules ~traffic ?lambda_cap ?warm () =
  let b = new_builder (Candidate.deployment cand) in
  let rec add = function
    | [] -> Ok ()
    | rule :: rest -> (
      match check_chain rule with
      | Error _ as e -> e
      | Ok [] -> add rest
      | Ok chain ->
        (* One commodity per (s, d) pair with traffic: full Eq. (1)
           resolution.  Entry groups are singletons. *)
        let pairs = Measurement.pairs_for traffic ~rule:rule.Policy.Rule.id in
        List.iter
          (fun (s, d, volume) ->
            let e = Mbox.Entity.Proxy s in
            add_chain ~commodity:(s, d) b cand ~rule_id:rule.Policy.Rule.id
              ~chain
              ~entry_groups:[ ([ e ], e, volume) ])
          pairs;
        add rest)
  in
  match add rules with
  | Error e -> Error e
  | Ok () -> finish b cand ?lambda_cap ?warm ()
  | exception Not_found ->
    Error "a rule references a function no middlebox implements"
