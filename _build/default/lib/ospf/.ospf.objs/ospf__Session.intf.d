lib/ospf/session.mli: Netgraph
