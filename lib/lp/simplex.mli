(** Two-phase dense primal simplex.

    Solves  min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0.

    Phase 1 minimises the sum of artificial variables to find a basic
    feasible solution; phase 2 optimises the real objective.  Pricing
    is Dantzig (most negative reduced cost) with a permanent switch to
    Bland's rule after a long degenerate streak, which guarantees
    termination.  Dense float arrays throughout: the paper's Eq. (2)
    instances stay in the low thousands of variables, where a dense
    tableau is simple and fast enough.

    {b Warm starting.}  An [Optimal] {!solve_ext} exports its final
    {!basis}; feeding it back through [?warm_basis] on a perturbed
    problem with the same variable count and row layout refactorises
    the fresh tableau to that basis and runs phase 2 only.  The warm
    path is conservative: any doubt — layout mismatch, singular or
    primal-infeasible imported basis, or unboundedness encountered
    from it — abandons the attempt and reruns the cold two-phase path
    ([fallback] set in {!stats}).  A warm answer is therefore always
    an optimum the cold path would also reach, and
    [Infeasible]/[Unbounded] verdicts only ever come from the cold
    path.

    This module is the raw engine; prefer the {!Model} builder. *)

type sense = Le | Ge | Eq

type result =
  | Optimal of float array (** optimal values of the structural variables *)
  | Infeasible
  | Unbounded

type basis
(** The optimal basis of a previous solve: the tableau layout
    signature (variable count, normalised row senses) plus the basic
    column of every row.  Only meaningful for a problem with the same
    row-list shape; anything else is rejected at import and the solve
    falls back to the cold path. *)

type stats = {
  pivots : int;          (** simplex pivots performed by this call *)
  phase1_pivots : int;   (** of those, phase-1 (and drive-out) pivots *)
  warm_used : bool;      (** the warm basis carried the solve to optimality *)
  fallback : bool;       (** a warm basis was supplied but unusable: the
                             cold two-phase path ran instead *)
}

val solve : cost:float array -> rows:(float array * sense * float) array -> result
(** [solve ~cost ~rows]: [cost] has one entry per structural variable;
    each row is (coefficients, sense, rhs) with coefficient arrays of
    the same length.  Raises [Invalid_argument] on ragged input and
    [Failure] if the iteration cap (a defensive bound far above any
    realistic run) is hit.  Bit-identical to {!solve_ext} without a
    warm basis. *)

val solve_ext :
  ?warm_basis:basis ->
  cost:float array ->
  rows:(float array * sense * float) array ->
  unit ->
  result * stats * basis option
(** Like {!solve}, additionally returning pivot counters and — when
    the outcome is [Optimal] — the final basis for reuse.  With
    [?warm_basis], the prior basis is re-installed and only phase 2
    runs when it is still primal feasible for the perturbed problem;
    an unchanged problem re-solves in exactly 0 pivots.  Degenerate
    imports (an empty problem, a basis from a different layout, a
    basis made infeasible or whose re-solve turns unbounded) run cold
    with [fallback = true]. *)
