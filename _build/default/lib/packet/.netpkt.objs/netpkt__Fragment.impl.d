lib/packet/fragment.ml: Header List Packet
