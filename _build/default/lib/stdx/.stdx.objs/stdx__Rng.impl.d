lib/stdx/rng.ml: Array Int64
