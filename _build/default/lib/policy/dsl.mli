(** A textual policy-definition language.

    The configuration surface an operator uses to feed the controller:
    one policy per line, first-match order, e.g.

    {v
    # web traffic from the enterprise prefix
    from 128.40.0.0/16 to any dport 80 proto tcp => FW, IDS, WP
    from any to 128.40.0.0/16 sport 80 => WP, IDS, FW
    from 128.40.0.0/16 to 128.40.0.0/16 => permit
    v}

    Grammar (per line, after '#'-comment stripping):

    {v
    policy  ::= "from" addr "to" addr field* "=>" actions
    addr    ::= "any" | ipv4 | ipv4 "/" len
    field   ::= ("sport" | "dport") port | "proto" proto
    port    ::= "any" | int | int "-" int
    proto   ::= "any" | "tcp" | "udp" | "icmp" | int
    actions ::= "permit" | nf ("," nf)*
    nf      ::= "FW" | "IDS" | "WP" | "TM" | identifier
    v}

    [print] and [parse] round-trip (property-tested). *)

val parse_line : string -> (Descriptor.t * Action.t, string) result
(** One policy line (comments/blank not accepted here). *)

val parse : string -> (Rule.t list, string) result
(** A whole document: '#' comments and blank lines are skipped; rule
    ids are assigned in line order.  The error names the offending
    line number. *)

val print_rule : Rule.t -> string
(** One line, re-parseable. *)

val print : Rule.t list -> string

val table_one_text : string
(** The paper's Table I in this language (for the enterprise prefix
    128.40.0.0/16). *)
