type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

(* Slots at indices >= size must not retain popped elements: in the
   event queue an element is a closure capturing the whole simulation
   world, so a stale reference pins arbitrarily much memory.  Vacated
   slots are overwritten with [dummy], the Dynarray technique: because
   every backing array is created from this immediate value, the array
   representation is always generic (never a flat float array), so
   storing the dummy into an ['a] slot is representation-safe. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic ()

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap (dummy ()) in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

(* Hole insertion: save the moving element once, shift displaced
   parents (or children) down into the hole, and write the saved
   element only at its final position — one write per level instead of
   a three-write swap.  The comparison sequence is identical to the
   swap-based version, so the resulting arrangement (and therefore pop
   order under any tie-breaking comparison) is bit-identical. *)
(* [climb]/[descend] are top-level with the heap and moving element
   as parameters: as inner [let rec]s capturing [t] and [x] they cost
   a closure per sift, i.e. per push and per pop — on the event
   queue's fast path. *)
let rec climb t x i =
  if i = 0 then i
  else begin
    let parent = (i - 1) / 2 in
    if t.cmp x t.data.(parent) < 0 then begin
      t.data.(i) <- t.data.(parent);
      climb t x parent
    end
    else i
  end

let sift_up t i =
  let x = t.data.(i) in
  t.data.(climb t x i) <- x

let rec descend t x i =
  let l = (2 * i) + 1 in
  if l >= t.size then i
  else begin
    let r = l + 1 in
    let c = if r < t.size && t.cmp t.data.(r) t.data.(l) < 0 then r else l in
    if t.cmp t.data.(c) x < 0 then begin
      t.data.(i) <- t.data.(c);
      descend t x c
    end
    else i
  end

let sift_down t i =
  let x = t.data.(i) in
  t.data.(descend t x i) <- x

let push t x =
  grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

(* The option-free pop: the event loop calls this once per event, and
   boxing a [Some] there would defeat the pooled engine's
   zero-allocation steady state.  Same sift, same comparison
   sequence. *)
let take t =
  if t.size = 0 then invalid_arg "Heap.take: empty heap"
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- dummy ();
      sift_down t 0
    end
    else t.data.(0) <- dummy ();
    top
  end

let pop t = if t.size = 0 then None else Some (take t)
let pop_exn = take

let clear t =
  t.data <- [||];
  t.size <- 0

let to_sorted_list t =
  let copy = { cmp = t.cmp; data = Array.sub t.data 0 t.size; size = t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
