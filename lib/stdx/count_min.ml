type t = {
  width : int;
  depth : int;
  rows : float array array;
  seeds : int array;
  mutable total : float;
}

let create ?(epsilon = 0.001) ?(delta = 0.01) () =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Count_min.create: epsilon out of (0,1)";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Count_min.create: delta out of (0,1)";
  let width = int_of_float (ceil (exp 1.0 /. epsilon)) in
  let depth = max 1 (int_of_float (ceil (log (1.0 /. delta)))) in
  {
    width;
    depth;
    rows = Array.make_matrix depth width 0.0;
    (* Fixed per-row salts keep the sketch deterministic. *)
    seeds = Array.init depth (fun i -> 0x9E3779B9 + (i * 0x85EBCA6B));
    total = 0.0;
  }

let width t = t.width
let depth t = t.depth

let cell t row key =
  let h = Xhash.fold_int key t.seeds.(row) in
  Xhash.to_range h t.width

let add t key v =
  (* [not (v >= 0.0)] also catches NaN, which would otherwise poison
     every cell it touches and the running total. *)
  if (not (v >= 0.0)) || v = infinity then
    invalid_arg "Count_min.add: value must be finite and non-negative";
  t.total <- t.total +. v;
  for row = 0 to t.depth - 1 do
    let c = cell t row key in
    t.rows.(row).(c) <- t.rows.(row).(c) +. v
  done

let estimate t key =
  let best = ref infinity in
  for row = 0 to t.depth - 1 do
    let v = t.rows.(row).(cell t row key) in
    if v < !best then best := v
  done;
  if !best = infinity then 0.0 else !best

let total t = t.total
