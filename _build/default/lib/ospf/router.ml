type t = {
  id : int;
  mutable neighbors : (int * float) list;
  db : (int, Lsa.t) Hashtbl.t;
  mutable own_seq : int;
}

let create ~id ~neighbors =
  { id; neighbors; db = Hashtbl.create 16; own_seq = 0 }

let id t = t.id

let neighbors t = t.neighbors

let remove_neighbor t nbr =
  t.neighbors <- List.filter (fun (n, _) -> n <> nbr) t.neighbors

let add_neighbor t nbr cost =
  if cost <= 0.0 then invalid_arg "Ospf.Router.add_neighbor: non-positive cost";
  if List.mem_assoc nbr t.neighbors then
    invalid_arg "Ospf.Router.add_neighbor: neighbor already present";
  t.neighbors <- (nbr, cost) :: t.neighbors

let originate t =
  t.own_seq <- t.own_seq + 1;
  let lsa = Lsa.make ~origin:t.id ~seq:t.own_seq ~links:t.neighbors in
  Hashtbl.replace t.db t.id lsa;
  lsa

let install t lsa =
  match Hashtbl.find_opt t.db lsa.Lsa.origin with
  | None ->
    Hashtbl.replace t.db lsa.Lsa.origin lsa;
    true
  | Some existing ->
    if Lsa.newer_than lsa existing then begin
      Hashtbl.replace t.db lsa.Lsa.origin lsa;
      true
    end
    else false

let lsdb t =
  Hashtbl.fold (fun _ lsa acc -> lsa :: acc) t.db []
  |> List.sort (fun a b -> compare a.Lsa.origin b.Lsa.origin)

let lsdb_size t = Hashtbl.length t.db

let spf t ~node_count =
  let g = Netgraph.Graph.create node_count in
  let advertised u v =
    match Hashtbl.find_opt t.db u with
    | None -> None
    | Some lsa -> List.assoc_opt v lsa.Lsa.links
  in
  Hashtbl.iter
    (fun origin lsa ->
      List.iter
        (fun (nbr, cost) ->
          (* Add each confirmed-bidirectional link once (origin < nbr). *)
          if origin < nbr then
            match advertised nbr origin with
            | Some cost' when not (Netgraph.Graph.has_edge g origin nbr) ->
              Netgraph.Graph.add_edge g origin nbr (min cost cost')
            | _ -> ())
        lsa.Lsa.links)
    t.db;
  Netgraph.Routing.table_for g t.id
