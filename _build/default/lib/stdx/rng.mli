(** Deterministic pseudo-random number generation.

    A [splitmix64] generator: fast, statistically solid for simulation
    purposes, and fully deterministic from a seed so that every
    experiment in this repository is reproducible bit-for-bit.  Each
    generator owns its own state; there is no hidden global. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t].  Used to give sub-components their own streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct elements.
    Raises [Invalid_argument] if [k > Array.length arr]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
