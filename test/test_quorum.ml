(* Quorum agreement: families, acceptor state machine, rounds, and the
   intersection property that makes divergent commits impossible. *)

let check_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected Ok, got Error %s" e

let check_err = function
  | Ok () -> Alcotest.fail "expected Error, got Ok"
  | Error _ -> ()

(* ---- families ----------------------------------------------------- *)

let test_validate () =
  check_ok (Quorum.validate Quorum.Majority ~n:1);
  check_ok (Quorum.validate Quorum.Majority ~n:5);
  check_err (Quorum.validate Quorum.Majority ~n:0);
  check_ok (Quorum.validate (Quorum.Weighted [| 3; 1; 1 |]) ~n:3);
  check_err (Quorum.validate (Quorum.Weighted [| 1; 1 |]) ~n:3);
  check_err (Quorum.validate (Quorum.Weighted [| 1; -1; 1 |]) ~n:3);
  check_err (Quorum.validate (Quorum.Weighted [| 0; 0; 0 |]) ~n:3)

let test_threshold () =
  Alcotest.(check int) "majority of 1" 1 (Quorum.threshold Quorum.Majority ~n:1);
  Alcotest.(check int) "majority of 3" 2 (Quorum.threshold Quorum.Majority ~n:3);
  Alcotest.(check int) "majority of 4" 3 (Quorum.threshold Quorum.Majority ~n:4);
  Alcotest.(check int) "majority of 5" 3 (Quorum.threshold Quorum.Majority ~n:5);
  (* Weighted [3;1;1]: total 5, threshold 3 — the heavy acceptor alone
     is a quorum, the two light ones together are not. *)
  let fam = Quorum.Weighted [| 3; 1; 1 |] in
  Alcotest.(check int) "weighted threshold" 3 (Quorum.threshold fam ~n:3);
  Alcotest.(check bool) "heavy alone" true
    (Quorum.is_quorum fam ~n:3 (fun i -> i = 0));
  Alcotest.(check bool) "lights together" false
    (Quorum.is_quorum fam ~n:3 (fun i -> i > 0))

(* Any two quorums of one family intersect: the local acceptor rule
   plus this property is the global no-divergent-commit argument. *)
let test_quorum_intersection_qcheck () =
  let gen =
    QCheck.Gen.(
      int_range 1 7 >>= fun n ->
      bool >>= fun weighted ->
      (if weighted then
         map
           (fun ws ->
             (* keep the family valid: force a positive total *)
             if Array.for_all (fun w -> w = 0) ws then
               Quorum.Weighted (Array.make n 1)
             else Quorum.Weighted ws)
           (array_size (return n) (int_range 0 5))
       else return Quorum.Majority)
      >>= fun fam ->
      array_size (return n) bool >>= fun a ->
      map (fun b -> (n, fam, a, b)) (array_size (return n) bool))
  in
  let prop (n, fam, a, b) =
    let qa = Quorum.is_quorum fam ~n (fun i -> a.(i)) in
    let qb = Quorum.is_quorum fam ~n (fun i -> b.(i)) in
    (not (qa && qb))
    || Array.exists2 (fun x y -> x && y) a b
  in
  let cell =
    QCheck.Test.make ~count:1000 ~name:"two quorums always intersect"
      (QCheck.make gen) prop
  in
  QCheck.Test.check_exn cell

(* ---- acceptor ----------------------------------------------------- *)

let verdict =
  Alcotest.testable
    (fun ppf v ->
      Format.pp_print_string ppf
        (match v with
        | Quorum.Acceptor.Accept -> "Accept"
        | Repeat -> "Repeat"
        | Stale -> "Stale"
        | Conflict -> "Conflict"))
    ( = )

let test_acceptor () =
  let a = Quorum.Acceptor.create () in
  Alcotest.(check (option (pair int int64))) "nothing accepted" None
    (Quorum.Acceptor.accepted a);
  Alcotest.check verdict "first proposal" Quorum.Acceptor.Accept
    (Quorum.Acceptor.receive a ~version:1 ~digest:10L);
  Alcotest.check verdict "duplicate" Quorum.Acceptor.Repeat
    (Quorum.Acceptor.receive a ~version:1 ~digest:10L);
  (* A re-proposal of an uncommitted version supersedes the old one
     (its round died without quorum, so nothing was committed). *)
  Alcotest.check verdict "re-proposal supersedes" Quorum.Acceptor.Accept
    (Quorum.Acceptor.receive a ~version:1 ~digest:11L);
  Alcotest.(check (option (pair int int64))) "acceptance moved"
    (Some (1, 11L))
    (Quorum.Acceptor.accepted a);
  check_ok (Quorum.Acceptor.commit a ~version:1 ~digest:11L);
  Alcotest.(check int) "committed" 1 (Quorum.Acceptor.committed a);
  Alcotest.(check int64) "committed digest" 11L
    (Quorum.Acceptor.committed_digest a);
  (* Nothing supersedes a commit. *)
  Alcotest.check verdict "conflicts with commit" Quorum.Acceptor.Conflict
    (Quorum.Acceptor.receive a ~version:1 ~digest:12L);
  Alcotest.check verdict "below commit is stale" Quorum.Acceptor.Stale
    (Quorum.Acceptor.receive a ~version:0 ~digest:9L);
  Alcotest.check verdict "next version accepted" Quorum.Acceptor.Accept
    (Quorum.Acceptor.receive a ~version:2 ~digest:20L)

let test_acceptor_commit () =
  let a = Quorum.Acceptor.create () in
  check_ok (Quorum.Acceptor.commit a ~version:2 ~digest:20L);
  (* idempotent duplicate *)
  check_ok (Quorum.Acceptor.commit a ~version:2 ~digest:20L);
  (* divergent digest at the committed version *)
  check_err (Quorum.Acceptor.commit a ~version:2 ~digest:21L);
  (* regression *)
  check_err (Quorum.Acceptor.commit a ~version:1 ~digest:10L);
  (* committing settles the acceptance window: a stale proposal below
     the commit is refused even though the acceptor never voted *)
  Alcotest.check verdict "stale after commit" Quorum.Acceptor.Stale
    (Quorum.Acceptor.receive a ~version:2 ~digest:20L);
  Alcotest.(check (option (pair int int64))) "acceptance settled"
    (Some (2, 20L))
    (Quorum.Acceptor.accepted a)

(* ---- rounds ------------------------------------------------------- *)

let test_round () =
  let r = Quorum.Round.start Quorum.Majority ~n:3 ~version:4 ~digest:40L in
  Alcotest.(check int) "version" 4 (Quorum.Round.version r);
  Alcotest.(check int64) "digest" 40L (Quorum.Round.digest r);
  Alcotest.(check bool) "no quorum yet" false (Quorum.Round.has_quorum r);
  Alcotest.(check bool) "reachable" true (Quorum.Round.can_reach_quorum r);
  Quorum.Round.accept r ~acceptor:0;
  Quorum.Round.accept r ~acceptor:0 (* idempotent *);
  Alcotest.(check int) "one vote" 1 (Quorum.Round.accept_votes r);
  Quorum.Round.fail r ~acceptor:1;
  Alcotest.(check bool) "still reachable" true (Quorum.Round.can_reach_quorum r);
  Quorum.Round.fail r ~acceptor:2;
  Alcotest.(check bool) "now dead" false (Quorum.Round.can_reach_quorum r);
  (* a vote wins over a late failure report *)
  Quorum.Round.fail r ~acceptor:0;
  Alcotest.(check int) "vote survives" 1 (Quorum.Round.accept_votes r);
  Quorum.Round.mark_abandoned r;
  Alcotest.(check bool) "abandoned" true
    (Quorum.Round.outcome r = Quorum.Round.Abandoned)

let test_round_commit_path () =
  let r = Quorum.Round.start Quorum.Majority ~n:3 ~version:1 ~digest:1L in
  Quorum.Round.accept r ~acceptor:2;
  Quorum.Round.accept r ~acceptor:0;
  Alcotest.(check bool) "majority reached" true (Quorum.Round.has_quorum r);
  Quorum.Round.mark_committed r;
  Alcotest.(check bool) "committed" true
    (Quorum.Round.outcome r = Quorum.Round.Committed)

let test_round_bad_family () =
  Alcotest.check_raises "invalid family rejected"
    (Invalid_argument
       "Quorum.Round.start: weight vector has 2 entries for 3 acceptors")
    (fun () ->
      ignore
        (Quorum.Round.start
           (Quorum.Weighted [| 1; 1 |])
           ~n:3 ~version:1 ~digest:1L))

let suite =
  [
    Alcotest.test_case "family validation" `Quick test_validate;
    Alcotest.test_case "thresholds and weighted quorums" `Quick test_threshold;
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"threshold is a strict majority"
         QCheck.(int_range 1 64)
         (fun n ->
           let t = Quorum.threshold Quorum.Majority ~n in
           (2 * t > n) && 2 * (t - 1) <= n));
    Alcotest.test_case "quorum intersection (qcheck)" `Quick
      test_quorum_intersection_qcheck;
    Alcotest.test_case "acceptor verdicts" `Quick test_acceptor;
    Alcotest.test_case "acceptor commit rules" `Quick test_acceptor_commit;
    Alcotest.test_case "round bookkeeping" `Quick test_round;
    Alcotest.test_case "round commit path" `Quick test_round_commit_path;
    Alcotest.test_case "round rejects invalid family" `Quick
      test_round_bad_family;
  ]
