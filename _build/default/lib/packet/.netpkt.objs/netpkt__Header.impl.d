lib/packet/header.ml: Addr Flow Format Printf
