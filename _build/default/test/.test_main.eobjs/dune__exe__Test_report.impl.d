test/test_report.ml: Alcotest Buffer Format List Sim String
