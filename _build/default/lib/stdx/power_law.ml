type t = { alpha : float; lo : float; hi : float }

let make ~alpha ~lo ~hi =
  if alpha <= 1.0 then invalid_arg "Power_law.make: alpha must be > 1";
  if lo < 1 || hi <= lo then invalid_arg "Power_law.make: need 1 <= lo < hi";
  { alpha; lo = float_of_int lo; hi = float_of_int hi }

let alpha t = t.alpha

(* Inverse-CDF sampling of a Pareto truncated to [lo, hi]:
   F(x) = (lo^(1-a) - x^(1-a)) / (lo^(1-a) - hi^(1-a)). *)
let sample t rng =
  let a = t.alpha in
  let u = Rng.float rng 1.0 in
  let pl = t.lo ** (1.0 -. a) and ph = t.hi ** (1.0 -. a) in
  let x = (pl -. (u *. (pl -. ph))) ** (1.0 /. (1.0 -. a)) in
  let n = int_of_float x in
  let lo = int_of_float t.lo and hi = int_of_float t.hi in
  if n < lo then lo else if n > hi then hi else n

let mean t =
  let a = t.alpha in
  if abs_float (a -. 2.0) < 1e-12 then
    (* Degenerate integral: mean = ln(hi/lo) / (1/lo - 1/hi). *)
    log (t.hi /. t.lo) /. ((1.0 /. t.lo) -. (1.0 /. t.hi))
  else
    let num = (t.hi ** (2.0 -. a)) -. (t.lo ** (2.0 -. a)) in
    let den = (t.hi ** (1.0 -. a)) -. (t.lo ** (1.0 -. a)) in
    (1.0 -. a) /. (2.0 -. a) *. (num /. den)

let calibrate ~lo ~hi ~mean:target =
  let lo_f = float_of_int lo and hi_f = float_of_int hi in
  if target <= lo_f || target >= (lo_f +. hi_f) /. 2.0 then
    invalid_arg "Power_law.calibrate: target mean not achievable";
  (* Mean is decreasing in alpha on (1, inf); bisect. *)
  let eval a = mean (make ~alpha:a ~lo ~hi) in
  let rec bisect a_lo a_hi n =
    if n = 0 then make ~alpha:((a_lo +. a_hi) /. 2.0) ~lo ~hi
    else
      let mid = (a_lo +. a_hi) /. 2.0 in
      if eval mid > target then bisect mid a_hi (n - 1) else bisect a_lo mid (n - 1)
  in
  bisect 1.000001 30.0 80
