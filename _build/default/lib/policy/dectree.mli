(** Decision-tree packet classifier (HiCuts-style).

    The second software classifier alongside {!Trie}, following the
    decision-tree family the paper's classification references survey
    (Gupta & McKeown; Taylor's taxonomy).  The five-dimensional rule
    space (src, dst, sport, dport, proto) is recursively cut into
    equal-width intervals along the locally most discriminating
    dimension until few enough rules remain per leaf; a lookup walks
    the cuts for the packet's point and linearly scans one small leaf.

    Semantics are identical to {!Rule.first_match} (lowest rule id
    among matches); a property test enforces the equivalence against
    the linear scan on random rule sets. *)

type t

val build : ?binth:int -> ?max_depth:int -> Rule.t list -> t
(** [binth] (default 8) is the leaf size target; [max_depth]
    (default 24) bounds the tree.  Rules replicated into multiple
    children are shared, not copied. *)

val first_match : t -> Netpkt.Flow.t -> Rule.t option

val rule_count : t -> int

val node_count : t -> int
(** Internal + leaf nodes — a memory proxy for benchmarks. *)

val depth : t -> int
(** Longest root-to-leaf path. *)
