examples/label_switching_demo.ml: Array Format List Mbox Netpkt Policy Sdm Sim
