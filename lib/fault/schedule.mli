(** Deterministic fault schedules for the packet-level simulator.

    A schedule is a time-sorted list of discrete fault events (middlebox
    crash/recovery, link fail/restore) plus two stationary loss
    processes: a per-link data-packet loss probability and a
    per-transmission control-packet loss probability.  Loss draws come
    from a dedicated RNG seeded with [loss_seed], independent of the
    workload seed, so the same schedule applied to the same run is
    bit-reproducible. *)

type event =
  | Mbox_crash of int  (** middlebox [id] goes down and loses all soft state *)
  | Mbox_recover of int  (** middlebox [id] comes back, empty-handed *)
  | Link_fail of int * int  (** link (u, v) goes down; OSPF reconverges *)
  | Link_restore of int * int  (** link (u, v) comes back; OSPF reconverges *)
  | Ctrl_crash of int
      (** controller replica [id] goes down: its in-flight pushes and
          proposals die; if it led, a deterministic re-election follows
          one detection delay later *)
  | Ctrl_recover of int
      (** controller replica [id] comes back with its durable acceptor
          state (accepted/committed versions) intact *)
  | Label_corrupt of int
      (** one live entry of middlebox [id]'s label table is silently
          rewritten to steer to the wrong device (bit flip in the
          next-hop/final-destination field); which entry, and where it
          redirects, is drawn from the corruption RNG at fire time *)
  | Label_drop of int
      (** one live entry of middlebox [id]'s label table silently
          vanishes (lost write-back); later label-switched packets of
          that flow miss and are dropped *)
  | Cache_poison of int
      (** one live entry of proxy [id]'s flow cache is silently
          poisoned: a positive entry flips to a bogus negative, or its
          action list is rewritten — drawn from the corruption RNG *)
  | Config_lose of int
      (** device [id] (proxies-first indexing, matching the live
          control plane's device vector) silently regresses to its
          previous installed configuration version — a config install
          that was acked but never actually took *)
  | Stale_resurrect of int
      (** entries of middlebox [id]'s label table that were purged at
          the last install (versions below the staged window) silently
          reappear — post-partition resurrection of stale state *)

type timed = { at : float; what : event }

type t = private {
  events : timed list;  (** sorted by [at], stable for equal times *)
  link_loss : float;  (** per-link data-packet loss probability, in [0, 1) *)
  control_loss : float;
      (** per-transmission control-packet loss probability, in [0, 1) *)
  loss_seed : int;  (** seed of the RNG driving the loss draws *)
}

val make :
  ?link_loss:float -> ?control_loss:float -> ?loss_seed:int -> timed list -> t
(** Build a schedule.  Events are stable-sorted by time.  Raises
    [Invalid_argument] on a non-finite or negative event time or a
    loss probability outside [0, 1) (NaN included).  Defaults: no
    losses, [loss_seed] = 1. *)

val empty : t
(** No events, no losses. *)

val is_empty : t -> bool

val has_link_events : t -> bool
(** True when the schedule contains a link fail or restore — the
    simulator then drives its routing tables through an OSPF session. *)

val has_corruption_events : t -> bool
(** True when the schedule contains any silent-corruption event
    ([Label_corrupt], [Label_drop], [Cache_poison], [Config_lose],
    [Stale_resurrect]) — the simulator then arms its corruption
    registry and purge graveyards. *)

val validate :
  ?n_controllers:int ->
  ?n_proxies:int ->
  n_mboxes:int ->
  link_exists:(int -> int -> bool) ->
  t ->
  (unit, string) result
(** Check the schedule against a concrete deployment: every middlebox
    id must be in [0, n_mboxes), every controller replica id in
    [0, n_controllers) (default 0 — controller events are only legal
    when the run declares replicas), every proxy id named by a
    [Cache_poison] in [0, n_proxies) (default 0), every [Config_lose]
    device id in [0, n_proxies + n_mboxes), every link must satisfy
    [link_exists], every event time must be finite, and, replaying the
    events in time order, a [Mbox_recover]/[Ctrl_recover] must be
    preceded by a crash of the same box/replica, a [Link_restore] by a
    failure of the same link, and nothing may fail twice without
    recovering in between.  Corruption events carry no pairing
    constraint — corrupting an empty or crashed table is a no-op at
    fire time, not a schedule error.  Returns a human-readable
    description of the first offending event. *)

val crash_times : t -> (int * float) list
(** The (middlebox id, time) pairs of the crash events, in time order. *)

val corruption_events :
  seed:int ->
  rate:float ->
  horizon:float ->
  n_proxies:int ->
  n_mboxes:int ->
  timed list
(** Generate a deterministic burst of [round (rate * horizon)]
    corruption events, uniform over [\[0, horizon)] and over the five
    corruption kinds (falling back to [Label_drop] for [Cache_poison]
    when [n_proxies = 0]).  Every draw for event [i] comes from
    [Stdx.Rng.derive]d child [i] of [seed], so the burst is a pure
    function of its arguments — stable under [--jobs]/[--shards]
    slicing and under reordering of the sweep that requested it.  Feed
    the result to {!make}.  Raises [Invalid_argument] on a negative or
    non-finite rate, a non-positive horizon, or an empty deployment. *)

val event_to_string : event -> string
