lib/sim/flowsim.ml: Array List Mbox Netpkt Policy Sdm Workload
