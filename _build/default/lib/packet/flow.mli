(** Flow identifiers: the classic 5-tuple.

    The paper's flow cache keys on this tuple, and its probabilistic
    middlebox selection hashes it, so the tuple's hash must be
    deterministic across runs (FNV-1a via [Stdx.Xhash]). *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;    (** 6 = TCP, 17 = UDP, ... *)
  sport : int;
  dport : int;
}

val make : src:Addr.t -> dst:Addr.t -> proto:int -> sport:int -> dport:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int64
(** Deterministic FNV-1a over the five fields. *)

val hash_to_unit : t -> float
(** [hash] mapped to [\[0, 1)] — the value [r / N] used for
    probabilistic next-hop selection. *)

val reverse : t -> t
(** Swap source and destination (address and port) — the return flow. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
