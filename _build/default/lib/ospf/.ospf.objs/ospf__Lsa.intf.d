lib/ospf/lsa.mli: Format
