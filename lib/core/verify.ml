type violation =
  | Empty_candidates of Mbox.Entity.t * int * Policy.Action.nf
  | Wrong_function of Mbox.Entity.t * int * Policy.Action.nf * int
  | Foreign_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Negative_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Unnormalized_row of Mbox.Entity.t * int * Policy.Action.nf * float
  | Table_mismatch of Mbox.Entity.t * int
  | Duplicate_function of int
  | Window_too_deep of int

let pp_violation ppf = function
  | Empty_candidates (e, rule, nf) ->
    Format.fprintf ppf "%a has no candidate for %s (rule %d)" Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule
  | Wrong_function (e, rule, nf, mb) ->
    Format.fprintf ppf
      "candidate mbox%d of %a does not implement %s (rule %d)" mb Mbox.Entity.pp
      e
      (Policy.Action.nf_to_string nf)
      rule
  | Foreign_weight (e, rule, nf, mb) ->
    Format.fprintf ppf
      "weight row of %a for %s (rule %d) references non-candidate mbox%d"
      Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule mb
  | Negative_weight (e, rule, nf, mb) ->
    Format.fprintf ppf "negative weight at %a for %s (rule %d) toward mbox%d"
      Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule mb
  | Unnormalized_row (e, rule, nf, total) ->
    Format.fprintf ppf
      "weight row of %a for %s (rule %d) does not normalize (sum %g)"
      Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule total
  | Table_mismatch (e, rule) ->
    Format.fprintf ppf "policy table of %a inconsistent for rule %d"
      Mbox.Entity.pp e rule
  | Duplicate_function rule ->
    Format.fprintf ppf "rule %d repeats a function in its action list" rule
  | Window_too_deep n ->
    Format.fprintf ppf
      "staged window holds %d versions; only an adjacent pair may coexist" n

let normalization_eps = 1e-6

let weights_of (c : Controller.t) =
  match c.Controller.strategy with
  | Strategy.Load_balanced w -> Some w
  | Strategy.Load_balanced_exact (_, fallback) ->
    (* The per-(s,d) rows are sums of the fallback's; checking the
       aggregate covers candidate membership and sign for both. *)
    Some fallback
  | Strategy.Hot_potato | Strategy.Random_uniform -> None

(* Per-entity step check for one configuration: candidates exist,
   implement the function, and any weight row stays within the
   candidate set and normalizes to a proper distribution. *)
let step_checker (c : Controller.t) add =
  let weights = weights_of c in
  fun entity rule_id nf ->
    match Candidate.get c.Controller.candidates entity nf with
    | exception Not_found ->
      add (Empty_candidates (entity, rule_id, nf));
      []
    | exception Invalid_argument _ ->
      (* The entity implements [nf] itself: chains never ask this. *)
      add (Empty_candidates (entity, rule_id, nf));
      []
    | [] ->
      add (Empty_candidates (entity, rule_id, nf));
      []
    | members ->
      List.iter
        (fun (m : Mbox.Middlebox.t) ->
          if not (Policy.Action.equal_nf m.nf nf) then
            add (Wrong_function (entity, rule_id, nf, m.id)))
        members;
      (match weights with
      | None -> ()
      | Some w -> (
        match Weights.find w entity ~rule:rule_id ~nf with
        | None -> ()
        | Some row ->
          Array.iter
            (fun (id, v) ->
              if v < 0.0 then add (Negative_weight (entity, rule_id, nf, id));
              if
                not
                  (List.exists (fun (m : Mbox.Middlebox.t) -> m.id = id) members)
              then add (Foreign_weight (entity, rule_id, nf, id)))
            row;
          (* Rows hold LP volumes, not probabilities: the selector
             divides by the row total.  A non-positive or non-finite
             total makes the selector return no pick and silently
             degrades the row to closest-live fallback, so it must be
             flagged here, at verification time. *)
          if Array.length row > 0 then begin
            let total =
              Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 row
            in
            let normalized =
              if Float.is_finite total && total > 0.0 then
                Array.fold_left (fun acc (_, v) -> acc +. (v /. total)) 0.0 row
              else Float.nan
            in
            if
              (not (Float.is_finite total))
              || total <= 0.0
              || Float.abs (normalized -. 1.0) > normalization_eps
            then add (Unnormalized_row (entity, rule_id, nf, total))
          end));
      members

(* Walk every rule's chain from every proxy, following every candidate
   [step] yields (all run-time choices are a subset of this). *)
let walk_chains (dep : Deployment.t) rules add step =
  let uniq ms =
    List.sort_uniq (fun (a : Mbox.Middlebox.t) b -> compare a.id b.id) ms
  in
  List.iter
    (fun rule ->
      let rule_id = rule.Policy.Rule.id in
      let chain = rule.Policy.Rule.actions in
      if Policy.Action.has_duplicates chain then add (Duplicate_function rule_id);
      match chain with
      | [] -> ()
      | first :: rest ->
        let n_proxies = Array.length dep.Deployment.proxies in
        let starters =
          List.filter
            (fun i ->
              Policy.Descriptor.src_overlaps rule.Policy.Rule.descriptor
                (Deployment.subnet_of dep i))
            (List.init n_proxies Fun.id)
        in
        (* Frontier of middleboxes reachable at each chain position. *)
        let frontier =
          uniq
            (List.concat_map
               (fun i -> step (Mbox.Entity.Proxy i) rule_id first)
               starters)
        in
        ignore
          (List.fold_left
             (fun frontier nf ->
               uniq
                 (List.concat_map
                    (fun (m : Mbox.Middlebox.t) ->
                      step (Mbox.Entity.Middlebox m.id) rule_id nf)
                    frontier))
             frontier rest))
    rules

let check (c : Controller.t) =
  let dep = c.Controller.deployment in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  walk_chains dep c.Controller.rules add (step_checker c add);
  (* Policy-table consistency. *)
  Array.iter
    (fun (m : Mbox.Middlebox.t) ->
      let entity = Mbox.Entity.Middlebox m.id in
      List.iter
        (fun r ->
          if
            not
              (List.exists
                 (Policy.Action.equal_nf m.Mbox.Middlebox.nf)
                 r.Policy.Rule.actions)
          then add (Table_mismatch (entity, r.Policy.Rule.id)))
        (Controller.policy_table_for c entity))
    dep.Deployment.middleboxes;
  Array.iteri
    (fun i _ ->
      let entity = Mbox.Entity.Proxy i in
      let table = Controller.policy_table_for c entity in
      List.iter
        (fun r ->
          let relevant =
            Policy.Descriptor.src_overlaps r.Policy.Rule.descriptor
              (Deployment.subnet_of dep i)
          in
          let present =
            List.exists (fun t -> t.Policy.Rule.id = r.Policy.Rule.id) table
          in
          if relevant <> present then add (Table_mismatch (entity, r.Policy.Rule.id)))
        c.Controller.rules)
    dep.Deployment.proxies;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let check_mixed (old_c : Controller.t) (new_c : Controller.t) =
  let rule_ids c = List.map (fun r -> r.Policy.Rule.id) c.Controller.rules in
  if rule_ids old_c <> rule_ids new_c then
    invalid_arg "Verify.check_mixed: configurations carry different rule sets";
  let dep = new_c.Controller.deployment in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let step_old = step_checker old_c add in
  let step_new = step_checker new_c add in
  (* While an update is in flight each deciding entity independently
     runs the old or the new configuration, so the reachable frontier
     is the union of both candidate sets, and every frontier member
     must take a safe step under either version. *)
  let step entity rule_id nf =
    step_old entity rule_id nf @ step_new entity rule_id nf
  in
  walk_chains dep new_c.Controller.rules add step;
  (* The same defect can surface through both versions: report once. *)
  let seen = Hashtbl.create 16 in
  let vs =
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (List.rev !violations)
  in
  match vs with [] -> Ok () | vs -> Error vs

let check_window = function
  | [] -> Ok ()
  | [ only ] -> check only
  | [ old_c; new_c ] -> check_mixed old_c new_c
  | versions ->
    (* The enforcement plane's stickiness clamp keeps every flow inside
       the {installed-1, installed} pair, so any deeper window — e.g. a
       proposed-but-uncommitted config staged next to two live ones —
       is unsafe by construction and refused without walking it. *)
    Error [ Window_too_deep (List.length versions) ]
