lib/core/strategy.mli: Candidate Mbox Netpkt Policy Weights Weights_sd
