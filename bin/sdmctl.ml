(* sdmctl: command-line front end to the SDM policy-enforcement
   reproduction.

     sdmctl topo campus            # describe a topology + deployment
     sdmctl ospf waxman            # distributed routing convergence check
     sdmctl exp fig4               # regenerate Figure 4
     sdmctl exp table3 --flows 300000
     sdmctl exp cache              # Sec. III.D ablation
     sdmctl demo --flows 30000     # quick three-strategy comparison *)

open Cmdliner

let scenario_conv =
  let parse = function
    | "campus" -> Ok Sim.Experiment.Campus
    | "waxman" -> Ok Sim.Experiment.Waxman
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S (campus|waxman)" s))
  in
  let print ppf s = Format.pp_print_string ppf (Sim.Experiment.scenario_name s) in
  Arg.conv (parse, print)

let scenario_arg =
  Arg.(
    required
    & pos 0 (some scenario_conv) None
    & info [] ~docv:"TOPOLOGY" ~doc:"campus or waxman")

let seed_arg =
  Arg.(value & opt int 17 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed")

let flows_arg default =
  Arg.(
    value & opt int default
    & info [ "flows" ] ~docv:"N" ~doc:"Number of generated flows")

(* ---- topo -------------------------------------------------------- *)

let topo_cmd =
  let dot_flag =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary")
  in
  let run scenario seed dot =
    let dep = Sim.Experiment.build_deployment scenario ~seed in
    let topo = dep.Sdm.Deployment.topo in
    if dot then begin
      (* Merge the labels of middleboxes sharing a router. *)
      let by_router = Hashtbl.create 16 in
      Array.iter
        (fun (m : Mbox.Middlebox.t) ->
          let tag = Printf.sprintf "%s%d" (Policy.Action.nf_to_string m.nf) m.id in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_router m.router) in
          Hashtbl.replace by_router m.router (tag :: prev))
        dep.Sdm.Deployment.middleboxes;
      let labels =
        Hashtbl.fold
          (fun router tags acc -> (router, String.concat " " (List.rev tags)) :: acc)
          by_router []
      in
      Netgraph.Dot.topology ~extra_labels:labels Format.std_formatter topo
    end
    else begin
    Format.printf "%a@." Netgraph.Topology.pp topo;
    (* Structural metrics from the all-pairs distances the deployment
       already computed. *)
    let dist = dep.Sdm.Deployment.dist in
    let n = Array.length dist in
    let diameter = ref 0.0 and total = ref 0.0 and pairs = ref 0 in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && dist.(u).(v) < infinity then begin
          if dist.(u).(v) > !diameter then diameter := dist.(u).(v);
          total := !total +. dist.(u).(v);
          incr pairs
        end
      done
    done;
    Format.printf "diameter: %.0f hops, mean shortest path: %.2f hops@."
      !diameter
      (!total /. float_of_int (max 1 !pairs));
    Format.printf "proxies: %d, middleboxes: %d@."
      (Array.length dep.Sdm.Deployment.proxies)
      (Array.length dep.Sdm.Deployment.middleboxes);
    List.iter
      (fun nf ->
        let boxes = Sdm.Deployment.middleboxes_of dep nf in
        Format.printf "  %-4s x%d at routers [%s]@."
          (Policy.Action.nf_to_string nf)
          (List.length boxes)
          (String.concat "; "
             (List.map
                (fun (m : Mbox.Middlebox.t) -> string_of_int m.router)
                boxes)))
      (Sdm.Deployment.functions dep)
    end
  in
  Cmd.v (Cmd.info "topo" ~doc:"Describe a topology and its middlebox deployment")
    Term.(const run $ scenario_arg $ seed_arg $ dot_flag)

(* ---- ospf -------------------------------------------------------- *)

let ospf_cmd =
  let run scenario seed =
    let dep = Sim.Experiment.build_deployment scenario ~seed in
    let topo = dep.Sdm.Deployment.topo in
    let result = Ospf.Protocol.converge topo in
    let oracle = Netgraph.Routing.build_all topo.Netgraph.Topology.graph in
    let agree =
      Array.for_all2 (fun (a : int array) b -> a = b)
        result.Ospf.Protocol.tables oracle
    in
    Format.printf
      "LSA transmissions: %d@.convergence time: %.2f@.tables match global \
       Dijkstra oracle: %b@."
      result.Ospf.Protocol.stats.Ospf.Protocol.messages
      result.Ospf.Protocol.stats.Ospf.Protocol.convergence_time agree;
    if not agree then exit 1
  in
  Cmd.v
    (Cmd.info "ospf"
       ~doc:"Flood LSAs to convergence and check the distributed tables")
    Term.(const run $ scenario_arg $ seed_arg)

(* ---- exp --------------------------------------------------------- *)

let exp_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "fig4, fig5, table3, k, cache, frag, fail, chaos, live, quorum, \
             corrupt, epoch, sketch, queue or lp")
  in
  let audit_flag =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the packet-level rows of chaos/live/quorum/corrupt/reopt \
             under the online invariant audit and exit non-zero on any \
             violation")
  in
  let corrupt_rate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corrupt-rate" ] ~docv:"RATE"
          ~doc:
            "Corruption events per simulated time unit for $(b,exp corrupt) \
             (non-negative; overrides the default rate sweep)")
  in
  let sweep_period_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sweep-period" ] ~docv:"PERIOD"
          ~doc:
            "Anti-entropy sweep period for $(b,exp corrupt) (non-negative; \
             0 disables the sweep; overrides the default period sweep)")
  in
  let classifier_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "classifier" ] ~docv:"KIND"
          ~doc:
            "Software classifier backing the policy tables of the \
             packet-level experiments (cache, frag): trie (default), dectree \
             or linear.  All three have identical first-match semantics, so \
             the printed statistics are invariant; only classification cost \
             differs.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Stdx.Domain_pool.default_jobs ())
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Evaluate independent experiment cells on up to $(docv) domains. \
             Results are bit-identical for every value; only the wall time \
             changes.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Split each individual run's per-flow work across up to $(docv) \
             domains (flow-hash sharding for flow-level runs, parallel setup \
             phases for packet-level runs).  Orthogonal to $(b,--jobs); \
             results are bit-identical for every value.")
  in
  (* Exit policy under --audit: any invariant violation fails the
     invocation so CI can gate on it. *)
  let audit_verdict counts =
    let total = List.fold_left ( + ) 0 counts in
    if total > 0 then begin
      Format.eprintf "audit: %d invariant violation(s)@." total;
      exit 1
    end
    else Format.printf "audit: clean (%d runs)@." (List.length counts)
  in
  let known_experiments =
    [
      "fig4"; "fig5"; "table3"; "k"; "cache"; "frag"; "fail"; "chaos"; "live";
      "quorum"; "corrupt"; "reopt"; "epoch"; "sketch"; "queue"; "lp";
    ]
  in
  let audited_experiments = [ "chaos"; "live"; "quorum"; "corrupt"; "reopt" ] in
  let run which seed flows audit jobs shards corrupt_rate sweep_period
      classifier =
    if audit && not (List.mem which audited_experiments) then
      Format.eprintf
        "note: --audit applies to chaos, live, quorum, corrupt and reopt only@.";
    (* Parsed by hand so misuse exits 2 (flag-misuse policy), not
       cmdliner's generic CLI-error code. *)
    let classifier =
      match classifier with
      | None -> Sim.Pktsim.Trie
      | Some "trie" -> Sim.Pktsim.Trie
      | Some "dectree" -> Sim.Pktsim.Dectree
      | Some "linear" -> Sim.Pktsim.Linear
      | Some s ->
        Format.eprintf
          "--classifier expects trie, dectree or linear, got %S@." s;
        exit 2
    in
    if
      classifier <> Sim.Pktsim.Trie
      && not (List.mem which [ "cache"; "frag" ])
    then
      Format.eprintf "note: --classifier applies to cache and frag only@.";
    if jobs < 1 then begin
      Format.eprintf "--jobs must be >= 1@.";
      exit 2
    end;
    if shards < 1 then begin
      Format.eprintf "--shards must be >= 1@.";
      exit 2
    end;
    (* The corrupt knobs are parsed by hand so misuse exits 2 with a
       usage line (same policy as --jobs/--shards), not cmdliner's
       generic CLI-error code. *)
    let parse_nonneg name v =
      match v with
      | None -> None
      | Some s -> (
        match float_of_string_opt s with
        | Some x when Float.is_finite x && x >= 0.0 -> Some x
        | _ ->
          Format.eprintf
            "%s expects a non-negative number, got %S@.usage: sdmctl exp \
             corrupt [--corrupt-rate RATE] [--sweep-period PERIOD]@."
            name s;
          exit 2)
    in
    let corrupt_rate = parse_nonneg "--corrupt-rate" corrupt_rate in
    let sweep_period = parse_nonneg "--sweep-period" sweep_period in
    match which with
    | "fig4" ->
      Format.printf "%a@." Sim.Report.pp_figure
        (Sim.Experiment.run_figure Sim.Experiment.Campus ~seed ~jobs ~shards ())
    | "fig5" ->
      Format.printf "%a@." Sim.Report.pp_figure
        (Sim.Experiment.run_figure Sim.Experiment.Waxman ~seed ~jobs ~shards ())
    | "table3" ->
      Format.printf "%a@." Sim.Report.pp_table3
        (Sim.Experiment.run_table3 ~flows ~seed ~jobs ~shards ())
          .Sim.Experiment.t3_rows
    | "k" ->
      Format.printf "%a@." Sim.Report.pp_k_ablation
        (Sim.Experiment.ablation_k ~seed ~jobs ~shards ()).Sim.Experiment.k_points
    | "cache" ->
      Format.printf "%a@." Sim.Report.pp_cache_ablation
        (Sim.Experiment.ablation_cache ~flows:(min flows 5_000) ~seed ~shards
           ~classifier ())
    | "frag" ->
      Format.printf "%a@." Sim.Report.pp_frag_ablation
        (Sim.Experiment.ablation_fragmentation ~flows:(min flows 5_000) ~seed
           ~jobs ~shards ~classifier ())
    | "epoch" ->
      let deployment =
        Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed
      in
      Format.printf "%a@." Sim.Report.pp_epochs
        (Sim.Epochsim.run ~deployment ~seed ~jobs ~shards ()).Sim.Epochsim.ep_rows
    | "sketch" ->
      Format.printf "%a@." Sim.Report.pp_sketch_ablation
        (Sim.Experiment.ablation_sketch ~flows:(min flows 120_000) ~seed ~jobs
           ~shards ())
          .Sim.Experiment.sk_points
    | "fail" ->
      Format.printf "%a@." Sim.Report.pp_failure_ablation
        (Sim.Experiment.ablation_failure ~flows:(min flows 120_000) ~seed ~jobs
           ~shards ())
    | "chaos" ->
      let r =
        Sim.Experiment.ablation_chaos ~flows:(min flows 800) ~seed ~audit ~jobs
          ~shards ()
      in
      Format.printf "%a@." Sim.Report.pp_chaos_ablation r;
      if audit then
        audit_verdict
          (List.filter_map
             (fun (row : Sim.Experiment.chaos_row) -> row.Sim.Experiment.chaos_audit)
             r.Sim.Experiment.chaos_rows)
    | "live" ->
      let r =
        Sim.Experiment.ablation_live ~flows:(min flows 500) ~seed ~audit ~jobs
          ~shards ()
      in
      Format.printf "%a@." Sim.Report.pp_live_ablation r;
      if audit then
        audit_verdict
          (List.filter_map
             (fun (row : Sim.Experiment.live_row) -> row.Sim.Experiment.live_audit)
             r.Sim.Experiment.live_rows)
    | "quorum" ->
      let r =
        Sim.Experiment.ablation_quorum ~flows:(min flows 400) ~seed ~audit
          ~jobs ~shards ()
      in
      Format.printf "%a@." Sim.Report.pp_quorum_ablation r;
      if audit then
        audit_verdict
          (List.filter_map
             (fun (row : Sim.Experiment.quorum_row) ->
               row.Sim.Experiment.qr_audit)
             r.Sim.Experiment.q_rows)
    | "corrupt" ->
      let rates = Option.map (fun r -> [ r ]) corrupt_rate in
      let sweep_periods =
        Option.map
          (fun p -> if p = 0.0 then [ None ] else [ Some p ])
          sweep_period
      in
      let r =
        Sim.Experiment.ablation_corrupt ~flows:(min flows 400) ~seed ~audit
          ?rates ?sweep_periods ~jobs ~shards ()
      in
      Format.printf "%a@." Sim.Report.pp_corrupt_ablation r;
      if audit then
        audit_verdict
          (List.filter_map
             (fun (row : Sim.Experiment.corrupt_row) ->
               row.Sim.Experiment.cr_audit)
             r.Sim.Experiment.c_rows)
    | "reopt" ->
      let r =
        Sim.Experiment.ablation_reopt ~flows:(min flows 400) ~seed ~audit ~jobs
          ~shards ()
      in
      Format.printf "%a@." Sim.Report.pp_reopt_ablation r;
      (* The differential oracle fails the invocation on its own, audit
         or not: a warm optimum disagreeing with the cold solve is a
         solver bug, not an enforcement-invariant violation. *)
      if r.Sim.Experiment.rp_agree <> r.Sim.Experiment.rp_total then begin
        Format.eprintf "reopt: warm/cold objective mismatch (%d/%d steps)@."
          r.Sim.Experiment.rp_agree r.Sim.Experiment.rp_total;
        exit 1
      end;
      if audit then
        audit_verdict
          (List.filter_map
             (fun (row : Sim.Experiment.reopt_row) -> row.Sim.Experiment.rp_audit)
             r.Sim.Experiment.rp_rows)
    | "queue" ->
      Format.printf "%a@." Sim.Report.pp_queue_ablation
        (Sim.Experiment.ablation_queue ~seed ~jobs ~shards ())
    | "lp" ->
      Format.printf "%a@." Sim.Report.pp_lp_ablation
        (Sim.Experiment.ablation_lp ~flows:(min flows 10_000) ~seed ~jobs ~shards ())
    | s ->
      (* A distinct exit code (3) so scripts can tell "no such
         experiment" from flag misuse (2). *)
      Format.eprintf "unknown experiment %S; known experiments: %s@." s
        (String.concat ", " known_experiments);
      exit 3
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate a paper experiment or ablation")
    Term.(
      const run $ which $ seed_arg $ flows_arg 300_000 $ audit_flag $ jobs_arg
      $ shards_arg $ corrupt_rate_arg $ sweep_period_arg $ classifier_arg)

(* ---- demo --------------------------------------------------------- *)

let demo_cmd =
  let scenario =
    Arg.(
      value
      & opt scenario_conv Sim.Experiment.Campus
      & info [ "topology" ] ~docv:"TOPOLOGY" ~doc:"campus or waxman")
  in
  let run scenario seed flows =
    let dep = Sim.Experiment.build_deployment scenario ~seed in
    let workload, runs = Sim.Experiment.run_strategies ~deployment:dep ~flows ~seed () in
    Format.printf "topology: %s, flows: %d, packets: %d@."
      (Sim.Experiment.scenario_name scenario)
      flows workload.Sim.Workload.total_packets;
    List.iter
      (fun (r : Sim.Experiment.strategy_run) ->
        Format.printf "%-5s" r.Sim.Experiment.strategy;
        List.iter
          (fun nf ->
            Format.printf " %s(max)=%s"
              (Policy.Action.nf_to_string nf)
              (Sim.Report.millions
                 (Sim.Flowsim.max_load_of_nf r.Sim.Experiment.controller
                    r.Sim.Experiment.result nf)))
          (List.map fst Sim.Experiment.mbox_counts);
        Format.printf "  stretch=%.2f"
          (Sim.Flowsim.stretch r.Sim.Experiment.result);
        (match r.Sim.Experiment.lambda with
        | Some l -> Format.printf "  lambda=%s" (Sim.Report.millions l)
        | None -> ());
        Format.printf "@.")
      runs
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Quick three-strategy comparison on one workload")
    Term.(const run $ scenario $ seed_arg $ flows_arg 30_000)

(* ---- verify -------------------------------------------------------- *)

let verify_cmd =
  let run scenario seed flows =
    let dep = Sim.Experiment.build_deployment scenario ~seed in
    let workload = Sim.Workload.generate ~deployment:dep ~seed ~flows () in
    let traffic = Sim.Workload.measure workload in
    match
      Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Error e ->
      Format.eprintf "configuration failed: %s@." e;
      exit 1
    | Ok c -> (
      Format.printf "%a@." Sdm.Controller.pp_config_summary
        (Sdm.Controller.config_summary c);
      Format.printf "%a@." Sim.Controlplane.pp_report
        (Sim.Controlplane.price c ~traffic);
      match Sdm.Verify.check c with
      | Ok () -> Format.printf "static verification: configuration certified@."
      | Error vs ->
        Format.printf "static verification: %d violations@." (List.length vs);
        List.iter (fun v -> Format.printf "  %a@." Sdm.Verify.pp_violation v) vs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Configure load-balanced enforcement and statically verify the \
          configuration (chain completeness, candidate correctness, weight \
          sanity), reporting its dissemination cost")
    Term.(const run $ scenario_arg $ seed_arg $ flows_arg 30_000)

(* ---- trace --------------------------------------------------------- *)

let trace_cmd =
  let flow_args =
    let src =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"SRC" ~doc:"Source address")
    in
    let dst =
      Arg.(required & pos 2 (some string) None & info [] ~docv:"DST" ~doc:"Destination address")
    in
    let sport =
      Arg.(value & opt int 40000 & info [ "sport" ] ~docv:"PORT" ~doc:"Source port")
    in
    let dport =
      Arg.(value & opt int 80 & info [ "dport" ] ~docv:"PORT" ~doc:"Destination port")
    in
    let proto =
      Arg.(value & opt int 6 & info [ "proto" ] ~docv:"P" ~doc:"IP protocol")
    in
    (src, dst, sport, dport, proto)
  in
  let src_a, dst_a, sport_a, dport_a, proto_a = flow_args in
  let run scenario seed flows src dst sport dport proto =
    let dep = Sim.Experiment.build_deployment scenario ~seed in
    let workload = Sim.Workload.generate ~deployment:dep ~seed ~flows () in
    let traffic = Sim.Workload.measure workload in
    match
      Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Error e ->
      Format.eprintf "configuration failed: %s@." e;
      exit 1
    | Ok c -> (
      let flow =
        Netpkt.Flow.make ~src:(Netpkt.Addr.of_string src)
          ~dst:(Netpkt.Addr.of_string dst) ~proto ~sport ~dport
      in
      match Sim.Flowsim.trace ~controller:c flow with
      | exception Invalid_argument msg ->
        Format.eprintf "%s@." msg;
        exit 1
      | None, _ -> Format.printf "flow %s: no policy matches@." (Netpkt.Flow.to_string flow)
      | Some rule, chain ->
        Format.printf "flow %s@.matches policy %a@." (Netpkt.Flow.to_string flow)
          Policy.Rule.pp rule;
        if chain = [] then Format.printf "permitted without middlebox processing@."
        else
          List.iter
            (fun (mb : Mbox.Middlebox.t) -> Format.printf "  -> %a@." Mbox.Middlebox.pp mb)
            chain)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace the middlebox chain a 5-tuple takes under load-balanced \
             enforcement (workload-derived policies)")
    Term.(const run $ scenario_arg $ seed_arg $ flows_arg 30_000 $ src_a $ dst_a $ sport_a $ dport_a $ proto_a)

(* ---- policies ------------------------------------------------------ *)

let policies_cmd =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Validate a policy file (DSL syntax)")
  in
  let run file =
    match file with
    | None ->
      Format.printf "%s@." Policy.Dsl.table_one_text;
      Format.printf "# parsed form:@.";
      List.iter
        (fun r -> Format.printf "#   %a@." Policy.Rule.pp r)
        (Policy.Rule.table_one (Netpkt.Addr.Prefix.of_string "128.40.0.0/16"))
    | Some path -> (
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Policy.Dsl.parse text with
      | Ok rules ->
        Format.printf "%d policies OK@." (List.length rules);
        List.iter (fun r -> Format.printf "  %a@." Policy.Rule.pp r) rules
      | Error e ->
        Format.eprintf "%s: %s@." path e;
        exit 1)
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:
         "Print the paper's Table I policies in the DSL, or validate a policy \
          file")
    Term.(const run $ file)

let () =
  let doc = "software-defined middlebox policy enforcement (ICDCS'19 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "sdmctl" ~version:"1.0.0" ~doc)
          [ topo_cmd; ospf_cmd; exp_cmd; demo_cmd; policies_cmd; verify_cmd; trace_cmd ]))
