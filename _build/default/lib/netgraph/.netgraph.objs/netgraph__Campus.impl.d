lib/netgraph/campus.ml: Array Graph Stdx Topology
