lib/core/lp_formulation.mli: Candidate Measurement Policy Stdlib Weights Weights_sd
