lib/packet/addr.ml: Printf String
