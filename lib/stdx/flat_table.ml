(* Open-addressing table keyed by a pair of non-negative ints (packed
   flow identities, (src, label) pairs), built for the per-packet fast
   path: lookups touch two parallel int arrays and box nothing.

   Layout follows the compact-dict design: a sparse power-of-two
   [index] array of linear-probe slots holding [dense + 1] (0 =
   empty), over dense parallel arrays [k1s]/[k2s]/[vals] that grow by
   appending — so iteration over the dense arrays is insertion order,
   which is what keeps seeded simulations reproducible wherever
   iteration order is observable (corruption target selection,
   scrubs).  Deletion clears the sparse slot with backward-shift
   compaction (no tombstones) and leaves a hole in the dense arrays
   ([k1s.(d) = -1]); holes are squeezed out when the dense region
   fills, preserving the relative order of survivors.

   The dense region is sized at 3/4 of the sparse capacity, so the
   probe load factor never exceeds 3/4 by construction. *)

type 'a t = {
  mutable index : int array;
  mutable mask : int; (* Array.length index - 1 *)
  mutable k1s : int array;
  mutable k2s : int array;
  mutable vals : 'a array;
  mutable n : int; (* dense slots consumed, holes included *)
  mutable live : int;
}

(* Vacated value slots must not retain their payload (a cache entry
   can capture arbitrary state).  Same representation argument as
   [Stdx.Heap]: every backing array is created from this immediate,
   so the array is always generic and storing the dummy into an ['a]
   slot is safe. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic ()

let default_capacity = 16
let dense_of cap = cap * 3 / 4

let rec pow2_above c v = if c >= v then c else pow2_above (c * 2) v

let create ?(initial = default_capacity) () =
  let cap = pow2_above default_capacity initial in
  {
    index = Array.make cap 0;
    mask = cap - 1;
    k1s = Array.make (dense_of cap) 0;
    k2s = Array.make (dense_of cap) 0;
    vals = Array.make (dense_of cap) (dummy ());
    n = 0;
    live = 0;
  }

let length t = t.live

(* Dense slot of (k1, k2), or -1.  The hot-path entry point: no
   allocation, no closure, two int-array reads per probe.  The probe
   loop lives at top level — an inner [let rec] would close over the
   locals and cost an allocation per lookup. *)
let rec probe_slot index k1s k2s mask k1 k2 i =
  let e = index.(i) in
  if e = 0 then -1
  else
    let d = e - 1 in
    if k1s.(d) = k1 && k2s.(d) = k2 then d
    else probe_slot index k1s k2s mask k1 k2 ((i + 1) land mask)

let find_slot t k1 k2 =
  probe_slot t.index t.k1s t.k2s t.mask k1 k2
    (Xhash.mix2_int k1 k2 land t.mask)

let mem t k1 k2 = find_slot t k1 k2 >= 0
let value t d = t.vals.(d)
let set_value t d v = t.vals.(d) <- v
let key1 t d = t.k1s.(d)
let key2 t d = t.k2s.(d)

let find t k1 k2 =
  let d = find_slot t k1 k2 in
  if d < 0 then None else Some t.vals.(d)

(* Claim a sparse slot for dense entry [d] (key not present). *)
let rec probe_empty index mask d i =
  if index.(i) = 0 then index.(i) <- d + 1
  else probe_empty index mask d ((i + 1) land mask)

let insert_index t d =
  probe_empty t.index t.mask d
    (Xhash.mix2_int t.k1s.(d) t.k2s.(d) land t.mask)

let append t k1 k2 v =
  let d = t.n in
  t.n <- d + 1;
  t.k1s.(d) <- k1;
  t.k2s.(d) <- k2;
  t.vals.(d) <- v;
  t.live <- t.live + 1;
  insert_index t d

(* Squeeze dense holes out (relative order preserved) and rebuild the
   sparse index; grows only when the survivors genuinely crowd the
   probe array, so deletion-heavy workloads compact in place. *)
let rehash t =
  let cap = Array.length t.index in
  let cap = if dense_of cap > t.live then cap else cap * 2 in
  let old_k1 = t.k1s and old_k2 = t.k2s and old_vals = t.vals and old_n = t.n in
  t.index <- Array.make cap 0;
  t.mask <- cap - 1;
  t.k1s <- Array.make (dense_of cap) 0;
  t.k2s <- Array.make (dense_of cap) 0;
  t.vals <- Array.make (dense_of cap) (dummy ());
  t.n <- 0;
  t.live <- 0;
  for d = 0 to old_n - 1 do
    if old_k1.(d) >= 0 then append t old_k1.(d) old_k2.(d) old_vals.(d)
  done

let replace t k1 k2 v =
  if k1 < 0 || k2 < 0 then invalid_arg "Flat_table.replace: negative key";
  let d = find_slot t k1 k2 in
  if d >= 0 then t.vals.(d) <- v
  else begin
    if t.n = Array.length t.k1s then rehash t;
    append t k1 k2 v
  end

let remove t k1 k2 =
  let mask = t.mask in
  (* Track the sparse slot, not just the dense one: deletion must
     clear it and backward-shift the probe chain behind it. *)
  let rec probe i =
    let e = t.index.(i) in
    if e = 0 then ()
    else
      let d = e - 1 in
      if t.k1s.(d) = k1 && t.k2s.(d) = k2 then begin
        t.k1s.(d) <- -1;
        t.vals.(d) <- dummy ();
        t.live <- t.live - 1;
        (* Backward shift: walk the chain after the hole; any entry
           whose home slot lies at or before the hole (cyclically)
           moves back into it, leaving a new hole at its old slot. *)
        let hole = ref i in
        let j = ref i in
        let shifting = ref true in
        while !shifting do
          j := (!j + 1) land mask;
          let e = t.index.(!j) in
          if e = 0 then begin
            t.index.(!hole) <- 0;
            shifting := false
          end
          else begin
            let d = e - 1 in
            let home = Xhash.mix2_int t.k1s.(d) t.k2s.(d) land mask in
            if (!j - home) land mask >= (!j - !hole) land mask then begin
              t.index.(!hole) <- e;
              hole := !j
            end
          end
        done
      end
      else probe ((i + 1) land mask)
  in
  probe (Xhash.mix2_int k1 k2 land mask)

let iter f t =
  for d = 0 to t.n - 1 do
    if t.k1s.(d) >= 0 then f t.k1s.(d) t.k2s.(d) t.vals.(d)
  done

let fold f t init =
  let acc = ref init in
  for d = 0 to t.n - 1 do
    if t.k1s.(d) >= 0 then acc := f t.k1s.(d) t.k2s.(d) t.vals.(d) !acc
  done;
  !acc
