examples/routing_protocols.ml: Array Dvr Format List Netgraph Ospf
