lib/core/controller.ml: Array Candidate Deployment Format List Lp_formulation Mbox Measurement Option Policy Printf Strategy String Weights Weights_sd
