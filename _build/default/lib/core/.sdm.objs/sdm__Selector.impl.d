lib/core/selector.ml: Array Int64 List Mbox Netpkt Policy Stdx
