(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. IV) plus the ablations indexed in DESIGN.md, then
   runs Bechamel microbenchmarks of the performance-critical
   primitives.

     dune exec bench/main.exe            # everything, full scale
     dune exec bench/main.exe -- --fast  # reduced scale (CI-friendly)
     dune exec bench/main.exe -- --skip-micro
     dune exec bench/main.exe -- --csv   # also write fig4/fig5/table3 CSVs
     dune exec bench/main.exe -- --audit # chaos/live under the invariant audit
     dune exec bench/main.exe -- --jobs 4 # experiment-cell parallelism
     dune exec bench/main.exe -- --shards 4 # intra-run flow-hash sharding
     dune exec bench/main.exe -- --flows 2000000 # SCALE section volume

   Reports are bit-identical for every --jobs and --shards value (the
   fan-out in Sim.Experiment and the flow-hash sharding in Sim.Flowsim
   are deterministic); only the wall times change.

   Experiment index (see DESIGN.md section 4):
     FIG4   - Figure 4: max load per middlebox type vs volume, campus
     FIG5   - Figure 5: same, Waxman topology
     TABLE3 - Table III: per-type max/min load distribution, campus
     ABL-K     - candidate-set size sensitivity
     ABL-CACHE - flow-cache lookup suppression (Sec. III.D)
     ABL-FRAG  - fragmentation vs label switching (Sec. III.E)
     ABL-FAIL  - middlebox failure: fast failover vs re-optimization
     ABL-LIVE  - live reconfiguration: versioned config pushes vs control loss
     ABL-CORRUPT - silent state corruption vs anti-entropy digest repair
     ABL-REOPT - warm-started LP re-optimization vs cold re-solve
     ABL-EPOCH - adaptation across measurement epochs (stale weights)
     ABL-SKETCH- Count-Min sketched measurement vs exact
     ABL-LP    - LP formulation Eq.(1) vs Eq.(2) *)

let fast = Array.exists (( = ) "--fast") Sys.argv
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv
let audit = Array.exists (( = ) "--audit") Sys.argv
let csv_dir = if Array.exists (( = ) "--csv") Sys.argv then Some "bench_csv" else None
let json_out = Array.exists (( = ) "--json") Sys.argv

let int_flag name default =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some j when j >= 1 -> j
      | _ -> failwith (Printf.sprintf "bench: %s expects a positive integer" name)
    else find (i + 1)
  in
  find 1

let jobs = int_flag "--jobs" (Stdx.Domain_pool.default_jobs ())

(* Intra-run parallelism: flow-hash sharding inside each Flowsim run,
   parallel setup phases inside each Pktsim run.  Orthogonal to --jobs
   and equally determinism-free. *)
let shards = int_flag "--shards" (Stdx.Domain_pool.default_jobs ())

(* Flow volume of the SCALE section's one big packed run. *)
let scale_flows = int_flag "--flows" (if fast then 200_000 else 1_000_000)

(* Software classifier backing the packet-level ablations (ABL-CACHE,
   ABL-FRAG).  All three have identical first-match semantics, so the
   printed statistics are invariant; only the wall time moves. *)
let classifier =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then Sim.Pktsim.Trie
    else if Sys.argv.(i) = "--classifier" then
      match Sys.argv.(i + 1) with
      | "trie" -> Sim.Pktsim.Trie
      | "dectree" -> Sim.Pktsim.Dectree
      | "linear" -> Sim.Pktsim.Linear
      | s ->
        failwith
          (Printf.sprintf "bench: unknown classifier %S (trie|dectree|linear)" s)
    else find (i + 1)
  in
  find 1

(* Perf trajectory for --json: wall seconds per experiment, plus engine
   event counts for the packet-level ones (events/sec is the packet
   simulator's real throughput metric — hop fast-forwarding lowers the
   event count itself, so both numbers are recorded). *)
let timings : (string * float) list ref = ref []
let event_counts : (string, int * int) Hashtbl.t = Hashtbl.create 8
let note_events name ~events ~hops = Hashtbl.replace event_counts name (events, hops)

(* Sequential baselines from a previous BENCH_pktsim.json in the cwd:
   entries recorded at jobs = 1 give speedup_vs_seq on parallel runs
   (CI benches --jobs 1 first, then --jobs N over the same artifact).
   The file is written one experiment per line, so a line-oriented
   scan is all the parsing needed. *)
let seq_baselines =
  let find_sub line pat =
    let n = String.length line and m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub line i m = pat then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let field line key =
    Option.map
      (fun start ->
        let stop = ref start in
        let n = String.length line in
        while
          !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
        do
          incr stop
        done;
        String.trim (String.sub line start (!stop - start)))
      (find_sub line (Printf.sprintf "\"%s\": " key))
  in
  match open_in "BENCH_pktsim.json" with
  | exception Sys_error _ -> []
  | ic ->
    let acc = ref [] in
    (try
       while true do
         let line = input_line ic in
         match field line "name" with
         | None -> ()
         | Some quoted ->
           let name = Scanf.sscanf quoted "%S" Fun.id in
           let entry_jobs =
             match Option.map int_of_string_opt (field line "jobs") with
             | Some (Some j) -> j
             | _ -> 1 (* older files predate the jobs field and ran sequentially *)
           in
           let seconds =
             match
               Option.map float_of_string_opt (field line "wall_seconds")
             with
             | Some (Some s) -> Some s
             | _ -> (
               match Option.map float_of_string_opt (field line "seconds") with
               | Some (Some s) -> Some s
               | _ -> None)
           in
           match seconds with
           | Some s when entry_jobs = 1 -> acc := (name, s) :: !acc
           | _ -> ()
       done
     with End_of_file | Scanf.Scan_failure _ | Failure _ -> ());
    close_in ic;
    !acc

(* The SCALE section's record: one big sharded+packed flowsim run with
   its own in-process sequential baseline (so speedup never depends on
   a previous artifact being present). *)
let scale_record : string option ref = ref None

(* The ABL-REOPT section's record: per-scenario pivot counts and timed
   warm-vs-cold re-solve latency, written under the top-level "reopt"
   key.  Pivot counts are deterministic; only the ms figures are
   wall-clock. *)
let reopt_record : string option ref = ref None

(* The ALLOC section's record: minor words per engine event on the two
   fixed probe workloads, against the committed pre-optimization
   baselines.  Written under the top-level "alloc" key. *)
let alloc_record : string option ref = ref None

let write_json () =
  let path = "BENCH_pktsim.json" in
  let oc = open_out path in
  let total_seconds =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 !timings
  in
  let entries =
    List.rev_map
      (fun (name, seconds) ->
        let events, hops =
          Option.value ~default:(0, 0) (Hashtbl.find_opt event_counts name)
        in
        let events_per_sec =
          if events > 0 && seconds > 0.0 then float_of_int events /. seconds
          else 0.0
        in
        (* JSON null when there is no sequential baseline on record —
           an absent measurement, not a measured slowdown to 0x. *)
        let speedup_vs_seq =
          if jobs = 1 then "1.00"
          else
            match List.assoc_opt name seq_baselines with
            | Some base when seconds > 0.0 ->
              Printf.sprintf "%.2f" (base /. seconds)
            | _ -> "null"
        in
        Printf.sprintf
          "    {\"name\": %S, \"jobs\": %d, \"wall_seconds\": %.3f, \
           \"seconds\": %.3f, \"events_processed\": %d, \"router_hops\": %d, \
           \"events_per_sec\": %.0f, \"speedup_vs_seq\": %s}"
          name jobs seconds seconds events hops events_per_sec speedup_vs_seq)
      !timings
  in
  Printf.fprintf oc
    "{\n  \"jobs\": %d,\n  \"shards\": %d,\n  \"total_wall_seconds\": %.3f,\n  \
     \"scaling\": %s,\n  \"reopt\": %s,\n  \"alloc\": %s,\n  \
     \"experiments\": [\n%s\n  ]\n}\n"
    jobs shards total_seconds
    (Option.value ~default:"null" !scale_record)
    (Option.value ~default:"null" !reopt_record)
    (Option.value ~default:"null" !alloc_record)
    (String.concat ",\n" entries);
  close_out oc;
  Format.printf "[wrote %s]@." path

let write_csv name content =
  match csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Format.printf "[wrote %s]@." path

let section name = Format.printf "@.##### %s #####@.@." name

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "[%s took %.1fs]@." name dt;
  timings := (name, dt) :: !timings;
  r

let flow_counts =
  if fast then [ 30_000; 90_000; 150_000 ] else Sim.Experiment.default_flow_counts

let () =
  Format.printf "[experiment-cell parallelism: %d jobs]@." jobs;
  Format.printf "[intra-run sharding: %d shards]@." shards;

  section "FIG4: campus topology (Figure 4)";
  let fig4 =
    timed "FIG4" (fun () ->
        Sim.Experiment.run_figure Sim.Experiment.Campus ~flow_counts ~jobs
          ~shards ())
  in
  note_events "FIG4" ~events:fig4.Sim.Experiment.fig_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_figure fig4;
  write_csv "fig4.csv" (Sim.Report.figure_csv fig4);

  section "FIG5: Waxman topology (Figure 5)";
  let fig5 =
    timed "FIG5" (fun () ->
        Sim.Experiment.run_figure Sim.Experiment.Waxman ~flow_counts ~jobs
          ~shards ())
  in
  note_events "FIG5" ~events:fig5.Sim.Experiment.fig_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_figure fig5;
  write_csv "fig5.csv" (Sim.Report.figure_csv fig5);

  section "TABLE3: load distribution, campus (Table III)";
  let table3 =
    timed "TABLE3" (fun () ->
        Sim.Experiment.run_table3 ~flows:(if fast then 150_000 else 300_000)
          ~jobs ~shards ())
  in
  note_events "TABLE3" ~events:table3.Sim.Experiment.t3_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_table3 table3.Sim.Experiment.t3_rows;
  write_csv "table3.csv" (Sim.Report.table3_csv table3.Sim.Experiment.t3_rows);

  section "TABLE3-WAXMAN: load distribution, Waxman (supplementary)";
  let table3w =
    timed "TABLE3-WAXMAN" (fun () ->
        Sim.Experiment.run_table3 ~scenario:Sim.Experiment.Waxman
          ~flows:(if fast then 150_000 else 300_000) ~jobs ~shards ())
  in
  note_events "TABLE3-WAXMAN" ~events:table3w.Sim.Experiment.t3_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_table3 table3w.Sim.Experiment.t3_rows;

  section "ABL-K: candidate-set size sensitivity";
  let abk =
    timed "ABL-K" (fun () ->
        Sim.Experiment.ablation_k ~flows:(if fast then 60_000 else 120_000)
          ~jobs ~shards ())
  in
  note_events "ABL-K" ~events:abk.Sim.Experiment.k_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_k_ablation abk.Sim.Experiment.k_points;

  section "ABL-CACHE: flow cache vs multi-field lookups (Sec. III.D)";
  let abc =
    timed "ABL-CACHE" (fun () ->
        Sim.Experiment.ablation_cache ~flows:(if fast then 500 else 2_000)
          ~shards ~classifier ())
  in
  note_events "ABL-CACHE" ~events:abc.Sim.Experiment.cache_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_cache_ablation abc;

  section "ABL-CACHESIZE: flow-cache capacity vs lookups";
  let abcs =
    timed "ABL-CACHESIZE" (fun () ->
        Sim.Experiment.ablation_cache_size
          ~flows:(if fast then 300 else 1_000) ~jobs ~shards ())
  in
  note_events "ABL-CACHESIZE" ~events:abcs.Sim.Experiment.cs_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_cache_size_ablation
    abcs.Sim.Experiment.cs_points;

  section "ABL-FRAG: fragmentation vs label switching (Sec. III.E)";
  let abf =
    timed "ABL-FRAG" (fun () ->
        Sim.Experiment.ablation_fragmentation
          ~flows:(if fast then 500 else 2_000) ~jobs ~shards ~classifier ())
  in
  note_events "ABL-FRAG" ~events:abf.Sim.Experiment.frag_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_frag_ablation abf;

  section "ABL-FAIL: middlebox failure, failover vs re-optimization";
  let abfail =
    timed "ABL-FAIL" (fun () ->
        Sim.Experiment.ablation_failure
          ~flows:(if fast then 60_000 else 120_000) ~jobs ~shards ())
  in
  note_events "ABL-FAIL" ~events:abfail.Sim.Experiment.fail_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_failure_ablation abfail;

  section "ABL-CHAOS: in-run faults, detection-delay sweep";
  let abchaos =
    timed "ABL-CHAOS" (fun () ->
        Sim.Experiment.ablation_chaos ~flows:(if fast then 300 else 800) ~audit
          ~jobs ~shards ())
  in
  note_events "ABL-CHAOS"
    ~events:
      (List.fold_left
         (fun acc (r : Sim.Experiment.chaos_row) ->
           acc + r.Sim.Experiment.chaos_events_processed)
         abchaos.Sim.Experiment.chaos_probe_events
         abchaos.Sim.Experiment.chaos_rows)
    ~hops:0;
  Format.printf "%a@." Sim.Report.pp_chaos_ablation abchaos;

  section "ABL-LIVE: live reconfiguration, control-loss sweep";
  let ablive =
    timed "ABL-LIVE" (fun () ->
        Sim.Experiment.ablation_live ~flows:(if fast then 300 else 500) ~audit
          ~jobs ~shards ())
  in
  note_events "ABL-LIVE"
    ~events:
      (List.fold_left
         (fun acc (r : Sim.Experiment.live_row) ->
           acc + r.Sim.Experiment.live_events_processed)
         ablive.Sim.Experiment.live_probe_events
         ablive.Sim.Experiment.live_rows)
    ~hops:0;
  Format.printf "%a@." Sim.Report.pp_live_ablation ablive;
  write_csv "abl_live.csv" (Sim.Report.live_csv ablive);
  write_csv "abl_live_devices.csv" (Sim.Report.live_devices_csv ablive);

  section "ABL-QUORUM: replicated controller under chaos";
  let abq =
    timed "ABL-QUORUM" (fun () ->
        Sim.Experiment.ablation_quorum ~flows:(if fast then 200 else 400)
          ~audit ~jobs ~shards ())
  in
  note_events "ABL-QUORUM"
    ~events:
      (List.fold_left
         (fun acc (r : Sim.Experiment.quorum_row) ->
           acc + r.Sim.Experiment.qr_events_processed)
         abq.Sim.Experiment.q_probe_events abq.Sim.Experiment.q_rows)
    ~hops:0;
  Format.printf "%a@." Sim.Report.pp_quorum_ablation abq;
  write_csv "abl_quorum.csv" (Sim.Report.quorum_csv abq);

  section "ABL-CORRUPT: silent corruption vs anti-entropy repair";
  let abc =
    timed "ABL-CORRUPT" (fun () ->
        Sim.Experiment.ablation_corrupt ~flows:(if fast then 200 else 400)
          ~audit ~jobs ~shards ())
  in
  note_events "ABL-CORRUPT"
    ~events:
      (List.fold_left
         (fun acc (r : Sim.Experiment.corrupt_row) ->
           acc + r.Sim.Experiment.cr_events_processed)
         abc.Sim.Experiment.c_probe_events abc.Sim.Experiment.c_rows)
    ~hops:0;
  Format.printf "%a@." Sim.Report.pp_corrupt_ablation abc;
  write_csv "abl_corrupt.csv" (Sim.Report.corrupt_csv abc);

  section "ABL-REOPT: warm-started re-optimization vs cold re-solve";
  (* 400 flows even in fast mode: with fewer flows the measured
     traffic support keeps growing between epochs and the in-run warm
     path falls back on every epoch of the small campus topology,
     hiding the pivot savings the sweep exists to show. *)
  let reopt_flows = 400 in
  let abreopt =
    timed "ABL-REOPT" (fun () ->
        Sim.Experiment.ablation_reopt ~flows:reopt_flows ~audit ~jobs ~shards ())
  in
  note_events "ABL-REOPT"
    ~events:
      (List.fold_left
         (fun acc (r : Sim.Experiment.reopt_row) ->
           acc + r.Sim.Experiment.rp_events_processed)
         (List.fold_left
            (fun acc (i : Sim.Experiment.reopt_scenario_info) ->
              acc + i.Sim.Experiment.ri_probe_events)
            0 abreopt.Sim.Experiment.rp_infos)
         abreopt.Sim.Experiment.rp_rows)
    ~hops:0;
  Format.printf "%a@." Sim.Report.pp_reopt_ablation abreopt;
  write_csv "abl_reopt.csv" (Sim.Report.reopt_csv abreopt);
  write_csv "abl_reopt_steps.csv" (Sim.Report.reopt_steps_csv abreopt);

  (* Timed warm-vs-cold re-solve latency: replay each scenario's churn
     chain several times per mode and report ms per reoptimize call.
     The pivot counts come from the deterministic report above; only
     the ms figures here are wall-clock, so they stay on bracketed
     lines and in the JSON. *)
  let time_chains scenario =
    let steps =
      Sim.Experiment.reopt_replay scenario ~flows:reopt_flows ~seed:17 ()
    in
    let failure_sets =
      List.map (fun (s : Sim.Experiment.reopt_step) -> s.Sim.Experiment.rs_failed) steps
    in
    let deployment = Sim.Experiment.build_deployment scenario ~seed:17 in
    let workload =
      Sim.Workload.generate ~deployment ~seed:17 ~flows:reopt_flows ()
    in
    let traffic = Sim.Workload.measure workload in
    let base =
      match
        Sdm.Controller.configure deployment ~rules:workload.Sim.Workload.rules
          (Sdm.Controller.Load_balanced traffic)
      with
      | Ok c -> c
      | Error e -> failwith ("ABL-REOPT timing: " ^ e)
    in
    let reps = 5 in
    let chain_ms use_warm =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore
          (List.fold_left
             (fun c failed ->
               match
                 Sdm.Controller.reoptimize c ~failed ~use_warm ~traffic ()
               with
               | Ok c' -> c'
               | Error e -> failwith ("ABL-REOPT timing: " ^ e))
             base failure_sets)
      done;
      (Unix.gettimeofday () -. t0)
      /. float_of_int (reps * List.length failure_sets)
      *. 1e3
    in
    let cold_ms = chain_ms false and warm_ms = chain_ms true in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 steps in
    Format.printf "[ABL-REOPT %s: cold %.2f ms/solve, warm %.2f ms/solve]@."
      (Sim.Experiment.scenario_name scenario)
      cold_ms warm_ms;
    (scenario, steps, cold_ms, warm_ms,
     sum (fun s -> s.Sim.Experiment.rs_cold_pivots),
     sum (fun s -> s.Sim.Experiment.rs_warm_pivots))
  in
  let chain_timings =
    List.map time_chains [ Sim.Experiment.Campus; Sim.Experiment.Waxman ]
  in
  reopt_record :=
    Some
      (Printf.sprintf "{\"scenarios\": [%s], \"agree_steps\": %d, \"total_steps\": %d}"
         (String.concat ", "
            (List.map
               (fun (scenario, steps, cold_ms, warm_ms, cold_pivots, warm_pivots) ->
                 let name = Sim.Experiment.scenario_name scenario in
                 let row warm =
                   List.find
                     (fun (r : Sim.Experiment.reopt_row) ->
                       r.Sim.Experiment.rp_scenario = name
                       && r.Sim.Experiment.rp_warm = warm)
                     abreopt.Sim.Experiment.rp_rows
                 in
                 let cold_row = row false and warm_row = row true in
                 Printf.sprintf
                   "{\"name\": %S, \"routers\": %d, \"replay_steps\": %d, \
                    \"replay_cold_pivots\": %d, \"replay_warm_pivots\": %d, \
                    \"cold_ms_per_solve\": %.3f, \"warm_ms_per_solve\": %.3f, \
                    \"run_cold_pivots\": %d, \"run_warm_pivots\": %d, \
                    \"run_warm_used\": %d, \"run_fallback\": %d}"
                   name cold_row.Sim.Experiment.rp_routers (List.length steps)
                   cold_pivots warm_pivots cold_ms warm_ms
                   cold_row.Sim.Experiment.rp_pivots
                   warm_row.Sim.Experiment.rp_pivots
                   warm_row.Sim.Experiment.rp_warm_used
                   warm_row.Sim.Experiment.rp_fallback)
               chain_timings))
         abreopt.Sim.Experiment.rp_agree abreopt.Sim.Experiment.rp_total);

  section "ABL-EPOCH: adaptation across measurement epochs";
  let abe =
    timed "ABL-EPOCH" (fun () ->
        let deployment =
          Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17
        in
        Sim.Epochsim.run ~deployment
          ~base_flows:(if fast then 30_000 else 60_000)
          ~jobs ~shards ())
  in
  note_events "ABL-EPOCH" ~events:abe.Sim.Epochsim.ep_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_epochs abe.Sim.Epochsim.ep_rows;

  section "ABL-SKETCH: Count-Min sketched measurement vs exact";
  let absk =
    timed "ABL-SKETCH" (fun () ->
        Sim.Experiment.ablation_sketch
          ~flows:(if fast then 60_000 else 120_000) ~jobs ~shards ())
  in
  note_events "ABL-SKETCH" ~events:absk.Sim.Experiment.sk_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_sketch_ablation
    absk.Sim.Experiment.sk_points;

  section "ABL-LAT: end-to-end latency overhead of enforcement";
  let ablat =
    timed "ABL-LAT" (fun () ->
        Sim.Experiment.ablation_latency ~flows:(if fast then 300 else 1_000)
          ~jobs ~shards ())
  in
  note_events "ABL-LAT" ~events:ablat.Sim.Experiment.events_processed
    ~hops:ablat.Sim.Experiment.router_hops;
  Format.printf "%a@." Sim.Report.pp_latency_ablation ablat;

  section "ABL-QUEUE: middlebox queueing, HP vs LB latency";
  let abq =
    timed "ABL-QUEUE" (fun () ->
        Sim.Experiment.ablation_queue ~flows:(if fast then 300 else 800) ~jobs
          ~shards ())
  in
  note_events "ABL-QUEUE" ~events:abq.Sim.Experiment.events_processed
    ~hops:abq.Sim.Experiment.router_hops;
  Format.printf "%a@." Sim.Report.pp_queue_ablation abq;

  section "ABL-LP: Eq.(1) exact vs Eq.(2) simplified";
  let abl =
    timed "ABL-LP" (fun () ->
        Sim.Experiment.ablation_lp ~flows:(if fast then 2_000 else 5_000) ~jobs
          ~shards ())
  in
  note_events "ABL-LP" ~events:abl.Sim.Experiment.lp_events ~hops:0;
  Format.printf "%a@." Sim.Report.pp_lp_ablation abl;

  section "CONFIG: controller dissemination volume (campus, LB)";
  let () =
    let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
    let workload =
      Sim.Workload.generate ~deployment ~seed:17 ~flows:30_000 ()
    in
    let traffic = Sim.Workload.measure workload in
    match
      Sdm.Controller.configure deployment ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c ->
      Format.printf "%a@." Sdm.Controller.pp_config_summary
        (Sdm.Controller.config_summary c);
      Format.printf "%a@." Sim.Controlplane.pp_report
        (Sim.Controlplane.price c ~traffic);
      (match Sdm.Verify.check c with
      | Ok () -> Format.printf "static verification: configuration certified@."
      | Error vs ->
        Format.printf "static verification FAILED (%d violations)@."
          (List.length vs))
    | Error e -> Format.printf "configuration failed: %s@." e
  in
  ()

(* ---- SCALE: one big run, flow-hash sharded + packed state ---------- *)

(* The sequential baseline is the same packed run at shards = 1, timed
   in this very process, so the speedup recorded here never depends on
   a previous artifact being present (unlike the per-experiment
   speedup_vs_seq, which compares across --jobs invocations).  The
   packed store is off-heap (Bigarray), so top_heap_words reflects the
   simulator's working set, not the flow population. *)
let run_scale () =
  Format.printf "@.##### SCALE: intra-run sharding, one big flowsim run #####@.@.";
  let deployment =
    Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17
  in
  let packed =
    Sim.Workload.generate_packed ~deployment ~seed:17 ~flows:scale_flows ()
  in
  let store_mb =
    float_of_int (scale_flows * Sim.Workload.Packed.bytes_per_flow) /. 1048576.0
  in
  let controller =
    match
      Sdm.Controller.configure deployment
        ~rules:packed.Sim.Workload.Packed.rules Sdm.Controller.Hot_potato
    with
    | Ok c -> c
    | Error e -> failwith ("SCALE: " ^ e)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq =
    time (fun () ->
        Sim.Flowsim.run_packed ~shards:1 ~controller ~workload:packed ())
  in
  let sharded, t_par =
    time (fun () ->
        Sim.Flowsim.run_packed ~shards ~controller ~workload:packed ())
  in
  if sharded <> seq then failwith "SCALE: sharded run diverged from sequential";
  let peak_heap_mb =
    float_of_int (Gc.quick_stat ()).Gc.top_heap_words
    *. float_of_int (Sys.word_size / 8)
    /. 1048576.0
  in
  let speedup = if t_par > 0.0 then t_seq /. t_par else 1.0 in
  (* Wall times and the heap high-water mark are nondeterministic, so
     they stay on bracketed lines (CI's determinism diff filters those
     out); the deterministic summary carries only exact quantities. *)
  Format.printf "flows %d, packed store %.1f MB (%d B/flow), events %d@."
    scale_flows store_mb Sim.Workload.Packed.bytes_per_flow
    seq.Sim.Flowsim.events;
  Format.printf "sharded run identical to sequential: %b@." (sharded = seq);
  Format.printf
    "[SCALE seq %.2fs, %d shard(s) %.2fs, speedup %.2fx, peak heap %.1f MB]@."
    t_seq shards t_par speedup peak_heap_mb;
  scale_record :=
    Some
      (Printf.sprintf
         "{\"flows\": %d, \"shards\": %d, \"seq_wall_seconds\": %.3f, \
          \"sharded_wall_seconds\": %.3f, \"speedup_vs_seq\": %.2f, \
          \"events\": %d, \"peak_heap_mb\": %.1f, \"store_mb\": %.1f}"
         scale_flows shards t_seq t_par speedup seq.Sim.Flowsim.events
         peak_heap_mb store_mb)

let () = run_scale ()

(* ---- ALLOC: hot-path allocation per event -------------------------- *)

(* Minor-heap allocation per engine event over two fixed probe
   workloads, against the baselines measured with the same probes at
   the commit immediately preceding the zero-allocation hot-path work
   (packed flow keys, flat open-addressing tables, pooled DES events).
   [Gc.minor_words] counts the calling domain only, so both probes
   force jobs = 1 / shards = 1 regardless of the bench flags — on the
   domain pool the numbers would silently undercount.  Everything here
   is GC telemetry or wall clock, so the whole report stays on
   bracketed lines (CI's determinism diff filters those); the exact
   values go into BENCH_pktsim.json under "alloc". *)
let table3_baseline_words_per_event = 62.65
let pktsim_baseline_words_per_event = 162.80

let run_alloc () =
  Format.printf "@.##### ALLOC: hot-path allocation per event #####@.@.";
  let bracket f =
    let minor0 = Gc.minor_words () in
    let promoted0 = (Gc.quick_stat ()).Gc.promoted_words in
    let t0 = Unix.gettimeofday () in
    let events = f () in
    let dt = Unix.gettimeofday () -. t0 in
    ( events,
      Gc.minor_words () -. minor0,
      (Gc.quick_stat ()).Gc.promoted_words -. promoted0,
      dt )
  in
  let report name ~events ~minor ~promoted ~dt ~baseline =
    let per_event = minor /. float_of_int (max 1 events) in
    let reduction = baseline /. Float.max per_event 1e-9 in
    let events_per_sec =
      if dt > 0.0 then float_of_int events /. dt else 0.0
    in
    Format.printf
      "[%s: %d events, %.2f minor words/event (baseline %.2f, %.1fx less), \
       %.0f promoted words, %.0f events/sec]@."
      name events per_event baseline reduction promoted events_per_sec;
    Printf.sprintf
      "{\"probe\": %S, \"events\": %d, \"minor_words_per_event\": %.2f, \
       \"baseline_minor_words_per_event\": %.2f, \"reduction_factor\": %.2f, \
       \"promoted_words\": %.0f, \"events_per_sec\": %.0f, \
       \"wall_seconds\": %.3f}"
      name events per_event baseline reduction promoted events_per_sec dt
  in
  (* Probe 1: TABLE3's flow-level run — classification + steering for
     every flow, the Selector/Xhash fast path. *)
  let t3_events, t3_minor, t3_promoted, t3_dt =
    bracket (fun () ->
        (Sim.Experiment.run_table3 ~flows:150_000 ~seed:17 ~jobs:1 ~shards:1 ())
          .Sim.Experiment.t3_events)
  in
  let t3_json =
    report "TABLE3" ~events:t3_events ~minor:t3_minor ~promoted:t3_promoted
      ~dt:t3_dt ~baseline:table3_baseline_words_per_event
  in
  (* Probe 2: a packet-level run — flow caches, label tables and the
     pooled event loop.  Setup (deployment, workload, controller) is
     built outside the bracket; only [Pktsim.run] is measured. *)
  let deployment =
    Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:21
  in
  let workload =
    Sim.Workload.generate ~deployment ~seed:21 ~flows:2_000 ()
  in
  let traffic = Sim.Workload.measure workload in
  let controller =
    match
      Sdm.Controller.configure deployment ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith ("ALLOC: " ^ e)
  in
  let pk_events, pk_minor, pk_promoted, pk_dt =
    bracket (fun () ->
        (Sim.Pktsim.run ~controller ~workload ()).Sim.Pktsim.events_processed)
  in
  let pk_json =
    report "PKTSIM" ~events:pk_events ~minor:pk_minor ~promoted:pk_promoted
      ~dt:pk_dt ~baseline:pktsim_baseline_words_per_event
  in
  alloc_record := Some (Printf.sprintf "[%s, %s]" t3_json pk_json)

let () = run_alloc ()

(* ---- Classifier scaling ------------------------------------------- *)

(* Synthetic rule sets of growing size: compare the three classifiers'
   lookup cost as the table grows (linear is O(n); the trie and the
   decision tree should stay flat). *)
let classifier_scaling () =
  Format.printf "@.##### MICRO-CLASSIFIER: matcher scaling #####@.@.";
  let rng = Stdx.Rng.create 99 in
  let random_prefix () =
    if Stdx.Rng.int rng 4 = 0 then Netpkt.Addr.Prefix.any
    else begin
      let len = 8 * (1 + Stdx.Rng.int rng 3) in
      Netpkt.Addr.Prefix.make
        (Netpkt.Addr.of_octets (Stdx.Rng.int rng 32) (Stdx.Rng.int rng 32)
           (Stdx.Rng.int rng 32) 0)
        len
    end
  in
  let random_port () =
    match Stdx.Rng.int rng 3 with
    | 0 -> Policy.Descriptor.Any_port
    | 1 -> Policy.Descriptor.Port (Stdx.Rng.int rng 1024)
    | _ ->
      let a = Stdx.Rng.int rng 1024 in
      Policy.Descriptor.Port_range (a, a + Stdx.Rng.int rng 64)
  in
  let make_rules n =
    List.init n (fun id ->
        Policy.Rule.make ~id
          ~descriptor:
            (Policy.Descriptor.make ~src:(random_prefix ()) ~dst:(random_prefix ())
               ~sport:(random_port ()) ~dport:(random_port ()) ())
          ~actions:Policy.Action.[ FW ])
  in
  let random_flow () =
    Netpkt.Flow.make
      ~src:
        (Netpkt.Addr.of_octets (Stdx.Rng.int rng 32) (Stdx.Rng.int rng 32)
           (Stdx.Rng.int rng 32) (Stdx.Rng.int rng 256))
      ~dst:
        (Netpkt.Addr.of_octets (Stdx.Rng.int rng 32) (Stdx.Rng.int rng 32)
           (Stdx.Rng.int rng 32) (Stdx.Rng.int rng 256))
      ~proto:6 ~sport:(Stdx.Rng.int rng 1100) ~dport:(Stdx.Rng.int rng 1100)
  in
  let lookups = 10_000 in
  let flows = Array.init lookups (fun _ -> random_flow ()) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    Array.iter (fun flow -> if f flow <> None then incr acc) flows;
    let dt = Unix.gettimeofday () -. t0 in
    (dt /. float_of_int lookups *. 1e9, !acc)
  in
  Format.printf "%8s %12s %12s %12s %12s %10s@." "rules" "linear ns"
    "trie ns" "dectree ns" "trie nodes" "tree depth";
  List.iter
    (fun n ->
      let rules = make_rules n in
      let trie = Policy.Trie.build rules in
      let tree = Policy.Dectree.build rules in
      let lin_ns, lin_hits = time (fun f -> Policy.Rule.first_match rules f) in
      let trie_ns, trie_hits = time (fun f -> Policy.Trie.first_match trie f) in
      let tree_ns, tree_hits = time (fun f -> Policy.Dectree.first_match tree f) in
      (* All three must agree on every lookup — a live cross-check. *)
      if lin_hits <> trie_hits || lin_hits <> tree_hits then
        failwith "classifier disagreement in scaling bench";
      Format.printf "%8d %12.0f %12.0f %12.0f %12d %10d@." n lin_ns trie_ns
        tree_ns
        (Policy.Trie.node_count trie)
        (Policy.Dectree.depth tree))
    [ 16; 64; 256; 1024; 4096 ]

(* Wall-clock per-lookup timings, so this table is as nondeterministic
   as the bechamel section below: --skip-micro drops both, which also
   keeps the CI determinism diff over the remaining report clean. *)
let () = if not skip_micro then classifier_scaling ()

(* ---- Bechamel microbenchmarks ------------------------------------- *)

open Bechamel
open Toolkit

let micro_tests () =
  let dep = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:42 in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:42 ~flows:5_000 () in
  let rules = workload.Sim.Workload.rules in
  let trie = Policy.Trie.build rules in
  let flows =
    Array.map
      (fun (f : Sim.Workload.flow_spec) -> f.Sim.Workload.flow)
      workload.Sim.Workload.flows
  in
  let n_flows = Array.length flows in
  let counter = ref 0 in
  let next_flow () =
    counter := (!counter + 1) mod n_flows;
    flows.(!counter)
  in
  let graph = dep.Sdm.Deployment.topo.Netgraph.Topology.graph in
  let traffic = Sim.Workload.measure workload in
  let candidates = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  let cache = Policy.Flow_cache.create () in
  Array.iteri
    (fun i f ->
      if i < 2000 then
        ignore
          (Policy.Flow_cache.insert cache ~now:0.0 f ~rule_id:0
             ~actions:Policy.Action.[ FW ] ()))
    flows;
  let controller =
    match
      Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let rule0 =
    List.find (fun r -> not (Policy.Action.is_permit r.Policy.Rule.actions)) rules
  in
  [
    Test.make ~name:"policy-match/trie"
      (Staged.stage (fun () -> ignore (Policy.Trie.first_match trie (next_flow ()))));
    Test.make ~name:"policy-match/linear"
      (Staged.stage (fun () -> ignore (Policy.Rule.first_match rules (next_flow ()))));
    Test.make ~name:"flow-cache/lookup"
      (Staged.stage (fun () ->
           ignore (Policy.Flow_cache.lookup cache ~now:1.0 (next_flow ()))));
    Test.make ~name:"flow-hash/fnv1a"
      (Staged.stage (fun () -> ignore (Netpkt.Flow.hash (next_flow ()))));
    Test.make ~name:"selector/next-hop-lb"
      (Staged.stage (fun () ->
           ignore
             (Sdm.Controller.next_hop controller (Mbox.Entity.Proxy 0) ~rule:rule0
                ~nf:Policy.Action.FW (next_flow ()))));
    Test.make ~name:"dijkstra/campus-sssp"
      (Staged.stage (fun () -> ignore (Netgraph.Dijkstra.run graph 0)));
    Test.make ~name:"lp/eq2-campus-solve"
      (Staged.stage (fun () ->
           ignore (Sdm.Lp_formulation.solve_simplified candidates ~rules ~traffic ())));
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  Format.printf "@.##### MICRO: Bechamel microbenchmarks #####@.@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "%-28s %14.1f ns/op@." name est
          | _ -> Format.printf "%-28s (no estimate)@." name)
        analyzed)
    (micro_tests ())

let () = if not skip_micro then run_micro ()
let () = if json_out then write_json ()
