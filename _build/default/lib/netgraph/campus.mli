(** The paper's campus topology (Sec. IV.A).

    "A real-world campus network topology, with two main gateways to
    the Internet, 16 core routers each connecting to both gateways and
    10 edge routers."  The published description fixes the node counts
    and the core-gateway dual-homing; the remaining wiring (which cores
    an edge router homes to, and the core-core mesh that interconnects
    the edges) is not published, so we generate it deterministically
    from a seed: each edge router dual-homes to two distinct random
    cores and each core keeps two extra random core peers for path
    diversity.  All link costs are 1 (hop-count metric). *)

type params = {
  gateways : int;       (** default 2 *)
  cores : int;          (** default 16 *)
  edges : int;          (** default 10 *)
  edge_homing : int;    (** cores each edge router connects to; default 2 *)
  core_peers : int;     (** extra random core-core links per core; default 2 *)
}

val default_params : params

val generate : ?params:params -> seed:int -> unit -> Topology.t
(** Node numbering: gateways first, then cores, then edge routers. *)
