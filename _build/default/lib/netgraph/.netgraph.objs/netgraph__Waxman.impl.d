lib/netgraph/waxman.ml: Array Fun Graph List Stdx Topology
