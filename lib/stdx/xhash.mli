(** FNV-1a hashing.

    Used for flow-identifier hashing: the paper's probabilistic
    middlebox selection hashes the 5-tuple of a packet to a value [r]
    in [\[0, N)] and picks the candidate whose cumulative weight bucket
    contains [r].  The hash must be deterministic across runs, which
    rules out OCaml's seeded [Hashtbl.hash]. *)

val fnv_offset : int64
val fnv_prime : int64

val string : string -> int64
(** FNV-1a over the bytes of a string. *)

val fold_int : int64 -> int -> int64
(** [fold_int acc n] mixes the 8 bytes of [n] into the running hash
    [acc].  Start from {!fnv_offset}. *)

val ints : int list -> int64
(** Hash a list of ints (e.g. the fields of a flow identifier). *)

val fmix64 : int64 -> int64
(** Murmur3's 64-bit avalanche finalizer: a bijection on [int64] under
    which a single-bit input change flips every output bit with
    probability ~1/2.  Applied after an FNV-1a fold when downstream
    consumers need independent-looking hashes — rendezvous selection
    scores, and the per-entry hashes XOR-folded into order-independent
    state digests (a raw FNV hash would let correlated entries cancel). *)

val to_unit_interval : int64 -> float
(** Map a hash to a float in [\[0, 1)], uniformly. *)

val to_range : int64 -> int -> int
(** [to_range h n] maps a hash to [\[0, n)].  [n] must be > 0. *)
