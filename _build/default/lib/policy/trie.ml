type dst_node = {
  mutable d_rules : Rule.t list; (* sorted by ascending id *)
  mutable d_zero : dst_node option;
  mutable d_one : dst_node option;
}

type src_node = {
  mutable s_dst : dst_node option; (* rules whose src prefix ends here *)
  mutable s_zero : src_node option;
  mutable s_one : src_node option;
}

type t = { root : src_node; mutable rules : int; mutable nodes : int }

let new_dst () = { d_rules = []; d_zero = None; d_one = None }
let new_src () = { s_dst = None; s_zero = None; s_one = None }

let bit addr i = (addr lsr (31 - i)) land 1

let rec insert_dst t node prefix depth rule =
  if depth = prefix.Netpkt.Addr.Prefix.len then
    node.d_rules <-
      List.sort (fun a b -> compare a.Rule.id b.Rule.id) (rule :: node.d_rules)
  else begin
    let b = bit prefix.Netpkt.Addr.Prefix.base depth in
    let child =
      if b = 0 then (
        match node.d_zero with
        | Some c -> c
        | None ->
          let c = new_dst () in
          t.nodes <- t.nodes + 1;
          node.d_zero <- Some c;
          c)
      else
        match node.d_one with
        | Some c -> c
        | None ->
          let c = new_dst () in
          t.nodes <- t.nodes + 1;
          node.d_one <- Some c;
          c
    in
    insert_dst t child prefix (depth + 1) rule
  end

let rec insert_src t node rule depth =
  let sp = rule.Rule.descriptor.Descriptor.src in
  if depth = sp.Netpkt.Addr.Prefix.len then begin
    let dst_root =
      match node.s_dst with
      | Some d -> d
      | None ->
        let d = new_dst () in
        t.nodes <- t.nodes + 1;
        node.s_dst <- Some d;
        d
    in
    insert_dst t dst_root rule.Rule.descriptor.Descriptor.dst 0 rule
  end
  else begin
    let b = bit sp.Netpkt.Addr.Prefix.base depth in
    let child =
      if b = 0 then (
        match node.s_zero with
        | Some c -> c
        | None ->
          let c = new_src () in
          t.nodes <- t.nodes + 1;
          node.s_zero <- Some c;
          c)
      else
        match node.s_one with
        | Some c -> c
        | None ->
          let c = new_src () in
          t.nodes <- t.nodes + 1;
          node.s_one <- Some c;
          c
    in
    insert_src t child rule (depth + 1)
  end

let build rules =
  let t = { root = new_src (); rules = 0; nodes = 1 } in
  List.iter
    (fun rule ->
      insert_src t t.root rule 0;
      t.rules <- t.rules + 1)
    rules;
  t

let rule_count t = t.rules
let node_count t = t.nodes

let ports_match rule flow =
  Descriptor.port_matches rule.Rule.descriptor.Descriptor.sport
    flow.Netpkt.Flow.sport
  && Descriptor.port_matches rule.Rule.descriptor.Descriptor.dport
       flow.Netpkt.Flow.dport
  &&
  match rule.Rule.descriptor.Descriptor.proto with
  | Descriptor.Any_proto -> true
  | Descriptor.Proto p -> p = flow.Netpkt.Flow.proto

(* Walk the destination trie along [flow.dst]; every node on the walk
   terminates rules whose dst prefix covers the address.  Rule lists
   are id-sorted, so scanning until one passes the port/proto filter
   yields the best candidate of that node. *)
let best_in_dst node flow =
  let best = ref None in
  let consider rule =
    if ports_match rule flow then
      match !best with
      | Some b when b.Rule.id <= rule.Rule.id -> ()
      | _ -> best := Some rule
  in
  let rec walk node depth =
    List.iter consider node.d_rules;
    if depth < 32 then begin
      let b = bit flow.Netpkt.Flow.dst depth in
      match (if b = 0 then node.d_zero else node.d_one) with
      | Some child -> walk child (depth + 1)
      | None -> ()
    end
  in
  walk node 0;
  !best

let first_match t flow =
  let best = ref None in
  let consider = function
    | None -> ()
    | Some rule -> (
      match !best with
      | Some b when b.Rule.id <= rule.Rule.id -> ()
      | _ -> best := Some rule)
  in
  let rec walk node depth =
    (match node.s_dst with
    | Some dst_root -> consider (best_in_dst dst_root flow)
    | None -> ());
    if depth < 32 then begin
      let b = bit flow.Netpkt.Flow.src depth in
      match (if b = 0 then node.s_zero else node.s_one) with
      | Some child -> walk child (depth + 1)
      | None -> ()
    end
  in
  walk t.root 0;
  !best
