type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

(* NaN poisons every statistic silently (it even breaks the sort order
   percentiles rely on), so it is rejected up front.  Infinities stay
   allowed: they order correctly and an infinite load is a meaningful
   extreme. *)
let reject_nan name samples =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (name ^ ": NaN sample"))
    samples

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty input";
  reject_nan "Stats.summarize" samples;
  let total = Array.fold_left ( +. ) 0.0 samples in
  let mean = total /. float_of_int n in
  let mn = Array.fold_left min samples.(0) samples in
  let mx = Array.fold_left max samples.(0) samples in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
    /. float_of_int n
  in
  { count = n; total; mean; min = mn; max = mx; stddev = sqrt var }

(* Nearest-rank lookup in an already-sorted array. *)
let rank_in sorted q =
  let n = Array.length sorted in
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  let rank = if rank < 0 then 0 else if rank >= n then n - 1 else rank in
  sorted.(rank)

(* [Float.compare], not polymorphic [compare]: the latter goes through
   the generic structural-comparison runtime path and is several times
   slower on float arrays. *)
let percentile samples q =
  if Array.length samples = 0 then invalid_arg "Stats.percentile: empty input";
  reject_nan "Stats.percentile" samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  rank_in sorted q

let percentiles samples qs =
  if Array.length samples = 0 then invalid_arg "Stats.percentiles: empty input";
  reject_nan "Stats.percentiles" samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  List.map (rank_in sorted) qs

let imbalance samples =
  let s = summarize samples in
  if s.mean = 0.0 then invalid_arg "Stats.imbalance: zero mean";
  s.max /. s.mean

let pp_summary ppf s =
  Format.fprintf ppf "n=%d total=%.3g mean=%.3g min=%.3g max=%.3g sd=%.3g"
    s.count s.total s.mean s.min s.max s.stddev
