lib/packet/header.mli: Addr Flow Format
