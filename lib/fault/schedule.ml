type event =
  | Mbox_crash of int
  | Mbox_recover of int
  | Link_fail of int * int
  | Link_restore of int * int
  | Ctrl_crash of int
  | Ctrl_recover of int
  | Label_corrupt of int
  | Label_drop of int
  | Cache_poison of int
  | Config_lose of int
  | Stale_resurrect of int

type timed = { at : float; what : event }

type t = {
  events : timed list;
  link_loss : float;
  control_loss : float;
  loss_seed : int;
}

let event_to_string = function
  | Mbox_crash id -> Printf.sprintf "mbox%d crash" id
  | Mbox_recover id -> Printf.sprintf "mbox%d recover" id
  | Link_fail (u, v) -> Printf.sprintf "link %d-%d fail" u v
  | Link_restore (u, v) -> Printf.sprintf "link %d-%d restore" u v
  | Ctrl_crash id -> Printf.sprintf "controller replica %d crash" id
  | Ctrl_recover id -> Printf.sprintf "controller replica %d recover" id
  | Label_corrupt id -> Printf.sprintf "mbox%d label-entry corrupt" id
  | Label_drop id -> Printf.sprintf "mbox%d label-entry silent drop" id
  | Cache_poison id -> Printf.sprintf "proxy%d flow-cache poison" id
  | Config_lose id -> Printf.sprintf "device %d config-install silently lost" id
  | Stale_resurrect id -> Printf.sprintf "mbox%d stale-entry resurrection" id

let check_probability name p =
  if not (p >= 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Schedule.make: %s must be in [0, 1)" name)

let make ?(link_loss = 0.0) ?(control_loss = 0.0) ?(loss_seed = 1) events =
  check_probability "link_loss" link_loss;
  check_probability "control_loss" control_loss;
  List.iter
    (fun { at; what } ->
      (* [not (at >= 0.0)] catches NaN along with negatives; the finite
         check additionally rejects +infinity, which would otherwise
         park an event past every horizon and silently never fire. *)
      if not (Float.is_finite at && at >= 0.0) then
        invalid_arg
          (Printf.sprintf "Schedule.make: %s scheduled at non-finite or negative time"
             (event_to_string what)))
    events;
  (* Stable sort: events at equal times keep the caller's order. *)
  let events = List.stable_sort (fun a b -> compare a.at b.at) events in
  { events; link_loss; control_loss; loss_seed }

let empty = make []

let is_empty t =
  t.events = [] && t.link_loss = 0.0 && t.control_loss = 0.0

let has_link_events t =
  List.exists
    (fun { what; _ } ->
      match what with
      | Link_fail _ | Link_restore _ -> true
      | Mbox_crash _ | Mbox_recover _ | Ctrl_crash _ | Ctrl_recover _
      | Label_corrupt _ | Label_drop _ | Cache_poison _ | Config_lose _
      | Stale_resurrect _ ->
        false)
    t.events

let has_corruption_events t =
  List.exists
    (fun { what; _ } ->
      match what with
      | Label_corrupt _ | Label_drop _ | Cache_poison _ | Config_lose _
      | Stale_resurrect _ ->
        true
      | Mbox_crash _ | Mbox_recover _ | Link_fail _ | Link_restore _
      | Ctrl_crash _ | Ctrl_recover _ ->
        false)
    t.events

let validate ?(n_controllers = 0) ?(n_proxies = 0) ~n_mboxes ~link_exists t =
  (* Replay the event list in time order against the deployment,
     tracking which boxes are down and which links are cut, so that
     recoveries without a preceding failure are caught here instead of
     blowing up (or silently no-opping) deep inside a run. *)
  let down = Hashtbl.create 8 in
  let cut = Hashtbl.create 8 in
  let ctrl_down = Hashtbl.create 4 in
  let link_key u v = if u <= v then (u, v) else (v, u) in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] -> Ok ()
    | { at; what } :: rest -> (
        if not (Float.is_finite at) then
          err "t=%g: %s: non-finite event time" at (event_to_string what)
        else
        match what with
        | Ctrl_crash id ->
            if id < 0 || id >= n_controllers then
              err "t=%g: %s: unknown controller replica (run has %d)" at
                (event_to_string what) n_controllers
            else if Hashtbl.mem ctrl_down id then
              err "t=%g: %s: replica is already down" at (event_to_string what)
            else (
              Hashtbl.replace ctrl_down id ();
              go rest)
        | Ctrl_recover id ->
            if id < 0 || id >= n_controllers then
              err "t=%g: %s: unknown controller replica (run has %d)" at
                (event_to_string what) n_controllers
            else if not (Hashtbl.mem ctrl_down id) then
              err "t=%g: %s: no preceding crash" at (event_to_string what)
            else (
              Hashtbl.remove ctrl_down id;
              go rest)
        | Mbox_crash id ->
            if id < 0 || id >= n_mboxes then
              err "t=%g: %s: unknown middlebox (deployment has %d)" at
                (event_to_string what) n_mboxes
            else if Hashtbl.mem down id then
              err "t=%g: %s: middlebox is already down" at
                (event_to_string what)
            else (
              Hashtbl.replace down id ();
              go rest)
        | Mbox_recover id ->
            if id < 0 || id >= n_mboxes then
              err "t=%g: %s: unknown middlebox (deployment has %d)" at
                (event_to_string what) n_mboxes
            else if not (Hashtbl.mem down id) then
              err "t=%g: %s: no preceding crash" at (event_to_string what)
            else (
              Hashtbl.remove down id;
              go rest)
        | Link_fail (u, v) ->
            if not (link_exists u v) then
              err "t=%g: %s: no such link in the topology" at
                (event_to_string what)
            else if Hashtbl.mem cut (link_key u v) then
              err "t=%g: %s: link is already down" at (event_to_string what)
            else (
              Hashtbl.replace cut (link_key u v) ();
              go rest)
        | Link_restore (u, v) ->
            if not (link_exists u v) then
              err "t=%g: %s: no such link in the topology" at
                (event_to_string what)
            else if not (Hashtbl.mem cut (link_key u v)) then
              err "t=%g: %s: no preceding failure" at (event_to_string what)
            else (
              Hashtbl.remove cut (link_key u v);
              go rest)
        | Label_corrupt id | Label_drop id | Stale_resurrect id ->
            (* Corrupting a crashed box is meaningless (its state is
               gone), but scheduling one is not an error: the event
               simply finds nothing to corrupt at fire time.  Only the
               target's existence is checked here. *)
            if id < 0 || id >= n_mboxes then
              err "t=%g: %s: unknown middlebox (deployment has %d)" at
                (event_to_string what) n_mboxes
            else go rest
        | Cache_poison id ->
            if id < 0 || id >= n_proxies then
              err "t=%g: %s: unknown proxy (deployment has %d)" at
                (event_to_string what) n_proxies
            else go rest
        | Config_lose id ->
            (* Device indexing is proxies-first: ids in [0, n_proxies)
               name proxies, [n_proxies, n_proxies + n_mboxes) name
               middleboxes — the same space the live control plane's
               per-device version vector uses. *)
            if id < 0 || id >= n_proxies + n_mboxes then
              err "t=%g: %s: unknown device (deployment has %d)" at
                (event_to_string what)
                (n_proxies + n_mboxes)
            else go rest)
  in
  go t.events

let crash_times t =
  List.filter_map
    (fun { at; what } ->
      match what with Mbox_crash id -> Some (id, at) | _ -> None)
    t.events

(* Every draw for event [i] comes from the [i]-th child stream of the
   seed, so the generated burst is a pure function of (seed, i): the
   same schedule comes out whatever --jobs/--shards sliced the sweep
   that asked for it. *)
let corruption_events ~seed ~rate ~horizon ~n_proxies ~n_mboxes =
  if not (Float.is_finite rate && rate >= 0.0) then
    invalid_arg "Schedule.corruption_events: rate must be finite and >= 0";
  if not (Float.is_finite horizon && horizon > 0.0) then
    invalid_arg "Schedule.corruption_events: horizon must be finite and positive";
  if n_mboxes < 1 then
    invalid_arg "Schedule.corruption_events: n_mboxes must be >= 1";
  if n_proxies < 0 then
    invalid_arg "Schedule.corruption_events: n_proxies must be >= 0";
  let root = Stdx.Rng.create seed in
  let count = int_of_float (Float.round (rate *. horizon)) in
  List.init count (fun i ->
      let c = Stdx.Rng.derive root i in
      let at = Stdx.Rng.float c horizon in
      let what =
        match Stdx.Rng.int c 5 with
        | 0 -> Label_corrupt (Stdx.Rng.int c n_mboxes)
        | 1 -> Label_drop (Stdx.Rng.int c n_mboxes)
        | 2 when n_proxies > 0 -> Cache_poison (Stdx.Rng.int c n_proxies)
        | 2 -> Label_drop (Stdx.Rng.int c n_mboxes)
        | 3 -> Config_lose (Stdx.Rng.int c (n_proxies + n_mboxes))
        | _ -> Stale_resurrect (Stdx.Rng.int c n_mboxes)
      in
      { at; what })
