(** Traffic descriptors: the matching half of a policy.

    "A policy consists of a traffic descriptor and an ordered action
    list.  The traffic descriptor contains a number of packet-header
    fields, and wildcards may be used as masks."  We support the
    fields of Table I: source/destination address prefixes (wildcard =
    /0), exact-or-wildcard ports, and exact-or-wildcard protocol. *)

type port_match = Any_port | Port of int | Port_range of int * int

type proto_match = Any_proto | Proto of int

type t = {
  src : Netpkt.Addr.Prefix.t;
  dst : Netpkt.Addr.Prefix.t;
  sport : port_match;
  dport : port_match;
  proto : proto_match;
}

val make :
  ?src:Netpkt.Addr.Prefix.t ->
  ?dst:Netpkt.Addr.Prefix.t ->
  ?sport:port_match ->
  ?dport:port_match ->
  ?proto:proto_match ->
  unit ->
  t
(** Omitted fields are wildcards. *)

val any : t

val matches : t -> Netpkt.Flow.t -> bool

val src_overlaps : t -> Netpkt.Addr.Prefix.t -> bool
(** Can traffic originating in the given subnet match this descriptor?
    Drives the controller's computation of each proxy's relevant
    policy subset [P_x]. *)

val dst_overlaps : t -> Netpkt.Addr.Prefix.t -> bool

val port_matches : port_match -> int -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
