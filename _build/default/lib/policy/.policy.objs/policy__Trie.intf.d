lib/policy/trie.mli: Netpkt Rule
