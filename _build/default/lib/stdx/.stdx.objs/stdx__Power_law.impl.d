lib/stdx/power_law.ml: Rng
