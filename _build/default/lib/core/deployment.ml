type t = {
  topo : Netgraph.Topology.t;
  middleboxes : Mbox.Middlebox.t array;
  proxies : Mbox.Proxy.t array;
  dist : float array array;
  subnet_order : (int * int * int) array;
}

let validate ~topo ~middleboxes ~proxies =
  let n = Netgraph.Graph.node_count topo.Netgraph.Topology.graph in
  Array.iteri
    (fun i (m : Mbox.Middlebox.t) ->
      if m.id <> i then invalid_arg "Deployment.make: middlebox ids not dense";
      if m.router < 0 || m.router >= n then
        invalid_arg "Deployment.make: middlebox attachment router out of range")
    middleboxes;
  Array.iteri
    (fun i (p : Mbox.Proxy.t) ->
      if p.id <> i then invalid_arg "Deployment.make: proxy ids not dense";
      if p.router < 0 || p.router >= n then
        invalid_arg "Deployment.make: proxy attachment router out of range")
    proxies;
  let addrs = Hashtbl.create 64 in
  Array.iter
    (fun (m : Mbox.Middlebox.t) ->
      if Hashtbl.mem addrs m.addr then
        invalid_arg "Deployment.make: duplicate middlebox address";
      Hashtbl.replace addrs m.addr ())
    middleboxes;
  Array.iteri
    (fun i (p : Mbox.Proxy.t) ->
      Array.iteri
        (fun j (q : Mbox.Proxy.t) ->
          if i < j && Netpkt.Addr.Prefix.overlaps p.subnet q.subnet then
            invalid_arg "Deployment.make: overlapping proxy subnets")
        proxies)
    proxies

let make ~topo ~middleboxes ~proxies =
  validate ~topo ~middleboxes ~proxies;
  let dist = Netgraph.Dijkstra.all_pairs topo.Netgraph.Topology.graph in
  let subnet_order =
    Array.map
      (fun (p : Mbox.Proxy.t) ->
        (p.subnet.Netpkt.Addr.Prefix.base, p.subnet.Netpkt.Addr.Prefix.len, p.id))
      proxies
  in
  Array.sort compare subnet_order;
  { topo; middleboxes; proxies; dist; subnet_order }

let entity_router t = function
  | Mbox.Entity.Proxy i -> t.proxies.(i).Mbox.Proxy.router
  | Mbox.Entity.Middlebox i -> t.middleboxes.(i).Mbox.Middlebox.router

let distance t a b = t.dist.(entity_router t a).(entity_router t b)

let middleboxes_of t nf =
  Array.to_list t.middleboxes
  |> List.filter (fun (m : Mbox.Middlebox.t) -> Policy.Action.equal_nf m.nf nf)

let functions t =
  Array.fold_left
    (fun acc (m : Mbox.Middlebox.t) ->
      if List.exists (Policy.Action.equal_nf m.nf) acc then acc else m.nf :: acc)
    [] t.middleboxes
  |> List.rev

(* Subnets are pairwise disjoint (validated above), so the candidate
   containing [addr] — if any — is the one with the greatest base <=
   addr: binary search. *)
let proxy_of_addr t addr =
  let n = Array.length t.subnet_order in
  let rec search lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      let base, _, _ = t.subnet_order.(mid) in
      if base <= addr then search (mid + 1) hi (Some t.subnet_order.(mid))
      else search lo (mid - 1) best
    end
  in
  match search 0 (n - 1) None with
  | Some (base, len, id)
    when Netpkt.Addr.Prefix.contains (Netpkt.Addr.Prefix.make base len) addr ->
    Some t.proxies.(id)
  | _ -> None

let middlebox_of_addr t addr =
  Array.to_list t.middleboxes
  |> List.find_opt (fun (m : Mbox.Middlebox.t) -> m.addr = addr)

let subnet_of t i = t.proxies.(i).Mbox.Proxy.subnet

(* Address plan: proxies own 10.x.y.0/24 (their stub), with the proxy
   itself at host .1; middleboxes live at 192.168.x.y, outside every
   stub subnet. *)
let proxy_subnet i =
  if i < 0 || i >= 65536 then invalid_arg "Deployment.proxy_subnet: id out of range";
  Netpkt.Addr.Prefix.make (Netpkt.Addr.of_octets 10 (i / 256) (i mod 256) 0) 24

let proxy_addr i = Netpkt.Addr.of_octets 10 (i / 256) (i mod 256) 1

let mbox_addr i =
  if i < 0 || i >= 65536 then invalid_arg "Deployment.mbox_addr: id out of range";
  Netpkt.Addr.of_octets 192 168 (i / 256) (i mod 256)

let standard ~topo ~mbox_counts ~seed =
  let rng = Stdx.Rng.create seed in
  let cores = Array.of_list (Netgraph.Topology.cores topo) in
  if Array.length cores = 0 then invalid_arg "Deployment.standard: no core routers";
  let middleboxes =
    List.concat_map
      (fun (nf, count) -> List.init count (fun _ -> nf))
      mbox_counts
    |> List.mapi (fun id nf ->
           Mbox.Middlebox.make ~id ~nf ~router:(Stdx.Rng.choose rng cores)
             ~addr:(mbox_addr id) ())
    |> Array.of_list
  in
  let proxies =
    Netgraph.Topology.edges topo
    |> List.mapi (fun id router ->
           Mbox.Proxy.make ~id ~subnet:(proxy_subnet id) ~router
             ~addr:(proxy_addr id) ())
    |> Array.of_list
  in
  make ~topo ~middleboxes ~proxies
