lib/core/verify.ml: Array Candidate Controller Deployment Format Fun List Mbox Policy Strategy Weights
