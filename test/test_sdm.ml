(* Tests for the sdm core: deployment, candidate sets, measurements,
   selector, LP formulations and the controller. *)

let campus_deployment ?(seed = 42) () =
  Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed

let small_deployment () =
  (* A hand-made 6-router line topology with controllable placement:
     routers 0-5, edges at 0 and 5, cores in between.
     FW at router 1 and 4; IDS at router 2 and 3. *)
  let g = Netgraph.Graph.create 6 in
  for i = 0 to 4 do
    Netgraph.Graph.add_edge g i (i + 1) 1.0
  done;
  let roles =
    [| Netgraph.Topology.Edge; Core; Core; Core; Core; Netgraph.Topology.Edge |]
  in
  let topo = Netgraph.Topology.make ~name:"line" ~graph:g ~roles in
  let mb id nf router =
    Mbox.Middlebox.make ~id ~nf ~router ~addr:(Sdm.Deployment.mbox_addr id) ()
  in
  let proxy id router =
    Mbox.Proxy.make ~id ~subnet:(Sdm.Deployment.proxy_subnet id) ~router
      ~addr:(Sdm.Deployment.proxy_addr id) ()
  in
  Sdm.Deployment.make ~topo
    ~middleboxes:
      [| mb 0 Policy.Action.FW 1; mb 1 Policy.Action.FW 4;
         mb 2 Policy.Action.IDS 2; mb 3 Policy.Action.IDS 3 |]
    ~proxies:[| proxy 0 0; proxy 1 5 |]

(* --- Deployment ------------------------------------------------------ *)

let test_deployment_distances () =
  let dep = small_deployment () in
  Alcotest.(check (float 1e-9)) "proxy0 to fw0" 1.0
    (Sdm.Deployment.distance dep (Mbox.Entity.Proxy 0) (Mbox.Entity.Middlebox 0));
  Alcotest.(check (float 1e-9)) "proxy0 to fw1" 4.0
    (Sdm.Deployment.distance dep (Mbox.Entity.Proxy 0) (Mbox.Entity.Middlebox 1));
  Alcotest.(check (float 1e-9)) "fw0 to ids1" 2.0
    (Sdm.Deployment.distance dep (Mbox.Entity.Middlebox 0) (Mbox.Entity.Middlebox 3))

let test_deployment_lookup () =
  let dep = small_deployment () in
  Alcotest.(check int) "two FW" 2
    (List.length (Sdm.Deployment.middleboxes_of dep Policy.Action.FW));
  Alcotest.(check int) "no WP" 0
    (List.length (Sdm.Deployment.middleboxes_of dep Policy.Action.WP));
  Alcotest.(check (list string)) "functions" [ "FW"; "IDS" ]
    (List.map Policy.Action.nf_to_string (Sdm.Deployment.functions dep));
  (match Sdm.Deployment.proxy_of_addr dep (Netpkt.Addr.of_string "10.0.1.55") with
  | Some p -> Alcotest.(check int) "addr in proxy1 subnet" 1 p.Mbox.Proxy.id
  | None -> Alcotest.fail "expected proxy");
  match Sdm.Deployment.middlebox_of_addr dep (Sdm.Deployment.mbox_addr 2) with
  | Some m -> Alcotest.(check int) "mbox by addr" 2 m.Mbox.Middlebox.id
  | None -> Alcotest.fail "expected middlebox"

let test_deployment_validation () =
  let dep = small_deployment () in
  ignore dep;
  let topo = dep.Sdm.Deployment.topo in
  Alcotest.check_raises "bad router"
    (Invalid_argument "Deployment.make: middlebox attachment router out of range")
    (fun () ->
      ignore
        (Sdm.Deployment.make ~topo
           ~middleboxes:
             [| Mbox.Middlebox.make ~id:0 ~nf:Policy.Action.FW ~router:99
                  ~addr:(Sdm.Deployment.mbox_addr 0) () |]
           ~proxies:[||]))

let test_standard_deployment () =
  let dep = campus_deployment () in
  Alcotest.(check int) "22 middleboxes" 22
    (Array.length dep.Sdm.Deployment.middleboxes);
  Alcotest.(check int) "10 proxies" 10 (Array.length dep.Sdm.Deployment.proxies);
  List.iter
    (fun (nf, n) ->
      Alcotest.(check int)
        (Policy.Action.nf_to_string nf)
        n
        (List.length (Sdm.Deployment.middleboxes_of dep nf)))
    Sim.Experiment.mbox_counts;
  (* All middleboxes attach to core routers. *)
  Array.iter
    (fun (m : Mbox.Middlebox.t) ->
      Alcotest.(check string) "on core" "core"
        (Netgraph.Topology.role_to_string
           (Netgraph.Topology.role dep.Sdm.Deployment.topo m.Mbox.Middlebox.router)))
    dep.Sdm.Deployment.middleboxes

(* --- Candidate sets --------------------------------------------------- *)

let test_candidates_closest_first () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  let fws = Sdm.Candidate.get cand (Mbox.Entity.Proxy 0) Policy.Action.FW in
  Alcotest.(check (list int)) "closest first" [ 0; 1 ]
    (List.map (fun (m : Mbox.Middlebox.t) -> m.id) fws);
  let fws' = Sdm.Candidate.get cand (Mbox.Entity.Proxy 1) Policy.Action.FW in
  Alcotest.(check (list int)) "closest first (other end)" [ 1; 0 ]
    (List.map (fun (m : Mbox.Middlebox.t) -> m.id) fws');
  Alcotest.(check int) "m_x^e" 0
    (Sdm.Candidate.closest cand (Mbox.Entity.Proxy 0) Policy.Action.FW).Mbox.Middlebox.id

let test_candidates_k_clamped () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 10) in
  Alcotest.(check int) "clamped to |M^e|" 2
    (List.length (Sdm.Candidate.get cand (Mbox.Entity.Proxy 0) Policy.Action.FW))

let test_candidates_self_excluded () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  Alcotest.check_raises "own function"
    (Invalid_argument "Candidate.get: entity implements the function itself")
    (fun () ->
      ignore (Sdm.Candidate.get cand (Mbox.Entity.Middlebox 0) Policy.Action.FW));
  (* A FW middlebox does get IDS candidates. *)
  Alcotest.(check int) "ids candidates" 2
    (List.length (Sdm.Candidate.get cand (Mbox.Entity.Middlebox 0) Policy.Action.IDS))

let test_candidates_tie_break_by_id () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  (* From FW at router 1: IDS at routers 2 and 3 — distances 1 and 2.
     From proxy1 at router 5: IDS at 3 (dist 2) then 2 (dist 3). *)
  let ids = Sdm.Candidate.get cand (Mbox.Entity.Proxy 1) Policy.Action.IDS in
  Alcotest.(check (list int)) "distance order" [ 3; 2 ]
    (List.map (fun (m : Mbox.Middlebox.t) -> m.id) ids)

let test_fingerprint_groups () =
  let dep = campus_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  (* Fingerprints are stable and identical iff candidate sets are. *)
  let fp0 = Sdm.Candidate.fingerprint cand (Mbox.Entity.Proxy 0) in
  Alcotest.(check (list int)) "stable" fp0
    (Sdm.Candidate.fingerprint cand (Mbox.Entity.Proxy 0));
  let waxman = Sim.Experiment.build_deployment Sim.Experiment.Waxman ~seed:7 in
  let wc = Sdm.Candidate.compute waxman ~k:Sdm.Controller.default_k in
  let groups =
    List.init 400 (fun i -> Sdm.Candidate.fingerprint wc (Mbox.Entity.Proxy i))
    |> List.sort_uniq compare
  in
  (* 400 proxies hang off 25 cores: between 1 and 25 distinct
     fingerprints — this is what makes source grouping effective. *)
  Alcotest.(check bool) "grouping collapses proxies" true
    (List.length groups <= 25)

(* --- Measurement ------------------------------------------------------ *)

let test_measurement_aggregates () =
  let m = Sdm.Measurement.create () in
  Sdm.Measurement.add m ~src:0 ~dst:1 ~rule:3 100.0;
  Sdm.Measurement.add m ~src:0 ~dst:2 ~rule:3 50.0;
  Sdm.Measurement.add m ~src:1 ~dst:2 ~rule:3 25.0;
  Sdm.Measurement.add m ~src:0 ~dst:1 ~rule:4 10.0;
  Sdm.Measurement.add m ~src:0 ~dst:1 ~rule:3 1.0 (* accumulates *);
  Alcotest.(check (float 1e-9)) "t_sdp" 101.0
    (Sdm.Measurement.t_sdp m ~src:0 ~dst:1 ~rule:3);
  Alcotest.(check (float 1e-9)) "t_sp" 151.0 (Sdm.Measurement.t_sp m ~src:0 ~rule:3);
  Alcotest.(check (float 1e-9)) "t_dp" 75.0 (Sdm.Measurement.t_dp m ~dst:2 ~rule:3);
  Alcotest.(check (float 1e-9)) "t_p" 176.0 (Sdm.Measurement.t_p m ~rule:3);
  Alcotest.(check (list int)) "rules" [ 3; 4 ] (Sdm.Measurement.rules_with_traffic m);
  Alcotest.(check (float 1e-9)) "total" 186.0 (Sdm.Measurement.total m);
  Alcotest.(check (list (pair int (float 1e-9)))) "sources" [ (0, 151.0); (1, 25.0) ]
    (Sdm.Measurement.sources_for m ~rule:3)

let test_measurement_negative () =
  let m = Sdm.Measurement.create () in
  Alcotest.check_raises "negative volume"
    (Invalid_argument "Measurement.add: negative volume") (fun () ->
      Sdm.Measurement.add m ~src:0 ~dst:0 ~rule:0 (-1.0))

(* --- Selector --------------------------------------------------------- *)

let test_selector_buckets () =
  let row = [| (10, 1.0); (11, 3.0) |] in
  Alcotest.(check (option int)) "low u -> first" (Some 10)
    (Sdm.Selector.pick row ~u:0.1);
  Alcotest.(check (option int)) "u=0.25 boundary -> second" (Some 11)
    (Sdm.Selector.pick row ~u:0.25);
  Alcotest.(check (option int)) "high u -> second" (Some 11)
    (Sdm.Selector.pick row ~u:0.9);
  Alcotest.(check (option int)) "all-zero row" None
    (Sdm.Selector.pick [| (1, 0.0); (2, 0.0) |] ~u:0.5)

let test_selector_proportionality () =
  (* Empirical selection frequencies must track the weights. *)
  let row = [| (0, 1.0); (1, 2.0); (2, 7.0) |] in
  let counts = Array.make 3 0 in
  let rng = Stdx.Rng.create 5 in
  let n = 100_000 in
  for _ = 1 to n do
    match Sdm.Selector.pick row ~u:(Stdx.Rng.float rng 1.0) with
    | Some id -> counts.(id) <- counts.(id) + 1
    | None -> Alcotest.fail "unexpected empty pick"
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "10%" true (abs_float (frac 0 -. 0.1) < 0.01);
  Alcotest.(check bool) "20%" true (abs_float (frac 1 -. 0.2) < 0.01);
  Alcotest.(check bool) "70%" true (abs_float (frac 2 -. 0.7) < 0.01)

let test_selector_flow_sticky () =
  let flow =
    Netpkt.Flow.make ~src:(Netpkt.Addr.of_string "10.0.0.1")
      ~dst:(Netpkt.Addr.of_string "10.1.0.1") ~proto:6 ~sport:1 ~dport:2
  in
  let e = Mbox.Entity.Proxy 0 in
  let u1 = Sdm.Selector.flow_point flow ~entity:e ~nf:Policy.Action.FW in
  let u2 = Sdm.Selector.flow_point flow ~entity:e ~nf:Policy.Action.FW in
  Alcotest.(check (float 0.0)) "sticky" u1 u2;
  let u3 = Sdm.Selector.flow_point flow ~entity:e ~nf:Policy.Action.IDS in
  Alcotest.(check bool) "salted by function" true (u1 <> u3);
  let u4 =
    Sdm.Selector.flow_point flow ~entity:(Mbox.Entity.Middlebox 0)
      ~nf:Policy.Action.FW
  in
  Alcotest.(check bool) "salted by entity" true (u1 <> u4)

let qcheck_selector_unit_range =
  QCheck.Test.make ~count:200 ~name:"flow_point stays in [0,1)"
    QCheck.(make Gen.(pair (int_range 0 0xFFFF) (int_range 0 0xFFFF)))
    (fun (sport, dport) ->
      let flow =
        Netpkt.Flow.make ~src:(Netpkt.Addr.of_string "10.0.0.1")
          ~dst:(Netpkt.Addr.of_string "10.1.0.1") ~proto:6 ~sport ~dport
      in
      let u =
        Sdm.Selector.flow_point flow ~entity:(Mbox.Entity.Proxy 1)
          ~nf:Policy.Action.TM
      in
      u >= 0.0 && u < 1.0)

(* Distinct 5-tuples for the distribution tests: vary the ports. *)
let port_flow i =
  Netpkt.Flow.make ~src:(Netpkt.Addr.of_string "10.0.0.1")
    ~dst:(Netpkt.Addr.of_string "10.1.0.1") ~proto:6 ~sport:(i mod 60000)
    ~dport:(80 + (i / 60000))

let chi_square counts expected =
  let s = ref 0.0 in
  Array.iteri
    (fun i c -> s := !s +. (((float_of_int c -. expected.(i)) ** 2.0) /. expected.(i)))
    counts;
  !s

(* Critical values at p = 0.001 — the statistic is deterministic (hash
   driven), so a pass is stable; the bound is about hash quality. *)
let chi2_df2_p999 = 13.82
let chi2_df3_p999 = 16.27

let test_selector_rand_chi_square () =
  (* The Rand baseline over hashed flow points converges to uniform. *)
  let cands = [ 0; 1; 2; 3 ] in
  let n = 20_000 in
  let counts = Array.make 4 0 in
  for i = 0 to n - 1 do
    let u =
      Sdm.Selector.flow_point (port_flow i) ~entity:(Mbox.Entity.Proxy 0)
        ~nf:Policy.Action.FW
    in
    let id = Sdm.Selector.pick_uniform cands ~u in
    counts.(id) <- counts.(id) + 1
  done;
  let expected = Array.make 4 (float_of_int n /. 4.0) in
  let x2 = chi_square counts expected in
  if x2 > chi2_df3_p999 then
    Alcotest.failf "uniform chi-square %.2f exceeds %.2f" x2 chi2_df3_p999

let test_selector_lb_chi_square () =
  (* Bucket selection over hashed flow points converges to the LP
     weights — the property LB feasibility auditing leans on. *)
  let row = [| (0, 1.0); (1, 2.0); (2, 7.0) |] in
  let n = 20_000 in
  let counts = Array.make 3 0 in
  for i = 0 to n - 1 do
    let u =
      Sdm.Selector.flow_point (port_flow i) ~entity:(Mbox.Entity.Proxy 1)
        ~nf:Policy.Action.IDS
    in
    match Sdm.Selector.pick row ~u with
    | Some id -> counts.(id) <- counts.(id) + 1
    | None -> Alcotest.fail "unexpected empty pick"
  done;
  let nf = float_of_int n in
  let x2 = chi_square counts [| 0.1 *. nf; 0.2 *. nf; 0.7 *. nf |] in
  if x2 > chi2_df2_p999 then
    Alcotest.failf "weighted chi-square %.2f exceeds %.2f" x2 chi2_df2_p999

let test_hrw_chi_square () =
  (* Rendezvous selection is weight-proportional too. *)
  let row = [| (0, 1.0); (1, 2.0); (2, 7.0) |] in
  let n = 20_000 in
  let counts = Array.make 3 0 in
  for i = 0 to n - 1 do
    let key =
      Sdm.Selector.flow_key (port_flow i) ~entity:(Mbox.Entity.Proxy 1)
        ~nf:Policy.Action.IDS
    in
    match Sdm.Selector.pick_hrw row ~key with
    | Some id -> counts.(id) <- counts.(id) + 1
    | None -> Alcotest.fail "unexpected empty pick"
  done;
  let nf = float_of_int n in
  let x2 = chi_square counts [| 0.1 *. nf; 0.2 *. nf; 0.7 *. nf |] in
  if x2 > chi2_df2_p999 then
    Alcotest.failf "hrw chi-square %.2f exceeds %.2f" x2 chi2_df2_p999

let test_hrw_basic () =
  Alcotest.(check (option int)) "all-zero row" None
    (Sdm.Selector.pick_hrw [| (1, 0.0); (2, 0.0) |] ~key:42L);
  Alcotest.(check (option int)) "single candidate" (Some 9)
    (Sdm.Selector.pick_hrw [| (9, 0.5) |] ~key:42L);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Selector.pick_hrw: negative weight") (fun () ->
      ignore (Sdm.Selector.pick_hrw [| (0, -1.0) |] ~key:42L))

let qcheck_hrw_order_independent =
  (* The property pick_hrw exists for: the winner is a function of the
     candidate SET, not of row order, and losing candidates can leave
     without reshuffling anyone. *)
  QCheck.Test.make ~count:300 ~name:"pick_hrw is order-independent"
    QCheck.(
      make
        Gen.(pair (int_range 0 1_000_000) (list_size (int_range 2 5) (int_range 0 10))))
    (fun (key, weights) ->
      let key = Int64.of_int key in
      let row =
        Array.of_list
          (List.mapi (fun id w -> (id, float_of_int w /. 2.0)) weights)
      in
      let winner = Sdm.Selector.pick_hrw row ~key in
      let rev = Array.of_list (List.rev (Array.to_list row)) in
      let shifted =
        Array.init (Array.length row) (fun i ->
            row.((i + 1) mod Array.length row))
      in
      Sdm.Selector.pick_hrw rev ~key = winner
      && Sdm.Selector.pick_hrw shifted ~key = winner
      &&
      (* Drop one losing candidate (if any): the winner must hold. *)
      match winner with
      | None -> true
      | Some w -> (
        match Array.to_list row |> List.filter (fun (id, _) -> id <> w) with
        | [] -> true
        | (loser, _) :: _ ->
          let pruned =
            Array.of_list
              (Array.to_list row |> List.filter (fun (id, _) -> id <> loser))
          in
          Sdm.Selector.pick_hrw pruned ~key = Some w))

let test_selector_pick_validation () =
  let row = [| (0, 1.0); (1, 1.0) |] in
  Alcotest.check_raises "u below range"
    (Invalid_argument "Selector.pick: u out of [0,1)") (fun () ->
      ignore (Sdm.Selector.pick row ~u:(-0.1)));
  Alcotest.check_raises "u at 1.0"
    (Invalid_argument "Selector.pick: u out of [0,1)") (fun () ->
      ignore (Sdm.Selector.pick row ~u:1.0));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Selector.pick: negative weight") (fun () ->
      ignore (Sdm.Selector.pick [| (0, -1.0) |] ~u:0.5))

let test_flow_key_salting () =
  (* flow_key is the HRW analogue of flow_point: deterministic per
     flow, salted by enforcement entity and network function. *)
  let f = port_flow 17 in
  let e = Mbox.Entity.Proxy 2 in
  let k = Sdm.Selector.flow_key f ~entity:e ~nf:Policy.Action.FW in
  Alcotest.(check int64) "deterministic" k
    (Sdm.Selector.flow_key f ~entity:e ~nf:Policy.Action.FW);
  Alcotest.(check bool) "nf salt matters" true
    (k <> Sdm.Selector.flow_key f ~entity:e ~nf:Policy.Action.IDS);
  Alcotest.(check bool) "entity salt matters" true
    (k
    <> Sdm.Selector.flow_key f ~entity:(Mbox.Entity.Middlebox 2)
         ~nf:Policy.Action.FW);
  Alcotest.(check bool) "flow identity matters" true
    (k <> Sdm.Selector.flow_key (port_flow 18) ~entity:e ~nf:Policy.Action.FW)

(* --- LP formulations --------------------------------------------------- *)

let line_rules =
  (* One policy: everything from proxy0's subnet through FW -> IDS. *)
  [
    Policy.Rule.make ~id:0
      ~descriptor:(Policy.Descriptor.make ~src:(Sdm.Deployment.proxy_subnet 0) ())
      ~actions:Policy.Action.[ FW; IDS ];
  ]

let line_traffic volume =
  let m = Sdm.Measurement.create () in
  Sdm.Measurement.add m ~src:0 ~dst:1 ~rule:0 volume;
  m

let test_lp_balances_line () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  match
    Sdm.Lp_formulation.solve_simplified cand ~rules:line_rules
      ~traffic:(line_traffic 100.0) ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* 100 units through 2 FW and 2 IDS: perfect balance = 50 each. *)
    Alcotest.(check (float 0.5)) "lambda" 50.0 r.Sdm.Lp_formulation.lambda;
    Array.iter
      (fun load -> Alcotest.(check (float 0.5)) "each box 50" 50.0 load)
      r.Sdm.Lp_formulation.loads

let test_lp_respects_capacity () =
  (* Same line, but FW1 has 4x the capacity of FW0: the load split
     must be proportional under min-max load *factor*. *)
  let dep0 = small_deployment () in
  let topo = dep0.Sdm.Deployment.topo in
  let mb id nf router capacity =
    Mbox.Middlebox.make ~id ~nf ~router ~capacity
      ~addr:(Sdm.Deployment.mbox_addr id) ()
  in
  let proxy id router =
    Mbox.Proxy.make ~id ~subnet:(Sdm.Deployment.proxy_subnet id) ~router
      ~addr:(Sdm.Deployment.proxy_addr id) ()
  in
  let dep =
    Sdm.Deployment.make ~topo
      ~middleboxes:
        [| mb 0 Policy.Action.FW 1 1.0; mb 1 Policy.Action.FW 4 4.0;
           mb 2 Policy.Action.IDS 2 1.0; mb 3 Policy.Action.IDS 3 1.0 |]
      ~proxies:[| proxy 0 0; proxy 1 5 |]
  in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  match
    Sdm.Lp_formulation.solve_simplified cand ~rules:line_rules
      ~traffic:(line_traffic 100.0) ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (float 0.5)) "fw0 gets 20" 20.0 r.Sdm.Lp_formulation.loads.(0);
    Alcotest.(check (float 0.5)) "fw1 gets 80" 80.0 r.Sdm.Lp_formulation.loads.(1)

let test_lp_conservation_and_capacity_properties () =
  (* On a real campus instance: per-type totals of the LP loads must
     equal the traffic that needs that function, and no load may
     exceed lambda (+ the epsilon refinement slack). *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:11 ~flows:5_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let cand = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  match Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let lambda = r.Sdm.Lp_formulation.lambda in
    Array.iteri
      (fun i load ->
        let cap = dep.Sdm.Deployment.middleboxes.(i).Mbox.Middlebox.capacity in
        if load > (lambda *. cap) +. 1e-3 then
          Alcotest.failf "load %f exceeds lambda %f at mbox %d" load lambda i)
      r.Sdm.Lp_formulation.loads;
    (* Per-function conservation: sum of loads on M^e = sum over rules
       containing e of T_p. *)
    List.iter
      (fun nf ->
        let expected =
          List.fold_left
            (fun acc rule ->
              if List.exists (Policy.Action.equal_nf nf) rule.Policy.Rule.actions
              then acc +. Sdm.Measurement.t_p traffic ~rule:rule.Policy.Rule.id
              else acc)
            0.0 rules
        in
        let got =
          List.fold_left
            (fun acc (m : Mbox.Middlebox.t) ->
              acc +. r.Sdm.Lp_formulation.loads.(m.id))
            0.0
            (Sdm.Deployment.middleboxes_of dep nf)
        in
        if abs_float (expected -. got) > 1e-3 *. (1.0 +. expected) then
          Alcotest.failf "%s: expected %f got %f" (Policy.Action.nf_to_string nf)
            expected got)
      (Sdm.Deployment.functions dep)

let test_lp_exact_not_worse () =
  (* Eq. (1) has at least the freedom of Eq. (2): its optimum cannot
     be worse. *)
  let dep = campus_deployment () in
  let workload =
    Sim.Workload.generate ~deployment:dep ~per_class:2 ~seed:13 ~flows:2_000 ()
  in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let cand = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  match
    ( Sdm.Lp_formulation.solve_exact cand ~rules ~traffic (),
      Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic () )
  with
  | Ok exact, Ok simplified ->
    Alcotest.(check bool) "exact <= simplified (within eps)" true
      (exact.Sdm.Lp_formulation.lambda
      <= simplified.Sdm.Lp_formulation.lambda +. 1.0);
    Alcotest.(check bool) "exact uses more variables" true
      (exact.Sdm.Lp_formulation.lp_vars > simplified.Sdm.Lp_formulation.lp_vars)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_lp_grouping_exact () =
  (* Source grouping must not change the optimum. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:17 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let cand = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  match
    ( Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic
        ~group_sources:true (),
      Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic
        ~group_sources:false () )
  with
  | Ok a, Ok b ->
    Alcotest.(check (float 1.0)) "same lambda" a.Sdm.Lp_formulation.lambda
      b.Sdm.Lp_formulation.lambda
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_lp_no_traffic () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  match
    Sdm.Lp_formulation.solve_simplified cand ~rules:line_rules
      ~traffic:(Sdm.Measurement.create ()) ()
  with
  | Ok r -> Alcotest.(check (float 1e-9)) "lambda 0" 0.0 r.Sdm.Lp_formulation.lambda
  | Error e -> Alcotest.fail e

let test_lp_lambda_cap_infeasible () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  match
    Sdm.Lp_formulation.solve_simplified cand ~rules:line_rules
      ~traffic:(line_traffic 100.0) ~lambda_cap:10.0 ()
  with
  | Error _ -> () (* 100 units cannot fit under max load 10 *)
  | Ok _ -> Alcotest.fail "expected infeasible under tight lambda cap"

let test_lp_duplicate_function_rejected () =
  let dep = small_deployment () in
  let cand = Sdm.Candidate.compute dep ~k:(fun _ -> 2) in
  let rules =
    [
      Policy.Rule.make ~id:0 ~descriptor:(Policy.Descriptor.make ())
        ~actions:Policy.Action.[ FW; IDS; FW ];
    ]
  in
  match
    Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic:(line_traffic 1.0) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of repeated function"

let test_exact_enforcement_path () =
  (* The Eq. (1) controller (per-(s,d) weights) must verify, realise a
     max load comparable to Eq. (2)'s, and ship more configuration. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~per_class:2 ~seed:41 ~flows:4_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  match
    ( Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced_exact traffic),
      Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced traffic) )
  with
  | Ok exact, Ok simplified ->
    (match exact.Sdm.Controller.strategy with
    | Sdm.Strategy.Load_balanced_exact (sd, _) ->
      Alcotest.(check bool) "per-(s,d) rows present" true
        (Sdm.Weights_sd.entries sd > 0)
    | _ -> Alcotest.fail "expected exact LB strategy");
    (match Sdm.Verify.check exact with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "exact config rejected: %a" Sdm.Verify.pp_violation
        (List.hd vs));
    let realized c =
      Array.fold_left max 0.0
        (Sim.Flowsim.run ~controller:c ~workload ()).Sim.Flowsim.loads
    in
    let re = realized exact and rs = realized simplified in
    Alcotest.(check bool)
      (Printf.sprintf "comparable realizations (%.0f vs %.0f)" re rs)
      true
      (re < rs *. 1.25 +. 100.0);
    let rows c = (Sdm.Controller.config_summary c).Sdm.Controller.weight_rows in
    Alcotest.(check bool) "exact ships more config" true
      (rows exact > rows simplified)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_lp_beats_fractional_rand () =
  (* The LP optimum can be no worse than ANY feasible split over the
     same candidate sets; in particular the fractional expectation of
     the Rand strategy (uniform split at every hop) is feasible, so
     lambda <= its max expected load. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:37 ~flows:8_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let cand = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
  let expected = Array.make (Array.length dep.Sdm.Deployment.middleboxes) 0.0 in
  (* Fractional Rand: push each flow's volume through the candidate
     DAG, splitting uniformly at every decision point. *)
  Array.iter
    (fun (fs : Sim.Workload.flow_spec) ->
      match Sim.Workload.rule_of workload fs with
      | Some rule when rule.Policy.Rule.actions <> [] ->
        let volume = float_of_int fs.Sim.Workload.packets in
        (* mass.(mbox id) at the current stage *)
        let start = Mbox.Entity.Proxy fs.Sim.Workload.src_proxy in
        let initial = [ (start, volume) ] in
        ignore
          (List.fold_left
             (fun mass nf ->
               let next = Hashtbl.create 8 in
               List.iter
                 (fun (entity, v) ->
                   let members = Sdm.Candidate.get cand entity nf in
                   let share = v /. float_of_int (List.length members) in
                   List.iter
                     (fun (m : Mbox.Middlebox.t) ->
                       expected.(m.id) <- expected.(m.id) +. share;
                       let e = Mbox.Entity.Middlebox m.id in
                       let prev =
                         Option.value ~default:0.0 (Hashtbl.find_opt next e)
                       in
                       Hashtbl.replace next e (prev +. share))
                     members)
                 mass;
               Hashtbl.fold (fun e v acc -> (e, v) :: acc) next [])
             initial rule.Policy.Rule.actions)
      | _ -> ())
    workload.Sim.Workload.flows;
  let rand_max = Array.fold_left max 0.0 expected in
  match Sdm.Lp_formulation.solve_simplified cand ~rules ~traffic () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool)
      (Printf.sprintf "lambda %.0f <= fractional Rand max %.0f"
         r.Sdm.Lp_formulation.lambda rand_max)
      true
      (r.Sdm.Lp_formulation.lambda <= rand_max +. 1.0)

let test_custom_function_end_to_end () =
  (* Extensibility: a Custom "NAT" network function flows through
     candidates, LP, strategies and simulation like the builtins. *)
  let dep0 = campus_deployment () in
  let topo = dep0.Sdm.Deployment.topo in
  let cores = Netgraph.Topology.cores topo in
  let nat = Policy.Action.Custom "NAT" in
  let middleboxes =
    Array.append dep0.Sdm.Deployment.middleboxes
      (Array.of_list
         (List.mapi
            (fun i core ->
              let id = Array.length dep0.Sdm.Deployment.middleboxes + i in
              Mbox.Middlebox.make ~id ~nf:nat ~router:core
                ~addr:(Sdm.Deployment.mbox_addr id) ())
            [ List.nth cores 0; List.nth cores 5 ]))
  in
  let dep =
    Sdm.Deployment.make ~topo ~middleboxes ~proxies:dep0.Sdm.Deployment.proxies
  in
  let rules =
    Policy.Rule.index
      [ Policy.Descriptor.make ~dport:(Policy.Descriptor.Port 5060) () ]
      [ [ nat; Policy.Action.FW ] ]
  in
  let traffic = Sdm.Measurement.create () in
  Sdm.Measurement.add traffic ~src:0 ~dst:1 ~rule:0 500.0;
  Sdm.Measurement.add traffic ~src:2 ~dst:3 ~rule:0 500.0;
  match Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced traffic) with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    (match Sdm.Verify.check c with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "custom-NF config rejected: %a" Sdm.Verify.pp_violation
        (List.hd vs));
    let flow =
      Netpkt.Flow.make
        ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 0) 4)
        ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 1) 4)
        ~proto:17 ~sport:9999 ~dport:5060
    in
    let rule = List.hd rules in
    let mb = Sdm.Controller.next_hop c (Mbox.Entity.Proxy 0) ~rule ~nf:nat flow in
    match mb.Mbox.Middlebox.nf with
    | Policy.Action.Custom "NAT" -> ()
    | other ->
      Alcotest.failf "expected a NAT box, got %s" (Policy.Action.nf_to_string other))

(* --- Failure handling --------------------------------------------------- *)

let test_candidates_exclude () =
  let dep = campus_deployment () in
  let excluded =
    (List.hd (Sdm.Deployment.middleboxes_of dep Policy.Action.IDS)).Mbox.Middlebox.id
  in
  let cand =
    Sdm.Candidate.compute ~exclude:[ excluded ] dep ~k:Sdm.Controller.default_k
  in
  let entities =
    List.init (Array.length dep.Sdm.Deployment.proxies) (fun i -> Mbox.Entity.Proxy i)
  in
  List.iter
    (fun e ->
      List.iter
        (fun (m : Mbox.Middlebox.t) ->
          if m.id = excluded then Alcotest.fail "excluded middlebox in candidate set")
        (Sdm.Candidate.get cand e Policy.Action.IDS))
    entities

let test_candidates_exclude_all_fails () =
  let dep = small_deployment () in
  match Sdm.Candidate.compute ~exclude:[ 0; 1 ] dep ~k:(fun _ -> 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure when a function loses all middleboxes"

let test_failover_skips_dead () =
  let dep = small_deployment () in
  match Sdm.Controller.configure dep ~rules:line_rules Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let rule = List.hd line_rules in
    let flow =
      Netpkt.Flow.make
        ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 0) 2)
        ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 1) 2)
        ~proto:6 ~sport:1 ~dport:80
    in
    (* FW0 (closest) fails: HP must fail over to FW1. *)
    let mb =
      Sdm.Controller.next_hop ~alive:(fun id -> id <> 0) c (Mbox.Entity.Proxy 0)
        ~rule ~nf:Policy.Action.FW flow
    in
    Alcotest.(check int) "next-closest live" 1 mb.Mbox.Middlebox.id;
    (* Both FWs dead: no live candidate left. *)
    match
      Sdm.Controller.next_hop ~alive:(fun id -> id <> 0 && id <> 1) c
        (Mbox.Entity.Proxy 0) ~rule ~nf:Policy.Action.FW flow
    with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected failure with no live candidates"

let test_next_hop_result_typed () =
  (* The non-raising face of failover: [Error `No_live_candidate]
     instead of an exception, and agreement with [next_hop] when a
     live candidate exists. *)
  let dep = small_deployment () in
  match Sdm.Controller.configure dep ~rules:line_rules Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let rule = List.hd line_rules in
    let flow =
      Netpkt.Flow.make
        ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 0) 2)
        ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 1) 2)
        ~proto:6 ~sport:1 ~dport:80
    in
    (match
       Sdm.Controller.next_hop_result ~alive:(fun id -> id <> 0 && id <> 1) c
         (Mbox.Entity.Proxy 0) ~rule ~nf:Policy.Action.FW flow
     with
    | Error `No_live_candidate -> ()
    | Ok _ -> Alcotest.fail "expected No_live_candidate with all FWs dead");
    (match
       Sdm.Controller.next_hop_result ~alive:(fun id -> id <> 0) c
         (Mbox.Entity.Proxy 0) ~rule ~nf:Policy.Action.FW flow
     with
    | Ok mb -> Alcotest.(check int) "fails over like next_hop" 1 mb.Mbox.Middlebox.id
    | Error `No_live_candidate -> Alcotest.fail "FW1 is alive");
    match
      Sdm.Controller.next_hop_result c (Mbox.Entity.Proxy 0) ~rule
        ~nf:Policy.Action.FW flow
    with
    | Ok mb ->
      let raising =
        Sdm.Controller.next_hop c (Mbox.Entity.Proxy 0) ~rule
          ~nf:Policy.Action.FW flow
      in
      Alcotest.(check int) "no alive: agrees with next_hop"
        raising.Mbox.Middlebox.id mb.Mbox.Middlebox.id
    | Error `No_live_candidate -> Alcotest.fail "unexpected error without faults"

let test_flowsim_graceful_degradation () =
  (* Every FW dead: flows whose chain needs one are not an error — the
     rest of the chain is skipped and the damage is counted. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:9 ~flows:2_000 () in
  let fw_ids =
    List.map
      (fun (m : Mbox.Middlebox.t) -> m.Mbox.Middlebox.id)
      (Sdm.Deployment.middleboxes_of dep Policy.Action.FW)
  in
  let alive id = not (List.mem id fw_ids) in
  match Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
          Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let r = Sim.Flowsim.run ~alive ~controller:c ~workload () in
    Alcotest.(check bool) "violations counted" true
      (r.Sim.Flowsim.policy_violations > 0);
    Alcotest.(check bool) "violating flows counted" true
      (r.Sim.Flowsim.violating_flows > 0
      && r.Sim.Flowsim.violating_flows <= Array.length workload.Sim.Workload.flows);
    List.iter
      (fun id ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "dead FW %d unloaded" id)
          0.0 r.Sim.Flowsim.loads.(id))
      fw_ids;
    let healthy = Sim.Flowsim.run ~controller:c ~workload () in
    Alcotest.(check int) "no violations without faults" 0
      healthy.Sim.Flowsim.policy_violations;
    Alcotest.(check int) "no violating flows without faults" 0
      healthy.Sim.Flowsim.violating_flows

let test_failover_all_strategies_avoid_dead () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:9 ~flows:2_000 () in
  let traffic = Sim.Workload.measure workload in
  let dead =
    (List.hd (Sdm.Deployment.middleboxes_of dep Policy.Action.FW)).Mbox.Middlebox.id
  in
  let alive id = id <> dead in
  List.iter
    (fun kind ->
      match Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules kind with
      | Error e -> Alcotest.fail e
      | Ok c ->
        let result = Sim.Flowsim.run ~alive ~controller:c ~workload () in
        Alcotest.(check (float 1e-9)) "dead box got nothing" 0.0
          result.Sim.Flowsim.loads.(dead))
    [
      Sdm.Controller.Hot_potato;
      Sdm.Controller.Random_uniform;
      Sdm.Controller.Load_balanced traffic;
    ]

let test_reoptimize_after_failure () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:9 ~flows:5_000 () in
  let traffic = Sim.Workload.measure workload in
  let dead =
    (List.hd (Sdm.Deployment.middleboxes_of dep Policy.Action.IDS)).Mbox.Middlebox.id
  in
  match
    ( Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic),
      Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
        ~failed:[ dead ]
        (Sdm.Controller.Load_balanced traffic) )
  with
  | Ok before, Ok after ->
    let l_before =
      (Option.get before.Sdm.Controller.lp).Sdm.Lp_formulation.lambda
    in
    let l_after = (Option.get after.Sdm.Controller.lp).Sdm.Lp_formulation.lambda in
    (* Losing a box cannot improve the optimum. *)
    Alcotest.(check bool) "lambda grows" true (l_after >= l_before -. 1e-6);
    (* The failed box carries nothing in the new plan. *)
    Alcotest.(check (float 1e-9)) "no planned load" 0.0
      (Option.get after.Sdm.Controller.lp).Sdm.Lp_formulation.loads.(dead)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --- Incremental re-optimization ----------------------------------------- *)

let qcheck_candidate_incremental =
  (* The candidate-set equality oracle: after any seeded sequence of
     crash/recover events, patching the candidate sets from the shared
     ranked lists ([with_excluded]) is element-for-element equal to a
     from-scratch [compute ~exclude] — and errors exactly where the
     rebuild would raise (a function left without middleboxes). *)
  QCheck.Test.make ~count:25 ~name:"with_excluded equals a from-scratch rebuild"
    QCheck.(
      make
        Gen.(
          pair (int_range 0 99_999)
            (list_size (int_range 1 10) (int_range 0 21))))
    (fun (seed, events) ->
      let dep = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed in
      let base = Sdm.Candidate.compute dep ~k:Sdm.Controller.default_k in
      let module IS = Set.Make (Int) in
      (* Each event toggles one middlebox: crash if alive, recover if
         down.  The patched view is chained — each step derives from
         the previous step's view, as the live controller does. *)
      let _, _, ok =
        List.fold_left
          (fun (excluded, prev, ok) id ->
            let excluded =
              if IS.mem id excluded then IS.remove id excluded
              else IS.add id excluded
            in
            let ids = IS.elements excluded in
            let patched = Sdm.Candidate.with_excluded prev ids in
            let fresh =
              match
                Sdm.Candidate.compute ~exclude:ids dep
                  ~k:Sdm.Controller.default_k
              with
              | c -> Ok c
              | exception Invalid_argument e -> Error e
            in
            match (patched, fresh) with
            | Ok p, Ok f ->
              ( excluded,
                p,
                ok
                && Sdm.Candidate.equal p f
                && Sdm.Candidate.excluded p = ids )
            | Error _, Error _ ->
              (* Both refuse: a function lost its last box.  Keep the
                 last good view, as the controller would. *)
              (excluded, prev, ok)
            | Ok _, Error _ | Error _, Ok _ -> (excluded, prev, false))
          (IS.empty, base, true) events
      in
      ok)

let test_reoptimize_warm_matches_cold () =
  (* The controller-level differential on a short churn chain: warm
     and cold re-optimization agree on the optimum at every step, the
     warm solve either carries the basis or honestly falls back, and
     the no-change steps warm-solve for free. *)
  let steps = Sim.Experiment.reopt_replay Sim.Experiment.Campus ~flows:200 () in
  Alcotest.(check bool) "chain is non-trivial" true (List.length steps >= 4);
  List.iteri
    (fun i (s : Sim.Experiment.reopt_step) ->
      Alcotest.(check bool)
        (Printf.sprintf "step %d optima agree" i)
        true s.Sim.Experiment.rs_agree;
      Alcotest.(check bool)
        (Printf.sprintf "step %d carried xor fell back" i)
        true
        (s.Sim.Experiment.rs_warm_used <> s.Sim.Experiment.rs_fallback))
    steps;
  (match steps with
  | first :: _ ->
    Alcotest.(check bool) "no-op step warm-carried" true
      first.Sim.Experiment.rs_warm_used;
    Alcotest.(check int) "no-op step is free" 0
      first.Sim.Experiment.rs_warm_pivots
  | [] -> Alcotest.fail "empty replay");
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 steps in
  let cold = sum (fun s -> s.Sim.Experiment.rs_cold_pivots) in
  let warm = sum (fun s -> s.Sim.Experiment.rs_warm_pivots) in
  Alcotest.(check bool)
    (Printf.sprintf "warm total %d < cold total %d" warm cold)
    true (warm < cold)

let test_reoptimize_warm_off_is_cold () =
  (* [use_warm:false] must be the cold path verbatim: same lambda,
     same pivot counts, no warm/fallback flags. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:800 () in
  let traffic = Sim.Workload.measure workload in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    match
      ( Sdm.Controller.reoptimize c ~failed:[] ~use_warm:false ~traffic (),
        Sdm.Controller.reoptimize c ~failed:[] ~use_warm:true ~traffic () )
    with
    | Ok cold, Ok warm ->
      let lp (c : Sdm.Controller.t) = Option.get c.Sdm.Controller.lp in
      Alcotest.(check (float 1e-9))
        "same optimum"
        (lp cold).Sdm.Lp_formulation.lambda
        (lp warm).Sdm.Lp_formulation.lambda;
      Alcotest.(check bool) "cold never claims warm" false
        (lp cold).Sdm.Lp_formulation.lp_warm_used;
      Alcotest.(check bool) "cold never counts fallback" false
        (lp cold).Sdm.Lp_formulation.lp_fallback;
      Alcotest.(check bool) "unchanged problem warm-carried" true
        (lp warm).Sdm.Lp_formulation.lp_warm_used;
      Alcotest.(check int) "unchanged problem is free" 0
        (lp warm).Sdm.Lp_formulation.lp_pivots
    | Error e, _ | _, Error e -> Alcotest.fail e)

(* --- Policy updates ------------------------------------------------------- *)

let test_update_rules_delta () =
  let dep = campus_deployment () in
  let base_rules =
    Policy.Rule.index
      [
        Policy.Descriptor.make
          ~src:(Sdm.Deployment.subnet_of dep 0)
          ~dport:(Policy.Descriptor.Port 80) ();
      ]
      [ Policy.Action.[ FW; IDS ] ]
  in
  match Sdm.Controller.configure dep ~rules:base_rules Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    (* No-op update: nothing to push. *)
    (match Sdm.Controller.update_rules c ~rules:base_rules Sdm.Controller.Hot_potato with
    | Ok d ->
      Alcotest.(check int) "noop touches nothing" 0 d.Sdm.Controller.entities_touched;
      Alcotest.(check int) "noop adds nothing" 0 d.Sdm.Controller.rows_added
    | Error e -> Alcotest.fail e);
    (* Append a TM policy for subnet 3: touches proxy 3 (new source
       rule)... and every entity the new rule is relevant to. *)
    let extra =
      Policy.Rule.make ~id:1
        ~descriptor:
          (Policy.Descriptor.make
             ~src:(Sdm.Deployment.subnet_of dep 3)
             ~dport:(Policy.Descriptor.Port 443) ())
        ~actions:Policy.Action.[ IDS; TM ]
    in
    match
      Sdm.Controller.update_rules c ~rules:(base_rules @ [ extra ])
        Sdm.Controller.Hot_potato
    with
    | Error e -> Alcotest.fail e
    | Ok d ->
      (* Touched: proxy 3 (source) + the 7 IDS + 4 TM middleboxes. *)
      Alcotest.(check int) "touched entities" 12 d.Sdm.Controller.entities_touched;
      Alcotest.(check int) "one row per touched entity" 12 d.Sdm.Controller.rows_added;
      Alcotest.(check int) "nothing removed" 0 d.Sdm.Controller.rows_removed;
      (* The new controller enforces the new rule. *)
      Alcotest.(check int) "new rule installed" 2
        (List.length d.Sdm.Controller.controller.Sdm.Controller.rules))

(* --- Static verification -------------------------------------------------- *)

let test_verify_accepts_valid_configs () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:31 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  List.iter
    (fun kind ->
      match Sdm.Controller.configure dep ~rules kind with
      | Error e -> Alcotest.fail e
      | Ok c -> (
        match Sdm.Verify.check c with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "valid config rejected: %a" Sdm.Verify.pp_violation
            (List.hd vs)))
    [
      Sdm.Controller.Hot_potato;
      Sdm.Controller.Random_uniform;
      Sdm.Controller.Load_balanced traffic;
    ]

let test_verify_catches_foreign_weight () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:31 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  match Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced traffic) with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    (* Corrupt one weight row: point some proxy's FW choice at a WP box. *)
    let weights =
      match c.Sdm.Controller.strategy with
      | Sdm.Strategy.Load_balanced w -> w
      | _ -> Alcotest.fail "expected LB"
    in
    let wp_box =
      (List.hd (Sdm.Deployment.middleboxes_of dep Policy.Action.WP)).Mbox.Middlebox.id
    in
    let rule_with_fw =
      List.find
        (fun r -> List.exists (Policy.Action.equal_nf Policy.Action.FW) r.Policy.Rule.actions)
        rules
    in
    Sdm.Weights.set weights (Mbox.Entity.Proxy 0) ~rule:rule_with_fw.Policy.Rule.id
      ~nf:Policy.Action.FW
      [| (wp_box, 1.0) |];
    match Sdm.Verify.check c with
    | Ok () -> Alcotest.fail "verifier missed a corrupted weight row"
    | Error vs ->
      Alcotest.(check bool) "reports foreign weight" true
        (List.exists
           (function Sdm.Verify.Foreign_weight _ -> true | _ -> false)
           vs))

let test_verify_catches_unnormalized_row () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:31 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  match Sdm.Controller.configure dep ~rules (Sdm.Controller.Load_balanced traffic) with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let weights =
      match c.Sdm.Controller.strategy with
      | Sdm.Strategy.Load_balanced w -> w
      | _ -> Alcotest.fail "expected LB"
    in
    (* A rule whose chain starts with FW, so the proxy-side step of the
       walk consults the row we poke. *)
    let rule =
      List.find
        (fun r ->
          match r.Policy.Rule.actions with
          | f :: _ -> Policy.Action.equal_nf f Policy.Action.FW
          | [] -> false)
        rules
    in
    let entity = Mbox.Entity.Proxy 0 in
    let members = Sdm.Candidate.get c.Sdm.Controller.candidates entity Policy.Action.FW in
    let row vals =
      Array.of_list
        (List.map2 (fun (m : Mbox.Middlebox.t) v -> (m.id, v)) members vals)
    in
    let zeros = List.map (fun _ -> 0.0) members in
    (* All-zero row: legal candidates, but the selector would silently
       degrade it to closest-live fallback — the verifier must veto. *)
    Sdm.Weights.set weights entity ~rule:rule.Policy.Rule.id ~nf:Policy.Action.FW
      (row zeros);
    (match Sdm.Verify.check c with
    | Ok () -> Alcotest.fail "verifier passed an all-zero weight row"
    | Error vs ->
      Alcotest.(check bool) "reports unnormalized row" true
        (List.exists
           (function
             | Sdm.Verify.Unnormalized_row (_, _, Policy.Action.FW, total) ->
               total = 0.0
             | _ -> false)
           vs));
    (* A non-finite weight is just as unusable. *)
    Sdm.Weights.set weights entity ~rule:rule.Policy.Rule.id ~nf:Policy.Action.FW
      (row (Float.nan :: List.tl zeros));
    (match Sdm.Verify.check c with
    | Ok () -> Alcotest.fail "verifier passed a NaN weight row"
    | Error vs ->
      Alcotest.(check bool) "reports non-finite row" true
        (List.exists
           (function Sdm.Verify.Unnormalized_row _ -> true | _ -> false)
           vs));
    (* Fixed: any positive volumes over the candidate set certify again
       (rows are volumes, not probabilities — the selector normalizes). *)
    Sdm.Weights.set weights entity ~rule:rule.Policy.Rule.id ~nf:Policy.Action.FW
      (row (List.map (fun _ -> 2.5) members));
    (match Sdm.Verify.check c with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "fixed row still rejected: %a" Sdm.Verify.pp_violation
        (List.hd vs))

let test_verify_check_mixed () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:31 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let configure kind =
    match Sdm.Controller.configure dep ~rules kind with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let hp = configure Sdm.Controller.Hot_potato in
  let lb = configure (Sdm.Controller.Load_balanced traffic) in
  (* Two independently valid adjacent versions: every reachable mix of
     their steps must certify, in either update direction. *)
  (match Sdm.Verify.check_mixed hp lb with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "valid HP->LB mix rejected: %a" Sdm.Verify.pp_violation
      (List.hd vs));
  (match Sdm.Verify.check_mixed lb hp with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "valid LB->HP mix rejected: %a" Sdm.Verify.pp_violation
      (List.hd vs));
  (* A defect in the incoming version is caught while the outgoing one
     is still live — the publish gate of the live control plane. *)
  let bad = configure (Sdm.Controller.Load_balanced traffic) in
  let weights =
    match bad.Sdm.Controller.strategy with
    | Sdm.Strategy.Load_balanced w -> w
    | _ -> Alcotest.fail "expected LB"
  in
  let rule =
    List.find
      (fun r ->
        match r.Policy.Rule.actions with
        | f :: _ -> Policy.Action.equal_nf f Policy.Action.FW
        | [] -> false)
      rules
  in
  let members =
    Sdm.Candidate.get bad.Sdm.Controller.candidates (Mbox.Entity.Proxy 0)
      Policy.Action.FW
  in
  Sdm.Weights.set weights (Mbox.Entity.Proxy 0) ~rule:rule.Policy.Rule.id
    ~nf:Policy.Action.FW
    (Array.of_list (List.map (fun (m : Mbox.Middlebox.t) -> (m.id, 0.0)) members));
  (match Sdm.Verify.check_mixed hp bad with
  | Ok () -> Alcotest.fail "mixed check passed a defective incoming version"
  | Error vs ->
    Alcotest.(check bool) "reports the defect exactly once" true
      (List.length
         (List.filter
            (function Sdm.Verify.Unnormalized_row _ -> true | _ -> false)
            vs)
      = 1));
  (* Configurations over different rule sets are never adjacent. *)
  let fewer =
    match
      Sdm.Controller.configure dep ~rules:(List.tl rules) Sdm.Controller.Hot_potato
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  match Sdm.Verify.check_mixed hp fewer with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched rule sets accepted"

let test_verify_check_window () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:31 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let configure kind =
    match Sdm.Controller.configure dep ~rules kind with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let hp = configure Sdm.Controller.Hot_potato in
  let lb = configure (Sdm.Controller.Load_balanced traffic) in
  (* Empty window: vacuously safe. *)
  (match Sdm.Verify.check_window [] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty window rejected");
  (* Singleton window = plain check. *)
  Alcotest.(check bool) "singleton = check" true
    (Sdm.Verify.check_window [ hp ] = Sdm.Verify.check hp);
  (* Adjacent pair = the mixed-version certification. *)
  Alcotest.(check bool) "pair = check_mixed" true
    (Sdm.Verify.check_window [ hp; lb ] = Sdm.Verify.check_mixed hp lb);
  (* Three coexisting versions are vetoed outright, whatever their
     contents — the quorum commit gate of the replicated control
     plane depends on this veto. *)
  match Sdm.Verify.check_window [ hp; lb; hp ] with
  | Ok () -> Alcotest.fail "three-version window accepted"
  | Error vs ->
    Alcotest.(check bool) "vetoed as too deep" true
      (vs = [ Sdm.Verify.Window_too_deep 3 ])

let test_verify_catches_duplicate_function () =
  let dep = campus_deployment () in
  let rules =
    [
      Policy.Rule.make ~id:0 ~descriptor:(Policy.Descriptor.make ())
        ~actions:Policy.Action.[ FW; IDS; FW ];
    ]
  in
  match Sdm.Controller.configure dep ~rules Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    match Sdm.Verify.check c with
    | Ok () -> Alcotest.fail "verifier missed a repeated function"
    | Error vs ->
      Alcotest.(check bool) "reports duplicate" true
        (List.exists
           (function Sdm.Verify.Duplicate_function 0 -> true | _ -> false)
           vs))

(* --- Sketched measurement ----------------------------------------------- *)

let test_sketch_roundtrip_accuracy () =
  (* With a reasonable epsilon the reconstructed matrix equals the
     exact one on this small universe. *)
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:19 ~flows:5_000 () in
  let rules = workload.Sim.Workload.rules in
  let exact = Sim.Workload.measure workload in
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let sketch =
    Sdm.Sketch.of_workload_measurement ~exact ~n_proxies ~rules ~epsilon:0.001 ()
  in
  let approx = Sdm.Sketch.to_measurement sketch ~rules in
  List.iter
    (fun rule ->
      List.iter
        (fun (s, d, v) ->
          let got = Sdm.Measurement.t_sdp approx ~src:s ~dst:d ~rule in
          if abs_float (got -. v) > 0.01 *. (v +. 1.0) then
            Alcotest.failf "cell (%d,%d,%d): exact %f sketched %f" s d rule v got)
        (Sdm.Measurement.pairs_for exact ~rule))
    (Sdm.Measurement.rules_with_traffic exact)

let test_sketch_never_underestimates_present_cells () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:23 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let exact = Sim.Workload.measure workload in
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let sketch =
    Sdm.Sketch.of_workload_measurement ~exact ~n_proxies ~rules ~epsilon:0.05 ()
  in
  let approx = Sdm.Sketch.to_measurement sketch ~rules in
  (* Cells that survive the noise floor can only overestimate. *)
  List.iter
    (fun rule ->
      List.iter
        (fun (s, d, v) ->
          let got = Sdm.Measurement.t_sdp approx ~src:s ~dst:d ~rule in
          if got > 0.0 && got < v -. 1e-6 then
            Alcotest.failf "sketch undercounted a surviving cell: %f < %f" got v)
        (Sdm.Measurement.pairs_for exact ~rule))
    (Sdm.Measurement.rules_with_traffic exact)

let test_sketch_memory_scales_with_epsilon () =
  let a = Sdm.Sketch.create ~epsilon:0.01 ~n_proxies:4 () in
  let b = Sdm.Sketch.create ~epsilon:0.001 ~n_proxies:4 () in
  Alcotest.(check bool) "finer sketch uses more memory" true
    (Sdm.Sketch.memory_cells b > Sdm.Sketch.memory_cells a)

(* --- Controller -------------------------------------------------------- *)

let test_controller_missing_function () =
  let dep = small_deployment () in
  let rules =
    [
      Policy.Rule.make ~id:0 ~descriptor:(Policy.Descriptor.make ())
        ~actions:Policy.Action.[ WP ];
    ]
  in
  match Sdm.Controller.configure dep ~rules Sdm.Controller.Hot_potato with
  | Error e ->
    (* The message should name the missing function. *)
    let mentions_wp =
      let rec scan i =
        i + 2 <= String.length e && (String.sub e i 2 = "WP" || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "mentions WP" true mentions_wp
  | Ok _ -> Alcotest.fail "expected missing-function error"

let test_controller_hot_potato_next_hop () =
  let dep = small_deployment () in
  match Sdm.Controller.configure dep ~rules:line_rules Sdm.Controller.Hot_potato with
  | Error e -> Alcotest.fail e
  | Ok c ->
    let rule = List.hd line_rules in
    let flow =
      Netpkt.Flow.make
        ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 0) 2)
        ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 1) 2)
        ~proto:6 ~sport:1234 ~dport:80
    in
    let mb =
      Sdm.Controller.next_hop c (Mbox.Entity.Proxy 0) ~rule ~nf:Policy.Action.FW
        flow
    in
    Alcotest.(check int) "closest FW" 0 mb.Mbox.Middlebox.id;
    let mb2 =
      Sdm.Controller.next_hop c (Mbox.Entity.Middlebox 0) ~rule
        ~nf:Policy.Action.IDS flow
    in
    Alcotest.(check int) "closest IDS from FW0" 2 mb2.Mbox.Middlebox.id

let test_controller_policy_tables () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:3 ~flows:100 () in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      Sdm.Controller.Hot_potato
  with
  | Error e -> Alcotest.fail e
  | Ok c ->
    (* Middlebox tables contain exactly the rules mentioning their
       function. *)
    Array.iter
      (fun (m : Mbox.Middlebox.t) ->
        let table = Sdm.Controller.policy_table_for c (Mbox.Entity.Middlebox m.id) in
        List.iter
          (fun r ->
            Alcotest.(check bool) "rule mentions function" true
              (List.exists (Policy.Action.equal_nf m.Mbox.Middlebox.nf)
                 r.Policy.Rule.actions))
          table)
      dep.Sdm.Deployment.middleboxes;
    (* Proxy tables: every rule a flow from that proxy can match is
       present. *)
    Array.iter
      (fun (fs : Sim.Workload.flow_spec) ->
        match fs.Sim.Workload.rule_id with
        | None -> ()
        | Some rid ->
          let table =
            Sdm.Controller.policy_table_for c
              (Mbox.Entity.Proxy fs.Sim.Workload.src_proxy)
          in
          Alcotest.(check bool) "matched rule in proxy table" true
            (List.exists (fun r -> r.Policy.Rule.id = rid) table))
      workload.Sim.Workload.flows

let test_controller_lb_weights_exist () =
  let dep = campus_deployment () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:3 ~flows:2_000 () in
  let traffic = Sim.Workload.measure workload in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    Alcotest.(check bool) "lp present" true (c.Sdm.Controller.lp <> None);
    match c.Sdm.Controller.strategy with
    | Sdm.Strategy.Load_balanced w ->
      Alcotest.(check bool) "weights non-empty" true (Sdm.Weights.entries w > 0)
    | _ -> Alcotest.fail "expected LB strategy")

let suite =
  [
    Alcotest.test_case "deployment distances" `Quick test_deployment_distances;
    Alcotest.test_case "deployment lookups" `Quick test_deployment_lookup;
    Alcotest.test_case "deployment validation" `Quick test_deployment_validation;
    Alcotest.test_case "standard campus deployment" `Quick test_standard_deployment;
    Alcotest.test_case "candidates closest-first" `Quick test_candidates_closest_first;
    Alcotest.test_case "candidates k clamped" `Quick test_candidates_k_clamped;
    Alcotest.test_case "candidates self-excluded" `Quick test_candidates_self_excluded;
    Alcotest.test_case "candidates ordering" `Quick test_candidates_tie_break_by_id;
    Alcotest.test_case "fingerprint grouping" `Quick test_fingerprint_groups;
    Alcotest.test_case "measurement aggregates" `Quick test_measurement_aggregates;
    Alcotest.test_case "measurement negative" `Quick test_measurement_negative;
    Alcotest.test_case "selector buckets" `Quick test_selector_buckets;
    Alcotest.test_case "selector proportionality" `Quick test_selector_proportionality;
    Alcotest.test_case "selector stickiness" `Quick test_selector_flow_sticky;
    QCheck_alcotest.to_alcotest qcheck_selector_unit_range;
    Alcotest.test_case "selector Rand chi-square" `Quick
      test_selector_rand_chi_square;
    Alcotest.test_case "selector LB chi-square" `Quick
      test_selector_lb_chi_square;
    Alcotest.test_case "selector HRW chi-square" `Quick test_hrw_chi_square;
    Alcotest.test_case "selector HRW basics" `Quick test_hrw_basic;
    QCheck_alcotest.to_alcotest qcheck_hrw_order_independent;
    Alcotest.test_case "selector pick validation" `Quick
      test_selector_pick_validation;
    Alcotest.test_case "selector flow_key salting" `Quick
      test_flow_key_salting;
    Alcotest.test_case "LP balances a line" `Quick test_lp_balances_line;
    Alcotest.test_case "LP respects capacity" `Quick test_lp_respects_capacity;
    Alcotest.test_case "LP conservation properties" `Quick
      test_lp_conservation_and_capacity_properties;
    Alcotest.test_case "LP exact not worse" `Quick test_lp_exact_not_worse;
    Alcotest.test_case "LP grouping exact" `Quick test_lp_grouping_exact;
    Alcotest.test_case "LP no traffic" `Quick test_lp_no_traffic;
    Alcotest.test_case "LP lambda cap infeasible" `Quick test_lp_lambda_cap_infeasible;
    Alcotest.test_case "LP rejects repeated function" `Quick
      test_lp_duplicate_function_rejected;
    Alcotest.test_case "Eq.(1) enforcement path" `Quick test_exact_enforcement_path;
    Alcotest.test_case "LP beats fractional Rand" `Quick test_lp_beats_fractional_rand;
    Alcotest.test_case "custom function end-to-end" `Quick
      test_custom_function_end_to_end;
    Alcotest.test_case "candidates exclude failed" `Quick test_candidates_exclude;
    Alcotest.test_case "candidates exclude-all fails" `Quick
      test_candidates_exclude_all_fails;
    Alcotest.test_case "failover skips dead" `Quick test_failover_skips_dead;
    Alcotest.test_case "next_hop_result typed failover" `Quick
      test_next_hop_result_typed;
    Alcotest.test_case "flowsim graceful degradation" `Quick
      test_flowsim_graceful_degradation;
    Alcotest.test_case "failover avoids dead (all strategies)" `Quick
      test_failover_all_strategies_avoid_dead;
    Alcotest.test_case "re-optimize after failure" `Quick test_reoptimize_after_failure;
    QCheck_alcotest.to_alcotest qcheck_candidate_incremental;
    Alcotest.test_case "warm re-optimize matches cold" `Quick
      test_reoptimize_warm_matches_cold;
    Alcotest.test_case "warm off is the cold path" `Quick
      test_reoptimize_warm_off_is_cold;
    Alcotest.test_case "policy update delta" `Quick test_update_rules_delta;
    Alcotest.test_case "verify accepts valid configs" `Quick
      test_verify_accepts_valid_configs;
    Alcotest.test_case "verify catches foreign weights" `Quick
      test_verify_catches_foreign_weight;
    Alcotest.test_case "verify catches duplicate functions" `Quick
      test_verify_catches_duplicate_function;
    Alcotest.test_case "verify catches unnormalized rows" `Quick
      test_verify_catches_unnormalized_row;
    Alcotest.test_case "verify mixed adjacent versions" `Quick
      test_verify_check_mixed;
    Alcotest.test_case "verify staged window depth" `Quick
      test_verify_check_window;
    Alcotest.test_case "sketch roundtrip accuracy" `Quick test_sketch_roundtrip_accuracy;
    Alcotest.test_case "sketch one-sided error" `Quick
      test_sketch_never_underestimates_present_cells;
    Alcotest.test_case "sketch memory scaling" `Quick
      test_sketch_memory_scales_with_epsilon;
    Alcotest.test_case "controller missing function" `Quick
      test_controller_missing_function;
    Alcotest.test_case "controller hot-potato next hop" `Quick
      test_controller_hot_potato_next_hop;
    Alcotest.test_case "controller policy tables" `Quick test_controller_policy_tables;
    Alcotest.test_case "controller LB weights" `Quick test_controller_lb_weights_exist;
  ]
