(** Policy-proxy descriptors.

    One proxy fronts each stub network, attached to the stub's edge
    router in-path or off-path (off-path uses the router's loopback
    trick of Sec. III.A; for routing both reduce to "traffic of this
    subnet passes the proxy"). *)

type attachment = In_path | Off_path

type t = {
  id : int;
  subnet : Netpkt.Addr.Prefix.t;
  router : int;          (** the stub's edge router *)
  attachment : attachment;
  addr : Netpkt.Addr.t;  (** the proxy's own IP (tunnel source) *)
}

val make :
  id:int ->
  subnet:Netpkt.Addr.Prefix.t ->
  router:int ->
  ?attachment:attachment ->
  addr:Netpkt.Addr.t ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
