let distances g src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Bellman_ford.distances: bad source";
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  let edges = Graph.edges g in
  let relax () =
    let changed = ref false in
    List.iter
      (fun (u, v, c) ->
        if dist.(u) +. c < dist.(v) then begin
          dist.(v) <- dist.(u) +. c;
          changed := true
        end;
        if dist.(v) +. c < dist.(u) then begin
          dist.(u) <- dist.(v) +. c;
          changed := true
        end)
      edges;
    !changed
  in
  let rec iterate k = if k > 0 && relax () then iterate (k - 1) in
  iterate n;
  dist
