(** Deterministic multicore fan-out of independent jobs.

    A fixed-size pool of [Domain.t] workers draining a chunked work
    queue.  The one entry point that matters is {!map}: it applies a
    function to every element of an array using up to [jobs] domains
    (the calling domain participates, so [jobs = 1] spawns nothing)
    and returns the results {e positionally} — [result.(i) = f arr.(i)]
    no matter how the items were scheduled across domains.  That
    positional contract is what makes parallel evaluation
    bit-identical to sequential evaluation whenever [f] itself is a
    pure function of its argument, which is the determinism guarantee
    the experiment sweeps in [Sim.Experiment] are built on.

    Exceptions raised by [f] are captured in the worker, the queue is
    drained of remaining work, and the first exception (in completion
    order) is re-raised at the {!map} call site with its original
    backtrace — a crashing job never hangs the join.

    Jobs must not share mutable state with each other or with the
    caller while a map is in flight; everything they read must be
    immutable or owned exclusively by that job. *)

type t
(** A pool of worker domains.  A pool is owned by the domain that
    created it: only that domain may call {!map_pool} or {!shutdown},
    and only one map may be in flight at a time. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to 8 (and at least 1)
    — the default parallelism of {!map} and of the [--jobs] flags in
    [bench] and [sdmctl]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool that runs up to [jobs] jobs
    concurrently ([jobs - 1] worker domains plus the caller; default
    {!default_jobs}).  Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Total parallelism of the pool, caller included. *)

val map_pool : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_pool t f arr] is [Array.map f arr] evaluated on the pool's
    domains, results in input order. *)

val shutdown : t -> unit
(** Stop and join every worker domain.  Idempotent. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] evaluated on a transient
    pool of up to [jobs] domains (default {!default_jobs}; capped to
    [Array.length arr], so [jobs] larger than the number of items is
    fine).  [jobs = 1] runs entirely in the caller with no domain
    spawned.  Raises [Invalid_argument] if [jobs < 1]. *)
