lib/stdx/xhash.mli:
