lib/stdx/rng.mli:
