(** Growable vector of unboxed floats.

    Replaces [float list] accumulators on simulator hot paths: a cons
    cell per sample costs three words and a pointer chase, while this
    stores samples flat in a [float array] with amortised O(1) append.
    Indices follow insertion order. *)

type t

val create : unit -> t

val length : t -> int

val push : t -> float -> unit

val get : t -> int -> float
(** @raise Invalid_argument when the index is out of bounds. *)

val to_array : t -> float array
(** Fresh array of the [length t] stored samples, insertion order. *)

val clear : t -> unit
(** Drops the samples and releases the backing storage. *)
