lib/sim/workload.mli: Netpkt Policy Sdm Stdx
