(** Per-node flow cache (Sec. III.D) with the label-switching
    extensions of Sec. III.E.

    Stores ⟨flow-id, action-list⟩ pairs so only the first packet of a
    flow pays the multi-field policy lookup.  Misses against both the
    cache and the policy table insert a *negative* entry (action
    [None]) so later packets of a no-policy flow skip the policy table
    too.  Entries are soft state: not being touched for [timeout] time
    units makes them reclaimable.

    A proxy additionally stores in each positive entry the locally
    unique label it assigned to the flow and — once the control packet
    from the last middlebox in the chain arrives — the
    "label-switching ready" flag.

    Negative entries age against their own [negative_timeout] (default
    equal to [timeout]), so a bogus or expired negative entry can
    neither shadow a real policy match nor pin a capacity slot past
    its own TTL.

    Like {!Mbox.Label_table}, the cache maintains an order-independent
    XOR digest of avalanche-finalized per-entry hashes, updated
    incrementally by legitimate mutations, plus a per-entry payload
    checksum.  The [unsafe_poison_*] fault hooks bypass both; the
    anti-entropy sweep compares {!digest} against {!recompute_digest}
    and {!scrub} purges the poisoned entries. *)

type entry = {
  actions : Action.t option;  (** [None] = negative (no policy matched) *)
  rule_id : int;              (** matching rule id, -1 for negative entries *)
  label : int option;         (** proxy-assigned label, if any *)
  cfg_version : int;
      (** configuration version that admitted the flow; steering
          decisions for the flow stay sticky to it across live
          reconfigurations (0 for static configurations) *)
  check : int64;
      (** checksum of the flow identity and immutable payload, written
          at insert time; silent poisoning leaves it stale *)
  mutable ls_ready : bool;    (** label-switched path established *)
  mutable last_used : float;
}

type stats = {
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable expirations : int;
  mutable evictions : int;  (** capacity-forced LRU evictions *)
}

type t

val create :
  ?timeout:float -> ?negative_timeout:float -> ?capacity:int ->
  ?expected:int -> unit -> t
(** [timeout] defaults to 60.0 time units.  [negative_timeout]
    (default: [timeout]) is the TTL of negative entries — expiry on
    lookup and the expired-first pass of capacity eviction both honour
    it, so a negative entry never outlives its own TTL just because
    positive entries age slower.  [capacity] (default unbounded) caps
    the entry count, as a hardware hash table would: inserting into a
    full cache first drops expired entries, then evicts the
    least-recently-used one (counted in {!stats}.[evictions]).
    [expected] (default 256) is a sizing hint — the anticipated live
    population, e.g. flows per device on a large run — that pre-sizes
    the underlying table (clamped by [capacity]) to avoid rehash
    churn; it never changes behaviour. *)

val lookup : t -> now:float -> Netpkt.Flow.t -> entry option
(** Refreshes [last_used] on hit; an entry past its timeout is treated
    as absent (and removed).  Updates {!stats}. *)

val insert :
  t -> now:float -> Netpkt.Flow.t -> rule_id:int -> actions:Action.t ->
  ?label:int -> ?cfg_version:int -> unit -> entry
(** [cfg_version] defaults to 0 (static configuration). *)

val insert_negative : t -> now:float -> Netpkt.Flow.t -> entry

val mark_ls_ready : t -> Netpkt.Flow.t -> bool
(** Flag the entry for label switching (on receipt of the control
    packet).  [false] if the flow is unknown or negative. *)

val purge : t -> now:float -> int
(** Evict every expired entry; returns how many were dropped. *)

val size : t -> int

val iter : (Netpkt.Flow.t -> entry -> unit) -> t -> unit
(** Apply to every entry, in insertion order, without refreshing
    [last_used] or touching {!stats}.  The callback must not mutate
    the cache. *)

val stats : t -> stats
val timeout : t -> float

val negative_timeout : t -> float
(** The TTL applied to negative entries. *)

val digest : t -> int64
(** The incrementally maintained digest.  Empty cache = [0L]. *)

val recompute_digest : t -> int64
(** Walk the live entries and fold their actual payload hashes.
    Equal to {!digest} iff no unsafe poisoning happened since the last
    {!scrub} (up to a 2{^-64} XOR collision). *)

val entry_hash :
  Netpkt.Flow.t ->
  actions:Action.t option ->
  rule_id:int ->
  label:int option ->
  cfg_version:int ->
  int64
(** The per-entry hash the digest folds; exposed for tests. *)

val unsafe_poison_negative : t -> Netpkt.Flow.t -> bool
(** Fault injection: silently flip a positive entry to a bogus
    negative one (checksum and digest untouched).  [false] if the flow
    is absent or already negative. *)

val unsafe_poison_actions : t -> Netpkt.Flow.t -> actions:Action.t -> bool
(** Fault injection: silently replace the entry's action list
    (checksum and digest untouched).  [false] if the flow is absent. *)

val scrub : t -> Netpkt.Flow.t list
(** Locate and purge every entry whose stored checksum disagrees with
    its actual payload hash, then rebase the incremental digest to the
    recomputed one.  Returns the purged flows. *)
