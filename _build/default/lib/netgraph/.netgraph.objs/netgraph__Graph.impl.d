lib/netgraph/graph.ml: Array Format List
