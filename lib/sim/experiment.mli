(** The paper's evaluation experiments (Sec. IV), plus ablations.

    Deployment recipe for both topologies: middleboxes WP x4, FW x7,
    IDS x7, TM x4 attached to random core routers; one policy proxy
    per edge router; candidate-set sizes FW/IDS 4, WP/TM 2.  Flows
    30k-300k with power-law sizes on [1,5000] calibrated to the
    paper's 1M-10M total packets.

    For the load-balanced strategy, the controller consumes the
    traffic matrix measured on the same workload (the paper's proxies
    measure a previous epoch; with stationary traffic the two
    coincide).

    {b Parallel evaluation.}  Every sweep expresses its cells —
    independent (controller, workload) evaluations — as thunks fanned
    out over {!Stdx.Domain_pool.map}.  The [?jobs] argument bounds the
    domains used (default {!Stdx.Domain_pool.default_jobs}); because
    results are positional, cells are pure, and per-cell seeds are
    derived order-independently ({!Stdx.Rng.derive}), reports are
    bit-identical for every [jobs] value.  Each report also carries
    the total simulator events its runs processed, so harnesses can
    state real throughput.

    {b Intra-run sharding.}  Orthogonally to [?jobs] (the across-cells
    axis), the [?shards] argument splits each {e individual} run's
    per-flow work across the domain pool: flow-level runs partition
    their flows by the seeded flow hash ({!Stdx.Shard}) and merge
    per-shard partial sums in fixed shard order, packet-level runs
    parallelise their pure setup phases ({!Pktsim.config.shards}).
    Reports are bit-identical for every [shards] value — see
    {!Flowsim.run} for the exactness argument.  Default 1 (the
    historical sequential path). *)

type scenario = Campus | Waxman

val scenario_name : scenario -> string

val mbox_counts : (Policy.Action.nf * int) list
(** WP 4, FW 7, IDS 7, TM 4 — Sec. IV.A. *)

val build_deployment : scenario -> seed:int -> Sdm.Deployment.t

val strategies : string list
(** ["HP"; "Rand"; "LB"] in plot order. *)

type strategy_run = {
  strategy : string;
  controller : Sdm.Controller.t;
  result : Flowsim.result;
  lambda : float option; (** LP optimum, LB only *)
}

val run_strategies :
  deployment:Sdm.Deployment.t ->
  flows:int ->
  ?per_class:int ->
  ?seed:int ->
  ?rule_seed:int ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  Workload.t * strategy_run list
(** One workload, all three strategies on it ([?jobs] fans the three
    out).  [rule_seed] (default [seed]) pins the policy set
    independently of the flow population, which the figure sweeps use
    to scale volume under fixed policies. *)

(* {2 Figures 4 and 5} *)

type point = {
  flows : int;
  total_packets : int;
  (* max_loads.(nf) in HP, Rand, LB order *)
  max_loads : (Policy.Action.nf * (float * float * float)) list;
}

type figure = {
  scenario : scenario;
  points : point list;
  fig_events : int;  (** flow-level events across every cell and strategy *)
}

val default_flow_counts : int list
(** 30k .. 300k in steps of 30k. *)

val run_figure :
  scenario -> ?flow_counts:int list -> ?per_class:int -> ?seed:int ->
  ?jobs:int -> ?shards:int -> unit -> figure
(** One cell per flow-volume point, fanned out over [?jobs] domains.
    Each cell's flow population is seeded from
    [Stdx.Rng.derive root i], so the figure is a function of the root
    seed alone, not of evaluation order. *)

(* {2 Table III} *)

type table3_row = {
  nf : Policy.Action.nf;
  hp_max : float;
  hp_min : float;
  rand_max : float;
  rand_min : float;
  lb_max : float;
  lb_min : float;
}

type table3 = {
  t3_rows : table3_row list;
  t3_events : int;  (** flow-level events across the three strategy runs *)
}

val run_table3 :
  ?scenario:scenario -> ?flows:int -> ?per_class:int -> ?seed:int ->
  ?jobs:int -> ?shards:int -> unit -> table3

(* {2 Ablations} *)

type k_point = { k_fw_ids : int; k_wp_tm : int; lb_max_by_nf : (Policy.Action.nf * float) list }

type k_sweep = { k_points : k_point list; k_events : int }

val ablation_k :
  ?scenario:scenario -> ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int ->
  unit -> k_sweep
(** LB max loads as the candidate-set sizes grow; k=1 reproduces HP. *)

type cache_stats = {
  packets : int;
  lookups : int;            (** multi-field policy lookups actually performed *)
  hits : int;
  negative_hits : int;
  lookup_fraction : float;  (** lookups / packet-events; the flow cache drives this toward #flows/#packets *)
  cache_events : int;       (** engine events fired by the run *)
}

val ablation_cache :
  ?flows:int -> ?seed:int -> ?shards:int -> ?classifier:Pktsim.classifier ->
  unit -> cache_stats
(** Packet-level run on the campus topology quantifying Sec. III.D.
    [classifier] (default [Trie]) selects the software classifier
    backing the policy tables; statistics are invariant to it. *)

type cache_size_point = {
  capacity : int option;     (** [None] = unbounded *)
  size_lookup_fraction : float;
  size_evictions : int;
}

type cache_size_sweep = { cs_points : cache_size_point list; cs_events : int }

val ablation_cache_size :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int -> unit -> cache_size_sweep
(** Sec. III.D under finite table sizes: shrink every proxy/middlebox
    flow cache and watch evictions force repeated multi-field lookups
    for long-lived flows. *)

type frag_stats = {
  fragments_ip_over_ip : int;   (** label switching disabled *)
  fragments_label_switched : int; (** label switching enabled *)
  tunneled_legs : int;
  label_switched_legs : int;
  frag_events : int;            (** engine events fired, both runs together *)
}

val ablation_fragmentation :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int ->
  ?classifier:Pktsim.classifier -> unit -> frag_stats
(** Packet-level run quantifying Sec. III.E.  [classifier] as in
    {!ablation_cache}. *)

type failure_report = {
  failed_mbox : int;                  (** the killed middlebox (most-loaded IDS) *)
  failed_nf : Policy.Action.nf;
  before_max : float;                 (** max load of that type before failure *)
  failover_max : float;               (** local fast failover, stale weights *)
  reoptimized_max : float;            (** controller re-ran candidates + LP *)
  reoptimized_lambda : float;
  hp_failover_max : float;            (** hot-potato under the same failure *)
  survivors : int;                    (** remaining boxes of that type *)
  fail_events : int;                  (** flow-level events, all four runs *)
}

val ablation_failure :
  ?scenario:scenario -> ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int ->
  unit -> failure_report
(** Dependability experiment: kill the most-loaded IDS middlebox and
    compare local fast failover (stale LP weights renormalised over
    the survivors) against full controller re-optimization, with
    hot-potato as the baseline.  Every packet keeps being enforced —
    the chain is never skipped. *)

type chaos_row = {
  chaos_mode : string;       (** "HP+failover", "LB+failover", "LB, no failover" *)
  chaos_delay : float;       (** detection delay; infinity on the no-failover row *)
  chaos_injected : int;
  chaos_delivered : int;
  chaos_dropped : int;
  chaos_violations : int;    (** packets that escaped their enforcement chain *)
  chaos_retries : int;       (** control-packet retransmissions *)
  chaos_recovery : float;
      (** time from the crash to the last policy violation — how long
          the system bled before failover absorbed the fault *)
  chaos_max_surviving : float;
      (** max per-box load among the victim's surviving peers *)
  chaos_events_processed : int;
  chaos_audit : int option;
      (** invariant violations found by the online audit
          ({!Pktsim.config.audit}); [None] when auditing was off *)
}

type chaos_report = {
  chaos_victim : int;            (** the crashed middlebox (busiest IDS) *)
  chaos_victim_nf : Policy.Action.nf;
  chaos_crash_at : float;        (** crash time (the victim never recovers) *)
  chaos_link : (int * int) option; (** gateway-core link failed mid-run *)
  chaos_link_fail_at : float;
  chaos_link_restore_at : float;
  chaos_control_loss : float;    (** control-packet loss probability applied *)
  chaos_probe_events : int;      (** engine events of the fault-free probe *)
  chaos_rows : chaos_row list;
}

val ablation_chaos :
  ?flows:int ->
  ?seed:int ->
  ?audit:bool ->
  ?detection_delays:float list ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  chaos_report
(** ABL-CHAOS, the packet-level dependability experiment: one fault
    schedule — the busiest IDS box crashes at 25% of the horizon and
    never recovers, a gateway-core link fails at 45% and is restored at
    65% (OSPF reconverging live both times), and 2% of control packets
    are lost (masked by retransmission) — replayed under HP+failover
    and LB+failover for each detection delay, plus an LB row with
    failover disabled.  Violations stop once the detector flips
    (recovery time tracks the detection delay), and LB spreads the
    orphaned load across survivors where HP dumps it on the next
    closest box.  Same seed + same schedule ⇒ bit-identical report.
    Defaults: 500 flows, delays [2; 10; 40].  [audit] runs every row
    under the online invariant audit ({!Pktsim.config.audit}). *)

type live_row = {
  live_loss : float;       (** control-packet loss probability of this row *)
  live_injected : int;
  live_delivered : int;
  live_violations : int;   (** mixed-version or fault-induced escapes; expect 0 *)
  live_versions : int;     (** configuration versions published *)
  live_pushes : int;       (** config-push transmissions, retries included *)
  live_acks : int;
  live_lost : int;         (** config/ack transmissions lost *)
  live_degraded : int;     (** degradations to last-known-good *)
  live_stale : int;        (** devices below the final version at run end *)
  live_bytes : int;        (** config bytes on the wire *)
  live_max_load : float;   (** busiest-middlebox load under live updates *)
  live_events_processed : int;
  live_audit : int option;
      (** invariant violations found by the online audit
          ({!Pktsim.config.audit}); [None] when auditing was off *)
}

type live_device = {
  dev_name : string;   (** "proxyN" / "mboxN" *)
  dev_version : int;   (** installed config version at run end *)
  dev_lag : int;       (** final version minus installed *)
  dev_retries : int;   (** control retransmissions attributed to it *)
  dev_lost : int;      (** control transmissions to/from it lost *)
}

type live_report = {
  live_epoch : float;           (** epoch interval used (horizon / 5) *)
  live_reconcile : float;       (** reconcile interval used (epoch / 4) *)
  live_stale_max : float;       (** hot-potato, no live loop — the floor *)
  live_clairvoyant_max : float; (** LB on the full matrix — the target *)
  live_probe_events : int;      (** engine events of the two probe runs *)
  live_rows : live_row list;
  live_devices : live_device list; (** per-device view of the lossiest row *)
}

val ablation_live :
  ?flows:int ->
  ?seed:int ->
  ?audit:bool ->
  ?control_losses:float list ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  live_report
(** ABL-LIVE, the live-reconfiguration experiment: start every run on
    the stale hot-potato plan, enable the in-run control plane
    ({!Pktsim.config.live}) with epochs spread across the traffic
    window, and sweep the control-channel loss probability.  At every
    loss rate the measurement-driven re-optimizations walk the busiest
    middlebox's load from the hot-potato floor toward the clairvoyant
    load-balanced target; acked, retried, reconciled pushes get every
    device to the final version even under 10% loss, and version-mixing
    never produces a policy violation.  Same seed ⇒ bit-identical
    report.  Defaults: 500 flows, losses [0; 0.02; 0.10].  [audit]
    runs every row under the online invariant audit
    ({!Pktsim.config.audit}). *)

type quorum_row = {
  qr_scenario : string; (** "leader crash" / "split brain" / "quorum loss" *)
  qr_loss : float;      (** control-channel loss probability of the row *)
  qr_injected : int;
  qr_delivered : int;
  qr_violations : int;  (** policy violations on the data plane *)
  qr_versions : int;    (** configuration versions committed and published *)
  qr_rounds : int;      (** quorum rounds started *)
  qr_commits : int;     (** rounds that reached quorum *)
  qr_aborts : int;      (** rounds abandoned (minority side, loss, superseded) *)
  qr_msgs : int;        (** proposal/vote/commit-notice transmissions *)
  qr_lost : int;        (** of those, lost to the control channel *)
  qr_elections : int;   (** leader re-elections *)
  qr_degraded : int;    (** degradations to last-known-good *)
  qr_stale : int;       (** devices below the final version at run end *)
  qr_uncommitted : int;
      (** versions published without a quorum commit — the headline
          safety number; always 0 *)
  qr_replicas : int list; (** per-replica committed version at run end *)
  qr_events_processed : int;
  qr_audit : int option;
      (** invariant violations found by the online audit; [None] when
          auditing was off *)
}

type quorum_report = {
  q_replicas : int;      (** replica count (3, majority quorum) *)
  q_epoch : float;       (** epoch interval used (horizon / 5) *)
  q_reconcile : float;   (** reconcile interval used (epoch / 4) *)
  q_crash_at : float;    (** leader-crash time (30% of the horizon) *)
  q_partition_at : float; (** split-brain partition time (35%) *)
  q_heal_at : float;     (** partition heal time (70%) *)
  q_leader_router : int; (** the lead replica's attachment router *)
  q_probe_events : int;  (** engine events of the fault-free probe *)
  q_rows : quorum_row list;
}

val ablation_quorum :
  ?flows:int ->
  ?seed:int ->
  ?audit:bool ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  quorum_report
(** ABL-QUORUM, the replicated-controller experiment: three replicas
    with a majority quorum run the live control plane from a stale
    hot-potato start, under three chaos scenarios — (1) the lead
    replica crashes mid-run and a standby is deterministically
    re-elected one detection delay later; (2) a split-brain partition
    isolates the leader on the minority side, whose rounds abort
    without ever publishing, until the partition heals; (3) 45%
    control-packet loss stresses the propose/vote/commit retry
    ladders.  Every published version must have passed a quorum round
    ([qr_uncommitted] = 0 on every row), and no two replicas ever
    commit different configs for one version (the audit's
    quorum-agreement invariant).  [audit] runs every row under the
    online invariant audit.  Default 500 flows. *)

type corrupt_row = {
  cr_strategy : string;    (** "HP" / "LB" — the starting steering plan *)
  cr_rate : float;         (** corruption events per simulated time unit *)
  cr_sweep : float option; (** anti-entropy period; [None] = sweep disabled *)
  cr_injected : int;       (** packets admitted *)
  cr_delivered : int;
  cr_corruptions : int;    (** corruption events that actually mutated state *)
  cr_manifested : int;     (** corruptions the data plane observed pre-repair *)
  cr_detected : int;       (** digest mismatches the sweep found *)
  cr_repaired : int;       (** corruptions retired (scrub, overwrite, re-push) *)
  cr_violations : int;     (** data-plane policy violations (mis-steered,
                               bypassed or lost-unenforced packets) *)
  cr_window_mean : float;  (** mean inject-to-repair window *)
  cr_window_max : float;   (** worst inject-to-repair window *)
  cr_sweep_rounds : int;
  cr_sweep_msgs : int;
  cr_sweep_bytes : int;    (** sweep wire overhead — the repair-traffic cost *)
  cr_events_processed : int;
  cr_audit : int option;
      (** invariant violations found by the online audit (Repair
          invariant included); [None] when auditing was off *)
}

type corrupt_report = {
  c_horizon : float;       (** probe-run horizon the burst is placed within *)
  c_epoch : float;         (** epoch interval used (horizon / 5) *)
  c_reconcile : float;     (** reconcile interval used (epoch / 4) *)
  c_default_sweep : float; (** the default enabled sweep period (horizon / 12) *)
  c_probe_events : int;
  c_rows : corrupt_row list;
}

val ablation_corrupt :
  ?flows:int ->
  ?seed:int ->
  ?audit:bool ->
  ?rates:float list ->
  ?sweep_periods:float option list ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  corrupt_report
(** ABL-CORRUPT, the silent-corruption experiment: inject a seeded,
    deterministic burst of soft-state corruptions — mis-steered and
    silently dropped label entries, poisoned flow-cache entries,
    silently lost config installs, resurrected stale entries
    ({!Fault.Schedule.corruption_events}) — into live-control-plane
    runs, and sweep corruption rate × anti-entropy period (including
    the sweep disabled) for both the HP and LB starting plans.  With
    the sweep on, every corruption that manifests is detected by a
    digest mismatch and repaired (scrubbed, re-pushed, or naturally
    overwritten) within two sweep periods — the audit's Repair
    invariant; with it off, manifested corruptions linger and
    violations accumulate.  The burst is a pure function of the seed
    and the probe horizon, so rows are comparable cell-by-cell and the
    report is bit-identical under [--jobs]/[--shards].  Defaults:
    500 flows, rates [0.1; 0.4], periods [disabled; horizon/12].
    [audit] runs every row under the online invariant audit. *)

type reopt_step = {
  rs_failed : int list;    (** failure set the chains re-optimized around *)
  rs_cold_pivots : int;    (** simplex pivots of the cold two-phase solve *)
  rs_warm_pivots : int;    (** pivots of the warm-started solve *)
  rs_cold_lambda : float;
  rs_warm_lambda : float;
  rs_warm_used : bool;     (** the warm basis carried the solve *)
  rs_fallback : bool;      (** the warm chain fell back to the cold path *)
  rs_agree : bool;
      (** |λ_warm − λ_cold| ≤ 1e-6·max(1, |λ_cold|) — the differential
          oracle CI checks on every step *)
}

val reopt_replay :
  scenario -> ?flows:int -> ?seed:int -> unit -> reopt_step list
(** Controller-level churn replay, the differential core of ABL-REOPT:
    starting from one load-balanced configuration, two chains
    re-optimize through the same failure-set sequence — no change, one
    crash, a second concurrent crash, staged recovery, and a final
    no-change step — one chain cold ([use_warm:false]) and one
    incremental ([use_warm:true], candidate patching + LP basis reuse
    threaded step to step).  Per step it records both pivot counts and
    both optima; the no-change steps must warm-solve in exactly zero
    pivots, and every step's optima must agree within tolerance.
    Deterministic: a pure function of (scenario, flows, seed). *)

type reopt_row = {
  rp_scenario : string;   (** "campus" / "waxman" *)
  rp_routers : int;       (** topology size (routers) *)
  rp_warm : bool;         (** this row ran with [live.warm_start] *)
  rp_reopts : int;        (** configuration versions published in-run *)
  rp_pivots : int;        (** simplex pivots across every in-run re-solve *)
  rp_phase1 : int;        (** of those, phase-1 (and drive-out) pivots *)
  rp_warm_used : int;     (** re-solves carried by a warm basis *)
  rp_fallback : int;      (** re-solves that fell back to the cold path *)
  rp_injected : int;
  rp_delivered : int;
  rp_violations : int;    (** policy violations; expect 0 *)
  rp_versions : int;
  rp_degraded : int;      (** degradations to last-known-good *)
  rp_max_load : float;    (** busiest-middlebox load at run end *)
  rp_events_processed : int;
  rp_audit : int option;
      (** invariant violations found by the online audit
          ({!Pktsim.config.audit}); [None] when auditing was off *)
}

type reopt_scenario_info = {
  ri_name : string;
  ri_routers : int;
  ri_epoch : float;          (** epoch interval used (horizon / 10) *)
  ri_reconcile : float;      (** reconcile interval used (epoch / 4) *)
  ri_victims : int * int;    (** (IDS box, FW box) crashed and recovered *)
  ri_crash1 : float;         (** first crash (15% of the horizon) *)
  ri_recover1 : float;       (** first recovery (35%) *)
  ri_crash2 : float;         (** second crash (45%) *)
  ri_recover2 : float;       (** second recovery (65%) *)
  ri_probe_events : int;     (** engine events of the fault-free probe *)
}

type reopt_report = {
  rp_control_loss : float;   (** control-packet loss applied to every row *)
  rp_infos : reopt_scenario_info list;
  rp_rows : reopt_row list;  (** scenario × \{cold, warm\} packet-level runs *)
  rp_replays : (string * reopt_step list) list;
      (** per-scenario controller-level differential replay *)
  rp_agree : int;            (** replay steps whose optima agree *)
  rp_total : int;            (** replay steps checked *)
}

val ablation_reopt :
  ?flows:int ->
  ?seed:int ->
  ?audit:bool ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  reopt_report
(** ABL-REOPT, the incremental re-optimization experiment: on both
    topologies, a live-control-plane run with middlebox churn — an IDS
    box crashes at 15% of the horizon and recovers at 35%, an FW box
    crashes at 45% and recovers at 65%, under 2% control loss — is
    replayed twice, identical except for {!Pktsim.live_config}'s
    [warm_start] flag.  The cold row re-solves every in-run LP from
    scratch; the warm row patches candidate sets in place and
    warm-starts each solve from the previous plan's basis, so its
    total pivot count is strictly smaller while packets, violations,
    versions and loads stay comparable (the plans are equal optima,
    not necessarily identical vertices).  A controller-level
    {!reopt_replay} rides along as the differential oracle: warm and
    cold optima must agree on every step ([rp_agree] = [rp_total]).
    Cold rows are bit-identical to runs of builds without warm-start
    support.  Defaults: 500 flows, seed 17.  [audit] runs both rows
    under the online invariant audit ({!Pktsim.config.audit}). *)

type sketch_point = {
  epsilon : float;
  sketch_cells : int;       (** counters across all proxy sketches *)
  exact_cells : int;        (** non-zero (s,d,p) cells in the exact matrix *)
  exact_lambda : float;
  sketched_lambda : float;  (** LP optimum planned on sketched volumes *)
  exact_realized_max : float;   (** realised max load, exact-planned weights *)
  sketched_realized_max : float;
}

type sketch_sweep = { sk_points : sketch_point list; sk_events : int }

val ablation_sketch :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int -> unit -> sketch_sweep
(** Count-Min measurement ablation: plan the LB weights on sketched
    traffic matrices of decreasing resolution and compare both the LP
    optimum and the realised maximum load against exact measurement. *)

type latency_report = {
  enforced_mean : float;
  enforced_p50 : float;
  enforced_p99 : float;
  plain_mean : float;      (** same traffic, empty policy table *)
  plain_p50 : float;
  plain_p99 : float;
  mean_overhead : float;   (** enforced_mean / plain_mean *)
  events_processed : int;  (** engine events fired, both runs together *)
  router_hops : int;       (** hops fast-forwarded, both runs together *)
}

val ablation_latency :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int -> unit -> latency_report
(** Packet-level end-to-end latency with and without enforcement —
    the time cost of the middlebox detours (campus, LB strategy). *)

type queue_report = {
  service_rate : float;       (** packets per time unit per middlebox *)
  hp_util_max : float;        (** busiest-middlebox utilisation under HP *)
  lb_util_max : float;
  hp_latency_mean : float;
  hp_latency_p99 : float;
  lb_latency_mean : float;
  lb_latency_p99 : float;
  events_processed : int;  (** engine events fired, all three runs together *)
  router_hops : int;       (** hops fast-forwarded, all three runs together *)
}

val ablation_queue :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int -> unit -> queue_report
(** Queueing ablation: give every middlebox a finite service rate
    (auto-calibrated so the load-balanced plan keeps the busiest box
    at ~50% utilisation) and measure end-to-end latency under HP vs
    LB.  Hot-potato's overloaded boxes show up as a latency tail —
    the user-visible cost of load imbalance. *)

type lp_compare = {
  exact_lambda : float;
  exact_vars : int;
  exact_constraints : int;
  exact_realized : float;
  exact_weight_rows : int;
  simplified_lambda : float;
  simplified_vars : int;
  simplified_constraints : int;
  simplified_realized : float;
  simplified_weight_rows : int;
  lp_events : int;  (** flow-level events, both realisation runs *)
}

val ablation_lp :
  ?flows:int -> ?seed:int -> ?jobs:int -> ?shards:int -> unit -> lp_compare
(** Eq. (1) vs Eq. (2) on a small campus instance, compared end to end:
    LP size, optimum, *realised* max load enforcing each formulation's
    weights (Eq. (1) uses the per-(s,d) rows), and the configuration
    rows each must disseminate. *)
