lib/core/candidate.mli: Deployment Mbox Policy
