lib/mbox/entity.mli: Format
