(** Workload generation (Sec. IV.A).

    Three policy classes, mirroring the evaluation settings:
    - many-to-one: wildcard source -> one subnet, random service port,
      chain FW -> IDS (protect a service from external threats);
    - one-to-many: one subnet -> wildcard destination, port 80, chain
      FW -> IDS -> WP, plus a companion many-to-one return policy
      (WP -> IDS -> FW on sport 80), present in the policy list even
      though the generator does not emit return traffic for it;
    - one-to-one: one subnet -> another subnet, random service port,
      chain IDS -> TM (investigate a suspicious pair).

    Flows are split evenly across the three classes; sizes follow a
    truncated power law on [1, 5000] packets calibrated so that 30k
    flows total ~1M packets (the paper's 1M-10M range over 30k-300k
    flows).  Packet sizes are trimodal (40 B ACKs, 576 B legacy, 1500 B
    full) — relevant only to the fragmentation ablation.

    Every flow's matching rule is resolved against the *ordered
    network-wide policy list* with first-match semantics, exactly as a
    policy proxy would; a flow aimed at class X that happens to match
    an earlier rule is accounted to that earlier rule. *)

type policy_class = Many_to_one | One_to_many | One_to_one

val class_chain : policy_class -> Policy.Action.t
val class_name : policy_class -> string

type flow_spec = {
  id : int;
  flow : Netpkt.Flow.t;
  src_proxy : int;
  dst_proxy : int;
  rule_id : int option;       (** first-matching rule, [None] = no policy *)
  intended_class : policy_class;
  packets : int;
  packet_bytes : int;         (** bytes per packet, header included *)
}

type t = {
  rules : Policy.Rule.t list; (** the ordered network-wide policy list *)
  flows : flow_spec array;
  total_packets : int;
}

val generate_rules :
  deployment:Sdm.Deployment.t ->
  per_class:int ->
  rng:Stdx.Rng.t ->
  (Policy.Rule.t * policy_class option) list
(** The rule list with each rule's generating class ([None] for
    companion return policies).  Rule ids are list positions. *)

val generate :
  deployment:Sdm.Deployment.t ->
  ?per_class:int ->
  ?seed:int ->
  ?rule_seed:int ->
  ?class_mix:float * float * float ->
  flows:int ->
  unit ->
  t
(** [per_class] policies per class (default 5).  [seed] defaults to 42;
    the experiment entry points pass 17, a placement where every
    middlebox is reachable through some candidate set (chain-aware
    coverage, see DESIGN.md).  [rule_seed] (default [seed]) pins the
    policy set independently of the flow population.  [class_mix]
    weights the (many-to-one, one-to-many, one-to-one) class
    assignment — default exact thirds, as the paper specifies; the
    epoch-adaptation experiment rotates a skewed mix to model traffic
    drift. *)

val generate_seq :
  deployment:Sdm.Deployment.t ->
  ?per_class:int ->
  ?seed:int ->
  ?rule_seed:int ->
  ?class_mix:float * float * float ->
  flows:int ->
  emit:(flow_spec -> unit) ->
  unit ->
  Policy.Rule.t list * int
(** The streaming generator core behind {!generate}: the identical
    draw sequence (one sequential RNG across the population), but each
    flow is handed to [emit] in id order instead of being stored, so a
    multi-million-flow population never needs a materialised heap
    array.  Returns the rule list and the total packet count. *)

(** Packed per-flow state: the whole flow population in an off-heap
    [Bigarray] at 24 bytes per flow (vs ~120 heap bytes for the record
    pair), invisible to the GC and safely shared read-only across
    domains — the storage sharded runs iterate. *)
module Packed : sig
  type store = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type packed = {
    rules : Policy.Rule.t list;
    store : store;
    n_flows : int;
    total_packets : int;
  }

  val words_per_flow : int
  val bytes_per_flow : int

  val get : packed -> int -> flow_spec
  (** Decode flow [i]; a fresh short-lived record, bit-identical to
      [(generate ...).flows.(i)] (a test pins the round trip). *)

  val rule_of : packed -> flow_spec -> Policy.Rule.t option
end

val generate_packed :
  deployment:Sdm.Deployment.t ->
  ?per_class:int ->
  ?seed:int ->
  ?rule_seed:int ->
  ?class_mix:float * float * float ->
  flows:int ->
  unit ->
  Packed.packed
(** {!generate} streamed into a {!Packed} store: same parameters, same
    RNG sequence, same flows — but peak heap stays flat however large
    [flows] is. *)

val measure : t -> Sdm.Measurement.t
(** The traffic matrix T_{s,d,p} the proxies would report: per-flow
    packet counts accumulated on (source proxy, destination proxy,
    matched rule). *)

val rule_of : t -> flow_spec -> Policy.Rule.t option
