lib/stdx/heap.mli:
