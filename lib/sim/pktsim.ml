type table_source = Oracle | Distributed_ospf | Distributed_dvr

type config = {
  label_switching : bool;
  mtu : int;
  link_delay : float;
  packet_interval : float;
  start_window : float;
  cache_timeout : float;
  seed : int;
  table_source : table_source;
  service_rate : float;
  label_timeout : float;
  wp_cache_hit_ratio : float;
  cache_capacity : int option;
  ecmp : bool;
  faults : Fault.Schedule.t option;
  detection_delay : float;
  failover : bool;
  ctrl_retry_timeout : float;
  ctrl_max_retries : int;
}

let default_config =
  {
    label_switching = true;
    mtu = 1500;
    link_delay = 0.1;
    packet_interval = 1.0;
    start_window = 50.0;
    cache_timeout = 1e9;
    seed = 99;
    table_source = Oracle;
    service_rate = infinity;
    label_timeout = infinity;
    wp_cache_hit_ratio = 0.0;
    cache_capacity = None;
    ecmp = false;
    faults = None;
    detection_delay = 10.0;
    failover = true;
    ctrl_retry_timeout = 5.0;
    ctrl_max_retries = 3;
  }

type stats = {
  loads : float array;
  injected_packets : int;
  delivered_packets : int;
  dropped_packets : int;
  control_packets : int;
  multi_field_lookups : int;
  cache_hits : int;
  cache_negative_hits : int;
  tunneled_packets : int;
  label_switched_packets : int;
  fragments_created : int;
  router_hops : int;
  sim_time : float;
  latency_mean : float;  (* 0.0 when nothing was delivered *)
  latency_p50 : float;
  latency_p99 : float;
  label_misses : int;    (* label-switched packets hitting an expired entry *)
  teardowns : int;       (* teardown notifications back to proxies *)
  wp_cache_served : int; (* requests answered from the web proxy's cache *)
  cache_evictions : int; (* capacity-forced LRU evictions across all caches *)
  events_scheduled : int; (* engine events created over the whole run *)
  events_processed : int; (* engine events fired over the whole run *)
  policy_violations : int; (* enforced packets that escaped their chain *)
  fault_dropped : int;   (* packets lost to injected faults *)
  control_retries : int; (* control-packet retransmissions *)
  control_lost : int;    (* control-packet transmissions lost to faults *)
  last_violation_time : float; (* time of the last policy violation, 0 if none *)
}

type counters = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable control : int;
  mutable lookups : int;
  mutable cache_hits : int;
  mutable cache_negative_hits : int;
  mutable tunneled : int;
  mutable label_switched : int;
  mutable fragments : int;
  mutable hops : int;
  mutable label_misses : int;
  mutable teardowns : int;
  mutable wp_served : int;
  mutable violations : int;
  mutable fault_dropped : int;
  mutable retries : int;
  mutable ctrl_lost : int;
  mutable last_violation : float;
}

(* Messages on the wire: ordinary data packets, or the control packet
   the chain's last middlebox sends back to the proxy (Sec. III.E). *)
type msg =
  | Data of Netpkt.Packet.t * float (* packet, injection time *)
  | Control of { dst : Netpkt.Addr.t; flow : Netpkt.Flow.t }
  | Teardown of { dst : Netpkt.Addr.t; label : int }
      (* an expired label-switched path: the proxy must fall back to
         IP-over-IP and re-establish *)

(* Where a destination address lives: the attachment router plus the
   endpoint to hand the message to on arrival. *)
type endpoint = To_subnet of int | To_mbox of int

(* Live fault machinery for a run with a schedule: the ground-truth /
   believed-state failure detector, the RNG behind the loss draws, and
   (only when links fail mid-run) the OSPF session whose reconverged
   tables replace the world's on every topology change. *)
type fault_state = {
  detector : Fault.Detector.t;
  schedule : Fault.Schedule.t;
  loss_rng : Stdx.Rng.t;
  session : Ospf.Session.t option;
}

type world = {
  cfg : config;
  controller : Sdm.Controller.t;
  dep : Sdm.Deployment.t;
  engine : Dess.Engine.t;
  mutable tables : Netgraph.Routing.table array;
  mutable ecmp_tables : Netgraph.Routing.ecmp_table array option;
  fault : fault_state option;
  counters : counters;
  latencies : Stdx.Fvec.t; (* delivered-packet end-to-end times *)
  busy_until : float array; (* per-middlebox FIFO server horizon *)
  loads : float array;
  (* Per-proxy and per-middlebox soft state. *)
  proxy_caches : Policy.Flow_cache.t array;
  proxy_tries : Policy.Trie.t array;
  mutable_label : int array; (* next label per proxy *)
  (* reverse index: label -> flow, so a teardown (which carries only
     src|label) can find the proxy's flow-cache entry *)
  proxy_label_index : (int, Netpkt.Flow.t) Hashtbl.t array;
  mbox_caches : Policy.Flow_cache.t array;
  mbox_tries : Policy.Trie.t array;
  mbox_labels : Mbox.Label_table.t array;
  (* Address resolution (middleboxes by exact address; stub subnets
     via the deployment's prefix index). *)
  mbox_index : (Netpkt.Addr.t, int) Hashtbl.t;
  rule_by_id : (int, Policy.Rule.t) Hashtbl.t;
}

(* ---- Fault plumbing --------------------------------------------- *)

(* A packet of an enforced flow escaped its middlebox chain — the
   dependability metric ABL-CHAOS sweeps. *)
let policy_violation w =
  w.counters.violations <- w.counters.violations + 1;
  w.counters.last_violation <- Dess.Engine.now w.engine

let mbox_is_down w id =
  match w.fault with
  | Some f -> not (Fault.Detector.actually_up f.detector id)
  | None -> false

(* Steering decision under faults: with failover on, entities consult
   the failure detector's (delayed) view; with it off they keep using
   the static configuration.  The no-fault path calls the raising
   variant directly — candidate sets are non-empty by construction, so
   it cannot raise, and it skips all liveness filtering. *)
let controller_next_hop w entity ~rule ~nf flow =
  match w.fault with
  | None -> Ok (Sdm.Controller.next_hop w.controller entity ~rule ~nf flow)
  | Some f ->
    if w.cfg.failover then
      let now = Dess.Engine.now w.engine in
      Sdm.Controller.next_hop_result
        ~alive:(fun id -> Fault.Detector.believed_alive f.detector ~now id)
        w.controller entity ~rule ~nf flow
    else Sdm.Controller.next_hop_result w.controller entity ~rule ~nf flow

(* One Bernoulli draw per data packet per link crossed; control-packet
   loss is modelled at transmission granularity in [send_control]. *)
let link_lost w msg =
  match (w.fault, msg) with
  | Some f, Data _ when f.schedule.Fault.Schedule.link_loss > 0.0 ->
    Stdx.Rng.float f.loss_rng 1.0 < f.schedule.Fault.Schedule.link_loss
  | _ -> false

let drop_to_fault w =
  w.counters.dropped <- w.counters.dropped + 1;
  w.counters.fault_dropped <- w.counters.fault_dropped + 1

let resolve w addr =
  match Hashtbl.find_opt w.mbox_index addr with
  | Some id ->
    Some (w.dep.Sdm.Deployment.middleboxes.(id).Mbox.Middlebox.router, To_mbox id)
  | None -> (
    match Sdm.Deployment.proxy_of_addr w.dep addr with
    | Some p -> Some (p.Mbox.Proxy.router, To_subnet p.Mbox.Proxy.id)
    | None -> None)

let msg_dst = function
  | Data (pkt, _) -> pkt.Netpkt.Packet.header.Netpkt.Header.dst
  | Control { dst; _ } -> dst
  | Teardown { dst; _ } -> dst

(* Count the fragments a data packet would shatter into when it first
   hits a link; the logical packet keeps travelling whole (tunnel
   endpoints would reassemble anyway), only the statistic records the
   overhead label switching exists to avoid. *)
let note_fragments w = function
  | Data (pkt, _) ->
    w.counters.fragments <-
      w.counters.fragments
      + (Netpkt.Fragment.count ~mtu:w.cfg.mtu (Netpkt.Packet.size pkt) - 1)
  | Control _ | Teardown _ -> ()

(* Figure 3: a web proxy holding the requested page "honors" the
   request — the packet stops here and a response goes back, skipping
   the rest of the chain and the origin server.  The decision must be
   per-flow sticky across tunnelled and label-switched packets, so it
   hashes the fields both forms share: source address and label when
   present, the full 5-tuple otherwise. *)
let wp_serves_from_cache w (mb : Mbox.Middlebox.t) ~src ~label ~flow_hash =
  w.cfg.wp_cache_hit_ratio > 0.0
  && Policy.Action.equal_nf mb.Mbox.Middlebox.nf Policy.Action.WP
  &&
  let h =
    match label with
    | Some l -> Stdx.Xhash.ints [ src; l; 0x77AC ]
    | None -> Stdx.Xhash.fold_int flow_hash 0x77AC
  in
  Stdx.Xhash.to_unit_interval h < w.cfg.wp_cache_hit_ratio

(* The cached response: modelled as immediate delivery back to the
   client (the reverse path carries no policy work in our classes). *)
let serve_from_cache w ~born =
  w.counters.wp_served <- w.counters.wp_served + 1;
  w.counters.delivered <- w.counters.delivered + 1;
  Stdx.Fvec.push w.latencies (Dess.Engine.now w.engine -. born)

(* Hop fast-forwarding: the routers between two policy decision points
   are policy-oblivious and their tables (and ECMP hash choices) are
   fixed for the whole run, so transit is fully deterministic.  Instead
   of paying one event-queue cycle per router hop, walk the tables
   inline here and schedule a single arrival event at the segment's
   endpoint.  The arrival time accumulates [link_delay] by repeated
   addition — the same float operations the per-hop event cascade
   performed — so every timestamp, and hence every statistic, is
   bit-identical to per-hop execution. *)
let rec send w ~from_router msg =
  note_fragments w msg;
  match resolve w (msg_dst msg) with
  | None -> w.counters.dropped <- w.counters.dropped + 1
  | Some (target_router, endpoint) ->
    let rec walk router time =
      if router = target_router then begin
        if link_lost w msg then drop_to_fault w
        else
          ignore
            (Dess.Engine.schedule_at w.engine ~time:(time +. w.cfg.link_delay)
               (fun _ -> deliver w endpoint msg))
      end
      else
        match next_hop_for w ~router ~target_router msg with
        | None -> w.counters.dropped <- w.counters.dropped + 1
        | Some hop ->
          if link_lost w msg then drop_to_fault w
          else begin
            w.counters.hops <- w.counters.hops + 1;
            walk hop (time +. w.cfg.link_delay)
          end
    in
    walk from_router (Dess.Engine.now w.engine)

(* With ECMP enabled, routers spread flows over every shortest-path
   next hop by hashing stable header fields (plus the router id, so
   consecutive routers choose independently). *)
and next_hop_for w ~router ~target_router msg =
  match w.ecmp_tables with
  | None -> Netgraph.Routing.next_hop w.tables.(router) target_router
  | Some ecmp -> (
    match ecmp.(router).(target_router) with
    | [||] -> None
    | [| hop |] -> Some hop
    | hops ->
      let h =
        match msg with
        | Data (pkt, _) ->
          let hd = pkt.Netpkt.Packet.header in
          Stdx.Xhash.ints
            [ router; hd.Netpkt.Header.src; hd.Netpkt.Header.dst;
              hd.Netpkt.Header.sport; hd.Netpkt.Header.dport ]
        | Control { dst; _ } | Teardown { dst; _ } ->
          Stdx.Xhash.ints [ router; dst ]
      in
      Some hops.(Stdx.Xhash.to_range h (Array.length hops)))

(* Control-plane reliability (Sec. III.E under faults): label
   establishment and teardown notifications are retransmitted on a
   timer until acknowledged or out of retries.  The retransmission is
   modelled as firing only when the transmission was actually lost —
   receivers are idempotent, so suppressing the redundant duplicates a
   real timer would generate is observationally equivalent. *)
and send_control w ~from_router msg =
  control_attempt w ~from_router ~retries_left:w.cfg.ctrl_max_retries msg

and control_attempt w ~from_router ~retries_left msg =
  let lost =
    match w.fault with
    | Some f when f.schedule.Fault.Schedule.control_loss > 0.0 ->
      Stdx.Rng.float f.loss_rng 1.0 < f.schedule.Fault.Schedule.control_loss
    | _ -> false
  in
  if not lost then send w ~from_router msg
  else begin
    w.counters.ctrl_lost <- w.counters.ctrl_lost + 1;
    if retries_left > 0 then begin
      w.counters.retries <- w.counters.retries + 1;
      ignore
        (Dess.Engine.schedule w.engine ~delay:w.cfg.ctrl_retry_timeout (fun _ ->
             control_attempt w ~from_router ~retries_left:(retries_left - 1) msg))
    end
  end

and deliver w endpoint msg =
  match (endpoint, msg) with
  | To_subnet proxy_id, Data (pkt, born) ->
    (* Arrived in its stub network.  Encapsulated packets must not
       reach subnets; plain ones are final deliveries. *)
    if Netpkt.Packet.is_encapsulated pkt then
      w.counters.dropped <- w.counters.dropped + 1
    else begin
      ignore proxy_id;
      w.counters.delivered <- w.counters.delivered + 1;
      Stdx.Fvec.push w.latencies (Dess.Engine.now w.engine -. born)
    end
  | To_subnet proxy_id, Control { flow; _ } ->
    w.counters.control <- w.counters.control + 1;
    ignore (Policy.Flow_cache.mark_ls_ready w.proxy_caches.(proxy_id) flow)
  | To_subnet proxy_id, Teardown { label; _ } -> (
    (* A downstream label entry expired: drop back to IP-over-IP until
       a fresh first packet re-establishes the path. *)
    w.counters.teardowns <- w.counters.teardowns + 1;
    match Hashtbl.find_opt w.proxy_label_index.(proxy_id) label with
    | None -> ()
    | Some flow -> (
      let now = Dess.Engine.now w.engine in
      match Policy.Flow_cache.lookup w.proxy_caches.(proxy_id) ~now flow with
      | Some entry -> entry.Policy.Flow_cache.ls_ready <- false
      | None -> ()))
  | To_mbox id, Data (pkt, born) ->
    (* FIFO service: a busy middlebox queues the packet; the wait is
       end-to-end latency, which is how overload becomes visible. *)
    if w.cfg.service_rate = infinity then mbox_receive w id pkt ~born
    else begin
      let now = Dess.Engine.now w.engine in
      let start = Stdlib.max now w.busy_until.(id) in
      let depart = start +. (1.0 /. w.cfg.service_rate) in
      w.busy_until.(id) <- depart;
      ignore
        (Dess.Engine.schedule_at w.engine ~time:depart (fun _ ->
             mbox_receive w id pkt ~born))
    end
  | To_mbox _, (Control _ | Teardown _) ->
    w.counters.dropped <- w.counters.dropped + 1

(* ---- Middlebox data path ---------------------------------------- *)

and mbox_actions w id flow =
  (* Action list for a flow at a middlebox: flow cache first, then the
     local policy table (Sec. III.D applies to middleboxes too). *)
  let now = Dess.Engine.now w.engine in
  let cache = w.mbox_caches.(id) in
  match Policy.Flow_cache.lookup cache ~now flow with
  | Some { actions = Some a; rule_id; _ } ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    Some (a, rule_id)
  | Some { actions = None; _ } ->
    w.counters.cache_negative_hits <- w.counters.cache_negative_hits + 1;
    None
  | None -> (
    w.counters.lookups <- w.counters.lookups + 1;
    match Policy.Trie.first_match w.mbox_tries.(id) flow with
    | None ->
      ignore (Policy.Flow_cache.insert_negative cache ~now flow);
      None
    | Some rule ->
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:rule.Policy.Rule.actions ());
      Some (rule.Policy.Rule.actions, rule.Policy.Rule.id))

and mbox_receive w id pkt ~born =
  if mbox_is_down w id then begin
    (* Steered into a crashed middlebox (the detection window, or
       failover disabled): the packet is lost unenforced. *)
    drop_to_fault w;
    policy_violation w
  end
  else mbox_process w id pkt ~born

and mbox_process w id pkt ~born =
  let mb = w.dep.Sdm.Deployment.middleboxes.(id) in
  match Netpkt.Packet.decapsulate pkt with
  | Some inner -> (
    (* Tunnelled leg: strip the outer header, apply the function. *)
    w.counters.tunneled <- w.counters.tunneled + 1;
    w.loads.(id) <- w.loads.(id) +. 1.0;
    let flow = Netpkt.Packet.inner_flow pkt in
    let proxy_addr = pkt.Netpkt.Packet.header.Netpkt.Header.src in
    match mbox_actions w id flow with
    | None ->
      (* A tunnelled packet the middlebox cannot classify: forward the
         inner packet onward unprocessed. *)
      send w ~from_router:mb.Mbox.Middlebox.router (Data (inner, born))
    | Some (actions, rule_id) -> (
      let rule = Hashtbl.find w.rule_by_id rule_id in
      let label = inner.Netpkt.Packet.header.Netpkt.Header.label in
      if
        wp_serves_from_cache w mb ~src:flow.Netpkt.Flow.src ~label
          ~flow_hash:(Netpkt.Flow.hash flow)
      then serve_from_cache w ~born
      else
      match Policy.Action.next_after actions mb.Mbox.Middlebox.nf with
      | Some nf' -> (
        match
          controller_next_hop w (Mbox.Entity.Middlebox id) ~rule ~nf:nf' flow
        with
        | Error `No_live_candidate ->
          (* Every candidate for the rest of the chain is believed
             dead: degrade gracefully by dropping just this packet. *)
          w.counters.dropped <- w.counters.dropped + 1;
          policy_violation w
        | Ok y ->
          (match (label, w.cfg.label_switching) with
          | Some l, true ->
            Mbox.Label_table.insert w.mbox_labels.(id)
              ~now:(Dess.Engine.now w.engine)
              { Mbox.Label_table.src = flow.Netpkt.Flow.src; label = l }
              ~actions ~next:(Some y.Mbox.Middlebox.addr) ~final_dst:None
          | _ -> ());
          let outer =
            Netpkt.Packet.encapsulate ~src:proxy_addr ~dst:y.Mbox.Middlebox.addr
              inner
          in
          send w ~from_router:mb.Mbox.Middlebox.router (Data (outer, born)))
      | None ->
        (* Last function of the chain: restore normal routing and
           confirm the label-switched path to the proxy. *)
        (match (label, w.cfg.label_switching) with
        | Some l, true ->
          Mbox.Label_table.insert w.mbox_labels.(id)
            ~now:(Dess.Engine.now w.engine)
            { Mbox.Label_table.src = flow.Netpkt.Flow.src; label = l }
            ~actions ~next:None ~final_dst:(Some flow.Netpkt.Flow.dst);
          send_control w ~from_router:mb.Mbox.Middlebox.router
            (Control { dst = proxy_addr; flow })
        | _ -> ());
        send w ~from_router:mb.Mbox.Middlebox.router (Data (inner, born))))
  | None -> (
    (* No outer header: a label-switched packet addressed to us. *)
    match pkt.Netpkt.Packet.header.Netpkt.Header.label with
    | None -> w.counters.dropped <- w.counters.dropped + 1
    | Some l -> (
      let key =
        { Mbox.Label_table.src = pkt.Netpkt.Packet.header.Netpkt.Header.src;
          label = l }
      in
      match
        Mbox.Label_table.lookup w.mbox_labels.(id)
          ~now:(Dess.Engine.now w.engine) key
      with
      | None ->
        (* Expired (or never-installed) path: the packet cannot be
           forwarded — its original destination is unknown here — but
           the proxy is told to re-establish. *)
        w.counters.dropped <- w.counters.dropped + 1;
        w.counters.label_misses <- w.counters.label_misses + 1;
        (match
           Sdm.Deployment.proxy_of_addr w.dep
             pkt.Netpkt.Packet.header.Netpkt.Header.src
         with
        | Some p ->
          send_control w ~from_router:mb.Mbox.Middlebox.router
            (Teardown { dst = p.Mbox.Proxy.addr; label = l })
        | None -> () (* orphaned source: nothing to notify *))
      | Some entry ->
        w.counters.label_switched <- w.counters.label_switched + 1;
        w.loads.(id) <- w.loads.(id) +. 1.0;
        if
          wp_serves_from_cache w mb
            ~src:pkt.Netpkt.Packet.header.Netpkt.Header.src ~label:(Some l)
            ~flow_hash:0L
        then serve_from_cache w ~born
        else
        let header = pkt.Netpkt.Packet.header in
        let forward_to, strip =
          match (entry.Mbox.Label_table.next, entry.Mbox.Label_table.final_dst) with
          | Some next, None -> (next, false)
          | None, Some dst -> (dst, true)
          | _ -> assert false (* Label_table.insert forbids *)
        in
        let header = Netpkt.Header.with_dst header forward_to in
        let header = if strip then Netpkt.Header.clear_label header else header in
        send w ~from_router:mb.Mbox.Middlebox.router
          (Data ({ pkt with Netpkt.Packet.header }, born))))

(* ---- Proxy data path -------------------------------------------- *)

(* The proxy's decision for one outbound packet of [fs]. *)
let proxy_emit w (fs : Workload.flow_spec) =
  let proxy_id = fs.Workload.src_proxy in
  let proxy = w.dep.Sdm.Deployment.proxies.(proxy_id) in
  let now = Dess.Engine.now w.engine in
  let cache = w.proxy_caches.(proxy_id) in
  let flow = fs.Workload.flow in
  let header =
    Netpkt.Header.of_flow flow
  in
  let payload_bytes = max 0 (fs.Workload.packet_bytes - Netpkt.Header.size) in
  let plain = Netpkt.Packet.plain header ~payload_bytes in
  let entity = Mbox.Entity.Proxy proxy_id in
  let tunnel_first ~rule ~label =
    let nf = List.hd rule.Policy.Rule.actions in
    match controller_next_hop w entity ~rule ~nf flow with
    | Error `No_live_candidate ->
      (* Nowhere alive to start the chain: degrade gracefully by
         dropping the packet instead of aborting the run. *)
      w.counters.dropped <- w.counters.dropped + 1;
      policy_violation w
    | Ok mb ->
      let inner =
        match label with
        | Some l ->
          { plain with Netpkt.Packet.header = Netpkt.Header.with_label header l }
        | None -> plain
      in
      let outer =
        Netpkt.Packet.encapsulate ~src:proxy.Mbox.Proxy.addr
          ~dst:mb.Mbox.Middlebox.addr inner
      in
      send w ~from_router:proxy.Mbox.Proxy.router (Data (outer, now))
  in
  match Policy.Flow_cache.lookup cache ~now flow with
  | Some { actions = Some a; _ } when Policy.Action.is_permit a ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now))
  | Some ({ actions = Some _; rule_id; label; _ } as entry) ->
    w.counters.cache_hits <- w.counters.cache_hits + 1;
    let rule = Hashtbl.find w.rule_by_id rule_id in
    if entry.Policy.Flow_cache.ls_ready && w.cfg.label_switching then begin
      (* Established label-switched path: embed the label, address the
         packet straight to the first middlebox, no outer header. *)
      let nf = List.hd rule.Policy.Rule.actions in
      match controller_next_hop w entity ~rule ~nf flow with
      | Error `No_live_candidate ->
        w.counters.dropped <- w.counters.dropped + 1;
        policy_violation w
      | Ok mb ->
        let header =
          Netpkt.Header.with_dst
            (Netpkt.Header.with_label header (Option.get label))
            mb.Mbox.Middlebox.addr
        in
        send w ~from_router:proxy.Mbox.Proxy.router
          (Data ({ plain with Netpkt.Packet.header }, now))
    end
    else tunnel_first ~rule ~label
  | Some { actions = None; _ } ->
    w.counters.cache_negative_hits <- w.counters.cache_negative_hits + 1;
    send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now))
  | None -> (
    w.counters.lookups <- w.counters.lookups + 1;
    match Policy.Trie.first_match w.proxy_tries.(proxy_id) flow with
    | None ->
      ignore (Policy.Flow_cache.insert_negative cache ~now flow);
      send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now))
    | Some rule when Policy.Action.is_permit rule.Policy.Rule.actions ->
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:Policy.Action.permit ());
      send w ~from_router:proxy.Mbox.Proxy.router (Data (plain, now))
    | Some rule ->
      let label =
        if w.cfg.label_switching then begin
          let l = w.mutable_label.(proxy_id) land Netpkt.Header.max_label in
          w.mutable_label.(proxy_id) <- l + 1;
          Hashtbl.replace w.proxy_label_index.(proxy_id) l flow;
          Some l
        end
        else None
      in
      ignore
        (Policy.Flow_cache.insert cache ~now flow ~rule_id:rule.Policy.Rule.id
           ~actions:rule.Policy.Rule.actions ?label ());
      tunnel_first ~rule ~label)

(* ---- Fault-schedule execution ----------------------------------- *)

(* A mid-run topology change: swap in the OSPF session's reconverged
   tables (and, under ECMP, equal-cost tables recomputed on the
   surviving graph).  In-flight segments already scheduled keep their
   old paths — they were committed to the wire before the change. *)
let refresh_tables w session =
  w.tables <- Ospf.Session.tables session;
  match w.ecmp_tables with
  | None -> ()
  | Some _ ->
    w.ecmp_tables <-
      Some (Netgraph.Routing.build_all_ecmp (Ospf.Session.surviving_graph session))

let apply_fault w f what =
  let now = Dess.Engine.now w.engine in
  match what with
  | Fault.Schedule.Mbox_crash id ->
    Fault.Detector.crash f.detector ~now id;
    (* A crash loses the box's soft state: its flow cache and label
       table come back empty if the box ever recovers. *)
    w.mbox_caches.(id) <-
      Policy.Flow_cache.create ~timeout:w.cfg.cache_timeout
        ?capacity:w.cfg.cache_capacity ();
    w.mbox_labels.(id) <-
      Mbox.Label_table.create ~timeout:w.cfg.label_timeout ();
    w.busy_until.(id) <- now
  | Fault.Schedule.Mbox_recover id -> Fault.Detector.recover f.detector ~now id
  | Fault.Schedule.Link_fail (u, v) -> (
    match f.session with
    | Some s ->
      Ospf.Session.fail_link s u v;
      refresh_tables w s
    | None -> assert false (* session exists iff the schedule has link events *))
  | Fault.Schedule.Link_restore (u, v) -> (
    match f.session with
    | Some s ->
      Ospf.Session.recover_link s u v;
      refresh_tables w s
    | None -> assert false)

let run ?(config = default_config) ~controller ~workload () =
  let dep = controller.Sdm.Controller.deployment in
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
  let engine = Dess.Engine.create () in
  let mbox_index = Hashtbl.create 64 in
  Array.iter
    (fun (m : Mbox.Middlebox.t) -> Hashtbl.replace mbox_index m.addr m.id)
    dep.Sdm.Deployment.middleboxes;
  let rule_by_id = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace rule_by_id r.Policy.Rule.id r)
    controller.Sdm.Controller.rules;
  let entity_table entity =
    Policy.Trie.build (Sdm.Controller.policy_table_for controller entity)
  in
  let fault =
    match config.faults with
    | None -> None
    | Some schedule ->
      let session =
        (* Only pay for a live OSPF session when links actually change
           mid-run; pure middlebox faults leave routing alone. *)
        if Fault.Schedule.has_link_events schedule then
          Some (Ospf.Session.start dep.Sdm.Deployment.topo)
        else None
      in
      Some
        {
          detector =
            Fault.Detector.create ~n:n_mboxes ~delay:config.detection_delay;
          schedule;
          loss_rng = Stdx.Rng.create schedule.Fault.Schedule.loss_seed;
          session;
        }
  in
  let w =
    {
      cfg = config;
      controller;
      dep;
      engine;
      tables =
        (let topo = dep.Sdm.Deployment.topo in
         match config.table_source with
         | Oracle -> Netgraph.Routing.build_all topo.Netgraph.Topology.graph
         | Distributed_ospf -> (Ospf.Protocol.converge topo).Ospf.Protocol.tables
         | Distributed_dvr -> (Dvr.Protocol.converge topo).Dvr.Protocol.tables);
      ecmp_tables =
        (if config.ecmp then
           Some
             (Netgraph.Routing.build_all_ecmp
                dep.Sdm.Deployment.topo.Netgraph.Topology.graph)
         else None);
      counters =
        {
          injected = 0;
          delivered = 0;
          dropped = 0;
          control = 0;
          lookups = 0;
          cache_hits = 0;
          cache_negative_hits = 0;
          tunneled = 0;
          label_switched = 0;
          fragments = 0;
          hops = 0;
          label_misses = 0;
          teardowns = 0;
          wp_served = 0;
          violations = 0;
          fault_dropped = 0;
          retries = 0;
          ctrl_lost = 0;
          last_violation = 0.0;
        };
      latencies = Stdx.Fvec.create ();
      busy_until = Array.make n_mboxes 0.0;
      loads = Array.make n_mboxes 0.0;
      proxy_caches =
        Array.init n_proxies (fun _ ->
            Policy.Flow_cache.create ~timeout:config.cache_timeout
              ?capacity:config.cache_capacity ());
      proxy_tries =
        Array.init n_proxies (fun i -> entity_table (Mbox.Entity.Proxy i));
      mutable_label = Array.make n_proxies 0;
      mbox_caches =
        Array.init n_mboxes (fun _ ->
            Policy.Flow_cache.create ~timeout:config.cache_timeout
              ?capacity:config.cache_capacity ());
      mbox_tries =
        Array.init n_mboxes (fun i -> entity_table (Mbox.Entity.Middlebox i));
      mbox_labels =
        Array.init n_mboxes (fun _ ->
            Mbox.Label_table.create ~timeout:config.label_timeout ());
      proxy_label_index = Array.init n_proxies (fun _ -> Hashtbl.create 64);
      mbox_index;
      rule_by_id;
      fault;
    }
  in
  (* Schedule the fault events before the traffic so that a fault tied
     with a packet injection applies first (the engine breaks time ties
     in FIFO order). *)
  (match w.fault with
  | None -> ()
  | Some f ->
    List.iter
      (fun { Fault.Schedule.at; what } ->
        ignore
          (Dess.Engine.schedule_at w.engine ~time:at (fun _ ->
               apply_fault w f what)))
      f.schedule.Fault.Schedule.events);
  (* Inject flows: first packet at a jittered start, each subsequent
     packet scheduled by its predecessor (keeps the heap small). *)
  let rng = Stdx.Rng.create config.seed in
  Array.iter
    (fun (fs : Workload.flow_spec) ->
      let start = Stdx.Rng.float rng config.start_window in
      let rec packet_at i =
        if i < fs.Workload.packets then
          ignore
            (Dess.Engine.schedule_at w.engine
               ~time:(start +. (float_of_int i *. config.packet_interval))
               (fun _ ->
                 w.counters.injected <- w.counters.injected + 1;
                 proxy_emit w fs;
                 packet_at (i + 1)))
      in
      packet_at 0)
    workload.Workload.flows;
  Dess.Engine.run engine;
  let latency_mean, latency_p50, latency_p99 =
    let n = Stdx.Fvec.length w.latencies in
    if n = 0 then (0.0, 0.0, 0.0)
    else begin
      (* Sum newest delivery first: float addition is order-sensitive
         in the last ulp, and the regression oracles pin the mean this
         historical cons-list accumulation produced. *)
      let total = ref 0.0 in
      for i = n - 1 downto 0 do
        total := !total +. Stdx.Fvec.get w.latencies i
      done;
      match
        Stdx.Stats.percentiles (Stdx.Fvec.to_array w.latencies) [ 0.5; 0.99 ]
      with
      | [ p50; p99 ] -> (!total /. float_of_int n, p50, p99)
      | _ -> assert false
    end
  in
  {
    loads = w.loads;
    injected_packets = w.counters.injected;
    delivered_packets = w.counters.delivered;
    dropped_packets = w.counters.dropped;
    control_packets = w.counters.control;
    multi_field_lookups = w.counters.lookups;
    cache_hits = w.counters.cache_hits;
    cache_negative_hits = w.counters.cache_negative_hits;
    tunneled_packets = w.counters.tunneled;
    label_switched_packets = w.counters.label_switched;
    fragments_created = w.counters.fragments;
    router_hops = w.counters.hops;
    sim_time = Dess.Engine.now engine;
    latency_mean;
    latency_p50;
    latency_p99;
    label_misses = w.counters.label_misses;
    teardowns = w.counters.teardowns;
    wp_cache_served = w.counters.wp_served;
    cache_evictions =
      (let sum caches =
         Array.fold_left
           (fun acc c -> acc + (Policy.Flow_cache.stats c).Policy.Flow_cache.evictions)
           0 caches
       in
       sum w.proxy_caches + sum w.mbox_caches);
    events_scheduled = Dess.Engine.events_scheduled engine;
    events_processed = Dess.Engine.events_processed engine;
    policy_violations = w.counters.violations;
    fault_dropped = w.counters.fault_dropped;
    control_retries = w.counters.retries;
    control_lost = w.counters.ctrl_lost;
    last_violation_time = w.counters.last_violation;
  }
