(** Online invariant auditor for packet-simulator runs.

    Subscribes to the {!Event} stream [Sim.Pktsim] emits when audit
    mode is on and checks, per flow and per configuration epoch, the
    semantic invariants the paper's dependability claims rest on:

    - {b chain completeness} (Sec. III.D-III.E): every delivered
      packet of a policy-matching flow traversed middleboxes
      implementing its rule's action list, in order, under the
      configuration version that admitted it; a web-proxy cache
      response may cut the chain short only at the WP.
    - {b conservation}: every admitted packet reaches exactly one
      terminal fate (delivered, wp-served, dropped); bytes admitted
      equal bytes delivered; event-derived totals and per-middlebox
      packet counts agree with the simulator's own counters.
    - {b stickiness} (Sec. III.C): a flow's 5-tuple hash maps to one
      candidate per [M_x^e], per configuration version and per
      believed-liveness view.
    - {b table hygiene} (Sec. III.E + live reconfiguration): label
      entries are installed before use, version-tagged with the
      installing device's running version, and purged below
      [installed - 1] on a config install; label-switched admissions
      happen only on confirmed paths; installs never precede their
      publish or regress a device.
    - {b LB feasibility} (Sec. III.B): observed per-candidate splits
      of sufficiently large flow populations stay within the LP
      plan's probabilities, up to a [z]-sigma binomial tolerance.
    - {b quorum agreement} (replicated control plane): once any quorum
      event has been seen, no config version may be published without
      a preceding quorum commit; accepts and commits must reference a
      proposed (version, digest); no two replicas may commit different
      digests for the same version; and no replica's committed version
      may regress.  Streams without quorum events (single-controller
      runs) are exempt, so the pre-replication event protocol still
      audits clean.
    - {b corruption repair} (anti-entropy): armed by the first
      [Corrupt_inject].  Every injected corruption that manifests (its
      state influenced the data plane) must be repaired by the
      injector-announced deadline — [2 * sweep_period] past injection —
      and must never manifest again after its repair; a repair may only
      re-install a published version and never regress the device; a
      digest-mismatch detection without any injected corruption is
      itself a violation (the digests are supposed to be maintained
      exactly by legitimate mutations).  The injector's ground truth
      also makes the other invariants corruption-aware: a packet that
      hit corrupted state has its chain excused, a resurrected entry's
      label hits are manifestations rather than hygiene violations, and
      a silently regressed device may tag inserts one version behind
      until the re-install lands.

    Recording is pure bookkeeping: it never raises on a violation
    (violations are collected and reported), and it performs no
    randomness or simulation work, so audited runs stay bit-identical
    to unaudited ones in every other statistic. *)

type invariant =
  | Chain
  | Conservation
  | Stickiness
  | Hygiene
  | Feasibility
  | Quorum
  | Repair

val invariant_name : invariant -> string

type violation = {
  invariant : invariant;
  time : float;  (** simulated time; 0 for end-of-run checks *)
  detail : string;
  trace : string list;
      (** the offending packet's hop history, oldest first; empty when
          the violation is not packet-scoped *)
}

type totals = {
  injected : int;
  delivered : int;  (** simulator counter: final deliveries + wp-served *)
  dropped : int;
  wp_served : int;
  fragments : int;
  loads : float array;
}

type report = {
  events : int;
  packets : int;
  flows : int;
  delivered : int;
  dropped : int;
  wp_served : int;
  decisions : int;
  versions : int;  (** highest configuration version published *)
  feasibility_groups : int;
  violations : int;
  sample : violation list;  (** first [max_sample] violations *)
}

type t

val create :
  ?z:float ->
  ?min_samples:int ->
  ?max_sample:int ->
  controller:Sdm.Controller.t ->
  unit ->
  t
(** [z] (default 4.0) is the binomial tolerance width for feasibility;
    [min_samples] (default 64) the flow-population floor below which a
    steering group is too small to test; [max_sample] (default 32) how
    many violations keep their full detail in the report.  The
    controller is the version-0 configuration: its rules define the
    expected chains and its deployment sizes the device tables. *)

val register_config : t -> version:int -> Sdm.Controller.t -> unit
(** Give the auditor the configuration published as [version], so
    feasibility can be checked against the right plan.  Version 0 is
    registered by {!create}. *)

val record : t -> Event.t -> unit

val finalize : ?expect:totals -> t -> report
(** Run the end-of-run checks (packets still in flight, counter
    cross-validation against [expect], LB feasibility) and build the
    report. *)

val ok : report -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
