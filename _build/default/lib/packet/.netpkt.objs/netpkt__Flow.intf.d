lib/packet/flow.mli: Addr Format Hashtbl
