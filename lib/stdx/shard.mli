(** Deterministic flow-hash sharding.

    Assigns integer identities (flow ids, entity ids, work items) to
    one of [shards] owners by a seeded hash.  The assignment is a pure
    function of (seed, identity, shards) — built on {!Rng.derive}, so
    it inherits its order independence: it does not depend on how many
    identities were assigned before, on the order they are presented
    in, or on which domain evaluates it.  This is the partitioning
    contract intra-run sharding rests on: every shard can recompute
    ownership locally and exclusively own its identities' state, and a
    fixed shard-index merge of per-shard results is independent of
    scheduling. *)

val owner : seed:int -> shards:int -> int -> int
(** [owner ~seed ~shards id] is the owning shard of identity [id], in
    [\[0, shards)].  [shards = 1] always yields 0 (the unsharded
    path).  Raises [Invalid_argument] if [shards < 1] or [id < 0]. *)

val partition :
  seed:int -> shards:int -> key:('a -> int) -> 'a array -> 'a array array
(** Stable partition by {!owner} of each element's [key]: result
    [(s)] holds shard [s]'s elements in their input order.  Because
    ownership is a function of the key alone, permuting the input
    permutes each shard's contents identically — no element ever
    changes shard (a qcheck property pins this). *)

val indices : seed:int -> shards:int -> n:int -> int array array
(** [partition] specialised to the identity space [0..n-1] with
    [key = Fun.id]: shard [s]'s owned indices in ascending order.
    The common case for sharding an array by position. *)
