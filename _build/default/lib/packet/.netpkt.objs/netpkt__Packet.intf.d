lib/packet/packet.mli: Addr Flow Format Header
