(** Bounded power-law (truncated Pareto) sampling of integer sizes.

    The paper's workloads draw flow sizes "following a power law
    distribution in the range from 1 to 5000 packets" such that 30k
    flows total roughly 1M packets.  This module provides the sampler
    and a calibration routine that finds the Pareto exponent matching a
    target mean on a bounded support. *)

type t

val make : alpha:float -> lo:int -> hi:int -> t
(** Truncated continuous Pareto with density proportional to
    [x^-alpha] on [\[lo, hi\]], discretised by truncation.  Requires
    [alpha > 1.], [1 <= lo < hi]. *)

val sample : t -> Rng.t -> int
(** Draw one size in [\[lo, hi\]]. *)

val mean : t -> float
(** Analytical mean of the (continuous) truncated distribution. *)

val alpha : t -> float

val calibrate : lo:int -> hi:int -> mean:float -> t
(** [calibrate ~lo ~hi ~mean] finds by bisection the exponent whose
    truncated-Pareto mean equals [mean].  Raises [Invalid_argument] if
    the target mean is outside the achievable range. *)
