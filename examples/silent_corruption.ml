(* Silent state corruption and anti-entropy digest repair.

   The data plane's soft state — middlebox label tables, proxy flow
   caches, installed configuration versions — can rot silently: a bit
   flip rewrites a label entry's next hop, a lost write-back drops an
   entry, a cache line turns into a bogus negative, an acked config
   install never actually took, purged stale entries resurrect after a
   partition.  None of these produce an error; they manifest only as
   mis-steered, mis-dropped, or mis-admitted packets.

   Each device therefore maintains an order-independent XOR digest
   over its entries, updated incrementally by every legitimate
   mutation — silent corruption bypasses the maintenance and leaves
   the digest stale.  The live controller periodically sweeps the
   devices over the lossy control channel: a digest query, a
   recompute-and-compare on the device, a scrub of the entries whose
   stored checksums no longer match, and a version report that lets
   the controller catch silently regressed config installs and
   re-push them.

   Two audited runs over the same deterministic corruption burst:

   - sweep disabled: corruption festers until a legitimate overwrite,
     eviction, or crash happens to destroy it, and every traversal of
     a corrupted entry is a policy violation — a wrong-steer that
     redirects to an upstream hop can even create a transient
     forwarding loop, multiplying violations until the looped entries
     expire;
   - sweep enabled: every corruption is detected and repaired within
     two sweep periods, certified online by the audit's repair
     invariant.

     dune exec examples/silent_corruption.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows:300 () in
  let rules = workload.Sim.Workload.rules in
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  let n_mboxes = Array.length deployment.Sdm.Deployment.middleboxes in
  let hp =
    match Sdm.Controller.configure deployment ~rules Sdm.Controller.Hot_potato with
    | Ok c -> c
    | Error e -> failwith e
  in
  (* A fault-free probe fixes the horizon the corruption burst and the
     sweep cadence are placed within. *)
  let probe = Sim.Pktsim.run ~controller:hp ~workload () in
  let horizon = probe.Sim.Pktsim.sim_time in
  let sweep_period = horizon /. 12.0 in

  (* One deterministic burst — about 0.3 corruptions per simulated
     time unit, uniform over the five kinds — shared by both runs. *)
  let burst =
    Fault.Schedule.corruption_events ~seed:22 ~rate:0.3 ~horizon ~n_proxies
      ~n_mboxes
  in
  let faults = Fault.Schedule.make ~control_loss:0.02 ~loss_seed:20 burst in

  let run name sweep =
    let live =
      {
        Sim.Pktsim.default_live with
        epoch_interval = horizon /. 5.0;
        reconcile_interval = horizon /. 20.0;
        sweep_period = sweep;
      }
    in
    let s =
      Sim.Pktsim.run
        ~config:
          {
            Sim.Pktsim.default_config with
            faults = Some faults;
            live = Some live;
            audit = true;
          }
        ~controller:hp ~workload ()
    in
    Format.printf "%s:@." name;
    Format.printf
      "  corruptions: %d injected, %d manifested as wrong packets, %d \
       detected by digest, %d repaired@."
      s.Sim.Pktsim.corruptions_injected s.Sim.Pktsim.corruptions_manifested
      s.Sim.Pktsim.corruptions_detected s.Sim.Pktsim.corruptions_repaired;
    Format.printf "  policy violations: %d of %d delivered packets@."
      s.Sim.Pktsim.policy_violations s.Sim.Pktsim.delivered_packets;
    if s.Sim.Pktsim.sweep_rounds > 0 then
      Format.printf
        "  sweep: %d rounds, %d messages (%d lost), %d bytes of repair \
         traffic@."
        s.Sim.Pktsim.sweep_rounds s.Sim.Pktsim.sweep_msgs
        s.Sim.Pktsim.sweep_lost s.Sim.Pktsim.sweep_bytes;
    if s.Sim.Pktsim.corruptions_repaired > 0 then
      Format.printf
        "  inject-to-repair window: mean %.1f, max %.1f (bound %.1f)@."
        s.Sim.Pktsim.repair_window_mean s.Sim.Pktsim.repair_window_max
        (2.0 *. sweep_period);
    (match s.Sim.Pktsim.audit_report with
    | Some r ->
      Format.printf "  audit: %d events checked, %d violations@."
        r.Audit.Checker.events r.Audit.Checker.violations
    | None -> ());
    Format.printf "@."
  in

  Format.printf
    "campus topology, %d corruption events over horizon %.1f, 2%% control \
     loss@.@."
    (List.length burst) horizon;
  run "sweep disabled (corruption festers)" None;
  run
    (Printf.sprintf "anti-entropy sweep every %.1f" sweep_period)
    (Some sweep_period)
