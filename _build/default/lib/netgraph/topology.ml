type role = Gateway | Core | Edge

type t = { name : string; graph : Graph.t; roles : role array }

let make ~name ~graph ~roles =
  if Array.length roles <> Graph.node_count graph then
    invalid_arg "Topology.make: roles length mismatch";
  if not (Graph.is_connected graph) then
    invalid_arg "Topology.make: graph must be connected";
  { name; graph; roles }

let ids_with t r =
  let acc = ref [] in
  for i = Array.length t.roles - 1 downto 0 do
    if t.roles.(i) = r then acc := i :: !acc
  done;
  !acc

let gateways t = ids_with t Gateway
let cores t = ids_with t Core
let edges t = ids_with t Edge

let role t i = t.roles.(i)

let role_to_string = function
  | Gateway -> "gateway"
  | Core -> "core"
  | Edge -> "edge"

let pp ppf t =
  Format.fprintf ppf "%s: %a (%d gw, %d core, %d edge)" t.name Graph.pp t.graph
    (List.length (gateways t))
    (List.length (cores t))
    (List.length (edges t))
