lib/netgraph/dijkstra.mli: Graph
