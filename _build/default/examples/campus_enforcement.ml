(* Campus enforcement: the paper's motivating scenario end to end.

   The campus topology (2 gateways, 16 cores, 10 edge routers) with
   the evaluation's middlebox deployment; a realistic mixed workload
   across the three policy classes; all three enforcement strategies
   compared on per-type maximum load, load spread, and path stretch.

     dune exec examples/campus_enforcement.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  Format.printf "deployment: %a@." Netgraph.Topology.pp
    deployment.Sdm.Deployment.topo;
  Array.iter
    (fun (m : Mbox.Middlebox.t) -> Format.printf "  %a@." Mbox.Middlebox.pp m)
    deployment.Sdm.Deployment.middleboxes;

  let flows = 60_000 in
  let workload, runs =
    Sim.Experiment.run_strategies ~deployment ~flows ~seed:17 ()
  in
  Format.printf "@.workload: %d flows, %d packets, %d policies@." flows
    workload.Sim.Workload.total_packets
    (List.length workload.Sim.Workload.rules);
  List.iter
    (fun r -> Format.printf "  %a@." Policy.Rule.pp r)
    workload.Sim.Workload.rules;

  Format.printf "@.%-6s %-6s %12s %12s %12s %10s@." "strat" "type" "max" "min"
    "mean" "imbalance";
  List.iter
    (fun (r : Sim.Experiment.strategy_run) ->
      List.iter
        (fun nf ->
          let loads =
            Sim.Flowsim.loads_of_nf r.Sim.Experiment.controller
              r.Sim.Experiment.result nf
          in
          let s = Stdx.Stats.summarize loads in
          Format.printf "%-6s %-6s %12.0f %12.0f %12.0f %10.2f@."
            r.Sim.Experiment.strategy
            (Policy.Action.nf_to_string nf)
            s.Stdx.Stats.max s.Stdx.Stats.min s.Stdx.Stats.mean
            (s.Stdx.Stats.max /. s.Stdx.Stats.mean))
        (List.map fst Sim.Experiment.mbox_counts);
      Format.printf "%-6s stretch = %.2fx of shortest-path hops@.@."
        r.Sim.Experiment.strategy
        (Sim.Flowsim.stretch r.Sim.Experiment.result))
    runs;

  (* The LP's view of what it just balanced. *)
  let lb = List.find (fun r -> r.Sim.Experiment.strategy = "LB") runs in
  match lb.Sim.Experiment.controller.Sdm.Controller.lp with
  | Some lp ->
    Format.printf
      "LB linear program: %d variables, %d constraints, lambda = %.0f@."
      lp.Sdm.Lp_formulation.lp_vars lp.Sdm.Lp_formulation.lp_constraints
      lp.Sdm.Lp_formulation.lambda
  | None -> ()
