(* Tests for the stdx utility layer: RNG determinism and uniformity,
   power-law calibration, heap ordering, hashing, statistics. *)

let test_rng_determinism () =
  let a = Stdx.Rng.create 42 and b = Stdx.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stdx.Rng.int64 a) (Stdx.Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Stdx.Rng.create 1 and b = Stdx.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stdx.Rng.int64 a = Stdx.Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Stdx.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Stdx.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_float_bounds () =
  let rng = Stdx.Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Stdx.Rng.float rng 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_rng_uniformity () =
  (* Chi-squared-ish sanity: 10 buckets, 100k draws, each bucket
     within 5% of the expectation. *)
  let rng = Stdx.Rng.create 2024 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Stdx.Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 20 then
        Alcotest.failf "bucket count %d too far from %d" c expected)
    buckets

let test_rng_split_independent () =
  let parent = Stdx.Rng.create 5 in
  let child = Stdx.Rng.split parent in
  let c1 = Stdx.Rng.int64 child in
  let p1 = Stdx.Rng.int64 parent in
  Alcotest.(check bool) "values differ" true (c1 <> p1)

let test_rng_derive_stable () =
  (* derive is a pure function of (parent state, index): repeated
     derivations agree, and the parent's own stream is untouched. *)
  let parent = Stdx.Rng.create 42 in
  let witness = Stdx.Rng.copy parent in
  let a = Stdx.Rng.derive parent 3 and b = Stdx.Rng.derive parent 3 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same child stream" (Stdx.Rng.int64 a)
      (Stdx.Rng.int64 b)
  done;
  (* Interleave more derivations: still no effect on the parent. *)
  ignore (Stdx.Rng.derive parent 0);
  ignore (Stdx.Rng.derive parent 1000);
  for _ = 1 to 100 do
    Alcotest.(check int64) "parent not advanced" (Stdx.Rng.int64 witness)
      (Stdx.Rng.int64 parent)
  done

let test_rng_derive_order_independent () =
  (* The whole point vs [split]: the i-th child does not depend on how
     many other children were derived first. *)
  let p1 = Stdx.Rng.create 7 and p2 = Stdx.Rng.create 7 in
  ignore (Stdx.Rng.derive p2 0);
  ignore (Stdx.Rng.derive p2 1);
  ignore (Stdx.Rng.derive p2 2);
  let a = Stdx.Rng.derive p1 5 and b = Stdx.Rng.derive p2 5 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "index alone decides" (Stdx.Rng.int64 a)
      (Stdx.Rng.int64 b)
  done

let test_rng_derive_independent_streams () =
  (* Sibling children, and child vs parent, must look unrelated: over
     10k paired draws, agreement and simple lag-0 sign correlation both
     stay near chance. *)
  let checks =
    let parent = Stdx.Rng.create 2024 in
    [
      ("siblings 0/1", Stdx.Rng.derive parent 0, Stdx.Rng.derive parent 1);
      ("siblings 1/2", Stdx.Rng.derive parent 1, Stdx.Rng.derive parent 2);
      ("child vs parent", Stdx.Rng.derive parent 0, parent);
    ]
  in
  List.iter
    (fun (name, a, b) ->
      let n = 10_000 in
      let equal = ref 0 and same_sign = ref 0 in
      for _ = 1 to n do
        let x = Stdx.Rng.int64 a and y = Stdx.Rng.int64 b in
        if x = y then incr equal;
        if (x < 0L) = (y < 0L) then incr same_sign
      done;
      if !equal > 2 then Alcotest.failf "%s: %d equal draws" name !equal;
      (* Sign agreement is Binomial(10k, 1/2): 5 sigma ~ 250. *)
      if abs (!same_sign - (n / 2)) > 250 then
        Alcotest.failf "%s: sign correlation (%d/%d)" name !same_sign n)
    checks

let test_rng_derive_negative_raises () =
  let rng = Stdx.Rng.create 1 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: negative index") (fun () ->
      ignore (Stdx.Rng.derive rng (-1)))

let test_shuffle_permutation () =
  let rng = Stdx.Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Stdx.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Stdx.Rng.create 11 in
  let arr = Array.init 20 Fun.id in
  let s = Stdx.Rng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

let test_sample_too_many () =
  let rng = Stdx.Rng.create 11 in
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_without_replacement: k > length")
    (fun () -> ignore (Stdx.Rng.sample_without_replacement rng 3 [| 1; 2 |]))

let test_power_law_bounds () =
  let pl = Stdx.Power_law.make ~alpha:2.0 ~lo:1 ~hi:5000 in
  let rng = Stdx.Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Stdx.Power_law.sample pl rng in
    if v < 1 || v > 5000 then Alcotest.failf "sample out of range: %d" v
  done

let test_power_law_calibration () =
  (* The paper's workload: sizes in [1,5000], mean ~33.3 packets. *)
  let target = 1_000_000.0 /. 30_000.0 in
  let pl = Stdx.Power_law.calibrate ~lo:1 ~hi:5000 ~mean:target in
  Alcotest.(check (float 0.01)) "analytic mean" target (Stdx.Power_law.mean pl);
  let rng = Stdx.Rng.create 23 in
  let n = 200_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Stdx.Power_law.sample pl rng
  done;
  let empirical = float_of_int !total /. float_of_int n in
  (* Heavy tail: generous 15% tolerance on the empirical mean. *)
  if abs_float (empirical -. target) > 0.15 *. target then
    Alcotest.failf "empirical mean %.2f too far from %.2f" empirical target

let test_power_law_skew () =
  (* Power-law: the median must sit far below the mean. *)
  let pl = Stdx.Power_law.calibrate ~lo:1 ~hi:5000 ~mean:33.3 in
  let rng = Stdx.Rng.create 29 in
  let samples = Array.init 50_000 (fun _ -> float_of_int (Stdx.Power_law.sample pl rng)) in
  let median = Stdx.Stats.percentile samples 0.5 in
  Alcotest.(check bool) "median << mean" true (median < 10.0)

let test_heap_sorts () =
  let h = Stdx.Heap.create ~cmp:compare in
  let rng = Stdx.Rng.create 31 in
  let values = List.init 500 (fun _ -> Stdx.Rng.int rng 1000) in
  List.iter (Stdx.Heap.push h) values;
  Alcotest.(check int) "length" 500 (Stdx.Heap.length h);
  let drained = List.init 500 (fun _ -> Stdx.Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" (List.sort compare values) drained;
  Alcotest.(check bool) "empty" true (Stdx.Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Stdx.Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "peek empty" None (Stdx.Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Stdx.Heap.pop h);
  Stdx.Heap.push h 5;
  Stdx.Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Stdx.Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Stdx.Heap.length h)

let test_heap_to_sorted_list () =
  let h = Stdx.Heap.create ~cmp:compare in
  List.iter (Stdx.Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Stdx.Heap.to_sorted_list h);
  Alcotest.(check int) "non destructive" 3 (Stdx.Heap.length h)

let test_heap_pop_releases_slot () =
  (* The backing array must not retain popped elements: pop a boxed
     value, drop our own reference, and check a weak pointer to it is
     cleared by a full GC while the heap itself stays alive. *)
  let h = Stdx.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  let weak = Weak.create 3 in
  for i = 0 to 2 do
    let v = (i, ref i) in
    Weak.set weak i (Some v);
    Stdx.Heap.push h v
  done;
  (* Two pops leave one live element; a naive "overwrite with the old
     root" fix would still pin element 1 in the vacated slot. *)
  ignore (Stdx.Heap.pop_exn h);
  ignore (Stdx.Heap.pop_exn h);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped element 0 collected" false (Weak.check weak 0);
  Alcotest.(check bool) "popped element 1 collected" false (Weak.check weak 1);
  Alcotest.(check bool) "live element 2 retained" true (Weak.check weak 2);
  Alcotest.(check int) "heap still holds the survivor" 1 (Stdx.Heap.length h)

let qcheck_heap_property =
  QCheck.Test.make ~count:200 ~name:"heap drains any int list sorted"
    QCheck.(list int)
    (fun l ->
      let h = Stdx.Heap.create ~cmp:compare in
      List.iter (Stdx.Heap.push h) l;
      let drained = List.filter_map (fun _ -> Stdx.Heap.pop h) l in
      drained = List.sort compare l)

let qcheck_heap_interleaved =
  (* Heap-sort equivalence under interleaved push/pop: any mix of
     pushes and pops pops exactly the running minima a reference
     sorted-list model would — exercises the hole-insertion sifts from
     intermediate (not just freshly built) arrangements. *)
  QCheck.Test.make ~count:200 ~name:"heap matches sorted-list model under mixed ops"
    QCheck.(list (option int))
    (fun ops ->
      let h = Stdx.Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
            Stdx.Heap.push h x;
            model := List.sort compare (x :: !model);
            true
          | None -> (
            let got = Stdx.Heap.pop h in
            match (got, !model) with
            | None, [] -> true
            | Some v, m :: rest when v = m ->
              model := rest;
              true
            | _ -> false))
        ops
      && Stdx.Heap.to_sorted_list h = !model)

(* ---- Domain_pool -------------------------------------------------- *)

let test_domain_pool_ordered () =
  (* Positional results whatever the parallelism: result.(i) = f arr.(i). *)
  let arr = Array.init 257 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) arr in
  List.iter
    (fun jobs ->
      let got = Stdx.Domain_pool.map ~jobs (fun i -> i * i) arr in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        expected got)
    [ 1; 2; 8 ]

let test_domain_pool_empty_and_overprovisioned () =
  Alcotest.(check (array int)) "empty input" [||]
    (Stdx.Domain_pool.map ~jobs:8 (fun i -> i) [||]);
  (* More jobs than cells must neither hang nor duplicate work. *)
  Alcotest.(check (array int)) "jobs > cells" [| 10; 20 |]
    (Stdx.Domain_pool.map ~jobs:8 (fun i -> i * 10) [| 1; 2 |])

let test_domain_pool_exception_propagates () =
  (* A crashing job re-raises at the map call site (no hang), for both
     the sequential and the parallel path. *)
  List.iter
    (fun jobs ->
      match
        Stdx.Domain_pool.map ~jobs
          (fun i -> if i = 13 then failwith "boom" else i)
          (Array.init 64 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Failure" jobs
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "jobs=%d re-raises" jobs)
          "boom" msg)
    [ 1; 4 ]

let test_domain_pool_reuse () =
  (* One pool, several batches: workers survive between maps. *)
  let pool = Stdx.Domain_pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Stdx.Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "jobs" 4 (Stdx.Domain_pool.jobs pool);
      for round = 1 to 3 do
        let arr = Array.init 50 (fun i -> i + round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map succ arr)
          (Stdx.Domain_pool.map_pool pool succ arr)
      done)

let test_domain_pool_invalid_jobs () =
  Alcotest.check_raises "map jobs < 1"
    (Invalid_argument "Domain_pool.map: jobs must be >= 1") (fun () ->
      ignore (Stdx.Domain_pool.map ~jobs:0 Fun.id [| 1 |]));
  Alcotest.check_raises "create jobs < 1"
    (Invalid_argument "Domain_pool.create: jobs must be >= 1") (fun () ->
      ignore (Stdx.Domain_pool.create ~jobs:0 ()))

let test_xhash_deterministic () =
  Alcotest.(check int64) "stable string hash" (Stdx.Xhash.string "hello")
    (Stdx.Xhash.string "hello");
  Alcotest.(check bool) "different inputs differ" true
    (Stdx.Xhash.string "hello" <> Stdx.Xhash.string "hellp")

let test_xhash_unit_interval () =
  for i = 0 to 1000 do
    let u = Stdx.Xhash.to_unit_interval (Stdx.Xhash.ints [ i; i * 7 ]) in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "out of unit interval: %f" u
  done

let test_xhash_spread () =
  (* Hash values of consecutive ints should spread over buckets. *)
  let buckets = Array.make 16 0 in
  for i = 0 to 15_999 do
    let b = Stdx.Xhash.to_range (Stdx.Xhash.ints [ i ]) 16 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c -> if c < 700 || c > 1300 then Alcotest.failf "skewed bucket: %d" c)
    buckets

let test_xhash_fmix64_avalanche () =
  (* The murmur3 finalizer's contract: a single-bit input flip changes
     about half of the 64 output bits.  Raw FNV fails this badly for
     small integer inputs, which is why the state digests finalize. *)
  let popcount x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  Alcotest.(check int64) "zero is the fixed point" 0L (Stdx.Xhash.fmix64 0L);
  let n = 500 in
  let total = ref 0 in
  for i = 1 to n do
    let x = Int64.of_int (i * 2654435761) in
    let flipped = Int64.logxor x (Int64.shift_left 1L (i mod 64)) in
    total :=
      !total
      + popcount (Int64.logxor (Stdx.Xhash.fmix64 x) (Stdx.Xhash.fmix64 flipped))
  done;
  let mean = float_of_int !total /. float_of_int n in
  if mean < 28.0 || mean > 36.0 then
    Alcotest.failf "avalanche mean %.2f, expected ~32" mean

let qcheck_fmix64_injective =
  (* fmix64 is a bijection on int64: no two distinct inputs may ever
     collide (the digest's collision resistance leans on this). *)
  QCheck.Test.make ~count:500 ~name:"fmix64 never collides"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      a = b || Stdx.Xhash.fmix64 a <> Stdx.Xhash.fmix64 b)

let test_count_min_never_undercounts () =
  let cm = Stdx.Count_min.create ~epsilon:0.01 ~delta:0.01 () in
  let rng = Stdx.Rng.create 3 in
  let truth = Hashtbl.create 64 in
  for _ = 1 to 5_000 do
    let key = Int64.of_int (Stdx.Rng.int rng 500) in
    let v = float_of_int (1 + Stdx.Rng.int rng 10) in
    Stdx.Count_min.add cm key v;
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt truth key) in
    Hashtbl.replace truth key (prev +. v)
  done;
  Hashtbl.iter
    (fun key exact ->
      let est = Stdx.Count_min.estimate cm key in
      if est < exact -. 1e-9 then
        Alcotest.failf "undercount: key %Ld est %f exact %f" key est exact)
    truth

let test_count_min_error_bound () =
  let epsilon = 0.01 in
  let cm = Stdx.Count_min.create ~epsilon ~delta:0.01 () in
  let rng = Stdx.Rng.create 5 in
  let truth = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    let key = Int64.of_int (Stdx.Rng.int rng 2000) in
    Stdx.Count_min.add cm key 1.0;
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt truth key) in
    Hashtbl.replace truth key (prev +. 1.0)
  done;
  let budget = epsilon *. Stdx.Count_min.total cm in
  let violations = ref 0 and n = ref 0 in
  Hashtbl.iter
    (fun key exact ->
      incr n;
      if Stdx.Count_min.estimate cm key -. exact > budget then incr violations)
    truth;
  (* The bound holds per key with probability 1 - delta = 0.99. *)
  if float_of_int !violations > 0.05 *. float_of_int !n then
    Alcotest.failf "%d/%d estimates exceeded the CMS error bound" !violations !n

let test_count_min_unknown_key () =
  let cm = Stdx.Count_min.create () in
  Alcotest.(check (float 1e-9)) "empty sketch" 0.0
    (Stdx.Count_min.estimate cm 42L)

let test_count_min_rejects_negative () =
  let cm = Stdx.Count_min.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Count_min.add: value must be finite and non-negative")
    (fun () -> Stdx.Count_min.add cm 1L (-1.0))

let test_stats_summary () =
  let s = Stdx.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 s.Stdx.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stdx.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stdx.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stdx.Stats.max

let test_stats_percentile () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stdx.Stats.percentile samples 0.5);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stdx.Stats.percentile samples 1.0)

let test_stats_percentiles_batch () =
  (* The sort-once batch must agree exactly with individual calls. *)
  let rng = Stdx.Rng.create 41 in
  let samples = Array.init 317 (fun _ -> Stdx.Rng.float rng 100.0) in
  let qs = [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ] in
  let batch = Stdx.Stats.percentiles samples qs in
  List.iter2
    (fun q v ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.2f" q)
        (Stdx.Stats.percentile samples q)
        v)
    qs batch;
  Alcotest.(check (list (float 0.0))) "empty query list" []
    (Stdx.Stats.percentiles samples [])

let test_fvec_basic () =
  let v = Stdx.Fvec.create () in
  Alcotest.(check int) "empty" 0 (Stdx.Fvec.length v);
  Alcotest.(check (array (float 0.0))) "empty array" [||] (Stdx.Fvec.to_array v);
  (* Push past the initial capacity to exercise growth. *)
  for i = 0 to 99 do
    Stdx.Fvec.push v (float_of_int i)
  done;
  Alcotest.(check int) "length" 100 (Stdx.Fvec.length v);
  Alcotest.(check (float 0.0)) "get first" 0.0 (Stdx.Fvec.get v 0);
  Alcotest.(check (float 0.0)) "get last" 99.0 (Stdx.Fvec.get v 99);
  Alcotest.(check (array (float 0.0))) "insertion order"
    (Array.init 100 float_of_int)
    (Stdx.Fvec.to_array v);
  Alcotest.check_raises "oob"
    (Invalid_argument "Fvec.get: index out of bounds") (fun () ->
      ignore (Stdx.Fvec.get v 100));
  Stdx.Fvec.clear v;
  Alcotest.(check int) "cleared" 0 (Stdx.Fvec.length v);
  Stdx.Fvec.push v 7.0;
  Alcotest.(check (float 0.0)) "reusable after clear" 7.0 (Stdx.Fvec.get v 0)

let test_stats_imbalance () =
  Alcotest.(check (float 1e-9)) "balanced" 1.0 (Stdx.Stats.imbalance [| 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "skewed" 1.5 (Stdx.Stats.imbalance [| 1.0; 3.0 |])

let test_stats_single_sample () =
  (* One sample is every quantile and its own whole summary. *)
  let s = Stdx.Stats.summarize [| 42.0 |] in
  Alcotest.(check int) "count" 1 s.Stdx.Stats.count;
  Alcotest.(check (float 0.0)) "mean" 42.0 s.Stdx.Stats.mean;
  Alcotest.(check (float 0.0)) "stddev" 0.0 s.Stdx.Stats.stddev;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g" (100.0 *. q))
        42.0
        (Stdx.Stats.percentile [| 42.0 |] q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_stats_empty_raises () =
  Alcotest.check_raises "summarize"
    (Invalid_argument "Stats.summarize: empty input") (fun () ->
      ignore (Stdx.Stats.summarize [||]));
  Alcotest.check_raises "percentile"
    (Invalid_argument "Stats.percentile: empty input") (fun () ->
      ignore (Stdx.Stats.percentile [||] 0.5));
  Alcotest.check_raises "percentiles"
    (Invalid_argument "Stats.percentiles: empty input") (fun () ->
      ignore (Stdx.Stats.percentiles [||] [ 0.5 ]))

let test_stats_nan_guard () =
  let poisoned = [| 1.0; Float.nan; 3.0 |] in
  Alcotest.check_raises "summarize"
    (Invalid_argument "Stats.summarize: NaN sample") (fun () ->
      ignore (Stdx.Stats.summarize poisoned));
  Alcotest.check_raises "percentile"
    (Invalid_argument "Stats.percentile: NaN sample") (fun () ->
      ignore (Stdx.Stats.percentile poisoned 0.5));
  Alcotest.check_raises "percentiles"
    (Invalid_argument "Stats.percentiles: NaN sample") (fun () ->
      ignore (Stdx.Stats.percentiles poisoned [ 0.5 ]));
  (* Infinities stay legal: they order and summarize meaningfully. *)
  Alcotest.(check (float 0.0)) "infinite max" infinity
    (Stdx.Stats.percentile [| 1.0; infinity |] 1.0);
  Alcotest.(check (float 0.0)) "finite median" 1.0
    (Stdx.Stats.percentile [| 1.0; infinity |] 0.5)

let test_count_min_rejects_nonfinite () =
  let cm = Stdx.Count_min.create ~epsilon:0.1 ~delta:0.1 () in
  Stdx.Count_min.add cm 7L 3.0;
  let reject v =
    Alcotest.check_raises "non-finite"
      (Invalid_argument "Count_min.add: value must be finite and non-negative")
      (fun () -> Stdx.Count_min.add cm 7L v)
  in
  reject Float.nan;
  reject infinity;
  reject (-1.0);
  (* A rejected add leaves the sketch untouched. *)
  Alcotest.(check (float 0.0)) "total intact" 3.0 (Stdx.Count_min.total cm);
  Alcotest.(check (float 0.0)) "estimate intact" 3.0
    (Stdx.Count_min.estimate cm 7L)

(* ---- Shard -------------------------------------------------------- *)

let test_shard_owner_basic () =
  Alcotest.(check int) "one shard owns everything" 0
    (Stdx.Shard.owner ~seed:7 ~shards:1 123);
  for id = 0 to 999 do
    let s = Stdx.Shard.owner ~seed:42 ~shards:8 id in
    if s < 0 || s >= 8 then Alcotest.fail "owner out of range"
  done;
  Alcotest.(check int) "deterministic"
    (Stdx.Shard.owner ~seed:42 ~shards:8 555)
    (Stdx.Shard.owner ~seed:42 ~shards:8 555);
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard.owner: shards must be >= 1") (fun () ->
      ignore (Stdx.Shard.owner ~seed:1 ~shards:0 3));
  Alcotest.check_raises "negative identity"
    (Invalid_argument "Shard.owner: negative identity") (fun () ->
      ignore (Stdx.Shard.owner ~seed:1 ~shards:4 (-1)))

let test_shard_owner_spread () =
  (* With enough identities every shard of a small pool is hit — the
     hash actually spreads (a constant owner would type-check too). *)
  let counts = Array.make 4 0 in
  for id = 0 to 799 do
    let s = Stdx.Shard.owner ~seed:17 ~shards:4 id in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c = 0 then Alcotest.fail (Printf.sprintf "shard %d never hit" s))
    counts

let test_shard_partition_covers () =
  let arr = Array.init 500 (fun i -> i * 3) in
  let parts = Stdx.Shard.partition ~seed:5 ~shards:6 ~key:Fun.id arr in
  Alcotest.(check int) "six shards" 6 (Array.length parts);
  Alcotest.(check int) "covers input" (Array.length arr)
    (Array.fold_left (fun acc p -> acc + Array.length p) 0 parts);
  Array.iteri
    (fun s part ->
      Array.iter
        (fun x ->
          Alcotest.(check int) "element in its owner's shard" s
            (Stdx.Shard.owner ~seed:5 ~shards:6 x))
        part;
      (* The input was increasing, so a stable partition keeps each
         shard increasing too. *)
      Array.iteri
        (fun i x ->
          if i > 0 && x <= part.(i - 1) then
            Alcotest.fail "input order not preserved within shard")
        part)
    parts

let test_shard_indices_match_partition () =
  let idx = Stdx.Shard.indices ~seed:9 ~shards:3 ~n:100 in
  let part =
    Stdx.Shard.partition ~seed:9 ~shards:3 ~key:Fun.id (Array.init 100 Fun.id)
  in
  Alcotest.(check bool) "indices = partition of 0..n-1" true (idx = part)

let qcheck_shard_permutation_stable =
  (* Flow ownership is a function of (seed, key) alone, so permuting
     the input never moves an element across shards: per shard the two
     partitions hold the same element set, each in its own input order
     (the partition is stable). *)
  QCheck.Test.make ~count:200 ~name:"shard partition stable under permutation"
    QCheck.(pair small_nat (list small_nat))
    (fun (seed, keys) ->
      let keys = List.sort_uniq compare keys in
      let arr = Array.of_list keys in
      let rev = Array.of_list (List.rev keys) in
      let shards = 4 in
      let p1 = Stdx.Shard.partition ~seed ~shards ~key:Fun.id arr in
      let p2 = Stdx.Shard.partition ~seed ~shards ~key:Fun.id rev in
      let sorted p =
        Array.map (fun a -> List.sort compare (Array.to_list a)) p
      in
      sorted p1 = sorted p2
      && Array.for_all
           (fun a -> Array.to_list a = List.sort compare (Array.to_list a))
           p1
      && Array.for_all
           (fun a ->
             Array.to_list a
             = List.sort (fun x y -> compare y x) (Array.to_list a))
           p2)

(* ---- Non-allocating Xhash entry points ---------------------------- *)

(* The limbed combine* family must agree bit-for-bit with the boxed
   [ints] fold on arbitrary native ints (negatives included — sign
   extension is where a limb-carry bug would hide), because flow
   hashes feed seeded steering decisions the oracles pin. *)
let qcheck_combine_agreement =
  QCheck.Test.make ~count:1000 ~name:"combine2/3/5/7 agree with ints fold"
    QCheck.(tup7 int int int int int int int)
    (fun (a, b, c, d, e, f, g) ->
      Stdx.Xhash.combine2 a b = Stdx.Xhash.ints [ a; b ]
      && Stdx.Xhash.combine3 a b c = Stdx.Xhash.ints [ a; b; c ]
      && Stdx.Xhash.combine5 a b c d e = Stdx.Xhash.ints [ a; b; c; d; e ]
      && Stdx.Xhash.combine7 a b c d e f g
         = Stdx.Xhash.ints [ a; b; c; d; e; f; g ])

let qcheck_combine_unit_agreement =
  QCheck.Test.make ~count:1000
    ~name:"combine7_unit/score_unit agree with boxed pipeline"
    QCheck.(tup7 int int int int int int int)
    (fun (a, b, c, d, e, f, g) ->
      Stdx.Xhash.combine7_unit a b c d e f g
      = Stdx.Xhash.to_unit_interval (Stdx.Xhash.combine7 a b c d e f g)
      && Stdx.Xhash.score_unit (Stdx.Xhash.combine2 a b) g
         = Stdx.Xhash.to_unit_interval
             (Stdx.Xhash.fmix64 (Stdx.Xhash.fold_int (Stdx.Xhash.combine2 a b) g)))

(* ---- Flat_table --------------------------------------------------- *)

let test_flat_table_basics () =
  let t = Stdx.Flat_table.create ~initial:2 () in
  Alcotest.(check int) "empty" 0 (Stdx.Flat_table.length t);
  Alcotest.(check (option string)) "miss" None (Stdx.Flat_table.find t 1 2);
  Stdx.Flat_table.replace t 1 2 "a";
  Stdx.Flat_table.replace t 3 4 "b";
  Stdx.Flat_table.replace t 1 2 "a2";
  Alcotest.(check int) "two live" 2 (Stdx.Flat_table.length t);
  Alcotest.(check (option string)) "overwrite" (Some "a2")
    (Stdx.Flat_table.find t 1 2);
  let s = Stdx.Flat_table.find_slot t 1 2 in
  Alcotest.(check bool) "slot found" true (s >= 0);
  Alcotest.(check string) "value at slot" "a2" (Stdx.Flat_table.value t s);
  Alcotest.(check int) "key1 at slot" 1 (Stdx.Flat_table.key1 t s);
  Alcotest.(check int) "key2 at slot" 2 (Stdx.Flat_table.key2 t s);
  Stdx.Flat_table.set_value t s "a3";
  Alcotest.(check (option string)) "set_value" (Some "a3")
    (Stdx.Flat_table.find t 1 2);
  Alcotest.(check int) "absent slot" (-1) (Stdx.Flat_table.find_slot t 9 9);
  Stdx.Flat_table.remove t 9 9;
  Stdx.Flat_table.remove t 1 2;
  Alcotest.(check int) "one live" 1 (Stdx.Flat_table.length t);
  Alcotest.(check (option string)) "removed" None (Stdx.Flat_table.find t 1 2);
  Alcotest.check_raises "negative key"
    (Invalid_argument "Flat_table.replace: negative key") (fun () ->
      Stdx.Flat_table.replace t (-1) 0 "x")

(* Model test against [Hashtbl] over random op sequences.  Keys are
   drawn from a small range so the sequence revisits keys (overwrite
   and delete paths), and long insert runs cross resize boundaries;
   deletion-heavy mixes exercise backward-shift compaction.  Iteration
   must be insertion order of the live entries — the property seeded
   simulations lean on wherever iteration order is observable. *)
let qcheck_flat_table_model =
  let op =
    QCheck.(
      map
        (fun (k1, k2, v, kind) -> (k1, k2, v, kind))
        (tup4 (int_bound 31) (int_bound 7) small_nat (int_bound 9)))
  in
  QCheck.Test.make ~count:400 ~name:"flat table matches Hashtbl model"
    QCheck.(list op)
    (fun ops ->
      let t = Stdx.Flat_table.create ~initial:2 () in
      (* Model: value table plus insertion-order key list. *)
      let m = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun (k1, k2, v, kind) ->
          (* 0-2 = remove (deletion-heavy ~30%), else insert. *)
          if kind < 3 then begin
            Stdx.Flat_table.remove t k1 k2;
            Hashtbl.remove m (k1, k2);
            order := List.filter (fun k -> k <> (k1, k2)) !order
          end
          else begin
            Stdx.Flat_table.replace t k1 k2 v;
            if not (Hashtbl.mem m (k1, k2)) then order := !order @ [ (k1, k2) ];
            Hashtbl.replace m (k1, k2) v
          end)
        ops;
      Stdx.Flat_table.length t = Hashtbl.length m
      && List.for_all
           (fun ((k1, k2) as k) ->
             Stdx.Flat_table.find t k1 k2 = Hashtbl.find_opt m k
             && Stdx.Flat_table.mem t k1 k2)
           !order
      (* Probe a band of absent keys too. *)
      && List.for_all
           (fun k1 ->
             List.for_all
               (fun k2 ->
                 Stdx.Flat_table.mem t k1 k2 = Hashtbl.mem m (k1, k2))
               [ 0; 3; 7 ])
           [ 0; 5; 17; 31 ]
      (* Insertion-order iteration, fold and iter agreeing. *)
      && Stdx.Flat_table.fold (fun k1 k2 _ acc -> (k1, k2) :: acc) t []
         = List.rev !order
      &&
      let seen = ref [] in
      Stdx.Flat_table.iter (fun k1 k2 _ -> seen := (k1, k2) :: !seen) t;
      List.rev !seen = !order)

let test_flat_table_resize_boundary () =
  (* Straddle the power-of-two growth points exactly: after inserting
     n keys for n across a boundary, every key is still present with
     its latest value. *)
  let t = Stdx.Flat_table.create ~initial:2 () in
  for i = 0 to 300 do
    Stdx.Flat_table.replace t i (i * 7) i
  done;
  for i = 0 to 300 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d survives growth" i)
      (Some i)
      (Stdx.Flat_table.find t i (i * 7))
  done;
  (* Delete half, then grow past the next boundary again. *)
  for i = 0 to 300 do
    if i mod 2 = 0 then Stdx.Flat_table.remove t i (i * 7)
  done;
  for i = 301 to 700 do
    Stdx.Flat_table.replace t i (i * 7) i
  done;
  for i = 0 to 700 do
    let expect = if i <= 300 && i mod 2 = 0 then None else Some i in
    Alcotest.(check (option int))
      (Printf.sprintf "key %d after churn" i)
      expect
      (Stdx.Flat_table.find t i (i * 7))
  done

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng derive stable" `Quick test_rng_derive_stable;
    Alcotest.test_case "rng derive order independent" `Quick
      test_rng_derive_order_independent;
    Alcotest.test_case "rng derive independent streams" `Quick
      test_rng_derive_independent_streams;
    Alcotest.test_case "rng derive negative raises" `Quick
      test_rng_derive_negative_raises;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample too many raises" `Quick test_sample_too_many;
    Alcotest.test_case "power-law bounds" `Quick test_power_law_bounds;
    Alcotest.test_case "power-law calibration" `Quick test_power_law_calibration;
    Alcotest.test_case "power-law skew" `Quick test_power_law_skew;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap peek/pop" `Quick test_heap_peek_pop;
    Alcotest.test_case "heap to_sorted_list" `Quick test_heap_to_sorted_list;
    Alcotest.test_case "heap pop releases slot" `Quick test_heap_pop_releases_slot;
    QCheck_alcotest.to_alcotest qcheck_heap_property;
    QCheck_alcotest.to_alcotest qcheck_heap_interleaved;
    Alcotest.test_case "domain pool ordered" `Quick test_domain_pool_ordered;
    Alcotest.test_case "domain pool edge cases" `Quick
      test_domain_pool_empty_and_overprovisioned;
    Alcotest.test_case "domain pool exception" `Quick
      test_domain_pool_exception_propagates;
    Alcotest.test_case "domain pool reuse" `Quick test_domain_pool_reuse;
    Alcotest.test_case "domain pool invalid jobs" `Quick
      test_domain_pool_invalid_jobs;
    Alcotest.test_case "xhash deterministic" `Quick test_xhash_deterministic;
    Alcotest.test_case "xhash unit interval" `Quick test_xhash_unit_interval;
    Alcotest.test_case "xhash spread" `Quick test_xhash_spread;
    Alcotest.test_case "xhash fmix64 avalanche" `Quick
      test_xhash_fmix64_avalanche;
    QCheck_alcotest.to_alcotest qcheck_fmix64_injective;
    Alcotest.test_case "count-min never undercounts" `Quick
      test_count_min_never_undercounts;
    Alcotest.test_case "count-min error bound" `Quick test_count_min_error_bound;
    Alcotest.test_case "count-min unknown key" `Quick test_count_min_unknown_key;
    Alcotest.test_case "count-min rejects negative" `Quick
      test_count_min_rejects_negative;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentiles batch" `Quick test_stats_percentiles_batch;
    Alcotest.test_case "fvec basic" `Quick test_fvec_basic;
    Alcotest.test_case "stats imbalance" `Quick test_stats_imbalance;
    Alcotest.test_case "stats single sample" `Quick test_stats_single_sample;
    Alcotest.test_case "stats empty raises" `Quick test_stats_empty_raises;
    Alcotest.test_case "stats NaN guard" `Quick test_stats_nan_guard;
    Alcotest.test_case "count-min rejects non-finite" `Quick
      test_count_min_rejects_nonfinite;
    Alcotest.test_case "shard owner basics" `Quick test_shard_owner_basic;
    Alcotest.test_case "shard owner spread" `Quick test_shard_owner_spread;
    Alcotest.test_case "shard partition covers input" `Quick
      test_shard_partition_covers;
    Alcotest.test_case "shard indices match partition" `Quick
      test_shard_indices_match_partition;
    QCheck_alcotest.to_alcotest qcheck_shard_permutation_stable;
    QCheck_alcotest.to_alcotest qcheck_combine_agreement;
    QCheck_alcotest.to_alcotest qcheck_combine_unit_agreement;
    Alcotest.test_case "flat table basics" `Quick test_flat_table_basics;
    QCheck_alcotest.to_alcotest qcheck_flat_table_model;
    Alcotest.test_case "flat table resize boundaries" `Quick
      test_flat_table_resize_boundary;
  ]
