(* Tests for graphs, shortest paths, routing tables and the two paper
   topologies. *)

let simple_graph () =
  (* 0 --1-- 1 --1-- 2
      \------3------/   (0-2 direct cost 3)
     plus a pendant 3 off node 2. *)
  let g = Netgraph.Graph.create 4 in
  Netgraph.Graph.add_edge g 0 1 1.0;
  Netgraph.Graph.add_edge g 1 2 1.0;
  Netgraph.Graph.add_edge g 0 2 3.0;
  Netgraph.Graph.add_edge g 2 3 1.0;
  g

let test_graph_basics () =
  let g = simple_graph () in
  Alcotest.(check int) "nodes" 4 (Netgraph.Graph.node_count g);
  Alcotest.(check int) "edges" 4 (Netgraph.Graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Netgraph.Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Netgraph.Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 1-3" false (Netgraph.Graph.has_edge g 1 3);
  Alcotest.(check (option (float 1e-9))) "cost" (Some 3.0) (Netgraph.Graph.cost g 0 2);
  Alcotest.(check int) "degree" 3 (Netgraph.Graph.degree g 2);
  Alcotest.(check bool) "connected" true (Netgraph.Graph.is_connected g)

let test_graph_invalid () =
  let g = simple_graph () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Netgraph.Graph.add_edge g 1 1 1.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Netgraph.Graph.add_edge g 0 1 2.0);
  Alcotest.check_raises "bad cost"
    (Invalid_argument "Graph.add_edge: non-positive cost") (fun () ->
      Netgraph.Graph.add_edge g 0 3 0.0)

let test_graph_disconnected () =
  let g = Netgraph.Graph.create 3 in
  Netgraph.Graph.add_edge g 0 1 1.0;
  Alcotest.(check bool) "disconnected" false (Netgraph.Graph.is_connected g)

let test_dijkstra_simple () =
  let g = simple_graph () in
  let t = Netgraph.Dijkstra.run g 0 in
  Alcotest.(check (option (float 1e-9))) "0->2" (Some 2.0)
    (Netgraph.Dijkstra.distance t 2);
  Alcotest.(check (option (float 1e-9))) "0->3" (Some 3.0)
    (Netgraph.Dijkstra.distance t 3);
  Alcotest.(check (option (list int))) "path 0->3" (Some [ 0; 1; 2; 3 ])
    (Netgraph.Dijkstra.path t 3)

let test_dijkstra_unreachable () =
  let g = Netgraph.Graph.create 3 in
  Netgraph.Graph.add_edge g 0 1 1.0;
  let t = Netgraph.Dijkstra.run g 0 in
  Alcotest.(check (option (float 1e-9))) "unreachable" None
    (Netgraph.Dijkstra.distance t 2);
  Alcotest.(check (option (list int))) "no path" None (Netgraph.Dijkstra.path t 2)

let test_dijkstra_tie_break () =
  (* Two equal-cost paths 0->3: via 1 and via 2; the lower-id
     predecessor must win deterministically. *)
  let g = Netgraph.Graph.create 4 in
  Netgraph.Graph.add_edge g 0 1 1.0;
  Netgraph.Graph.add_edge g 0 2 1.0;
  Netgraph.Graph.add_edge g 1 3 1.0;
  Netgraph.Graph.add_edge g 2 3 1.0;
  let t = Netgraph.Dijkstra.run g 0 in
  Alcotest.(check (option (list int))) "lower-id path" (Some [ 0; 1; 3 ])
    (Netgraph.Dijkstra.path t 3)

let random_connected_graph rng n extra =
  Netgraph.Random_graph.connected ~rng ~nodes:n ~extra_edges:extra ~max_cost:9 ()

let qcheck_dijkstra_vs_bellman_ford =
  QCheck.Test.make ~count:50 ~name:"dijkstra distances = bellman-ford"
    QCheck.(make Gen.(pair (int_range 2 25) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      let g = random_connected_graph rng n (n / 2) in
      let ok = ref true in
      for src = 0 to n - 1 do
        let t = Netgraph.Dijkstra.run g src in
        let bf = Netgraph.Bellman_ford.distances g src in
        for v = 0 to n - 1 do
          if abs_float (t.Netgraph.Dijkstra.dist.(v) -. bf.(v)) > 1e-6 then
            ok := false
        done
      done;
      !ok)

let test_routing_tables () =
  let g = simple_graph () in
  let tables = Netgraph.Routing.build_all g in
  Alcotest.(check (option int)) "0 to 3 via 1" (Some 1)
    (Netgraph.Routing.next_hop tables.(0) 3);
  Alcotest.(check (option int)) "3 to 0 via 2" (Some 2)
    (Netgraph.Routing.next_hop tables.(3) 0);
  Alcotest.(check (list int)) "walk" [ 0; 1; 2; 3 ]
    (Netgraph.Routing.walk tables ~src:0 ~dst:3)

let qcheck_routing_walk_matches_dijkstra =
  QCheck.Test.make ~count:50 ~name:"hop-by-hop walk cost = dijkstra distance"
    QCheck.(make Gen.(pair (int_range 2 20) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      let g = random_connected_graph rng n n in
      let tables = Netgraph.Routing.build_all g in
      let ok = ref true in
      for src = 0 to n - 1 do
        let t = Netgraph.Dijkstra.run g src in
        for dst = 0 to n - 1 do
          let path = Netgraph.Routing.walk tables ~src ~dst in
          let rec cost = function
            | a :: (b :: _ as rest) ->
              (match Netgraph.Graph.cost g a b with
              | Some c -> c +. cost rest
              | None -> infinity)
            | [ _ ] | [] -> 0.0
          in
          if abs_float (cost path -. t.Netgraph.Dijkstra.dist.(dst)) > 1e-6 then
            ok := false
        done
      done;
      !ok)

let qcheck_ecmp_hops_on_shortest_paths =
  QCheck.Test.make ~count:40 ~name:"every ECMP hop lies on a shortest path"
    QCheck.(make Gen.(pair (int_range 2 20) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      let g = random_connected_graph rng n n in
      let ecmp = Netgraph.Routing.build_all_ecmp g in
      let dist = Netgraph.Dijkstra.all_pairs g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if u <> dst then begin
            (* Non-empty on connected graphs, and each hop advances. *)
            if ecmp.(u).(dst) = [||] then ok := false;
            Array.iter
              (fun h ->
                let c = Option.get (Netgraph.Graph.cost g u h) in
                if abs_float ((c +. dist.(h).(dst)) -. dist.(u).(dst)) > 1e-9 then
                  ok := false)
              ecmp.(u).(dst)
          end
        done
      done;
      !ok)

let test_ecmp_superset_of_deterministic () =
  let g = simple_graph () in
  let tables = Netgraph.Routing.build_all g in
  let ecmp = Netgraph.Routing.build_all_ecmp g in
  for u = 0 to 3 do
    for dst = 0 to 3 do
      if u <> dst then
        match Netgraph.Routing.next_hop tables.(u) dst with
        | Some hop ->
          Alcotest.(check bool)
            (Printf.sprintf "%d->%d deterministic hop in ECMP set" u dst)
            true
            (Array.mem hop ecmp.(u).(dst))
        | None -> Alcotest.fail "connected graph"
    done
  done

let test_campus_shape () =
  let topo = Netgraph.Campus.generate ~seed:7 () in
  Alcotest.(check int) "gateways" 2 (List.length (Netgraph.Topology.gateways topo));
  Alcotest.(check int) "cores" 16 (List.length (Netgraph.Topology.cores topo));
  Alcotest.(check int) "edges" 10 (List.length (Netgraph.Topology.edges topo));
  (* Every core connects to both gateways. *)
  List.iter
    (fun c ->
      List.iter
        (fun gw ->
          Alcotest.(check bool) "core dual-homed" true
            (Netgraph.Graph.has_edge topo.Netgraph.Topology.graph c gw))
        (Netgraph.Topology.gateways topo))
    (Netgraph.Topology.cores topo);
  (* Edge routers connect only to cores. *)
  List.iter
    (fun e ->
      List.iter
        (fun { Netgraph.Graph.dst; _ } ->
          Alcotest.(check string) "edge homes to core" "core"
            (Netgraph.Topology.role_to_string (Netgraph.Topology.role topo dst)))
        (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph e))
    (Netgraph.Topology.edges topo)

let test_campus_deterministic () =
  let a = Netgraph.Campus.generate ~seed:5 () in
  let b = Netgraph.Campus.generate ~seed:5 () in
  Alcotest.(check (list (triple int int (float 1e-9)))) "same edges"
    (Netgraph.Graph.edges a.Netgraph.Topology.graph)
    (Netgraph.Graph.edges b.Netgraph.Topology.graph)

let test_waxman_shape () =
  let topo = Netgraph.Waxman.generate ~seed:7 () in
  Alcotest.(check int) "cores" 25 (List.length (Netgraph.Topology.cores topo));
  Alcotest.(check int) "edges" 400 (List.length (Netgraph.Topology.edges topo));
  Alcotest.(check bool) "connected" true
    (Netgraph.Graph.is_connected topo.Netgraph.Topology.graph);
  (* Each edge router single-homed; 16 per core. *)
  let counts = Array.make 25 0 in
  List.iter
    (fun e ->
      match Netgraph.Graph.neighbors topo.Netgraph.Topology.graph e with
      | [ { Netgraph.Graph.dst; _ } ] -> counts.(dst) <- counts.(dst) + 1
      | l -> Alcotest.failf "edge router with %d links" (List.length l))
    (Netgraph.Topology.edges topo);
  Array.iter (fun c -> Alcotest.(check int) "16 edges per core" 16 c) counts

let test_waxman_core_degree () =
  let topo = Netgraph.Waxman.generate ~seed:11 () in
  (* Core-core degree should hover around the target of 4: at least
     the connectivity pass guarantees >= 1, and the draw loop aims at
     4; check a sane band. *)
  List.iter
    (fun c ->
      let core_links =
        List.filter
          (fun { Netgraph.Graph.dst; _ } -> dst < 25)
          (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph c)
      in
      let d = List.length core_links in
      if d < 1 || d > 12 then Alcotest.failf "core degree %d out of band" d)
    (Netgraph.Topology.cores topo)

let test_waxman_locality () =
  (* Waxman links prefer short distances: the mean linked-pair
     distance must be well below the mean random-pair distance.  Use
     several seeds to smooth variance. *)
  let linked = ref [] and all = ref [] in
  List.iter
    (fun seed ->
      let params = Netgraph.Waxman.default_params in
      let topo = Netgraph.Waxman.generate ~params ~seed () in
      ignore topo;
      (* Regenerate coordinates deterministically is not exposed;
         instead check structurally: count links between low-id cores
         — a weak proxy.  Keep the strong check on hop diameter:
         the mesh must be reasonably tight. *)
      let g = topo.Netgraph.Topology.graph in
      let t = Netgraph.Dijkstra.run g 0 in
      for v = 0 to 24 do
        linked := t.Netgraph.Dijkstra.dist.(v) :: !linked
      done;
      all := float_of_int (Netgraph.Graph.edge_count g) :: !all)
    [ 3; 5; 9 ];
  List.iter
    (fun d ->
      if d > 10.0 then Alcotest.failf "core mesh diameter too large: %f" d)
    !linked

let test_dot_export () =
  let topo = Netgraph.Campus.generate ~seed:7 () in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Netgraph.Dot.topology ~extra_labels:[ (0, "GW-A") ] ppf topo;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec scan i = i + nl <= ol && (String.sub out i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "graph header" true (contains "graph campus {");
  Alcotest.(check bool) "gateway shape" true (contains "shape=diamond");
  Alcotest.(check bool) "edge router shape" true (contains "shape=box");
  Alcotest.(check bool) "extra label" true (contains "GW-A");
  Alcotest.(check bool) "closes" true (contains "}");
  (* One edge line per undirected link. *)
  let edge_lines =
    List.length
      (List.filter
         (fun line ->
           let nl = String.length " -- " and ol = String.length line in
           let rec scan i = i + nl <= ol && (String.sub line i nl = " -- " || scan (i + 1)) in
           scan 0)
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "edge count"
    (Netgraph.Graph.edge_count topo.Netgraph.Topology.graph)
    edge_lines

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "graph invalid inputs" `Quick test_graph_invalid;
    Alcotest.test_case "graph disconnected" `Quick test_graph_disconnected;
    Alcotest.test_case "dijkstra simple" `Quick test_dijkstra_simple;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra tie-break" `Quick test_dijkstra_tie_break;
    QCheck_alcotest.to_alcotest qcheck_dijkstra_vs_bellman_ford;
    Alcotest.test_case "routing tables" `Quick test_routing_tables;
    QCheck_alcotest.to_alcotest qcheck_routing_walk_matches_dijkstra;
    QCheck_alcotest.to_alcotest qcheck_ecmp_hops_on_shortest_paths;
    Alcotest.test_case "ECMP supersets deterministic" `Quick
      test_ecmp_superset_of_deterministic;
    Alcotest.test_case "campus shape" `Quick test_campus_shape;
    Alcotest.test_case "campus deterministic" `Quick test_campus_deterministic;
    Alcotest.test_case "waxman shape" `Quick test_waxman_shape;
    Alcotest.test_case "waxman core degree" `Quick test_waxman_core_degree;
    Alcotest.test_case "waxman mesh tightness" `Quick test_waxman_locality;
  ]
