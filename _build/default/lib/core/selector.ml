let nf_salt nf = Stdx.Xhash.string (Policy.Action.nf_to_string nf)

let flow_point flow ~entity ~nf =
  let h = Netpkt.Flow.hash flow in
  let h = Stdx.Xhash.fold_int h (Mbox.Entity.hash_key entity) in
  let h = Stdx.Xhash.fold_int h (Int64.to_int (nf_salt nf)) in
  Stdx.Xhash.to_unit_interval h

let pick row ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Selector.pick: u out of [0,1)";
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Selector.pick: negative weight";
        acc +. w)
      0.0 row
  in
  if total <= 0.0 then None
  else begin
    let target = u *. total in
    let acc = ref 0.0 and chosen = ref None in
    Array.iter
      (fun (id, w) ->
        if !chosen = None then begin
          acc := !acc +. w;
          if target < !acc then chosen := Some id
        end)
      row;
    (* Floating-point slack can leave the last bucket unmatched. *)
    match !chosen with
    | Some id -> Some id
    | None ->
      let rec last_positive i =
        if i < 0 then None
        else
          let id, w = row.(i) in
          if w > 0.0 then Some id else last_positive (i - 1)
      in
      last_positive (Array.length row - 1)
  end

let pick_uniform candidates ~u =
  let n = List.length candidates in
  if n = 0 then invalid_arg "Selector.pick_uniform: empty candidates";
  let i = int_of_float (u *. float_of_int n) in
  let i = if i >= n then n - 1 else i in
  List.nth candidates i
