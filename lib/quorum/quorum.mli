(** Deterministic quorum agreement for replicated controllers.

    The live control plane of {!Sim.Pktsim} replicates the controller
    over N acceptors and runs a two-phase propose/accept/commit round
    for every configuration version: the leader proposes a candidate
    config (identified by a digest), each reachable acceptor votes,
    and the config is committed — and only then staged for push — once
    the accumulated votes form a quorum.  Everything here is a pure,
    allocation-light state machine: time, transport, loss, and retry
    policy live in the simulator; this module only answers "is this
    set of votes a quorum?" and "may this acceptor accept/commit this
    (version, digest)?", deterministically.

    The quorum families follow the votes-per-acceptor formulation: a
    set of acceptors is a quorum iff its summed votes exceed half the
    total votes.  Any two such sets intersect in at least one
    acceptor, which is what makes divergent commits impossible as long
    as acceptors refuse conflicting proposals. *)

type family =
  | Majority  (** one vote per acceptor; quorum = strict majority *)
  | Weighted of int array
      (** [votes.(i)] votes for acceptor [i]; quorum = any set whose
          summed votes exceed half the total.  Weights must be
          non-negative with a positive total. *)

val validate : family -> n:int -> (unit, string) result
(** Checks the family against an acceptor count: [n >= 1], and for
    [Weighted] the vote array must have length [n], no negative entry,
    and a positive total. *)

val votes : family -> acceptor:int -> int
(** Votes carried by one acceptor ([Majority]: always 1). *)

val total_votes : family -> n:int -> int

val threshold : family -> n:int -> int
(** Minimal vote sum that constitutes a quorum:
    [total_votes / 2 + 1]. *)

val is_quorum : family -> n:int -> (int -> bool) -> bool
(** [is_quorum fam ~n member] — do the acceptors selected by [member]
    hold a quorum of the votes? *)

(** Per-replica acceptor state machine.  An acceptor remembers the
    highest (version, digest) it has accepted and the highest version
    it has committed; it refuses stale proposals and conflicting
    digests, which is the local rule the quorum intersection turns
    into the global no-divergent-commit guarantee. *)
module Acceptor : sig
  type t

  type verdict =
    | Accept  (** first acceptance of this (version, digest) *)
    | Repeat  (** duplicate delivery of an already-accepted proposal *)
    | Stale
        (** version at or below the acceptor's commit, or below its
            acceptance — refused *)
    | Conflict
        (** proposal contradicts a commitment: same version as the
            acceptor's commit, different digest — refused *)

  val create : unit -> t

  val receive : t -> version:int -> digest:int64 -> verdict
  (** Phase one: consider a proposal.  Accepts a [version] strictly
      beyond the last committed one and at or beyond the last accepted
      one; a re-proposal of an uncommitted version with a new digest
      (the previous round died without quorum) supersedes the old
      acceptance, and re-delivery of the currently accepted proposal
      is an idempotent [Repeat].  Nothing ever supersedes a commit. *)

  val accepted : t -> (int * int64) option
  (** Highest proposal accepted so far. *)

  val commit : t -> version:int -> digest:int64 -> (unit, string) result
  (** Phase two: learn a commit.  An acceptor may commit a version it
      never voted for (it missed the proposal but received the commit
      notice); it must never commit a version at or below its current
      commit with a {e different} digest, nor regress.  Duplicate
      delivery of the current commit is an idempotent [Ok]. *)

  val committed : t -> int
  (** Highest committed version (0 = only the initial config). *)

  val committed_digest : t -> int64
  (** Digest at {!committed} (0L before any commit). *)
end

(** One in-flight propose/accept/commit round for a single candidate
    version.  Tracks which acceptors voted and which are lost to this
    round (down, partitioned, or retries exhausted), so the caller can
    commit as soon as the votes form a quorum and abandon as soon as
    they no longer can. *)
module Round : sig
  type t

  type outcome =
    | Pending
    | Committed
    | Abandoned
        (** the round can no longer reach quorum, or was superseded *)

  val start : family -> n:int -> version:int -> digest:int64 -> t
  (** Raises [Invalid_argument] if the family does not validate. *)

  val version : t -> int
  val digest : t -> int64
  val outcome : t -> outcome

  val accept : t -> acceptor:int -> unit
  (** Record a vote; idempotent. *)

  val fail : t -> acceptor:int -> unit
  (** Record an acceptor as lost to this round (refused, unreachable,
      or retries exhausted); idempotent, and a previous vote wins. *)

  val accept_votes : t -> int

  val has_quorum : t -> bool

  val can_reach_quorum : t -> bool
  (** Votes already collected plus votes of still-undecided acceptors
      could still meet the threshold. *)

  val mark_committed : t -> unit
  val mark_abandoned : t -> unit
end
