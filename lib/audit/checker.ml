type invariant =
  | Chain
  | Conservation
  | Stickiness
  | Hygiene
  | Feasibility
  | Quorum
  | Repair

let invariant_name = function
  | Chain -> "chain-completeness"
  | Conservation -> "conservation"
  | Stickiness -> "stickiness"
  | Hygiene -> "table-hygiene"
  | Feasibility -> "lb-feasibility"
  | Quorum -> "quorum-agreement"
  | Repair -> "corruption-repair"

type violation = {
  invariant : invariant;
  time : float;
  detail : string;
  trace : string list;
}

type totals = {
  injected : int;
  delivered : int;
  dropped : int;
  wp_served : int;
  fragments : int;
  loads : float array;
}

type report = {
  events : int;
  packets : int;
  flows : int;
  delivered : int;
  dropped : int;
  wp_served : int;
  decisions : int;
  versions : int;
  feasibility_groups : int;
  violations : int;
  sample : violation list;
}

(* Per-packet state, kept from admission to the terminal event (and
   beyond, so duplicate terminals are caught).  [chain] and [history]
   are accumulated newest-first. *)
type pkt = {
  flow : Netpkt.Flow.t;
  admission : Event.admission;
  admit_time : float;
  bytes : int;
  mutable chain : (int * Policy.Action.nf) list;
  mutable history : string list;
  mutable flying : bool;
  mutable tainted : bool;
      (** hit injected-corrupt state; its chain is excused (conservation
          is not — even a mis-steered packet must reach one terminal) *)
}

(* One injected corruption, mirrored from the fault injector's
   [Corrupt_inject] ground truth. *)
type corr = {
  c_site : Event.corrupt_site;
  c_deadline : float;
  mutable c_manifested : float option;
  mutable c_repaired : float option;
}

type t = {
  z : float;
  min_samples : int;
  max_sample : int;
  n_proxies : int;
  n_mboxes : int;
  rules : (int, Policy.Rule.t) Hashtbl.t;
  configs : (int, Sdm.Controller.t) Hashtbl.t;
  device_version : int array;
  mutable latest : int;
  pkts : (int, pkt) Hashtbl.t;
  (* (flow, entity key, nf name, version, liveness view) -> mbox *)
  sticky : (Netpkt.Flow.t * int * string * int * int64, int) Hashtbl.t;
  (* full-alive steering tallies per (entity, rule, nf, version):
     flow -> chosen mbox (stickiness makes the per-flow value unique) *)
  groups :
    ( Mbox.Entity.t * int * Policy.Action.nf * int,
      (Netpkt.Flow.t, int) Hashtbl.t )
    Hashtbl.t;
  (* label-table mirror: (mbox, src, label) -> version *)
  labels : (int * Netpkt.Addr.t * int, int) Hashtbl.t;
  confirmed : (int * Netpkt.Flow.t, unit) Hashtbl.t;
  label_flow : (int * int, Netpkt.Flow.t) Hashtbl.t;
  flows : (Netpkt.Flow.t, unit) Hashtbl.t;
  (* Replicated-control-plane mirror.  [quorum_active] flips on the
     first quorum event: a single-controller stream (no quorum round at
     all) stays exempt from the publish-requires-commit rule. *)
  mutable quorum_active : bool;
  q_proposed : (int * int64, unit) Hashtbl.t;
  q_committed : (int, int64) Hashtbl.t;
  q_replica : (int, int) Hashtbl.t;
  (* Corruption-repair mirror.  [repair_active] flips on the first
     [Corrupt_inject]: a stream with no injected corruption stays exempt
     from the Repair rules.  [excused_labels] holds the (mbox, src,
     label) sites of resurrected entries — hits there are manifestations
     the injector announces itself, not hygiene violations.  [regressed]
     marks devices whose config silently regressed by one version, so
     inserts tagged installed-1 are excused until the re-install. *)
  mutable repair_active : bool;
  corruptions : (int, corr) Hashtbl.t;
  excused_labels : (int * Netpkt.Addr.t * int, int) Hashtbl.t;
  regressed : (int, unit) Hashtbl.t;
  enforced_at : int array;
  mutable events : int;
  mutable admitted : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable wp : int;
  mutable frag_extra : int;
  mutable decisions : int;
  mutable feas_groups : int;
  mutable violations : int;
  mutable stored : int;
  mutable sample_rev : violation list;
}

let create ?(z = 4.0) ?(min_samples = 64) ?(max_sample = 32) ~controller () =
  if z <= 0.0 then invalid_arg "Checker.create: z must be positive";
  if min_samples < 1 then invalid_arg "Checker.create: min_samples < 1";
  let dep = controller.Sdm.Controller.deployment in
  let rules = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace rules r.Policy.Rule.id r)
    controller.Sdm.Controller.rules;
  let configs = Hashtbl.create 8 in
  Hashtbl.replace configs 0 controller;
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
  {
    z;
    min_samples;
    max_sample;
    n_proxies;
    n_mboxes;
    rules;
    configs;
    device_version = Array.make (n_proxies + n_mboxes) 0;
    latest = 0;
    pkts = Hashtbl.create 4096;
    sticky = Hashtbl.create 4096;
    groups = Hashtbl.create 256;
    labels = Hashtbl.create 1024;
    confirmed = Hashtbl.create 256;
    label_flow = Hashtbl.create 256;
    flows = Hashtbl.create 1024;
    quorum_active = false;
    q_proposed = Hashtbl.create 16;
    q_committed = Hashtbl.create 16;
    q_replica = Hashtbl.create 8;
    repair_active = false;
    corruptions = Hashtbl.create 16;
    excused_labels = Hashtbl.create 16;
    regressed = Hashtbl.create 8;
    enforced_at = Array.make n_mboxes 0;
    events = 0;
    admitted = 0;
    delivered = 0;
    dropped = 0;
    wp = 0;
    frag_extra = 0;
    decisions = 0;
    feas_groups = 0;
    violations = 0;
    stored = 0;
    sample_rev = [];
  }

let register_config t ~version controller =
  Hashtbl.replace t.configs version controller

let violate t ?pkt invariant ~time detail =
  t.violations <- t.violations + 1;
  if t.stored < t.max_sample then begin
    t.stored <- t.stored + 1;
    let trace = match pkt with None -> [] | Some p -> List.rev p.history in
    t.sample_rev <- { invariant; time; detail; trace } :: t.sample_rev
  end

let find_pkt t ?(what = "event") invariant ~aid ~time =
  match Hashtbl.find_opt t.pkts aid with
  | Some p -> Some p
  | None ->
    violate t invariant ~time
      (Printf.sprintf "%s for packet #%d that was never admitted" what aid);
    None

(* A packet may reach exactly one terminal event.  Returns true when
   this terminal is the packet's first. *)
let terminal t p ~time ~what =
  if p.flying then begin
    p.flying <- false;
    true
  end
  else begin
    violate t ~pkt:p Conservation ~time
      (Printf.sprintf "duplicate terminal event (%s) for one packet" what);
    false
  end

let rec is_prefix eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> eq x y && is_prefix eq xs' ys'

let chain_string nfs = Policy.Action.to_string nfs

(* The invariant of Sec. III.D/III.E: a delivered packet of a chained
   flow visited, in order, middleboxes implementing exactly its rule's
   action list; a web-proxy cache response may cut the chain short at
   the WP. *)
let check_chain t p ~time ~served_by_wp =
  if p.tainted then ()
  else
  let did = List.rev_map (fun (_, nf) -> nf) p.chain in
  match p.admission with
  | Event.Permit _ | Event.Unmatched ->
    if did <> [] then
      violate t ~pkt:p Chain ~time
        (Printf.sprintf "non-chained packet was processed by middleboxes (%s)"
           (chain_string did))
  | Event.Chained { rule_id; _ } -> (
    match Hashtbl.find_opt t.rules rule_id with
    | None ->
      violate t ~pkt:p Chain ~time
        (Printf.sprintf "admitted under unknown rule %d" rule_id)
    | Some rule ->
      let expected = rule.Policy.Rule.actions in
      if served_by_wp then begin
        let ok =
          did <> []
          && is_prefix Policy.Action.equal_nf did expected
          && match List.rev did with
             | Policy.Action.WP :: _ -> true
             | _ -> false
        in
        if not ok then
          violate t ~pkt:p Chain ~time
            (Printf.sprintf
               "wp-served after chain prefix %s, policy requires %s"
               (chain_string did) (chain_string expected))
      end
      else if
        not
          (List.length did = List.length expected
          && is_prefix Policy.Action.equal_nf did expected)
      then
        violate t ~pkt:p Chain ~time
          (Printf.sprintf "delivered after chain %s, policy requires %s"
             (chain_string did) (chain_string expected)))

let purge_labels t ~mbox ~below =
  let stale =
    Hashtbl.fold
      (fun ((m, _, _) as key) v acc ->
        if m = mbox && v < below then key :: acc else acc)
      t.labels []
  in
  List.iter (Hashtbl.remove t.labels) stale

let record t ev =
  t.events <- t.events + 1;
  match ev with
  | Event.Admitted { aid; time; flow; proxy; admission; version = _; bytes; label }
    ->
    t.admitted <- t.admitted + 1;
    if Hashtbl.mem t.pkts aid then
      violate t Conservation ~time
        (Printf.sprintf "packet #%d admitted twice" aid)
    else begin
      let p =
        {
          flow;
          admission;
          admit_time = time;
          bytes;
          chain = [];
          history = [ Event.describe ev ];
          flying = true;
          tainted = false;
        }
      in
      Hashtbl.replace t.pkts aid p;
      Hashtbl.replace t.flows flow ();
      (match label with
      | Some l -> Hashtbl.replace t.label_flow (proxy, l) flow
      | None -> ());
      match admission with
      | Event.Chained { mode = Event.Label; _ } ->
        if not (Hashtbl.mem t.confirmed (proxy, flow)) then
          violate t ~pkt:p Hygiene ~time
            "label-switched admission before the path was confirmed"
      | _ -> ()
    end
  | Event.Steered { aid; time; entity; rule_id; nf; version; view; mbox } -> (
    t.decisions <- t.decisions + 1;
    match find_pkt t ~what:"steering decision" Conservation ~aid ~time with
    | None -> ()
    | Some p ->
      p.history <- Event.describe ev :: p.history;
      let key =
        (p.flow, Mbox.Entity.hash_key entity, Policy.Action.nf_to_string nf,
         version, view)
      in
      (match Hashtbl.find_opt t.sticky key with
      | None -> Hashtbl.replace t.sticky key mbox
      | Some m when m = mbox -> ()
      | Some m ->
        violate t ~pkt:p Stickiness ~time
          (Printf.sprintf
             "flow %s re-steered at %s for %s under v%d: mbox %d then %d"
             (Netpkt.Flow.to_string p.flow)
             (Mbox.Entity.to_string entity)
             (Policy.Action.nf_to_string nf)
             version m mbox));
      if view = 0L then begin
        let gkey = (entity, rule_id, nf, version) in
        let g =
          match Hashtbl.find_opt t.groups gkey with
          | Some g -> g
          | None ->
            let g = Hashtbl.create 64 in
            Hashtbl.replace t.groups gkey g;
            g
        in
        Hashtbl.replace g p.flow mbox
      end)
  | Event.Enforced { aid; time; mbox; nf } -> (
    if mbox >= 0 && mbox < t.n_mboxes then
      t.enforced_at.(mbox) <- t.enforced_at.(mbox) + 1;
    match find_pkt t ~what:"enforcement" Conservation ~aid ~time with
    | None -> ()
    | Some p ->
      p.chain <- (mbox, nf) :: p.chain;
      p.history <- Event.describe ev :: p.history)
  | Event.Wp_served { aid; time; _ } -> (
    t.wp <- t.wp + 1;
    match find_pkt t ~what:"wp-serve" Conservation ~aid ~time with
    | None -> ()
    | Some p ->
      p.history <- Event.describe ev :: p.history;
      if terminal t p ~time ~what:"wp-served" then
        check_chain t p ~time ~served_by_wp:true)
  | Event.Delivered { aid; time; bytes } -> (
    t.delivered <- t.delivered + 1;
    match find_pkt t ~what:"delivery" Conservation ~aid ~time with
    | None -> ()
    | Some p ->
      p.history <- Event.describe ev :: p.history;
      if terminal t p ~time ~what:"delivered" then begin
        if bytes <> p.bytes then
          violate t ~pkt:p Conservation ~time
            (Printf.sprintf "admitted %dB but delivered %dB" p.bytes bytes);
        check_chain t p ~time ~served_by_wp:false
      end)
  | Event.Dropped { aid; time; _ } ->
    t.dropped <- t.dropped + 1;
    if aid >= 0 then (
      match find_pkt t ~what:"drop" Conservation ~aid ~time with
      | None -> ()
      | Some p ->
        p.history <- Event.describe ev :: p.history;
        ignore (terminal t p ~time ~what:"dropped"))
  | Event.Fragmented { aid; time; extra } -> (
    t.frag_extra <- t.frag_extra + extra;
    match Hashtbl.find_opt t.pkts aid with
    | Some p -> p.history <- Event.describe ev :: p.history
    | None ->
      violate t Conservation ~time
        (Printf.sprintf "fragmentation of packet #%d that was never admitted"
           aid))
  | Event.Label_insert { mbox; time; src; label; version } ->
    let dev = t.n_proxies + mbox in
    let installed = t.device_version.(dev) in
    (* A device whose install was silently lost runs installed-1 without
       the checker's version mirror knowing; the injector's ground truth
       ([regressed]) excuses exactly that one-version slack. *)
    let excused =
      Hashtbl.mem t.regressed dev && version = installed - 1
    in
    if version <> installed && not excused then
      violate t Hygiene ~time
        (Printf.sprintf
           "mbox %d tagged label <%s|%d> with v%d while running v%d" mbox
           (Netpkt.Addr.to_string src)
           label version installed);
    Hashtbl.replace t.labels (mbox, src, label) version
  | Event.Label_hit { mbox; time; src; label; version } -> (
    match Hashtbl.find_opt t.labels (mbox, src, label) with
    | None ->
      (* A hit on a resurrected site is the corruption manifesting —
         the injector announces it via [Corrupt_manifest]; flagging it
         as hygiene too would double-count ground-truth faults. *)
      if not (Hashtbl.mem t.excused_labels (mbox, src, label)) then
        violate t Hygiene ~time
          (Printf.sprintf
             "mbox %d used label <%s|%d> that was never installed (or was \
              purged)"
             mbox
             (Netpkt.Addr.to_string src)
             label)
    | Some v ->
      if v <> version then
        violate t Hygiene ~time
          (Printf.sprintf
             "mbox %d label <%s|%d> hit with v%d but installed as v%d" mbox
             (Netpkt.Addr.to_string src)
             label version v))
  | Event.Cache_insert { proxy; time; version; _ } ->
    let installed = t.device_version.(proxy) in
    let excused =
      Hashtbl.mem t.regressed proxy && version = installed - 1
    in
    if version <> installed && not excused then
      violate t Hygiene ~time
        (Printf.sprintf
           "proxy %d cached a flow under v%d while running v%d" proxy version
           installed)
  | Event.Ls_confirm { proxy; flow; _ } ->
    Hashtbl.replace t.confirmed (proxy, flow) ()
  | Event.Ls_teardown { proxy; label; _ } -> (
    match Hashtbl.find_opt t.label_flow (proxy, label) with
    | None -> ()
    | Some flow -> Hashtbl.remove t.confirmed (proxy, flow))
  | Event.Config_publish { time; version } ->
    (* Under a replicated control plane no version may reach the push
       stage without its quorum round having committed it first. *)
    if t.quorum_active && not (Hashtbl.mem t.q_committed version) then
      violate t Quorum ~time
        (Printf.sprintf "config v%d published without a quorum commit" version);
    if version > t.latest then t.latest <- version
  | Event.Quorum_propose { version; digest; _ } ->
    t.quorum_active <- true;
    Hashtbl.replace t.q_proposed (version, digest) ()
  | Event.Quorum_accept { time; version; replica; digest } ->
    t.quorum_active <- true;
    if not (Hashtbl.mem t.q_proposed (version, digest)) then
      violate t Quorum ~time
        (Printf.sprintf
           "replica %d accepted config v%d (%Lx) that was never proposed"
           replica version digest)
  | Event.Quorum_commit { time; version; replica; digest } ->
    t.quorum_active <- true;
    if not (Hashtbl.mem t.q_proposed (version, digest)) then
      violate t Quorum ~time
        (Printf.sprintf
           "replica %d committed config v%d (%Lx) that was never proposed"
           replica version digest);
    (match Hashtbl.find_opt t.q_committed version with
    | None -> Hashtbl.replace t.q_committed version digest
    | Some d when Int64.equal d digest -> ()
    | Some d ->
      violate t Quorum ~time
        (Printf.sprintf
           "divergent commit: replica %d committed v%d as %Lx, first commit \
            was %Lx"
           replica version digest d));
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.q_replica replica) in
    if version < prev then
      violate t Quorum ~time
        (Printf.sprintf "replica %d commit regressed from v%d to v%d" replica
           prev version)
    else Hashtbl.replace t.q_replica replica version
  | Event.Leader_elect _ -> ()
  | Event.Config_install { dev; time; version } ->
    if version > t.latest then
      violate t Hygiene ~time
        (Printf.sprintf "device %d installed v%d, never published" dev version)
    else if version < t.device_version.(dev) then
      violate t Hygiene ~time
        (Printf.sprintf "device %d regressed from v%d to v%d" dev
           t.device_version.(dev) version)
    else begin
      t.device_version.(dev) <- version;
      Hashtbl.remove t.regressed dev;
      if dev >= t.n_proxies then
        purge_labels t ~mbox:(dev - t.n_proxies) ~below:(version - 1)
    end
  | Event.Corrupt_inject { time = _; cid; kind; site; deadline } ->
    t.repair_active <- true;
    Hashtbl.replace t.corruptions cid
      { c_site = site; c_deadline = deadline; c_manifested = None;
        c_repaired = None };
    (match (kind, site) with
    | Event.Resurrected, Event.Label_site { mbox; src; label } ->
      Hashtbl.replace t.excused_labels (mbox, src, label) cid
    | Event.Lost_config, Event.Config_site { dev } ->
      Hashtbl.replace t.regressed dev ()
    | _ -> ())
  | Event.Corrupt_manifest { time; cid; aid } -> (
    (match Hashtbl.find_opt t.corruptions cid with
    | None ->
      violate t Repair ~time
        (Printf.sprintf "manifestation of corruption #%d never injected" cid)
    | Some c ->
      (match c.c_repaired with
      | Some r ->
        violate t Repair ~time
          (Printf.sprintf
             "corruption #%d manifested after its repair at t=%.3f" cid r)
      | None -> ());
      if c.c_manifested = None then c.c_manifested <- Some time);
    if aid >= 0 then
      match find_pkt t ~what:"corruption manifestation" Repair ~aid ~time with
      | None -> ()
      | Some p ->
        p.tainted <- true;
        p.history <- Event.describe ev :: p.history)
  | Event.Corrupt_detect { time; _ } ->
    if not t.repair_active then
      violate t Repair ~time
        "sweep reported a digest mismatch with no corruption injected"
  | Event.Corrupt_repair { time; cid; dev; action } -> (
    match Hashtbl.find_opt t.corruptions cid with
    | None ->
      violate t Repair ~time
        (Printf.sprintf "repair of corruption #%d never injected" cid)
    | Some c ->
      (match c.c_repaired with
      | Some r ->
        violate t Repair ~time
          (Printf.sprintf "corruption #%d repaired twice (first at t=%.3f)"
             cid r)
      | None -> c.c_repaired <- Some time);
      if c.c_manifested <> None && time > c.c_deadline then
        violate t Repair ~time
          (Printf.sprintf
             "corruption #%d manifested but repaired after its deadline \
              t=%.3f"
             cid c.c_deadline);
      (match c.c_site with
      | Event.Label_site { mbox; src; label } ->
        Hashtbl.remove t.excused_labels (mbox, src, label)
      | Event.Cache_site _ | Event.Config_site _ -> ());
      match action with
      | Event.Purged | Event.Rebased -> ()
      | Event.Reinstalled v ->
        (* A repair may re-push only certified state: a published
           version, never regressing the device it lands on. *)
        if v > t.latest then
          violate t Repair ~time
            (Printf.sprintf
               "repair of corruption #%d installed v%d, never published" cid v)
        else if v < t.device_version.(dev) then
          violate t Repair ~time
            (Printf.sprintf
               "repair of corruption #%d regressed device %d from v%d to v%d"
               cid dev t.device_version.(dev) v))

(* The LP plan's split probabilities for one (entity, rule, nf) row of
   one configuration version, normalized.  None when the strategy's
   choice there is deterministic (hot potato, a missing or degenerate
   weight row) or per-(src,dst) (the exact formulation), in which case
   the group is skipped rather than mis-tested. *)
let expected_row config entity ~rule_id ~nf =
  match config.Sdm.Controller.strategy with
  | Sdm.Strategy.Hot_potato -> None
  | Sdm.Strategy.Random_uniform -> (
    match Sdm.Candidate.get config.Sdm.Controller.candidates entity nf with
    | cands ->
      let n = List.length cands in
      if n = 0 then None
      else
        Some
          (Array.of_list
             (List.map
                (fun (m : Mbox.Middlebox.t) -> (m.id, 1.0 /. float_of_int n))
                cands))
    | exception Invalid_argument _ -> None
    | exception Not_found -> None)
  | Sdm.Strategy.Load_balanced w -> (
    match Sdm.Weights.find w entity ~rule:rule_id ~nf with
    | None -> None
    | Some row ->
      let total = Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 row in
      if total <= 0.0 then None
      else Some (Array.map (fun (id, v) -> (id, v /. total)) row))
  | Sdm.Strategy.Load_balanced_exact _ -> None

let check_feasibility t =
  Hashtbl.iter
    (fun (entity, rule_id, nf, version) g ->
      let n = Hashtbl.length g in
      if n >= t.min_samples then begin
        match Hashtbl.find_opt t.configs version with
        | None -> ()
        | Some config -> (
          match expected_row config entity ~rule_id ~nf with
          | None -> ()
          | Some row ->
            t.feas_groups <- t.feas_groups + 1;
            let counts = Hashtbl.create 8 in
            Hashtbl.iter
              (fun _ mbox ->
                Hashtbl.replace counts mbox
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts mbox)))
              g;
            let fn = float_of_int n in
            Array.iter
              (fun (id, p) ->
                let obs =
                  float_of_int
                    (Option.value ~default:0 (Hashtbl.find_opt counts id))
                in
                Hashtbl.remove counts id;
                let expect = fn *. p in
                let tol = (t.z *. sqrt (fn *. p *. (1.0 -. p))) +. 2.0 in
                if Float.abs (obs -. expect) > tol then
                  violate t Feasibility ~time:0.0
                    (Printf.sprintf
                       "%s rule %d %s v%d: mbox %d took %.0f of %d flows, \
                        plan says %.1f (tolerance %.1f)"
                       (Mbox.Entity.to_string entity)
                       rule_id
                       (Policy.Action.nf_to_string nf)
                       version id obs n expect tol))
              row;
            Hashtbl.iter
              (fun id c ->
                violate t Feasibility ~time:0.0
                  (Printf.sprintf
                     "%s rule %d %s v%d: %d flows steered to mbox %d, \
                      outside the plan's candidate row"
                     (Mbox.Entity.to_string entity)
                     rule_id
                     (Policy.Action.nf_to_string nf)
                     version c id))
              counts)
      end)
    t.groups

let finalize ?expect t =
  Hashtbl.iter
    (fun aid p ->
      if p.flying then
        violate t ~pkt:p Conservation ~time:p.admit_time
          (Printf.sprintf
             "packet #%d was admitted but never delivered, served or dropped"
             aid))
    t.pkts;
  (match expect with
  | None -> ()
  | Some e ->
    let mismatch what ~audit ~sim =
      if audit <> sim then
        violate t Conservation ~time:0.0
          (Printf.sprintf "%s: audit saw %d, simulator counted %d" what audit
             sim)
    in
    mismatch "injected packets" ~audit:t.admitted ~sim:e.injected;
    mismatch "deliveries (incl. wp-served)" ~audit:(t.delivered + t.wp)
      ~sim:e.delivered;
    mismatch "drops" ~audit:t.dropped ~sim:e.dropped;
    mismatch "wp-served" ~audit:t.wp ~sim:e.wp_served;
    mismatch "fragments created" ~audit:t.frag_extra ~sim:e.fragments;
    if Array.length e.loads = t.n_mboxes then
      Array.iteri
        (fun i load ->
          if float_of_int t.enforced_at.(i) <> load then
            violate t Conservation ~time:0.0
              (Printf.sprintf
                 "mbox %d node balance: audit saw %d packets, load counter \
                  says %g"
                 i t.enforced_at.(i) load))
        e.loads
    else
      violate t Conservation ~time:0.0
        (Printf.sprintf "load vector has %d entries, deployment has %d mboxes"
           (Array.length e.loads) t.n_mboxes));
  (* Repair invariant, closing rule: every corruption that manifested
     must have been repaired — and on time.  Late repairs were already
     flagged when they arrived; here we catch the never-repaired.  An
     unmanifested corruption is benign by construction (it provably
     never influenced the data plane), and with the sweep disabled the
     deadline is infinite, so only finite bounds are enforceable. *)
  Hashtbl.iter
    (fun cid c ->
      match (c.c_manifested, c.c_repaired) with
      | Some m, None when Float.is_finite c.c_deadline ->
        violate t Repair ~time:m
          (Printf.sprintf
             "corruption #%d manifested at t=%.3f and was never repaired \
              (deadline t=%.3f)"
             cid m c.c_deadline)
      | _ -> ())
    t.corruptions;
  check_feasibility t;
  {
    events = t.events;
    packets = t.admitted;
    flows = Hashtbl.length t.flows;
    delivered = t.delivered;
    dropped = t.dropped;
    wp_served = t.wp;
    decisions = t.decisions;
    versions = t.latest;
    feasibility_groups = t.feas_groups;
    violations = t.violations;
    sample = List.rev t.sample_rev;
  }

let ok (r : report) = r.violations = 0

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>[%s] t=%.3f %s" (invariant_name v.invariant)
    v.time v.detail;
  List.iter (fun line -> Format.fprintf ppf "@,| %s" line) v.trace;
  Format.fprintf ppf "@]"

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "audit: %d events, %d packets in %d flows (%d delivered, %d dropped, %d \
     wp-served), %d steering decisions, %d config versions, %d feasibility \
     groups checked: %d violation%s@."
    r.events r.packets r.flows r.delivered r.dropped r.wp_served r.decisions
    r.versions r.feasibility_groups r.violations
    (if r.violations = 1 then "" else "s");
  List.iter (fun v -> Format.fprintf ppf "%a@." pp_violation v) r.sample;
  if r.violations > List.length r.sample then
    Format.fprintf ppf "... and %d more violations@."
      (r.violations - List.length r.sample)
