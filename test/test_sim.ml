(* Tests for the workload generator, the flow-level simulator, the
   packet-level simulator, and the cross-simulator integration
   invariants. *)

let campus ?(seed = 42) () = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed

(* --- Workload ---------------------------------------------------------- *)

let test_workload_shape () =
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:1 ~flows:9_000 () in
  Alcotest.(check int) "flow count" 9_000 (Array.length w.Sim.Workload.flows);
  (* 5 per class: 5 m2o + 5 o2m + 5 companions + 5 o2o = 20 rules. *)
  Alcotest.(check int) "rule count" 20 (List.length w.Sim.Workload.rules);
  (* Flow classes split evenly. *)
  let count cls =
    Array.fold_left
      (fun acc (f : Sim.Workload.flow_spec) ->
        if f.Sim.Workload.intended_class = cls then acc + 1 else acc)
      0 w.Sim.Workload.flows
  in
  Alcotest.(check int) "one third m2o" 3_000 (count Sim.Workload.Many_to_one);
  Alcotest.(check int) "one third o2m" 3_000 (count Sim.Workload.One_to_many);
  Alcotest.(check int) "one third o2o" 3_000 (count Sim.Workload.One_to_one)

let test_workload_calibration () =
  (* 30k flows should give on the order of 1M packets (paper: 30k-300k
     flows <-> 1M-10M packets).  Allow a generous band for power-law
     variance. *)
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:2 ~flows:30_000 () in
  let total = w.Sim.Workload.total_packets in
  if total < 700_000 || total > 1_400_000 then
    Alcotest.failf "30k flows gave %d packets, expected ~1M" total

let test_workload_sizes_bounded () =
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:3 ~flows:5_000 () in
  Array.iter
    (fun (f : Sim.Workload.flow_spec) ->
      if f.Sim.Workload.packets < 1 || f.Sim.Workload.packets > 5000 then
        Alcotest.failf "flow size %d outside [1,5000]" f.Sim.Workload.packets;
      Alcotest.(check bool) "distinct endpoints" true
        (f.Sim.Workload.src_proxy <> f.Sim.Workload.dst_proxy))
    w.Sim.Workload.flows

let test_workload_flows_match_their_rule () =
  (* The stored rule_id must be the true first match of the flow's
     5-tuple against the ordered rule list. *)
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:4 ~flows:2_000 () in
  Array.iter
    (fun (f : Sim.Workload.flow_spec) ->
      let expected =
        Option.map
          (fun r -> r.Policy.Rule.id)
          (Policy.Rule.first_match w.Sim.Workload.rules f.Sim.Workload.flow)
      in
      Alcotest.(check (option int)) "first match recorded" expected
        f.Sim.Workload.rule_id)
    w.Sim.Workload.flows

let test_workload_endpoints_consistent () =
  (* src/dst addresses really lie in the stated proxies' subnets. *)
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:1_000 () in
  Array.iter
    (fun (f : Sim.Workload.flow_spec) ->
      Alcotest.(check bool) "src in subnet" true
        (Netpkt.Addr.Prefix.contains
           (Sdm.Deployment.subnet_of dep f.Sim.Workload.src_proxy)
           f.Sim.Workload.flow.Netpkt.Flow.src);
      Alcotest.(check bool) "dst in subnet" true
        (Netpkt.Addr.Prefix.contains
           (Sdm.Deployment.subnet_of dep f.Sim.Workload.dst_proxy)
           f.Sim.Workload.flow.Netpkt.Flow.dst))
    w.Sim.Workload.flows

let test_workload_deterministic () =
  let dep = campus () in
  let a = Sim.Workload.generate ~deployment:dep ~seed:6 ~flows:500 () in
  let b = Sim.Workload.generate ~deployment:dep ~seed:6 ~flows:500 () in
  Alcotest.(check int) "same totals" a.Sim.Workload.total_packets
    b.Sim.Workload.total_packets;
  Array.iteri
    (fun i (fa : Sim.Workload.flow_spec) ->
      let fb = b.Sim.Workload.flows.(i) in
      Alcotest.(check bool) "same flow" true
        (Netpkt.Flow.equal fa.Sim.Workload.flow fb.Sim.Workload.flow))
    a.Sim.Workload.flows

let test_measure_totals () =
  let dep = campus () in
  let w = Sim.Workload.generate ~deployment:dep ~seed:7 ~flows:2_000 () in
  let m = Sim.Workload.measure w in
  let expected =
    Array.fold_left
      (fun acc (f : Sim.Workload.flow_spec) ->
        match f.Sim.Workload.rule_id with
        | Some _ -> acc +. float_of_int f.Sim.Workload.packets
        | None -> acc)
      0.0 w.Sim.Workload.flows
  in
  Alcotest.(check (float 1e-6)) "measured total = policy packets" expected
    (Sdm.Measurement.total m)

(* --- Flowsim ------------------------------------------------------------ *)

let run_campus_strategies flows =
  let dep = campus () in
  Sim.Experiment.run_strategies ~deployment:dep ~flows ()

let test_flowsim_load_conservation () =
  (* Total middlebox load = sum over enforced flows of
     packets * chain length, for every strategy. *)
  let workload, runs = run_campus_strategies 5_000 in
  let expected =
    Array.fold_left
      (fun acc (f : Sim.Workload.flow_spec) ->
        match Sim.Workload.rule_of workload f with
        | Some r when not (Policy.Action.is_permit r.Policy.Rule.actions) ->
          acc
          + (f.Sim.Workload.packets * List.length r.Policy.Rule.actions)
        | _ -> acc)
      0 workload.Sim.Workload.flows
  in
  List.iter
    (fun (r : Sim.Experiment.strategy_run) ->
      let total =
        Array.fold_left ( +. ) 0.0 r.Sim.Experiment.result.Sim.Flowsim.loads
      in
      Alcotest.(check (float 0.5))
        (r.Sim.Experiment.strategy ^ " load conservation")
        (float_of_int expected) total)
    runs

let test_flowsim_hot_potato_uses_closest () =
  (* Under HP every enforced flow's first middlebox is the closest one
     to its proxy: all load of a function e from proxy s lands on
     m_s^e.  Spot-check by re-deriving loads for a tiny workload. *)
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:8 ~flows:300 () in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      Sdm.Controller.Hot_potato
  with
  | Error e -> Alcotest.fail e
  | Ok controller ->
    let result = Sim.Flowsim.run ~controller ~workload () in
    let expected = Array.make (Array.length dep.Sdm.Deployment.middleboxes) 0.0 in
    Array.iter
      (fun (f : Sim.Workload.flow_spec) ->
        match Sim.Workload.rule_of workload f with
        | Some rule when rule.Policy.Rule.actions <> [] ->
          let entity = ref (Mbox.Entity.Proxy f.Sim.Workload.src_proxy) in
          List.iter
            (fun nf ->
              let mb = Sdm.Controller.closest controller !entity nf in
              expected.(mb.Mbox.Middlebox.id) <-
                expected.(mb.Mbox.Middlebox.id)
                +. float_of_int f.Sim.Workload.packets;
              entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id)
            rule.Policy.Rule.actions
        | _ -> ())
      workload.Sim.Workload.flows;
    Array.iteri
      (fun i load ->
        Alcotest.(check (float 1e-6)) (Printf.sprintf "mbox %d" i) expected.(i) load)
      result.Sim.Flowsim.loads

let test_flowsim_lb_beats_others () =
  let _, runs = run_campus_strategies 60_000 in
  let max_of name =
    let r = List.find (fun r -> r.Sim.Experiment.strategy = name) runs in
    List.fold_left
      (fun acc nf ->
        max acc
          (Sim.Flowsim.max_load_of_nf r.Sim.Experiment.controller
             r.Sim.Experiment.result nf))
      0.0
      [ Policy.Action.FW; Policy.Action.IDS; Policy.Action.WP; Policy.Action.TM ]
  in
  let hp = max_of "HP" and rand = max_of "Rand" and lb = max_of "LB" in
  Alcotest.(check bool) "LB <= Rand" true (lb <= rand);
  Alcotest.(check bool) "LB <= HP" true (lb <= hp)

let test_flowsim_lb_close_to_lambda () =
  (* Realized LB max load must be near the LP optimum: hashing
     quantises flows, so allow 15%. *)
  let _, runs = run_campus_strategies 60_000 in
  let lb = List.find (fun r -> r.Sim.Experiment.strategy = "LB") runs in
  match lb.Sim.Experiment.lambda with
  | None -> Alcotest.fail "LB must carry lambda"
  | Some lambda ->
    let realized =
      Array.fold_left max 0.0 lb.Sim.Experiment.result.Sim.Flowsim.loads
    in
    if realized > lambda *. 1.15 +. 1000.0 then
      Alcotest.failf "realized %f far above lambda %f" realized lambda

let test_flowsim_stretch () =
  let _, runs = run_campus_strategies 3_000 in
  List.iter
    (fun (r : Sim.Experiment.strategy_run) ->
      let s = Sim.Flowsim.stretch r.Sim.Experiment.result in
      (* Enforcement detours can only lengthen paths. *)
      Alcotest.(check bool) "stretch >= 1" true (s >= 1.0);
      Alcotest.(check bool) "stretch sane" true (s < 10.0))
    runs

(* --- Pktsim ------------------------------------------------------------- *)

let pkt_config =
  { Sim.Pktsim.default_config with packet_interval = 0.5; start_window = 20.0 }

let small_pkt_setup ?(strategy = `Lb) ?(flows = 300) ?(seed = 21) () =
  let dep = campus ~seed () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed ~flows () in
  let kind =
    match strategy with
    | `Hp -> Sdm.Controller.Hot_potato
    | `Lb -> Sdm.Controller.Load_balanced (Sim.Workload.measure workload)
  in
  match Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules kind with
  | Error e -> Alcotest.fail e
  | Ok controller -> (controller, workload)

let test_pktsim_delivers_everything () =
  let controller, workload = small_pkt_setup () in
  let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  Alcotest.(check int) "all injected" workload.Sim.Workload.total_packets
    stats.Sim.Pktsim.injected_packets;
  Alcotest.(check int) "all delivered" stats.Sim.Pktsim.injected_packets
    stats.Sim.Pktsim.delivered_packets;
  Alcotest.(check int) "no drops" 0 stats.Sim.Pktsim.dropped_packets

let test_pktsim_classifier_invariant () =
  (* The classifier knob selects a matching structure, never a
     semantics: all three implement the same first-match (lowest rule
     id), so every statistic must be identical bit for bit. *)
  let controller, workload = small_pkt_setup ~flows:120 () in
  let run classifier =
    Sim.Pktsim.run
      ~config:{ pkt_config with classifier }
      ~controller ~workload ()
  in
  let reference = run Sim.Pktsim.Trie in
  List.iter
    (fun (name, classifier) ->
      let stats = run classifier in
      Alcotest.(check bool)
        (Printf.sprintf "%s matches Trie exactly" name)
        true
        (stats = reference))
    [ ("dectree", Sim.Pktsim.Dectree); ("linear", Sim.Pktsim.Linear) ]

let test_pktsim_loads_equal_flowsim () =
  (* The headline integration invariant: per-middlebox packet loads
     from the packet-level simulation equal the flow-level ones, for
     both HP and LB, with and without label switching. *)
  List.iter
    (fun strategy ->
      let controller, workload = small_pkt_setup ~strategy () in
      let flow_result = Sim.Flowsim.run ~controller ~workload () in
      List.iter
        (fun label_switching ->
          let stats =
            Sim.Pktsim.run
              ~config:{ pkt_config with label_switching }
              ~controller ~workload ()
          in
          Array.iteri
            (fun i expected ->
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "mbox %d (ls=%b)" i label_switching)
                expected stats.Sim.Pktsim.loads.(i))
            flow_result.Sim.Flowsim.loads)
        [ true; false ])
    [ `Hp; `Lb ]

let test_pktsim_flowsim_agree_on_waxman () =
  (* Cross-topology sanity for the headline invariant. *)
  let dep = Sim.Experiment.build_deployment Sim.Experiment.Waxman ~seed:17 in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:17 ~flows:120 () in
  let traffic = Sim.Workload.measure workload in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok controller ->
    let flow_result = Sim.Flowsim.run ~controller ~workload () in
    let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
    Alcotest.(check int) "no drops" 0 stats.Sim.Pktsim.dropped_packets;
    Array.iteri
      (fun i expected ->
        Alcotest.(check (float 1e-6)) (Printf.sprintf "mbox %d" i) expected
          stats.Sim.Pktsim.loads.(i))
      flow_result.Sim.Flowsim.loads

let test_pktsim_label_switching_kicks_in () =
  let controller, workload = small_pkt_setup ~flows:200 () in
  let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  Alcotest.(check bool) "control packets flowed" true
    (stats.Sim.Pktsim.control_packets > 0);
  Alcotest.(check bool) "label-switched majority" true
    (stats.Sim.Pktsim.label_switched_packets > stats.Sim.Pktsim.tunneled_packets);
  let off =
    Sim.Pktsim.run
      ~config:{ pkt_config with label_switching = false }
      ~controller ~workload ()
  in
  Alcotest.(check int) "no label switching when disabled" 0
    off.Sim.Pktsim.label_switched_packets;
  Alcotest.(check int) "no control packets when disabled" 0
    off.Sim.Pktsim.control_packets

let test_pktsim_label_switching_avoids_fragments () =
  let controller, workload = small_pkt_setup ~flows:200 () in
  let with_ls = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let without_ls =
    Sim.Pktsim.run
      ~config:{ pkt_config with label_switching = false }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "IP-over-IP fragments" true
    (without_ls.Sim.Pktsim.fragments_created > 0);
  Alcotest.(check bool) "label switching reduces fragmentation" true
    (with_ls.Sim.Pktsim.fragments_created
    < without_ls.Sim.Pktsim.fragments_created / 2)

let test_pktsim_routing_substrate_invariance () =
  (* Middlebox loads do not depend on which routing protocol built the
     routers' tables — enforcement decisions hash flows, not routes. *)
  let controller, workload = small_pkt_setup ~flows:150 () in
  let run source =
    (Sim.Pktsim.run
       ~config:{ pkt_config with table_source = source }
       ~controller ~workload ())
      .Sim.Pktsim.loads
  in
  let oracle = run Sim.Pktsim.Oracle in
  let ospf = run Sim.Pktsim.Distributed_ospf in
  let dvr = run Sim.Pktsim.Distributed_dvr in
  Array.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "ospf mbox %d" i) expected
        ospf.(i);
      Alcotest.(check (float 1e-6)) (Printf.sprintf "dvr mbox %d" i) expected
        dvr.(i))
    oracle

let test_pktsim_cache_suppresses_lookups () =
  let controller, workload = small_pkt_setup ~flows:200 () in
  let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  (* Only the first packet of a flow pays a lookup, at the proxy and at
     each chain middlebox — far fewer lookups than packet events. *)
  let flows = Array.length workload.Sim.Workload.flows in
  Alcotest.(check bool) "lookups bounded by flows x (1+chain)" true
    (stats.Sim.Pktsim.multi_field_lookups <= flows * 4);
  Alcotest.(check bool) "cache hits dominate" true
    (stats.Sim.Pktsim.cache_hits > stats.Sim.Pktsim.multi_field_lookups)

let test_pktsim_label_expiry_recovery () =
  let controller, workload = small_pkt_setup ~flows:60 () in
  (* Packets spaced wider than the label timeout: label-switched paths
     keep expiring mid-flow, packets that hit stale paths are lost, a
     teardown flows back, and the proxy re-establishes via IP-over-IP. *)
  let config =
    { pkt_config with packet_interval = 10.0; label_timeout = 3.0 }
  in
  let stats = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "misses happened" true (stats.Sim.Pktsim.label_misses > 0);
  Alcotest.(check bool) "teardowns flowed" true (stats.Sim.Pktsim.teardowns > 0);
  Alcotest.(check int) "every loss is a label miss"
    stats.Sim.Pktsim.label_misses stats.Sim.Pktsim.dropped_packets;
  Alcotest.(check int) "everything else delivered"
    (stats.Sim.Pktsim.injected_packets - stats.Sim.Pktsim.label_misses)
    stats.Sim.Pktsim.delivered_packets;
  (* Recovery really happens: the flow keeps re-establishing, so
     tunnelled legs outnumber flows (one initial establishment each). *)
  Alcotest.(check bool) "re-establishments" true
    (stats.Sim.Pktsim.control_packets > Array.length workload.Sim.Workload.flows);
  (* With a comfortable timeout the same setup loses nothing. *)
  let healthy =
    Sim.Pktsim.run
      ~config:{ config with label_timeout = 1e6 }
      ~controller ~workload ()
  in
  Alcotest.(check int) "no misses with long timeout" 0
    healthy.Sim.Pktsim.label_misses;
  Alcotest.(check int) "all delivered" healthy.Sim.Pktsim.injected_packets
    healthy.Sim.Pktsim.delivered_packets

let test_pktsim_wp_cache_short_circuit () =
  (* Figure 3's chain: WP first; cached flows stop at the web proxy and
     never load the downstream FW/IDS. *)
  let dep = campus () in
  let rules =
    Policy.Rule.index
      [
        Policy.Descriptor.make
          ~src:(Sdm.Deployment.subnet_of dep 0)
          ~dport:(Policy.Descriptor.Port 80) ();
      ]
      [ Policy.Action.[ WP; FW; IDS ] ]
  in
  let flows =
    Array.init 60 (fun i ->
        {
          Sim.Workload.id = i;
          flow =
            Netpkt.Flow.make
              ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 0) (2 + i))
              ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 3) (2 + i))
              ~proto:6 ~sport:(30000 + i) ~dport:80;
          src_proxy = 0;
          dst_proxy = 3;
          rule_id = Some 0;
          intended_class = Sim.Workload.One_to_many;
          packets = 10;
          packet_bytes = 576;
        })
  in
  let workload = { Sim.Workload.rules; flows; total_packets = 600 } in
  let controller =
    match Sdm.Controller.configure dep ~rules Sdm.Controller.Hot_potato with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let load_of stats nf =
    List.fold_left
      (fun acc (m : Mbox.Middlebox.t) -> acc +. stats.Sim.Pktsim.loads.(m.id))
      0.0
      (Sdm.Deployment.middleboxes_of dep nf)
  in
  let cached =
    Sim.Pktsim.run
      ~config:{ pkt_config with wp_cache_hit_ratio = 0.5 }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "some flows served from cache" true
    (cached.Sim.Pktsim.wp_cache_served > 0);
  Alcotest.(check int) "responses count as deliveries"
    cached.Sim.Pktsim.injected_packets cached.Sim.Pktsim.delivered_packets;
  Alcotest.(check bool) "cached flows skip the downstream chain" true
    (load_of cached Policy.Action.FW < load_of cached Policy.Action.WP);
  Alcotest.(check (float 1e-9)) "FW and IDS see the same survivors"
    (load_of cached Policy.Action.FW)
    (load_of cached Policy.Action.IDS);
  let uncached = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  Alcotest.(check int) "ratio 0: nothing cached" 0
    uncached.Sim.Pktsim.wp_cache_served;
  Alcotest.(check (float 1e-9)) "ratio 0: full chain everywhere"
    (load_of uncached Policy.Action.WP)
    (load_of uncached Policy.Action.FW)

let test_pktsim_ecmp_invariance () =
  (* ECMP spreading changes paths, never middlebox loads or delivery. *)
  let controller, workload = small_pkt_setup ~flows:150 () in
  let plain = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let ecmp =
    Sim.Pktsim.run ~config:{ pkt_config with ecmp = true } ~controller ~workload ()
  in
  Alcotest.(check int) "all delivered" ecmp.Sim.Pktsim.injected_packets
    ecmp.Sim.Pktsim.delivered_packets;
  Alcotest.(check int) "no drops" 0 ecmp.Sim.Pktsim.dropped_packets;
  Array.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "mbox %d" i) expected
        ecmp.Sim.Pktsim.loads.(i))
    plain.Sim.Pktsim.loads

let test_pktsim_latency_overhead () =
  (* Enforcement detours must show up as end-to-end latency: the same
     traffic with the policy tables emptied is strictly faster. *)
  let controller, workload = small_pkt_setup ~flows:150 () in
  let enforced = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let no_rules = { workload with Sim.Workload.rules = [] } in
  let bare_controller =
    match
      Sdm.Controller.configure controller.Sdm.Controller.deployment ~rules:[]
        Sdm.Controller.Hot_potato
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let plain =
    Sim.Pktsim.run ~config:pkt_config ~controller:bare_controller
      ~workload:no_rules ()
  in
  Alcotest.(check bool) "latency measured" true
    (enforced.Sim.Pktsim.latency_mean > 0.0 && plain.Sim.Pktsim.latency_mean > 0.0);
  Alcotest.(check bool) "p50 <= p99" true
    (enforced.Sim.Pktsim.latency_p50 <= enforced.Sim.Pktsim.latency_p99);
  Alcotest.(check bool) "enforcement adds latency" true
    (enforced.Sim.Pktsim.latency_mean > plain.Sim.Pktsim.latency_mean);
  Alcotest.(check (float 1e-9)) "plain run touches no middlebox" 0.0
    (Array.fold_left ( +. ) 0.0 plain.Sim.Pktsim.loads)

let test_pktsim_same_seed_deterministic () =
  (* Two runs of the same scenario must agree on every stats field,
     including the engine counters and per-middlebox loads. *)
  let controller, workload = small_pkt_setup ~flows:150 () in
  let a = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let b = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  Alcotest.(check bool) "identical stats" true
    (a.Sim.Pktsim.loads = b.Sim.Pktsim.loads
    && { a with Sim.Pktsim.loads = [||] } = { b with Sim.Pktsim.loads = [||] })

(* Every stats field of a seed scenario, captured from the pre-rewrite
   per-hop event cascade.  The hop fast-forwarding rewrite must
   reproduce these bit-exactly: hex float literals pin the exact
   double, not a rounding of it. *)
type pinned = {
  e_injected : int;
  e_control : int;
  e_lookups : int;
  e_hits : int;
  e_tunneled : int;
  e_ls : int;
  e_frags : int;
  e_hops : int;
  e_events : int;
  e_sim_time : float;
  e_mean : float;
  e_p50 : float;
  e_p99 : float;
  e_loads_sum : float;
  e_loads_max : float;
}

let check_pinned name (p : pinned) (s : Sim.Pktsim.stats) =
  let chk field = Alcotest.(check int) (name ^ " " ^ field) in
  let chkf field = Alcotest.(check (float 0.0)) (name ^ " " ^ field) in
  chk "injected" p.e_injected s.Sim.Pktsim.injected_packets;
  chk "delivered" p.e_injected s.Sim.Pktsim.delivered_packets;
  chk "dropped" 0 s.Sim.Pktsim.dropped_packets;
  chk "control" p.e_control s.Sim.Pktsim.control_packets;
  chk "lookups" p.e_lookups s.Sim.Pktsim.multi_field_lookups;
  chk "hits" p.e_hits s.Sim.Pktsim.cache_hits;
  chk "negative hits" 0 s.Sim.Pktsim.cache_negative_hits;
  chk "tunneled" p.e_tunneled s.Sim.Pktsim.tunneled_packets;
  chk "label switched" p.e_ls s.Sim.Pktsim.label_switched_packets;
  chk "fragments" p.e_frags s.Sim.Pktsim.fragments_created;
  chk "hops" p.e_hops s.Sim.Pktsim.router_hops;
  chk "label misses" 0 s.Sim.Pktsim.label_misses;
  chk "teardowns" 0 s.Sim.Pktsim.teardowns;
  chk "wp served" 0 s.Sim.Pktsim.wp_cache_served;
  chk "evictions" 0 s.Sim.Pktsim.cache_evictions;
  chk "events scheduled" p.e_events s.Sim.Pktsim.events_scheduled;
  chk "events processed" p.e_events s.Sim.Pktsim.events_processed;
  chkf "sim_time" p.e_sim_time s.Sim.Pktsim.sim_time;
  chkf "latency mean" p.e_mean s.Sim.Pktsim.latency_mean;
  chkf "latency p50" p.e_p50 s.Sim.Pktsim.latency_p50;
  chkf "latency p99" p.e_p99 s.Sim.Pktsim.latency_p99;
  chkf "loads sum" p.e_loads_sum
    (Array.fold_left ( +. ) 0.0 s.Sim.Pktsim.loads);
  chkf "loads max" p.e_loads_max (Array.fold_left max 0.0 s.Sim.Pktsim.loads)

let test_pktsim_pinned_equivalence () =
  (* The built-in correctness oracle for the fast-forward rewrite: the
     seed scenarios with label switching and ECMP toggled, pinned to
     the per-hop cascade's exact output.  ECMP must change nothing —
     the hash walk visits the same arrays in the same order. *)
  let campus_ls =
    {
      e_injected = 5212; e_control = 523; e_lookups = 1000; e_hits = 5455;
      e_tunneled = 1243; e_ls = 12363; e_frags = 689; e_hops = 29570;
      e_events = 24553;
      e_sim_time = 0x1.68ab6f6a54e73p+9; e_mean = 0x1.cea595abacde8p-1;
      e_p50 = 0x1.ccccccccccd4p-1; e_p99 = 0x1.333333333338p+0;
      e_loads_sum = 0x1.a93p+13; e_loads_max = 0x1.e7p+10;
    }
  in
  let campus_tun =
    { campus_ls with
      e_control = 0; e_hits = 17818; e_tunneled = 13606; e_ls = 0;
      e_frags = 6265; e_hops = 28278; e_events = 24030 }
  in
  let waxman_ls =
    {
      e_injected = 5335; e_control = 245; e_lookups = 400; e_hits = 5510;
      e_tunneled = 575; e_ls = 10942; e_frags = 262; e_hops = 37564;
      e_events = 22432;
      e_sim_time = 0x1.2a5424c38f6cp+10; e_mean = 0x1.01c8f88620aa3p+0;
      e_p50 = 0x1.cccccccccd4p-1; e_p99 = 0x1.4cccccccccd2p+0;
      e_loads_sum = 0x1.67e8p+13; e_loads_max = 0x1.632p+11;
    }
  in
  let waxman_tun =
    { waxman_ls with
      e_control = 0; e_hits = 16452; e_tunneled = 11517; e_ls = 0;
      e_frags = 3705; e_hops = 36870; e_events = 22187 }
  in
  let scenario name scen ~seed ~flows expect_ls expect_tun =
    let dep = Sim.Experiment.build_deployment scen ~seed in
    let workload = Sim.Workload.generate ~deployment:dep ~seed ~flows () in
    let traffic = Sim.Workload.measure workload in
    match
      Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Error e -> Alcotest.fail e
    | Ok controller ->
      List.iter
        (fun (label_switching, ecmp) ->
          let stats =
            Sim.Pktsim.run
              ~config:{ pkt_config with label_switching; ecmp }
              ~controller ~workload ()
          in
          let expect = if label_switching then expect_ls else expect_tun in
          check_pinned
            (Printf.sprintf "%s ls=%b ecmp=%b" name label_switching ecmp)
            expect stats)
        [ (true, false); (false, false); (true, true); (false, true) ]
  in
  scenario "campus" Sim.Experiment.Campus ~seed:21 ~flows:300 campus_ls
    campus_tun;
  scenario "waxman" Sim.Experiment.Waxman ~seed:17 ~flows:120 waxman_ls
    waxman_tun

let test_pktsim_event_count_regression () =
  (* Fast-forwarding schedules one event per path segment, not per
     hop: the engine fires far fewer events than the hops it
     simulates, and (with no losses) exactly one event per packet
     leg plus deliveries. *)
  let controller, workload = small_pkt_setup () in
  let stats = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  Alcotest.(check bool) "well below one event per hop" true
    (stats.Sim.Pktsim.events_processed < stats.Sim.Pktsim.router_hops);
  Alcotest.(check int) "one event per leg"
    (stats.Sim.Pktsim.injected_packets + stats.Sim.Pktsim.tunneled_packets
    + stats.Sim.Pktsim.label_switched_packets
    + stats.Sim.Pktsim.control_packets + stats.Sim.Pktsim.delivered_packets)
    stats.Sim.Pktsim.events_processed;
  Alcotest.(check int) "queue fully drained"
    stats.Sim.Pktsim.events_scheduled stats.Sim.Pktsim.events_processed

let qcheck_pktsim_chaos =
  (* Robustness sweep: random knob combinations must preserve the
     global invariants — everything injected is accounted for, and
     with reliable label state the middlebox loads match the
     flow-level semantics exactly. *)
  QCheck.Test.make ~count:12 ~name:"pktsim invariants under random configs"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let label_switching = Stdx.Rng.bool rng in
      let ecmp = Stdx.Rng.bool rng in
      let service_rate =
        if Stdx.Rng.bool rng then infinity else 2.0 +. Stdx.Rng.float rng 20.0
      in
      let cache_capacity =
        if Stdx.Rng.bool rng then None else Some (8 + Stdx.Rng.int rng 64)
      in
      let table_source =
        Stdx.Rng.choose rng
          [| Sim.Pktsim.Oracle; Sim.Pktsim.Distributed_ospf;
             Sim.Pktsim.Distributed_dvr |]
      in
      let config =
        {
          Sim.Pktsim.default_config with
          label_switching;
          ecmp;
          service_rate;
          cache_capacity;
          table_source;
          packet_interval = 0.5;
          start_window = 10.0;
        }
      in
      let controller, workload = small_pkt_setup ~flows:60 ~seed:(seed mod 97) () in
      let stats = Sim.Pktsim.run ~config ~controller ~workload () in
      let flow_result = Sim.Flowsim.run ~controller ~workload () in
      stats.Sim.Pktsim.dropped_packets = 0
      && stats.Sim.Pktsim.delivered_packets = stats.Sim.Pktsim.injected_packets
      && stats.Sim.Pktsim.injected_packets = workload.Sim.Workload.total_packets
      && Array.for_all2
           (fun a b -> abs_float (a -. b) < 1e-6)
           flow_result.Sim.Flowsim.loads stats.Sim.Pktsim.loads)

(* --- Experiments --------------------------------------------------------- *)

let test_experiment_figure_small () =
  let fig =
    Sim.Experiment.run_figure Sim.Experiment.Campus
      ~flow_counts:[ 3_000; 6_000 ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length fig.Sim.Experiment.points);
  List.iter
    (fun (p : Sim.Experiment.point) ->
      Alcotest.(check int) "four middlebox types" 4
        (List.length p.Sim.Experiment.max_loads);
      List.iter
        (fun (_, (hp, rand, lb)) ->
          Alcotest.(check bool) "loads positive" true
            (hp > 0.0 && rand > 0.0 && lb > 0.0))
        p.Sim.Experiment.max_loads)
    fig.Sim.Experiment.points

let test_experiment_linear_growth () =
  (* Max loads grow roughly linearly with volume (paper: "the maximum
     loads increase linearly with traffic volume"). *)
  let fig =
    Sim.Experiment.run_figure Sim.Experiment.Campus
      ~flow_counts:[ 10_000; 40_000 ] ()
  in
  match fig.Sim.Experiment.points with
  | [ p1; p4 ] ->
    List.iter
      (fun nf ->
        let _, _, lb1 = List.assoc nf p1.Sim.Experiment.max_loads in
        let _, _, lb4 = List.assoc nf p4.Sim.Experiment.max_loads in
        let ratio = lb4 /. lb1 in
        if ratio < 2.0 || ratio > 8.0 then
          Alcotest.failf "%s: 4x flows gave %.2fx load"
            (Policy.Action.nf_to_string nf) ratio)
      [ Policy.Action.FW; Policy.Action.IDS ]
  | _ -> Alcotest.fail "expected two points"

let test_experiment_table3_shape () =
  let t3 = Sim.Experiment.run_table3 ~flows:30_000 () in
  let rows = t3.Sim.Experiment.t3_rows in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  Alcotest.(check bool) "events counted" true (t3.Sim.Experiment.t3_events > 0);
  List.iter
    (fun (r : Sim.Experiment.table3_row) ->
      (* LB spread is the tightest of the three strategies. *)
      let spread max_ min_ = max_ -. min_ in
      Alcotest.(check bool) "lb spread < hp spread" true
        (spread r.Sim.Experiment.lb_max r.Sim.Experiment.lb_min
        <= spread r.Sim.Experiment.hp_max r.Sim.Experiment.hp_min);
      Alcotest.(check bool) "max >= min" true
        (r.Sim.Experiment.lb_max >= r.Sim.Experiment.lb_min))
    rows

let test_queue_ablation () =
  let q = Sim.Experiment.ablation_queue ~flows:200 () in
  Alcotest.(check bool) "finite rate" true (q.Sim.Experiment.service_rate > 0.0);
  (* Calibration targets ~50% utilisation for LB; HP concentrates and
     must run hotter and slower. *)
  Alcotest.(check bool) "HP hotter than LB" true
    (q.Sim.Experiment.hp_util_max > q.Sim.Experiment.lb_util_max);
  Alcotest.(check bool) "HP slower (mean)" true
    (q.Sim.Experiment.hp_latency_mean > q.Sim.Experiment.lb_latency_mean);
  Alcotest.(check bool) "HP slower (p99)" true
    (q.Sim.Experiment.hp_latency_p99 > q.Sim.Experiment.lb_latency_p99)

let test_queueing_preserves_loads () =
  (* Finite service delays packets but never changes which middlebox
     processes them. *)
  let controller, workload = small_pkt_setup ~flows:100 () in
  let infinite = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let finite =
    Sim.Pktsim.run
      ~config:{ pkt_config with service_rate = 5.0 }
      ~controller ~workload ()
  in
  Alcotest.(check int) "all delivered" finite.Sim.Pktsim.injected_packets
    finite.Sim.Pktsim.delivered_packets;
  Array.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "mbox %d" i) expected
        finite.Sim.Pktsim.loads.(i))
    infinite.Sim.Pktsim.loads;
  Alcotest.(check bool) "queueing adds latency" true
    (finite.Sim.Pktsim.latency_mean > infinite.Sim.Pktsim.latency_mean)

let test_epoch_adaptation () =
  let dep = campus () in
  let report = Sim.Epochsim.run ~deployment:dep ~epochs:4 ~base_flows:10_000 () in
  let metrics = report.Sim.Epochsim.ep_rows in
  Alcotest.(check int) "four epochs" 4 (List.length metrics);
  Alcotest.(check bool) "events counted" true (report.Sim.Epochsim.ep_events > 0);
  (match metrics with
  | first :: _ ->
    (* Epoch 0 has no prior measurement: stale LB *is* hot-potato. *)
    Alcotest.(check (float 1e-6)) "epoch 0 falls back to HP"
      first.Sim.Epochsim.hp_max first.Sim.Epochsim.stale_lb_max
  | [] -> Alcotest.fail "no metrics");
  List.iter
    (fun (m : Sim.Epochsim.epoch_metrics) ->
      (* Clairvoyant planning can only help. *)
      Alcotest.(check bool) "clairvoyant <= stale" true
        (m.Sim.Epochsim.clairvoyant_lb_max <= m.Sim.Epochsim.stale_lb_max +. 1.0);
      Alcotest.(check bool) "clairvoyant <= HP" true
        (m.Sim.Epochsim.clairvoyant_lb_max <= m.Sim.Epochsim.hp_max +. 1.0);
      Alcotest.(check bool) "gap >= 1" true (m.Sim.Epochsim.staleness_gap >= 0.99))
    metrics;
  (* After the first measurement arrives, stale LB beats hot-potato. *)
  List.iteri
    (fun i (m : Sim.Epochsim.epoch_metrics) ->
      if i > 0 then
        Alcotest.(check bool) "stale LB < HP after warm-up" true
          (m.Sim.Epochsim.stale_lb_max < m.Sim.Epochsim.hp_max))
    metrics

let test_flowsim_trace () =
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:500 () in
  let traffic = Sim.Workload.measure workload in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok controller ->
    (* Every enforced flow's trace follows its rule's action list in
       order, with matching middlebox functions. *)
    Array.iter
      (fun (fs : Sim.Workload.flow_spec) ->
        let rule, chain = Sim.Flowsim.trace ~controller fs.Sim.Workload.flow in
        Alcotest.(check (option int)) "same rule as workload"
          fs.Sim.Workload.rule_id
          (Option.map (fun r -> r.Policy.Rule.id) rule);
        match rule with
        | None -> Alcotest.(check int) "no chain" 0 (List.length chain)
        | Some r ->
          Alcotest.(check (list string)) "chain order = action list"
            (List.map Policy.Action.nf_to_string r.Policy.Rule.actions)
            (List.map
               (fun (m : Mbox.Middlebox.t) -> Policy.Action.nf_to_string m.nf)
               chain))
      workload.Sim.Workload.flows;
    (* Source outside every stub: rejected. *)
    let alien =
      Netpkt.Flow.make ~src:(Netpkt.Addr.of_string "99.0.0.1")
        ~dst:(Netpkt.Addr.of_string "10.0.0.5") ~proto:6 ~sport:1 ~dport:2
    in
    match Sim.Flowsim.trace ~controller alien with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection of a foreign source"

let test_controlplane_pricing () =
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:3_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let price kind =
    match Sdm.Controller.configure dep ~rules kind with
    | Ok c -> Sim.Controlplane.price c ~traffic
    | Error e -> Alcotest.fail e
  in
  let hp = price Sdm.Controller.Hot_potato in
  let lb = price (Sdm.Controller.Load_balanced traffic) in
  Alcotest.(check int) "manages proxies + middleboxes" 32 lb.Sim.Controlplane.devices_managed;
  Alcotest.(check bool) "LB ships more config (weights)" true
    (lb.Sim.Controlplane.config_bytes > hp.Sim.Controlplane.config_bytes);
  Alcotest.(check bool) "byte-hops >= bytes" true
    (lb.Sim.Controlplane.config_byte_hops >= lb.Sim.Controlplane.config_bytes);
  Alcotest.(check bool) "configuration time positive" true
    (lb.Sim.Controlplane.time_to_configure > 0.0);
  Alcotest.(check bool) "reports non-empty" true
    (lb.Sim.Controlplane.report_bytes_per_epoch > 0)

let test_controlplane_device_indexing () =
  (* The flat device index (proxies first, then middleboxes) is the
     convention shared by per-device statistics and the audit layer's
     Config_install events — it must be a bijection. *)
  let dep = campus () in
  let n_proxies = Array.length dep.Sdm.Deployment.proxies in
  let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
  let count = Sim.Controlplane.device_count dep in
  Alcotest.(check int) "count = proxies + middleboxes"
    (n_proxies + n_mboxes) count;
  for d = 0 to count - 1 do
    let e = Sim.Controlplane.entity_of_device dep d in
    Alcotest.(check int)
      ("round-trip device " ^ string_of_int d)
      d
      (Sim.Controlplane.device_of_entity dep e)
  done;
  Alcotest.(check bool) "proxies come first" true
    (Sim.Controlplane.entity_of_device dep 0 = Mbox.Entity.Proxy 0);
  Alcotest.(check bool) "middleboxes follow" true
    (Sim.Controlplane.entity_of_device dep n_proxies = Mbox.Entity.Middlebox 0);
  (match Sim.Controlplane.entity_of_device dep count with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range device accepted");
  match Sim.Controlplane.entity_of_device dep (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative device accepted"

let test_controlplane_entity_bytes () =
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:1_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let configure kind =
    match Sdm.Controller.configure dep ~rules kind with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let hp = configure Sdm.Controller.Hot_potato in
  let lb = configure (Sdm.Controller.Load_balanced traffic) in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("positive config size for " ^ Mbox.Entity.to_string e)
        true
        (Sim.Controlplane.entity_bytes lb e > 0))
    [ Mbox.Entity.Proxy 0; Mbox.Entity.Middlebox 0 ];
  (* LB configurations carry the weight tables; hot-potato ones don't. *)
  Alcotest.(check bool) "LB proxy config is no smaller" true
    (Sim.Controlplane.entity_bytes lb (Mbox.Entity.Proxy 0)
    >= Sim.Controlplane.entity_bytes hp (Mbox.Entity.Proxy 0))

let test_experiment_k1_equals_hp () =
  (* k = 1 degenerates the LB candidate sets to the closest middlebox:
     identical loads to hot-potato. *)
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:5 ~flows:2_000 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let hp =
    match Sdm.Controller.configure dep ~rules Sdm.Controller.Hot_potato with
    | Ok c -> Sim.Flowsim.run ~controller:c ~workload ()
    | Error e -> Alcotest.fail e
  in
  let lb1 =
    match
      Sdm.Controller.configure dep ~rules ~k:(fun _ -> 1)
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> Sim.Flowsim.run ~controller:c ~workload ()
    | Error e -> Alcotest.fail e
  in
  Array.iteri
    (fun i hp_load ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "mbox %d" i) hp_load
        lb1.Sim.Flowsim.loads.(i))
    hp.Sim.Flowsim.loads

(* --- Pktsim under injected faults --------------------------------------- *)

let single_fw_flow ~packets =
  (* One hand-built flow through a [FW]-only chain, for exact-count
     fault and soft-state tests. *)
  let dep = campus () in
  let rules =
    Policy.Rule.index
      [
        Policy.Descriptor.make
          ~src:(Sdm.Deployment.subnet_of dep 0)
          ~dport:(Policy.Descriptor.Port 443) ();
      ]
      [ Policy.Action.[ FW ] ]
  in
  let flow =
    Netpkt.Flow.make
      ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 0) 2)
      ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of dep 3) 2)
      ~proto:6 ~sport:40000 ~dport:443
  in
  let flows =
    [|
      {
        Sim.Workload.id = 0;
        flow;
        src_proxy = 0;
        dst_proxy = 3;
        rule_id = Some 0;
        intended_class = Sim.Workload.One_to_one;
        packets;
        packet_bytes = 576;
      };
    |]
  in
  let workload = { Sim.Workload.rules; flows; total_packets = packets } in
  let controller =
    match Sdm.Controller.configure dep ~rules Sdm.Controller.Hot_potato with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  (controller, rules, flow, workload)

let test_pktsim_teardown_exact_counters () =
  (* One flow, packets spaced wider than the label timeout: label
     switching and IP-over-IP re-establishment alternate packet by
     packet, so every soft-state counter is exact.  p1 tunnels and
     establishes; p2's label has expired (miss, drop, teardown back to
     the proxy); p3 re-establishes; and so on. *)
  let controller, _, _, workload = single_fw_flow ~packets:6 in
  let config =
    {
      pkt_config with
      packet_interval = 10.0;
      label_timeout = 3.0;
      start_window = 1.0;
    }
  in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check int) "injected" 6 s.Sim.Pktsim.injected_packets;
  Alcotest.(check int) "tunneled legs" 3 s.Sim.Pktsim.tunneled_packets;
  Alcotest.(check int) "label misses" 3 s.Sim.Pktsim.label_misses;
  Alcotest.(check int) "dropped" 3 s.Sim.Pktsim.dropped_packets;
  Alcotest.(check int) "teardowns" 3 s.Sim.Pktsim.teardowns;
  Alcotest.(check int) "control packets" 3 s.Sim.Pktsim.control_packets;
  Alcotest.(check int) "delivered" 3 s.Sim.Pktsim.delivered_packets;
  Alcotest.(check int) "no leg completes label-switched" 0
    s.Sim.Pktsim.label_switched_packets;
  Alcotest.(check int) "expiry is not a policy violation" 0
    s.Sim.Pktsim.policy_violations

let test_pktsim_crash_failover_relabels () =
  (* Mid-run crash of the one middlebox serving a label-switched flow.
     During the detection window the proxy keeps steering into the dead
     box (counted violations); once the detector flips, it fails over
     to the backup, whose label table has no entry — exactly one miss
     and teardown — then re-establishes, and label switching resumes on
     the backup. *)
  let controller, rules, flow, workload = single_fw_flow ~packets:40 in
  let rule = List.hd rules in
  let victim =
    (Sdm.Controller.next_hop controller (Mbox.Entity.Proxy 0) ~rule
       ~nf:Policy.Action.FW flow)
      .Mbox.Middlebox.id
  in
  let backup =
    (Sdm.Controller.next_hop
       ~alive:(fun id -> id <> victim)
       controller (Mbox.Entity.Proxy 0) ~rule ~nf:Policy.Action.FW flow)
      .Mbox.Middlebox.id
  in
  let schedule =
    Fault.Schedule.make Fault.Schedule.[ { at = 15.0; what = Mbox_crash victim } ]
  in
  let config =
    {
      pkt_config with
      packet_interval = 1.0;
      start_window = 1.0;
      faults = Some schedule;
      detection_delay = 3.0;
    }
  in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "violations in the blind window" true
    (s.Sim.Pktsim.policy_violations >= 2 && s.Sim.Pktsim.policy_violations <= 6);
  Alcotest.(check int) "all fault drops are dead-box hits"
    s.Sim.Pktsim.policy_violations s.Sim.Pktsim.fault_dropped;
  Alcotest.(check int) "one label miss at the backup" 1 s.Sim.Pktsim.label_misses;
  Alcotest.(check int) "one teardown" 1 s.Sim.Pktsim.teardowns;
  Alcotest.(check int) "establish + re-establish" 2 s.Sim.Pktsim.control_packets;
  Alcotest.(check int) "drops fully explained"
    (s.Sim.Pktsim.policy_violations + s.Sim.Pktsim.label_misses)
    s.Sim.Pktsim.dropped_packets;
  Alcotest.(check int) "rest delivered"
    (s.Sim.Pktsim.injected_packets - s.Sim.Pktsim.dropped_packets)
    s.Sim.Pktsim.delivered_packets;
  Alcotest.(check bool) "backup label-switches the tail" true
    (s.Sim.Pktsim.loads.(backup) >= 2.0);
  Alcotest.(check bool) "victim stopped absorbing" true
    (s.Sim.Pktsim.loads.(victim) < 40.0);
  Alcotest.(check bool) "violation tail bounded by detection" true
    (s.Sim.Pktsim.last_violation_time < 15.0 +. 3.0 +. 1.0);
  (* Same schedule, same seed: bit-identical stats. *)
  let again = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "deterministic replay" true
    ({ again with Sim.Pktsim.loads = [||] } = { s with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = s.Sim.Pktsim.loads);
  (* No failover: every post-crash packet dies in the dead box and the
     bleeding never stops. *)
  let nf =
    Sim.Pktsim.run
      ~config:{ config with failover = false }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "no failover bleeds to the end" true
    (nf.Sim.Pktsim.policy_violations > 20);
  Alcotest.(check int) "no failover: no re-establishment" 1
    nf.Sim.Pktsim.control_packets;
  Alcotest.(check bool) "failover strictly better" true
    (s.Sim.Pktsim.policy_violations < nf.Sim.Pktsim.policy_violations)

let test_pktsim_link_flap_load_invariance () =
  (* A mid-run link failure with live OSPF reconvergence, then
     restoration: paths change, enforcement decisions do not — loads
     are bit-identical to the calm run and nothing is lost. *)
  let controller, workload = small_pkt_setup ~flows:100 () in
  let calm = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let topo = (campus ~seed:21 ()).Sdm.Deployment.topo in
  let gw = List.hd (Netgraph.Topology.gateways topo) in
  let core =
    List.find_map
      (fun { Netgraph.Graph.dst; _ } ->
        match Netgraph.Topology.role topo dst with
        | Netgraph.Topology.Core -> Some dst
        | _ -> None)
      (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph gw)
    |> Option.get
  in
  let schedule =
    Fault.Schedule.make
      Fault.Schedule.
        [
          { at = 0.3 *. calm.Sim.Pktsim.sim_time; what = Link_fail (gw, core) };
          { at = 0.6 *. calm.Sim.Pktsim.sim_time; what = Link_restore (gw, core) };
        ]
  in
  let s =
    Sim.Pktsim.run
      ~config:{ pkt_config with faults = Some schedule }
      ~controller ~workload ()
  in
  Alcotest.(check int) "all delivered" s.Sim.Pktsim.injected_packets
    s.Sim.Pktsim.delivered_packets;
  Alcotest.(check int) "no drops" 0 s.Sim.Pktsim.dropped_packets;
  Alcotest.(check int) "no violations" 0 s.Sim.Pktsim.policy_violations;
  Array.iteri
    (fun i expected ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "mbox %d load" i) expected
        s.Sim.Pktsim.loads.(i))
    calm.Sim.Pktsim.loads

let test_pktsim_control_loss_retries () =
  (* A lossy control plane delays label establishment but never loses
     it for good: retransmission masks every loss, and data packets
     just keep tunnelling until the confirmation lands. *)
  let controller, workload = small_pkt_setup ~flows:150 () in
  let schedule = Fault.Schedule.make ~control_loss:0.3 ~loss_seed:7 [] in
  let s =
    Sim.Pktsim.run
      ~config:{ pkt_config with faults = Some schedule }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "control packets were lost" true
    (s.Sim.Pktsim.control_lost > 0);
  Alcotest.(check bool) "retries fired" true (s.Sim.Pktsim.control_retries > 0);
  Alcotest.(check int) "all delivered" s.Sim.Pktsim.injected_packets
    s.Sim.Pktsim.delivered_packets;
  Alcotest.(check int) "no drops" 0 s.Sim.Pktsim.dropped_packets;
  Alcotest.(check bool) "label switching still engages" true
    (s.Sim.Pktsim.label_switched_packets > 0)

let test_pktsim_link_loss_accounted () =
  (* Per-link data loss: packets disappear mid-path but never silently
     — every one is counted dropped at the lossy link. *)
  let controller, workload = small_pkt_setup ~flows:100 () in
  let schedule = Fault.Schedule.make ~link_loss:0.02 ~loss_seed:11 [] in
  let s =
    Sim.Pktsim.run
      ~config:{ pkt_config with faults = Some schedule }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "some packets lost" true (s.Sim.Pktsim.fault_dropped > 0);
  Alcotest.(check int) "every loss accounted" s.Sim.Pktsim.injected_packets
    (s.Sim.Pktsim.delivered_packets + s.Sim.Pktsim.dropped_packets)

let qcheck_pktsim_random_fault_schedules =
  (* Chaos property: any *valid* random fault schedule — crashes,
     recoveries, link flaps, data and control loss — preserves packet
     conservation and never aborts the run.  Schedules are generated
     stateful-valid (a recover needs a preceding crash, etc.), so
     [Pktsim.run]'s validation gate accepts them; the invariants then
     hold whatever the faults did. *)
  QCheck.Test.make ~count:24 ~name:"pktsim conservation under random faults"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create (seed + 1) in
      let dep = campus ~seed:21 () in
      let n_mboxes = Array.length dep.Sdm.Deployment.middleboxes in
      let topo = dep.Sdm.Deployment.topo in
      (* Fault candidate links: gateway-core only.  Campus cores are
         dual-homed, so one such link down keeps the graph connected. *)
      let links =
        List.concat_map
          (fun gw ->
            List.filter_map
              (fun { Netgraph.Graph.dst; _ } ->
                match Netgraph.Topology.role topo dst with
                | Netgraph.Topology.Core -> Some (gw, dst)
                | _ -> None)
              (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph gw))
          (Netgraph.Topology.gateways topo)
        |> Array.of_list
      in
      let mbox_down = Array.make n_mboxes false in
      let link_down = ref None in
      let events = ref [] in
      let t = ref 0.0 in
      for _ = 1 to 1 + Stdx.Rng.int rng 6 do
        t := !t +. 1.0 +. Stdx.Rng.float rng 25.0;
        let up_boxes =
          List.filter (fun i -> not mbox_down.(i)) (List.init n_mboxes Fun.id)
        in
        let down_boxes =
          List.filter (fun i -> mbox_down.(i)) (List.init n_mboxes Fun.id)
        in
        let choices =
          (if up_boxes <> [] then [ `Crash ] else [])
          @ (if down_boxes <> [] then [ `Recover ] else [])
          @ (match !link_down with
            | None when Array.length links > 0 -> [ `Link_fail ]
            | Some _ -> [ `Link_restore ]
            | None -> [])
        in
        let what =
          match Stdx.Rng.choose rng (Array.of_list choices) with
          | `Crash ->
            let id = List.nth up_boxes (Stdx.Rng.int rng (List.length up_boxes)) in
            mbox_down.(id) <- true;
            Fault.Schedule.Mbox_crash id
          | `Recover ->
            let id =
              List.nth down_boxes (Stdx.Rng.int rng (List.length down_boxes))
            in
            mbox_down.(id) <- false;
            Fault.Schedule.Mbox_recover id
          | `Link_fail ->
            let u, v = links.(Stdx.Rng.int rng (Array.length links)) in
            link_down := Some (u, v);
            Fault.Schedule.Link_fail (u, v)
          | `Link_restore ->
            let u, v = Option.get !link_down in
            link_down := None;
            Fault.Schedule.Link_restore (u, v)
        in
        events := { Fault.Schedule.at = !t; what } :: !events
      done;
      let schedule =
        Fault.Schedule.make
          ~link_loss:(Stdx.Rng.float rng 0.05)
          ~control_loss:(Stdx.Rng.float rng 0.3)
          ~loss_seed:(seed + 7) (List.rev !events)
      in
      let controller, workload = small_pkt_setup ~flows:60 ~seed:21 () in
      let config =
        {
          pkt_config with
          faults = Some schedule;
          detection_delay = 1.0 +. Stdx.Rng.float rng 20.0;
        }
      in
      let s = Sim.Pktsim.run ~config ~controller ~workload () in
      let again = Sim.Pktsim.run ~config ~controller ~workload () in
      (* Conservation: everything injected is delivered or counted
         dropped; violations and fault losses are within the drops. *)
      s.Sim.Pktsim.injected_packets
      = s.Sim.Pktsim.delivered_packets + s.Sim.Pktsim.dropped_packets
      && s.Sim.Pktsim.injected_packets = workload.Sim.Workload.total_packets
      && s.Sim.Pktsim.fault_dropped <= s.Sim.Pktsim.dropped_packets
      && s.Sim.Pktsim.policy_violations <= s.Sim.Pktsim.dropped_packets
      (* Replaying the same schedule is bit-identical. *)
      && { again with Sim.Pktsim.loads = [||] } = { s with Sim.Pktsim.loads = [||] }
      && again.Sim.Pktsim.loads = s.Sim.Pktsim.loads)

let test_pktsim_live_convergence () =
  (* The live control plane under a 10%-lossy control channel: start
     from hot-potato, let epoch re-optimizations publish versions, and
     require full convergence — every device on the final version, no
     stale stragglers — with zero mixed-version policy violations. *)
  let controller, workload = small_pkt_setup ~strategy:`Hp ~flows:120 () in
  let probe = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = probe.Sim.Pktsim.sim_time /. 4.0;
      reconcile_interval = probe.Sim.Pktsim.sim_time /. 16.0;
    }
  in
  let schedule = Fault.Schedule.make ~control_loss:0.10 ~loss_seed:5 [] in
  let config = { pkt_config with faults = Some schedule; live = Some live } in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "versions were published" true
    (s.Sim.Pktsim.final_config_version > 0);
  Alcotest.(check int) "reoptimizations = versions"
    s.Sim.Pktsim.final_config_version s.Sim.Pktsim.reoptimizations;
  Alcotest.(check bool) "loss actually hit the config channel" true
    (s.Sim.Pktsim.config_lost > 0);
  Alcotest.(check bool) "retries carried the pushes through" true
    (s.Sim.Pktsim.config_pushes > s.Sim.Pktsim.config_acks);
  Alcotest.(check int) "no stale devices" 0 s.Sim.Pktsim.stale_devices;
  Array.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "device %d at final version" i)
        s.Sim.Pktsim.final_config_version v)
    s.Sim.Pktsim.entity_config_version;
  Alcotest.(check int) "zero version-mixing violations" 0
    s.Sim.Pktsim.policy_violations;
  Alcotest.(check int) "conservation across update churn"
    s.Sim.Pktsim.injected_packets
    (s.Sim.Pktsim.delivered_packets + s.Sim.Pktsim.dropped_packets);
  (* Per-entity attribution arrays cover every managed device and stay
     consistent with the run-level counter. *)
  let n =
    Array.length (campus ~seed:21 ()).Sdm.Deployment.proxies
    + Array.length (campus ~seed:21 ()).Sdm.Deployment.middleboxes
  in
  Alcotest.(check int) "entity array size" n
    (Array.length s.Sim.Pktsim.entity_config_version);
  Alcotest.(check int) "per-entity losses sum to the run total"
    (s.Sim.Pktsim.config_lost + s.Sim.Pktsim.control_lost)
    (Array.fold_left ( + ) 0 s.Sim.Pktsim.entity_control_lost);
  (* Same seed, same loss draws: the live loop replays bit-identically. *)
  let again = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "deterministic replay" true
    ({ again with Sim.Pktsim.loads = [||] } = { s with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = s.Sim.Pktsim.loads)

let test_pktsim_rejects_invalid_schedule () =
  (* The validation gate at configuration time: schedules referencing
     unknown middleboxes or links, or replaying impossible sequences,
     are rejected before the run starts. *)
  let controller, workload = small_pkt_setup ~flows:10 () in
  let expect_invalid label events =
    let config =
      { pkt_config with faults = Some (Fault.Schedule.make events) }
    in
    match Sim.Pktsim.run ~config ~controller ~workload () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_invalid "unknown middlebox"
    Fault.Schedule.[ { at = 1.0; what = Mbox_crash 999 } ];
  expect_invalid "unknown link"
    Fault.Schedule.[ { at = 1.0; what = Link_fail (0, 0) } ];
  expect_invalid "recover without crash"
    Fault.Schedule.[ { at = 1.0; what = Mbox_recover 0 } ];
  expect_invalid "double crash"
    Fault.Schedule.
      [
        { at = 1.0; what = Mbox_crash 0 };
        { at = 2.0; what = Mbox_crash 0 };
      ]

let test_pktsim_empty_schedule_inert () =
  (* Arming the fault machinery with an empty schedule changes nothing:
     no events, zero loss probabilities, all boxes alive — the run is
     bit-identical to one with [faults = None]. *)
  let controller, workload = small_pkt_setup ~flows:100 () in
  let calm = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let s =
    Sim.Pktsim.run
      ~config:{ pkt_config with faults = Some Fault.Schedule.empty }
      ~controller ~workload ()
  in
  Alcotest.(check bool) "bit-identical to fault-free" true
    ({ s with Sim.Pktsim.loads = [||] } = { calm with Sim.Pktsim.loads = [||] }
    && s.Sim.Pktsim.loads = calm.Sim.Pktsim.loads)

(* ---- Replicated control plane ------------------------------------- *)

let qcheck_push_backoff =
  (* The retry ladder is monotone non-decreasing in the attempt number
     and never exceeds the configured cap. *)
  QCheck.Test.make ~count:200 ~name:"push backoff monotone and capped"
    QCheck.(make Gen.(int_range 0 1000000))
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let base = 0.1 +. Stdx.Rng.float rng 10.0 in
      let cap =
        if Stdx.Rng.bool rng then infinity
        else base +. Stdx.Rng.float rng 100.0
      in
      let live =
        {
          Sim.Pktsim.default_live with
          push_backoff = base;
          push_backoff_cap = cap;
        }
      in
      let delay a = Sim.Pktsim.push_backoff_delay live ~attempt:a in
      let ok = ref (delay 0 = Float.min base cap) in
      for a = 1 to 24 do
        ok := !ok && delay a >= delay (a - 1) && delay a <= cap
      done;
      !ok)

let test_pktsim_rejects_invalid_live () =
  (* The configuration gate for the replicated control plane: non-finite
     timers, a cap below the base backoff, nonsensical replica counts,
     bad attachment routers and malformed quorum families are all
     rejected before the run starts. *)
  let controller, workload = small_pkt_setup ~flows:10 () in
  let expect_invalid label live =
    let config = { pkt_config with live = Some live } in
    match Sim.Pktsim.run ~config ~controller ~workload () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  let live = Sim.Pktsim.default_live in
  expect_invalid "NaN epoch" { live with epoch_interval = Float.nan };
  expect_invalid "infinite epoch" { live with epoch_interval = infinity };
  expect_invalid "NaN reconcile" { live with reconcile_interval = Float.nan };
  expect_invalid "NaN backoff" { live with push_backoff = Float.nan };
  expect_invalid "NaN backoff cap" { live with push_backoff_cap = Float.nan };
  expect_invalid "cap below base backoff"
    { live with push_backoff = 4.0; push_backoff_cap = 2.0 };
  expect_invalid "zero replicas" { live with replicas = 0 };
  expect_invalid "replica routers wrong length"
    { live with replicas = 3; replica_routers = Some [ 0; 1 ] };
  expect_invalid "replica router out of range"
    { live with replicas = 2; replica_routers = Some [ 0; 9999 ] };
  expect_invalid "duplicate replica routers"
    { live with replicas = 3; replica_routers = Some [ 0; 0; 1 ] };
  expect_invalid "weight vector length mismatch"
    { live with replicas = 3; quorum = Quorum.Weighted [| 1 |] };
  (* An infinite cap is legal: it simply leaves the ladder uncapped. *)
  let uncapped = { live with push_backoff_cap = infinity } in
  match
    Sim.Pktsim.run
      ~config:{ pkt_config with live = Some uncapped }
      ~controller ~workload ()
  with
  | exception Invalid_argument e -> Alcotest.failf "infinite cap rejected: %s" e
  | _ -> ()

let test_pktsim_single_replica_quiet () =
  (* replicas = 1 (the default) plays a one-acceptor quorum entirely in
     the leader's head: rounds and commits tick, but nothing touches
     the wire and no election ever happens. *)
  let controller, workload = small_pkt_setup ~strategy:`Hp ~flows:120 () in
  let probe = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = probe.Sim.Pktsim.sim_time /. 4.0;
      reconcile_interval = probe.Sim.Pktsim.sim_time /. 16.0;
    }
  in
  let config = { pkt_config with live = Some live } in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "versions were published" true
    (s.Sim.Pktsim.final_config_version > 0);
  Alcotest.(check int) "every round commits" s.Sim.Pktsim.quorum_rounds
    s.Sim.Pktsim.quorum_commits;
  Alcotest.(check int) "commits = reoptimizations" s.Sim.Pktsim.reoptimizations
    s.Sim.Pktsim.quorum_commits;
  Alcotest.(check int) "no quorum traffic" 0 s.Sim.Pktsim.quorum_msgs;
  Alcotest.(check int) "no quorum losses" 0 s.Sim.Pktsim.quorum_lost;
  Alcotest.(check int) "no elections" 0 s.Sim.Pktsim.leader_changes;
  Alcotest.(check int) "sole replica at the final version"
    s.Sim.Pktsim.final_config_version
    s.Sim.Pktsim.replica_versions.(0)

let test_pktsim_replicated_convergence () =
  (* Three replicas over a 10%-lossy control channel: every published
     version must first survive a quorum round, all replicas converge
     on the final committed version, and the online audit certifies the
     quorum invariant along the way. *)
  let controller, workload = small_pkt_setup ~strategy:`Hp ~flows:120 () in
  let probe = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = probe.Sim.Pktsim.sim_time /. 4.0;
      reconcile_interval = probe.Sim.Pktsim.sim_time /. 16.0;
      replicas = 3;
    }
  in
  let schedule = Fault.Schedule.make ~control_loss:0.10 ~loss_seed:5 [] in
  let config =
    { pkt_config with faults = Some schedule; live = Some live; audit = true }
  in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "versions were published" true
    (s.Sim.Pktsim.final_config_version > 0);
  Alcotest.(check int) "no version skipped the quorum round"
    s.Sim.Pktsim.reoptimizations s.Sim.Pktsim.quorum_commits;
  Alcotest.(check bool) "quorum traffic hit the wire" true
    (s.Sim.Pktsim.quorum_msgs > 0);
  Alcotest.(check bool) "loss hit the quorum channel" true
    (s.Sim.Pktsim.quorum_lost > 0);
  Alcotest.(check int) "three acceptors" 3
    (Array.length s.Sim.Pktsim.replica_versions);
  Array.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d at the final version" i)
        s.Sim.Pktsim.final_config_version v)
    s.Sim.Pktsim.replica_versions;
  Alcotest.(check int) "no stale devices" 0 s.Sim.Pktsim.stale_devices;
  Alcotest.(check int) "zero version-mixing violations" 0
    s.Sim.Pktsim.policy_violations;
  (match s.Sim.Pktsim.audit_report with
  | None -> Alcotest.fail "audit armed but no report"
  | Some r ->
    Alcotest.(check int) "audit clean" 0 r.Audit.Checker.violations);
  (* Same seed, same draws: the replicated loop replays bit-identically. *)
  let again = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "deterministic replay" true
    ({ again with Sim.Pktsim.loads = [||] } = { s with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = s.Sim.Pktsim.loads)

(* ---- Silent corruption & anti-entropy sweep ----------------------- *)

let corrupt_pkt_config ?sweep_fraction () =
  let controller, workload = small_pkt_setup ~strategy:`Hp ~flows:120 () in
  let probe = Sim.Pktsim.run ~config:pkt_config ~controller ~workload () in
  let horizon = probe.Sim.Pktsim.sim_time in
  let dep = controller.Sdm.Controller.deployment in
  let burst =
    Fault.Schedule.corruption_events ~seed:19 ~rate:0.3 ~horizon
      ~n_proxies:(Array.length dep.Sdm.Deployment.proxies)
      ~n_mboxes:(Array.length dep.Sdm.Deployment.middleboxes)
  in
  let sweep_period = Option.map (fun f -> f *. horizon) sweep_fraction in
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = horizon /. 4.0;
      reconcile_interval = horizon /. 16.0;
      sweep_period;
    }
  in
  let config =
    {
      pkt_config with
      faults =
        Some (Fault.Schedule.make ~control_loss:0.02 ~loss_seed:9 burst);
      live = Some live;
      audit = true;
    }
  in
  (config, controller, workload, sweep_period)

let test_pktsim_sweep_repairs_corruption () =
  (* The anti-entropy loop end to end: a deterministic corruption burst
     against a sweeping live controller — every corruption resolved
     within the two-period bound, certified by the online audit, and
     the whole thing replays bit-identically. *)
  let config, controller, workload, sweep_period =
    corrupt_pkt_config ~sweep_fraction:0.1 ()
  in
  let period = Option.get sweep_period in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "corruption injected" true
    (s.Sim.Pktsim.corruptions_injected > 0);
  Alcotest.(check bool) "digest mismatches detected" true
    (s.Sim.Pktsim.corruptions_detected > 0);
  Alcotest.(check int) "every corruption repaired"
    s.Sim.Pktsim.corruptions_injected s.Sim.Pktsim.corruptions_repaired;
  Alcotest.(check bool) "sweep actually ran" true
    (s.Sim.Pktsim.sweep_rounds > 0 && s.Sim.Pktsim.sweep_bytes > 0);
  Alcotest.(check bool) "repair windows within the two-period bound" true
    (s.Sim.Pktsim.repair_window_max <= (2.0 *. period) +. 1e-9
    && s.Sim.Pktsim.repair_window_mean <= s.Sim.Pktsim.repair_window_max);
  (match s.Sim.Pktsim.audit_report with
  | None -> Alcotest.fail "audited run produced no report"
  | Some r ->
    Alcotest.(check int) "repair invariant clean" 0 r.Audit.Checker.violations);
  let again = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "deterministic replay" true
    ({ again with Sim.Pktsim.loads = [||] } = { s with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = s.Sim.Pktsim.loads)

let test_pktsim_corruption_without_sweep () =
  (* Sweep disabled: nothing detects, nothing sweeps, and with the
     repair deadline infinite the audit still closes clean — corruption
     manifests as policy violations instead. *)
  let config, controller, workload, _ = corrupt_pkt_config () in
  let s = Sim.Pktsim.run ~config ~controller ~workload () in
  Alcotest.(check bool) "corruption injected" true
    (s.Sim.Pktsim.corruptions_injected > 0);
  Alcotest.(check int) "no digest detections" 0
    s.Sim.Pktsim.corruptions_detected;
  Alcotest.(check int) "no sweep rounds" 0 s.Sim.Pktsim.sweep_rounds;
  Alcotest.(check int) "no sweep traffic" 0 s.Sim.Pktsim.sweep_bytes;
  Alcotest.(check bool) "festering corruption mis-steers packets" true
    (s.Sim.Pktsim.policy_violations > 0);
  match s.Sim.Pktsim.audit_report with
  | None -> Alcotest.fail "audited run produced no report"
  | Some r ->
    Alcotest.(check int) "unenforceable deadlines stay clean" 0
      r.Audit.Checker.violations

let test_experiment_corrupt_invariant () =
  (* ABL-CORRUPT is bit-identical across the fan-out axes, and its
     sweep-enabled rows repair every injected corruption. *)
  let run ~jobs ~shards =
    Sim.Experiment.ablation_corrupt ~flows:120 ~audit:true ~rates:[ 0.3 ]
      ~jobs ~shards ()
  in
  let base = run ~jobs:1 ~shards:1 in
  Alcotest.(check bool) "corrupt jobs=1 = jobs=4" true
    (base = run ~jobs:4 ~shards:1);
  Alcotest.(check bool) "corrupt shards=1 = shards=4" true
    (base = run ~jobs:1 ~shards:4);
  List.iter
    (fun (r : Sim.Experiment.corrupt_row) ->
      Alcotest.(check (option int))
        (Printf.sprintf "%s rate=%.1f audits clean" r.Sim.Experiment.cr_strategy
           r.Sim.Experiment.cr_rate)
        (Some 0) r.Sim.Experiment.cr_audit;
      match r.Sim.Experiment.cr_sweep with
      | None ->
        Alcotest.(check int) "sweep-off row never detects" 0
          r.Sim.Experiment.cr_detected
      | Some _ ->
        Alcotest.(check int)
          (Printf.sprintf "%s sweep row repairs everything"
             r.Sim.Experiment.cr_strategy)
          r.Sim.Experiment.cr_corruptions r.Sim.Experiment.cr_repaired)
    base.Sim.Experiment.c_rows

let test_experiment_quorum_invariant () =
  (* ABL-QUORUM is bit-identical across the fan-out axes, like every
     other experiment. *)
  let run ~jobs ~shards =
    Sim.Experiment.ablation_quorum ~flows:120 ~jobs ~shards ()
  in
  let base = run ~jobs:1 ~shards:1 in
  Alcotest.(check bool) "quorum jobs=1 = jobs=4" true
    (base = run ~jobs:4 ~shards:1);
  Alcotest.(check bool) "quorum shards=1 = shards=2" true
    (base = run ~jobs:1 ~shards:2)

(* ---- Parallel fan-out determinism --------------------------------- *)

let test_experiment_jobs_invariant_flowsim () =
  (* Headline guarantee of the domain-pool engine: a flow-level sweep
     is bit-identical however many domains evaluate its cells. *)
  let run jobs =
    Sim.Experiment.run_figure Sim.Experiment.Campus
      ~flow_counts:[ 1_000; 2_000; 3_000 ] ~jobs ()
  in
  Alcotest.(check bool) "figure jobs=1 = jobs=4" true (run 1 = run 4)

let test_experiment_jobs_invariant_pktsim () =
  (* Same guarantee for the packet-level chaos experiment, with the
     online invariant audit armed in every row. *)
  let run jobs =
    Sim.Experiment.ablation_chaos ~flows:120 ~audit:true
      ~detection_delays:[ 2.0; 10.0 ] ~jobs ()
  in
  Alcotest.(check bool) "chaos jobs=1 = jobs=4" true (run 1 = run 4)

let test_flowsim_shards_invariant () =
  (* Headline guarantee of intra-run sharding: one run's result is
     bit-identical however many shards its flows are split across.
     Every accumulated float is an exact integer far below 2^53, so
     the fixed-shard-order merge reassociates the sums losslessly. *)
  let dep = campus () in
  let workload = Sim.Workload.generate ~deployment:dep ~seed:13 ~flows:4_000 () in
  let traffic = Sim.Workload.measure workload in
  match
    Sdm.Controller.configure dep ~rules:workload.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok controller ->
    let base = Sim.Flowsim.run ~controller ~workload () in
    List.iter
      (fun shards ->
        let sharded = Sim.Flowsim.run ~shards ~controller ~workload () in
        Alcotest.(check bool)
          (Printf.sprintf "shards=%d = unsharded" shards)
          true (sharded = base))
      [ 1; 2; 3; 8 ]

let test_workload_packed_roundtrip () =
  (* The packed Bigarray store is a lossless encoding of the
     generator's output: same rules, same totals, and every decoded
     flow_spec equals its heap counterpart. *)
  let dep = campus () in
  let heap = Sim.Workload.generate ~deployment:dep ~seed:13 ~flows:2_000 () in
  let packed =
    Sim.Workload.generate_packed ~deployment:dep ~seed:13 ~flows:2_000 ()
  in
  Alcotest.(check bool) "same rules" true
    (packed.Sim.Workload.Packed.rules = heap.Sim.Workload.rules);
  Alcotest.(check int) "same total packets" heap.Sim.Workload.total_packets
    packed.Sim.Workload.Packed.total_packets;
  Alcotest.(check int) "same flow count"
    (Array.length heap.Sim.Workload.flows)
    packed.Sim.Workload.Packed.n_flows;
  Array.iteri
    (fun i fs ->
      if Sim.Workload.Packed.get packed i <> fs then
        Alcotest.fail (Printf.sprintf "flow %d decodes differently" i))
    heap.Sim.Workload.flows

let test_flowsim_packed_matches_heap () =
  (* run_packed over the Bigarray store = run over the heap workload,
     sharded or not. *)
  let dep = campus () in
  let heap = Sim.Workload.generate ~deployment:dep ~seed:13 ~flows:3_000 () in
  let packed =
    Sim.Workload.generate_packed ~deployment:dep ~seed:13 ~flows:3_000 ()
  in
  let traffic = Sim.Workload.measure heap in
  match
    Sdm.Controller.configure dep ~rules:heap.Sim.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  with
  | Error e -> Alcotest.fail e
  | Ok controller ->
    let base = Sim.Flowsim.run ~controller ~workload:heap () in
    let p1 = Sim.Flowsim.run_packed ~controller ~workload:packed () in
    let p4 = Sim.Flowsim.run_packed ~shards:4 ~controller ~workload:packed () in
    Alcotest.(check bool) "packed = heap" true (p1 = base);
    Alcotest.(check bool) "packed shards=4 = heap" true (p4 = base)

let test_experiment_shards_invariant_flowsim () =
  (* The jobs-invariance oracle, on the sharding axis: a flow-level
     sweep is bit-identical however many shards split each cell. *)
  let run shards =
    Sim.Experiment.run_figure Sim.Experiment.Campus
      ~flow_counts:[ 1_000; 2_000; 3_000 ] ~jobs:1 ~shards ()
  in
  Alcotest.(check bool) "figure shards=1 = shards=4" true (run 1 = run 4)

let test_experiment_shards_invariant_pktsim () =
  (* Same on the packet level, with the online invariant audit armed:
     sharded setup phases never perturb the event loop. *)
  let run shards =
    Sim.Experiment.ablation_chaos ~flows:120 ~audit:true
      ~detection_delays:[ 2.0; 10.0 ] ~jobs:1 ~shards ()
  in
  Alcotest.(check bool) "chaos shards=1 = shards=4" true (run 1 = run 4)

let suite =
  [
    Alcotest.test_case "workload shape" `Quick test_workload_shape;
    Alcotest.test_case "workload calibration" `Quick test_workload_calibration;
    Alcotest.test_case "workload sizes bounded" `Quick test_workload_sizes_bounded;
    Alcotest.test_case "workload rule ids honest" `Quick
      test_workload_flows_match_their_rule;
    Alcotest.test_case "workload endpoints consistent" `Quick
      test_workload_endpoints_consistent;
    Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
    Alcotest.test_case "measurement totals" `Quick test_measure_totals;
    Alcotest.test_case "flowsim load conservation" `Quick
      test_flowsim_load_conservation;
    Alcotest.test_case "flowsim HP uses closest" `Quick
      test_flowsim_hot_potato_uses_closest;
    Alcotest.test_case "flowsim LB beats baselines" `Quick test_flowsim_lb_beats_others;
    Alcotest.test_case "flowsim LB close to lambda" `Quick
      test_flowsim_lb_close_to_lambda;
    Alcotest.test_case "flowsim stretch sane" `Quick test_flowsim_stretch;
    Alcotest.test_case "pktsim delivers everything" `Quick
      test_pktsim_delivers_everything;
    Alcotest.test_case "pktsim classifier knob is stats-invariant" `Quick
      test_pktsim_classifier_invariant;
    Alcotest.test_case "pktsim loads = flowsim loads" `Slow
      test_pktsim_loads_equal_flowsim;
    Alcotest.test_case "pktsim = flowsim on Waxman" `Slow
      test_pktsim_flowsim_agree_on_waxman;
    Alcotest.test_case "pktsim label switching engages" `Quick
      test_pktsim_label_switching_kicks_in;
    Alcotest.test_case "pktsim label switching avoids fragments" `Quick
      test_pktsim_label_switching_avoids_fragments;
    Alcotest.test_case "pktsim cache suppresses lookups" `Quick
      test_pktsim_cache_suppresses_lookups;
    Alcotest.test_case "pktsim routing-substrate invariance" `Slow
      test_pktsim_routing_substrate_invariance;
    Alcotest.test_case "pktsim latency overhead" `Quick test_pktsim_latency_overhead;
    Alcotest.test_case "pktsim label expiry recovery" `Quick
      test_pktsim_label_expiry_recovery;
    Alcotest.test_case "pktsim WP cache short-circuit" `Quick
      test_pktsim_wp_cache_short_circuit;
    Alcotest.test_case "pktsim ECMP invariance" `Quick test_pktsim_ecmp_invariance;
    Alcotest.test_case "pktsim same-seed determinism" `Quick
      test_pktsim_same_seed_deterministic;
    Alcotest.test_case "pktsim pinned equivalence oracle" `Slow
      test_pktsim_pinned_equivalence;
    Alcotest.test_case "pktsim event-count regression" `Quick
      test_pktsim_event_count_regression;
    Alcotest.test_case "pktsim teardown exact counters" `Quick
      test_pktsim_teardown_exact_counters;
    Alcotest.test_case "pktsim crash failover relabels" `Quick
      test_pktsim_crash_failover_relabels;
    Alcotest.test_case "pktsim link flap load invariance" `Quick
      test_pktsim_link_flap_load_invariance;
    Alcotest.test_case "pktsim control-loss retries" `Quick
      test_pktsim_control_loss_retries;
    Alcotest.test_case "pktsim link loss accounted" `Quick
      test_pktsim_link_loss_accounted;
    Alcotest.test_case "pktsim empty fault schedule inert" `Quick
      test_pktsim_empty_schedule_inert;
    Alcotest.test_case "pktsim rejects invalid schedules" `Quick
      test_pktsim_rejects_invalid_schedule;
    Alcotest.test_case "pktsim live convergence under loss" `Quick
      test_pktsim_live_convergence;
    QCheck_alcotest.to_alcotest qcheck_push_backoff;
    Alcotest.test_case "pktsim rejects invalid live configs" `Quick
      test_pktsim_rejects_invalid_live;
    Alcotest.test_case "pktsim single replica stays quiet" `Quick
      test_pktsim_single_replica_quiet;
    Alcotest.test_case "pktsim replicated convergence under loss" `Quick
      test_pktsim_replicated_convergence;
    Alcotest.test_case "experiment quorum jobs/shards invariance" `Slow
      test_experiment_quorum_invariant;
    Alcotest.test_case "pktsim sweep repairs corruption" `Quick
      test_pktsim_sweep_repairs_corruption;
    Alcotest.test_case "pktsim corruption without sweep" `Quick
      test_pktsim_corruption_without_sweep;
    Alcotest.test_case "experiment corrupt jobs/shards invariance" `Slow
      test_experiment_corrupt_invariant;
    QCheck_alcotest.to_alcotest qcheck_pktsim_chaos;
    QCheck_alcotest.to_alcotest qcheck_pktsim_random_fault_schedules;
    Alcotest.test_case "experiment figure (small)" `Slow test_experiment_figure_small;
    Alcotest.test_case "experiment linear growth" `Slow test_experiment_linear_growth;
    Alcotest.test_case "experiment table3 shape" `Slow test_experiment_table3_shape;
    Alcotest.test_case "experiment jobs-invariant (flowsim)" `Slow
      test_experiment_jobs_invariant_flowsim;
    Alcotest.test_case "experiment jobs-invariant (pktsim)" `Slow
      test_experiment_jobs_invariant_pktsim;
    Alcotest.test_case "flowsim shards invariance" `Quick
      test_flowsim_shards_invariant;
    Alcotest.test_case "workload packed roundtrip" `Quick
      test_workload_packed_roundtrip;
    Alcotest.test_case "flowsim packed = heap" `Quick
      test_flowsim_packed_matches_heap;
    Alcotest.test_case "experiment shards invariance (flowsim)" `Slow
      test_experiment_shards_invariant_flowsim;
    Alcotest.test_case "experiment shards invariance (pktsim)" `Slow
      test_experiment_shards_invariant_pktsim;
    Alcotest.test_case "experiment k=1 equals HP" `Quick test_experiment_k1_equals_hp;
    Alcotest.test_case "epoch adaptation" `Slow test_epoch_adaptation;
    Alcotest.test_case "queue ablation" `Slow test_queue_ablation;
    Alcotest.test_case "control-plane pricing" `Quick test_controlplane_pricing;
    Alcotest.test_case "control-plane device indexing" `Quick
      test_controlplane_device_indexing;
    Alcotest.test_case "control-plane entity bytes" `Quick
      test_controlplane_entity_bytes;
    Alcotest.test_case "flowsim trace" `Quick test_flowsim_trace;
    Alcotest.test_case "queueing preserves loads" `Quick test_queueing_preserves_loads;
  ]
