type scenario = Campus | Waxman

let scenario_name = function Campus -> "campus" | Waxman -> "waxman"

let mbox_counts =
  Policy.Action.[ (WP, 4); (FW, 7); (IDS, 7); (TM, 4) ]

let build_deployment scenario ~seed =
  let topo =
    match scenario with
    | Campus -> Netgraph.Campus.generate ~seed ()
    | Waxman -> Netgraph.Waxman.generate ~seed ()
  in
  Sdm.Deployment.standard ~topo ~mbox_counts ~seed:(seed + 1)

let strategies = [ "HP"; "Rand"; "LB" ]

type strategy_run = {
  strategy : string;
  controller : Sdm.Controller.t;
  result : Flowsim.result;
  lambda : float option;
}

let configure_exn deployment ~rules kind =
  match Sdm.Controller.configure deployment ~rules kind with
  | Ok c -> c
  | Error e -> failwith ("controller configuration failed: " ^ e)

(* ---- Parallel cell fan-out --------------------------------------- *)

(* Every sweep below expresses its cells as a list of independent
   thunks evaluated through [Stdx.Domain_pool.map].  Results come back
   in input order and each thunk is a pure function of its captured
   (immutable) inputs — the deployment, workload and controllers are
   never mutated by a run — so the report is bit-identical whatever
   [jobs] is.  [jobs] defaults to {!Stdx.Domain_pool.default_jobs}. *)
let fan_out ?jobs thunks =
  Array.to_list (Stdx.Domain_pool.map ?jobs (fun f -> f ()) (Array.of_list thunks))

(* Per-cell integer seed: the [i]-th child stream of the sweep's root
   seed ({!Stdx.Rng.derive}), order-independent so a cell's workload
   is a function of (root seed, cell index) alone — not of which
   domain ran it or how many cells preceded it. *)
let cell_seed ~seed i =
  Int64.to_int (Stdx.Rng.int64 (Stdx.Rng.derive (Stdx.Rng.create seed) i))
  land max_int

let flow_events runs =
  List.fold_left (fun acc r -> acc + r.result.Flowsim.events) 0 runs

let run_strategies ~deployment ~flows ?(per_class = 5) ?(seed = 17) ?rule_seed
    ?jobs ?shards () =
  let workload = Workload.generate ~deployment ~per_class ~seed ?rule_seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let run kind name () =
    let controller = configure_exn deployment ~rules kind in
    let result = Flowsim.run ?shards ~controller ~workload () in
    let lambda =
      Option.map (fun lp -> lp.Sdm.Lp_formulation.lambda) controller.Sdm.Controller.lp
    in
    { strategy = name; controller; result; lambda }
  in
  ( workload,
    fan_out ?jobs
      [
        run Sdm.Controller.Hot_potato "HP";
        run Sdm.Controller.Random_uniform "Rand";
        run (Sdm.Controller.Load_balanced traffic) "LB";
      ] )

(* ---- Figures 4 and 5 -------------------------------------------- *)

type point = {
  flows : int;
  total_packets : int;
  max_loads : (Policy.Action.nf * (float * float * float)) list;
}

type figure = { scenario : scenario; points : point list; fig_events : int }

let default_flow_counts = List.init 10 (fun i -> 30_000 * (i + 1))

let nf_list = List.map fst mbox_counts

let point_of_runs ~flows ~total_packets runs =
  let find name = List.find (fun r -> r.strategy = name) runs in
  let hp = find "HP" and rand = find "Rand" and lb = find "LB" in
  let max_loads =
    List.map
      (fun nf ->
        ( nf,
          ( Flowsim.max_load_of_nf hp.controller hp.result nf,
            Flowsim.max_load_of_nf rand.controller rand.result nf,
            Flowsim.max_load_of_nf lb.controller lb.result nf ) ))
      nf_list
  in
  { flows; total_packets; max_loads }

let run_figure scenario ?(flow_counts = default_flow_counts) ?(per_class = 5)
    ?(seed = 17) ?jobs ?shards () =
  let deployment = build_deployment scenario ~seed in
  let cells =
    List.mapi
      (fun i flows () ->
        (* Fixed policy set across the sweep; fresh flow population per
           volume point — the paper scales traffic, not policies.  The
           inner strategies stay sequential: the sweep itself is the
           parallel axis.  [shards] parallelism nests inside the cell
           (the domain pool is per-map, so the two axes compose). *)
        let workload, runs =
          run_strategies ~deployment ~flows ~per_class ~seed:(cell_seed ~seed i)
            ~rule_seed:seed ~jobs:1 ?shards ()
        in
        ( point_of_runs ~flows ~total_packets:workload.Workload.total_packets runs,
          flow_events runs ))
      flow_counts
  in
  let results = fan_out ?jobs cells in
  {
    scenario;
    points = List.map fst results;
    fig_events = List.fold_left (fun acc (_, e) -> acc + e) 0 results;
  }

(* ---- Table III --------------------------------------------------- *)

type table3_row = {
  nf : Policy.Action.nf;
  hp_max : float;
  hp_min : float;
  rand_max : float;
  rand_min : float;
  lb_max : float;
  lb_min : float;
}

type table3 = { t3_rows : table3_row list; t3_events : int }

let run_table3 ?(scenario = Campus) ?(flows = 300_000) ?(per_class = 5)
    ?(seed = 17) ?jobs ?shards () =
  let deployment = build_deployment scenario ~seed in
  let _, runs = run_strategies ~deployment ~flows ~per_class ~seed ?jobs ?shards () in
  let find name = List.find (fun r -> r.strategy = name) runs in
  let hp = find "HP" and rand = find "Rand" and lb = find "LB" in
  let min_max run nf =
    let loads = Flowsim.loads_of_nf run.controller run.result nf in
    let s = Stdx.Stats.summarize loads in
    (s.Stdx.Stats.max, s.Stdx.Stats.min)
  in
  let rows =
    List.map
      (fun nf ->
        let hp_max, hp_min = min_max hp nf in
        let rand_max, rand_min = min_max rand nf in
        let lb_max, lb_min = min_max lb nf in
        { nf; hp_max; hp_min; rand_max; rand_min; lb_max; lb_min })
      nf_list
  in
  { t3_rows = rows; t3_events = flow_events runs }

(* ---- Ablations ---------------------------------------------------- *)

type k_point = {
  k_fw_ids : int;
  k_wp_tm : int;
  lb_max_by_nf : (Policy.Action.nf * float) list;
}

type k_sweep = { k_points : k_point list; k_events : int }

let ablation_k ?(scenario = Campus) ?(flows = 120_000) ?(seed = 17) ?jobs
    ?shards () =
  let deployment = build_deployment scenario ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let cell (k_fw_ids, k_wp_tm) () =
    let k = function
      | Policy.Action.FW | Policy.Action.IDS -> k_fw_ids
      | Policy.Action.WP | Policy.Action.TM | Policy.Action.Custom _ -> k_wp_tm
    in
    let controller =
      match
        Sdm.Controller.configure deployment ~rules ~k
          (Sdm.Controller.Load_balanced traffic)
      with
      | Ok c -> c
      | Error e -> failwith ("ablation_k: " ^ e)
    in
    let result = Flowsim.run ?shards ~controller ~workload () in
    ( {
        k_fw_ids;
        k_wp_tm;
        lb_max_by_nf =
          List.map
            (fun nf -> (nf, Flowsim.max_load_of_nf controller result nf))
            nf_list;
      },
      result.Flowsim.events )
  in
  let results =
    fan_out ?jobs (List.map cell [ (1, 1); (2, 1); (2, 2); (4, 2); (6, 3) ])
  in
  {
    k_points = List.map fst results;
    k_events = List.fold_left (fun acc (_, e) -> acc + e) 0 results;
  }

type cache_stats = {
  packets : int;
  lookups : int;
  hits : int;
  negative_hits : int;
  lookup_fraction : float;
  cache_events : int;
}

(* Packet-level runs use a smaller flow population: they simulate every
   single packet. *)
let pkt_level_controller ?(seed = 17) ~flows () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let traffic = Workload.measure workload in
  let controller =
    configure_exn deployment ~rules:workload.Workload.rules
      (Sdm.Controller.Load_balanced traffic)
  in
  (controller, workload)

let ablation_cache ?(flows = 2_000) ?(seed = 17) ?(shards = 1)
    ?(classifier = Pktsim.Trie) () =
  let controller, workload = pkt_level_controller ~seed ~flows () in
  let stats =
    Pktsim.run
      ~config:{ Pktsim.default_config with shards; classifier }
      ~controller ~workload ()
  in
  (* Lookup events happen per packet *arrival* at proxies and
     middleboxes; normalise by the proxy-side injections. *)
  let packets = stats.Pktsim.injected_packets in
  {
    packets;
    lookups = stats.Pktsim.multi_field_lookups;
    hits = stats.Pktsim.cache_hits;
    negative_hits = stats.Pktsim.cache_negative_hits;
    lookup_fraction =
      float_of_int stats.Pktsim.multi_field_lookups
      /. float_of_int (max 1 packets);
    cache_events = stats.Pktsim.events_processed;
  }

type cache_size_point = {
  capacity : int option;
  size_lookup_fraction : float;
  size_evictions : int;
}

type cache_size_sweep = { cs_points : cache_size_point list; cs_events : int }

let ablation_cache_size ?(flows = 1_000) ?(seed = 17) ?jobs ?(shards = 1) () =
  let controller, workload = pkt_level_controller ~seed ~flows () in
  let cell capacity () =
    let stats =
      Pktsim.run
        ~config:{ Pktsim.default_config with cache_capacity = capacity; shards }
        ~controller ~workload ()
    in
    ( {
        capacity;
        size_lookup_fraction =
          float_of_int stats.Pktsim.multi_field_lookups
          /. float_of_int (max 1 stats.Pktsim.injected_packets);
        size_evictions = stats.Pktsim.cache_evictions;
      },
      stats.Pktsim.events_processed )
  in
  let results = fan_out ?jobs (List.map cell [ Some 16; Some 64; Some 256; None ]) in
  {
    cs_points = List.map fst results;
    cs_events = List.fold_left (fun acc (_, e) -> acc + e) 0 results;
  }

type frag_stats = {
  fragments_ip_over_ip : int;
  fragments_label_switched : int;
  tunneled_legs : int;
  label_switched_legs : int;
  frag_events : int;
}

let ablation_fragmentation ?(flows = 2_000) ?(seed = 17) ?jobs ?(shards = 1)
    ?(classifier = Pktsim.Trie) () =
  let controller, workload = pkt_level_controller ~seed ~flows () in
  let cell label_switching () =
    Pktsim.run
      ~config:{ Pktsim.default_config with label_switching; shards; classifier }
      ~controller ~workload ()
  in
  match fan_out ?jobs [ cell true; cell false ] with
  | [ with_ls; without_ls ] ->
    {
      fragments_ip_over_ip = without_ls.Pktsim.fragments_created;
      fragments_label_switched = with_ls.Pktsim.fragments_created;
      tunneled_legs = with_ls.Pktsim.tunneled_packets;
      label_switched_legs = with_ls.Pktsim.label_switched_packets;
      frag_events =
        with_ls.Pktsim.events_processed + without_ls.Pktsim.events_processed;
    }
  | _ -> assert false

type failure_report = {
  failed_mbox : int;
  failed_nf : Policy.Action.nf;
  before_max : float;
  failover_max : float;
  reoptimized_max : float;
  reoptimized_lambda : float;
  hp_failover_max : float;
  survivors : int;
  fail_events : int;
}

let ablation_failure ?(scenario = Campus) ?(flows = 120_000) ?(seed = 17) ?jobs
    ?shards () =
  let deployment = build_deployment scenario ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let lb = configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic) in
  let before = Flowsim.run ?shards ~controller:lb ~workload () in
  (* Kill the most-loaded IDS middlebox. *)
  let nf = Policy.Action.IDS in
  let victims = Sdm.Deployment.middleboxes_of deployment nf in
  let failed =
    List.fold_left
      (fun best (m : Mbox.Middlebox.t) ->
        if before.Flowsim.loads.(m.id) > before.Flowsim.loads.(best) then m.id
        else best)
      (List.hd victims).Mbox.Middlebox.id victims
  in
  let alive id = id <> failed in
  let max_ids result =
    List.fold_left
      (fun acc (m : Mbox.Middlebox.t) ->
        if m.id = failed then acc else max acc result.Flowsim.loads.(m.id))
      0.0 victims
  in
  (* The three post-probe runs are independent of each other (only of
     the probe's victim choice), so they fan out as one batch. *)
  let cells =
    [
      (* Phase 1: local fast failover with the stale LP weights. *)
      (fun () -> (Flowsim.run ~alive ?shards ~controller:lb ~workload (), 0.0));
      (* Phase 2: the controller re-optimizes without the failed box. *)
      (fun () ->
        let reopt_controller =
          match
            Sdm.Controller.configure deployment ~rules ~failed:[ failed ]
              (Sdm.Controller.Load_balanced traffic)
          with
          | Ok c -> c
          | Error e -> failwith ("ablation_failure reoptimize: " ^ e)
        in
        let lambda =
          match reopt_controller.Sdm.Controller.lp with
          | Some lp -> lp.Sdm.Lp_formulation.lambda
          | None -> 0.0
        in
        (Flowsim.run ?shards ~controller:reopt_controller ~workload (), lambda));
      (* Baseline: hot-potato under the same failure. *)
      (fun () ->
        let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
        (Flowsim.run ~alive ?shards ~controller:hp ~workload (), 0.0));
    ]
  in
  match fan_out ?jobs cells with
  | [ (failover, _); (reopt, reopt_lambda); (hp_failover, _) ] ->
    {
      failed_mbox = failed;
      failed_nf = nf;
      before_max = Flowsim.max_load_of_nf lb before nf;
      failover_max = max_ids failover;
      reoptimized_max = max_ids reopt;
      reoptimized_lambda = reopt_lambda;
      hp_failover_max = max_ids hp_failover;
      survivors = List.length victims - 1;
      fail_events =
        before.Flowsim.events + failover.Flowsim.events + reopt.Flowsim.events
        + hp_failover.Flowsim.events;
    }
  | _ -> assert false

(* ---- ABL-CHAOS: in-run faults, detection delay sweep ------------- *)

type chaos_row = {
  chaos_mode : string;
  chaos_delay : float; (* infinity on the no-failover row *)
  chaos_injected : int;
  chaos_delivered : int;
  chaos_dropped : int;
  chaos_violations : int;
  chaos_retries : int;
  chaos_recovery : float;
  chaos_max_surviving : float;
  chaos_events_processed : int;
  chaos_audit : int option;
}

type chaos_report = {
  chaos_victim : int;
  chaos_victim_nf : Policy.Action.nf;
  chaos_crash_at : float;
  chaos_link : (int * int) option;
  chaos_link_fail_at : float;
  chaos_link_restore_at : float;
  chaos_control_loss : float;
  chaos_probe_events : int;
  chaos_rows : chaos_row list;
}

let audit_violations (stats : Pktsim.stats) =
  Option.map
    (fun (r : Audit.Checker.report) -> r.Audit.Checker.violations)
    stats.Pktsim.audit_report

let ablation_chaos ?(flows = 500) ?(seed = 17) ?(audit = false)
    ?(detection_delays = [ 2.0; 10.0; 40.0 ]) ?jobs ?(shards = 1) () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let lb = configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic) in
  let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
  (* A fault-free probe run fixes the victim (the busiest IDS box under
     LB) and the horizon the fault schedule is placed within. *)
  let probe =
    Pktsim.run
      ~config:{ Pktsim.default_config with shards }
      ~controller:lb ~workload ()
  in
  let nf = Policy.Action.IDS in
  let victims = Sdm.Deployment.middleboxes_of deployment nf in
  let victim =
    List.fold_left
      (fun best (m : Mbox.Middlebox.t) ->
        if probe.Pktsim.loads.(m.id) > probe.Pktsim.loads.(best) then m.id
        else best)
      (List.hd victims).Mbox.Middlebox.id victims
  in
  let crash_at = 0.25 *. probe.Pktsim.sim_time in
  let link_fail_at = 0.45 *. probe.Pktsim.sim_time in
  let link_restore_at = 0.65 *. probe.Pktsim.sim_time in
  (* A gateway-core link to fail and restore mid-run: campus cores are
     dual-homed to both gateways, so the graph stays connected and
     OSPF reroutes around the outage. *)
  let topo = deployment.Sdm.Deployment.topo in
  let link =
    match Netgraph.Topology.gateways topo with
    | [] -> None
    | gw :: _ ->
      List.find_map
        (fun { Netgraph.Graph.dst; _ } ->
          match Netgraph.Topology.role topo dst with
          | Netgraph.Topology.Core -> Some (gw, dst)
          | _ -> None)
        (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph gw)
  in
  let control_loss = 0.02 in
  let schedule =
    Fault.Schedule.make ~control_loss ~loss_seed:(seed + 3)
      (Fault.Schedule.[ { at = crash_at; what = Mbox_crash victim } ]
      @
      match link with
      | None -> []
      | Some (u, v) ->
        Fault.Schedule.
          [
            { at = link_fail_at; what = Link_fail (u, v) };
            { at = link_restore_at; what = Link_restore (u, v) };
          ])
  in
  let max_surviving stats =
    List.fold_left
      (fun acc (m : Mbox.Middlebox.t) ->
        if m.id = victim then acc else Stdlib.max acc stats.Pktsim.loads.(m.id))
      0.0 victims
  in
  let row ~mode ~controller ~failover ~delay =
    let config =
      {
        Pktsim.default_config with
        faults = Some schedule;
        detection_delay = delay;
        failover;
        audit;
        shards;
      }
    in
    let stats = Pktsim.run ~config ~controller ~workload () in
    {
      chaos_mode = mode;
      chaos_delay = (if failover then delay else infinity);
      chaos_injected = stats.Pktsim.injected_packets;
      chaos_delivered = stats.Pktsim.delivered_packets;
      chaos_dropped = stats.Pktsim.dropped_packets;
      chaos_violations = stats.Pktsim.policy_violations;
      chaos_retries = stats.Pktsim.control_retries;
      chaos_recovery =
        (if stats.Pktsim.policy_violations = 0 then 0.0
         else Stdlib.max 0.0 (stats.Pktsim.last_violation_time -. crash_at));
      chaos_max_surviving = max_surviving stats;
      chaos_events_processed = stats.Pktsim.events_processed;
      chaos_audit = audit_violations stats;
    }
  in
  {
    chaos_victim = victim;
    chaos_victim_nf = nf;
    chaos_crash_at = crash_at;
    chaos_link = link;
    chaos_link_fail_at = link_fail_at;
    chaos_link_restore_at = link_restore_at;
    chaos_control_loss = control_loss;
    chaos_probe_events = probe.Pktsim.events_processed;
    chaos_rows =
      fan_out ?jobs
        (List.concat_map
           (fun d ->
             [
               (fun () ->
                 row ~mode:"HP+failover" ~controller:hp ~failover:true ~delay:d);
               (fun () ->
                 row ~mode:"LB+failover" ~controller:lb ~failover:true ~delay:d);
             ])
           detection_delays
        @ [
            (fun () ->
              row ~mode:"LB, no failover" ~controller:lb ~failover:false
                ~delay:0.0);
          ]);
  }

(* ---- ABL-LIVE: live reconfiguration, control-loss sweep ---------- *)

type live_row = {
  live_loss : float;
  live_injected : int;
  live_delivered : int;
  live_violations : int;
  live_versions : int;
  live_pushes : int;
  live_acks : int;
  live_lost : int;
  live_degraded : int;
  live_stale : int;
  live_bytes : int;
  live_max_load : float;
  live_events_processed : int;
  live_audit : int option;
}

type live_device = {
  dev_name : string;
  dev_version : int;
  dev_lag : int;
  dev_retries : int;
  dev_lost : int;
}

type live_report = {
  live_epoch : float;
  live_reconcile : float;
  live_stale_max : float;
  live_clairvoyant_max : float;
  live_probe_events : int;
  live_rows : live_row list;
  live_devices : live_device list;
}

let ablation_live ?(flows = 500) ?(seed = 17) ?(audit = false)
    ?(control_losses = [ 0.0; 0.02; 0.10 ]) ?jobs ?(shards = 1) () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
  let lb = configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic) in
  let max_load (stats : Pktsim.stats) =
    Array.fold_left Stdlib.max 0.0 stats.Pktsim.loads
  in
  (* A probe run under the stale hot-potato plan fixes the horizon the
     re-optimization epochs are spread across, and is itself the
     stale-weight baseline the live rows should beat.  The clairvoyant
     run — the controller knew the whole traffic matrix up front, the
     best any measurement-driven loop can converge to — is independent
     of it, so the two probes fan out together. *)
  let stale, clairvoyant =
    match
      fan_out ?jobs
        [
          (fun () ->
            Pktsim.run
              ~config:{ Pktsim.default_config with shards }
              ~controller:hp ~workload ());
          (fun () ->
            Pktsim.run
              ~config:{ Pktsim.default_config with shards }
              ~controller:lb ~workload ());
        ]
    with
    | [ s; c ] -> (s, c)
    | _ -> assert false
  in
  let epoch = stale.Pktsim.sim_time /. 5.0 in
  let reconcile = epoch /. 4.0 in
  let live =
    {
      Pktsim.default_live with
      epoch_interval = epoch;
      reconcile_interval = reconcile;
    }
  in
  let run_loss loss =
    let faults =
      (* loss = 0 still goes through the fault plumbing so the control
         channel is exercised end-to-end; only the Bernoulli parameter
         differs across the sweep. *)
      Some (Fault.Schedule.make ~control_loss:loss ~loss_seed:(seed + 3) [])
    in
    let config =
      { Pktsim.default_config with faults; live = Some live; audit; shards }
    in
    let stats = Pktsim.run ~config ~controller:hp ~workload () in
    let row =
      {
        live_loss = loss;
        live_injected = stats.Pktsim.injected_packets;
        live_delivered = stats.Pktsim.delivered_packets;
        live_violations = stats.Pktsim.policy_violations;
        live_versions = stats.Pktsim.final_config_version;
        live_pushes = stats.Pktsim.config_pushes;
        live_acks = stats.Pktsim.config_acks;
        live_lost = stats.Pktsim.config_lost;
        live_degraded = stats.Pktsim.config_degraded;
        live_stale = stats.Pktsim.stale_devices;
        live_bytes = stats.Pktsim.config_bytes;
        live_max_load = max_load stats;
        live_events_processed = stats.Pktsim.events_processed;
        live_audit = audit_violations stats;
      }
    in
    (row, stats)
  in
  let runs = fan_out ?jobs (List.map (fun loss () -> run_loss loss) control_losses) in
  (* Per-device attribution comes from the lossiest run — the one
     where retries and version lag actually have something to show. *)
  let devices =
    match
      List.fold_left
        (fun best (row, stats) ->
          match best with
          | Some (brow, _) when brow.live_loss >= row.live_loss -> best
          | _ -> Some (row, stats))
        None runs
    with
    | None -> []
    | Some (_, stats) ->
      let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
      List.init
        (Array.length stats.Pktsim.entity_config_version)
        (fun i ->
          {
            dev_name =
              (if i < n_proxies then Printf.sprintf "proxy%d" i
               else Printf.sprintf "mbox%d" (i - n_proxies));
            dev_version = stats.Pktsim.entity_config_version.(i);
            dev_lag =
              stats.Pktsim.final_config_version
              - stats.Pktsim.entity_config_version.(i);
            dev_retries = stats.Pktsim.entity_control_retries.(i);
            dev_lost = stats.Pktsim.entity_control_lost.(i);
          })
  in
  {
    live_epoch = epoch;
    live_reconcile = reconcile;
    live_stale_max = max_load stale;
    live_clairvoyant_max = max_load clairvoyant;
    live_probe_events =
      stale.Pktsim.events_processed + clairvoyant.Pktsim.events_processed;
    live_rows = List.map fst runs;
    live_devices = devices;
  }

(* ---- ABL-QUORUM: replicated controller under chaos --------------- *)

type quorum_row = {
  qr_scenario : string;
  qr_loss : float;
  qr_injected : int;
  qr_delivered : int;
  qr_violations : int;
  qr_versions : int;
  qr_rounds : int;
  qr_commits : int;
  qr_aborts : int;
  qr_msgs : int;
  qr_lost : int;
  qr_elections : int;
  qr_degraded : int;
  qr_stale : int;
  qr_uncommitted : int;
  qr_replicas : int list;
  qr_events_processed : int;
  qr_audit : int option;
}

type quorum_report = {
  q_replicas : int;
  q_epoch : float;
  q_reconcile : float;
  q_crash_at : float;
  q_partition_at : float;
  q_heal_at : float;
  q_leader_router : int;
  q_probe_events : int;
  q_rows : quorum_row list;
}

let ablation_quorum ?(flows = 500) ?(seed = 17) ?(audit = false) ?jobs
    ?(shards = 1) () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
  (* A fault-free probe under the stale plan fixes the horizon the
     epochs and the fault schedule are placed within. *)
  let probe =
    Pktsim.run
      ~config:{ Pktsim.default_config with shards }
      ~controller:hp ~workload ()
  in
  let horizon = probe.Pktsim.sim_time in
  let epoch = horizon /. 5.0 in
  let reconcile = epoch /. 4.0 in
  let replicas = 3 in
  let live =
    {
      Pktsim.default_live with
      epoch_interval = epoch;
      reconcile_interval = reconcile;
      replicas;
    }
  in
  let leader_router = Controlplane.default_router deployment in
  let crash_at = 0.3 *. horizon in
  let partition_at = 0.35 *. horizon in
  let heal_at = 0.7 *. horizon in
  (* Split brain: cut every link of the lead replica's attachment
     router, leaving the leader alone on the minority side of the
     partition while the two standbys (and most devices) stay
     connected on the other. *)
  let leader_links =
    List.map
      (fun { Netgraph.Graph.dst; _ } -> (leader_router, dst))
      (Netgraph.Graph.neighbors
         deployment.Sdm.Deployment.topo.Netgraph.Topology.graph leader_router)
  in
  let schedule_of = function
    | "leader crash" ->
      ( 0.02,
        Fault.Schedule.make ~control_loss:0.02 ~loss_seed:(seed + 3)
          Fault.Schedule.[ { at = crash_at; what = Ctrl_crash 0 } ] )
    | "split brain" ->
      ( 0.02,
        Fault.Schedule.make ~control_loss:0.02 ~loss_seed:(seed + 3)
          (List.map
             (fun (u, v) ->
               Fault.Schedule.{ at = partition_at; what = Link_fail (u, v) })
             leader_links
          @ List.map
              (fun (u, v) ->
                Fault.Schedule.{ at = heal_at; what = Link_restore (u, v) })
              leader_links) )
    | "quorum loss" ->
      (0.45, Fault.Schedule.make ~control_loss:0.45 ~loss_seed:(seed + 3) [])
    | s -> invalid_arg ("ablation_quorum: unknown scenario " ^ s)
  in
  let row scenario =
    let loss, schedule = schedule_of scenario in
    let config =
      {
        Pktsim.default_config with
        faults = Some schedule;
        live = Some live;
        audit;
        shards;
      }
    in
    let stats = Pktsim.run ~config ~controller:hp ~workload () in
    {
      qr_scenario = scenario;
      qr_loss = loss;
      qr_injected = stats.Pktsim.injected_packets;
      qr_delivered = stats.Pktsim.delivered_packets;
      qr_violations = stats.Pktsim.policy_violations;
      qr_versions = stats.Pktsim.final_config_version;
      qr_rounds = stats.Pktsim.quorum_rounds;
      qr_commits = stats.Pktsim.quorum_commits;
      qr_aborts = stats.Pktsim.quorum_aborts;
      qr_msgs = stats.Pktsim.quorum_msgs;
      qr_lost = stats.Pktsim.quorum_lost;
      qr_elections = stats.Pktsim.leader_changes;
      qr_degraded = stats.Pktsim.config_degraded;
      qr_stale = stats.Pktsim.stale_devices;
      (* Versions that reached the staged window without a quorum
         commit — the headline safety number; always 0. *)
      qr_uncommitted =
        stats.Pktsim.reoptimizations - stats.Pktsim.quorum_commits;
      qr_replicas = Array.to_list stats.Pktsim.replica_versions;
      qr_events_processed = stats.Pktsim.events_processed;
      qr_audit = audit_violations stats;
    }
  in
  {
    q_replicas = replicas;
    q_epoch = epoch;
    q_reconcile = reconcile;
    q_crash_at = crash_at;
    q_partition_at = partition_at;
    q_heal_at = heal_at;
    q_leader_router = leader_router;
    q_probe_events = probe.Pktsim.events_processed;
    q_rows =
      fan_out ?jobs
        (List.map
           (fun s () -> row s)
           [ "leader crash"; "split brain"; "quorum loss" ]);
  }

(* ---- ABL-CORRUPT: silent corruption vs anti-entropy repair ------- *)

type corrupt_row = {
  cr_strategy : string;
  cr_rate : float;
  cr_sweep : float option;
  cr_injected : int;
  cr_delivered : int;
  cr_corruptions : int;
  cr_manifested : int;
  cr_detected : int;
  cr_repaired : int;
  cr_violations : int;
  cr_window_mean : float;
  cr_window_max : float;
  cr_sweep_rounds : int;
  cr_sweep_msgs : int;
  cr_sweep_bytes : int;
  cr_events_processed : int;
  cr_audit : int option;
}

type corrupt_report = {
  c_horizon : float;
  c_epoch : float;
  c_reconcile : float;
  c_default_sweep : float;
  c_probe_events : int;
  c_rows : corrupt_row list;
}

let ablation_corrupt ?(flows = 500) ?(seed = 17) ?(audit = false)
    ?(rates = [ 0.1; 0.4 ]) ?sweep_periods ?jobs ?(shards = 1) () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  let n_mboxes = Array.length deployment.Sdm.Deployment.middleboxes in
  let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
  let lb = configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic) in
  (* A fault-free probe fixes the horizon the corruption burst and the
     sweep cadence are placed within. *)
  let probe =
    Pktsim.run
      ~config:{ Pktsim.default_config with shards }
      ~controller:hp ~workload ()
  in
  let horizon = probe.Pktsim.sim_time in
  let epoch = horizon /. 5.0 in
  let reconcile = epoch /. 4.0 in
  let default_sweep = horizon /. 12.0 in
  let sweep_periods =
    match sweep_periods with
    | Some ps -> ps
    | None -> [ None; Some default_sweep ]
  in
  let row (name, controller) rate sweep =
    let faults =
      (* The corruption burst is a pure function of (seed, rate,
         horizon, deployment) — identical for every sweep period, so a
         row pair differs only in whether the sweep is armed.  A mild
         2% control loss keeps the query/re-push ladder honest. *)
      Fault.Schedule.make ~control_loss:0.02 ~loss_seed:(seed + 3)
        (Fault.Schedule.corruption_events ~seed:(seed + 5) ~rate ~horizon
           ~n_proxies ~n_mboxes)
    in
    let live =
      {
        Pktsim.default_live with
        epoch_interval = epoch;
        reconcile_interval = reconcile;
        sweep_period = sweep;
      }
    in
    let config =
      {
        Pktsim.default_config with
        faults = Some faults;
        live = Some live;
        audit;
        shards;
      }
    in
    let stats = Pktsim.run ~config ~controller ~workload () in
    {
      cr_strategy = name;
      cr_rate = rate;
      cr_sweep = sweep;
      cr_injected = stats.Pktsim.injected_packets;
      cr_delivered = stats.Pktsim.delivered_packets;
      cr_corruptions = stats.Pktsim.corruptions_injected;
      cr_manifested = stats.Pktsim.corruptions_manifested;
      cr_detected = stats.Pktsim.corruptions_detected;
      cr_repaired = stats.Pktsim.corruptions_repaired;
      cr_violations = stats.Pktsim.policy_violations;
      cr_window_mean = stats.Pktsim.repair_window_mean;
      cr_window_max = stats.Pktsim.repair_window_max;
      cr_sweep_rounds = stats.Pktsim.sweep_rounds;
      cr_sweep_msgs = stats.Pktsim.sweep_msgs;
      cr_sweep_bytes = stats.Pktsim.sweep_bytes;
      cr_events_processed = stats.Pktsim.events_processed;
      cr_audit = audit_violations stats;
    }
  in
  let cells =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun rate -> List.map (fun sweep -> (strategy, rate, sweep)) sweep_periods)
          rates)
      [ ("HP", hp); ("LB", lb) ]
  in
  {
    c_horizon = horizon;
    c_epoch = epoch;
    c_reconcile = reconcile;
    c_default_sweep = default_sweep;
    c_probe_events = probe.Pktsim.events_processed;
    c_rows =
      fan_out ?jobs
        (List.map (fun (s, rate, sweep) () -> row s rate sweep) cells);
  }

(* ---- ABL-REOPT: warm-started re-optimization vs cold re-solve ---- *)

type reopt_step = {
  rs_failed : int list;
  rs_cold_pivots : int;
  rs_warm_pivots : int;
  rs_cold_lambda : float;
  rs_warm_lambda : float;
  rs_warm_used : bool;
  rs_fallback : bool;
  rs_agree : bool;
}

let lambda_agree ~cold ~warm =
  Float.abs (warm -. cold) <= 1e-6 *. Stdlib.max 1.0 (Float.abs cold)

(* Two boxes from different functions, so excluding either never
   empties a candidate set (7 FW and 7 IDS boxes are deployed). *)
let churn_victims deployment =
  let first nf =
    (List.hd (Sdm.Deployment.middleboxes_of deployment nf)).Mbox.Middlebox.id
  in
  (first Policy.Action.IDS, first Policy.Action.FW)

let reopt_replay scenario ?(flows = 500) ?(seed = 17) () =
  let deployment = build_deployment scenario ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let base =
    configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic)
  in
  let v1, v2 = churn_victims deployment in
  (* The churn sequence each chain replays: no change (the warm solve
     must take zero pivots), a crash, a second concurrent crash, the
     first recovery, full recovery, and a final no-change step. *)
  let failure_sets = [ []; [ v1 ]; [ v1; v2 ]; [ v2 ]; []; [] ] in
  let reopt c ~failed ~use_warm =
    match Sdm.Controller.reoptimize c ~failed ~use_warm ~traffic () with
    | Ok c -> c
    | Error e -> failwith ("reopt_replay: " ^ e)
  in
  let lp (c : Sdm.Controller.t) = Option.get c.Sdm.Controller.lp in
  let _, _, rev =
    List.fold_left
      (fun (cold, warm, acc) failed ->
        let cold' = reopt cold ~failed ~use_warm:false in
        let warm' = reopt warm ~failed ~use_warm:true in
        let cl = lp cold' and wl = lp warm' in
        let cold_lambda = cl.Sdm.Lp_formulation.lambda in
        let warm_lambda = wl.Sdm.Lp_formulation.lambda in
        ( cold',
          warm',
          {
            rs_failed = failed;
            rs_cold_pivots = cl.Sdm.Lp_formulation.lp_pivots;
            rs_warm_pivots = wl.Sdm.Lp_formulation.lp_pivots;
            rs_cold_lambda = cold_lambda;
            rs_warm_lambda = warm_lambda;
            rs_warm_used = wl.Sdm.Lp_formulation.lp_warm_used;
            rs_fallback = wl.Sdm.Lp_formulation.lp_fallback;
            rs_agree = lambda_agree ~cold:cold_lambda ~warm:warm_lambda;
          }
          :: acc ))
      (base, base, []) failure_sets
  in
  List.rev rev

type reopt_row = {
  rp_scenario : string;
  rp_routers : int;
  rp_warm : bool;
  rp_reopts : int;
  rp_pivots : int;
  rp_phase1 : int;
  rp_warm_used : int;
  rp_fallback : int;
  rp_injected : int;
  rp_delivered : int;
  rp_violations : int;
  rp_versions : int;
  rp_degraded : int;
  rp_max_load : float;
  rp_events_processed : int;
  rp_audit : int option;
}

type reopt_scenario_info = {
  ri_name : string;
  ri_routers : int;
  ri_epoch : float;
  ri_reconcile : float;
  ri_victims : int * int;
  ri_crash1 : float;
  ri_recover1 : float;
  ri_crash2 : float;
  ri_recover2 : float;
  ri_probe_events : int;
}

type reopt_report = {
  rp_control_loss : float;
  rp_infos : reopt_scenario_info list;
  rp_rows : reopt_row list;
  rp_replays : (string * reopt_step list) list;
  rp_agree : int;
  rp_total : int;
}

let ablation_reopt ?(flows = 500) ?(seed = 17) ?(audit = false) ?jobs
    ?(shards = 1) () =
  let control_loss = 0.02 in
  let scenarios = [ Campus; Waxman ] in
  let scenario_cell scenario () =
    let deployment = build_deployment scenario ~seed in
    let workload = Workload.generate ~deployment ~seed ~flows () in
    let rules = workload.Workload.rules in
    let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
    (* A fault-free probe under the stale plan fixes the horizon the
       epochs and the churn schedule are placed within. *)
    let probe =
      Pktsim.run
        ~config:{ Pktsim.default_config with shards }
        ~controller:hp ~workload ()
    in
    let horizon = probe.Pktsim.sim_time in
    (* Twice the usual epoch cadence: the sweep's point is the re-solve
       sequence itself, and a denser cadence gives the warm chain
       same-layout neighbours (churn-free epochs late in the run) as
       well as layout-changing ones (around the churn window). *)
    let epoch = horizon /. 10.0 in
    let reconcile = epoch /. 4.0 in
    let v1, v2 = churn_victims deployment in
    let crash1 = 0.15 *. horizon and recover1 = 0.35 *. horizon in
    let crash2 = 0.45 *. horizon and recover2 = 0.65 *. horizon in
    let schedule =
      Fault.Schedule.make ~control_loss ~loss_seed:(seed + 3)
        Fault.Schedule.
          [
            { at = crash1; what = Mbox_crash v1 };
            { at = recover1; what = Mbox_recover v1 };
            { at = crash2; what = Mbox_crash v2 };
            { at = recover2; what = Mbox_recover v2 };
          ]
    in
    let routers =
      Netgraph.Graph.node_count
        deployment.Sdm.Deployment.topo.Netgraph.Topology.graph
    in
    let run warm =
      let live =
        {
          Pktsim.default_live with
          epoch_interval = epoch;
          reconcile_interval = reconcile;
          warm_start = warm;
        }
      in
      let config =
        {
          Pktsim.default_config with
          faults = Some schedule;
          live = Some live;
          audit;
          shards;
        }
      in
      let stats = Pktsim.run ~config ~controller:hp ~workload () in
      {
        rp_scenario = scenario_name scenario;
        rp_routers = routers;
        rp_warm = warm;
        rp_reopts = stats.Pktsim.reoptimizations;
        rp_pivots = stats.Pktsim.reopt_pivots;
        rp_phase1 = stats.Pktsim.reopt_phase1_pivots;
        rp_warm_used = stats.Pktsim.reopt_warm_used;
        rp_fallback = stats.Pktsim.reopt_fallback;
        rp_injected = stats.Pktsim.injected_packets;
        rp_delivered = stats.Pktsim.delivered_packets;
        rp_violations = stats.Pktsim.policy_violations;
        rp_versions = stats.Pktsim.final_config_version;
        rp_degraded = stats.Pktsim.config_degraded;
        rp_max_load = Array.fold_left Stdlib.max 0.0 stats.Pktsim.loads;
        rp_events_processed = stats.Pktsim.events_processed;
        rp_audit = audit_violations stats;
      }
    in
    let info =
      {
        ri_name = scenario_name scenario;
        ri_routers = routers;
        ri_epoch = epoch;
        ri_reconcile = reconcile;
        ri_victims = (v1, v2);
        ri_crash1 = crash1;
        ri_recover1 = recover1;
        ri_crash2 = crash2;
        ri_recover2 = recover2;
        ri_probe_events = probe.Pktsim.events_processed;
      }
    in
    (* The cold/warm pair stays inside the cell so both rows share one
       probe, schedule and workload — the pair differs only in the
       [warm_start] flag. *)
    (info, [ run false; run true ])
  in
  let cells = fan_out ?jobs (List.map scenario_cell scenarios) in
  let replays =
    fan_out ?jobs
      (List.map
         (fun s () -> (scenario_name s, reopt_replay s ~flows ~seed ()))
         scenarios)
  in
  let agree, total =
    List.fold_left
      (fun (a, t) (_, steps) ->
        List.fold_left
          (fun (a, t) s -> ((if s.rs_agree then a + 1 else a), t + 1))
          (a, t) steps)
      (0, 0) replays
  in
  {
    rp_control_loss = control_loss;
    rp_infos = List.map fst cells;
    rp_rows = List.concat_map snd cells;
    rp_replays = replays;
    rp_agree = agree;
    rp_total = total;
  }

type sketch_point = {
  epsilon : float;
  sketch_cells : int;
  exact_cells : int;
  exact_lambda : float;
  sketched_lambda : float;
  exact_realized_max : float;
  sketched_realized_max : float;
}

type sketch_sweep = { sk_points : sketch_point list; sk_events : int }

let ablation_sketch ?(flows = 120_000) ?(seed = 17) ?jobs ?shards () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let exact = Workload.measure workload in
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  let exact_cells =
    List.fold_left
      (fun acc rule -> acc + List.length (Sdm.Measurement.pairs_for exact ~rule))
      0
      (Sdm.Measurement.rules_with_traffic exact)
  in
  let realized traffic =
    let controller =
      configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic)
    in
    let result = Flowsim.run ?shards ~controller ~workload () in
    ( (match controller.Sdm.Controller.lp with
      | Some lp -> lp.Sdm.Lp_formulation.lambda
      | None -> 0.0),
      Array.fold_left max 0.0 result.Flowsim.loads,
      result.Flowsim.events )
  in
  let exact_lambda, exact_realized_max, exact_events = realized exact in
  let cell epsilon () =
    let sketch =
      Sdm.Sketch.of_workload_measurement ~exact ~n_proxies ~rules ~epsilon ()
    in
    let approx = Sdm.Sketch.to_measurement sketch ~rules in
    let sketched_lambda, sketched_realized_max, events = realized approx in
    ( {
        epsilon;
        sketch_cells = Sdm.Sketch.memory_cells sketch;
        exact_cells;
        exact_lambda;
        sketched_lambda;
        exact_realized_max;
        sketched_realized_max;
      },
      events )
  in
  let results = fan_out ?jobs (List.map cell [ 0.5; 0.2; 0.05; 0.01 ]) in
  {
    sk_points = List.map fst results;
    sk_events =
      exact_events + List.fold_left (fun acc (_, e) -> acc + e) 0 results;
  }

type latency_report = {
  enforced_mean : float;
  enforced_p50 : float;
  enforced_p99 : float;
  plain_mean : float;
  plain_p50 : float;
  plain_p99 : float;
  mean_overhead : float;
  events_processed : int;
  router_hops : int;
}

let ablation_latency ?(flows = 1_000) ?(seed = 17) ?jobs ?(shards = 1) () =
  let controller, workload = pkt_level_controller ~seed ~flows () in
  let config = { Pktsim.default_config with shards } in
  let enforced, plain =
    match
      fan_out ?jobs
        [
          (fun () -> Pktsim.run ~config ~controller ~workload ());
          (fun () ->
            let plain_controller =
              match
                Sdm.Controller.configure controller.Sdm.Controller.deployment
                  ~rules:[] Sdm.Controller.Hot_potato
              with
              | Ok c -> c
              | Error e -> failwith ("ablation_latency: " ^ e)
            in
            Pktsim.run ~config ~controller:plain_controller
              ~workload:{ workload with Workload.rules = [] }
              ());
        ]
    with
    | [ e; p ] -> (e, p)
    | _ -> assert false
  in
  {
    enforced_mean = enforced.Pktsim.latency_mean;
    enforced_p50 = enforced.Pktsim.latency_p50;
    enforced_p99 = enforced.Pktsim.latency_p99;
    plain_mean = plain.Pktsim.latency_mean;
    plain_p50 = plain.Pktsim.latency_p50;
    plain_p99 = plain.Pktsim.latency_p99;
    mean_overhead =
      (if plain.Pktsim.latency_mean > 0.0 then
         enforced.Pktsim.latency_mean /. plain.Pktsim.latency_mean
       else 1.0);
    events_processed =
      enforced.Pktsim.events_processed + plain.Pktsim.events_processed;
    router_hops = enforced.Pktsim.router_hops + plain.Pktsim.router_hops;
  }

type queue_report = {
  service_rate : float;
  hp_util_max : float;
  lb_util_max : float;
  hp_latency_mean : float;
  hp_latency_p99 : float;
  lb_latency_mean : float;
  lb_latency_p99 : float;
  events_processed : int;
  router_hops : int;
}

let ablation_queue ?(flows = 800) ?(seed = 17) ?jobs ?(shards = 1) () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  let lb = configure_exn deployment ~rules (Sdm.Controller.Load_balanced traffic) in
  let hp = configure_exn deployment ~rules Sdm.Controller.Hot_potato in
  (* Calibrate: infinite-rate LB run gives the busiest box's arrival
     rate; provision every box at 2x that, i.e. ~50% utilisation under
     the balanced plan. *)
  let probe =
    Pktsim.run
      ~config:{ Pktsim.default_config with shards }
      ~controller:lb ~workload ()
  in
  let max_load = Array.fold_left max 1.0 probe.Pktsim.loads in
  let service_rate = 2.0 *. max_load /. probe.Pktsim.sim_time in
  let config = { Pktsim.default_config with service_rate; shards } in
  let run controller () = Pktsim.run ~config ~controller ~workload () in
  let hp_run, lb_run =
    match fan_out ?jobs [ run hp; run lb ] with
    | [ h; l ] -> (h, l)
    | _ -> assert false
  in
  let util stats =
    (* Busiest box's work time over the span it was receiving. *)
    Array.fold_left max 0.0 stats.Pktsim.loads
    /. service_rate /. probe.Pktsim.sim_time
  in
  {
    service_rate;
    hp_util_max = util hp_run;
    lb_util_max = util lb_run;
    hp_latency_mean = hp_run.Pktsim.latency_mean;
    hp_latency_p99 = hp_run.Pktsim.latency_p99;
    lb_latency_mean = lb_run.Pktsim.latency_mean;
    lb_latency_p99 = lb_run.Pktsim.latency_p99;
    events_processed =
      probe.Pktsim.events_processed + hp_run.Pktsim.events_processed
      + lb_run.Pktsim.events_processed;
    router_hops =
      probe.Pktsim.router_hops + hp_run.Pktsim.router_hops
      + lb_run.Pktsim.router_hops;
  }

type lp_compare = {
  exact_lambda : float;
  exact_vars : int;
  exact_constraints : int;
  exact_realized : float;       (** realised max load enforcing Eq. (1) weights *)
  exact_weight_rows : int;      (** per-(s,d) rows + fallback — config volume *)
  simplified_lambda : float;
  simplified_vars : int;
  simplified_constraints : int;
  simplified_realized : float;
  simplified_weight_rows : int;
  lp_events : int;
}

let ablation_lp ?(flows = 5_000) ?(seed = 17) ?jobs ?shards () =
  let deployment = build_deployment Campus ~seed in
  let workload = Workload.generate ~deployment ~per_class:2 ~seed ~flows () in
  let rules = workload.Workload.rules in
  let traffic = Workload.measure workload in
  (* Full enforcement comparison: configure a controller per
     formulation and realise both plans on the same workload — one
     fan-out cell per formulation, LP solve included. *)
  let cell kind () =
    let controller = configure_exn deployment ~rules kind in
    let result = Flowsim.run ?shards ~controller ~workload () in
    ( controller,
      Array.fold_left max 0.0 result.Flowsim.loads,
      result.Flowsim.events )
  in
  match
    fan_out ?jobs
      [
        cell (Sdm.Controller.Load_balanced_exact traffic);
        cell (Sdm.Controller.Load_balanced traffic);
      ]
  with
  | [ (exact_c, exact_realized, e1); (simpl_c, simplified_realized, e2) ] ->
    let exact = Option.get exact_c.Sdm.Controller.lp in
    let simplified = Option.get simpl_c.Sdm.Controller.lp in
    let weight_rows c = (Sdm.Controller.config_summary c).Sdm.Controller.weight_rows in
    {
      exact_lambda = exact.Sdm.Lp_formulation.lambda;
      exact_vars = exact.Sdm.Lp_formulation.lp_vars;
      exact_constraints = exact.Sdm.Lp_formulation.lp_constraints;
      exact_realized;
      exact_weight_rows = weight_rows exact_c;
      simplified_lambda = simplified.Sdm.Lp_formulation.lambda;
      simplified_vars = simplified.Sdm.Lp_formulation.lp_vars;
      simplified_constraints = simplified.Sdm.Lp_formulation.lp_constraints;
      simplified_realized;
      simplified_weight_rows = weight_rows simpl_c;
      lp_events = e1 + e2;
    }
  | _ -> assert false
