(** A single link-state router instance.

    Owns a link-state database (newest LSA per origin) and floods
    received advertisements to every neighbour except the one it heard
    them from, exactly like OSPF's reliable flooding (minus
    acknowledgements, which matter only under loss — our links are
    lossless).  Once the network has quiesced, {!spf} computes the
    router's forwarding table from its database.

    A link is used by SPF only when *both* endpoints advertise it
    (OSPF's bidirectionality check), so a half-propagated database can
    never produce a path through a link the other side does not
    confirm. *)

type t

val create : id:int -> neighbors:(int * float) list -> t

val id : t -> int

val neighbors : t -> (int * float) list
(** Current adjacency (shrinks as links fail). *)

val remove_neighbor : t -> int -> unit
(** Local link-down event: drop the adjacency.  The caller re-floods
    by calling {!originate} afterwards.  Unknown neighbours are
    ignored. *)

val add_neighbor : t -> int -> float -> unit
(** Local link-up / metric-change event: (re-)install the adjacency at
    the given cost.  Raises [Invalid_argument] if the neighbour is
    already present (remove first) or the cost is non-positive. *)

val originate : t -> Lsa.t
(** The router's own current LSA (bumps its sequence number). *)

val install : t -> Lsa.t -> bool
(** [install t lsa] stores the LSA if it is new or newer than the one
    on file; returns [true] when the database changed (meaning the LSA
    must be flooded onward). *)

val lsdb : t -> Lsa.t list
(** Snapshot of the database, ordered by origin id. *)

val lsdb_size : t -> int

val spf : t -> node_count:int -> Netgraph.Routing.table
(** Dijkstra over the confirmed-bidirectional links in the database. *)
