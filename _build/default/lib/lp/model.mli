(** Linear-program builder.

    Minimisation over non-negative variables with sparse rows — all
    the generality the paper's load-balancing formulations Eq. (1) and
    Eq. (2) require.  Build a model incrementally, then {!solve} hands
    it to the {!Simplex} engine. *)

type t

type var
(** A variable handle, valid only for the model that created it. *)

type cmp = Le | Ge | Eq

type solution = {
  objective : float;
  values : float array; (** indexed by {!var_index} *)
}

type outcome = Optimal of solution | Infeasible | Unbounded

val create : unit -> t

val var : t -> string -> var
(** Fresh non-negative variable.  The name is kept for debugging and
    duplicate detection is not performed. *)

val var_index : var -> int
val var_name : t -> var -> string
val num_vars : t -> int
val num_constraints : t -> int

val add_constraint : t -> (float * var) list -> cmp -> float -> unit
(** [add_constraint t terms cmp rhs] adds [Σ coef·var cmp rhs].
    Repeated variables in [terms] are summed. *)

val set_objective : t -> (float * var) list -> unit
(** Minimised objective; variables not mentioned have cost 0. *)

val value : solution -> var -> float

val solve : t -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
