(* Chaos day: in-run faults at packet level, survived.

   A narrative for the fault-injection subsystem: build the campus
   deployment, pick the busiest IDS middlebox, and replay the same
   deterministic fault schedule — a mid-run crash of that box, a
   gateway-core link flap with live OSPF reconvergence, and lossy
   control packets — under three regimes: failover with a fast
   detector, failover with a slow detector, and no failover at all.
   The run never aborts; the damage shows up as counted policy
   violations whose tail ends once the failure detector flips.

     dune exec examples/chaos_day.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows:400 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let controller =
    match
      Sdm.Controller.configure deployment ~rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  Format.printf "network: %a@.@." Netgraph.Topology.pp
    deployment.Sdm.Deployment.topo;

  (* A fault-free run fixes the horizon and the victim. *)
  let calm = Sim.Pktsim.run ~controller ~workload () in
  let victim =
    let victims = Sdm.Deployment.middleboxes_of deployment Policy.Action.IDS in
    List.fold_left
      (fun best (m : Mbox.Middlebox.t) ->
        if calm.Sim.Pktsim.loads.(m.id) > calm.Sim.Pktsim.loads.(best) then m.id
        else best)
      (List.hd victims).Mbox.Middlebox.id victims
  in
  let crash_at = 0.3 *. calm.Sim.Pktsim.sim_time in
  let topo = deployment.Sdm.Deployment.topo in
  let gw = List.hd (Netgraph.Topology.gateways topo) in
  let core =
    List.find_map
      (fun { Netgraph.Graph.dst; _ } ->
        match Netgraph.Topology.role topo dst with
        | Netgraph.Topology.Core -> Some dst
        | _ -> None)
      (Netgraph.Graph.neighbors topo.Netgraph.Topology.graph gw)
    |> Option.get
  in
  let schedule =
    Fault.Schedule.make ~control_loss:0.05 ~loss_seed:23
      Fault.Schedule.
        [
          { at = crash_at; what = Mbox_crash victim };
          { at = 0.5 *. calm.Sim.Pktsim.sim_time; what = Link_fail (gw, core) };
          { at = 0.7 *. calm.Sim.Pktsim.sim_time; what = Link_restore (gw, core) };
        ]
  in
  Format.printf
    "fault schedule: mbox%d (IDS) crashes at t=%.0f; link %d-%d flaps; 5%% \
     control-packet loss@.@."
    victim crash_at gw core;

  let run ~failover ~detection_delay =
    Sim.Pktsim.run
      ~config:
        {
          Sim.Pktsim.default_config with
          faults = Some schedule;
          detection_delay;
          failover;
        }
      ~controller ~workload ()
  in
  let show label (s : Sim.Pktsim.stats) =
    Format.printf
      "%-28s delivered %d/%d, violations %4d, control retries %d, last \
       violation t=%.1f@."
      label s.Sim.Pktsim.delivered_packets s.Sim.Pktsim.injected_packets
      s.Sim.Pktsim.policy_violations s.Sim.Pktsim.control_retries
      s.Sim.Pktsim.last_violation_time;
    s
  in

  let fast = show "failover, detector delay 2" (run ~failover:true ~detection_delay:2.0) in
  let slow = show "failover, detector delay 30" (run ~failover:true ~detection_delay:30.0) in
  let none = show "no failover" (run ~failover:false ~detection_delay:2.0) in

  (* The dependability story, asserted. *)
  (* 1. Every injected packet is accounted for: delivered or counted
     dropped — faults never lose packets silently, and never abort. *)
  List.iter
    (fun (s : Sim.Pktsim.stats) ->
      assert (
        s.Sim.Pktsim.delivered_packets + s.Sim.Pktsim.dropped_packets
        = s.Sim.Pktsim.injected_packets))
    [ fast; slow; none ];
  (* 2. With failover, the violation tail ends shortly after the
     detector flips: crash + delay, plus packets already in flight. *)
  let slack = 5.0 in
  assert (fast.Sim.Pktsim.last_violation_time < crash_at +. 2.0 +. slack);
  assert (slow.Sim.Pktsim.last_violation_time < crash_at +. 30.0 +. slack);
  (* 3. A slower detector bleeds more; no failover never stops. *)
  assert (fast.Sim.Pktsim.policy_violations <= slow.Sim.Pktsim.policy_violations);
  assert (slow.Sim.Pktsim.policy_violations < none.Sim.Pktsim.policy_violations);
  (* 4. Lost control packets were masked by retransmission. *)
  assert (fast.Sim.Pktsim.control_retries > 0);
  (* 5. Determinism: replaying the same schedule is bit-identical. *)
  let again = run ~failover:true ~detection_delay:2.0 in
  assert (
    { again with Sim.Pktsim.loads = [||] } = { fast with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = fast.Sim.Pktsim.loads);

  Format.printf
    "@.all invariants hold: graceful degradation, bounded recovery, \
     deterministic replay@."
