lib/policy/flow_cache.mli: Action Netpkt
