(** Forwarding weights computed by the load-balancing LP.

    [t] maps (entity, rule, next function) to an array of
    (middlebox id, volume) pairs — the t_{e,p}(x,y) values of Eq. (2).
    The enforcement plane selects the next hop with probability
    proportional to these volumes. *)

type t

val create : unit -> t

val set :
  t -> Mbox.Entity.t -> rule:int -> nf:Policy.Action.nf ->
  (int * float) array -> unit

val find :
  t -> Mbox.Entity.t -> rule:int -> nf:Policy.Action.nf ->
  (int * float) array option

val entries : t -> int
(** Number of stored rows — the controller-to-middlebox communication
    volume the simplified formulation is designed to shrink. *)

val cells : t -> int
(** Total (middlebox, volume) pairs across all rows. *)
