type family = Majority | Weighted of int array

let validate fam ~n =
  if n < 1 then Error "acceptor count must be at least 1"
  else
    match fam with
    | Majority -> Ok ()
    | Weighted votes ->
      if Array.length votes <> n then
        Error
          (Printf.sprintf "weight vector has %d entries for %d acceptors"
             (Array.length votes) n)
      else if Array.exists (fun v -> v < 0) votes then
        Error "negative vote weight"
      else if Array.fold_left ( + ) 0 votes <= 0 then
        Error "vote weights sum to zero"
      else Ok ()

let votes fam ~acceptor =
  match fam with Majority -> 1 | Weighted vs -> vs.(acceptor)

let total_votes fam ~n =
  match fam with Majority -> n | Weighted vs -> Array.fold_left ( + ) 0 vs

let threshold fam ~n = (total_votes fam ~n / 2) + 1

let is_quorum fam ~n member =
  let sum = ref 0 in
  for i = 0 to n - 1 do
    if member i then sum := !sum + votes fam ~acceptor:i
  done;
  !sum >= threshold fam ~n

module Acceptor = struct
  type t = {
    mutable acc_version : int;
    mutable acc_digest : int64;
    mutable com_version : int;
    mutable com_digest : int64;
  }

  type verdict = Accept | Repeat | Stale | Conflict

  let create () =
    { acc_version = 0; acc_digest = 0L; com_version = 0; com_digest = 0L }

  let receive t ~version ~digest =
    if version <= t.com_version then
      if version = t.com_version && not (Int64.equal digest t.com_digest) then
        Conflict
      else Stale
    else if version < t.acc_version then Stale
    else if
      version = t.acc_version && t.acc_version > 0
      && Int64.equal digest t.acc_digest
    then Repeat
    else begin
      (* Either a fresh version, or a re-proposal of an uncommitted
         version after its round died — the newer proposal supersedes
         the acceptance, never a commitment. *)
      t.acc_version <- version;
      t.acc_digest <- digest;
      Accept
    end

  let accepted t =
    if t.acc_version = 0 then None else Some (t.acc_version, t.acc_digest)

  let commit t ~version ~digest =
    if version = t.com_version then
      if Int64.equal digest t.com_digest then Ok ()
      else
        Error
          (Printf.sprintf "divergent commit at version %d (%Lx vs %Lx)" version
             t.com_digest digest)
    else if version < t.com_version then
      Error
        (Printf.sprintf "commit regresses from version %d to %d" t.com_version
           version)
    else begin
      t.com_version <- version;
      t.com_digest <- digest;
      (* Committing also settles the acceptance window: stale proposals
         below the commit can never matter again. *)
      if t.acc_version < version then begin
        t.acc_version <- version;
        t.acc_digest <- digest
      end;
      Ok ()
    end

  let committed t = t.com_version
  let committed_digest t = t.com_digest
end

module Round = struct
  type outcome = Pending | Committed | Abandoned

  (* Per-acceptor round status: 0 undecided, 1 voted, 2 lost. *)
  type t = {
    fam : family;
    n : int;
    r_version : int;
    r_digest : int64;
    status : int array;
    mutable r_outcome : outcome;
  }

  let start fam ~n ~version ~digest =
    (match validate fam ~n with
    | Ok () -> ()
    | Error e -> invalid_arg ("Quorum.Round.start: " ^ e));
    {
      fam;
      n;
      r_version = version;
      r_digest = digest;
      status = Array.make n 0;
      r_outcome = Pending;
    }

  let version t = t.r_version
  let digest t = t.r_digest
  let outcome t = t.r_outcome

  let accept t ~acceptor =
    if acceptor < 0 || acceptor >= t.n then
      invalid_arg "Quorum.Round.accept: acceptor out of range";
    if t.status.(acceptor) <> 1 then t.status.(acceptor) <- 1

  let fail t ~acceptor =
    if acceptor < 0 || acceptor >= t.n then
      invalid_arg "Quorum.Round.fail: acceptor out of range";
    if t.status.(acceptor) = 0 then t.status.(acceptor) <- 2

  let accept_votes t =
    let sum = ref 0 in
    for i = 0 to t.n - 1 do
      if t.status.(i) = 1 then sum := !sum + votes t.fam ~acceptor:i
    done;
    !sum

  let has_quorum t = accept_votes t >= threshold t.fam ~n:t.n

  let can_reach_quorum t =
    let sum = ref 0 in
    for i = 0 to t.n - 1 do
      if t.status.(i) <> 2 then sum := !sum + votes t.fam ~acceptor:i
    done;
    !sum >= threshold t.fam ~n:t.n

  let mark_committed t = t.r_outcome <- Committed
  let mark_abandoned t = t.r_outcome <- Abandoned
end
