type table = int array

(* The next hop of [src] towards [dst] is the first node after [src] on
   the shortest path, i.e. the last link of the reverse path from the
   destination-rooted view.  We compute it from the source-rooted SPT
   by walking predecessors back from [dst]. *)
let table_for g src =
  let n = Graph.node_count g in
  let tree = Dijkstra.run g src in
  let table = Array.make n (-1) in
  table.(src) <- src;
  for dst = 0 to n - 1 do
    if dst <> src && tree.Dijkstra.dist.(dst) < infinity then begin
      let rec back u = if tree.Dijkstra.prev.(u) = src then u else back tree.Dijkstra.prev.(u) in
      table.(dst) <- back dst
    end
  done;
  table

let build_all g = Array.init (Graph.node_count g) (fun u -> table_for g u)

let next_hop table dst =
  let hop = table.(dst) in
  if hop = -1 then None else Some hop

type ecmp_table = int array array

let build_all_ecmp g =
  let n = Graph.node_count g in
  let dist = Dijkstra.all_pairs g in
  Array.init n (fun u ->
      Array.init n (fun dst ->
          if u = dst then [| dst |]
          else if dist.(u).(dst) = infinity then [||]
          else
            List.filter_map
              (fun { Graph.dst = h; cost } ->
                if abs_float ((cost +. dist.(h).(dst)) -. dist.(u).(dst)) < 1e-9
                then Some h
                else None)
              (Graph.neighbors g u)
            |> List.sort compare |> Array.of_list))

let walk tables ~src ~dst =
  let n = Array.length tables in
  let rec go u acc steps =
    if u = dst then List.rev (u :: acc)
    else if steps > n then failwith "Routing.walk: forwarding loop"
    else
      match next_hop tables.(u) dst with
      | None -> failwith "Routing.walk: unreachable destination"
      | Some hop -> go hop (u :: acc) (steps + 1)
  in
  go src [] 0
