(* Incremental re-optimization: warm-started LP re-solves under churn.

   A narrative for the warm-start path: take one load-balanced
   configuration and walk it through a middlebox churn sequence — a
   crash, a second concurrent crash, staged recovery — twice.  The
   cold chain rebuilds candidate sets and re-solves the placement LP
   from scratch at every step; the warm chain patches the candidate
   sets in place and restarts the simplex from the previous plan's
   basis, falling back to the cold two-phase solve whenever the
   rebuilt LP's layout changed.  Both chains must land on the same
   optimum at every step — warm starting buys pivots, never answers.

   The same flag then runs inside the packet simulator: one live
   control-plane run per mode, identical fault schedule, and the warm
   run re-solves its in-run LPs with strictly fewer total pivots.

     dune exec examples/incremental_reopt.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows:400 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let base =
    match
      Sdm.Controller.configure deployment ~rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  (match base.Sdm.Controller.lp with
  | Some lp ->
    Format.printf
      "initial plan: lambda %.0f, %d pivots (two-phase from scratch)@.@."
      lp.Sdm.Lp_formulation.lambda lp.Sdm.Lp_formulation.lp_pivots
  | None -> assert false);

  (* The controller-level differential: same churn, two chains. *)
  let steps = Sim.Experiment.reopt_replay Sim.Experiment.Campus ~flows:400 () in
  Format.printf "%-4s %-10s %12s %12s %6s %9s@." "step" "failed"
    "cold pivots" "warm pivots" "warm" "fallback";
  List.iteri
    (fun i (s : Sim.Experiment.reopt_step) ->
      Format.printf "%-4d %-10s %12d %12d %6s %9s@." (i + 1)
        (match s.Sim.Experiment.rs_failed with
        | [] -> "-"
        | l -> String.concat "+" (List.map string_of_int l))
        s.Sim.Experiment.rs_cold_pivots s.Sim.Experiment.rs_warm_pivots
        (if s.Sim.Experiment.rs_warm_used then "yes" else "no")
        (if s.Sim.Experiment.rs_fallback then "yes" else "no"))
    steps;

  (* The warm-start contract, asserted step by step. *)
  List.iteri
    (fun i (s : Sim.Experiment.reopt_step) ->
      (* 1. Warm and cold agree on the optimum at every step. *)
      assert s.Sim.Experiment.rs_agree;
      (* 2. The warm solve either carried the basis or honestly fell
         back — never both, never neither. *)
      assert (s.Sim.Experiment.rs_warm_used <> s.Sim.Experiment.rs_fallback);
      (* 3. An unchanged problem warm-solves in exactly zero pivots:
         the first step repeats the initial solve, and the last step
         repeats its predecessor. *)
      if i = 0 || i = List.length steps - 1 then begin
        assert s.Sim.Experiment.rs_warm_used;
        assert (s.Sim.Experiment.rs_warm_pivots = 0)
      end)
    steps;
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 steps in
  let cold_total = sum (fun s -> s.Sim.Experiment.rs_cold_pivots) in
  let warm_total = sum (fun s -> s.Sim.Experiment.rs_warm_pivots) in
  Format.printf
    "@.churn chain: cold %d pivots, warm %d pivots (%.0f%% saved), same \
     optima@.@."
    cold_total warm_total
    (100.0 *. float_of_int (cold_total - warm_total) /. float_of_int cold_total);
  assert (warm_total < cold_total);

  (* The same flag inside the packet simulator: live control plane,
     middlebox churn, warm_start off vs on.  Identical traffic and
     faults; only the solver's path to each optimum differs. *)
  let r = Sim.Experiment.ablation_reopt ~flows:400 () in
  let row warm =
    List.find
      (fun (row : Sim.Experiment.reopt_row) ->
        row.Sim.Experiment.rp_scenario = "campus"
        && row.Sim.Experiment.rp_warm = warm)
      r.Sim.Experiment.rp_rows
  in
  let cold = row false and warm = row true in
  Format.printf
    "in-run (campus, %d re-optimizations): cold %d pivots, warm %d pivots \
     (%d warm-carried, %d fell back)@."
    cold.Sim.Experiment.rp_reopts cold.Sim.Experiment.rp_pivots
    warm.Sim.Experiment.rp_pivots warm.Sim.Experiment.rp_warm_used
    warm.Sim.Experiment.rp_fallback;
  (* 4. Warm starting saves pivots in-run too, and perturbs nothing
     else: same packets, same delivery, same versions published. *)
  assert (warm.Sim.Experiment.rp_pivots < cold.Sim.Experiment.rp_pivots);
  assert (warm.Sim.Experiment.rp_injected = cold.Sim.Experiment.rp_injected);
  assert (warm.Sim.Experiment.rp_versions = cold.Sim.Experiment.rp_versions);
  (* 5. The replay's global verdict: every step of every scenario
     agreed. *)
  assert (r.Sim.Experiment.rp_agree = r.Sim.Experiment.rp_total);

  Format.printf
    "@.all invariants hold: equal optima, zero-pivot no-op re-solves, \
     strictly fewer pivots warm@."
