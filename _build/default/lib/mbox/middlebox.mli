(** Middlebox descriptors.

    A software-defined middlebox implements one network function, has
    a processing capacity (the LP's C(x)) and is attached to a router
    either in-path or off-path — both attachments are transparent to
    the routers (Sec. III.A), so for routing purposes only the
    attachment router matters. *)

type attachment = In_path | Off_path

type t = {
  id : int;
  nf : Policy.Action.nf;
  capacity : float;
  router : int;          (** attachment router (graph node id) *)
  attachment : attachment;
  addr : Netpkt.Addr.t;  (** the middlebox's own IP, tunnel endpoint *)
}

val make :
  id:int ->
  nf:Policy.Action.nf ->
  ?capacity:float ->
  router:int ->
  ?attachment:attachment ->
  addr:Netpkt.Addr.t ->
  unit ->
  t
(** [capacity] defaults to 1.0 (uniform capacities, the evaluation's
    setting, under which the LP's lambda*C(x) bound makes lambda the
    maximum per-middlebox load). *)

val pp : Format.formatter -> t -> unit
