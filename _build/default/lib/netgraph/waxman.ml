type params = {
  cores : int;
  edges : int;
  core_degree : int;
  region : float;
  beta : float;
}

let default_params =
  { cores = 25; edges = 400; core_degree = 4; region = 100.0; beta = 0.4 }

let generate ?(params = default_params) ~seed () =
  let { cores; edges; core_degree; region; beta } = params in
  if cores < 2 then invalid_arg "Waxman.generate: need at least 2 cores";
  if edges mod cores <> 0 then
    invalid_arg "Waxman.generate: edges must divide evenly across cores";
  if core_degree < 1 || core_degree >= cores then
    invalid_arg "Waxman.generate: core_degree out of range";
  let rng = Stdx.Rng.create seed in
  let n = cores + edges in
  let g = Graph.create n in
  let coords =
    Array.init cores (fun _ ->
        (Stdx.Rng.float rng region, Stdx.Rng.float rng region))
  in
  let dist i j =
    let xi, yi = coords.(i) and xj, yj = coords.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  let l_max = region *. sqrt 2.0 in
  (* Each core draws [core_degree] distinct peers, weighting closer
     cores exponentially higher (the Waxman kernel). *)
  let weight i j = exp (-.dist i j /. (beta *. l_max)) in
  for u = 0 to cores - 1 do
    let missing () = core_degree - Graph.degree g u in
    let attempts = ref 0 in
    while missing () > 0 && !attempts < 200 * cores do
      incr attempts;
      let candidates =
        List.filter (fun v -> v <> u && not (Graph.has_edge g u v)) (List.init cores Fun.id)
      in
      match candidates with
      | [] -> attempts := max_int
      | _ ->
        let total = List.fold_left (fun acc v -> acc +. weight u v) 0.0 candidates in
        let pick = Stdx.Rng.float rng total in
        let rec select acc = function
          | [ v ] -> v
          | v :: rest ->
            let acc = acc +. weight u v in
            if pick < acc then v else select acc rest
          | [] -> assert false
        in
        let v = select 0.0 candidates in
        (* Do not let the peer's degree explode; accept only if it still
           has head-room, unless we are running out of attempts. *)
        if Graph.degree g v < core_degree + 2 || !attempts > 100 * cores then
          Graph.add_edge g u v 1.0
    done
  done;
  (* Guarantee connectivity of the core mesh: link each unreached
     component to its nearest reached core. *)
  let reached = Array.make cores false in
  let rec bfs u =
    reached.(u) <- true;
    List.iter
      (fun { Graph.dst; _ } -> if dst < cores && not reached.(dst) then bfs dst)
      (Graph.neighbors g u)
  in
  bfs 0;
  for u = 1 to cores - 1 do
    if not reached.(u) then begin
      let best = ref (-1) and best_d = ref infinity in
      for v = 0 to cores - 1 do
        if reached.(v) && dist u v < !best_d then begin
          best := v;
          best_d := dist u v
        end
      done;
      Graph.add_edge g u !best 1.0;
      bfs u
    end
  done;
  (* Edge routers split evenly, single-homed to their core. *)
  let per_core = edges / cores in
  for e = 0 to edges - 1 do
    let core = e / per_core in
    Graph.add_edge g (cores + e) core 1.0
  done;
  let roles =
    Array.init n (fun i -> if i < cores then Topology.Core else Topology.Edge)
  in
  Topology.make ~name:"waxman" ~graph:g ~roles
