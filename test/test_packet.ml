(* Tests for addresses, prefixes, flows, headers, encapsulation and
   fragmentation. *)

let addr = Alcotest.testable (Fmt.of_to_string Netpkt.Addr.to_string) ( = )

let test_addr_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "roundtrip" s
        (Netpkt.Addr.to_string (Netpkt.Addr.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "128.40.255.1"; "255.255.255.255" ]

let test_addr_invalid () =
  List.iter
    (fun s ->
      match Netpkt.Addr.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %s" s)
    [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "" ]

let test_prefix_contains () =
  let p = Netpkt.Addr.Prefix.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true
    (Netpkt.Addr.Prefix.contains p (Netpkt.Addr.of_string "10.1.200.3"));
  Alcotest.(check bool) "outside" false
    (Netpkt.Addr.Prefix.contains p (Netpkt.Addr.of_string "10.2.0.1"));
  Alcotest.(check bool) "wildcard contains all" true
    (Netpkt.Addr.Prefix.contains Netpkt.Addr.Prefix.any
       (Netpkt.Addr.of_string "200.200.200.200"))

let test_prefix_normalises () =
  let p = Netpkt.Addr.Prefix.make (Netpkt.Addr.of_string "10.1.2.3") 16 in
  Alcotest.(check string) "host bits cleared" "10.1.0.0/16"
    (Netpkt.Addr.Prefix.to_string p)

let test_prefix_subsumes_overlaps () =
  let outer = Netpkt.Addr.Prefix.of_string "10.0.0.0/8" in
  let inner = Netpkt.Addr.Prefix.of_string "10.1.0.0/16" in
  let other = Netpkt.Addr.Prefix.of_string "11.0.0.0/8" in
  Alcotest.(check bool) "subsumes" true (Netpkt.Addr.Prefix.subsumes outer inner);
  Alcotest.(check bool) "not reverse" false (Netpkt.Addr.Prefix.subsumes inner outer);
  Alcotest.(check bool) "overlaps" true (Netpkt.Addr.Prefix.overlaps outer inner);
  Alcotest.(check bool) "disjoint" false (Netpkt.Addr.Prefix.overlaps inner other)

let test_prefix_nth () =
  let p = Netpkt.Addr.Prefix.of_string "10.1.2.0/24" in
  Alcotest.check addr "nth 5" (Netpkt.Addr.of_string "10.1.2.5")
    (Netpkt.Addr.Prefix.nth_addr p 5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Prefix.nth_addr: out of range") (fun () ->
      ignore (Netpkt.Addr.Prefix.nth_addr p 256))

let sample_flow =
  Netpkt.Flow.make
    ~src:(Netpkt.Addr.of_string "10.0.0.2")
    ~dst:(Netpkt.Addr.of_string "10.1.0.7")
    ~proto:6 ~sport:12345 ~dport:80

let test_flow_hash_deterministic () =
  Alcotest.(check int64) "stable" (Netpkt.Flow.hash sample_flow)
    (Netpkt.Flow.hash sample_flow);
  let f2 = { sample_flow with Netpkt.Flow.sport = 12346 } in
  Alcotest.(check bool) "sensitive to fields" true
    (Netpkt.Flow.hash sample_flow <> Netpkt.Flow.hash f2)

let test_flow_reverse () =
  let r = Netpkt.Flow.reverse sample_flow in
  Alcotest.check addr "src<->dst" sample_flow.Netpkt.Flow.dst r.Netpkt.Flow.src;
  Alcotest.(check int) "sport<->dport" 80 r.Netpkt.Flow.sport;
  Alcotest.(check bool) "involution" true
    (Netpkt.Flow.equal sample_flow (Netpkt.Flow.reverse r))

let test_header_label () =
  let h = Netpkt.Header.of_flow sample_flow in
  Alcotest.(check (option int)) "no label" None h.Netpkt.Header.label;
  let h' = Netpkt.Header.with_label h 77 in
  Alcotest.(check (option int)) "label set" (Some 77) h'.Netpkt.Header.label;
  Alcotest.(check (option int)) "cleared" None
    (Netpkt.Header.clear_label h').Netpkt.Header.label;
  Alcotest.check_raises "label too large"
    (Invalid_argument "Header.with_label: label out of range") (fun () ->
      ignore (Netpkt.Header.with_label h (Netpkt.Header.max_label + 1)))

let test_header_ttl () =
  let h = Netpkt.Header.of_flow ~ttl:2 sample_flow in
  match Netpkt.Header.decrement_ttl h with
  | None -> Alcotest.fail "ttl 2 should survive one hop"
  | Some h' ->
    Alcotest.(check int) "ttl decremented" 1 h'.Netpkt.Header.ttl;
    Alcotest.(check bool) "ttl exhausted" true
      (Netpkt.Header.decrement_ttl h' = None)

let test_encapsulation () =
  let inner =
    Netpkt.Packet.plain (Netpkt.Header.of_flow sample_flow) ~payload_bytes:100
  in
  Alcotest.(check int) "plain size" 120 (Netpkt.Packet.size inner);
  let outer =
    Netpkt.Packet.encapsulate
      ~src:(Netpkt.Addr.of_string "10.0.0.1")
      ~dst:(Netpkt.Addr.of_string "192.168.0.1")
      inner
  in
  Alcotest.(check int) "encap adds 20B" 140 (Netpkt.Packet.size outer);
  Alcotest.(check bool) "is encapsulated" true (Netpkt.Packet.is_encapsulated outer);
  Alcotest.(check bool) "inner flow preserved" true
    (Netpkt.Flow.equal sample_flow (Netpkt.Packet.inner_flow outer));
  match Netpkt.Packet.decapsulate outer with
  | None -> Alcotest.fail "decapsulate failed"
  | Some p ->
    Alcotest.(check int) "inner restored" 120 (Netpkt.Packet.size p);
    Alcotest.(check bool) "plain has no inner" true
      (Netpkt.Packet.decapsulate p = None)

let test_double_encapsulation () =
  let inner =
    Netpkt.Packet.plain (Netpkt.Header.of_flow sample_flow) ~payload_bytes:10
  in
  let a = Netpkt.Addr.of_string "1.1.1.1" and b = Netpkt.Addr.of_string "2.2.2.2" in
  let twice = Netpkt.Packet.encapsulate ~src:a ~dst:b (Netpkt.Packet.encapsulate ~src:a ~dst:b inner) in
  Alcotest.(check int) "two outer headers" 70 (Netpkt.Packet.size twice);
  Alcotest.(check bool) "innermost flow" true
    (Netpkt.Flow.equal sample_flow (Netpkt.Packet.inner_flow twice))

let test_fragment_count () =
  Alcotest.(check int) "fits" 1 (Netpkt.Fragment.count ~mtu:1500 1500);
  Alcotest.(check int) "one over" 2 (Netpkt.Fragment.count ~mtu:1500 1520);
  Alcotest.(check int) "tunnel pushes over" 2
    (Netpkt.Fragment.count ~mtu:1500 (1500 + Netpkt.Header.size));
  Alcotest.(check int) "extra bytes" Netpkt.Header.size
    (Netpkt.Fragment.extra_bytes ~mtu:1500 1520)

let test_fragments_conserve_payload () =
  let header = Netpkt.Header.of_flow sample_flow in
  let pkt = Netpkt.Packet.plain header ~payload_bytes:4000 in
  let frags = Netpkt.Fragment.fragments ~mtu:1500 pkt in
  Alcotest.(check int) "fragment count" (Netpkt.Fragment.count ~mtu:1500 4020)
    (List.length frags);
  let payload =
    List.fold_left
      (fun acc f -> acc + Netpkt.Packet.size f - Netpkt.Header.size)
      0 frags
  in
  Alcotest.(check int) "payload conserved" 4000 payload;
  List.iter
    (fun f ->
      Alcotest.(check bool) "each fits MTU" true (Netpkt.Packet.size f <= 1500))
    frags

let qcheck_fragment_conservation =
  QCheck.Test.make ~count:300 ~name:"fragmentation conserves payload bytes"
    QCheck.(make Gen.(pair (int_range 0 20000) (int_range 68 9000)))
    (fun (payload, mtu) ->
      let pkt =
        Netpkt.Packet.plain (Netpkt.Header.of_flow sample_flow)
          ~payload_bytes:payload
      in
      let frags = Netpkt.Fragment.fragments ~mtu pkt in
      let total =
        List.fold_left
          (fun acc f -> acc + Netpkt.Packet.size f - Netpkt.Header.size)
          0 frags
      in
      total = payload
      && List.for_all (fun f -> Netpkt.Packet.size f <= mtu) frags
      && List.length frags = Netpkt.Fragment.count ~mtu (Netpkt.Packet.size pkt))

(* Random packets for the reassembly properties: plain or IP-over-IP
   up to two tunnel layers deep (the hot-potato path never nests
   further in practice, but the arithmetic must not care). *)
let gen_packet =
  QCheck.Gen.(
    pair (int_range 0 20000) (int_range 0 2) >|= fun (payload, depth) ->
    let inner =
      Netpkt.Packet.plain (Netpkt.Header.of_flow sample_flow)
        ~payload_bytes:payload
    in
    let a = Netpkt.Addr.of_string "1.1.1.1"
    and b = Netpkt.Addr.of_string "2.2.2.2" in
    let rec wrap n p =
      if n = 0 then p else wrap (n - 1) (Netpkt.Packet.encapsulate ~src:a ~dst:b p)
    in
    wrap depth inner)

let qcheck_fragment_reassemble =
  QCheck.Test.make ~count:300 ~name:"fragment/reassemble round-trips sizes"
    QCheck.(make Gen.(pair gen_packet (int_range 68 9000)))
    (fun (pkt, mtu) ->
      let frags = Netpkt.Fragment.fragments ~mtu pkt in
      match Netpkt.Fragment.reassemble frags with
      | None -> false
      | Some whole ->
        (* Bytes always round-trip; a packet that fit in one fragment
           round-trips structurally (tunnel layers intact). *)
        Netpkt.Packet.size whole = Netpkt.Packet.size pkt
        && whole.Netpkt.Packet.header = pkt.Netpkt.Packet.header
        && (List.length frags > 1 || whole = pkt)
        && (List.length frags = 1 || not (Netpkt.Packet.is_encapsulated whole)))

(* Arbitrary well-formed flows: any addresses, full port and proto
   ranges — the packed-key injectivity must hold across the whole
   domain, not just the simulator's subnets. *)
let gen_flow =
  QCheck.Gen.(
    map
      (fun (((a, b, c, d), (e, f, g, h)), (proto, sport, dport)) ->
        Netpkt.Flow.make
          ~src:(Netpkt.Addr.of_string (Printf.sprintf "%d.%d.%d.%d" a b c d))
          ~dst:(Netpkt.Addr.of_string (Printf.sprintf "%d.%d.%d.%d" e f g h))
          ~proto ~sport ~dport)
      (pair
         (pair
            (quad (int_bound 255) (int_bound 255) (int_bound 255)
               (int_bound 255))
            (quad (int_bound 255) (int_bound 255) (int_bound 255)
               (int_bound 255)))
         (triple (int_bound 255) (int_bound 65535) (int_bound 65535))))

let qcheck_flow_key_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"flow packed key round-trips"
    (QCheck.make gen_flow)
    (fun f ->
      let k1 = Netpkt.Flow.key f and k2 = Netpkt.Flow.key2 f in
      k1 >= 0 && k2 >= 0
      && Netpkt.Flow.equal (Netpkt.Flow.of_key k1 k2) f
      && Netpkt.Flow.of_key k1 k2 = f)

let qcheck_flow_compare_agreement =
  (* The monomorphic field-wise compare must induce exactly the order
     [Stdlib.compare] does on the record (declaration order of the
     fields), and equal must agree with both. *)
  QCheck.Test.make ~count:1000 ~name:"flow compare agrees with Stdlib.compare"
    (QCheck.make QCheck.Gen.(pair gen_flow gen_flow))
    (fun (a, b) ->
      let sign c = Stdlib.compare c 0 in
      sign (Netpkt.Flow.compare a b) = sign (Stdlib.compare a b)
      && Netpkt.Flow.compare a a = 0
      && Netpkt.Flow.equal a b = (Netpkt.Flow.compare a b = 0)
      (* Distinct flows never collide on the packed identity. *)
      && (Netpkt.Flow.equal a b
         || Netpkt.Flow.key a <> Netpkt.Flow.key b
            || Netpkt.Flow.key2 a <> Netpkt.Flow.key2 b))

let test_reassemble_rejects () =
  Alcotest.(check bool) "empty list" true (Netpkt.Fragment.reassemble [] = None);
  let pkt = Netpkt.Packet.plain (Netpkt.Header.of_flow sample_flow) ~payload_bytes:4000 in
  let other =
    Netpkt.Packet.plain
      (Netpkt.Header.of_flow (Netpkt.Flow.reverse sample_flow))
      ~payload_bytes:100
  in
  (* Fragments of different originals never merge. *)
  Alcotest.(check bool) "mixed headers" true
    (Netpkt.Fragment.reassemble
       (other :: Netpkt.Fragment.fragments ~mtu:1500 pkt)
    = None)

let suite =
  [
    Alcotest.test_case "addr roundtrip" `Quick test_addr_roundtrip;
    Alcotest.test_case "addr invalid" `Quick test_addr_invalid;
    Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
    Alcotest.test_case "prefix normalises" `Quick test_prefix_normalises;
    Alcotest.test_case "prefix subsume/overlap" `Quick test_prefix_subsumes_overlaps;
    Alcotest.test_case "prefix nth" `Quick test_prefix_nth;
    Alcotest.test_case "flow hash deterministic" `Quick test_flow_hash_deterministic;
    Alcotest.test_case "flow reverse" `Quick test_flow_reverse;
    Alcotest.test_case "header label" `Quick test_header_label;
    Alcotest.test_case "header ttl" `Quick test_header_ttl;
    Alcotest.test_case "encapsulation" `Quick test_encapsulation;
    Alcotest.test_case "double encapsulation" `Quick test_double_encapsulation;
    Alcotest.test_case "fragment count" `Quick test_fragment_count;
    Alcotest.test_case "fragments conserve payload" `Quick test_fragments_conserve_payload;
    QCheck_alcotest.to_alcotest qcheck_fragment_conservation;
    QCheck_alcotest.to_alcotest qcheck_fragment_reassemble;
    QCheck_alcotest.to_alcotest qcheck_flow_key_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_flow_compare_agreement;
    Alcotest.test_case "reassemble rejects foreign fragments" `Quick
      test_reassemble_rejects;
  ]
