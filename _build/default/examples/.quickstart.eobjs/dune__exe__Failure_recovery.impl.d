examples/failure_recovery.ml: Array Format List Mbox Option Policy Sdm Sim
