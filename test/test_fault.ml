(* Tests for the fault-injection primitives: the deterministic fault
   schedule and the fixed-delay heartbeat failure detector. *)

(* --- Schedule ----------------------------------------------------------- *)

let test_schedule_sorts_events () =
  let s =
    Fault.Schedule.make
      Fault.Schedule.
        [
          { at = 30.0; what = Mbox_recover 2 };
          { at = 10.0; what = Mbox_crash 2 };
          { at = 20.0; what = Link_fail (0, 1) };
          { at = 20.0; what = Link_restore (0, 1) };
        ]
  in
  Alcotest.(check (list (pair int (float 0.0))))
    "crash times in order" [ (2, 10.0) ]
    (Fault.Schedule.crash_times s);
  (match s.Fault.Schedule.events with
  | [ a; b; c; d ] ->
    Alcotest.(check (float 0.0)) "first" 10.0 a.Fault.Schedule.at;
    Alcotest.(check (float 0.0)) "second" 20.0 b.Fault.Schedule.at;
    (* Stable sort: the fail stays before the restore at equal times. *)
    Alcotest.(check bool) "equal times keep order" true
      (b.Fault.Schedule.what = Fault.Schedule.Link_fail (0, 1)
      && c.Fault.Schedule.what = Fault.Schedule.Link_restore (0, 1));
    Alcotest.(check (float 0.0)) "last" 30.0 d.Fault.Schedule.at
  | _ -> Alcotest.fail "expected 4 events");
  Alcotest.(check bool) "has link events" true (Fault.Schedule.has_link_events s);
  Alcotest.(check bool) "not empty" false (Fault.Schedule.is_empty s)

let test_schedule_validation () =
  let crash = Fault.Schedule.{ at = 1.0; what = Mbox_crash 0 } in
  (match Fault.Schedule.make [ { crash with Fault.Schedule.at = -1.0 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time accepted");
  (match Fault.Schedule.make ~link_loss:1.0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "link_loss = 1.0 accepted");
  (match Fault.Schedule.make ~control_loss:(-0.1) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative control_loss accepted");
  (* Loss-only schedules are legal and carry no link events. *)
  let loss_only = Fault.Schedule.make ~control_loss:0.5 [] in
  Alcotest.(check bool) "loss-only: no link events" false
    (Fault.Schedule.has_link_events loss_only);
  Alcotest.(check bool) "loss-only not empty" false
    (Fault.Schedule.is_empty loss_only);
  Alcotest.(check bool) "empty is empty" true
    (Fault.Schedule.is_empty Fault.Schedule.empty);
  Alcotest.(check bool) "crash is not a link event" false
    (Fault.Schedule.has_link_events (Fault.Schedule.make [ crash ]))

let test_schedule_deployment_validation () =
  (* A toy deployment: 3 middleboxes, links 0-1 and 1-2 only. *)
  let link_exists u v =
    match if u <= v then (u, v) else (v, u) with
    | 0, 1 | 1, 2 -> true
    | _ -> false
  in
  let validate events =
    Fault.Schedule.validate ~n_mboxes:3 ~link_exists
      (Fault.Schedule.make events)
  in
  let expect_ok label events =
    match validate events with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s rejected: %s" label e
  in
  let expect_err label events =
    match validate events with
    | Ok () -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  expect_ok "empty schedule" [];
  expect_ok "crash, recover, crash again"
    Fault.Schedule.
      [
        { at = 1.0; what = Mbox_crash 2 };
        { at = 2.0; what = Mbox_recover 2 };
        { at = 3.0; what = Mbox_crash 2 };
      ];
  expect_ok "link flap, either endpoint order"
    Fault.Schedule.
      [
        { at = 1.0; what = Link_fail (0, 1) };
        { at = 2.0; what = Link_restore (1, 0) };
      ];
  expect_err "unknown middlebox id"
    Fault.Schedule.[ { at = 1.0; what = Mbox_crash 3 } ];
  expect_err "negative middlebox id"
    Fault.Schedule.[ { at = 1.0; what = Mbox_recover (-1) } ];
  expect_err "unknown link" Fault.Schedule.[ { at = 1.0; what = Link_fail (0, 2) } ];
  expect_err "recover without crash"
    Fault.Schedule.[ { at = 1.0; what = Mbox_recover 1 } ];
  expect_err "restore without failure"
    Fault.Schedule.[ { at = 1.0; what = Link_restore (0, 1) } ];
  expect_err "double crash"
    Fault.Schedule.
      [
        { at = 1.0; what = Mbox_crash 0 };
        { at = 2.0; what = Mbox_crash 0 };
      ];
  expect_err "double link failure"
    Fault.Schedule.
      [
        { at = 1.0; what = Link_fail (0, 1) };
        { at = 2.0; what = Link_fail (1, 0) };
      ];
  (* The error message names the offending event and its time. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match validate Fault.Schedule.[ { at = 4.0; what = Mbox_recover 1 } ] with
  | Error e ->
    Alcotest.(check bool) "message mentions the event" true
      (contains e "t=4" && contains e "no preceding crash")
  | Ok () -> Alcotest.fail "recover without crash accepted"

let test_schedule_controller_validation () =
  let link_exists _ _ = true in
  let validate ?(n_controllers = 3) events =
    Fault.Schedule.validate ~n_controllers ~n_mboxes:1 ~link_exists
      (Fault.Schedule.make events)
  in
  let expect_ok label r =
    match r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s rejected: %s" label e
  in
  let expect_err label r =
    match r with Ok () -> Alcotest.failf "%s accepted" label | Error _ -> ()
  in
  expect_ok "crash, recover, crash again"
    (validate
       Fault.Schedule.
         [
           { at = 1.0; what = Ctrl_crash 1 };
           { at = 2.0; what = Ctrl_recover 1 };
           { at = 3.0; what = Ctrl_crash 1 };
         ]);
  expect_err "unknown replica"
    (validate Fault.Schedule.[ { at = 1.0; what = Ctrl_crash 3 } ]);
  expect_err "negative replica"
    (validate Fault.Schedule.[ { at = 1.0; what = Ctrl_recover (-1) } ]);
  expect_err "recover without crash"
    (validate Fault.Schedule.[ { at = 1.0; what = Ctrl_recover 0 } ]);
  expect_err "double crash"
    (validate
       Fault.Schedule.
         [
           { at = 1.0; what = Ctrl_crash 0 };
           { at = 2.0; what = Ctrl_crash 0 };
         ]);
  (* An unreplicated run (the default n_controllers = 0) admits no
     controller events at all. *)
  expect_err "controller events without replicas"
    (validate ~n_controllers:0
       Fault.Schedule.[ { at = 1.0; what = Ctrl_crash 0 } ])

let test_schedule_corruption_validation () =
  let link_exists _ _ = true in
  let validate ?(n_proxies = 2) events =
    Fault.Schedule.validate ~n_proxies ~n_mboxes:3 ~link_exists
      (Fault.Schedule.make events)
  in
  let expect_ok label r =
    match r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s rejected: %s" label e
  in
  let expect_err label r =
    match r with Ok () -> Alcotest.failf "%s accepted" label | Error _ -> ()
  in
  expect_ok "every corruption kind in range"
    (validate
       Fault.Schedule.
         [
           { at = 1.0; what = Label_corrupt 0 };
           { at = 2.0; what = Label_drop 2 };
           { at = 3.0; what = Cache_poison 1 };
           { at = 4.0; what = Config_lose 4 };
           (* device 4 = mbox 2 in proxies-first indexing *)
           { at = 5.0; what = Stale_resurrect 1 };
         ]);
  (* Corruption events carry no pairing constraint: hitting the same
     table twice in a row is legal (a no-op at worst). *)
  expect_ok "repeated corruption of one table"
    (validate
       Fault.Schedule.
         [
           { at = 1.0; what = Label_drop 1 };
           { at = 2.0; what = Label_drop 1 };
         ]);
  expect_err "unknown middlebox"
    (validate Fault.Schedule.[ { at = 1.0; what = Label_corrupt 3 } ]);
  expect_err "negative middlebox"
    (validate Fault.Schedule.[ { at = 1.0; what = Label_drop (-1) } ]);
  expect_err "unknown proxy"
    (validate Fault.Schedule.[ { at = 1.0; what = Cache_poison 2 } ]);
  expect_err "cache poison without proxies"
    (validate ~n_proxies:0
       Fault.Schedule.[ { at = 1.0; what = Cache_poison 0 } ]);
  expect_err "config device beyond the vector"
    (validate Fault.Schedule.[ { at = 1.0; what = Config_lose 5 } ]);
  expect_err "unknown resurrect target"
    (validate Fault.Schedule.[ { at = 1.0; what = Stale_resurrect 7 } ]);
  Alcotest.(check bool) "has_corruption_events" true
    (Fault.Schedule.has_corruption_events
       (Fault.Schedule.make
          Fault.Schedule.[ { at = 1.0; what = Label_drop 0 } ]));
  Alcotest.(check bool) "crash alone is not corruption" false
    (Fault.Schedule.has_corruption_events
       (Fault.Schedule.make
          Fault.Schedule.[ { at = 1.0; what = Mbox_crash 0 } ]))

let test_corruption_events_deterministic () =
  let gen () =
    Fault.Schedule.corruption_events ~seed:11 ~rate:0.25 ~horizon:200.0
      ~n_proxies:2 ~n_mboxes:4
  in
  let a = gen () and b = gen () in
  Alcotest.(check int) "count = round(rate * horizon)" 50 (List.length a);
  Alcotest.(check bool) "pure function of its arguments" true (a = b);
  List.iter
    (fun { Fault.Schedule.at; _ } ->
      if at < 0.0 || at >= 200.0 then Alcotest.failf "event at %f off-horizon" at)
    a;
  (* All five kinds show up in a 50-event burst. *)
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun { Fault.Schedule.what; _ } ->
           match what with
           | Fault.Schedule.Label_corrupt _ -> "corrupt"
           | Label_drop _ -> "drop"
           | Cache_poison _ -> "poison"
           | Config_lose _ -> "lose"
           | Stale_resurrect _ -> "resurrect"
           | _ -> "other")
         a)
  in
  Alcotest.(check (list string)) "all kinds drawn"
    [ "corrupt"; "drop"; "lose"; "poison"; "resurrect" ]
    kinds;
  (* Changing the seed moves the burst. *)
  let c =
    Fault.Schedule.corruption_events ~seed:12 ~rate:0.25 ~horizon:200.0
      ~n_proxies:2 ~n_mboxes:4
  in
  Alcotest.(check bool) "seed matters" true (a <> c);
  (* A proxy-less deployment degrades Cache_poison to Label_drop. *)
  List.iter
    (fun { Fault.Schedule.what; _ } ->
      match what with
      | Fault.Schedule.Cache_poison _ ->
        Alcotest.fail "cache poison drawn without proxies"
      | _ -> ())
    (Fault.Schedule.corruption_events ~seed:11 ~rate:0.5 ~horizon:200.0
       ~n_proxies:0 ~n_mboxes:4);
  (* The generated burst validates against the deployment it was drawn
     for, and survives Schedule.make's sorting. *)
  match
    Fault.Schedule.validate ~n_proxies:2 ~n_mboxes:4
      ~link_exists:(fun _ _ -> true)
      (Fault.Schedule.make a)
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "generated burst rejected: %s" e

let test_corruption_events_rejects_bad_args () =
  let gen ?(rate = 0.1) ?(horizon = 100.0) ?(n_mboxes = 2) () =
    Fault.Schedule.corruption_events ~seed:1 ~rate ~horizon ~n_proxies:1
      ~n_mboxes
  in
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_invalid "negative rate" (fun () -> gen ~rate:(-0.1) ());
  expect_invalid "NaN rate" (fun () -> gen ~rate:Float.nan ());
  expect_invalid "non-positive horizon" (fun () -> gen ~horizon:0.0 ());
  expect_invalid "empty deployment" (fun () -> gen ~n_mboxes:0 ());
  Alcotest.(check int) "zero rate is legal and empty" 0
    (List.length (gen ~rate:0.0 ()))

let test_schedule_rejects_non_finite_times () =
  let expect_invalid label events =
    match Fault.Schedule.make events with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_invalid "NaN event time"
    Fault.Schedule.[ { at = Float.nan; what = Mbox_crash 0 } ];
  expect_invalid "infinite event time"
    Fault.Schedule.[ { at = Float.infinity; what = Mbox_crash 0 } ];
  expect_invalid "negative event time"
    Fault.Schedule.[ { at = -1.0; what = Mbox_crash 0 } ]

(* --- Detector ----------------------------------------------------------- *)

let test_detector_delay_window () =
  let d = Fault.Detector.create ~n:3 ~delay:5.0 in
  Alcotest.(check bool) "initially up" true (Fault.Detector.actually_up d 1);
  Alcotest.(check bool) "initially believed" true
    (Fault.Detector.believed_alive d ~now:0.0 1);
  Fault.Detector.crash d ~now:10.0 1;
  Alcotest.(check bool) "ground truth flips at once" false
    (Fault.Detector.actually_up d 1);
  Alcotest.(check bool) "still believed just after crash" true
    (Fault.Detector.believed_alive d ~now:10.0 1);
  Alcotest.(check bool) "still believed within the window" true
    (Fault.Detector.believed_alive d ~now:14.9 1);
  Alcotest.(check bool) "detected at exactly crash+delay" false
    (Fault.Detector.believed_alive d ~now:15.0 1);
  (* Other boxes are unaffected. *)
  Alcotest.(check bool) "neighbour untouched" true
    (Fault.Detector.believed_alive d ~now:20.0 0);
  Fault.Detector.recover d ~now:30.0 1;
  Alcotest.(check bool) "ground truth back up" true
    (Fault.Detector.actually_up d 1);
  Alcotest.(check bool) "recovery also takes delay to notice" false
    (Fault.Detector.believed_alive d ~now:34.9 1);
  Alcotest.(check bool) "believed again after the window" true
    (Fault.Detector.believed_alive d ~now:35.0 1)

let test_detector_believed_failed () =
  let d = Fault.Detector.create ~n:4 ~delay:5.0 in
  Alcotest.(check (list int)) "all believed alive" []
    (Fault.Detector.believed_failed d ~now:0.0);
  Fault.Detector.crash d ~now:10.0 2;
  Fault.Detector.crash d ~now:10.0 0;
  Alcotest.(check (list int)) "within the window: still none" []
    (Fault.Detector.believed_failed d ~now:12.0);
  Alcotest.(check (list int)) "after the window: ascending ids" [ 0; 2 ]
    (Fault.Detector.believed_failed d ~now:15.0);
  Fault.Detector.recover d ~now:20.0 0;
  Alcotest.(check (list int)) "recovery also takes delay to notice" [ 0; 2 ]
    (Fault.Detector.believed_failed d ~now:24.0);
  Alcotest.(check (list int)) "recovered box drops off" [ 2 ]
    (Fault.Detector.believed_failed d ~now:25.0)

let test_detector_zero_delay () =
  let d = Fault.Detector.create ~n:1 ~delay:0.0 in
  Fault.Detector.crash d ~now:3.0 0;
  Alcotest.(check bool) "perfect detector sees the crash at once" false
    (Fault.Detector.believed_alive d ~now:3.0 0)

let test_detector_misuse () =
  (match Fault.Detector.create ~n:(-1) ~delay:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n accepted");
  (match Fault.Detector.create ~n:1 ~delay:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted");
  let d = Fault.Detector.create ~n:2 ~delay:1.0 in
  (match Fault.Detector.recover d ~now:0.0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "recovering an up box accepted");
  Fault.Detector.crash d ~now:1.0 0;
  (match Fault.Detector.crash d ~now:2.0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double crash accepted");
  match Fault.Detector.believed_alive d ~now:0.0 7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range id accepted"

let test_signature_zero_when_healthy () =
  let d = Fault.Detector.create ~n:4 ~delay:2.0 in
  Alcotest.(check int64) "all-up signature" 0L
    (Fault.Detector.belief_signature d ~now:0.0);
  Alcotest.(check int64) "still zero later" 0L
    (Fault.Detector.belief_signature d ~now:100.0)

let test_signature_tracks_believed_set () =
  (* Same believed-failed set => same signature, across detectors and
     across query times; different sets => different signatures. *)
  let a = Fault.Detector.create ~n:4 ~delay:1.0 in
  Fault.Detector.crash a ~now:0.0 1;
  Fault.Detector.crash a ~now:0.0 3;
  let b = Fault.Detector.create ~n:4 ~delay:1.0 in
  Fault.Detector.crash b ~now:5.0 3;
  Fault.Detector.crash b ~now:6.0 1;
  let sig_a = Fault.Detector.belief_signature a ~now:2.0 in
  Alcotest.(check bool) "nonzero once failures are believed" true
    (sig_a <> 0L);
  Alcotest.(check int64) "order of crashes is irrelevant" sig_a
    (Fault.Detector.belief_signature b ~now:10.0);
  Alcotest.(check int64) "stable across query times" sig_a
    (Fault.Detector.belief_signature a ~now:50.0);
  let c = Fault.Detector.create ~n:4 ~delay:1.0 in
  Fault.Detector.crash c ~now:0.0 1;
  Alcotest.(check bool) "subset has a different signature" true
    (Fault.Detector.belief_signature c ~now:2.0 <> sig_a)

let test_signature_delay_window () =
  let d = Fault.Detector.create ~n:2 ~delay:5.0 in
  Fault.Detector.crash d ~now:10.0 0;
  Alcotest.(check int64) "undetected crash keeps the old view" 0L
    (Fault.Detector.belief_signature d ~now:14.0);
  let detected = Fault.Detector.belief_signature d ~now:15.0 in
  Alcotest.(check bool) "detected crash changes the view" true
    (detected <> 0L);
  Fault.Detector.recover d ~now:20.0 0;
  Alcotest.(check int64) "undetected recovery keeps the failed view"
    detected
    (Fault.Detector.belief_signature d ~now:24.0);
  Alcotest.(check int64) "detected recovery restores the clean view" 0L
    (Fault.Detector.belief_signature d ~now:25.0)

let test_detector_rejects_non_finite_delay () =
  let expect_invalid label delay =
    match Fault.Detector.create ~n:2 ~delay with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_invalid "NaN delay" Float.nan;
  expect_invalid "infinite delay" Float.infinity;
  expect_invalid "negative delay" (-1.0);
  (* zero stays legal: instantaneous detection *)
  ignore (Fault.Detector.create ~n:2 ~delay:0.0)

let suite =
  [
    Alcotest.test_case "schedule sorts events" `Quick test_schedule_sorts_events;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "schedule deployment validation" `Quick
      test_schedule_deployment_validation;
    Alcotest.test_case "schedule controller-replica validation" `Quick
      test_schedule_controller_validation;
    Alcotest.test_case "schedule rejects non-finite times" `Quick
      test_schedule_rejects_non_finite_times;
    Alcotest.test_case "schedule corruption validation" `Quick
      test_schedule_corruption_validation;
    Alcotest.test_case "corruption events deterministic" `Quick
      test_corruption_events_deterministic;
    Alcotest.test_case "corruption events reject bad args" `Quick
      test_corruption_events_rejects_bad_args;
    Alcotest.test_case "detector rejects non-finite delay" `Quick
      test_detector_rejects_non_finite_delay;
    Alcotest.test_case "detector delay window" `Quick test_detector_delay_window;
    Alcotest.test_case "detector believed failed" `Quick
      test_detector_believed_failed;
    Alcotest.test_case "detector zero delay" `Quick test_detector_zero_delay;
    Alcotest.test_case "detector misuse" `Quick test_detector_misuse;
    Alcotest.test_case "belief signature zero when healthy" `Quick
      test_signature_zero_when_healthy;
    Alcotest.test_case "belief signature tracks the set" `Quick
      test_signature_tracks_believed_set;
    Alcotest.test_case "belief signature delay window" `Quick
      test_signature_delay_window;
  ]
