test/test_netgraph.ml: Alcotest Array Buffer Format Gen List Netgraph Option Printf QCheck QCheck_alcotest Stdx String
