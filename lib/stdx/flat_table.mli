(** Open-addressing table keyed by two non-negative ints.

    The per-packet fast path's table: packed flow identities
    ([Netpkt.Flow.key]/[key2]) and [(src, label)] pairs map to
    entries through a power-of-two linear-probe index over parallel
    int key arrays, so a lookup ({!find_slot} + {!value}) allocates
    nothing.  Deletion backward-shifts the probe chain (no
    tombstones); growth is amortized doubling with in-place
    compaction of deletion holes.

    Iteration ({!iter}/{!fold}) is {e insertion order} — a
    deterministic function of the operation sequence alone, never of
    hash layout — which is what keeps seeded simulations reproducible
    where iteration order is observable. *)

type 'a t

val create : ?initial:int -> unit -> 'a t
(** [initial] is a capacity hint (rounded up to a power of two). *)

val length : 'a t -> int
(** Live entries. *)

val find_slot : 'a t -> int -> int -> int
(** Slot of key [(k1, k2)], or [-1] if absent.  Allocation-free; pair
    with {!value}.  Slots are invalidated by any mutation. *)

val value : 'a t -> int -> 'a
(** Payload at a slot returned by {!find_slot}. *)

val set_value : 'a t -> int -> 'a -> unit
(** Overwrite the payload at a slot in place (key unchanged). *)

val key1 : 'a t -> int -> int
val key2 : 'a t -> int -> int

val mem : 'a t -> int -> int -> bool
val find : 'a t -> int -> int -> 'a option

val replace : 'a t -> int -> int -> 'a -> unit
(** Insert or overwrite.  Keys must be non-negative
    ([Invalid_argument] otherwise). *)

val remove : 'a t -> int -> int -> unit
(** No-op if absent. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
(** In insertion order of the live entries. *)

val fold : (int -> int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** In insertion order of the live entries. *)
