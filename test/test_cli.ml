(* sdmctl exit-code contract: flag misuse exits 2, an unknown
   experiment name exits 3 and lists the known names. *)

(* Under `dune runtest` the cwd is the sandboxed test directory and the
   declared dependency sits at ../bin; fall back to the build tree so a
   bare `dune exec test/test_main.exe` from the project root works too. *)
let sdmctl =
  List.find Sys.file_exists
    [ "../bin/sdmctl.exe"; "_build/default/bin/sdmctl.exe"; "bin/sdmctl.exe" ]

(* Run sdmctl with [args], capturing combined stdout+stderr; returns
   (exit code, output). *)
let run_sdmctl args =
  let out = Filename.temp_file "sdmctl" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote sdmctl)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_unknown_experiment () =
  let code, out = run_sdmctl [ "exp"; "no-such-thing" ] in
  Alcotest.(check int) "distinct exit code" 3 code;
  Alcotest.(check bool) "names the unknown" true
    (contains ~needle:"no-such-thing" out);
  Alcotest.(check bool) "lists known experiments" true
    (contains ~needle:"known experiments:" out);
  (* the list itself must be in the message, not just its header *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (contains ~needle:name out))
    [ "fig4"; "table3"; "chaos"; "live"; "quorum"; "corrupt"; "lp" ]

let test_bad_flags () =
  let code, out = run_sdmctl [ "exp"; "table3"; "--jobs"; "0" ] in
  Alcotest.(check int) "bad --jobs exits 2" 2 code;
  Alcotest.(check bool) "explains" true (contains ~needle:"--jobs" out);
  let code, out = run_sdmctl [ "exp"; "table3"; "--shards"; "0" ] in
  Alcotest.(check int) "bad --shards exits 2" 2 code;
  Alcotest.(check bool) "explains" true (contains ~needle:"--shards" out)

let test_bad_corrupt_flags () =
  (* The corrupt experiment's numeric knobs: anything non-numeric,
     negative, or non-finite exits 2 with the usage line. *)
  let expect_rejected label args needle =
    let code, out = run_sdmctl ([ "exp"; "corrupt" ] @ args) in
    Alcotest.(check int) (label ^ " exits 2") 2 code;
    Alcotest.(check bool) (label ^ " names the flag") true
      (contains ~needle out);
    Alcotest.(check bool) (label ^ " prints usage") true
      (contains ~needle:"usage: sdmctl exp corrupt" out)
  in
  expect_rejected "non-numeric sweep period" [ "--sweep-period"; "abc" ]
    "--sweep-period";
  expect_rejected "negative sweep period" [ "--sweep-period=-3" ]
    "--sweep-period";
  expect_rejected "non-numeric corrupt rate" [ "--corrupt-rate"; "lots" ]
    "--corrupt-rate";
  expect_rejected "negative corrupt rate" [ "--corrupt-rate=-0.1" ]
    "--corrupt-rate";
  expect_rejected "non-finite corrupt rate" [ "--corrupt-rate"; "nan" ]
    "--corrupt-rate"

let suite =
  [
    Alcotest.test_case "unknown experiment lists known names" `Quick
      test_unknown_experiment;
    Alcotest.test_case "flag misuse exits 2" `Quick test_bad_flags;
    Alcotest.test_case "corrupt flag validation exits 2" `Quick
      test_bad_corrupt_flags;
  ]
