lib/netgraph/random_graph.ml: Array Graph Option Stdx Topology
