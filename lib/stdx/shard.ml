let owner ~seed ~shards id =
  if shards < 1 then invalid_arg "Shard.owner: shards must be >= 1";
  if id < 0 then invalid_arg "Shard.owner: negative identity";
  if shards = 1 then 0
  else
    (* The id-th derived stream of the root seed, sampled once: a
       function of (seed, id) alone — the parent stream never
       advances, so ownership cannot depend on assignment order. *)
    Int64.to_int (Rng.int64 (Rng.derive (Rng.create seed) id))
    land max_int mod shards

let partition ~seed ~shards ~key arr =
  if shards < 1 then invalid_arg "Shard.partition: shards must be >= 1";
  let n = Array.length arr in
  if n = 0 then Array.make shards [||]
  else begin
    let owners = Array.map (fun x -> owner ~seed ~shards (key x)) arr in
    let counts = Array.make shards 0 in
    Array.iter (fun s -> counts.(s) <- counts.(s) + 1) owners;
    let out = Array.init shards (fun s -> Array.make counts.(s) arr.(0)) in
    let fill = Array.make shards 0 in
    Array.iteri
      (fun i x ->
        let s = owners.(i) in
        out.(s).(fill.(s)) <- x;
        fill.(s) <- fill.(s) + 1)
      arr;
    out
  end

let indices ~seed ~shards ~n =
  partition ~seed ~shards ~key:Fun.id (Array.init n Fun.id)
