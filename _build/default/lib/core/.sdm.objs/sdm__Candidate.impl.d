lib/core/candidate.ml: Array Deployment Hashtbl List Mbox Policy
