(** The middlebox controller (Sec. III.A-III.C).

    Pre-configures every policy proxy and middlebox: computes the
    candidate sets [M_x^e], distributes to each entity its relevant
    policy subset [P_x], and — for load-balanced enforcement — solves
    the Eq. (2) LP over the measured traffic matrix and distributes
    the resulting forwarding weights.  The controller never sees a
    packet; everything here happens at configuration time, which is
    the architectural difference from SDN controllers the paper
    stresses. *)

type kind =
  | Hot_potato
  | Random_uniform
  | Load_balanced of Measurement.t
      (** Eq. (2): aggregated weights from a measured traffic matrix *)
  | Load_balanced_exact of Measurement.t
      (** Eq. (1): per-(source, destination) weights — exponentially
          more configuration state for (at best) marginally better
          balance; provided for the formulation comparison *)

type t = {
  deployment : Deployment.t;
  candidates : Candidate.t;
  rules : Policy.Rule.t list;     (** the network-wide ordered policy list *)
  strategy : Strategy.t;
  lp : Lp_formulation.result option;  (** present for load-balanced *)
  k : Policy.Action.nf -> int;    (** candidate-set sizing, kept for updates *)
}

val default_k : Policy.Action.nf -> int
(** The evaluation's candidate-set sizes: FW 4, IDS 4, WP 2, TM 2
    (and 2 for custom functions). *)

val configure :
  Deployment.t ->
  rules:Policy.Rule.t list ->
  ?k:(Policy.Action.nf -> int) ->
  ?failed:int list ->
  kind ->
  (t, string) Stdlib.result
(** Validates that every function referenced by a rule is implemented
    by some middlebox; for [Load_balanced] solves the LP (source
    grouping on).  [failed] middleboxes are excluded from every
    candidate set — calling [configure] again with the current failure
    list is the controller's re-optimization step after failures are
    reported. *)

val reoptimize :
  t -> ?failed:int list -> ?use_warm:bool -> traffic:Measurement.t -> unit ->
  (t, string) Stdlib.result
(** In-run re-optimization: rebuild the configuration over the same
    deployment, rules, and candidate sizing, excluding the [failed]
    middleboxes and re-solving the LP against [traffic] (the volumes
    measured since the run began).  A [Load_balanced_exact] controller
    re-solves the exact formulation; every other strategy re-optimizes
    to the aggregated [Load_balanced] plan — measurements exist to be
    used.  An empty measurement is legal and yields weight-less rows
    (closest-live behavior) until traffic accrues.

    [use_warm] (default false) makes the step incremental: candidate
    sets are patched from the previous configuration's ranked lists
    ({!Candidate.with_excluded} — equal to a rebuild) and the LP
    warm-starts from the previous plan's basis, falling back to the
    cold two-phase solve whenever the rebuilt LP's layout changed.
    The result is always an optimum the cold path would also reach;
    with the flag off the cold code path runs unchanged,
    bit-identically to builds without warm-start support.  The pivot
    and fallback counters of the solve land in the result's
    [lp] field ({!Lp_formulation.result}). *)

val policy_table_for : t -> Mbox.Entity.t -> Policy.Rule.t list
(** The subset [P_x] the controller sends to entity [x]: for a proxy,
    rules whose descriptor can match traffic sourced in its subnet;
    for a middlebox, rules whose action list contains its function. *)

val next_hop_result :
  ?alive:(int -> bool) ->
  t -> Mbox.Entity.t -> rule:Policy.Rule.t -> nf:Policy.Action.nf ->
  Netpkt.Flow.t -> (Mbox.Middlebox.t, [ `No_live_candidate ]) Stdlib.result
(** [alive] enables local fast failover before the controller has
    re-configured; [Error `No_live_candidate] when the whole candidate
    set is dead.  See {!Strategy.next_hop_result}. *)

val next_hop :
  ?alive:(int -> bool) ->
  t -> Mbox.Entity.t -> rule:Policy.Rule.t -> nf:Policy.Action.nf ->
  Netpkt.Flow.t -> Mbox.Middlebox.t
(** Raising variant of {!next_hop_result}; see {!Strategy.next_hop}. *)

val closest : t -> Mbox.Entity.t -> Policy.Action.nf -> Mbox.Middlebox.t
(** The hot-potato target [m_x^e], whatever the active strategy. *)

type config_summary = {
  entities : int;           (** proxies + middleboxes configured *)
  policy_rows : int;        (** Σ_x |P_x| — policy-table rows pushed *)
  candidate_entries : int;  (** Σ_x Σ_e |M_x^e| — candidate-set members pushed *)
  weight_rows : int;        (** LB only: t_{e,p}(x, ·) rows pushed *)
  weight_cells : int;       (** LB only: individual t_{e,p}(x,y) values *)
}

val config_summary : t -> config_summary
(** Size of the configuration the controller disseminates — the
    communication-overhead metric behind the paper's preference for
    the aggregated Eq. (2) variables. *)

val pp_config_summary : Format.formatter -> config_summary -> unit

val fingerprint : t -> int64
(** Deterministic structural digest of the configuration: strategy
    kind, dissemination summary, rule ids, and (for load-balanced
    plans) the LP objective and predicted loads, FNV-1a folded.  Equal
    configurations hash equally in any process or domain — this is the
    digest the replicated control plane proposes, accepts, and commits
    under, and the value the audit uses to flag divergent commits. *)

type update_delta = {
  controller : t;            (** the reconfigured controller *)
  entities_touched : int;    (** entities whose policy table changed *)
  rows_added : int;          (** policy rows pushed by the update *)
  rows_removed : int;        (** policy rows withdrawn *)
}

val update_rules : t -> rules:Policy.Rule.t list -> kind -> (update_delta, string) Stdlib.result
(** Replace the network-wide policy list: reconfigure (same deployment
    and candidate sizing) and report the incremental dissemination —
    only entities whose [P_x] changed need a push, which is what keeps
    policy updates cheap in this architecture. *)
