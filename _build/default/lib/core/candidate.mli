(** Candidate middlebox sets — the paper's [M_x^e].

    For every entity [x] (proxy or middlebox) and every function [e]
    that [x] does not itself implement, the controller assigns the [k]
    middleboxes offering [e] closest to [x] (ties broken by middlebox
    id).  [k] is per-function — the evaluation uses 4 for FW/IDS and 2
    for WP/TM.  [k = 1] for every function degenerates to the
    hot-potato strategy's single closest middlebox [m_x^e]. *)

type t

val compute :
  ?exclude:int list -> Deployment.t -> k:(Policy.Action.nf -> int) -> t
(** [k nf] is clamped to [|M^nf|].  [exclude] removes middleboxes (by
    id) from every candidate set — the controller's response to
    reported middlebox failures.  Raises [Invalid_argument] if some
    function is left with no middlebox or [k nf < 1]. *)

val get : t -> Mbox.Entity.t -> Policy.Action.nf -> Mbox.Middlebox.t list
(** Candidates ordered closest-first.  Raises [Not_found] for a
    function unknown to the deployment.  For a middlebox entity
    implementing [nf] itself the candidate set is not defined and
    [Invalid_argument] is raised (a chain never repeats a function). *)

val closest : t -> Mbox.Entity.t -> Policy.Action.nf -> Mbox.Middlebox.t
(** The paper's [m_x^e]: head of the candidate list. *)

val fingerprint : t -> Mbox.Entity.t -> int list
(** Canonical encoding of all candidate sets of an entity (function ids
    and member ids, ordered) — entities with equal fingerprints are
    interchangeable sources for the LP and get aggregated. *)

val deployment : t -> Deployment.t
