(* Aggregated test runner: one alcotest binary covering every library. *)
let () =
  Alcotest.run "sdm-repro"
    [
      ("stdx", Test_stdx.suite);
      ("dess", Test_dess.suite);
      ("dvr", Test_dvr.suite);
      ("netgraph", Test_netgraph.suite);
      ("ospf", Test_ospf.suite);
      ("fault", Test_fault.suite);
      ("packet", Test_packet.suite);
      ("policy", Test_policy.suite);
      ("lp", Test_lp.suite);
      ("mbox", Test_mbox.suite);
      ("quorum", Test_quorum.suite);
      ("sdm", Test_sdm.suite);
      ("sim", Test_sim.suite);
      ("audit", Test_audit.suite);
      ("report", Test_report.suite);
      ("cli", Test_cli.suite);
    ]
