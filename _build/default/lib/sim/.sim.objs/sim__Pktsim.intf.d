lib/sim/pktsim.mli: Sdm Workload
