lib/core/weights_sd.ml: Array Hashtbl Mbox Policy
