type t = (int * int * Policy.Action.nf * int * int, (int * float) array) Hashtbl.t

let create () = Hashtbl.create 1024

let set t entity ~rule ~nf ~src ~dst row =
  Array.iter
    (fun (_, v) -> if v < 0.0 then invalid_arg "Weights_sd.set: negative volume")
    row;
  Hashtbl.replace t (Mbox.Entity.hash_key entity, rule, nf, src, dst) row

let find t entity ~rule ~nf ~src ~dst =
  Hashtbl.find_opt t (Mbox.Entity.hash_key entity, rule, nf, src, dst)

let entries t = Hashtbl.length t

let cells t = Hashtbl.fold (fun _ row acc -> acc + Array.length row) t 0
