lib/policy/trie.ml: Descriptor List Netpkt Rule
