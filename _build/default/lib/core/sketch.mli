(** Sketched traffic measurement at the proxies.

    An approximate drop-in for {!Measurement}: each policy proxy keeps
    one Count-Min sketch of its (destination, policy) volumes instead
    of an exact cell per combination, which is how a real proxy would
    bound its measurement memory.  The controller reconstructs a
    {!Measurement.t} by querying every (source proxy, destination
    proxy, rule) combination and dropping estimates below the sketch's
    own noise floor (epsilon times the proxy's exact total, which a
    proxy always knows).

    The ABL-SKETCH ablation quantifies the end effect: how far the LP
    optimum and the realised loads drift when the controller plans on
    sketched rather than exact volumes. *)

type t

val create : ?epsilon:float -> ?delta:float -> n_proxies:int -> unit -> t
(** One sketch per proxy.  Defaults: epsilon 0.001, delta 0.01. *)

val add : t -> src:int -> dst:int -> rule:int -> float -> unit
(** Record volume at the source proxy's sketch. *)

val memory_cells : t -> int
(** Total sketch counters across all proxies — the memory the
    approximation buys. *)

val to_measurement : t -> rules:Policy.Rule.t list -> Measurement.t
(** Reconstruct the controller-side traffic matrix.  Estimates below
    the per-proxy noise floor are treated as zero. *)

val of_workload_measurement :
  exact:Measurement.t -> n_proxies:int -> rules:Policy.Rule.t list ->
  ?epsilon:float -> ?delta:float -> unit -> t
(** Feed an exact matrix through sketches — the ablation's harness. *)
