lib/core/verify.mli: Controller Format Mbox Policy
