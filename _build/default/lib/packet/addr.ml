type t = int

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Addr.of_octets: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    try of_octets (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
    with Failure _ -> invalid_arg ("Addr.of_string: " ^ s))
  | _ -> invalid_arg ("Addr.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

module Prefix = struct
  type addr = t
  type t = { base : addr; len : int }

  let mask len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

  let make base len =
    if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
    { base = base land mask len; len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> make (of_string s) 32
    | Some i ->
      let addr = of_string (String.sub s 0 i) in
      let len =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> invalid_arg ("Prefix.of_string: " ^ s)
      in
      make addr len

  let to_string t = Printf.sprintf "%s/%d" (to_string t.base) t.len

  let any = { base = 0; len = 0 }
  let is_any t = t.len = 0

  let contains t a = a land mask t.len = t.base

  let subsumes outer inner =
    outer.len <= inner.len && contains outer inner.base

  let overlaps a b = subsumes a b || subsumes b a

  let first_addr t = t.base

  let nth_addr t i =
    let size = if t.len = 32 then 1 else 1 lsl (32 - t.len) in
    if i < 0 || i >= size then invalid_arg "Prefix.nth_addr: out of range";
    t.base lor i

  let compare a b =
    match compare a.base b.base with 0 -> compare a.len b.len | c -> c
end
