(* Smoke tests for the report renderers: every printer must produce
   non-empty, well-formed output for real experiment results, and the
   CSV exports must be structurally valid. *)

let render pp v =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let small_figure () =
  Sim.Experiment.run_figure Sim.Experiment.Campus ~flow_counts:[ 2_000 ] ()

let test_figure_rendering () =
  let fig = small_figure () in
  let out = render Sim.Report.pp_figure fig in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [ "campus"; "-- FW --"; "-- IDS --"; "-- WP --"; "-- TM --"; "HP"; "Rand"; "LB" ]

let test_figure_csv () =
  let fig = small_figure () in
  let csv = Sim.Report.figure_csv fig in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  (* Header plus one row per (4 types x 1 volume point). *)
  Alcotest.(check int) "row count" 5 (List.length lines);
  Alcotest.(check string) "header" "nf,flows,packets,hp,rand,lb" (List.hd lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "six columns" 6
        (List.length (String.split_on_char ',' line)))
    lines

let test_table3_rendering_and_csv () =
  let rows = (Sim.Experiment.run_table3 ~flows:2_000 ()).Sim.Experiment.t3_rows in
  let out = render Sim.Report.pp_table3 rows in
  Alcotest.(check bool) "mentions max" true (contains out "max.");
  Alcotest.(check bool) "mentions min" true (contains out "min.");
  let csv = Sim.Report.table3_csv rows in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 4 types" 5 (List.length lines)

let test_millions () =
  Alcotest.(check string) "millions" "1.66M" (Sim.Report.millions 1_660_000.0);
  Alcotest.(check string) "thousands" "12.7k" (Sim.Report.millions 12_737.0);
  Alcotest.(check string) "units" "42" (Sim.Report.millions 42.0)

let test_ablation_printers () =
  (* Tiny runs through every remaining printer. *)
  let cache = Sim.Experiment.ablation_cache ~flows:100 () in
  Alcotest.(check bool) "cache report" true
    (contains (render Sim.Report.pp_cache_ablation cache) "lookup fraction");
  let frag = Sim.Experiment.ablation_fragmentation ~flows:100 () in
  Alcotest.(check bool) "frag report" true
    (contains (render Sim.Report.pp_frag_ablation frag) "label switching");
  let lat = Sim.Experiment.ablation_latency ~flows:100 () in
  Alcotest.(check bool) "latency report" true
    (contains (render Sim.Report.pp_latency_ablation lat) "overhead")

(* Hand-built reports keep the CSV emitter tests fast and let them pin
   exact cell values, including both states of the audit column. *)
let synthetic_live_report =
  let row ~loss ~audit =
    {
      Sim.Experiment.live_loss = loss;
      live_injected = 100;
      live_delivered = 99;
      live_violations = 0;
      live_versions = 4;
      live_pushes = 20;
      live_acks = 19;
      live_lost = 1;
      live_degraded = 0;
      live_stale = 2;
      live_bytes = 1234;
      live_max_load = 55.0;
      live_events_processed = 5000;
      live_audit = audit;
    }
  in
  {
    Sim.Experiment.live_epoch = 10.0;
    live_reconcile = 2.5;
    live_stale_max = 1000.0;
    live_clairvoyant_max = 400.0;
    live_probe_events = 12_000;
    live_rows = [ row ~loss:0.0 ~audit:None; row ~loss:0.10 ~audit:(Some 3) ];
    live_devices =
      [
        {
          Sim.Experiment.dev_name = "proxy0";
          dev_version = 4;
          dev_lag = 0;
          dev_retries = 1;
          dev_lost = 2;
        };
        {
          Sim.Experiment.dev_name = "mbox7";
          dev_version = 3;
          dev_lag = 1;
          dev_retries = 5;
          dev_lost = 4;
        };
      ];
  }

let test_live_csv () =
  let csv = Sim.Report.live_csv synthetic_live_report in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header"
    "loss,injected,delivered,violating,versions,pushes,acks,lost,degraded,stale,bytes,max_load,audit"
    (List.hd lines);
  let cells line = String.split_on_char ',' line in
  List.iter
    (fun line ->
      Alcotest.(check int) "column count" 13 (List.length (cells line)))
    lines;
  (match lines with
  | [ _; unaudited; audited ] ->
    let u = cells unaudited and a = cells audited in
    Alcotest.(check string) "loss cell" "0.00" (List.hd u);
    Alcotest.(check string) "audit empty when off" "" (List.nth u 12);
    Alcotest.(check string) "loss cell audited" "0.10" (List.hd a);
    Alcotest.(check string) "audit count when on" "3" (List.nth a 12);
    Alcotest.(check string) "bytes round-trip" "1234" (List.nth a 10);
    (* Every numeric cell parses back. *)
    List.iteri
      (fun i cell ->
        if i <> 12 then
          Alcotest.(check bool)
            (Printf.sprintf "cell %d numeric" i)
            true
            (float_of_string_opt cell <> None))
      u
  | _ -> Alcotest.fail "unexpected line structure")

let test_live_devices_csv () =
  let csv = Sim.Report.live_devices_csv synthetic_live_report in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "header + 2 devices" 3 (List.length lines);
  Alcotest.(check string) "header" "device,version,lag,retries,lost"
    (List.hd lines);
  Alcotest.(check string) "proxy row" "proxy0,4,0,1,2" (List.nth lines 1);
  Alcotest.(check string) "mbox row" "mbox7,3,1,5,4" (List.nth lines 2)

let test_live_and_chaos_printers_audit_column () =
  let out = render Sim.Report.pp_live_ablation synthetic_live_report in
  Alcotest.(check bool) "live header has audit" true (contains out "audit");
  Alcotest.(check bool) "live shows dash when off" true (contains out " -");
  let chaos_row ~audit =
    {
      Sim.Experiment.chaos_mode = "LB+failover";
      chaos_delay = 2.0;
      chaos_injected = 100;
      chaos_delivered = 99;
      chaos_dropped = 1;
      chaos_violations = 1;
      chaos_retries = 0;
      chaos_recovery = 1.5;
      chaos_max_surviving = 80.0;
      chaos_events_processed = 4000;
      chaos_audit = audit;
    }
  in
  let report =
    {
      Sim.Experiment.chaos_victim = 11;
      chaos_victim_nf = Policy.Action.IDS;
      chaos_crash_at = 25.0;
      chaos_link = Some (0, 2);
      chaos_link_fail_at = 45.0;
      chaos_link_restore_at = 65.0;
      chaos_control_loss = 0.02;
      chaos_probe_events = 9_000;
      chaos_rows = [ chaos_row ~audit:None; chaos_row ~audit:(Some 7) ];
    }
  in
  let out = render Sim.Report.pp_chaos_ablation report in
  Alcotest.(check bool) "chaos header has audit" true (contains out "audit");
  Alcotest.(check bool) "chaos shows dash when off" true (contains out " -");
  Alcotest.(check bool) "chaos shows the count when on" true (contains out "7")

let suite =
  [
    Alcotest.test_case "figure rendering" `Slow test_figure_rendering;
    Alcotest.test_case "figure CSV" `Slow test_figure_csv;
    Alcotest.test_case "table3 rendering and CSV" `Slow test_table3_rendering_and_csv;
    Alcotest.test_case "millions formatting" `Quick test_millions;
    Alcotest.test_case "ablation printers" `Slow test_ablation_printers;
    Alcotest.test_case "live CSV cells" `Quick test_live_csv;
    Alcotest.test_case "live devices CSV" `Quick test_live_devices_csv;
    Alcotest.test_case "audit column in printers" `Quick
      test_live_and_chaos_printers_audit_column;
  ]
