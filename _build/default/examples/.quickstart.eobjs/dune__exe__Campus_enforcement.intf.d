examples/campus_enforcement.mli:
