let nf_salt nf = Stdx.Xhash.string (Policy.Action.nf_to_string nf)

let flow_point flow ~entity ~nf =
  let h = Netpkt.Flow.hash flow in
  let h = Stdx.Xhash.fold_int h (Mbox.Entity.hash_key entity) in
  let h = Stdx.Xhash.fold_int h (Int64.to_int (nf_salt nf)) in
  Stdx.Xhash.to_unit_interval h

let pick row ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Selector.pick: u out of [0,1)";
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Selector.pick: negative weight";
        acc +. w)
      0.0 row
  in
  if total <= 0.0 then None
  else begin
    let target = u *. total in
    let acc = ref 0.0 and chosen = ref None in
    Array.iter
      (fun (id, w) ->
        if !chosen = None then begin
          acc := !acc +. w;
          if target < !acc then chosen := Some id
        end)
      row;
    (* Floating-point slack can leave the last bucket unmatched. *)
    match !chosen with
    | Some id -> Some id
    | None ->
      let rec last_positive i =
        if i < 0 then None
        else
          let id, w = row.(i) in
          if w > 0.0 then Some id else last_positive (i - 1)
      in
      last_positive (Array.length row - 1)
  end

let flow_key flow ~entity ~nf =
  let h = Netpkt.Flow.hash flow in
  let h = Stdx.Xhash.fold_int h (Mbox.Entity.hash_key entity) in
  Stdx.Xhash.fold_int h (Int64.to_int (nf_salt nf))

(* FNV-1a alone leaves per-candidate hashes correlated when only the
   trailing id byte differs, which skews the rendezvous scores
   measurably; the avalanche finalizer restores independence. *)
let fmix64 = Stdx.Xhash.fmix64

let pick_hrw row ~key =
  let best = ref None in
  Array.iter
    (fun (id, w) ->
      if w < 0.0 then invalid_arg "Selector.pick_hrw: negative weight";
      if w > 0.0 then begin
        (* Weighted rendezvous hashing: candidate score -w / ln(u) with
           u = hash(key, id) in (0, 1).  The max over the row is what
           makes the choice independent of row order and of which
           losing candidates are present. *)
        let u =
          Stdx.Xhash.to_unit_interval (fmix64 (Stdx.Xhash.fold_int key id))
        in
        let u = if u <= 0.0 then epsilon_float else u in
        let score = -.w /. log u in
        match !best with
        | Some (bid, s) when s > score || (s = score && bid < id) -> ()
        | _ -> best := Some (id, score)
      end)
    row;
  Option.map fst !best

let pick_uniform candidates ~u =
  let n = List.length candidates in
  if n = 0 then invalid_arg "Selector.pick_uniform: empty candidates";
  let i = int_of_float (u *. float_of_int n) in
  let i = if i >= n then n - 1 else i in
  List.nth candidates i
