type view = {
  mutable up : bool;  (* ground truth *)
  mutable prev : bool;  (* state before the last transition *)
  mutable changed_at : float;  (* time of the last transition *)
}

type t = { views : view array; delay : float }

let create ~n ~delay =
  if n < 0 then invalid_arg "Detector.create: negative population";
  (* [not (delay >= 0.0)] alone catches NaN along with negatives, but
     +infinity slips through the comparison and would make the detector
     report the pre-transition view forever; demand a finite delay. *)
  if not (Float.is_finite delay && delay >= 0.0) then
    invalid_arg "Detector.create: delay must be finite and non-negative";
  {
    views =
      Array.init n (fun _ -> { up = true; prev = true; changed_at = neg_infinity });
    delay;
  }

let check t id =
  if id < 0 || id >= Array.length t.views then
    invalid_arg "Detector: middlebox id out of range"

let crash t ~now id =
  check t id;
  let v = t.views.(id) in
  if not v.up then invalid_arg "Detector.crash: middlebox is already down";
  v.prev <- v.up;
  v.up <- false;
  v.changed_at <- now

let recover t ~now id =
  check t id;
  let v = t.views.(id) in
  if v.up then invalid_arg "Detector.recover: middlebox is already up";
  v.prev <- v.up;
  v.up <- true;
  v.changed_at <- now

let actually_up t id =
  check t id;
  t.views.(id).up

let believed_alive t ~now id =
  check t id;
  let v = t.views.(id) in
  if now -. v.changed_at >= t.delay then v.up else v.prev

let believed_failed t ~now =
  let acc = ref [] in
  for id = Array.length t.views - 1 downto 0 do
    if not (believed_alive t ~now id) then acc := id :: !acc
  done;
  !acc

let belief_signature t ~now =
  match believed_failed t ~now with
  | [] -> 0L
  | failed -> Stdx.Xhash.ints failed
