(* Waxman scale: the 425-router random topology with 400 stub networks.

   Demonstrates that the controller scales: distributed OSPF
   convergence over the full graph, candidate-set computation for 422
   entities, and the source-grouping device that keeps the Eq. (2) LP
   small (DESIGN.md) — the LP is solved with and without grouping and
   the sizes and optima printed side by side.

     dune exec examples/waxman_scale.exe *)

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Format.printf "  [%s: %.2fs]@." name (Unix.gettimeofday () -. t0);
  r

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Waxman ~seed:17 in
  let topo = deployment.Sdm.Deployment.topo in
  Format.printf "topology: %a@." Netgraph.Topology.pp topo;

  (* Routers establish their own tables by LSA flooding. *)
  let ospf =
    time "OSPF convergence" (fun () -> Ospf.Protocol.converge topo)
  in
  Format.printf "OSPF: %d LSA transmissions, converged at t=%.1f@."
    ospf.Ospf.Protocol.stats.Ospf.Protocol.messages
    ospf.Ospf.Protocol.stats.Ospf.Protocol.convergence_time;

  let flows = 120_000 in
  let workload =
    time "workload generation" (fun () ->
        Sim.Workload.generate ~deployment ~seed:17 ~flows ())
  in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  Format.printf "workload: %d flows, %d packets@." flows
    workload.Sim.Workload.total_packets;

  let candidates =
    time "candidate sets" (fun () ->
        Sdm.Candidate.compute deployment ~k:Sdm.Controller.default_k)
  in

  (* The LP with and without source grouping: identical optimum, very
     different size.  The comparison runs on a reduced policy set —
     the ungrouped LP over 400 stub sources is exactly the blow-up
     grouping exists to avoid (at the full policy count it takes
     minutes where the grouped LP takes a fraction of a second). *)
  let small_workload =
    Sim.Workload.generate ~deployment ~per_class:2 ~seed:17 ~flows:20_000 ()
  in
  let small_rules = small_workload.Sim.Workload.rules in
  let small_traffic = Sim.Workload.measure small_workload in
  let solve ~group_sources label =
    match
      time label (fun () ->
          Sdm.Lp_formulation.solve_simplified candidates ~rules:small_rules
            ~traffic:small_traffic ~group_sources ())
    with
    | Ok r ->
      Format.printf "%s: lambda=%.0f vars=%d constraints=%d@." label
        r.Sdm.Lp_formulation.lambda r.Sdm.Lp_formulation.lp_vars
        r.Sdm.Lp_formulation.lp_constraints;
      r
    | Error e -> failwith e
  in
  let grouped = solve ~group_sources:true "LP with source grouping" in
  let ungrouped = solve ~group_sources:false "LP without grouping" in
  Format.printf "optima agree: %b@."
    (abs_float
       (grouped.Sdm.Lp_formulation.lambda -. ungrouped.Sdm.Lp_formulation.lambda)
    < 1.0);

  (* Enforce with the grouped solution. *)
  let controller =
    match
      Sdm.Controller.configure deployment ~rules
        (Sdm.Controller.Load_balanced traffic)
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let result = time "flow simulation" (fun () -> Sim.Flowsim.run ~controller ~workload ()) in
  List.iter
    (fun nf ->
      Format.printf "LB max %s load: %s@."
        (Policy.Action.nf_to_string nf)
        (Sim.Report.millions (Sim.Flowsim.max_load_of_nf controller result nf)))
    (List.map fst Sim.Experiment.mbox_counts)
