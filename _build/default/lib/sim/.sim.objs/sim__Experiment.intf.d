lib/sim/experiment.mli: Flowsim Policy Sdm Workload
