(** Bellman-Ford single-source shortest paths.

    Kept as an independent oracle: property tests cross-check Dijkstra
    distances against this implementation on random graphs. *)

val distances : Graph.t -> int -> float array
(** [distances g src] returns per-node shortest-path cost, [infinity]
    for unreachable nodes. *)
