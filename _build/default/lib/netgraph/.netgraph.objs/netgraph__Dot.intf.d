lib/netgraph/dot.mli: Format Topology
