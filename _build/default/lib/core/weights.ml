type t = (int * int * Policy.Action.nf, (int * float) array) Hashtbl.t

let create () = Hashtbl.create 512

let set t entity ~rule ~nf row =
  Array.iter
    (fun (_, v) -> if v < 0.0 then invalid_arg "Weights.set: negative volume")
    row;
  Hashtbl.replace t (Mbox.Entity.hash_key entity, rule, nf) row

let find t entity ~rule ~nf =
  Hashtbl.find_opt t (Mbox.Entity.hash_key entity, rule, nf)

let entries t = Hashtbl.length t

let cells t = Hashtbl.fold (fun _ row acc -> acc + Array.length row) t 0
