(** Candidate middlebox sets — the paper's [M_x^e].

    For every entity [x] (proxy or middlebox) and every function [e]
    that [x] does not itself implement, the controller assigns the [k]
    middleboxes offering [e] closest to [x] (ties broken by middlebox
    id).  [k] is per-function — the evaluation uses 4 for FW/IDS and 2
    for WP/TM.  [k = 1] for every function degenerates to the
    hot-potato strategy's single closest middlebox [m_x^e]. *)

type t

val compute :
  ?exclude:int list -> Deployment.t -> k:(Policy.Action.nf -> int) -> t
(** [k nf] is clamped to [|M^nf|].  [exclude] removes middleboxes (by
    id) from every candidate set — the controller's response to
    reported middlebox failures.  Raises [Invalid_argument] if some
    function is left with no middlebox or [k nf < 1].

    The full distance ranking per (entity, function) is computed once
    and kept; {!with_excluded} derives patched candidate sets from it
    without re-ranking. *)

val with_excluded : t -> int list -> (t, string) result
(** [with_excluded t ids] is the incremental form of re-running
    {!compute} with [~exclude:ids] (an absolute exclusion list, not a
    delta): candidate sets are re-derived by filtering the shared
    ranked lists — no distance computation, no sorting — and are
    element-for-element equal to a from-scratch rebuild.  The input
    [t] is not mutated (configurations are versioned and shared).
    Errors where {!compute} would raise: a function left without
    middleboxes. *)

val excluded : t -> int list
(** The exclusion list this view was derived with. *)

val equal : t -> t -> bool
(** Structural equality of the candidate sets (entities, functions and
    member ids) — the oracle face of {!with_excluded}. *)

val get : t -> Mbox.Entity.t -> Policy.Action.nf -> Mbox.Middlebox.t list
(** Candidates ordered closest-first.  Raises [Not_found] for a
    function unknown to the deployment.  For a middlebox entity
    implementing [nf] itself the candidate set is not defined and
    [Invalid_argument] is raised (a chain never repeats a function). *)

val closest : t -> Mbox.Entity.t -> Policy.Action.nf -> Mbox.Middlebox.t
(** The paper's [m_x^e]: head of the candidate list. *)

val fingerprint : t -> Mbox.Entity.t -> int list
(** Canonical encoding of all candidate sets of an entity (function ids
    and member ids, ordered) — entities with equal fingerprints are
    interchangeable sources for the LP and get aggregated. *)

val deployment : t -> Deployment.t
