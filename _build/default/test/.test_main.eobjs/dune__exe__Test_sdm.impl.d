test/test_sdm.ml: Alcotest Array Gen Hashtbl List Mbox Netgraph Netpkt Option Policy Printf QCheck QCheck_alcotest Sdm Sim Stdx String
