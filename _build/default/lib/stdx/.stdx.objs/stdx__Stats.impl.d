lib/stdx/stats.ml: Array Format
