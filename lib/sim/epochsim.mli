(** Multi-epoch adaptation simulation.

    The paper's controller consumes traffic matrices that proxies
    report "periodically" — so in steady operation the LB weights of
    epoch [e] were computed from the measurements of epoch [e-1].
    This module quantifies what that staleness costs under drifting
    traffic: each epoch redraws the flow population (fixed policy set)
    with a rotating skew of the three policy classes, then compares

    - {b stale LB}: weights planned on the previous epoch's matrix
      (epoch 0 starts as hot-potato, before any measurement exists);
    - {b clairvoyant LB}: weights planned on the same epoch's matrix
      (the figures' setting — an upper bound on adaptation);
    - {b HP}: the measurement-free baseline.

    Expected shape: stale LB sits between clairvoyant LB and HP, far
    closer to clairvoyant, because per-policy volumes drift slowly
    relative to per-flow churn. *)

type epoch_metrics = {
  epoch : int;
  flows : int;
  packets : int;
  stale_lb_max : float;        (** realised max middlebox load *)
  clairvoyant_lb_max : float;
  hp_max : float;
  staleness_gap : float;       (** stale / clairvoyant (>= ~1) *)
}

type report = {
  ep_rows : epoch_metrics list;
  ep_events : int;  (** flow-level events across every epoch's three runs *)
}

val run :
  deployment:Sdm.Deployment.t ->
  ?epochs:int ->
  ?base_flows:int ->
  ?seed:int ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  report
(** Defaults: 6 epochs, 60k base flows (volume oscillates ±25% around
    it), seed 17.  Epochs are inherently sequential (the stale plan
    consumes the previous epoch's matrix); [?jobs] fans the three
    enforcement runs within each epoch out across domains
    ({!Stdx.Domain_pool.map}), and [?shards] additionally splits each
    run's flows across the pool ({!Flowsim.run}); neither ever changes
    the result. *)
