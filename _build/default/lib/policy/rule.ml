type t = { id : int; descriptor : Descriptor.t; actions : Action.t }

let make ~id ~descriptor ~actions =
  if id < 0 then invalid_arg "Rule.make: negative id";
  { id; descriptor; actions }

let index descriptors actions =
  if List.length descriptors <> List.length actions then
    invalid_arg "Rule.index: length mismatch";
  List.mapi
    (fun id (descriptor, actions) -> make ~id ~descriptor ~actions)
    (List.combine descriptors actions)

let first_match rules flow =
  let matching = List.filter (fun r -> Descriptor.matches r.descriptor flow) rules in
  match matching with
  | [] -> None
  | _ -> Some (List.fold_left (fun best r -> if r.id < best.id then r else best)
                 (List.hd matching) matching)

let relevant_to_subnet rules subnet =
  List.filter (fun r -> Descriptor.src_overlaps r.descriptor subnet) rules

let relevant_to_function rules nf =
  List.filter (fun r -> List.exists (Action.equal_nf nf) r.actions) rules

let table_one subnet_a =
  let open Descriptor in
  let d ?src ?dst ?sport ?dport () = make ?src ?dst ?sport ?dport () in
  index
    [
      d ~src:subnet_a ~dst:subnet_a ~dport:(Port 80) ();
      d ~src:subnet_a ~dst:subnet_a ~sport:(Port 80) ();
      d ~dst:subnet_a ~dport:(Port 80) ();
      d ~src:subnet_a ~sport:(Port 80) ();
      d ~src:subnet_a ~dport:(Port 80) ();
      d ~dst:subnet_a ~sport:(Port 80) ();
    ]
    Action.[
      permit;
      permit;
      [ FW; IDS ];
      [ IDS; FW ];
      [ FW; IDS; WP ];
      [ WP; IDS; FW ];
    ]

let pp ppf t =
  Format.fprintf ppf "#%d %a => %a" t.id Descriptor.pp t.descriptor Action.pp
    t.actions
