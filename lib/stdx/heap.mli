(** Imperative binary min-heap.

    The backbone of the discrete-event simulator's event queue and of
    Dijkstra's algorithm.  Ordering is supplied at creation time; ties
    are broken by insertion order only if the comparison says so (the
    callers embed sequence numbers when FIFO stability matters). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val take : 'a t -> 'a
(** {!pop_exn} under the name the event loop reads best: the
    option-free pop, which allocates nothing.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: elements in ascending order.  O(n log n). *)
