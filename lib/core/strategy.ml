type t =
  | Hot_potato
  | Random_uniform
  | Load_balanced of Weights.t
  | Load_balanced_exact of Weights_sd.t * Weights.t

let name = function
  | Hot_potato -> "HP"
  | Random_uniform -> "Rand"
  | Load_balanced _ -> "LB"
  | Load_balanced_exact _ -> "LBx"

let middlebox_by_id cand id =
  (Candidate.deployment cand).Deployment.middleboxes.(id)

(* With no [alive] predicate the candidate list is returned as-is:
   [Candidate.compute] guarantees it is non-empty, and skipping the
   filter keeps the healthy fast path allocation-free. *)
let live_candidates ?alive cand entity nf =
  let all = Candidate.get cand entity nf in
  match alive with
  | None -> all
  | Some alive -> List.filter (fun (m : Mbox.Middlebox.t) -> alive m.id) all

let pick_row ?alive cand entity ~nf flow ~closest_live = function
  | None -> closest_live
  | Some row -> (
    let row =
      match alive with
      | None -> row (* all-alive fast path: no re-filter, no allocation *)
      | Some alive ->
        Array.of_seq (Seq.filter (fun (id, _) -> alive id) (Array.to_seq row))
    in
    let u = Selector.flow_point flow ~entity ~nf in
    match Selector.pick row ~u with
    | Some id -> middlebox_by_id cand id
    | None -> closest_live)

let next_hop_result ?alive t cand entity ~rule ~nf flow =
  match live_candidates ?alive cand entity nf with
  | [] -> Error `No_live_candidate
  | closest_live :: _ as live ->
    Ok
      (match t with
      | Hot_potato -> closest_live
      | Random_uniform ->
        let u = Selector.flow_point flow ~entity ~nf in
        Selector.pick_uniform live ~u
      | Load_balanced weights ->
        pick_row ?alive cand entity ~nf flow ~closest_live
          (Weights.find weights entity ~rule:rule.Policy.Rule.id ~nf)
      | Load_balanced_exact (sd, fallback) ->
        let dep = Candidate.deployment cand in
        let row =
          (* Recover the (source, destination) pair from the packet; pairs
             outside the measured matrix fall back to the aggregate rows. *)
          match
            ( Deployment.proxy_of_addr dep flow.Netpkt.Flow.src,
              Deployment.proxy_of_addr dep flow.Netpkt.Flow.dst )
          with
          | Some s, Some d ->
            Weights_sd.find sd entity ~rule:rule.Policy.Rule.id ~nf
              ~src:s.Mbox.Proxy.id ~dst:d.Mbox.Proxy.id
          | _ -> None
        in
        let row =
          match row with
          | Some _ as r -> r
          | None -> Weights.find fallback entity ~rule:rule.Policy.Rule.id ~nf
        in
        pick_row ?alive cand entity ~nf flow ~closest_live row)

let next_hop ?alive t cand entity ~rule ~nf flow =
  match next_hop_result ?alive t cand entity ~rule ~nf flow with
  | Ok m -> m
  | Error `No_live_candidate ->
    failwith
      (Printf.sprintf "Strategy.next_hop: no live %s candidate at %s"
         (Policy.Action.nf_to_string nf)
         (Mbox.Entity.to_string entity))
