type result = {
  loads : float array;
  packet_hops : float;
  direct_packet_hops : float;
  enforced_flows : int;
  enforced_packets : int;
  policy_violations : int;
  violating_flows : int;
  events : int;
}

let run ?alive ~controller ~workload () =
  let dep = controller.Sdm.Controller.deployment in
  let dist = dep.Sdm.Deployment.dist in
  let loads = Array.make (Array.length dep.Sdm.Deployment.middleboxes) 0.0 in
  let packet_hops = ref 0.0 in
  let direct_packet_hops = ref 0.0 in
  let enforced_flows = ref 0 in
  let enforced_packets = ref 0 in
  let policy_violations = ref 0 in
  let violating_flows = ref 0 in
  let events = ref 0 in
  let router_of_proxy i = dep.Sdm.Deployment.proxies.(i).Mbox.Proxy.router in
  Array.iter
    (fun (fs : Workload.flow_spec) ->
      (* One event per flow record (classification), one per steering
         decision below. *)
      incr events;
      let pkts = float_of_int fs.Workload.packets in
      let src_router = router_of_proxy fs.Workload.src_proxy in
      let dst_router = router_of_proxy fs.Workload.dst_proxy in
      direct_packet_hops := !direct_packet_hops +. (dist.(src_router).(dst_router) *. pkts);
      match Workload.rule_of workload fs with
      | None ->
        packet_hops := !packet_hops +. (dist.(src_router).(dst_router) *. pkts)
      | Some rule when Policy.Action.is_permit rule.Policy.Rule.actions ->
        packet_hops := !packet_hops +. (dist.(src_router).(dst_router) *. pkts)
      | Some rule ->
        incr enforced_flows;
        enforced_packets := !enforced_packets + fs.Workload.packets;
        let entity = ref (Mbox.Entity.Proxy fs.Workload.src_proxy) in
        let here = ref src_router in
        let violated = ref false in
        List.iter
          (fun nf ->
            if not !violated then begin
              incr events;
              match
                Sdm.Controller.next_hop_result ?alive controller !entity ~rule
                  ~nf fs.Workload.flow
              with
              | Error `No_live_candidate ->
                (* Graceful degradation: the rest of the chain cannot be
                   enforced, so the flow hot-potatoes straight to its
                   destination and every packet counts as a violation. *)
                violated := true;
                incr violating_flows;
                policy_violations := !policy_violations + fs.Workload.packets
              | Ok mb ->
                loads.(mb.Mbox.Middlebox.id) <-
                  loads.(mb.Mbox.Middlebox.id) +. pkts;
                packet_hops :=
                  !packet_hops +. (dist.(!here).(mb.Mbox.Middlebox.router) *. pkts);
                here := mb.Mbox.Middlebox.router;
                entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id
            end)
          rule.Policy.Rule.actions;
        packet_hops := !packet_hops +. (dist.(!here).(dst_router) *. pkts))
    workload.Workload.flows;
  {
    loads;
    packet_hops = !packet_hops;
    direct_packet_hops = !direct_packet_hops;
    enforced_flows = !enforced_flows;
    enforced_packets = !enforced_packets;
    policy_violations = !policy_violations;
    violating_flows = !violating_flows;
    events = !events;
  }

let loads_of_nf controller result nf =
  let dep = controller.Sdm.Controller.deployment in
  Sdm.Deployment.middleboxes_of dep nf
  |> List.map (fun (m : Mbox.Middlebox.t) -> result.loads.(m.id))
  |> Array.of_list

let max_load_of_nf controller result nf =
  Array.fold_left max 0.0 (loads_of_nf controller result nf)

let stretch result =
  if result.direct_packet_hops = 0.0 then 1.0
  else result.packet_hops /. result.direct_packet_hops

let trace ~controller flow =
  let dep = controller.Sdm.Controller.deployment in
  let proxy =
    match Sdm.Deployment.proxy_of_addr dep flow.Netpkt.Flow.src with
    | Some p -> p
    | None -> invalid_arg "Flowsim.trace: source address is in no proxy subnet"
  in
  match Policy.Rule.first_match controller.Sdm.Controller.rules flow with
  | None -> (None, [])
  | Some rule ->
    let entity = ref (Mbox.Entity.Proxy proxy.Mbox.Proxy.id) in
    let chain =
      List.map
        (fun nf ->
          let mb = Sdm.Controller.next_hop controller !entity ~rule ~nf flow in
          entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id;
          mb)
        rule.Policy.Rule.actions
    in
    (Some rule, chain)

(* The Pktsim <-> Flowsim differential oracle: both compute per-mbox
   packet loads by entirely different mechanisms, and on a fault-free
   static configuration per-flow steering is deterministic, so they
   must agree exactly. *)
let differential ?abs_tol ?rel_tol t (stats : Pktsim.stats) =
  Audit.Differential.compare ?abs_tol ?rel_tol ~expected:t.loads
    ~observed:stats.Pktsim.loads ()
