lib/core/weights_sd.mli: Mbox Policy
