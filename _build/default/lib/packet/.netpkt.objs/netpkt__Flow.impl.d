lib/packet/flow.ml: Addr Format Hashtbl Int64 Printf Stdlib Stdx
