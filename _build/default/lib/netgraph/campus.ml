type params = {
  gateways : int;
  cores : int;
  edges : int;
  edge_homing : int;
  core_peers : int;
}

let default_params =
  { gateways = 2; cores = 16; edges = 10; edge_homing = 2; core_peers = 2 }

let generate ?(params = default_params) ~seed () =
  let { gateways; cores; edges; edge_homing; core_peers } = params in
  if gateways < 1 || cores < 2 || edges < 1 then
    invalid_arg "Campus.generate: degenerate parameters";
  if edge_homing < 1 || edge_homing > cores then
    invalid_arg "Campus.generate: edge_homing out of range";
  let rng = Stdx.Rng.create seed in
  let n = gateways + cores + edges in
  let g = Graph.create n in
  let core_id i = gateways + i in
  let edge_id i = gateways + cores + i in
  (* Every core dual-homes to every gateway (the published structure). *)
  for c = 0 to cores - 1 do
    for gw = 0 to gateways - 1 do
      Graph.add_edge g gw (core_id c) 1.0
    done
  done;
  (* Random core-core peering for transit diversity. *)
  let core_ids = Array.init cores core_id in
  for c = 0 to cores - 1 do
    let placed = ref 0 and attempts = ref 0 in
    while !placed < core_peers && !attempts < 50 * cores do
      incr attempts;
      let peer = Stdx.Rng.choose rng core_ids in
      if peer <> core_id c && not (Graph.has_edge g (core_id c) peer) then begin
        Graph.add_edge g (core_id c) peer 1.0;
        incr placed
      end
    done
  done;
  (* Edge routers home to [edge_homing] distinct cores. *)
  for e = 0 to edges - 1 do
    let homes = Stdx.Rng.sample_without_replacement rng edge_homing core_ids in
    Array.iter (fun c -> Graph.add_edge g (edge_id e) c 1.0) homes
  done;
  let roles =
    Array.init n (fun i ->
        if i < gateways then Topology.Gateway
        else if i < gateways + cores then Topology.Core
        else Topology.Edge)
  in
  Topology.make ~name:"campus" ~graph:g ~roles
