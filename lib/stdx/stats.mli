(** Summary statistics over float samples.

    Used by the experiment harness to report load distributions
    (max/min/mean per middlebox type) and by tests to check sampler
    calibration. *)

type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array or a NaN sample
    (infinities are allowed; NaN silently poisons every statistic). *)

val percentile : float array -> float -> float
(** [percentile samples q] with [q] in [\[0, 1\]]; nearest-rank on a
    sorted copy.  Raises [Invalid_argument] on an empty array or a NaN
    sample. *)

val percentiles : float array -> float list -> float list
(** [percentiles samples qs] is [List.map (percentile samples) qs] but
    sorts the samples once for all requested quantiles — use this when
    reporting several quantiles of one large sample set.  Raises
    [Invalid_argument] on an empty array, a NaN sample, or an
    out-of-range [q]. *)

val imbalance : float array -> float
(** max / mean: 1.0 is perfectly balanced.  Raises on empty input or a
    zero mean. *)

val pp_summary : Format.formatter -> summary -> unit
