(* Audit columns: "-" when the online audit was off for the run. *)
let audit_cell = function None -> "-" | Some n -> string_of_int n

let millions v =
  if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let pp_figure ppf (fig : Experiment.figure) =
  Format.fprintf ppf "=== Max middlebox load vs traffic volume (%s topology) ===@."
    (Experiment.scenario_name fig.Experiment.scenario);
  let nfs =
    match fig.Experiment.points with
    | [] -> []
    | p :: _ -> List.map fst p.Experiment.max_loads
  in
  List.iter
    (fun nf ->
      Format.fprintf ppf "@.-- %s --@." (Policy.Action.nf_to_string nf);
      Format.fprintf ppf "%12s %10s %10s %10s %10s@." "flows" "packets" "HP"
        "Rand" "LB";
      List.iter
        (fun (p : Experiment.point) ->
          let hp, rand, lb = List.assoc nf p.Experiment.max_loads in
          Format.fprintf ppf "%12d %10s %10s %10s %10s@." p.Experiment.flows
            (millions (float_of_int p.Experiment.total_packets))
            (millions hp) (millions rand) (millions lb))
        fig.Experiment.points)
    nfs

let figure_csv (fig : Experiment.figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "nf,flows,packets,hp,rand,lb\n";
  List.iter
    (fun (p : Experiment.point) ->
      List.iter
        (fun (nf, (hp, rand, lb)) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%d,%.0f,%.0f,%.0f\n"
               (Policy.Action.nf_to_string nf)
               p.Experiment.flows p.Experiment.total_packets hp rand lb))
        p.Experiment.max_loads)
    fig.Experiment.points;
  Buffer.contents buf

let table3_csv rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "nf,hp_max,hp_min,rand_max,rand_min,lb_max,lb_min\n";
  List.iter
    (fun (r : Experiment.table3_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f\n"
           (Policy.Action.nf_to_string r.Experiment.nf)
           r.Experiment.hp_max r.Experiment.hp_min r.Experiment.rand_max
           r.Experiment.rand_min r.Experiment.lb_max r.Experiment.lb_min))
    rows;
  Buffer.contents buf

let pp_table3 ppf rows =
  Format.fprintf ppf
    "=== Load distribution: max/min load per middlebox type (Table III) ===@.";
  Format.fprintf ppf "%-10s %12s %12s %12s@." "Middlebox" "Hot-potato"
    "Random" "Load-balance";
  List.iter
    (fun (r : Experiment.table3_row) ->
      let name = Policy.Action.nf_to_string r.Experiment.nf in
      Format.fprintf ppf "%-10s %12.0f %12.0f %12.0f@." (name ^ " max.")
        r.Experiment.hp_max r.Experiment.rand_max r.Experiment.lb_max;
      Format.fprintf ppf "%-10s %12.0f %12.0f %12.0f@." (name ^ " min.")
        r.Experiment.hp_min r.Experiment.rand_min r.Experiment.lb_min)
    rows

let pp_k_ablation ppf points =
  Format.fprintf ppf
    "=== Ablation: candidate-set size k vs LB max load (campus) ===@.";
  Format.fprintf ppf "%14s" "k (FW/IDS, WP/TM)";
  (match points with
  | [] -> ()
  | p :: _ ->
    List.iter
      (fun (nf, _) -> Format.fprintf ppf " %10s" (Policy.Action.nf_to_string nf))
      p.Experiment.lb_max_by_nf);
  Format.fprintf ppf "@.";
  List.iter
    (fun (p : Experiment.k_point) ->
      Format.fprintf ppf "%9d, %5d" p.Experiment.k_fw_ids p.Experiment.k_wp_tm;
      List.iter
        (fun (_, v) -> Format.fprintf ppf " %10s" (millions v))
        p.Experiment.lb_max_by_nf;
      Format.fprintf ppf "@.")
    points

let pp_cache_ablation ppf (c : Experiment.cache_stats) =
  Format.fprintf ppf
    "=== Ablation: flow cache vs multi-field lookups (Sec. III.D) ===@.";
  Format.fprintf ppf
    "packets injected: %d@.multi-field lookups: %d@.cache hits: %d@.negative \
     hits: %d@.lookup fraction: %.4f@."
    c.Experiment.packets c.Experiment.lookups c.Experiment.hits
    c.Experiment.negative_hits c.Experiment.lookup_fraction

let pp_cache_size_ablation ppf points =
  Format.fprintf ppf
    "=== Ablation: flow-cache capacity vs multi-field lookups ===@.";
  Format.fprintf ppf "%10s %18s %12s@." "capacity" "lookup fraction" "evictions";
  List.iter
    (fun (p : Experiment.cache_size_point) ->
      Format.fprintf ppf "%10s %18.4f %12d@."
        (match p.Experiment.capacity with
        | Some c -> string_of_int c
        | None -> "unbounded")
        p.Experiment.size_lookup_fraction p.Experiment.size_evictions)
    points

let pp_frag_ablation ppf (f : Experiment.frag_stats) =
  Format.fprintf ppf
    "=== Ablation: fragmentation, IP-over-IP vs label switching (Sec. III.E) \
     ===@.";
  Format.fprintf ppf
    "extra fragments, IP-over-IP only: %d@.extra fragments, with label \
     switching: %d@.tunneled legs: %d@.label-switched legs: %d@."
    f.Experiment.fragments_ip_over_ip f.Experiment.fragments_label_switched
    f.Experiment.tunneled_legs f.Experiment.label_switched_legs

let pp_failure_ablation ppf (f : Experiment.failure_report) =
  Format.fprintf ppf
    "=== Ablation: middlebox failure, fast failover vs re-optimization ===@.";
  Format.fprintf ppf "failed middlebox: mbox%d (%s), %d survivors of its type@."
    f.Experiment.failed_mbox
    (Policy.Action.nf_to_string f.Experiment.failed_nf)
    f.Experiment.survivors;
  Format.fprintf ppf "max %s load before failure (LB):      %s@."
    (Policy.Action.nf_to_string f.Experiment.failed_nf)
    (millions f.Experiment.before_max);
  Format.fprintf ppf "after failure, local fast failover:    %s@."
    (millions f.Experiment.failover_max);
  Format.fprintf ppf "after controller re-optimization:      %s (lambda %s)@."
    (millions f.Experiment.reoptimized_max)
    (millions f.Experiment.reoptimized_lambda);
  Format.fprintf ppf "hot-potato under the same failure:     %s@."
    (millions f.Experiment.hp_failover_max)

let pp_chaos_ablation ppf (c : Experiment.chaos_report) =
  Format.fprintf ppf
    "=== ABL-CHAOS: in-run faults, detection-delay sweep (campus) ===@.";
  Format.fprintf ppf "crash: mbox%d (%s) at t=%.1f, never restored@."
    c.Experiment.chaos_victim
    (Policy.Action.nf_to_string c.Experiment.chaos_victim_nf)
    c.Experiment.chaos_crash_at;
  (match c.Experiment.chaos_link with
  | Some (u, v) ->
    Format.fprintf ppf "link: %d-%d fails at t=%.1f, restored at t=%.1f@." u v
      c.Experiment.chaos_link_fail_at c.Experiment.chaos_link_restore_at
  | None -> ());
  Format.fprintf ppf "control-packet loss: %.0f%% (masked by retransmission)@."
    (100.0 *. c.Experiment.chaos_control_loss);
  Format.fprintf ppf "%-16s %7s %9s %10s %8s %10s %8s %9s %14s %6s@." "mode"
    "detect" "injected" "delivered" "dropped" "violating" "retries" "recovery"
    "max surviving" "audit";
  List.iter
    (fun (r : Experiment.chaos_row) ->
      Format.fprintf ppf "%-16s %7s %9d %10d %8d %10d %8d %9.1f %14s %6s@."
        r.Experiment.chaos_mode
        (if Float.is_integer r.Experiment.chaos_delay then
           Printf.sprintf "%.0f" r.Experiment.chaos_delay
         else "never")
        r.Experiment.chaos_injected r.Experiment.chaos_delivered
        r.Experiment.chaos_dropped r.Experiment.chaos_violations
        r.Experiment.chaos_retries r.Experiment.chaos_recovery
        (millions r.Experiment.chaos_max_surviving)
        (audit_cell r.Experiment.chaos_audit))
    c.Experiment.chaos_rows

let pp_live_ablation ppf (l : Experiment.live_report) =
  Format.fprintf ppf
    "=== ABL-LIVE: live reconfiguration, control-loss sweep (campus) ===@.";
  Format.fprintf ppf
    "epoch %.1f, reconcile %.1f; stale HP max %s, clairvoyant LB max %s@."
    l.Experiment.live_epoch l.Experiment.live_reconcile
    (millions l.Experiment.live_stale_max)
    (millions l.Experiment.live_clairvoyant_max);
  Format.fprintf ppf "%8s %9s %10s %10s %9s %7s %6s %5s %9s %6s %10s %6s@."
    "loss" "injected" "delivered" "violating" "versions" "pushes" "acks" "lost"
    "degraded" "stale" "max load" "audit";
  List.iter
    (fun (r : Experiment.live_row) ->
      Format.fprintf ppf
        "%7.0f%% %9d %10d %10d %9d %7d %6d %5d %9d %6d %10s %6s@."
        (100.0 *. r.Experiment.live_loss)
        r.Experiment.live_injected r.Experiment.live_delivered
        r.Experiment.live_violations r.Experiment.live_versions
        r.Experiment.live_pushes r.Experiment.live_acks r.Experiment.live_lost
        r.Experiment.live_degraded r.Experiment.live_stale
        (millions r.Experiment.live_max_load)
        (audit_cell r.Experiment.live_audit))
    l.Experiment.live_rows;
  Format.fprintf ppf "@.per device (lossiest row):@.";
  Format.fprintf ppf "%-10s %8s %5s %8s %5s@." "device" "version" "lag"
    "retries" "lost";
  List.iter
    (fun (d : Experiment.live_device) ->
      Format.fprintf ppf "%-10s %8d %5d %8d %5d@." d.Experiment.dev_name
        d.Experiment.dev_version d.Experiment.dev_lag d.Experiment.dev_retries
        d.Experiment.dev_lost)
    l.Experiment.live_devices

let live_csv (l : Experiment.live_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "loss,injected,delivered,violating,versions,pushes,acks,lost,degraded,stale,bytes,max_load,audit\n";
  List.iter
    (fun (r : Experiment.live_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%s\n"
           r.Experiment.live_loss r.Experiment.live_injected
           r.Experiment.live_delivered r.Experiment.live_violations
           r.Experiment.live_versions r.Experiment.live_pushes
           r.Experiment.live_acks r.Experiment.live_lost
           r.Experiment.live_degraded r.Experiment.live_stale
           r.Experiment.live_bytes r.Experiment.live_max_load
           (match r.Experiment.live_audit with
           | None -> ""
           | Some n -> string_of_int n)))
    l.Experiment.live_rows;
  Buffer.contents buf

let live_devices_csv (l : Experiment.live_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "device,version,lag,retries,lost\n";
  List.iter
    (fun (d : Experiment.live_device) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d\n" d.Experiment.dev_name
           d.Experiment.dev_version d.Experiment.dev_lag d.Experiment.dev_retries
           d.Experiment.dev_lost))
    l.Experiment.live_devices;
  Buffer.contents buf

let pp_quorum_ablation ppf (q : Experiment.quorum_report) =
  Format.fprintf ppf
    "=== ABL-QUORUM: replicated controller under chaos (campus) ===@.";
  Format.fprintf ppf
    "%d replicas (majority quorum), leader at router %d; epoch %.1f, \
     reconcile %.1f@."
    q.Experiment.q_replicas q.Experiment.q_leader_router q.Experiment.q_epoch
    q.Experiment.q_reconcile;
  Format.fprintf ppf
    "leader crash at %.1f; partition %.1f-%.1f; probe %d events@."
    q.Experiment.q_crash_at q.Experiment.q_partition_at q.Experiment.q_heal_at
    q.Experiment.q_probe_events;
  Format.fprintf ppf
    "%-13s %5s %9s %10s %9s %7s %8s %7s %6s %6s %6s %9s %6s %6s %12s %6s@."
    "scenario" "loss" "injected" "delivered" "versions" "rounds" "commits"
    "aborts" "msgs" "lost" "elect" "degraded" "stale" "uncomm" "replicas"
    "audit";
  List.iter
    (fun (r : Experiment.quorum_row) ->
      Format.fprintf ppf
        "%-13s %4.0f%% %9d %10d %9d %7d %8d %7d %6d %6d %6d %9d %6d %6d %12s \
         %6s@."
        r.Experiment.qr_scenario
        (100.0 *. r.Experiment.qr_loss)
        r.Experiment.qr_injected r.Experiment.qr_delivered
        r.Experiment.qr_versions r.Experiment.qr_rounds
        r.Experiment.qr_commits r.Experiment.qr_aborts r.Experiment.qr_msgs
        r.Experiment.qr_lost r.Experiment.qr_elections
        r.Experiment.qr_degraded r.Experiment.qr_stale
        r.Experiment.qr_uncommitted
        (String.concat "/" (List.map string_of_int r.Experiment.qr_replicas))
        (audit_cell r.Experiment.qr_audit))
    q.Experiment.q_rows

let quorum_csv (q : Experiment.quorum_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "scenario,loss,injected,delivered,violating,versions,rounds,commits,aborts,msgs,lost,elections,degraded,stale,uncommitted,replica_versions,audit\n";
  List.iter
    (fun (r : Experiment.quorum_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s\n"
           r.Experiment.qr_scenario r.Experiment.qr_loss
           r.Experiment.qr_injected r.Experiment.qr_delivered
           r.Experiment.qr_violations r.Experiment.qr_versions
           r.Experiment.qr_rounds r.Experiment.qr_commits
           r.Experiment.qr_aborts r.Experiment.qr_msgs r.Experiment.qr_lost
           r.Experiment.qr_elections r.Experiment.qr_degraded
           r.Experiment.qr_stale r.Experiment.qr_uncommitted
           (String.concat "/" (List.map string_of_int r.Experiment.qr_replicas))
           (match r.Experiment.qr_audit with
           | None -> ""
           | Some n -> string_of_int n)))
    q.Experiment.q_rows;
  Buffer.contents buf

let sweep_cell = function
  | None -> "off"
  | Some p -> Printf.sprintf "%.1f" p

let pp_corrupt_ablation ppf (c : Experiment.corrupt_report) =
  Format.fprintf ppf
    "=== ABL-CORRUPT: silent corruption vs anti-entropy repair (campus) ===@.";
  Format.fprintf ppf
    "horizon %.1f; epoch %.1f, reconcile %.1f; sweep period %.1f when on; \
     probe %d events@."
    c.Experiment.c_horizon c.Experiment.c_epoch c.Experiment.c_reconcile
    c.Experiment.c_default_sweep c.Experiment.c_probe_events;
  Format.fprintf ppf
    "%-4s %5s %6s %9s %10s %7s %6s %6s %6s %9s %8s %8s %7s %6s@." "plan"
    "rate" "sweep" "injected" "delivered" "corrupt" "manif" "detect" "repair"
    "violating" "win-mean" "win-max" "swbytes" "audit";
  List.iter
    (fun (r : Experiment.corrupt_row) ->
      Format.fprintf ppf
        "%-4s %5.2f %6s %9d %10d %7d %6d %6d %6d %9d %8.2f %8.2f %7d %6s@."
        r.Experiment.cr_strategy r.Experiment.cr_rate
        (sweep_cell r.Experiment.cr_sweep)
        r.Experiment.cr_injected r.Experiment.cr_delivered
        r.Experiment.cr_corruptions r.Experiment.cr_manifested
        r.Experiment.cr_detected r.Experiment.cr_repaired
        r.Experiment.cr_violations r.Experiment.cr_window_mean
        r.Experiment.cr_window_max r.Experiment.cr_sweep_bytes
        (audit_cell r.Experiment.cr_audit))
    c.Experiment.c_rows

let corrupt_csv (c : Experiment.corrupt_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "plan,rate,sweep_period,injected,delivered,corruptions,manifested,detected,repaired,violating,window_mean,window_max,sweep_rounds,sweep_msgs,sweep_bytes,audit\n";
  List.iter
    (fun (r : Experiment.corrupt_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.3f,%s,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%d,%d,%d,%s\n"
           r.Experiment.cr_strategy r.Experiment.cr_rate
           (match r.Experiment.cr_sweep with
           | None -> ""
           | Some p -> Printf.sprintf "%.3f" p)
           r.Experiment.cr_injected r.Experiment.cr_delivered
           r.Experiment.cr_corruptions r.Experiment.cr_manifested
           r.Experiment.cr_detected r.Experiment.cr_repaired
           r.Experiment.cr_violations r.Experiment.cr_window_mean
           r.Experiment.cr_window_max r.Experiment.cr_sweep_rounds
           r.Experiment.cr_sweep_msgs r.Experiment.cr_sweep_bytes
           (match r.Experiment.cr_audit with
           | None -> ""
           | Some n -> string_of_int n)))
    c.Experiment.c_rows;
  Buffer.contents buf

let pp_reopt_ablation ppf (r : Experiment.reopt_report) =
  Format.fprintf ppf
    "=== ABL-REOPT: warm-started re-optimization vs cold re-solve ===@.";
  Format.fprintf ppf "control-packet loss: %.0f%% (masked by retransmission)@."
    (100.0 *. r.Experiment.rp_control_loss);
  List.iter
    (fun (i : Experiment.reopt_scenario_info) ->
      let v1, v2 = i.Experiment.ri_victims in
      Format.fprintf ppf
        "%s: %d routers; epoch %.1f, reconcile %.1f; churn mbox%d \
         %.1f-%.1f, mbox%d %.1f-%.1f@."
        i.Experiment.ri_name i.Experiment.ri_routers i.Experiment.ri_epoch
        i.Experiment.ri_reconcile v1 i.Experiment.ri_crash1
        i.Experiment.ri_recover1 v2 i.Experiment.ri_crash2
        i.Experiment.ri_recover2)
    r.Experiment.rp_infos;
  Format.fprintf ppf "%-8s %8s %5s %7s %7s %7s %5s %9s %9s %10s %10s %9s %9s %10s %6s@."
    "scenario" "routers" "mode" "reopts" "pivots" "phase1" "warm" "fallback"
    "injected" "delivered" "violating" "versions" "degraded" "max load" "audit";
  List.iter
    (fun (row : Experiment.reopt_row) ->
      Format.fprintf ppf
        "%-8s %8d %5s %7d %7d %7d %5d %9d %9d %10d %10d %9d %9d %10s %6s@."
        row.Experiment.rp_scenario row.Experiment.rp_routers
        (if row.Experiment.rp_warm then "warm" else "cold")
        row.Experiment.rp_reopts row.Experiment.rp_pivots
        row.Experiment.rp_phase1 row.Experiment.rp_warm_used
        row.Experiment.rp_fallback row.Experiment.rp_injected
        row.Experiment.rp_delivered row.Experiment.rp_violations
        row.Experiment.rp_versions row.Experiment.rp_degraded
        (millions row.Experiment.rp_max_load)
        (audit_cell row.Experiment.rp_audit))
    r.Experiment.rp_rows;
  Format.fprintf ppf "@.controller-level churn replay (per re-optimization):@.";
  Format.fprintf ppf "%-8s %4s %-10s %11s %11s %5s %9s %6s@." "scenario" "step"
    "failed" "cold pivots" "warm pivots" "warm" "fallback" "agree";
  List.iter
    (fun (name, steps) ->
      List.iteri
        (fun i (s : Experiment.reopt_step) ->
          Format.fprintf ppf "%-8s %4d %-10s %11d %11d %5s %9s %6s@." name
            (i + 1)
            (match s.Experiment.rs_failed with
            | [] -> "-"
            | l -> String.concat "+" (List.map string_of_int l))
            s.Experiment.rs_cold_pivots s.Experiment.rs_warm_pivots
            (if s.Experiment.rs_warm_used then "yes" else "no")
            (if s.Experiment.rs_fallback then "yes" else "no")
            (if s.Experiment.rs_agree then "yes" else "NO"))
        steps)
    r.Experiment.rp_replays;
  Format.fprintf ppf "warm/cold objective agreement: %d/%d replay steps@."
    r.Experiment.rp_agree r.Experiment.rp_total

let reopt_csv (r : Experiment.reopt_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "scenario,routers,mode,reopts,pivots,phase1,warm_used,fallback,injected,delivered,violating,versions,degraded,max_load,audit\n";
  List.iter
    (fun (row : Experiment.reopt_row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%s\n"
           row.Experiment.rp_scenario row.Experiment.rp_routers
           (if row.Experiment.rp_warm then "warm" else "cold")
           row.Experiment.rp_reopts row.Experiment.rp_pivots
           row.Experiment.rp_phase1 row.Experiment.rp_warm_used
           row.Experiment.rp_fallback row.Experiment.rp_injected
           row.Experiment.rp_delivered row.Experiment.rp_violations
           row.Experiment.rp_versions row.Experiment.rp_degraded
           row.Experiment.rp_max_load
           (match row.Experiment.rp_audit with
           | None -> ""
           | Some n -> string_of_int n)))
    r.Experiment.rp_rows;
  Buffer.contents buf

let reopt_steps_csv (r : Experiment.reopt_report) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "scenario,step,failed,cold_pivots,warm_pivots,cold_lambda,warm_lambda,warm_used,fallback,agree\n";
  List.iter
    (fun (name, steps) ->
      List.iteri
        (fun i (s : Experiment.reopt_step) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%s,%d,%d,%.6f,%.6f,%b,%b,%b\n" name (i + 1)
               (String.concat "+" (List.map string_of_int s.Experiment.rs_failed))
               s.Experiment.rs_cold_pivots s.Experiment.rs_warm_pivots
               s.Experiment.rs_cold_lambda s.Experiment.rs_warm_lambda
               s.Experiment.rs_warm_used s.Experiment.rs_fallback
               s.Experiment.rs_agree))
        steps)
    r.Experiment.rp_replays;
  Buffer.contents buf

let pp_sketch_ablation ppf points =
  Format.fprintf ppf
    "=== Ablation: Count-Min sketched measurement vs exact (campus) ===@.";
  (match points with
  | [] -> ()
  | p :: _ ->
    Format.fprintf ppf "exact matrix: %d cells; exact lambda %s; realized max %s@."
      p.Experiment.exact_cells
      (millions p.Experiment.exact_lambda)
      (millions p.Experiment.exact_realized_max));
  Format.fprintf ppf "%10s %14s %12s %14s@." "epsilon" "sketch cells" "lambda"
    "realized max";
  List.iter
    (fun (p : Experiment.sketch_point) ->
      Format.fprintf ppf "%10.4f %14d %12s %14s@." p.Experiment.epsilon
        p.Experiment.sketch_cells
        (millions p.Experiment.sketched_lambda)
        (millions p.Experiment.sketched_realized_max))
    points

let pp_epochs ppf metrics =
  Format.fprintf ppf
    "=== Ablation: epoch adaptation under drifting traffic (campus) ===@.";
  Format.fprintf ppf "%6s %9s %9s %12s %14s %10s %8s@." "epoch" "flows"
    "packets" "stale LB" "clairvoyant" "HP" "gap";
  List.iter
    (fun (m : Epochsim.epoch_metrics) ->
      Format.fprintf ppf "%6d %9d %9s %12s %14s %10s %8.2f@." m.Epochsim.epoch
        m.Epochsim.flows
        (millions (float_of_int m.Epochsim.packets))
        (millions m.Epochsim.stale_lb_max)
        (millions m.Epochsim.clairvoyant_lb_max)
        (millions m.Epochsim.hp_max)
        m.Epochsim.staleness_gap)
    metrics

let pp_latency_ablation ppf (l : Experiment.latency_report) =
  Format.fprintf ppf
    "=== Ablation: end-to-end latency with/without enforcement (campus, LB) \
     ===@.";
  Format.fprintf ppf "%12s %10s %10s %10s@." "" "mean" "p50" "p99";
  Format.fprintf ppf "%12s %10.2f %10.2f %10.2f@." "enforced"
    l.Experiment.enforced_mean l.Experiment.enforced_p50 l.Experiment.enforced_p99;
  Format.fprintf ppf "%12s %10.2f %10.2f %10.2f@." "plain"
    l.Experiment.plain_mean l.Experiment.plain_p50 l.Experiment.plain_p99;
  Format.fprintf ppf "mean enforcement overhead: %.2fx@."
    l.Experiment.mean_overhead;
  Format.fprintf ppf "engine events: %d processed, %d router hops fast-forwarded@."
    l.Experiment.events_processed l.Experiment.router_hops

let pp_queue_ablation ppf (q : Experiment.queue_report) =
  Format.fprintf ppf
    "=== Ablation: middlebox queueing, HP vs LB latency (campus) ===@.";
  Format.fprintf ppf "service rate: %.1f pkt/unit per middlebox@."
    q.Experiment.service_rate;
  Format.fprintf ppf "%6s %12s %14s %14s@." "" "util(max)" "latency mean"
    "latency p99";
  Format.fprintf ppf "%6s %12.2f %14.2f %14.2f@." "HP" q.Experiment.hp_util_max
    q.Experiment.hp_latency_mean q.Experiment.hp_latency_p99;
  Format.fprintf ppf "%6s %12.2f %14.2f %14.2f@." "LB" q.Experiment.lb_util_max
    q.Experiment.lb_latency_mean q.Experiment.lb_latency_p99;
  Format.fprintf ppf "engine events: %d processed, %d router hops fast-forwarded@."
    q.Experiment.events_processed q.Experiment.router_hops

let pp_lp_ablation ppf (l : Experiment.lp_compare) =
  Format.fprintf ppf
    "=== Ablation: LP formulation Eq.(1) exact vs Eq.(2) simplified ===@.";
  Format.fprintf ppf
    "exact:      lambda=%.0f realized=%.0f vars=%d constraints=%d weight \
     rows=%d@."
    l.Experiment.exact_lambda l.Experiment.exact_realized
    l.Experiment.exact_vars l.Experiment.exact_constraints
    l.Experiment.exact_weight_rows;
  Format.fprintf ppf
    "simplified: lambda=%.0f realized=%.0f vars=%d constraints=%d weight \
     rows=%d@."
    l.Experiment.simplified_lambda l.Experiment.simplified_realized
    l.Experiment.simplified_vars l.Experiment.simplified_constraints
    l.Experiment.simplified_weight_rows
