(** Hierarchical-trie multi-field policy matcher.

    The software classifier standing in for TCAM (Sec. III.D cites
    trie-based structures for large policy tables).  Structure: a
    binary trie over source-prefix bits; every node where at least one
    rule's source prefix ends holds a second binary trie over
    destination-prefix bits; rules hang off the destination node where
    their destination prefix ends and are filtered by port/protocol at
    match time.

    Matching walks at most 32 source-trie nodes, and for each visited
    node with rules, at most 32 destination-trie nodes — O(w^2) node
    visits independent of the rule count, versus O(n) for the linear
    scan.  First-match (lowest id) semantics are identical to
    {!Rule.first_match}; a property test enforces the equivalence. *)

type t

val build : Rule.t list -> t

val rule_count : t -> int

val node_count : t -> int
(** Total trie nodes (source and destination levels) — a memory
    proxy reported by benchmarks. *)

val first_match : t -> Netpkt.Flow.t -> Rule.t option
