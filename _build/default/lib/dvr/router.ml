type route = { mutable dist : float; mutable via : int }

type t = {
  id : int;
  neighbors : (int * float) list;
  routes : (int, route) Hashtbl.t;
}

type advertisement = { from : int; entries : (int * float) list }

let create ~id ~neighbors =
  let t = { id; neighbors; routes = Hashtbl.create 64 } in
  Hashtbl.replace t.routes id { dist = 0.0; via = id };
  t

let id t = t.id

let advertisement_for t ~neighbor =
  let entries =
    Hashtbl.fold
      (fun dst route acc ->
        (* Poisoned reverse: routes through the neighbour are
           advertised back to it as unreachable. *)
        let dist = if route.via = neighbor then infinity else route.dist in
        (dst, dist) :: acc)
      t.routes []
  in
  { from = t.id; entries = List.sort compare entries }

let initial_advertisements t =
  List.map (fun (nbr, _) -> (nbr, advertisement_for t ~neighbor:nbr)) t.neighbors

let receive t adv =
  match List.assoc_opt adv.from t.neighbors with
  | None -> invalid_arg "Dvr.Router.receive: advertisement from a non-neighbor"
  | Some link_cost ->
    let changed = ref false in
    List.iter
      (fun (dst, nbr_dist) ->
        if dst <> t.id then begin
          let candidate = link_cost +. nbr_dist in
          match Hashtbl.find_opt t.routes dst with
          | None ->
            if candidate < infinity then begin
              Hashtbl.replace t.routes dst { dist = candidate; via = adv.from };
              changed := true
            end
          | Some route ->
            if
              candidate < route.dist -. 1e-12
              || (candidate < route.dist +. 1e-12 && adv.from < route.via
                  && route.via <> t.id)
            then begin
              (* Strictly better, or an equal-cost path through a
                 lower-id neighbour (deterministic tie-break). *)
              route.dist <- candidate;
              route.via <- adv.from;
              changed := true
            end
            else if route.via = adv.from && candidate > route.dist +. 1e-12
            then begin
              (* Our current next hop got worse (or poisoned):
                 accept the new cost; a better path, if any, will
                 arrive in a neighbour's next advertisement. *)
              route.dist <- candidate;
              changed := true
            end
        end)
      adv.entries;
    !changed

let distances t ~node_count =
  Array.init node_count (fun dst ->
      match Hashtbl.find_opt t.routes dst with
      | Some { dist; _ } when dist < infinity -> dist
      | _ -> infinity)

let table t ~node_count =
  Array.init node_count (fun dst ->
      if dst = t.id then t.id
      else
        match Hashtbl.find_opt t.routes dst with
        | Some { dist; via } when dist < infinity -> via
        | _ -> -1)
