lib/policy/descriptor.ml: Format Netpkt Printf
