test/test_mbox.ml: Alcotest List Mbox Netpkt Policy
