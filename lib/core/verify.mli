(** Static verification of a controller configuration.

    Inspired by the invariant-checking line of work the paper cites
    (VeriFlow): before a configuration is pushed, prove that it cannot
    violate the enforcement semantics, whatever per-flow choices the
    hash selector makes at run time.

    Checked invariants, over every rule and every entity that can hold
    traffic of that rule:

    - {b completeness}: at each position of the rule's action list,
      every reachable deciding entity has a non-empty candidate set
      for the next function (so no packet can strand mid-chain);
    - {b function correctness}: every candidate implements exactly the
      function it is consulted for;
    - {b weight sanity} (LB only): every weight row references only
      members of the corresponding candidate set, with non-negative
      weights, and the row normalizes to a proper distribution (the
      selector divides by the row total, so an all-zero row would
      silently degrade to closest-live fallback at run time);
    - {b table consistency}: each middlebox's policy table holds only
      rules that mention its function, and each proxy's table holds
      every rule its subnet's traffic can match;
    - {b chain well-formedness}: no action list repeats a function.

    The walk explores all candidate choices (not just the hash's), so
    a pass certifies every flow the policies can classify. *)

type violation =
  | Empty_candidates of Mbox.Entity.t * int * Policy.Action.nf
      (** (deciding entity, rule id, function with no candidates) *)
  | Wrong_function of Mbox.Entity.t * int * Policy.Action.nf * int
      (** candidate middlebox (last int) does not implement the function *)
  | Foreign_weight of Mbox.Entity.t * int * Policy.Action.nf * int
      (** LB weight row references a non-candidate middlebox *)
  | Negative_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Unnormalized_row of Mbox.Entity.t * int * Policy.Action.nf * float
      (** LB weight row whose total (last field) is non-positive, non-
          finite, or whose normalized entries miss 1.0 by more than ε —
          such a row yields no selector pick at run time *)
  | Table_mismatch of Mbox.Entity.t * int
      (** entity's policy table holds an irrelevant rule, or misses a
          relevant one (rule id given) *)
  | Duplicate_function of int  (** rule id with a repeated function *)
  | Window_too_deep of int
      (** a staged update window holding more than two coexisting
          versions (count given) — unsafe whatever its contents, since
          run-time stickiness only clamps flows into an adjacent pair *)

val pp_violation : Format.formatter -> violation -> unit

val check : Controller.t -> (unit, violation list) result
(** Empty violation list = certified. *)

val check_mixed :
  Controller.t -> Controller.t -> (unit, violation list) result
(** [check_mixed old new_] certifies every {e reachable mix} of two
    adjacent configuration versions: while a live update is in flight,
    each deciding entity independently runs [old] or [new_], so the
    walk takes the union of both candidate sets at every chain
    position and requires a safe step under either version from every
    frontier member.  A pass means no packet can strand mid-chain
    across the update boundary, whichever subset of devices has
    installed the new version.  Duplicate findings (a defect shared by
    both versions) are reported once.  Both configurations must be
    built over the same deployment and rule set; raises
    [Invalid_argument] when the rule ids differ. *)

val check_window : Controller.t list -> (unit, violation list) result
(** Certify a whole staged window, oldest first: the empty window is
    vacuously safe, a singleton is {!check}, an adjacent pair is
    {!check_mixed}, and anything deeper — such as a three-version
    window of (installed-1, installed, proposed-but-uncommitted) — is
    vetoed outright with {!Window_too_deep}.  The replicated control
    plane's quorum commit is therefore the only path by which a
    proposed version may join the window: until commit, the candidate
    is held outside and never enters this check as a third member. *)
