type event =
  | Mbox_crash of int
  | Mbox_recover of int
  | Link_fail of int * int
  | Link_restore of int * int
  | Ctrl_crash of int
  | Ctrl_recover of int

type timed = { at : float; what : event }

type t = {
  events : timed list;
  link_loss : float;
  control_loss : float;
  loss_seed : int;
}

let event_to_string = function
  | Mbox_crash id -> Printf.sprintf "mbox%d crash" id
  | Mbox_recover id -> Printf.sprintf "mbox%d recover" id
  | Link_fail (u, v) -> Printf.sprintf "link %d-%d fail" u v
  | Link_restore (u, v) -> Printf.sprintf "link %d-%d restore" u v
  | Ctrl_crash id -> Printf.sprintf "controller replica %d crash" id
  | Ctrl_recover id -> Printf.sprintf "controller replica %d recover" id

let check_probability name p =
  if not (p >= 0.0 && p < 1.0) then
    invalid_arg (Printf.sprintf "Schedule.make: %s must be in [0, 1)" name)

let make ?(link_loss = 0.0) ?(control_loss = 0.0) ?(loss_seed = 1) events =
  check_probability "link_loss" link_loss;
  check_probability "control_loss" control_loss;
  List.iter
    (fun { at; what } ->
      (* [not (at >= 0.0)] catches NaN along with negatives; the finite
         check additionally rejects +infinity, which would otherwise
         park an event past every horizon and silently never fire. *)
      if not (Float.is_finite at && at >= 0.0) then
        invalid_arg
          (Printf.sprintf "Schedule.make: %s scheduled at non-finite or negative time"
             (event_to_string what)))
    events;
  (* Stable sort: events at equal times keep the caller's order. *)
  let events = List.stable_sort (fun a b -> compare a.at b.at) events in
  { events; link_loss; control_loss; loss_seed }

let empty = make []

let is_empty t =
  t.events = [] && t.link_loss = 0.0 && t.control_loss = 0.0

let has_link_events t =
  List.exists
    (fun { what; _ } ->
      match what with
      | Link_fail _ | Link_restore _ -> true
      | Mbox_crash _ | Mbox_recover _ | Ctrl_crash _ | Ctrl_recover _ -> false)
    t.events

let validate ?(n_controllers = 0) ~n_mboxes ~link_exists t =
  (* Replay the event list in time order against the deployment,
     tracking which boxes are down and which links are cut, so that
     recoveries without a preceding failure are caught here instead of
     blowing up (or silently no-opping) deep inside a run. *)
  let down = Hashtbl.create 8 in
  let cut = Hashtbl.create 8 in
  let ctrl_down = Hashtbl.create 4 in
  let link_key u v = if u <= v then (u, v) else (v, u) in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] -> Ok ()
    | { at; what } :: rest -> (
        if not (Float.is_finite at) then
          err "t=%g: %s: non-finite event time" at (event_to_string what)
        else
        match what with
        | Ctrl_crash id ->
            if id < 0 || id >= n_controllers then
              err "t=%g: %s: unknown controller replica (run has %d)" at
                (event_to_string what) n_controllers
            else if Hashtbl.mem ctrl_down id then
              err "t=%g: %s: replica is already down" at (event_to_string what)
            else (
              Hashtbl.replace ctrl_down id ();
              go rest)
        | Ctrl_recover id ->
            if id < 0 || id >= n_controllers then
              err "t=%g: %s: unknown controller replica (run has %d)" at
                (event_to_string what) n_controllers
            else if not (Hashtbl.mem ctrl_down id) then
              err "t=%g: %s: no preceding crash" at (event_to_string what)
            else (
              Hashtbl.remove ctrl_down id;
              go rest)
        | Mbox_crash id ->
            if id < 0 || id >= n_mboxes then
              err "t=%g: %s: unknown middlebox (deployment has %d)" at
                (event_to_string what) n_mboxes
            else if Hashtbl.mem down id then
              err "t=%g: %s: middlebox is already down" at
                (event_to_string what)
            else (
              Hashtbl.replace down id ();
              go rest)
        | Mbox_recover id ->
            if id < 0 || id >= n_mboxes then
              err "t=%g: %s: unknown middlebox (deployment has %d)" at
                (event_to_string what) n_mboxes
            else if not (Hashtbl.mem down id) then
              err "t=%g: %s: no preceding crash" at (event_to_string what)
            else (
              Hashtbl.remove down id;
              go rest)
        | Link_fail (u, v) ->
            if not (link_exists u v) then
              err "t=%g: %s: no such link in the topology" at
                (event_to_string what)
            else if Hashtbl.mem cut (link_key u v) then
              err "t=%g: %s: link is already down" at (event_to_string what)
            else (
              Hashtbl.replace cut (link_key u v) ();
              go rest)
        | Link_restore (u, v) ->
            if not (link_exists u v) then
              err "t=%g: %s: no such link in the topology" at
                (event_to_string what)
            else if not (Hashtbl.mem cut (link_key u v)) then
              err "t=%g: %s: no preceding failure" at (event_to_string what)
            else (
              Hashtbl.remove cut (link_key u v);
              go rest))
  in
  go t.events

let crash_times t =
  List.filter_map
    (fun { at; what } ->
      match what with Mbox_crash id -> Some (id, at) | _ -> None)
    t.events
