(** Network functions and action lists.

    A policy's action list is an ordered sequence of network functions
    — e.g. [FW -> IDS -> WP] — each to be applied by some middlebox
    implementing it.  The empty list is the paper's "permit": forward
    with no middlebox processing.  The four builtin functions are the
    ones the evaluation deploys; [Custom] supports user extensions. *)

type nf =
  | FW   (** firewalling *)
  | IDS  (** intrusion detection *)
  | WP   (** web proxying *)
  | TM   (** traffic measurement *)
  | Custom of string

type t = nf list

val permit : t
(** The empty action list. *)

val is_permit : t -> bool

val builtin : nf list
(** [FW; IDS; WP; TM]. *)

val equal_nf : nf -> nf -> bool
val compare_nf : nf -> nf -> int

val nf_to_string : nf -> string
val nf_of_string : string -> nf
(** Inverse of [nf_to_string]; unknown names become [Custom]. *)

val to_string : t -> string
(** ["FW -> IDS"] or ["permit"]. *)

val adjacent_pairs : t -> (nf * nf) list
(** Consecutive function pairs — the [I_p(e,e')] structure of the LP. *)

val first : t -> nf option
(** [J_p(e)] — the head of the list. *)

val last : t -> nf option
(** [J'_p(e)] — the last element. *)

val next_after : t -> nf -> nf option
(** [next_after actions e] is the function following the first
    occurrence of [e]; [None] when [e] is last or absent. *)

val has_duplicates : t -> bool
(** The per-(e,p) LP formulation assumes chains do not repeat a
    function; callers assert with this. *)

val pp_nf : Format.formatter -> nf -> unit
val pp : Format.formatter -> t -> unit
