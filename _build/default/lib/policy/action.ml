type nf = FW | IDS | WP | TM | Custom of string

type t = nf list

let permit = []
let is_permit t = t = []

let builtin = [ FW; IDS; WP; TM ]

let equal_nf a b = a = b
let compare_nf = Stdlib.compare

let nf_to_string = function
  | FW -> "FW"
  | IDS -> "IDS"
  | WP -> "WP"
  | TM -> "TM"
  | Custom s -> s

let nf_of_string = function
  | "FW" -> FW
  | "IDS" -> IDS
  | "WP" -> WP
  | "TM" -> TM
  | s -> Custom s

let to_string = function
  | [] -> "permit"
  | l -> String.concat " -> " (List.map nf_to_string l)

let rec adjacent_pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: adjacent_pairs rest
  | [ _ ] | [] -> []

let first = function [] -> None | e :: _ -> Some e

let rec last = function [] -> None | [ e ] -> Some e | _ :: rest -> last rest

let rec next_after t e =
  match t with
  | [] | [ _ ] -> None
  | a :: (b :: _ as rest) -> if equal_nf a e then Some b else next_after rest e

let has_duplicates t =
  let rec check seen = function
    | [] -> false
    | e :: rest -> List.exists (equal_nf e) seen || check (e :: seen) rest
  in
  check [] t

let pp_nf ppf nf = Format.pp_print_string ppf (nf_to_string nf)
let pp ppf t = Format.pp_print_string ppf (to_string t)
