type violation =
  | Empty_candidates of Mbox.Entity.t * int * Policy.Action.nf
  | Wrong_function of Mbox.Entity.t * int * Policy.Action.nf * int
  | Foreign_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Negative_weight of Mbox.Entity.t * int * Policy.Action.nf * int
  | Table_mismatch of Mbox.Entity.t * int
  | Duplicate_function of int

let pp_violation ppf = function
  | Empty_candidates (e, rule, nf) ->
    Format.fprintf ppf "%a has no candidate for %s (rule %d)" Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule
  | Wrong_function (e, rule, nf, mb) ->
    Format.fprintf ppf
      "candidate mbox%d of %a does not implement %s (rule %d)" mb Mbox.Entity.pp
      e
      (Policy.Action.nf_to_string nf)
      rule
  | Foreign_weight (e, rule, nf, mb) ->
    Format.fprintf ppf
      "weight row of %a for %s (rule %d) references non-candidate mbox%d"
      Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule mb
  | Negative_weight (e, rule, nf, mb) ->
    Format.fprintf ppf "negative weight at %a for %s (rule %d) toward mbox%d"
      Mbox.Entity.pp e
      (Policy.Action.nf_to_string nf)
      rule mb
  | Table_mismatch (e, rule) ->
    Format.fprintf ppf "policy table of %a inconsistent for rule %d"
      Mbox.Entity.pp e rule
  | Duplicate_function rule ->
    Format.fprintf ppf "rule %d repeats a function in its action list" rule

let check (c : Controller.t) =
  let dep = c.Controller.deployment in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let weights =
    match c.Controller.strategy with
    | Strategy.Load_balanced w -> Some w
    | Strategy.Load_balanced_exact (_, fallback) ->
      (* The per-(s,d) rows are sums of the fallback's; checking the
         aggregate covers candidate membership and sign for both. *)
      Some fallback
    | Strategy.Hot_potato | Strategy.Random_uniform -> None
  in
  (* Per-entity step check: candidates exist, implement the function,
     and any weight row stays within the candidate set. *)
  let check_step entity rule_id nf =
    match Candidate.get c.Controller.candidates entity nf with
    | exception Not_found ->
      add (Empty_candidates (entity, rule_id, nf));
      []
    | exception Invalid_argument _ ->
      (* The entity implements [nf] itself: chains never ask this. *)
      add (Empty_candidates (entity, rule_id, nf));
      []
    | [] ->
      add (Empty_candidates (entity, rule_id, nf));
      []
    | members ->
      List.iter
        (fun (m : Mbox.Middlebox.t) ->
          if not (Policy.Action.equal_nf m.nf nf) then
            add (Wrong_function (entity, rule_id, nf, m.id)))
        members;
      (match weights with
      | None -> ()
      | Some w -> (
        match Weights.find w entity ~rule:rule_id ~nf with
        | None -> ()
        | Some row ->
          Array.iter
            (fun (id, v) ->
              if v < 0.0 then add (Negative_weight (entity, rule_id, nf, id));
              if
                not
                  (List.exists (fun (m : Mbox.Middlebox.t) -> m.id = id) members)
              then add (Foreign_weight (entity, rule_id, nf, id)))
            row));
      members
  in
  (* Walk every rule's chain from every proxy, following every
     candidate (all run-time choices are a subset of this). *)
  List.iter
    (fun rule ->
      let rule_id = rule.Policy.Rule.id in
      let chain = rule.Policy.Rule.actions in
      if Policy.Action.has_duplicates chain then add (Duplicate_function rule_id);
      match chain with
      | [] -> ()
      | first :: rest ->
        let n_proxies = Array.length dep.Deployment.proxies in
        let starters =
          List.filter
            (fun i ->
              Policy.Descriptor.src_overlaps rule.Policy.Rule.descriptor
                (Deployment.subnet_of dep i))
            (List.init n_proxies Fun.id)
        in
        (* Frontier of middleboxes reachable at each chain position. *)
        let frontier =
          List.concat_map
            (fun i -> check_step (Mbox.Entity.Proxy i) rule_id first)
            starters
          |> List.sort_uniq (fun (a : Mbox.Middlebox.t) b -> compare a.id b.id)
        in
        ignore
          (List.fold_left
             (fun frontier nf ->
               List.concat_map
                 (fun (m : Mbox.Middlebox.t) ->
                   check_step (Mbox.Entity.Middlebox m.id) rule_id nf)
                 frontier
               |> List.sort_uniq (fun (a : Mbox.Middlebox.t) b ->
                      compare a.id b.id))
             frontier rest))
    c.Controller.rules;
  (* Policy-table consistency. *)
  Array.iter
    (fun (m : Mbox.Middlebox.t) ->
      let entity = Mbox.Entity.Middlebox m.id in
      List.iter
        (fun r ->
          if
            not
              (List.exists
                 (Policy.Action.equal_nf m.Mbox.Middlebox.nf)
                 r.Policy.Rule.actions)
          then add (Table_mismatch (entity, r.Policy.Rule.id)))
        (Controller.policy_table_for c entity))
    dep.Deployment.middleboxes;
  Array.iteri
    (fun i _ ->
      let entity = Mbox.Entity.Proxy i in
      let table = Controller.policy_table_for c entity in
      List.iter
        (fun r ->
          let relevant =
            Policy.Descriptor.src_overlaps r.Policy.Rule.descriptor
              (Deployment.subnet_of dep i)
          in
          let present =
            List.exists (fun t -> t.Policy.Rule.id = r.Policy.Rule.id) table
          in
          if relevant <> present then add (Table_mismatch (entity, r.Policy.Rule.id)))
        c.Controller.rules)
    dep.Deployment.proxies;
  match List.rev !violations with [] -> Ok () | vs -> Error vs
