type t = {
  deployment : Deployment.t;
  k : Policy.Action.nf -> int;
  excluded : int list;
  (* Full distance-ranked offering per (entity, function), computed
     once and shared immutably across every exclusion patch — ranking
     never depends on who is excluded, so patched sets are filtered
     views of these lists. *)
  ranked : (int * Policy.Action.nf, Mbox.Middlebox.t list) Hashtbl.t;
  sets : (int * Policy.Action.nf, Mbox.Middlebox.t list) Hashtbl.t;
  (* Dense mirror of [sets] for the built-in functions, indexed by
     [Entity.hash_key * 4 + nf slot].  [get] runs on every steering
     event of the packet simulator; probing the tuple-keyed table there
     would allocate a fresh key per packet.  [Custom] functions stay on
     the Hashtbl. *)
  fast : Mbox.Middlebox.t list option array;
}

let nf_slot = function
  | Policy.Action.FW -> 0
  | Policy.Action.IDS -> 1
  | Policy.Action.WP -> 2
  | Policy.Action.TM -> 3
  | Policy.Action.Custom _ -> -1

let fast_of_sets (dep : Deployment.t) sets =
  let n_keys =
    2
    * max
        (Array.length dep.Deployment.proxies)
        (Array.length dep.Deployment.middleboxes)
  in
  let fast = Array.make (4 * n_keys) None in
  Hashtbl.iter
    (fun (ek, nf) members ->
      let slot = nf_slot nf in
      if slot >= 0 then fast.((ek * 4) + slot) <- Some members)
    sets;
  fast

let implements (dep : Deployment.t) entity nf =
  match entity with
  | Mbox.Entity.Proxy _ -> false
  | Mbox.Entity.Middlebox i ->
    Policy.Action.equal_nf dep.Deployment.middleboxes.(i).Mbox.Middlebox.nf nf

let entities_of dep =
  List.init (Array.length dep.Deployment.proxies) (fun i -> Mbox.Entity.Proxy i)
  @ List.init (Array.length dep.Deployment.middleboxes) (fun i ->
        Mbox.Entity.Middlebox i)

(* The candidate sets for a given exclusion list, as filtered views of
   the ranked lists.  Filtering commutes with the ranking sort (the
   order is strict: distance, then the unique id), so this is
   element-for-element what ranking the filtered offering directly
   would produce.  Raises [Invalid_argument] exactly where a from-
   scratch computation would. *)
let sets_for dep ~k ~excluded ranked =
  let sets = Hashtbl.create 256 in
  let is_excluded id = List.mem id excluded in
  let functions = Deployment.functions dep in
  let entities = entities_of dep in
  List.iter
    (fun nf ->
      let offering =
        List.filter
          (fun (m : Mbox.Middlebox.t) -> not (is_excluded m.id))
          (Deployment.middleboxes_of dep nf)
      in
      if offering = [] then
        invalid_arg
          ("Candidate.compute: no middlebox implements "
          ^ Policy.Action.nf_to_string nf);
      let kn = k nf in
      if kn < 1 then invalid_arg "Candidate.compute: k must be >= 1";
      let kn = min kn (List.length offering) in
      List.iter
        (fun entity ->
          if not (implements dep entity nf) then begin
            let ranked_full =
              Hashtbl.find ranked (Mbox.Entity.hash_key entity, nf)
            in
            let live =
              List.filter
                (fun (m : Mbox.Middlebox.t) -> not (is_excluded m.id))
                ranked_full
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: rest -> x :: take (n - 1) rest
            in
            Hashtbl.replace sets (Mbox.Entity.hash_key entity, nf) (take kn live)
          end)
        entities)
    functions;
  sets

let compute ?(exclude = []) dep ~k =
  let ranked = Hashtbl.create 256 in
  let functions = Deployment.functions dep in
  let entities = entities_of dep in
  List.iter
    (fun nf ->
      let offering = Deployment.middleboxes_of dep nf in
      List.iter
        (fun entity ->
          if not (implements dep entity nf) then begin
            let sorted =
              List.sort
                (fun (a : Mbox.Middlebox.t) (b : Mbox.Middlebox.t) ->
                  let da = Deployment.distance dep entity (Mbox.Entity.Middlebox a.id)
                  and db = Deployment.distance dep entity (Mbox.Entity.Middlebox b.id) in
                  match compare da db with 0 -> compare a.id b.id | c -> c)
                offering
            in
            Hashtbl.replace ranked (Mbox.Entity.hash_key entity, nf) sorted
          end)
        entities)
    functions;
  let sets = sets_for dep ~k ~excluded:exclude ranked in
  { deployment = dep; k; excluded = exclude; ranked; sets;
    fast = fast_of_sets dep sets }

let with_excluded t exclude =
  match sets_for t.deployment ~k:t.k ~excluded:exclude t.ranked with
  | exception Invalid_argument e -> Error e
  | sets ->
    Ok { t with excluded = exclude; sets;
         fast = fast_of_sets t.deployment sets }

let excluded t = t.excluded

let get t entity nf =
  if implements t.deployment entity nf then
    invalid_arg "Candidate.get: entity implements the function itself";
  let slot = nf_slot nf in
  if slot >= 0 then begin
    let idx = (Mbox.Entity.hash_key entity * 4) + slot in
    if idx < Array.length t.fast then
      match t.fast.(idx) with Some l -> l | None -> raise Not_found
    else raise Not_found
  end
  else
    match Hashtbl.find_opt t.sets (Mbox.Entity.hash_key entity, nf) with
    | Some l -> l
    | None -> raise Not_found

let closest t entity nf =
  match get t entity nf with
  | [] -> assert false (* compute guarantees non-empty sets *)
  | m :: _ -> m

let fingerprint t entity =
  let functions = List.sort Policy.Action.compare_nf (Deployment.functions t.deployment) in
  List.concat_map
    (fun nf ->
      if implements t.deployment entity nf then []
      else
        let ids = List.map (fun (m : Mbox.Middlebox.t) -> m.id) (get t entity nf) in
        -1 :: ids)
    functions

let equal a b =
  let dump t =
    Hashtbl.fold
      (fun (ek, nf) members acc ->
        ((ek, nf), List.map (fun (m : Mbox.Middlebox.t) -> m.id) members) :: acc)
      t.sets []
    |> List.sort compare
  in
  dump a = dump b

let deployment t = t.deployment
