type mode = Tunnel | Label

type admission =
  | Permit of int option
  | Unmatched
  | Chained of { rule_id : int; mode : mode }

type drop_reason =
  | Unroutable
  | Link_loss
  | Encap_at_subnet
  | Dead_mbox
  | No_candidate
  | Label_miss
  | No_label

type corrupt_kind =
  | Wrong_steer
  | Lost_entry
  | Poisoned
  | Lost_config
  | Resurrected

type corrupt_site =
  | Label_site of { mbox : int; src : Netpkt.Addr.t; label : int }
  | Cache_site of { proxy : int; flow : Netpkt.Flow.t }
  | Config_site of { dev : int }

type repair_action = Purged | Rebased | Reinstalled of int

let drop_reason_to_string = function
  | Unroutable -> "unroutable"
  | Link_loss -> "link loss"
  | Encap_at_subnet -> "encapsulated packet reached a subnet"
  | Dead_mbox -> "middlebox down"
  | No_candidate -> "no live candidate"
  | Label_miss -> "label-table miss"
  | No_label -> "plain packet at middlebox without label"

type t =
  | Admitted of {
      aid : int;
      time : float;
      flow : Netpkt.Flow.t;
      proxy : int;
      admission : admission;
      version : int;
      bytes : int;
      label : int option;
    }
  | Steered of {
      aid : int;
      time : float;
      entity : Mbox.Entity.t;
      rule_id : int;
      nf : Policy.Action.nf;
      version : int;
      view : int64;
      mbox : int;
    }
  | Enforced of { aid : int; time : float; mbox : int; nf : Policy.Action.nf }
  | Wp_served of { aid : int; time : float; mbox : int }
  | Delivered of { aid : int; time : float; bytes : int }
  | Dropped of { aid : int; time : float; reason : drop_reason }
  | Fragmented of { aid : int; time : float; extra : int }
  | Label_insert of {
      mbox : int;
      time : float;
      src : Netpkt.Addr.t;
      label : int;
      version : int;
    }
  | Label_hit of {
      mbox : int;
      time : float;
      src : Netpkt.Addr.t;
      label : int;
      version : int;
    }
  | Cache_insert of {
      proxy : int;
      time : float;
      flow : Netpkt.Flow.t;
      version : int;
    }
  | Ls_confirm of { proxy : int; time : float; flow : Netpkt.Flow.t }
  | Ls_teardown of { proxy : int; time : float; label : int }
  | Config_publish of { time : float; version : int }
  | Config_install of { dev : int; time : float; version : int }
  | Quorum_propose of {
      time : float;
      version : int;
      replica : int;
      digest : int64;
    }
  | Quorum_accept of {
      time : float;
      version : int;
      replica : int;
      digest : int64;
    }
  | Quorum_commit of {
      time : float;
      version : int;
      replica : int;
      digest : int64;
    }
  | Leader_elect of { time : float; replica : int; previous : int }
  | Corrupt_inject of {
      time : float;
      cid : int;
      kind : corrupt_kind;
      site : corrupt_site;
      deadline : float;
    }
  | Corrupt_manifest of { time : float; cid : int; aid : int }
  | Corrupt_detect of { time : float; dev : int }
  | Corrupt_repair of {
      time : float;
      cid : int;
      dev : int;
      action : repair_action;
    }

let corrupt_kind_to_string = function
  | Wrong_steer -> "wrong-steer"
  | Lost_entry -> "lost-entry"
  | Poisoned -> "poisoned"
  | Lost_config -> "lost-config"
  | Resurrected -> "resurrected"

let corrupt_site_to_string = function
  | Label_site { mbox; src; label } ->
    Printf.sprintf "mbox %d label <%s|%d>" mbox (Netpkt.Addr.to_string src) label
  | Cache_site { proxy; flow } ->
    Printf.sprintf "proxy %d flow %s" proxy (Netpkt.Flow.to_string flow)
  | Config_site { dev } -> Printf.sprintf "device %d config" dev

let repair_action_to_string = function
  | Purged -> "purged"
  | Rebased -> "rebased"
  | Reinstalled v -> Printf.sprintf "reinstalled v%d" v

let admission_to_string = function
  | Permit None -> "permit (cached)"
  | Permit (Some id) -> Printf.sprintf "permit (rule %d)" id
  | Unmatched -> "unmatched"
  | Chained { rule_id; mode = Tunnel } ->
    Printf.sprintf "chained rule %d, tunnelled" rule_id
  | Chained { rule_id; mode = Label } ->
    Printf.sprintf "chained rule %d, label-switched" rule_id

let describe = function
  | Admitted { aid; time; flow; proxy; admission; version; bytes; label } ->
    Printf.sprintf "t=%.3f pkt#%d admitted at proxy %d: %s, %s, v%d, %dB%s"
      time aid proxy
      (Netpkt.Flow.to_string flow)
      (admission_to_string admission)
      version bytes
      (match label with None -> "" | Some l -> Printf.sprintf ", label %d" l)
  | Steered { aid; time; entity; rule_id; nf; version; view; mbox } ->
    Printf.sprintf
      "t=%.3f pkt#%d steered at %s: rule %d next %s -> mbox %d (v%d%s)" time
      aid
      (Mbox.Entity.to_string entity)
      rule_id
      (Policy.Action.nf_to_string nf)
      mbox version
      (if view = 0L then "" else Printf.sprintf ", view %Lx" view)
  | Enforced { aid; time; mbox; nf } ->
    Printf.sprintf "t=%.3f pkt#%d enforced at mbox %d (%s)" time aid mbox
      (Policy.Action.nf_to_string nf)
  | Wp_served { aid; time; mbox } ->
    Printf.sprintf "t=%.3f pkt#%d served from web-proxy cache at mbox %d" time
      aid mbox
  | Delivered { aid; time; bytes } ->
    Printf.sprintf "t=%.3f pkt#%d delivered (%dB)" time aid bytes
  | Dropped { aid; time; reason } ->
    Printf.sprintf "t=%.3f pkt#%d dropped: %s" time aid
      (drop_reason_to_string reason)
  | Fragmented { aid; time; extra } ->
    Printf.sprintf "t=%.3f pkt#%d fragmented (+%d fragments)" time aid extra
  | Label_insert { mbox; time; src; label; version } ->
    Printf.sprintf "t=%.3f mbox %d installed label <%s|%d> (v%d)" time mbox
      (Netpkt.Addr.to_string src)
      label version
  | Label_hit { mbox; time; src; label; version } ->
    Printf.sprintf "t=%.3f mbox %d hit label <%s|%d> (v%d)" time mbox
      (Netpkt.Addr.to_string src)
      label version
  | Cache_insert { proxy; time; flow; version } ->
    Printf.sprintf "t=%.3f proxy %d cached %s (v%d)" time proxy
      (Netpkt.Flow.to_string flow)
      version
  | Ls_confirm { proxy; time; flow } ->
    Printf.sprintf "t=%.3f proxy %d confirmed label path for %s" time proxy
      (Netpkt.Flow.to_string flow)
  | Ls_teardown { proxy; time; label } ->
    Printf.sprintf "t=%.3f proxy %d tore down label %d" time proxy label
  | Config_publish { time; version } ->
    Printf.sprintf "t=%.3f controller published config v%d" time version
  | Config_install { dev; time; version } ->
    Printf.sprintf "t=%.3f device %d installed config v%d" time dev version
  | Quorum_propose { time; version; replica; digest } ->
    Printf.sprintf "t=%.3f replica %d proposed config v%d (%Lx)" time replica
      version digest
  | Quorum_accept { time; version; replica; digest } ->
    Printf.sprintf "t=%.3f replica %d accepted config v%d (%Lx)" time replica
      version digest
  | Quorum_commit { time; version; replica; digest } ->
    Printf.sprintf "t=%.3f replica %d committed config v%d (%Lx)" time replica
      version digest
  | Leader_elect { time; replica; previous } ->
    Printf.sprintf "t=%.3f replica %d elected leader (was %d)" time replica
      previous
  | Corrupt_inject { time; cid; kind; site; deadline } ->
    Printf.sprintf "t=%.3f corruption #%d injected: %s at %s (repair due %s)"
      time cid
      (corrupt_kind_to_string kind)
      (corrupt_site_to_string site)
      (if Float.is_finite deadline then Printf.sprintf "t=%.3f" deadline
       else "never: sweep disabled")
  | Corrupt_manifest { time; cid; aid } ->
    if aid >= 0 then
      Printf.sprintf "t=%.3f corruption #%d manifested on pkt#%d" time cid aid
    else Printf.sprintf "t=%.3f corruption #%d manifested" time cid
  | Corrupt_detect { time; dev } ->
    Printf.sprintf "t=%.3f anti-entropy sweep detected digest mismatch at device %d"
      time dev
  | Corrupt_repair { time; cid; dev; action } ->
    Printf.sprintf "t=%.3f corruption #%d repaired at device %d (%s)" time cid
      dev
      (repair_action_to_string action)

let pp ppf t = Format.pp_print_string ppf (describe t)
