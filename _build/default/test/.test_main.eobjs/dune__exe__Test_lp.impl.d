test/test_lp.ml: Alcotest Array Gen List Lp Printf QCheck QCheck_alcotest Test
