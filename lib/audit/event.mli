(** Structured observations of one packet-simulator run.

    [Sim.Pktsim] emits one event per semantically meaningful step of a
    packet's life — admission at its policy proxy, every steering
    decision, every middlebox that processed it, its terminal fate —
    plus the control-plane mutations (label-table installs, flow-cache
    installs, configuration publishes and per-device installs) the
    dependability invariants are stated over.  Emission is a pure
    side-channel: producing events draws no randomness and schedules
    no simulator work, so an audited run is bit-identical to an
    unaudited one in every other statistic.

    [aid] is the packet's audit identity: the value of the simulator's
    injected-packet counter when the packet entered, carried with the
    packet across tunnel legs, label-switched legs and header
    rewrites. *)

type mode =
  | Tunnel  (** IP-over-IP leg by leg (Sec. III.D) *)
  | Label   (** established label-switched path (Sec. III.E) *)

type admission =
  | Permit of int option  (** permit rule id when known *)
  | Unmatched             (** no rule matched: default-allow *)
  | Chained of { rule_id : int; mode : mode }

type drop_reason =
  | Unroutable
  | Link_loss
  | Encap_at_subnet
  | Dead_mbox
  | No_candidate
  | Label_miss
  | No_label

val drop_reason_to_string : drop_reason -> string

type corrupt_kind =
  | Wrong_steer   (** label entry rewritten to steer to the wrong device *)
  | Lost_entry    (** label entry silently vanished *)
  | Poisoned      (** flow-cache entry's admission decision rewritten *)
  | Lost_config   (** config install silently regressed by one version *)
  | Resurrected   (** purged stale label entry silently reappeared *)

type corrupt_site =
  | Label_site of { mbox : int; src : Netpkt.Addr.t; label : int }
  | Cache_site of { proxy : int; flow : Netpkt.Flow.t }
  | Config_site of { dev : int }

type repair_action =
  | Purged  (** the offending entry was located by checksum and evicted *)
  | Rebased
      (** the digest was rebased over clean state (the corrupt entry had
          already left the table, e.g. by expiry or a silent drop) *)
  | Reinstalled of int  (** a lost config install was re-pushed *)

val corrupt_kind_to_string : corrupt_kind -> string
val corrupt_site_to_string : corrupt_site -> string
val repair_action_to_string : repair_action -> string

type t =
  | Admitted of {
      aid : int;
      time : float;
      flow : Netpkt.Flow.t;
      proxy : int;
      admission : admission;
      version : int;  (** configuration version that admitted the flow *)
      bytes : int;    (** size of the (inner) packet *)
      label : int option;
    }
  | Steered of {
      aid : int;
      time : float;
      entity : Mbox.Entity.t;
      rule_id : int;
      nf : Policy.Action.nf;
      version : int;  (** configuration version the decision used *)
      view : int64;
          (** signature of the believed-failed set the decision's
              liveness filter saw; 0 when no filtering applied *)
      mbox : int;
    }
  | Enforced of { aid : int; time : float; mbox : int; nf : Policy.Action.nf }
  | Wp_served of { aid : int; time : float; mbox : int }
  | Delivered of { aid : int; time : float; bytes : int }
  | Dropped of { aid : int; time : float; reason : drop_reason }
  | Fragmented of { aid : int; time : float; extra : int }
      (** [extra] fragments beyond the first on one link crossing *)
  | Label_insert of {
      mbox : int;
      time : float;
      src : Netpkt.Addr.t;
      label : int;
      version : int;
    }
  | Label_hit of {
      mbox : int;
      time : float;
      src : Netpkt.Addr.t;
      label : int;
      version : int;  (** version tag of the entry that was hit *)
    }
  | Cache_insert of {
      proxy : int;
      time : float;
      flow : Netpkt.Flow.t;
      version : int;
    }
  | Ls_confirm of { proxy : int; time : float; flow : Netpkt.Flow.t }
  | Ls_teardown of { proxy : int; time : float; label : int }
  | Config_publish of { time : float; version : int }
  | Config_install of { dev : int; time : float; version : int }
      (** [dev] indexes devices flat: proxies first, then middleboxes
          (see {!Sim.Controlplane.device_of_entity}) *)
  | Quorum_propose of {
      time : float;
      version : int;
      replica : int;  (** proposing leader *)
      digest : int64;  (** {!Sdm.Controller.fingerprint} of the candidate *)
    }
  | Quorum_accept of {
      time : float;
      version : int;
      replica : int;  (** voting acceptor *)
      digest : int64;
    }
  | Quorum_commit of {
      time : float;
      version : int;
      replica : int;  (** replica learning the commit *)
      digest : int64;
    }
      (** Emitted once per replica per committed version: by the leader
          at quorum, by every other replica when the commit notice
          reaches it over the lossy control channel. *)
  | Leader_elect of { time : float; replica : int; previous : int }
  | Corrupt_inject of {
      time : float;
      cid : int;
      kind : corrupt_kind;
      site : corrupt_site;
      deadline : float;
          (** latest time a repair may arrive without violating the
              Repair invariant; infinite when the sweep is disabled *)
    }
      (** Ground truth from the fault injector: corruption [cid] was
          planted at [site].  Arms the checker's Repair invariant. *)
  | Corrupt_manifest of { time : float; cid : int; aid : int }
      (** The corrupted state influenced the data plane.  [aid] names
          the packet that hit it (the checker excuses that packet's
          chain, which the corruption may have derailed); -1 for
          manifestations not tied to one packet (a regressed config
          steering under stale weights). *)
  | Corrupt_detect of { time : float; dev : int }
      (** The anti-entropy sweep found the device's incremental digest
          disagreeing with the recomputed one. *)
  | Corrupt_repair of {
      time : float;
      cid : int;
      dev : int;
      action : repair_action;
    }

val admission_to_string : admission -> string

val describe : t -> string
(** One human-readable line — the unit the per-packet hop-history
    traces attached to violations are built from. *)

val pp : Format.formatter -> t -> unit
