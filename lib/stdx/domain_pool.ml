(* A batch of work shared by every domain: items [0, hi) handed out in
   [chunk]-sized runs of consecutive indices from one atomic cursor.
   Chunking keeps contention on the cursor negligible while runs stay
   small enough to balance uneven per-item cost. *)
type batch = {
  run : int -> unit; (* process item i; never raises (wrapped) *)
  hi : int;
  next : int Atomic.t;
  chunk : int;
}

type t = {
  total : int; (* parallelism, caller included *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work : Condition.t; (* workers: a new batch or shutdown *)
  finished : Condition.t; (* caller: all workers left the batch *)
  mutable batch : batch option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
}

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let drain batch =
  let rec go () =
    let i = Atomic.fetch_and_add batch.next batch.chunk in
    if i < batch.hi then begin
      let stop = min batch.hi (i + batch.chunk) in
      for j = i to stop - 1 do
        batch.run j
      done;
      go ()
    end
  in
  go ()

(* Each worker alternates: wait for a generation bump, drain the
   batch, report done.  The batch pointer is only read after observing
   the bump under the mutex, and the caller only clears it after
   [active] returns to 0, so the Option.get cannot race. *)
let rec worker t gen =
  Mutex.lock t.m;
  while t.generation = gen && not t.stop do
    Condition.wait t.work t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    let batch = Option.get t.batch in
    Mutex.unlock t.m;
    drain batch;
    Mutex.lock t.m;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.signal t.finished;
    Mutex.unlock t.m;
    worker t gen
  end

let create ?jobs () =
  let total = match jobs with None -> default_jobs () | Some j -> j in
  if total < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      total;
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      generation = 0;
      active = 0;
      stop = false;
    }
  in
  t.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let jobs t = t.total

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let map_pool t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if Array.length t.workers = 0 then Array.map f arr
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    (* ~8 chunks per domain: coarse enough that the cursor is cold,
       fine enough that one slow item cannot strand a whole stripe. *)
    let chunk = max 1 (n / (8 * t.total)) in
    let run i =
      match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set error None (Some (e, bt)));
        (* Abandon the remaining queue: nobody will read the results. *)
        Atomic.set next n
    in
    let batch = { run; hi = n; next; chunk } in
    Mutex.lock t.m;
    t.batch <- Some batch;
    t.active <- Array.length t.workers;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    drain batch;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.finished t.m
    done;
    t.batch <- None;
    Mutex.unlock t.m;
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f arr =
  let j = match jobs with None -> default_jobs () | Some j -> j in
  if j < 1 then invalid_arg "Domain_pool.map: jobs must be >= 1";
  let j = min j (max 1 (Array.length arr)) in
  if j = 1 then Array.map f arr
  else begin
    let t = create ~jobs:j () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_pool t f arr)
  end
