type policy_class = Many_to_one | One_to_many | One_to_one

let class_chain = function
  | Many_to_one -> Policy.Action.[ FW; IDS ]
  | One_to_many -> Policy.Action.[ FW; IDS; WP ]
  | One_to_one -> Policy.Action.[ IDS; TM ]

let class_name = function
  | Many_to_one -> "many-to-one"
  | One_to_many -> "one-to-many"
  | One_to_one -> "one-to-one"

type flow_spec = {
  id : int;
  flow : Netpkt.Flow.t;
  src_proxy : int;
  dst_proxy : int;
  rule_id : int option;
  intended_class : policy_class;
  packets : int;
  packet_bytes : int;
}

type t = {
  rules : Policy.Rule.t list;
  flows : flow_spec array;
  total_packets : int;
}

(* Service ports: distinct ranges per class keep the generated rules
   from capturing each other's traffic more than realism requires. *)
let m2o_port i = 1024 + i
let o2o_port i = 2048 + i

type proto_policy = {
  p_class : policy_class option;
  desc : Policy.Descriptor.t;
  actions : Policy.Action.t;
  (* Concrete endpoints a matching flow should use; [None] = draw at
     random from all proxies. *)
  fixed_src : int option;
  fixed_dst : int option;
  dport : int;
}

let generate_protos ~deployment ~per_class ~rng =
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  if n_proxies < 2 then invalid_arg "Workload: need at least two proxies";
  let subnet i = Sdm.Deployment.subnet_of deployment i in
  let pick () = Stdx.Rng.int rng n_proxies in
  let pick_other s =
    let rec go () =
      let d = pick () in
      if d = s then go () else d
    in
    go ()
  in
  let m2o =
    List.init per_class (fun i ->
        let d = pick () in
        let port = m2o_port i in
        {
          p_class = Some Many_to_one;
          desc =
            Policy.Descriptor.make ~dst:(subnet d)
              ~dport:(Policy.Descriptor.Port port) ();
          actions = class_chain Many_to_one;
          fixed_src = None;
          fixed_dst = Some d;
          dport = port;
        })
  in
  let o2m =
    List.concat
      (List.init per_class (fun _ ->
           let s = pick () in
           let forward =
             {
               p_class = Some One_to_many;
               desc =
                 Policy.Descriptor.make ~src:(subnet s)
                   ~dport:(Policy.Descriptor.Port 80) ();
               actions = class_chain One_to_many;
               fixed_src = Some s;
               fixed_dst = None;
               dport = 80;
             }
           in
           (* Companion policy for the return web traffic (Sec. IV.A):
              the chain reversed, matching responses from port 80. *)
           let return_ =
             {
               p_class = None;
               desc =
                 Policy.Descriptor.make ~dst:(subnet s)
                   ~sport:(Policy.Descriptor.Port 80) ();
               actions = Policy.Action.[ WP; IDS; FW ];
               fixed_src = None;
               fixed_dst = Some s;
               dport = 0;
             }
           in
           [ forward; return_ ]))
  in
  let o2o =
    List.init per_class (fun i ->
        let s = pick () in
        let d = pick_other s in
        let port = o2o_port i in
        {
          p_class = Some One_to_one;
          desc =
            Policy.Descriptor.make ~src:(subnet s) ~dst:(subnet d)
              ~dport:(Policy.Descriptor.Port port) ();
          actions = class_chain One_to_one;
          fixed_src = Some s;
          fixed_dst = Some d;
          dport = port;
        })
  in
  m2o @ o2m @ o2o

let generate_rules ~deployment ~per_class ~rng =
  let protos = generate_protos ~deployment ~per_class ~rng in
  List.mapi
    (fun id proto ->
      ( Policy.Rule.make ~id ~descriptor:proto.desc ~actions:proto.actions,
        proto.p_class ))
    protos

(* Trimodal packet sizes: 40 B pure ACKs, 576 B legacy datagrams,
   1500 B full-MTU data.  Only the fragmentation ablation cares. *)
let draw_packet_bytes rng =
  let u = Stdx.Rng.float rng 1.0 in
  if u < 0.4 then 40 else if u < 0.5 then 576 else 1500

(* The generator core: one sequential RNG across the whole flow
   population (power-law draw, class mix, endpoint and port draws all
   advance the same stream — the pinned oracles depend on this exact
   sequence), streamed through [emit] one flow at a time so callers
   choose their own storage.  [generate] materialises a heap array;
   [generate_packed] writes straight into an off-heap store and never
   holds more than one flow record live. *)
let generate_seq ~deployment ?(per_class = 5) ?(seed = 42) ?rule_seed ?class_mix
    ~flows ~emit () =
  (* Policies and flows draw from separate streams so a volume sweep
     can scale traffic while holding the policy set fixed. *)
  let rule_seed = Option.value ~default:seed rule_seed in
  let rng_rules = Stdx.Rng.create rule_seed in
  let rng = Stdx.Rng.create (seed + 0x5D) in
  let protos = generate_protos ~deployment ~per_class ~rng:rng_rules in
  let rules =
    List.mapi
      (fun id p -> Policy.Rule.make ~id ~descriptor:p.desc ~actions:p.actions)
      protos
  in
  let trie = Policy.Trie.build rules in
  let by_class cls =
    List.filter (fun p -> p.p_class = Some cls) protos |> Array.of_list
  in
  let classes =
    [| (Many_to_one, by_class Many_to_one);
       (One_to_many, by_class One_to_many);
       (One_to_one, by_class One_to_one) |]
  in
  Array.iter
    (fun (cls, ps) ->
      if Array.length ps = 0 then
        invalid_arg ("Workload.generate: no policies in class " ^ class_name cls))
    classes;
  let n_proxies = Array.length deployment.Sdm.Deployment.proxies in
  (* Calibrated so that 30k flows ~ 1M packets, as in the paper. *)
  let sizes = Stdx.Power_law.calibrate ~lo:1 ~hi:5000 ~mean:(1e6 /. 30e3) in
  let host rng proxy =
    (* A random host inside the stub subnet, skipping .0 and .1. *)
    let subnet = Sdm.Deployment.subnet_of deployment proxy in
    Netpkt.Addr.Prefix.nth_addr subnet (2 + Stdx.Rng.int rng 250)
  in
  let pick_proxy () = Stdx.Rng.int rng n_proxies in
  let pick_other s =
    let rec go () =
      let d = pick_proxy () in
      if d = s then go () else d
    in
    go ()
  in
  let total_packets = ref 0 in
  let pick_class =
    match class_mix with
    | None -> fun id -> classes.(id mod 3)
    | Some (a, b, c) ->
      if a < 0.0 || b < 0.0 || c < 0.0 || a +. b +. c <= 0.0 then
        invalid_arg "Workload.generate: bad class mix";
      let total = a +. b +. c in
      fun _ ->
        let u = Stdx.Rng.float rng total in
        if u < a then classes.(0) else if u < a +. b then classes.(1) else classes.(2)
  in
  let make_flow id =
    let cls, ps = pick_class id in
    let proto = Stdx.Rng.choose rng ps in
    let src_proxy, dst_proxy =
      match (proto.fixed_src, proto.fixed_dst) with
      | Some s, Some d -> (s, d)
      | Some s, None -> (s, pick_other s)
      | None, Some d -> (pick_other d, d)
      | None, None -> assert false
    in
    let flow =
      Netpkt.Flow.make ~src:(host rng src_proxy) ~dst:(host rng dst_proxy)
        ~proto:6
        ~sport:(20000 + Stdx.Rng.int rng 40000)
        ~dport:proto.dport
    in
    let rule_id =
      Option.map (fun r -> r.Policy.Rule.id) (Policy.Trie.first_match trie flow)
    in
    let packets = Stdx.Power_law.sample sizes rng in
    total_packets := !total_packets + packets;
    {
      id;
      flow;
      src_proxy;
      dst_proxy;
      rule_id;
      intended_class = cls;
      packets;
      packet_bytes = draw_packet_bytes rng;
    }
  in
  for id = 0 to flows - 1 do
    emit (make_flow id)
  done;
  (rules, !total_packets)

let generate ~deployment ?per_class ?seed ?rule_seed ?class_mix ~flows () =
  (* Allocate the array on the first flow (no dummy element needed);
     ids are emitted in ascending order, so every slot gets written. *)
  let arr = ref [||] in
  let emit fs =
    if Array.length !arr = 0 then arr := Array.make flows fs
    else !arr.(fs.id) <- fs
  in
  let rules, total_packets =
    generate_seq ~deployment ?per_class ?seed ?rule_seed ?class_mix ~flows ~emit
      ()
  in
  { rules; flows = !arr; total_packets }

(* Top-level so the per-classification lookup closes over nothing:
   [List.find_opt (fun r -> ...)] would allocate a closure for every
   enforced flow on the packet fast path. *)
let rec find_rule_by_id id = function
  | [] -> None
  | r :: rest ->
    if r.Policy.Rule.id = id then Some r else find_rule_by_id id rest

(* ---- Packed per-flow state ---------------------------------------- *)

(* Every flow_spec field is a small integer (addresses are 32-bit ints,
   ports 16-bit, packet counts power-law-bounded), so a flow packs into
   three native ints in an off-heap Bigarray: 24 bytes per flow against
   ~120 heap bytes for the record pair, none of it scanned by the GC.
   Layout (bit offsets within each word):
     w0 = src(32) << 24 | sport(16) << 8 | proto(8)
     w1 = dst(32) << 29 | dport(16) << 13 | class(2) << 11 | bytes(11)
     w2 = packets(20) << 42 | (rule_id+1)(20) << 22
        | src_proxy(11) << 11 | dst_proxy(11)
   Each word stays under 62 bits, inside OCaml's native int range. *)
module Packed = struct
  type store = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type packed = {
    rules : Policy.Rule.t list;
    store : store;
    n_flows : int;
    total_packets : int;
  }

  let words_per_flow = 3
  let bytes_per_flow = words_per_flow * 8

  let class_code = function
    | Many_to_one -> 0
    | One_to_many -> 1
    | One_to_one -> 2

  let class_of_code = function
    | 0 -> Many_to_one
    | 1 -> One_to_many
    | _ -> One_to_one

  let check_field name v bits =
    if v < 0 || v >= 1 lsl bits then
      invalid_arg
        (Printf.sprintf "Workload.Packed: %s = %d exceeds %d bits" name v bits)

  let set (store : store) fs =
    check_field "packets" fs.packets 20;
    check_field "rule_id" (Option.value ~default:(-1) fs.rule_id + 1) 20;
    check_field "src_proxy" fs.src_proxy 11;
    check_field "dst_proxy" fs.dst_proxy 11;
    check_field "packet_bytes" fs.packet_bytes 11;
    let f = fs.flow in
    let b = fs.id * words_per_flow in
    store.{b} <-
      (f.Netpkt.Flow.src lsl 24) lor (f.Netpkt.Flow.sport lsl 8)
      lor f.Netpkt.Flow.proto;
    store.{b + 1} <-
      (f.Netpkt.Flow.dst lsl 29)
      lor (f.Netpkt.Flow.dport lsl 13)
      lor (class_code fs.intended_class lsl 11)
      lor fs.packet_bytes;
    store.{b + 2} <-
      (fs.packets lsl 42)
      lor ((Option.value ~default:(-1) fs.rule_id + 1) lsl 22)
      lor (fs.src_proxy lsl 11) lor fs.dst_proxy

  let get t i =
    if i < 0 || i >= t.n_flows then invalid_arg "Workload.Packed.get";
    let b = i * words_per_flow in
    let w0 = t.store.{b} and w1 = t.store.{b + 1} and w2 = t.store.{b + 2} in
    let rule = (w2 lsr 22) land 0xFFFFF in
    {
      id = i;
      flow =
        {
          Netpkt.Flow.src = (w0 lsr 24) land 0xFFFFFFFF;
          dst = (w1 lsr 29) land 0xFFFFFFFF;
          proto = w0 land 0xFF;
          sport = (w0 lsr 8) land 0xFFFF;
          dport = (w1 lsr 13) land 0xFFFF;
        };
      src_proxy = (w2 lsr 11) land 0x7FF;
      dst_proxy = w2 land 0x7FF;
      rule_id = (if rule = 0 then None else Some (rule - 1));
      intended_class = class_of_code ((w1 lsr 11) land 0x3);
      packets = (w2 lsr 42) land 0xFFFFF;
      packet_bytes = w1 land 0x7FF;
    }

  let rule_of t fs =
    match fs.rule_id with
    | None -> None
    | Some id -> find_rule_by_id id t.rules
end

let generate_packed ~deployment ?per_class ?seed ?rule_seed ?class_mix ~flows ()
    =
  let store =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (flows * Packed.words_per_flow)
  in
  let rules, total_packets =
    generate_seq ~deployment ?per_class ?seed ?rule_seed ?class_mix ~flows
      ~emit:(Packed.set store) ()
  in
  { Packed.rules; store; n_flows = flows; total_packets }

let measure t =
  let m = Sdm.Measurement.create () in
  Array.iter
    (fun fs ->
      match fs.rule_id with
      | None -> ()
      | Some rule ->
        Sdm.Measurement.add m ~src:fs.src_proxy ~dst:fs.dst_proxy ~rule
          (float_of_int fs.packets))
    t.flows;
  m

let rule_of t fs =
  match fs.rule_id with
  | None -> None
  | Some id -> find_rule_by_id id t.rules
