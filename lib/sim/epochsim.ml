type epoch_metrics = {
  epoch : int;
  flows : int;
  packets : int;
  stale_lb_max : float;
  clairvoyant_lb_max : float;
  hp_max : float;
  staleness_gap : float;
}

type report = { ep_rows : epoch_metrics list; ep_events : int }

(* Rotating class skew: each epoch one policy class carries most of
   the traffic, shifting which middlebox types are hot. *)
let mix_for epoch =
  match epoch mod 3 with
  | 0 -> (0.6, 0.2, 0.2)
  | 1 -> (0.2, 0.6, 0.2)
  | _ -> (0.2, 0.2, 0.6)

let volume_for ~base_flows epoch =
  let phase = float_of_int (epoch mod 4) /. 4.0 in
  int_of_float (float_of_int base_flows *. (0.75 +. (0.5 *. phase)))

let run ~deployment ?(epochs = 6) ?(base_flows = 60_000) ?(seed = 17) ?jobs
    ?shards () =
  if epochs < 1 then invalid_arg "Epochsim.run: need at least one epoch";
  let rules =
    (Workload.generate ~deployment ~seed ~flows:1 ()).Workload.rules
  in
  let configure kind =
    match Sdm.Controller.configure deployment ~rules kind with
    | Ok c -> c
    | Error e -> failwith ("Epochsim: " ^ e)
  in
  let hp_controller = configure Sdm.Controller.Hot_potato in
  let max_load result = Array.fold_left max 0.0 result.Flowsim.loads in
  let events = ref 0 in
  (* Epochs chain (the stale plan consumes the previous epoch's
     matrix), but within one epoch the three enforcement runs are
     independent and fan out across domains. *)
  let rec go epoch prev_traffic acc =
    if epoch >= epochs then List.rev acc
    else begin
      let flows = volume_for ~base_flows epoch in
      let workload =
        Workload.generate ~deployment ~seed:(seed + 1000 + epoch) ~rule_seed:seed
          ~class_mix:(mix_for epoch) ~flows ()
      in
      let traffic = Workload.measure workload in
      let stale_controller =
        match prev_traffic with
        | None -> hp_controller (* no measurement yet: hot-potato *)
        | Some t -> configure (Sdm.Controller.Load_balanced t)
      in
      let stale, clair, hp =
        let cell controller () = Flowsim.run ?shards ~controller ~workload () in
        match
          Array.to_list
            (Stdx.Domain_pool.map ?jobs
               (fun f -> f ())
               [|
                 cell stale_controller;
                 (fun () ->
                   let clair_controller =
                     configure (Sdm.Controller.Load_balanced traffic)
                   in
                   Flowsim.run ?shards ~controller:clair_controller ~workload ());
                 cell hp_controller;
               |])
        with
        | [ s; c; h ] -> (s, c, h)
        | _ -> assert false
      in
      events :=
        !events + stale.Flowsim.events + clair.Flowsim.events + hp.Flowsim.events;
      let stale_max = max_load stale and clair_max = max_load clair in
      let metrics =
        {
          epoch;
          flows;
          packets = workload.Workload.total_packets;
          stale_lb_max = stale_max;
          clairvoyant_lb_max = clair_max;
          hp_max = max_load hp;
          staleness_gap = (if clair_max > 0.0 then stale_max /. clair_max else 1.0);
        }
      in
      go (epoch + 1) (Some traffic) (metrics :: acc)
    end
  in
  let rows = go 0 None [] in
  { ep_rows = rows; ep_events = !events }
