test/test_ospf.ml: Alcotest Array Gen List Netgraph Ospf Printf QCheck QCheck_alcotest Stdx
