lib/netgraph/dot.ml: Format Graph List Printf Topology
