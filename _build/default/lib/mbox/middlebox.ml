type attachment = In_path | Off_path

type t = {
  id : int;
  nf : Policy.Action.nf;
  capacity : float;
  router : int;
  attachment : attachment;
  addr : Netpkt.Addr.t;
}

let make ~id ~nf ?(capacity = 1.0) ~router ?(attachment = Off_path) ~addr () =
  if capacity <= 0.0 then invalid_arg "Middlebox.make: capacity must be positive";
  if id < 0 then invalid_arg "Middlebox.make: negative id";
  { id; nf; capacity; router; attachment; addr }

let pp ppf t =
  Format.fprintf ppf "mbox%d(%s@r%d %s)" t.id
    (Policy.Action.nf_to_string t.nf)
    t.router
    (match t.attachment with In_path -> "in-path" | Off_path -> "off-path")
