lib/core/weights.mli: Mbox Policy
