lib/dvr/protocol.mli: Netgraph
