type entry = {
  actions : Action.t option;
  rule_id : int;
  label : int option;
  cfg_version : int;
  mutable ls_ready : bool;
  mutable last_used : float;
}

type stats = {
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable expirations : int;
  mutable evictions : int;
}

type t = {
  table : entry Netpkt.Flow.Table.t;
  timeout : float;
  capacity : int option;
  stats : stats;
}

let create ?(timeout = 60.0) ?capacity ?expected () =
  if timeout <= 0.0 then invalid_arg "Flow_cache.create: timeout must be positive";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Flow_cache.create: capacity must be >= 1"
  | _ -> ());
  (match expected with
  | Some e when e < 0 -> invalid_arg "Flow_cache.create: expected must be >= 0"
  | _ -> ());
  (* Initial bucket count: the caller's expected population, clamped
     by the capacity bound when there is one (a bounded cache can
     never hold more than [capacity] live entries). *)
  let hint =
    let e = match expected with None -> 256 | Some e -> max 16 e in
    match capacity with None -> e | Some c -> min e (max 16 c)
  in
  {
    table = Netpkt.Flow.Table.create hint;
    timeout;
    capacity;
    stats = { hits = 0; negative_hits = 0; misses = 0; expirations = 0; evictions = 0 };
  }

let lookup t ~now flow =
  match Netpkt.Flow.Table.find_opt t.table flow with
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None
  | Some entry ->
    if now -. entry.last_used > t.timeout then begin
      Netpkt.Flow.Table.remove t.table flow;
      t.stats.expirations <- t.stats.expirations + 1;
      t.stats.misses <- t.stats.misses + 1;
      None
    end
    else begin
      entry.last_used <- now;
      (match entry.actions with
      | None -> t.stats.negative_hits <- t.stats.negative_hits + 1
      | Some _ -> t.stats.hits <- t.stats.hits + 1);
      Some entry
    end

(* Bounded caches behave like a hardware hash table: when full, expired
   entries go first, then the least-recently-used live one. *)
let make_room t ~now flow =
  match t.capacity with
  | None -> ()
  | Some cap ->
    if
      Netpkt.Flow.Table.length t.table >= cap
      && not (Netpkt.Flow.Table.mem t.table flow)
    then begin
      let expired =
        Netpkt.Flow.Table.fold
          (fun f e acc -> if now -. e.last_used > t.timeout then f :: acc else acc)
          t.table []
      in
      List.iter (Netpkt.Flow.Table.remove t.table) expired;
      t.stats.expirations <- t.stats.expirations + List.length expired;
      while Netpkt.Flow.Table.length t.table >= cap do
        let victim =
          Netpkt.Flow.Table.fold
            (fun f e acc ->
              match acc with
              | Some (_, oldest) when oldest <= e.last_used -> acc
              | _ -> Some (f, e.last_used))
            t.table None
        in
        match victim with
        | Some (f, _) ->
          Netpkt.Flow.Table.remove t.table f;
          t.stats.evictions <- t.stats.evictions + 1
        | None -> assert false (* table non-empty while >= cap >= 1 *)
      done
    end

let insert t ~now flow ~rule_id ~actions ?label ?(cfg_version = 0) () =
  make_room t ~now flow;
  let entry =
    { actions = Some actions; rule_id; label; cfg_version; ls_ready = false;
      last_used = now }
  in
  Netpkt.Flow.Table.replace t.table flow entry;
  entry

let insert_negative t ~now flow =
  make_room t ~now flow;
  let entry =
    { actions = None; rule_id = -1; label = None; cfg_version = 0;
      ls_ready = false; last_used = now }
  in
  Netpkt.Flow.Table.replace t.table flow entry;
  entry

let mark_ls_ready t flow =
  match Netpkt.Flow.Table.find_opt t.table flow with
  | Some ({ actions = Some _; _ } as entry) ->
    entry.ls_ready <- true;
    true
  | Some { actions = None; _ } | None -> false

let purge t ~now =
  let expired =
    Netpkt.Flow.Table.fold
      (fun flow entry acc ->
        if now -. entry.last_used > t.timeout then flow :: acc else acc)
      t.table []
  in
  List.iter (Netpkt.Flow.Table.remove t.table) expired;
  let n = List.length expired in
  t.stats.expirations <- t.stats.expirations + n;
  n

let size t = Netpkt.Flow.Table.length t.table
let stats t = t.stats
let timeout t = t.timeout
