(* A day in the life of the SDM controller.

   An operational narrative chaining the whole API: bring the network
   up, measure an epoch, plan load-balanced enforcement, verify and
   price the configuration, survive traffic drift on stale weights,
   re-plan, lose a middlebox, fail over locally, re-optimize around the
   failure, and verify again.  Every transition prints the metric an
   operator would watch: the maximum middlebox load.

     dune exec examples/operations_day.exe *)

let max_load result = Array.fold_left max 0.0 result.Sim.Flowsim.loads

let step = ref 0

let report label value =
  incr step;
  Format.printf "%2d. %-58s max load %s@." !step label (Sim.Report.millions value)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  Format.printf "network: %a@.@." Netgraph.Topology.pp deployment.Sdm.Deployment.topo;

  (* 08:00 — first epoch arrives with no measurements: hot-potato. *)
  let epoch1 = Sim.Workload.generate ~deployment ~seed:101 ~flows:60_000 () in
  let rules = epoch1.Sim.Workload.rules in
  let configure ?failed kind =
    match Sdm.Controller.configure deployment ~rules ?failed kind with
    | Ok c -> c
    | Error e -> failwith e
  in
  let hp = configure Sdm.Controller.Hot_potato in
  report "08:00 epoch 1, no measurements yet (hot-potato)"
    (max_load (Sim.Flowsim.run ~controller:hp ~workload:epoch1 ()));

  (* 09:00 — the proxies reported; the controller plans LB weights. *)
  let traffic1 = Sim.Workload.measure epoch1 in
  let lb1 = configure (Sdm.Controller.Load_balanced traffic1) in
  (match Sdm.Verify.check lb1 with
  | Ok () -> ()
  | Error _ -> failwith "configuration failed verification");
  Format.printf "    config verified and priced: %a@."
    Sdm.Controller.pp_config_summary
    (Sdm.Controller.config_summary lb1);
  report "09:00 load-balanced weights deployed"
    (max_load (Sim.Flowsim.run ~controller:lb1 ~workload:epoch1 ()));

  (* 12:00 — traffic drifts (the one-to-many class surges); yesterday's
     weights are stale but still beat hot-potato. *)
  let epoch2 =
    Sim.Workload.generate ~deployment ~seed:202 ~rule_seed:101
      ~class_mix:(0.2, 0.6, 0.2) ~flows:70_000 ()
  in
  report "12:00 traffic drifts; stale weights"
    (max_load (Sim.Flowsim.run ~controller:lb1 ~workload:epoch2 ()));
  report "      (hot-potato would have given)"
    (max_load (Sim.Flowsim.run ~controller:hp ~workload:epoch2 ()));

  (* 13:00 — re-plan on the fresh matrix. *)
  let lb2 = configure (Sdm.Controller.Load_balanced (Sim.Workload.measure epoch2)) in
  report "13:00 re-planned on the noon measurements"
    (max_load (Sim.Flowsim.run ~controller:lb2 ~workload:epoch2 ()));

  (* 15:00 — the busiest IDS middlebox dies. *)
  let before = Sim.Flowsim.run ~controller:lb2 ~workload:epoch2 () in
  let ids = Sdm.Deployment.middleboxes_of deployment Policy.Action.IDS in
  let victim =
    List.fold_left
      (fun best (m : Mbox.Middlebox.t) ->
        if before.Sim.Flowsim.loads.(m.id) > before.Sim.Flowsim.loads.(best)
        then m.id
        else best)
      (List.hd ids).Mbox.Middlebox.id ids
  in
  Format.printf "    mbox%d (IDS) fails@." victim;
  let alive id = id <> victim in
  report "15:00 local fast failover (stale weights, survivors only)"
    (max_load (Sim.Flowsim.run ~alive ~controller:lb2 ~workload:epoch2 ()));

  (* 15:05 — the controller re-optimizes without the dead box. *)
  let lb3 =
    configure ~failed:[ victim ]
      (Sdm.Controller.Load_balanced (Sim.Workload.measure epoch2))
  in
  (match Sdm.Verify.check lb3 with
  | Ok () -> ()
  | Error _ -> failwith "post-failure configuration failed verification");
  let healed = Sim.Flowsim.run ~controller:lb3 ~workload:epoch2 () in
  assert (healed.Sim.Flowsim.loads.(victim) = 0.0);
  report "15:05 controller re-optimized around the failure (verified)"
    (max_load healed);

  (* 17:00 — a new policy lands; only the touched entities get pushes. *)
  let extra =
    Policy.Rule.make ~id:(List.length rules)
      ~descriptor:
        (Policy.Descriptor.make
           ~src:(Sdm.Deployment.subnet_of deployment 2)
           ~dport:(Policy.Descriptor.Port 443) ())
      ~actions:Policy.Action.[ FW; IDS ]
  in
  (match
     Sdm.Controller.update_rules lb3 ~rules:(rules @ [ extra ])
       (Sdm.Controller.Load_balanced (Sim.Workload.measure epoch2))
   with
  | Ok delta ->
    Format.printf
      "    17:00 policy added: %d entities re-pushed (%d rows added, %d \
       removed)@."
      delta.Sdm.Controller.entities_touched delta.Sdm.Controller.rows_added
      delta.Sdm.Controller.rows_removed
  | Error e -> failwith e);
  Format.printf "@.day over: enforcement never lapsed.@."
