lib/policy/descriptor.mli: Format Netpkt
