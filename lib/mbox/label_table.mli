(** Per-middlebox label tables (Sec. III.E).

    Keyed by ⟨source address | label⟩ — the concatenation the paper
    uses, which is unique because each proxy assigns labels that are
    locally unique and the source address survives along the chain.
    An entry records the flow's action list, the next-hop middlebox
    chosen when the first (tunnelled) packet passed by — label-switched
    packets must retrace the same middleboxes, since only those hold
    the entry — and, at the last middlebox of the chain, the original
    destination address to restore.

    Entries are soft state like the flow cache's: a table created with
    a [timeout] treats entries idle for longer than that as absent.
    The packet simulator recovers from an expired entry by tearing the
    label-switched path down to the proxy, which falls back to
    IP-over-IP and re-establishes it. *)

type key = { src : Netpkt.Addr.t; label : int }

type entry = {
  actions : Policy.Action.t;
  next : Netpkt.Addr.t option;  (** next middlebox; [None] = this is the last *)
  final_dst : Netpkt.Addr.t option;
      (** original destination, present iff [next = None] *)
  version : int;
      (** configuration version whose weights installed this entry —
          live reconfiguration expires entries more than one version
          behind the installed configuration *)
  mutable last_used : float;
}

type t

val create : ?timeout:float -> unit -> t
(** [timeout] defaults to infinity (no expiry). *)

val insert :
  t -> now:float -> ?version:int -> key ->
  actions:Policy.Action.t ->
  next:Netpkt.Addr.t option ->
  final_dst:Netpkt.Addr.t option ->
  unit
(** Raises [Invalid_argument] if [next]/[final_dst] are both set or
    both absent.  [version] defaults to 0 (static configuration). *)

val lookup : t -> now:float -> key -> entry option
(** Refreshes [last_used] on hit; an entry idle past the timeout is
    dropped and reported absent. *)

val size : t -> int

val remove : t -> key -> unit

val purge : t -> now:float -> int
(** Evict every expired entry; returns how many were dropped. *)

val purge_versions_below : t -> version:int -> int
(** Evict every entry whose [version] is below the given floor;
    returns how many were dropped.  Called when a device installs a
    new configuration version: only the adjacent (previous) version's
    entries stay staged, so flows admitted two or more versions ago
    fall back to path re-establishment instead of following weights
    the verifier never certified against the installed mix. *)
