lib/sim/flowsim.mli: Mbox Netpkt Policy Sdm Workload
