(** Traffic measurements reported by policy proxies.

    "Periodically, all policy proxies send their measured traffic
    volumes to the controller" (Sec. III.C).  The fundamental datum is
    T_{s,d,p} — the volume (packets per epoch) from source subnet [s]
    to destination subnet [d] matching policy [p]; the aggregates
    T_{s,p}, T_{d,p} and T_p that Eq. (2) consumes are folds of it. *)

type t

val create : unit -> t

val add : t -> src:int -> dst:int -> rule:int -> float -> unit
(** Accumulate volume for (source proxy, destination proxy, rule id).
    Raises [Invalid_argument] on negative volume. *)

val t_sdp : t -> src:int -> dst:int -> rule:int -> float
val t_sp : t -> src:int -> rule:int -> float
val t_dp : t -> dst:int -> rule:int -> float
val t_p : t -> rule:int -> float

val rules_with_traffic : t -> int list
(** Ascending rule ids with positive volume. *)

val sources_for : t -> rule:int -> (int * float) list
(** (source proxy, T_{s,p}) pairs with positive volume, ascending. *)

val destinations_for : t -> rule:int -> (int * float) list

val pairs_for : t -> rule:int -> (int * int * float) list
(** (s, d, T_{s,d,p}) triples with positive volume — the Eq. (1)
    granularity. *)

val total : t -> float
