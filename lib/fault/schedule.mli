(** Deterministic fault schedules for the packet-level simulator.

    A schedule is a time-sorted list of discrete fault events (middlebox
    crash/recovery, link fail/restore) plus two stationary loss
    processes: a per-link data-packet loss probability and a
    per-transmission control-packet loss probability.  Loss draws come
    from a dedicated RNG seeded with [loss_seed], independent of the
    workload seed, so the same schedule applied to the same run is
    bit-reproducible. *)

type event =
  | Mbox_crash of int  (** middlebox [id] goes down and loses all soft state *)
  | Mbox_recover of int  (** middlebox [id] comes back, empty-handed *)
  | Link_fail of int * int  (** link (u, v) goes down; OSPF reconverges *)
  | Link_restore of int * int  (** link (u, v) comes back; OSPF reconverges *)
  | Ctrl_crash of int
      (** controller replica [id] goes down: its in-flight pushes and
          proposals die; if it led, a deterministic re-election follows
          one detection delay later *)
  | Ctrl_recover of int
      (** controller replica [id] comes back with its durable acceptor
          state (accepted/committed versions) intact *)

type timed = { at : float; what : event }

type t = private {
  events : timed list;  (** sorted by [at], stable for equal times *)
  link_loss : float;  (** per-link data-packet loss probability, in [0, 1) *)
  control_loss : float;
      (** per-transmission control-packet loss probability, in [0, 1) *)
  loss_seed : int;  (** seed of the RNG driving the loss draws *)
}

val make :
  ?link_loss:float -> ?control_loss:float -> ?loss_seed:int -> timed list -> t
(** Build a schedule.  Events are stable-sorted by time.  Raises
    [Invalid_argument] on a non-finite or negative event time or a
    loss probability outside [0, 1) (NaN included).  Defaults: no
    losses, [loss_seed] = 1. *)

val empty : t
(** No events, no losses. *)

val is_empty : t -> bool

val has_link_events : t -> bool
(** True when the schedule contains a link fail or restore — the
    simulator then drives its routing tables through an OSPF session. *)

val validate :
  ?n_controllers:int ->
  n_mboxes:int ->
  link_exists:(int -> int -> bool) ->
  t ->
  (unit, string) result
(** Check the schedule against a concrete deployment: every middlebox
    id must be in [0, n_mboxes), every controller replica id in
    [0, n_controllers) (default 0 — controller events are only legal
    when the run declares replicas), every link must satisfy
    [link_exists], every event time must be finite, and, replaying the
    events in time order, a [Mbox_recover]/[Ctrl_recover] must be
    preceded by a crash of the same box/replica, a [Link_restore] by a
    failure of the same link, and nothing may fail twice without
    recovering in between.  Returns a human-readable description of
    the first offending event. *)

val crash_times : t -> (int * float) list
(** The (middlebox id, time) pairs of the crash events, in time order. *)

val event_to_string : event -> string
