(** Enforcement strategies: who handles the next network function.

    - {!Hot_potato}: always the closest middlebox implementing the
      function (Sec. III.B) — ignores load entirely.
    - {!Random_uniform}: a per-flow uniformly random member of the
      candidate set [M_x^e] (the paper's Rand baseline).
    - {!Load_balanced}: a member of [M_x^e] with probability
      proportional to the LP weights t_{e,p}(x,y) (Sec. III.C).

    All three are deterministic per flow — Rand and LB hash the flow
    identifier — so every packet of a flow visits the same middlebox
    sequence, as the flow cache and label switching require. *)

type t =
  | Hot_potato
  | Random_uniform
  | Load_balanced of Weights.t
  | Load_balanced_exact of Weights_sd.t * Weights.t
      (** Eq. (1) enforcement: per-(s,d) rows, with the aggregated
          table as fallback for pairs absent from the measurement *)

val name : t -> string
(** "HP", "Rand", "LB" or "LBx". *)

val next_hop_result :
  ?alive:(int -> bool) ->
  t ->
  Candidate.t ->
  Mbox.Entity.t ->
  rule:Policy.Rule.t ->
  nf:Policy.Action.nf ->
  Netpkt.Flow.t ->
  (Mbox.Middlebox.t, [ `No_live_candidate ]) result
(** The middlebox that should apply [nf] to [flow], decided at the
    given entity.  Load-balanced falls back to the closest middlebox
    when the LP assigned no volume to this (entity, rule, function)
    row — e.g. traffic that did not appear in the measured epoch.

    [alive] is the local fast-failover filter: candidates for which it
    returns [false] are skipped — HP moves to the next-closest live
    candidate, Rand re-draws uniformly among live candidates, LB
    renormalises the LP weights over the live ones.  This models the
    interval between a middlebox failure and the controller's
    re-configuration.  When every candidate is dead the outcome is
    [Error `No_live_candidate] — a policy violation for the caller to
    count, not a reason to kill the run.

    When [alive] is omitted, no filtering happens at all (candidate
    sets are non-empty by construction, so the result is always [Ok]);
    this is the allocation-free fast path the per-packet simulator
    relies on. *)

val next_hop :
  ?alive:(int -> bool) ->
  t ->
  Candidate.t ->
  Mbox.Entity.t ->
  rule:Policy.Rule.t ->
  nf:Policy.Action.nf ->
  Netpkt.Flow.t ->
  Mbox.Middlebox.t
(** Like {!next_hop_result}, but raises [Failure] if no live candidate
    remains — for callers that treat an emptied candidate set as a
    programming error. *)
