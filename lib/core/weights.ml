(* The enforcement plane probes this table once per load-balanced
   steering event, so the representation matters on the packet fast
   path: a (entity, rule, nf) tuple key is 4 minor words per probe.
   Built-in functions with non-negative rule ids — every row the LP
   emits — pack into two ints for [Stdx.Flat_table]; [Custom]
   functions and out-of-range rules keep a tuple-keyed side table. *)
type t = {
  flat : (int * float) array Stdx.Flat_table.t;
  slow : (int * int * Policy.Action.nf, (int * float) array) Hashtbl.t;
}

let nf_slot = function
  | Policy.Action.FW -> 0
  | Policy.Action.IDS -> 1
  | Policy.Action.WP -> 2
  | Policy.Action.TM -> 3
  | Policy.Action.Custom _ -> -1

let create () =
  { flat = Stdx.Flat_table.create ~initial:512 ();
    slow = Hashtbl.create 16 }

let set t entity ~rule ~nf row =
  Array.iter
    (fun (_, v) -> if v < 0.0 then invalid_arg "Weights.set: negative volume")
    row;
  let slot = nf_slot nf in
  if slot >= 0 && rule >= 0 then
    Stdx.Flat_table.replace t.flat (Mbox.Entity.hash_key entity)
      ((rule lsl 2) lor slot)
      row
  else Hashtbl.replace t.slow (Mbox.Entity.hash_key entity, rule, nf) row

let find t entity ~rule ~nf =
  let slot = nf_slot nf in
  if slot >= 0 && rule >= 0 then
    Stdx.Flat_table.find t.flat (Mbox.Entity.hash_key entity)
      ((rule lsl 2) lor slot)
  else Hashtbl.find_opt t.slow (Mbox.Entity.hash_key entity, rule, nf)

let entries t = Stdx.Flat_table.length t.flat + Hashtbl.length t.slow

let cells t =
  Stdx.Flat_table.fold
    (fun _ _ row acc -> acc + Array.length row)
    t.flat
    (Hashtbl.fold (fun _ row acc -> acc + Array.length row) t.slow 0)
