(** IPv4 addresses and CIDR prefixes.

    Addresses are 32-bit values carried in OCaml ints.  Prefixes are
    the matching primitive of policy traffic descriptors ("subnet a",
    wildcards) and also name the stub networks behind each policy
    proxy. *)

type t = int
(** An IPv4 address, 0 <= t < 2^32. *)

val of_string : string -> t
(** Dotted quad, e.g. ["128.40.1.2"].  Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string

val of_octets : int -> int -> int -> int -> t

module Prefix : sig
  type addr = t

  type t = { base : addr; len : int }
  (** Invariant: host bits of [base] are zero; 0 <= len <= 32. *)

  val make : addr -> int -> t
  (** Normalises the base (masks host bits).  Raises on a bad length. *)

  val of_string : string -> t
  (** ["128.40.0.0/16"]. *)

  val to_string : t -> string

  val any : t
  (** 0.0.0.0/0 — the wildcard. *)

  val is_any : t -> bool

  val contains : t -> addr -> bool

  val subsumes : t -> t -> bool
  (** [subsumes outer inner]: every address of [inner] is in [outer]. *)

  val overlaps : t -> t -> bool

  val first_addr : t -> addr
  val nth_addr : t -> int -> addr
  (** [nth_addr p i] is the i-th address of the prefix (for generating
      distinct hosts inside a stub network).  Raises if out of range
      for prefixes shorter than /32. *)

  val compare : t -> t -> int
end
