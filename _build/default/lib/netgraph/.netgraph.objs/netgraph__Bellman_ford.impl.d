lib/netgraph/bellman_ford.ml: Array Graph List
