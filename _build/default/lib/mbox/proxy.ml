type attachment = In_path | Off_path

type t = {
  id : int;
  subnet : Netpkt.Addr.Prefix.t;
  router : int;
  attachment : attachment;
  addr : Netpkt.Addr.t;
}

let make ~id ~subnet ~router ?(attachment = In_path) ~addr () =
  if id < 0 then invalid_arg "Proxy.make: negative id";
  { id; subnet; router; attachment; addr }

let pp ppf t =
  Format.fprintf ppf "proxy%d(%s@r%d)" t.id
    (Netpkt.Addr.Prefix.to_string t.subnet)
    t.router
