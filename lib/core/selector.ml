let nf_salt nf = Stdx.Xhash.string (Policy.Action.nf_to_string nf)

(* The salt of each built-in function is a constant; recomputing the
   string FNV on every steering decision would allocate on the
   per-packet fast path.  [Custom] stays on the slow path. *)
let fw_salt = Int64.to_int (nf_salt Policy.Action.FW)
let ids_salt = Int64.to_int (nf_salt Policy.Action.IDS)
let wp_salt = Int64.to_int (nf_salt Policy.Action.WP)
let tm_salt = Int64.to_int (nf_salt Policy.Action.TM)

let nf_salt_int = function
  | Policy.Action.FW -> fw_salt
  | Policy.Action.IDS -> ids_salt
  | Policy.Action.WP -> wp_salt
  | Policy.Action.TM -> tm_salt
  | Policy.Action.Custom s -> Int64.to_int (Stdx.Xhash.string s)

(* One non-allocating fold over the 5-tuple, the entity key and the
   salt — bit-identical to hashing the flow and folding the two salts
   with boxed [Int64] arithmetic, which is what this did before. *)
let flow_point flow ~entity ~nf =
  Stdx.Xhash.combine7_unit flow.Netpkt.Flow.src flow.Netpkt.Flow.dst
    flow.Netpkt.Flow.proto flow.Netpkt.Flow.sport flow.Netpkt.Flow.dport
    (Mbox.Entity.hash_key entity) (nf_salt_int nf)

(* Loops over indices, not [Array.fold_left]/[Array.iter]: the
   polymorphic fold boxes the float accumulator on every element and
   the callbacks capture refs, which costs ~25 minor words per steering
   decision on the per-packet fast path.  Local float refs compile to
   unboxed mutable stack slots; the additions happen in the same order
   with the same early-stop, so every choice is bit-identical. *)
let rec last_positive row i =
  if i < 0 then None
  else
    let id, w = row.(i) in
    if w > 0.0 then Some id else last_positive row (i - 1)

let pick row ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Selector.pick: u out of [0,1)";
  let n = Array.length row in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let _, w = row.(i) in
    if w < 0.0 then invalid_arg "Selector.pick: negative weight";
    total := !total +. w
  done;
  if !total <= 0.0 then None
  else begin
    let target = u *. !total in
    let acc = ref 0.0 in
    let found = ref false in
    let chosen = ref 0 in
    let i = ref 0 in
    while (not !found) && !i < n do
      let id, w = row.(!i) in
      acc := !acc +. w;
      if target < !acc then begin
        found := true;
        chosen := id
      end;
      incr i
    done;
    if !found then Some !chosen
      (* Floating-point slack can leave the last bucket unmatched. *)
    else last_positive row (n - 1)
  end

let flow_key flow ~entity ~nf =
  Stdx.Xhash.combine7 flow.Netpkt.Flow.src flow.Netpkt.Flow.dst
    flow.Netpkt.Flow.proto flow.Netpkt.Flow.sport flow.Netpkt.Flow.dport
    (Mbox.Entity.hash_key entity) (nf_salt_int nf)

(* FNV-1a alone leaves per-candidate hashes correlated when only the
   trailing id byte differs, which skews the rendezvous scores
   measurably; [Xhash.score_unit] applies the avalanche finalizer to
   restore independence (without boxing any intermediate). *)
let pick_hrw row ~key =
  let best = ref None in
  Array.iter
    (fun (id, w) ->
      if w < 0.0 then invalid_arg "Selector.pick_hrw: negative weight";
      if w > 0.0 then begin
        (* Weighted rendezvous hashing: candidate score -w / ln(u) with
           u = hash(key, id) in (0, 1).  The max over the row is what
           makes the choice independent of row order and of which
           losing candidates are present. *)
        let u = Stdx.Xhash.score_unit key id in
        let u = if u <= 0.0 then epsilon_float else u in
        let score = -.w /. log u in
        match !best with
        | Some (bid, s) when s > score || (s = score && bid < id) -> ()
        | _ -> best := Some (id, score)
      end)
    row;
  Option.map fst !best

let pick_uniform candidates ~u =
  let n = List.length candidates in
  if n = 0 then invalid_arg "Selector.pick_uniform: empty candidates";
  let i = int_of_float (u *. float_of_int n) in
  let i = if i >= n then n - 1 else i in
  List.nth candidates i
