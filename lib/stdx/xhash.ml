let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) fnv_prime

let string s =
  let acc = ref fnv_offset in
  String.iter (fun c -> acc := byte !acc (Char.code c)) s;
  !acc

let fold_int acc n =
  let acc = ref acc in
  for shift = 0 to 7 do
    acc := byte !acc ((n lsr (shift * 8)) land 0xff)
  done;
  !acc

let ints l = List.fold_left fold_int fnv_offset l

(* ---- Non-allocating entry points ---------------------------------
   The per-packet fast path hashes a handful of ints on every lookup
   and steering decision, and boxed [Int64] arithmetic costs a minor
   allocation per operation outside flambda.  These variants carry
   the 64-bit FNV-1a state as two 32-bit limbs in native ints: the
   prime is 2^40 + 0x1B3, so every partial product stays under 2^42
   and fits a 63-bit native int.  The results are bit-identical to
   the [Int64] fold above (the test suite pins the agreement); only
   the final boxing of the returned [int64] allocates. *)

let limb_hi0 = 0xCBF29CE4 (* fnv_offset, split *)
let limb_lo0 = 0x84222325
let mask32 = 0xFFFFFFFF

(* Mix the 8 bytes of [n] into the limb state, LSB first — the exact
   byte walk of [fold_int]. *)
let mix_into hi lo n =
  for shift = 0 to 7 do
    let b = (n lsr (shift * 8)) land 0xff in
    let l = !lo lxor b in
    let t0 = l * 0x1B3 in
    let t1 = (l lsl 8) + (!hi * 0x1B3) + (t0 lsr 32) in
    hi := t1 land mask32;
    lo := t0 land mask32
  done

let int64_of_limbs hi lo =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let combine2 a b =
  let hi = ref limb_hi0 and lo = ref limb_lo0 in
  mix_into hi lo a;
  mix_into hi lo b;
  int64_of_limbs !hi !lo

let combine3 a b c =
  let hi = ref limb_hi0 and lo = ref limb_lo0 in
  mix_into hi lo a;
  mix_into hi lo b;
  mix_into hi lo c;
  int64_of_limbs !hi !lo

let combine5 a b c d e =
  let hi = ref limb_hi0 and lo = ref limb_lo0 in
  mix_into hi lo a;
  mix_into hi lo b;
  mix_into hi lo c;
  mix_into hi lo d;
  mix_into hi lo e;
  int64_of_limbs !hi !lo

let combine7 a b c d e f g =
  let hi = ref limb_hi0 and lo = ref limb_lo0 in
  mix_into hi lo a;
  mix_into hi lo b;
  mix_into hi lo c;
  mix_into hi lo d;
  mix_into hi lo e;
  mix_into hi lo f;
  mix_into hi lo g;
  int64_of_limbs !hi !lo

(* (a·b) mod 2^32 with both operands under 2^32: split the
   multiplier at 16 bits so each partial product stays under 2^48. *)
let mul32_lo a b =
  ((a * (b land 0xFFFF)) + (((a * (b lsr 16)) land 0xFFFF) lsl 16)) land mask32

(* limb state := limb state * (chi·2^32 + clo) mod 2^64.  The low
   32x32 product needs its full 64 bits (schoolbook on 16-bit
   halves); the cross terms only their low 32. *)
let mul64_into hi lo chi clo =
  let a0 = !lo and a1 = !hi in
  let al = a0 land 0xFFFF and ah = a0 lsr 16 in
  let bl = clo land 0xFFFF and bh = clo lsr 16 in
  let ll = al * bl in
  let mid = (al * bh) + (ah * bl) + (ll lsr 16) in
  let low = ((mid land 0xFFFF) lsl 16) lor (ll land 0xFFFF) in
  let carry = (ah * bh) + (mid lsr 16) in
  hi := (carry + mul32_lo a0 chi + mul32_lo a1 clo) land mask32;
  lo := low

(* fmix64 on the limb state.  h lsr 33 never reaches the low limb:
   its value is exactly [hi lsr 1], so each xor-shift step touches
   only [lo]. *)
let fmix_limbs hi lo =
  lo := !lo lxor (!hi lsr 1);
  mul64_into hi lo 0xFF51AFD7 0xED558CCD;
  lo := !lo lxor (!hi lsr 1);
  mul64_into hi lo 0xC4CEB9FE 0x1A85EC53;
  lo := !lo lxor (!hi lsr 1)

(* Top 53 bits of the limb state as a unit-interval float: the same
   value [to_unit_interval] computes from the boxed hash (both
   integers are below 2^53, so both conversions are exact and the
   final division rounds identically). *)
let unit_of_limbs hi lo =
  float_of_int ((hi lsl 21) lor (lo lsr 11)) /. 9007199254740992.0

(* to_unit_interval (fmix64 (fold_int key salt)) without boxing any
   intermediate: the rendezvous selector's per-candidate score. *)
let score_unit key salt =
  let hi = ref (Int64.to_int (Int64.shift_right_logical key 32) land mask32)
  and lo = ref (Int64.to_int key land mask32) in
  mix_into hi lo salt;
  fmix_limbs hi lo;
  unit_of_limbs !hi !lo

(* to_unit_interval (ints [a; ...; g]) without intermediate boxing:
   the probabilistic-steering draw. *)
let combine7_unit a b c d e f g =
  let hi = ref limb_hi0 and lo = ref limb_lo0 in
  mix_into hi lo a;
  mix_into hi lo b;
  mix_into hi lo c;
  mix_into hi lo d;
  mix_into hi lo e;
  mix_into hi lo f;
  mix_into hi lo g;
  unit_of_limbs !hi !lo

(* Native-int mixer for open-addressing probe sequences
   ([Stdx.Flat_table]).  Not FNV — nothing downstream depends on the
   value, only on determinism — so it can stay entirely in native
   63-bit arithmetic (wrap-around multiply, then xor-shift
   finalling).  Always non-negative. *)
let mix2_int k1 k2 =
  let h = (k1 lxor (k2 * 0x2545F4914F6CDD1D)) * 0x35253C9ADE8F4511 in
  let h = h lxor (h lsr 31) in
  let h = h * 0x1F123BB5159A55E5 in
  (h lxor (h lsr 33)) land max_int

(* Murmur3's 64-bit avalanche finalizer.  FNV-1a alone leaves hashes
   of near-identical inputs correlated (only the trailing bytes
   differ); the finalizer flips every output bit with probability ~1/2
   under a single-bit input change, which is what both the rendezvous
   selector and the order-independent state digests need. *)
let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xC4CEB9FE1A85EC53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

(* Use the top 53 bits so the float mantissa is filled uniformly. *)
let to_unit_interval h =
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits /. 9007199254740992.0

let to_range h n =
  if n <= 0 then invalid_arg "Xhash.to_range: n must be positive";
  let v = Int64.to_int h land max_int in
  v mod n
