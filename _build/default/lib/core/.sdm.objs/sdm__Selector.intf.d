lib/core/selector.mli: Mbox Netpkt Policy
