lib/netgraph/dijkstra.ml: Array Graph List Stdx
