(* Figure 3 walk-through: label switching + web-proxy caching.

   The paper's running example: web traffic from stub-network A is
   first forwarded to a web proxy; if the requested page is cached the
   request is honored right there, otherwise the flow continues
   through Firewall -> IDS and on to the web server.

   Packet-level mechanics demonstrated below:
   - the flow's first packet travels IP-over-IP (20 extra bytes per
     tunnel leg, fragmenting full-MTU packets) and installs
     ⟨src|label⟩ entries in the label tables along the chain;
   - the last middlebox sends a control packet back to the policy
     proxy; every later packet is label-switched at its original size;
   - with a web-proxy cache hit ratio, a fraction of flows short-
     circuit at the WP and never load the downstream FW/IDS.

     dune exec examples/label_switching_demo.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in

  (* Figure 3's policy: web traffic from stub 0 goes WP -> FW -> IDS. *)
  let rules =
    Policy.Rule.index
      [
        Policy.Descriptor.make
          ~src:(Sdm.Deployment.subnet_of deployment 0)
          ~dport:(Policy.Descriptor.Port 80) ();
      ]
      [ Policy.Action.[ WP; FW; IDS ] ]
  in
  let controller =
    match Sdm.Controller.configure deployment ~rules Sdm.Controller.Hot_potato with
    | Ok c -> c
    | Error e -> failwith e
  in

  (* --- Part 1: one flow, the label-switching life cycle. --- *)
  let flow =
    Netpkt.Flow.make
      ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of deployment 0) 5)
      ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.subnet_of deployment 7) 9)
      ~proto:6 ~sport:50001 ~dport:80
  in
  let packets = 40 in
  let one_flow =
    {
      Sim.Workload.rules;
      flows =
        [|
          {
            Sim.Workload.id = 0;
            flow;
            src_proxy = 0;
            dst_proxy = 7;
            rule_id = Some 0;
            intended_class = Sim.Workload.One_to_many;
            packets;
            packet_bytes = 1500 (* full MTU: tunnelling must fragment *);
          };
        |];
      total_packets = packets;
    }
  in
  Format.printf "flow %s, %d packets of 1500 B@." (Netpkt.Flow.to_string flow)
    packets;
  Format.printf "@.enforcement chain (hot-potato, as the controller configures):@.";
  let rule = List.hd rules in
  let entity = ref (Mbox.Entity.Proxy 0) in
  List.iter
    (fun nf ->
      let mb = Sdm.Controller.next_hop controller !entity ~rule ~nf flow in
      Format.printf "  %s --IP-over-IP--> %a@."
        (Mbox.Entity.to_string !entity)
        Mbox.Middlebox.pp mb;
      entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id)
    rule.Policy.Rule.actions;

  let run ?(wp_cache_hit_ratio = 0.0) ~label_switching workload =
    Sim.Pktsim.run
      ~config:
        {
          Sim.Pktsim.default_config with
          label_switching;
          wp_cache_hit_ratio;
          packet_interval = 1.0;
          start_window = 1.0;
        }
      ~controller ~workload ()
  in
  let ls = run ~label_switching:true one_flow in
  Format.printf "@.with label switching:@.";
  Format.printf "  tunneled legs (first packets): %d@." ls.Sim.Pktsim.tunneled_packets;
  Format.printf "  control packets back to proxy: %d@." ls.Sim.Pktsim.control_packets;
  Format.printf "  label-switched legs:           %d@." ls.Sim.Pktsim.label_switched_packets;
  Format.printf "  extra fragments created:       %d@." ls.Sim.Pktsim.fragments_created;
  Format.printf "  multi-field lookups:           %d@." ls.Sim.Pktsim.multi_field_lookups;
  Format.printf "  delivered:                     %d/%d@."
    ls.Sim.Pktsim.delivered_packets packets;

  let no_ls = run ~label_switching:false one_flow in
  Format.printf "@.without label switching (IP-over-IP for every packet):@.";
  Format.printf "  tunneled legs:           %d@." no_ls.Sim.Pktsim.tunneled_packets;
  Format.printf "  extra fragments created: %d@." no_ls.Sim.Pktsim.fragments_created;

  (* --- Part 2: the web-proxy cache, over many flows. --- *)
  let flows =
    Array.init 40 (fun i ->
        {
          Sim.Workload.id = i;
          flow =
            Netpkt.Flow.make
              ~src:
                (Netpkt.Addr.Prefix.nth_addr
                   (Sdm.Deployment.subnet_of deployment 0)
                   (10 + i))
              ~dst:
                (Netpkt.Addr.Prefix.nth_addr
                   (Sdm.Deployment.subnet_of deployment 7)
                   (10 + i))
              ~proto:6 ~sport:(40000 + i) ~dport:80;
          src_proxy = 0;
          dst_proxy = 7;
          rule_id = Some 0;
          intended_class = Sim.Workload.One_to_many;
          packets = 15;
          packet_bytes = 576;
        })
  in
  let many = { Sim.Workload.rules; flows; total_packets = 40 * 15 } in
  let cached = run ~label_switching:true ~wp_cache_hit_ratio:0.3 many in
  let load_of nf =
    List.fold_left
      (fun acc (m : Mbox.Middlebox.t) -> acc +. cached.Sim.Pktsim.loads.(m.id))
      0.0
      (Sdm.Deployment.middleboxes_of deployment nf)
  in
  Format.printf
    "@.with a 30%% web-proxy cache hit ratio over %d flows:@."
    (Array.length flows);
  Format.printf "  packets answered from the WP cache: %d@."
    cached.Sim.Pktsim.wp_cache_served;
  Format.printf "  WP load: %.0f, FW load: %.0f, IDS load: %.0f@."
    (load_of Policy.Action.WP) (load_of Policy.Action.FW)
    (load_of Policy.Action.IDS);
  Format.printf
    "  (cached flows stop at the proxy; only the misses continue through FW \
     and IDS, exactly as in the paper's Figure 3.)@."
