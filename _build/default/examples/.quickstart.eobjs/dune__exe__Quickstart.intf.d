examples/quickstart.mli:
