(* Quickstart: the whole public API on a six-router toy network.

   Build a topology, attach middleboxes and policy proxies, write a
   policy list, let the controller configure everything, and watch a
   flow be steered through its middlebox chain under the hot-potato
   and load-balanced strategies.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A toy network: six routers in a line; stub networks hang off
        the two ends. *)
  let g = Netgraph.Graph.create 6 in
  for i = 0 to 4 do
    Netgraph.Graph.add_edge g i (i + 1) 1.0
  done;
  let roles =
    [| Netgraph.Topology.Edge; Core; Core; Core; Core; Netgraph.Topology.Edge |]
  in
  let topo = Netgraph.Topology.make ~name:"toy" ~graph:g ~roles in

  (* 2. Deployment: two firewalls, two IDSes, a proxy per stub. *)
  let mbox id nf router =
    Mbox.Middlebox.make ~id ~nf ~router ~addr:(Sdm.Deployment.mbox_addr id) ()
  in
  let proxy id router =
    Mbox.Proxy.make ~id ~subnet:(Sdm.Deployment.proxy_subnet id) ~router
      ~addr:(Sdm.Deployment.proxy_addr id) ()
  in
  let deployment =
    Sdm.Deployment.make ~topo
      ~middleboxes:
        [| mbox 0 Policy.Action.FW 1; mbox 1 Policy.Action.FW 4;
           mbox 2 Policy.Action.IDS 2; mbox 3 Policy.Action.IDS 3 |]
      ~proxies:[| proxy 0 0; proxy 1 5 |]
  in

  (* 3. Policies: web traffic from stub 0 must go FW -> IDS; everything
        else is permitted. *)
  let rules =
    Policy.Rule.index
      [
        Policy.Descriptor.make
          ~src:(Sdm.Deployment.proxy_subnet 0)
          ~dport:(Policy.Descriptor.Port 80) ();
        Policy.Descriptor.make ();
      ]
      [ Policy.Action.[ FW; IDS ]; Policy.Action.permit ]
  in
  List.iter (fun r -> Format.printf "policy %a@." Policy.Rule.pp r) rules;

  (* 4. A flow from stub 0 to stub 1, port 80. *)
  let flow =
    Netpkt.Flow.make
      ~src:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 0) 10)
      ~dst:(Netpkt.Addr.Prefix.nth_addr (Sdm.Deployment.proxy_subnet 1) 20)
      ~proto:6 ~sport:43210 ~dport:80
  in
  let rule = Option.get (Policy.Rule.first_match rules flow) in
  Format.printf "@.flow %s matches policy #%d (%s)@." (Netpkt.Flow.to_string flow)
    rule.Policy.Rule.id
    (Policy.Action.to_string rule.Policy.Rule.actions);

  (* 5. Configure the controller and trace the chain under hot-potato. *)
  let trace controller name =
    Format.printf "@.%s enforcement of the chain:@." name;
    let entity = ref (Mbox.Entity.Proxy 0) in
    List.iter
      (fun nf ->
        let mb = Sdm.Controller.next_hop controller !entity ~rule ~nf flow in
        Format.printf "  %s -> %a (router %d)@." (Mbox.Entity.to_string !entity)
          Mbox.Middlebox.pp mb mb.Mbox.Middlebox.router;
        entity := Mbox.Entity.Middlebox mb.Mbox.Middlebox.id)
      rule.Policy.Rule.actions
  in
  (match Sdm.Controller.configure deployment ~rules Sdm.Controller.Hot_potato with
  | Ok c -> trace c "Hot-potato"
  | Error e -> failwith e);

  (* 6. Load-balanced enforcement needs measured traffic: pretend the
        proxies reported 1000 packets for this policy. *)
  let traffic = Sdm.Measurement.create () in
  Sdm.Measurement.add traffic ~src:0 ~dst:1 ~rule:0 1000.0;
  (match
     Sdm.Controller.configure deployment ~rules
       (Sdm.Controller.Load_balanced traffic)
   with
  | Ok c ->
    trace c "Load-balanced";
    (match c.Sdm.Controller.lp with
    | Some lp ->
      Format.printf "@.LP optimum lambda = %.1f packets per middlebox@."
        lp.Sdm.Lp_formulation.lambda;
      Array.iteri
        (fun i load -> Format.printf "  predicted load mbox%d = %.1f@." i load)
        lp.Sdm.Lp_formulation.loads
    | None -> ())
  | Error e -> failwith e);
  Format.printf "@.quickstart done.@."
