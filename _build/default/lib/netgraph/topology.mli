(** Router-level topologies with role annotations.

    The enforcement system distinguishes three router roles:
    gateways (border to the Internet), core routers (transit only) and
    edge routers (each fronting one stub network / policy proxy).
    Middleboxes and proxies are *not* nodes here; the [core] library's
    deployment layer attaches them to routers. *)

type role = Gateway | Core | Edge

type t = {
  name : string;
  graph : Graph.t;
  roles : role array;
}

val make : name:string -> graph:Graph.t -> roles:role array -> t
(** Raises [Invalid_argument] if lengths disagree or the graph is
    disconnected (policy enforcement assumes full reachability). *)

val gateways : t -> int list
val cores : t -> int list
val edges : t -> int list
(** Node ids carrying each role, ascending. *)

val role : t -> int -> role
val role_to_string : role -> string

val pp : Format.formatter -> t -> unit
