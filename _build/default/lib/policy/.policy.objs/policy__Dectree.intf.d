lib/policy/dectree.mli: Netpkt Rule
