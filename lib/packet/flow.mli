(** Flow identifiers: the classic 5-tuple.

    The paper's flow cache keys on this tuple, and its probabilistic
    middlebox selection hashes it, so the tuple's hash must be
    deterministic across runs (FNV-1a via [Stdx.Xhash]). *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  proto : int;    (** 6 = TCP, 17 = UDP, ... *)
  sport : int;
  dport : int;
}

val make : src:Addr.t -> dst:Addr.t -> proto:int -> sport:int -> dport:int -> t

val compare : t -> t -> int
(** Field-wise monomorphic comparison; the same total order
    [Stdlib.compare] induces on the record. *)

val equal : t -> t -> bool

val key : t -> int
(** [src·2^16 lor sport]: the first half of the 104-bit flow identity
    packed into two non-negative ints, for flow-keyed tables that
    inline keys in int arrays ({!Stdx.Flat_table}).  [key]/[key2]
    together are injective over well-formed flows. *)

val key2 : t -> int
(** [dst·2^24 lor dport·2^8 lor proto]: the second half. *)

val of_key : int -> int -> t
(** Rebuild the flow from its packed halves.
    [of_key (key f) (key2 f) = f]. *)

val hash : t -> int64
(** Deterministic FNV-1a over the five fields. *)

val hash_to_unit : t -> float
(** [hash] mapped to [\[0, 1)] — the value [r / N] used for
    probabilistic next-hop selection. *)

val reverse : t -> t
(** Swap source and destination (address and port) — the return flow. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
