test/test_sim.ml: Alcotest Array Gen List Mbox Netpkt Option Policy Printf QCheck QCheck_alcotest Sdm Sim Stdx
