type t = { cells : (int * int * int, float) Hashtbl.t }

let create () = { cells = Hashtbl.create 1024 }

let add t ~src ~dst ~rule v =
  if v < 0.0 then invalid_arg "Measurement.add: negative volume";
  if v > 0.0 then begin
    let key = (src, dst, rule) in
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.cells key) in
    Hashtbl.replace t.cells key (prev +. v)
  end

let t_sdp t ~src ~dst ~rule =
  Option.value ~default:0.0 (Hashtbl.find_opt t.cells (src, dst, rule))

let fold t f init = Hashtbl.fold f t.cells init

let t_sp t ~src ~rule =
  fold t
    (fun (s, _, p) v acc -> if s = src && p = rule then acc +. v else acc)
    0.0

let t_dp t ~dst ~rule =
  fold t
    (fun (_, d, p) v acc -> if d = dst && p = rule then acc +. v else acc)
    0.0

let t_p t ~rule =
  fold t (fun (_, _, p) v acc -> if p = rule then acc +. v else acc) 0.0

let rules_with_traffic t =
  fold t (fun (_, _, p) v acc -> if v > 0.0 then p :: acc else acc) []
  |> List.sort_uniq compare

let group_by t ~rule ~key =
  let tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (s, d, p) v ->
      if p = rule && v > 0.0 then begin
        let k = key s d in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
        Hashtbl.replace tbl k (prev +. v)
      end)
    t.cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sources_for t ~rule = group_by t ~rule ~key:(fun s _ -> s)
let destinations_for t ~rule = group_by t ~rule ~key:(fun _ d -> d)

let pairs_for t ~rule =
  fold t
    (fun (s, d, p) v acc -> if p = rule && v > 0.0 then (s, d, v) :: acc else acc)
    []
  |> List.sort compare

let total t = fold t (fun _ v acc -> acc +. v) 0.0
