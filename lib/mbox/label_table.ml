type key = { src : Netpkt.Addr.t; label : int }

type entry = {
  actions : Policy.Action.t;
  next : Netpkt.Addr.t option;
  final_dst : Netpkt.Addr.t option;
  version : int;
  check : int64;
  mutable last_used : float;
}

type t = {
  table : (key, entry) Hashtbl.t;
  timeout : float;
  mutable digest : int64;
}

let create ?(timeout = infinity) () =
  if timeout <= 0.0 then invalid_arg "Label_table.create: timeout must be positive";
  { table = Hashtbl.create 256; timeout; digest = 0L }

(* Per-entry hash over the key and the immutable payload ([last_used]
   is refreshed on every hit and must not perturb the digest).  The
   avalanche finalizer matters here: entries differing only in the
   label or version would otherwise produce correlated FNV values
   whose XOR could cancel. *)
let entry_hash key ~actions ~next ~final_dst ~version =
  let h = Stdx.Xhash.fold_int Stdx.Xhash.fnv_offset key.src in
  let h = Stdx.Xhash.fold_int h key.label in
  let h =
    List.fold_left
      (fun h nf ->
        Stdx.Xhash.fold_int h
          (Int64.to_int (Stdx.Xhash.string (Policy.Action.nf_to_string nf))))
      h actions
  in
  let fold_addr_opt h = function
    | None -> Stdx.Xhash.fold_int h (-1)
    | Some a -> Stdx.Xhash.fold_int (Stdx.Xhash.fold_int h 1) a
  in
  let h = fold_addr_opt h next in
  let h = fold_addr_opt h final_dst in
  Stdx.Xhash.fmix64 (Stdx.Xhash.fold_int h version)

(* Legitimate mutations XOR the *stored* checksum in or out, so an
   insert/remove pair cancels exactly even if the payload was silently
   corrupted in between; only the unsafe_* faults below skip this. *)
let forget t entry = t.digest <- Int64.logxor t.digest entry.check

let insert t ~now ?(version = 0) key ~actions ~next ~final_dst =
  (match (next, final_dst) with
  | Some _, Some _ -> invalid_arg "Label_table.insert: both next and final_dst"
  | None, None -> invalid_arg "Label_table.insert: neither next nor final_dst"
  | Some _, None | None, Some _ -> ());
  if key.label < 0 || key.label > Netpkt.Header.max_label then
    invalid_arg
      (Printf.sprintf "Label_table.insert: label %d outside [0, %d]" key.label
         Netpkt.Header.max_label);
  (match Hashtbl.find_opt t.table key with
  | Some old -> forget t old
  | None -> ());
  let check = entry_hash key ~actions ~next ~final_dst ~version in
  t.digest <- Int64.logxor t.digest check;
  Hashtbl.replace t.table key
    { actions; next; final_dst; version; check; last_used = now }

let lookup t ~now key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
    if now -. entry.last_used > t.timeout then begin
      forget t entry;
      Hashtbl.remove t.table key;
      None
    end
    else begin
      entry.last_used <- now;
      Some entry
    end

let size t = Hashtbl.length t.table
let length = size
let iter f t = Hashtbl.iter f t.table

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some entry ->
    forget t entry;
    Hashtbl.remove t.table key

let purge t ~now =
  let expired =
    Hashtbl.fold
      (fun key entry acc ->
        if now -. entry.last_used > t.timeout then (key, entry) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (key, entry) ->
      forget t entry;
      Hashtbl.remove t.table key)
    expired;
  List.length expired

let purge_versions_below t ~version =
  let stale =
    Hashtbl.fold
      (fun key entry acc ->
        if entry.version < version then (key, entry) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (key, entry) ->
      forget t entry;
      Hashtbl.remove t.table key)
    stale;
  List.length stale

let digest t = t.digest

let recompute_digest t =
  Hashtbl.fold
    (fun key e acc ->
      Int64.logxor acc
        (entry_hash key ~actions:e.actions ~next:e.next ~final_dst:e.final_dst
           ~version:e.version))
    t.table 0L

(* Fault-injection back doors: mutate the table the way a bit flip or
   a lost install would — without touching the incremental digest or
   the per-entry checksum — so the anti-entropy sweep has something
   real to find. *)

let unsafe_corrupt t key ~redirect =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e ->
    let corrupted =
      match e.next with
      | Some _ -> { e with next = Some redirect }
      | None -> { e with final_dst = Some redirect }
    in
    Hashtbl.replace t.table key corrupted;
    true

let unsafe_drop t key =
  if Hashtbl.mem t.table key then begin
    Hashtbl.remove t.table key;
    true
  end
  else false

let unsafe_resurrect t key entry =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.replace t.table key entry;
    true
  end
  else false

let scrub t ~version_floor =
  let bad =
    Hashtbl.fold
      (fun key e acc ->
        let actual =
          entry_hash key ~actions:e.actions ~next:e.next ~final_dst:e.final_dst
            ~version:e.version
        in
        if not (Int64.equal actual e.check) || e.version < version_floor then
          key :: acc
        else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) bad;
  t.digest <- recompute_digest t;
  bad
