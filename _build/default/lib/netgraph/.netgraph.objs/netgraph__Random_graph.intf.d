lib/netgraph/random_graph.mli: Graph Stdx Topology
