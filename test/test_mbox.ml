(* Tests for enforcement entities, middlebox/proxy descriptors and the
   label table. *)

let test_entity_keys () =
  let entities =
    [ Mbox.Entity.Proxy 0; Mbox.Entity.Proxy 1; Mbox.Entity.Middlebox 0;
      Mbox.Entity.Middlebox 1 ]
  in
  let keys = List.map Mbox.Entity.hash_key entities in
  Alcotest.(check int) "keys distinct" 4 (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "equal" true
    (Mbox.Entity.equal (Mbox.Entity.Proxy 3) (Mbox.Entity.Proxy 3));
  Alcotest.(check bool) "kind matters" false
    (Mbox.Entity.equal (Mbox.Entity.Proxy 3) (Mbox.Entity.Middlebox 3));
  Alcotest.(check string) "to_string" "mbox7"
    (Mbox.Entity.to_string (Mbox.Entity.Middlebox 7))

let test_middlebox_make () =
  let m =
    Mbox.Middlebox.make ~id:2 ~nf:Policy.Action.FW ~router:5
      ~addr:(Netpkt.Addr.of_string "192.168.0.2") ()
  in
  Alcotest.(check (float 1e-9)) "default capacity" 1.0 m.Mbox.Middlebox.capacity;
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Middlebox.make: capacity must be positive") (fun () ->
      ignore
        (Mbox.Middlebox.make ~id:0 ~nf:Policy.Action.FW ~capacity:0.0 ~router:0
           ~addr:0 ()))

let key src label = { Mbox.Label_table.src = Netpkt.Addr.of_string src; label }

let test_label_table_roundtrip () =
  let t = Mbox.Label_table.create () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 7)
    ~actions:Policy.Action.[ FW; IDS ]
    ~next:(Some (Netpkt.Addr.of_string "192.168.0.3"))
    ~final_dst:None;
  (match Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.1" 7) with
  | Some e ->
    Alcotest.(check bool) "next present" true (e.Mbox.Label_table.next <> None)
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "other label absent" true
    (Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.1" 8) = None);
  (* Same label from a different source is a different key — the
     paper's src|l concatenation. *)
  Alcotest.(check bool) "other source absent" true
    (Mbox.Label_table.lookup t ~now:1.0 (key "10.0.0.2" 7) = None);
  Alcotest.(check int) "size" 1 (Mbox.Label_table.size t);
  Mbox.Label_table.remove t (key "10.0.0.1" 7);
  Alcotest.(check int) "removed" 0 (Mbox.Label_table.size t)

let test_label_table_invariants () =
  let t = Mbox.Label_table.create () in
  Alcotest.check_raises "both next and dst"
    (Invalid_argument "Label_table.insert: both next and final_dst") (fun () ->
      Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1) ~actions:[]
        ~next:(Some 1) ~final_dst:(Some 2));
  Alcotest.check_raises "neither next nor dst"
    (Invalid_argument "Label_table.insert: neither next nor final_dst")
    (fun () ->
      Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1) ~actions:[]
        ~next:None ~final_dst:None)

let test_label_table_last_hop () =
  let t = Mbox.Label_table.create () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 3)
    ~actions:Policy.Action.[ IDS ]
    ~next:None
    ~final_dst:(Some (Netpkt.Addr.of_string "10.5.0.9"));
  match Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 3) with
  | Some { Mbox.Label_table.final_dst = Some d; next = None; _ } ->
    Alcotest.(check string) "restores destination" "10.5.0.9"
      (Netpkt.Addr.to_string d)
  | _ -> Alcotest.fail "expected last-hop entry"

let test_label_table_soft_state () =
  let t = Mbox.Label_table.create ~timeout:10.0 () in
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 5)
    ~actions:Policy.Action.[ FW ]
    ~next:None
    ~final_dst:(Some (Netpkt.Addr.of_string "10.5.0.9"));
  Alcotest.(check bool) "alive before timeout" true
    (Mbox.Label_table.lookup t ~now:9.0 (key "10.0.0.1" 5) <> None);
  (* The lookup refreshed last_used; still alive at 18. *)
  Alcotest.(check bool) "refreshed" true
    (Mbox.Label_table.lookup t ~now:18.0 (key "10.0.0.1" 5) <> None);
  Alcotest.(check bool) "expired" true
    (Mbox.Label_table.lookup t ~now:40.0 (key "10.0.0.1" 5) = None);
  Alcotest.(check int) "gone from table" 0 (Mbox.Label_table.size t)

let test_label_table_purge () =
  let t = Mbox.Label_table.create ~timeout:5.0 () in
  for i = 0 to 9 do
    Mbox.Label_table.insert t ~now:(float_of_int i)
      (key "10.0.0.1" i)
      ~actions:Policy.Action.[ FW ]
      ~next:(Some 1) ~final_dst:None
  done;
  let dropped = Mbox.Label_table.purge t ~now:11.0 in
  Alcotest.(check int) "entries older than 5 dropped" 6 dropped;
  Alcotest.(check int) "survivors" 4 (Mbox.Label_table.size t)

let test_label_table_versions () =
  let t = Mbox.Label_table.create () in
  (* Entries carry the configuration version that installed them;
     the default is 0 (static configuration). *)
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Mbox.Label_table.insert t ~now:0.0 ~version:1 (key "10.0.0.1" 2)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Mbox.Label_table.insert t ~now:0.0 ~version:2 (key "10.0.0.1" 3)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  (match Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 1) with
  | Some e -> Alcotest.(check int) "default version" 0 e.Mbox.Label_table.version
  | None -> Alcotest.fail "expected entry");
  (* Installing version 2 keeps the adjacent version 1 staged and
     expires everything older — the update-boundary semantics. *)
  let dropped = Mbox.Label_table.purge_versions_below t ~version:1 in
  Alcotest.(check int) "one entry below the floor" 1 dropped;
  Alcotest.(check int) "survivors" 2 (Mbox.Label_table.size t);
  Alcotest.(check bool) "v0 entry expired across the boundary" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 1) = None);
  Alcotest.(check bool) "adjacent version survives" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 2) <> None);
  Alcotest.(check bool) "current version survives" true
    (Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 3) <> None);
  (* Purging below a floor no entry reaches empties the table. *)
  Alcotest.(check int) "purge everything" 2
    (Mbox.Label_table.purge_versions_below t ~version:10);
  Alcotest.(check int) "empty" 0 (Mbox.Label_table.size t);
  (* Idempotent on an empty table. *)
  Alcotest.(check int) "nothing left to purge" 0
    (Mbox.Label_table.purge_versions_below t ~version:10)

let test_label_table_accessors () =
  let t = Mbox.Label_table.create () in
  Alcotest.(check int) "empty length" 0 (Mbox.Label_table.length t);
  for i = 0 to 4 do
    Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" i)
      ~actions:Policy.Action.[ FW ]
      ~next:(Some 1) ~final_dst:None
  done;
  Alcotest.(check int) "length = size" (Mbox.Label_table.size t)
    (Mbox.Label_table.length t);
  Alcotest.(check int) "length" 5 (Mbox.Label_table.length t);
  let seen = ref [] in
  Mbox.Label_table.iter
    (fun k _ -> seen := k.Mbox.Label_table.label :: !seen)
    t;
  Alcotest.(check (list int)) "iter visits every entry once" [ 0; 1; 2; 3; 4 ]
    (List.sort compare !seen)

let test_label_table_label_range () =
  let t = Mbox.Label_table.create () in
  let insert label =
    Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" label)
      ~actions:Policy.Action.[ FW ]
      ~next:(Some 1) ~final_dst:None
  in
  Alcotest.check_raises "negative label"
    (Invalid_argument
       (Printf.sprintf "Label_table.insert: label -1 outside [0, %d]"
          Netpkt.Header.max_label))
    (fun () -> insert (-1));
  Alcotest.check_raises "label beyond the 21-bit field"
    (Invalid_argument
       (Printf.sprintf "Label_table.insert: label %d outside [0, %d]"
          (Netpkt.Header.max_label + 1)
          Netpkt.Header.max_label))
    (fun () -> insert (Netpkt.Header.max_label + 1));
  Alcotest.(check int) "rejected inserts left no entry" 0
    (Mbox.Label_table.length t);
  (* The boundary labels themselves are legal. *)
  insert 0;
  insert Netpkt.Header.max_label;
  Alcotest.(check int) "boundary labels accepted" 2
    (Mbox.Label_table.length t)

let test_label_table_digest_incremental () =
  let t = Mbox.Label_table.create () in
  Alcotest.(check int64) "empty digest" 0L (Mbox.Label_table.digest t);
  Mbox.Label_table.insert t ~now:0.0 (key "10.0.0.1" 1)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Mbox.Label_table.insert t ~now:0.0 ~version:2 (key "10.0.0.2" 2)
    ~actions:Policy.Action.[ IDS ]
    ~next:None ~final_dst:(Some 9);
  Alcotest.(check int64) "incremental = recomputed"
    (Mbox.Label_table.recompute_digest t)
    (Mbox.Label_table.digest t);
  (* Legitimate mutations keep the two in lockstep. *)
  Mbox.Label_table.remove t (key "10.0.0.2" 2);
  Alcotest.(check int64) "after remove"
    (Mbox.Label_table.recompute_digest t)
    (Mbox.Label_table.digest t);
  Mbox.Label_table.remove t (key "10.0.0.1" 1);
  Alcotest.(check int64) "insert/remove cancels to empty" 0L
    (Mbox.Label_table.digest t)

let test_label_table_unsafe_and_scrub () =
  let t = Mbox.Label_table.create () in
  for i = 0 to 3 do
    Mbox.Label_table.insert t ~now:0.0 ~version:1 (key "10.0.0.1" i)
      ~actions:Policy.Action.[ FW ]
      ~next:(Some 1) ~final_dst:None
  done;
  let clean = Mbox.Label_table.digest t in
  (* A silent steering rewrite leaves the incremental digest stale. *)
  Alcotest.(check bool) "corrupt hits" true
    (Mbox.Label_table.unsafe_corrupt t (key "10.0.0.1" 0) ~redirect:42);
  Alcotest.(check int64) "incremental digest untouched" clean
    (Mbox.Label_table.digest t);
  Alcotest.(check bool) "mismatch detectable" true
    (Mbox.Label_table.digest t <> Mbox.Label_table.recompute_digest t);
  (* Scrub locates the checksum mismatch, purges it, rebases. *)
  let purged = Mbox.Label_table.scrub t ~version_floor:0 in
  Alcotest.(check (list int)) "corrupted key purged" [ 0 ]
    (List.map (fun k -> k.Mbox.Label_table.label) purged);
  Alcotest.(check int64) "digest rebased"
    (Mbox.Label_table.recompute_digest t)
    (Mbox.Label_table.digest t);
  (* A silent drop leaves a ghost contribution; scrub clears it even
     though no live entry is at fault. *)
  Alcotest.(check bool) "drop hits" true
    (Mbox.Label_table.unsafe_drop t (key "10.0.0.1" 1));
  Alcotest.(check bool) "ghost detectable" true
    (Mbox.Label_table.digest t <> Mbox.Label_table.recompute_digest t);
  Alcotest.(check (list int)) "nothing live to purge" []
    (List.map
       (fun k -> k.Mbox.Label_table.label)
       (Mbox.Label_table.scrub t ~version_floor:0));
  Alcotest.(check int64) "ghost cleared"
    (Mbox.Label_table.recompute_digest t)
    (Mbox.Label_table.digest t);
  (* Resurrect a stale-version entry verbatim: its checksum still
     validates, so only the version floor catches it. *)
  let stale =
    match Mbox.Label_table.lookup t ~now:0.0 (key "10.0.0.1" 2) with
    | Some e -> e
    | None -> Alcotest.fail "expected survivor"
  in
  Mbox.Label_table.remove t (key "10.0.0.1" 2);
  Alcotest.(check bool) "resurrect hits" true
    (Mbox.Label_table.unsafe_resurrect t (key "10.0.0.1" 2) stale);
  Alcotest.(check bool) "occupied slot refuses" false
    (Mbox.Label_table.unsafe_resurrect t (key "10.0.0.1" 3) stale);
  (* Bring the other survivor inside the staged window so only the
     revenant sits below the floor. *)
  Mbox.Label_table.insert t ~now:0.0 ~version:2 (key "10.0.0.1" 3)
    ~actions:Policy.Action.[ FW ]
    ~next:(Some 1) ~final_dst:None;
  Alcotest.(check (list int)) "version floor purges the revenant" [ 2 ]
    (List.map
       (fun k -> k.Mbox.Label_table.label)
       (Mbox.Label_table.scrub t ~version_floor:2));
  (* Misses report false and change nothing. *)
  Alcotest.(check bool) "corrupt miss" false
    (Mbox.Label_table.unsafe_corrupt t (key "10.0.0.9" 7) ~redirect:1);
  Alcotest.(check bool) "drop miss" false
    (Mbox.Label_table.unsafe_drop t (key "10.0.0.9" 7))

(* One arbitrary-but-deterministic entry per (label, version) pair. *)
let perm_entry i (label, version) =
  ( key (Printf.sprintf "10.0.%d.%d" (i mod 200) (label mod 200)) label,
    version )

let qcheck_digest_order_independent =
  QCheck.Test.make ~count:200 ~name:"label-table digest is order-independent"
    QCheck.(small_list (pair (int_bound 100) (int_bound 5)))
    (fun entries ->
      let entries = List.mapi perm_entry entries in
      let build es =
        let t = Mbox.Label_table.create () in
        List.iter
          (fun (k, version) ->
            Mbox.Label_table.insert t ~now:0.0 ~version k
              ~actions:Policy.Action.[ FW ]
              ~next:(Some 1) ~final_dst:None)
          es;
        t
      in
      let a = build entries and b = build (List.rev entries) in
      Mbox.Label_table.digest a = Mbox.Label_table.digest b
      && Mbox.Label_table.digest a = Mbox.Label_table.recompute_digest a)

let qcheck_digest_perturbation_sensitive =
  (* Collision resistance in the sense the sweep needs: perturbing a
     single entry's version — the cheapest single-field corruption —
     must move the digest, whatever the rest of the table holds. *)
  QCheck.Test.make ~count:200
    ~name:"label-table digest moves under single-entry perturbation"
    QCheck.(pair (small_list (pair (int_bound 100) (int_bound 5))) (int_bound 100))
    (fun (entries, victim_label) ->
      let entries = List.mapi perm_entry entries in
      let build extra_version =
        let t = Mbox.Label_table.create () in
        List.iter
          (fun (k, version) ->
            Mbox.Label_table.insert t ~now:0.0 ~version k
              ~actions:Policy.Action.[ FW ]
              ~next:(Some 1) ~final_dst:None)
          entries;
        Mbox.Label_table.insert t ~now:0.0 ~version:extra_version
          (key "10.9.9.9" victim_label)
          ~actions:Policy.Action.[ FW; IDS ]
          ~next:None ~final_dst:(Some 3);
        t
      in
      Mbox.Label_table.digest (build 7) <> Mbox.Label_table.digest (build 8))

let test_proxy_make () =
  let subnet = Netpkt.Addr.Prefix.of_string "10.3.0.0/16" in
  let p =
    Mbox.Proxy.make ~id:3 ~subnet ~router:7
      ~addr:(Netpkt.Addr.of_string "10.3.0.1") ()
  in
  Alcotest.(check int) "id" 3 p.Mbox.Proxy.id;
  Alcotest.(check int) "router" 7 p.Mbox.Proxy.router;
  Alcotest.(check bool) "in-path by default" true
    (p.Mbox.Proxy.attachment = Mbox.Proxy.In_path);
  let rendered = Format.asprintf "%a" Mbox.Proxy.pp p in
  Alcotest.(check string) "pp" "proxy3(10.3.0.0/16@r7)" rendered;
  match Mbox.Proxy.make ~id:(-1) ~subnet ~router:0 ~addr:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id accepted"

let test_proxy_off_path () =
  let subnet = Netpkt.Addr.Prefix.of_string "10.4.0.0/16" in
  let p =
    Mbox.Proxy.make ~id:4 ~subnet ~router:2 ~attachment:Mbox.Proxy.Off_path
      ~addr:(Netpkt.Addr.of_string "10.4.0.1") ()
  in
  Alcotest.(check bool) "off-path preserved" true
    (p.Mbox.Proxy.attachment = Mbox.Proxy.Off_path);
  Alcotest.(check bool) "subnet covers its own address" true
    (Netpkt.Addr.Prefix.contains p.Mbox.Proxy.subnet p.Mbox.Proxy.addr)

let suite =
  [
    Alcotest.test_case "entity keys" `Quick test_entity_keys;
    Alcotest.test_case "proxy make" `Quick test_proxy_make;
    Alcotest.test_case "proxy off-path" `Quick test_proxy_off_path;
    Alcotest.test_case "middlebox make" `Quick test_middlebox_make;
    Alcotest.test_case "label table roundtrip" `Quick test_label_table_roundtrip;
    Alcotest.test_case "label table invariants" `Quick test_label_table_invariants;
    Alcotest.test_case "label table last hop" `Quick test_label_table_last_hop;
    Alcotest.test_case "label table soft state" `Quick test_label_table_soft_state;
    Alcotest.test_case "label table purge" `Quick test_label_table_purge;
    Alcotest.test_case "label table versions" `Quick test_label_table_versions;
    Alcotest.test_case "label table accessors" `Quick
      test_label_table_accessors;
    Alcotest.test_case "label table label range" `Quick
      test_label_table_label_range;
    Alcotest.test_case "label table digest incremental" `Quick
      test_label_table_digest_incremental;
    Alcotest.test_case "label table unsafe ops and scrub" `Quick
      test_label_table_unsafe_and_scrub;
    QCheck_alcotest.to_alcotest qcheck_digest_order_independent;
    QCheck_alcotest.to_alcotest qcheck_digest_perturbation_sensitive;
  ]
