lib/netgraph/waxman.mli: Topology
