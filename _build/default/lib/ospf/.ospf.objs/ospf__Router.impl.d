lib/ospf/router.ml: Hashtbl List Lsa Netgraph
