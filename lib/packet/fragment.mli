(** IP fragmentation model.

    Only the arithmetic the evaluation needs: how many fragments a
    packet of a given size produces under a given MTU, and the
    fragment list itself (each fragment re-carries the outer header).
    Sec. III.E's label switching exists precisely to keep tunnelled
    packets at their original size so this count stays 1. *)

val default_mtu : int
(** 1500, Ethernet. *)

val count : mtu:int -> int -> int
(** [count ~mtu size] — fragments needed for an IP packet of [size]
    total bytes (header included).  1 when it fits.  Raises
    [Invalid_argument] if the MTU cannot even carry a header plus one
     8-byte block. *)

val fragments : mtu:int -> Packet.t -> Packet.t list
(** Split a packet; fragment payloads are multiples of 8 bytes except
    the last.  An encapsulated packet fragments on its outer header;
    the inner packet's bytes count as opaque payload (reassembly
    happens at the tunnel endpoint).  Byte conservation:
    total payload bytes are preserved, one extra header per extra
    fragment. *)

val extra_bytes : mtu:int -> int -> int
(** Overhead bytes added by fragmentation of a packet of the given
    size: (count - 1) * header size. *)

val reassemble : Packet.t list -> Packet.t option
(** Tunnel-endpoint reassembly, the inverse of {!fragments} at the
    byte level: a single fragment is returned as-is (structure
    preserved, so [fragments |> reassemble] is the identity on packets
    that fit the MTU); several fragments sharing a header merge into
    one plain packet carrying their summed payload bytes — the inner
    structure of an encapsulated original is opaque to fragmentation,
    so only sizes round-trip, which is all the model tracks.  [None]
    on an empty list or fragments with differing headers (they cannot
    belong to the same original). *)
