type stats = { messages : int; convergence_time : float }
type result = { tables : Netgraph.Routing.table array; stats : stats }

let converge ?(link_delay = 1.0) ?(jitter_seed = 7) topo =
  let g = topo.Netgraph.Topology.graph in
  let n = Netgraph.Graph.node_count g in
  let rng = Stdx.Rng.create jitter_seed in
  let routers =
    Array.init n (fun i ->
        let neighbors =
          List.map (fun { Netgraph.Graph.dst; cost } -> (dst, cost)) (Netgraph.Graph.neighbors g i)
        in
        Router.create ~id:i ~neighbors)
  in
  let engine = Dess.Engine.create () in
  let messages = ref 0 in
  (* Flood [lsa] from [node] to all neighbours except [except]. *)
  let rec flood node ~except lsa =
    List.iter
      (fun { Netgraph.Graph.dst; _ } ->
        if dst <> except then begin
          incr messages;
          ignore
            (Dess.Engine.schedule engine ~delay:link_delay (fun _ ->
                 deliver dst ~from:node lsa))
        end)
      (Netgraph.Graph.neighbors g node)
  and deliver node ~from lsa =
    if Router.install routers.(node) lsa then flood node ~except:from lsa
  in
  (* Jittered origination wakes routers asynchronously. *)
  for i = 0 to n - 1 do
    let jitter = Stdx.Rng.float rng 0.5 in
    ignore
      (Dess.Engine.schedule engine ~delay:jitter (fun _ ->
           let lsa = Router.originate routers.(i) in
           flood i ~except:i lsa))
  done;
  Dess.Engine.run engine;
  let tables = Array.map (fun r -> Router.spf r ~node_count:n) routers in
  {
    tables;
    stats = { messages = !messages; convergence_time = Dess.Engine.now engine };
  }
