type verdict = {
  ok : bool;
  max_abs : float;
  max_rel : float;
  worst : int;
  detail : string;
}

let compare ?(abs_tol = 1e-9) ?(rel_tol = 1e-9) ~expected ~observed () =
  if Array.length expected <> Array.length observed then
    {
      ok = false;
      max_abs = infinity;
      max_rel = infinity;
      worst = -1;
      detail =
        Printf.sprintf "length mismatch: expected %d entries, observed %d"
          (Array.length expected) (Array.length observed);
    }
  else begin
    let max_abs = ref 0.0 and max_rel = ref 0.0 and worst = ref (-1) in
    Array.iteri
      (fun i e ->
        let o = observed.(i) in
        let d = Float.abs (o -. e) in
        let scale = Float.max (Float.abs e) (Float.abs o) in
        let r = if scale = 0.0 then 0.0 else d /. scale in
        if d > !max_abs then begin
          max_abs := d;
          worst := i
        end;
        if r > !max_rel then max_rel := r)
      expected;
    let ok = !max_abs <= abs_tol || !max_rel <= rel_tol in
    let detail =
      if ok then
        Printf.sprintf "agreement within tolerance (max |d|=%g, rel %g)"
          !max_abs !max_rel
      else
        Printf.sprintf
          "disagreement at entry %d: expected %g, observed %g (max |d|=%g, \
           rel %g)"
          !worst
          (if !worst >= 0 then expected.(!worst) else nan)
          (if !worst >= 0 then observed.(!worst) else nan)
          !max_abs !max_rel
    in
    { ok; max_abs = !max_abs; max_rel = !max_rel; worst = !worst; detail }
  end
