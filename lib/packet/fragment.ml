let default_mtu = 1500

let check_mtu mtu =
  if mtu < Header.size + 8 then invalid_arg "Fragment: MTU too small"

(* Fragment payload slots are rounded down to 8-byte blocks, as IP
   requires for all fragments but the last. *)
let slot mtu = (mtu - Header.size) / 8 * 8

let count ~mtu size =
  check_mtu mtu;
  if size <= mtu then 1
  else begin
    let payload = size - Header.size in
    let s = slot mtu in
    (payload + s - 1) / s
  end

let fragments ~mtu pkt =
  check_mtu mtu;
  let total = Packet.size pkt in
  if total <= mtu then [ pkt ]
  else begin
    let payload = total - Header.size in
    let s = slot mtu in
    let rec build remaining acc =
      if remaining <= 0 then List.rev acc
      else begin
        let take = min s remaining in
        let frag = Packet.plain pkt.Packet.header ~payload_bytes:take in
        build (remaining - take) (frag :: acc)
      end
    in
    build payload []
  end

let extra_bytes ~mtu size = (count ~mtu size - 1) * Header.size

let reassemble = function
  | [] -> None
  | [ p ] -> Some p
  | first :: _ as frags ->
    if
      List.exists (fun (f : Packet.t) -> f.Packet.header <> first.Packet.header)
        frags
    then None
    else
      let payload =
        List.fold_left
          (fun acc f -> acc + (Packet.size f - Header.size))
          0 frags
      in
      Some (Packet.plain first.Packet.header ~payload_bytes:payload)
