(** Waxman random topology (Sec. IV.A).

    "The number of edge routers is set to 400, and the number of core
    routers is set to 25, each of which is connected to an equal number
    of edge routers.  The core routers are interconnected based on the
    Waxman model, in which each router is assigned a pair of
    coordinates in a 100-by-100 region at random and the connection
    between two routers is probabilistically established with a
    distribution exponentially decreasing in their distance.  The
    number of links from each core router to other core routers is set
    to 4."

    We realise this as: place the cores uniformly at random in the
    region; each core draws neighbours (without replacement) with
    probability proportional to [exp (-d / (beta * l_max))] until it
    has [core_degree] links; a spanning pass afterwards guarantees
    connectivity.  Edge routers are split evenly across cores,
    single-homed.  All link costs are 1. *)

type params = {
  cores : int;          (** default 25 *)
  edges : int;          (** default 400; must be a multiple of [cores] *)
  core_degree : int;    (** target core-core links per core; default 4 *)
  region : float;       (** side of the square region; default 100. *)
  beta : float;         (** Waxman locality parameter; default 0.4 *)
}

val default_params : params

val generate : ?params:params -> seed:int -> unit -> Topology.t
(** Node numbering: cores first, then edge routers (no gateways in this
    topology, matching the paper's description). *)
