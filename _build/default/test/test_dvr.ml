(* Tests for the distance-vector (EIGRP-style) routing substrate. *)

let test_router_self_route () =
  let r = Dvr.Router.create ~id:3 ~neighbors:[ (1, 1.0) ] in
  let d = Dvr.Router.distances r ~node_count:5 in
  Alcotest.(check (float 1e-9)) "self" 0.0 d.(3);
  Alcotest.(check bool) "others unknown" true (d.(0) = infinity)

let test_router_adopts_better () =
  let r = Dvr.Router.create ~id:0 ~neighbors:[ (1, 1.0); (2, 5.0) ] in
  Alcotest.(check bool) "first news" true
    (Dvr.Router.receive r { Dvr.Router.from = 2; entries = [ (9, 1.0) ] });
  Alcotest.(check bool) "better path" true
    (Dvr.Router.receive r { Dvr.Router.from = 1; entries = [ (9, 2.0) ] });
  let d = Dvr.Router.distances r ~node_count:10 in
  Alcotest.(check (float 1e-9)) "via 1" 3.0 d.(9);
  Alcotest.(check bool) "worse news from other neighbor ignored" false
    (Dvr.Router.receive r { Dvr.Router.from = 2; entries = [ (9, 1.0) ] })

let test_router_poisoned_reverse () =
  let r = Dvr.Router.create ~id:0 ~neighbors:[ (1, 1.0) ] in
  ignore (Dvr.Router.receive r { Dvr.Router.from = 1; entries = [ (9, 1.0) ] });
  let adv = Dvr.Router.advertisement_for r ~neighbor:1 in
  (* The route to 9 goes via 1, so it must be poisoned back to 1. *)
  Alcotest.(check bool) "poisoned" true (List.assoc 9 adv.Dvr.Router.entries = infinity);
  (* But advertised normally to another neighbour... which we model by
     asking for the vector as seen from a hypothetical neighbour 2. *)
  let adv2 = Dvr.Router.advertisement_for r ~neighbor:2 in
  Alcotest.(check (float 1e-9)) "unpoisoned" 2.0 (List.assoc 9 adv2.Dvr.Router.entries)

let test_router_rejects_stranger () =
  let r = Dvr.Router.create ~id:0 ~neighbors:[ (1, 1.0) ] in
  Alcotest.check_raises "stranger"
    (Invalid_argument "Dvr.Router.receive: advertisement from a non-neighbor")
    (fun () ->
      ignore (Dvr.Router.receive r { Dvr.Router.from = 7; entries = [] }))

let check_distances topo =
  let g = topo.Netgraph.Topology.graph in
  let n = Netgraph.Graph.node_count g in
  let result = Dvr.Protocol.converge topo in
  for src = 0 to n - 1 do
    let oracle = (Netgraph.Dijkstra.run g src).Netgraph.Dijkstra.dist in
    for dst = 0 to n - 1 do
      if abs_float (result.Dvr.Protocol.distances.(src).(dst) -. oracle.(dst)) > 1e-6
      then
        Alcotest.failf "distance %d->%d: dv %f oracle %f" src dst
          result.Dvr.Protocol.distances.(src).(dst) oracle.(dst)
    done
  done;
  (* Every hop-by-hop walk must realise an optimal path. *)
  for src = 0 to n - 1 do
    let oracle = (Netgraph.Dijkstra.run g src).Netgraph.Dijkstra.dist in
    for dst = 0 to n - 1 do
      let path = Netgraph.Routing.walk result.Dvr.Protocol.tables ~src ~dst in
      let rec cost = function
        | a :: (b :: _ as rest) -> Option.get (Netgraph.Graph.cost g a b) +. cost rest
        | [ _ ] | [] -> 0.0
      in
      if abs_float (cost path -. oracle.(dst)) > 1e-6 then
        Alcotest.failf "walk %d->%d costs %f, optimal %f" src dst (cost path)
          oracle.(dst)
    done
  done

let test_converge_campus () =
  check_distances (Netgraph.Campus.generate ~seed:3 ())

let test_converge_line () =
  let g = Netgraph.Graph.create 20 in
  for i = 0 to 18 do
    Netgraph.Graph.add_edge g i (i + 1) 1.0
  done;
  let topo =
    Netgraph.Topology.make ~name:"line" ~graph:g
      ~roles:(Array.make 20 Netgraph.Topology.Core)
  in
  check_distances topo

let qcheck_converge_random =
  QCheck.Test.make ~count:15 ~name:"dv distances = dijkstra on random graphs"
    QCheck.(make Gen.(pair (int_range 3 15) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Stdx.Rng.create seed in
      let topo =
        Netgraph.Random_graph.topology ~rng ~nodes:n ~extra_edges:0 ()
      in
      let g = topo.Netgraph.Topology.graph in
      let result = Dvr.Protocol.converge ~jitter_seed:seed topo in
      let ok = ref true in
      for src = 0 to n - 1 do
        let oracle = (Netgraph.Dijkstra.run g src).Netgraph.Dijkstra.dist in
        for dst = 0 to n - 1 do
          if abs_float (result.Dvr.Protocol.distances.(src).(dst) -. oracle.(dst)) > 1e-6
          then ok := false
        done
      done;
      !ok)

let test_messages_bounded () =
  let topo = Netgraph.Campus.generate ~seed:5 () in
  let result = Dvr.Protocol.converge topo in
  let g = topo.Netgraph.Topology.graph in
  let budget = 40 * Netgraph.Graph.edge_count g * 4 in
  Alcotest.(check bool) "triggered updates stay polynomial" true
    (result.Dvr.Protocol.stats.Dvr.Protocol.messages < budget)

let suite =
  [
    Alcotest.test_case "self route" `Quick test_router_self_route;
    Alcotest.test_case "adopts better routes" `Quick test_router_adopts_better;
    Alcotest.test_case "poisoned reverse" `Quick test_router_poisoned_reverse;
    Alcotest.test_case "rejects stranger" `Quick test_router_rejects_stranger;
    Alcotest.test_case "converge campus" `Quick test_converge_campus;
    Alcotest.test_case "converge 20-node line" `Quick test_converge_line;
    QCheck_alcotest.to_alcotest qcheck_converge_random;
    Alcotest.test_case "message budget" `Quick test_messages_bounded;
  ]
