type kind =
  | Hot_potato
  | Random_uniform
  | Load_balanced of Measurement.t
  | Load_balanced_exact of Measurement.t

type t = {
  deployment : Deployment.t;
  candidates : Candidate.t;
  rules : Policy.Rule.t list;
  strategy : Strategy.t;
  lp : Lp_formulation.result option;
  k : Policy.Action.nf -> int;
}

let default_k = function
  | Policy.Action.FW | Policy.Action.IDS -> 4
  | Policy.Action.WP | Policy.Action.TM | Policy.Action.Custom _ -> 2

let referenced_functions rules =
  List.concat_map (fun r -> r.Policy.Rule.actions) rules
  |> List.sort_uniq Policy.Action.compare_nf

let configure deployment ~rules ?(k = default_k) ?(failed = []) kind =
  let missing =
    List.filter
      (fun nf -> Deployment.middleboxes_of deployment nf = [])
      (referenced_functions rules)
  in
  if missing <> [] then
    Error
      (Printf.sprintf "no middlebox implements: %s"
         (String.concat ", " (List.map Policy.Action.nf_to_string missing)))
  else begin
    match Candidate.compute ~exclude:failed deployment ~k with
    | exception Invalid_argument e -> Error e
    | candidates ->
    (
    match kind with
    | Hot_potato ->
      Ok
        { deployment; candidates; rules; strategy = Strategy.Hot_potato;
          lp = None; k }
    | Random_uniform ->
      Ok
        { deployment; candidates; rules; strategy = Strategy.Random_uniform;
          lp = None; k }
    | Load_balanced traffic -> (
      match Lp_formulation.solve_simplified candidates ~rules ~traffic () with
      | Error e -> Error e
      | Ok lp ->
        Ok
          {
            deployment;
            candidates;
            rules;
            strategy = Strategy.Load_balanced lp.Lp_formulation.weights;
            lp = Some lp;
            k;
          })
    | Load_balanced_exact traffic -> (
      match Lp_formulation.solve_exact candidates ~rules ~traffic () with
      | Error e -> Error e
      | Ok lp ->
        let sd =
          (* solve_exact always tags commodities; an empty measurement
             legitimately yields no rows. *)
          Option.value ~default:(Weights_sd.create ())
            lp.Lp_formulation.weights_sd
        in
        Ok
          {
            deployment;
            candidates;
            rules;
            strategy =
              Strategy.Load_balanced_exact (sd, lp.Lp_formulation.weights);
            lp = Some lp;
            k;
          }))
  end

let reoptimize t ?(failed = []) ?(use_warm = false) ~traffic () =
  (* The live controller's reaction to measurements and detected
     failures (Sec. III.C): rebuild candidate sets around the failed
     boxes and re-solve the placement from the traffic observed so
     far.  Whatever the initial strategy, re-optimization produces a
     load-balanced plan — that is the whole point of measuring — with
     the exact formulation preserved when it was chosen initially.

     With [use_warm], the re-optimization is incremental end to end:
     candidate sets are patched from the previous configuration's
     ranked lists instead of recomputed ([Candidate.with_excluded]),
     and the LP warm-starts from the previous plan's basis.  The
     patched sets are provably equal to a rebuild and the warm solve
     is an optimum the cold solve would also reach, so only pivot
     counts — never feasibility or the objective — depend on the
     flag.  [use_warm = false] is the cold path, bit-identical to
     builds without warm-start support. *)
  if not use_warm then
    let kind =
      match t.strategy with
      | Strategy.Load_balanced_exact _ -> Load_balanced_exact traffic
      | Strategy.Hot_potato | Strategy.Random_uniform
      | Strategy.Load_balanced _ ->
        Load_balanced traffic
    in
    configure t.deployment ~rules:t.rules ~k:t.k ~failed kind
  else begin
    match Candidate.with_excluded t.candidates failed with
    | Error e -> Error e
    | Ok candidates -> (
      let warm = Option.bind t.lp (fun lp -> lp.Lp_formulation.lp_snapshot) in
      match t.strategy with
      | Strategy.Load_balanced_exact _ -> (
        match
          Lp_formulation.solve_exact candidates ~rules:t.rules ~traffic ?warm ()
        with
        | Error e -> Error e
        | Ok lp ->
          let sd =
            Option.value ~default:(Weights_sd.create ())
              lp.Lp_formulation.weights_sd
          in
          Ok
            {
              t with
              candidates;
              strategy =
                Strategy.Load_balanced_exact (sd, lp.Lp_formulation.weights);
              lp = Some lp;
            })
      | Strategy.Hot_potato | Strategy.Random_uniform
      | Strategy.Load_balanced _ -> (
        match
          Lp_formulation.solve_simplified candidates ~rules:t.rules ~traffic
            ?warm ()
        with
        | Error e -> Error e
        | Ok lp ->
          Ok
            {
              t with
              candidates;
              strategy = Strategy.Load_balanced lp.Lp_formulation.weights;
              lp = Some lp;
            }))
  end

let policy_table_for t = function
  | Mbox.Entity.Proxy i ->
    Policy.Rule.relevant_to_subnet t.rules (Deployment.subnet_of t.deployment i)
  | Mbox.Entity.Middlebox i ->
    Policy.Rule.relevant_to_function t.rules
      t.deployment.Deployment.middleboxes.(i).Mbox.Middlebox.nf

let next_hop_result ?alive t entity ~rule ~nf flow =
  Strategy.next_hop_result ?alive t.strategy t.candidates entity ~rule ~nf flow

let next_hop ?alive t entity ~rule ~nf flow =
  Strategy.next_hop ?alive t.strategy t.candidates entity ~rule ~nf flow

type config_summary = {
  entities : int;
  policy_rows : int;
  candidate_entries : int;
  weight_rows : int;
  weight_cells : int;
}

let config_summary t =
  let all_entities =
    List.init (Array.length t.deployment.Deployment.proxies) (fun i ->
        Mbox.Entity.Proxy i)
    @ List.init (Array.length t.deployment.Deployment.middleboxes) (fun i ->
          Mbox.Entity.Middlebox i)
  in
  let policy_rows =
    List.fold_left
      (fun acc e -> acc + List.length (policy_table_for t e))
      0 all_entities
  in
  let candidate_entries =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc nf ->
            match Candidate.get t.candidates e nf with
            | members -> acc + List.length members
            | exception Invalid_argument _ -> acc (* own function *)
            | exception Not_found -> acc)
          acc
          (Deployment.functions t.deployment))
      0 all_entities
  in
  let weight_rows, weight_cells =
    match t.strategy with
    | Strategy.Load_balanced w -> (Weights.entries w, Weights.cells w)
    | Strategy.Load_balanced_exact (sd, fallback) ->
      ( Weights_sd.entries sd + Weights.entries fallback,
        Weights_sd.cells sd + Weights.cells fallback )
    | Strategy.Hot_potato | Strategy.Random_uniform -> (0, 0)
  in
  {
    entities = List.length all_entities;
    policy_rows;
    candidate_entries;
    weight_rows;
    weight_cells;
  }

let pp_config_summary ppf s =
  Format.fprintf ppf
    "%d entities; %d policy rows; %d candidate entries; %d weight rows (%d \
     values)"
    s.entities s.policy_rows s.candidate_entries s.weight_rows s.weight_cells

let fingerprint t =
  (* FNV-1a over the configuration's content-bearing parts: strategy
     kind, dissemination summary, rule ids, and — for load-balanced
     plans — the LP's objective and predicted per-middlebox loads.
     Purely structural (no closures, no addresses), so equal
     configurations hash equally in any run, domain, or process. *)
  let h = ref 0xcbf29ce484222325L in
  let mix64 v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  let mix i = mix64 (Int64.of_int i) in
  let mixf x = mix64 (Int64.bits_of_float x) in
  mix
    (match t.strategy with
    | Strategy.Hot_potato -> 1
    | Strategy.Random_uniform -> 2
    | Strategy.Load_balanced _ -> 3
    | Strategy.Load_balanced_exact _ -> 4);
  let s = config_summary t in
  mix s.entities;
  mix s.policy_rows;
  mix s.candidate_entries;
  mix s.weight_rows;
  mix s.weight_cells;
  List.iter (fun r -> mix r.Policy.Rule.id) t.rules;
  (match t.lp with
  | None -> mix 0
  | Some lp ->
    mixf lp.Lp_formulation.lambda;
    Array.iter mixf lp.Lp_formulation.loads);
  !h

let closest t entity nf = Candidate.closest t.candidates entity nf

type update_delta = {
  controller : t;
  entities_touched : int;
  rows_added : int;
  rows_removed : int;
}

let update_rules t ~rules kind =
  match configure t.deployment ~rules ~k:t.k kind with
  | Error e -> Error e
  | Ok controller ->
    let all_entities =
      List.init (Array.length t.deployment.Deployment.proxies) (fun i ->
          Mbox.Entity.Proxy i)
      @ List.init (Array.length t.deployment.Deployment.middleboxes) (fun i ->
            Mbox.Entity.Middlebox i)
    in
    let touched = ref 0 and added = ref 0 and removed = ref 0 in
    List.iter
      (fun entity ->
        (* Diff the entity's table by rule identity (id + content):
           ids are positional, so a pure insertion shifts later ids and
           honestly counts as re-pushing them — first-match order is
           part of each row's meaning. *)
        let key r = (r.Policy.Rule.id, r.Policy.Rule.descriptor, r.Policy.Rule.actions) in
        let before = List.map key (policy_table_for t entity) in
        let after = List.map key (policy_table_for controller entity) in
        let plus = List.filter (fun r -> not (List.mem r before)) after in
        let minus = List.filter (fun r -> not (List.mem r after)) before in
        if plus <> [] || minus <> [] then begin
          incr touched;
          added := !added + List.length plus;
          removed := !removed + List.length minus
        end)
      all_entities;
    Ok
      {
        controller;
        entities_touched = !touched;
        rows_added = !added;
        rows_removed = !removed;
      }
