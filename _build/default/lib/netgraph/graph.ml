type edge = { dst : int; cost : float }

type t = {
  n : int;
  adj : edge list array; (* reversed insertion order; normalised in [neighbors] *)
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { n; adj = Array.make n []; m = 0 }

let node_count t = t.n
let edge_count t = t.m

let check_node t u =
  if u < 0 || u >= t.n then invalid_arg "Graph: node id out of range"

let has_edge t u v =
  check_node t u;
  check_node t v;
  List.exists (fun e -> e.dst = v) t.adj.(u)

let add_edge t u v cost =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if cost <= 0.0 then invalid_arg "Graph.add_edge: non-positive cost";
  if has_edge t u v then invalid_arg "Graph.add_edge: duplicate edge";
  t.adj.(u) <- { dst = v; cost } :: t.adj.(u);
  t.adj.(v) <- { dst = u; cost } :: t.adj.(v);
  t.m <- t.m + 1

let cost t u v =
  check_node t u;
  check_node t v;
  List.find_map (fun e -> if e.dst = v then Some e.cost else None) t.adj.(u)

let neighbors t u =
  check_node t u;
  List.rev t.adj.(u)

let degree t u =
  check_node t u;
  List.length t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun e -> if u < e.dst then acc := (u, e.dst, e.cost) :: !acc) t.adj.(u)
  done;
  !acc

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        List.iter
          (fun e ->
            if not seen.(e.dst) then begin
              seen.(e.dst) <- true;
              incr count;
              stack := e.dst :: !stack
            end)
          t.adj.(u)
    done;
    !count = t.n
  end

let pp ppf t =
  Format.fprintf ppf "graph(%d nodes, %d edges)" t.n t.m
