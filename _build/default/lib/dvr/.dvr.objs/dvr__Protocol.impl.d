lib/dvr/protocol.ml: Array Dess List Netgraph Router Stdx
