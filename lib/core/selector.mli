(** Hash-based probabilistic next-hop selection (Sec. III.C).

    "x hashes the flow identifier of the packet … Let r be the hash
    output in the range [0, N).  Middlebox y_i will be selected if
    Σ_{j<i} t/Σ t ≤ r/N < Σ_{j≤i} t/Σ t."  Hashing rather than random
    drawing keeps every packet of a flow on the same middlebox.

    The hash is salted with the deciding entity and the function being
    sought so the per-hop selections of one flow are independent. *)

val flow_point :
  Netpkt.Flow.t -> entity:Mbox.Entity.t -> nf:Policy.Action.nf -> float
(** Deterministic value in [0,1) — the paper's r/N. *)

val pick : (int * float) array -> u:float -> int option
(** Cumulative-bucket selection: [pick row ~u] returns the id whose
    bucket contains [u], or [None] when all weights are zero (caller
    falls back to hot-potato).  Raises [Invalid_argument] if [u] is
    outside [0,1) or a weight is negative. *)

val pick_uniform : 'a list -> u:float -> 'a
(** Uniform selection among candidates (the Rand baseline).
    Raises [Invalid_argument] on an empty list. *)

val flow_key :
  Netpkt.Flow.t -> entity:Mbox.Entity.t -> nf:Policy.Action.nf -> Int64.t
(** The salted flow hash {!flow_point} is derived from, before the
    unit-interval projection — the key {!pick_hrw} consumes. *)

val pick_hrw : (int * float) array -> key:Int64.t -> int option
(** Weighted rendezvous (highest-random-weight) selection: every
    candidate id scores [-w / ln(hash(key, id))] and the highest score
    wins.  Same contract as {!pick} — [None] when all weights are
    zero, [Invalid_argument] on a negative weight, selection
    frequencies proportional to the weights — but the choice is
    independent of row order, and removing a losing candidate never
    reshuffles the winners (minimal-disruption failover, unlike the
    cumulative buckets of {!pick} which shift on any row change). *)
