lib/netgraph/routing.ml: Array Dijkstra Graph List
