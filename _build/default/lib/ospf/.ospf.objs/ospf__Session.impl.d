lib/ospf/session.ml: Array Dess List Netgraph Option Router Stdx
