lib/stdx/count_min.ml: Array Xhash
