type event = { time : float; seq : int; id : int; action : t -> unit }

and t = {
  queue : event Stdx.Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable next_id : int;
  mutable processed : int;
}

type handle = int

let cmp a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  {
    queue = Stdx.Heap.create ~cmp;
    cancelled = Hashtbl.create 64;
    clock = 0.0;
    next_seq = 0;
    next_id = 0;
    processed = 0;
  }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Stdx.Heap.push t.queue { time; seq; id; action };
  id

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t handle = Hashtbl.replace t.cancelled handle ()

let pending t = Stdx.Heap.length t.queue

(* Pop until a live event is found; cancelled entries are discarded
   lazily here. *)
let rec next_live t =
  match Stdx.Heap.pop t.queue with
  | None -> None
  | Some ev ->
    if Hashtbl.mem t.cancelled ev.id then begin
      Hashtbl.remove t.cancelled ev.id;
      next_live t
    end
    else Some ev

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.action t;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match next_live t with
      | None -> continue := false
      | Some ev ->
        if ev.time > horizon then begin
          (* Too far in the future: push it back untouched. *)
          Stdx.Heap.push t.queue ev;
          continue := false
        end
        else begin
          t.clock <- ev.time;
          t.processed <- t.processed + 1;
          ev.action t
        end
    done

let events_processed t = t.processed

(* Every schedule consumes one sequence number, so [next_seq] is the
   lifetime schedule count. *)
let events_scheduled t = t.next_seq
