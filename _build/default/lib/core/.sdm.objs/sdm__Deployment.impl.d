lib/core/deployment.ml: Array Hashtbl List Mbox Netgraph Netpkt Policy Stdx
