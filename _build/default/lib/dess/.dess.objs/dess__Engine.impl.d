lib/dess/engine.ml: Hashtbl Stdx
