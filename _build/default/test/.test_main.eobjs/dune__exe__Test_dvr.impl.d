test/test_dvr.ml: Alcotest Array Dvr Gen List Netgraph Option QCheck QCheck_alcotest Stdx
