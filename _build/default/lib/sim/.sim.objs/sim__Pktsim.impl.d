lib/sim/pktsim.ml: Array Dess Dvr Hashtbl List Mbox Netgraph Netpkt Option Ospf Policy Sdm Stdlib Stdx Workload
