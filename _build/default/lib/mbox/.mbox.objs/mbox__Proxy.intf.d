lib/mbox/proxy.mli: Format Netpkt
