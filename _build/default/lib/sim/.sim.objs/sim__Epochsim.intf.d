lib/sim/epochsim.mli: Sdm
