(* Live reconfiguration: the controller inside the simulation.

   A narrative for the live control plane: start the campus deployment
   on a deliberately bad plan (hot-potato), enable in-run
   re-optimization, and let the simulated controller measure traffic,
   re-solve the placement at epoch boundaries, and push versioned
   configurations to every proxy and middlebox over a 10%-lossy
   control channel.  Pushes are acked and retried with exponential
   backoff, a reconciliation loop re-pushes to stale devices, and
   every published version is certified mixed-version-safe against its
   predecessor before any device sees it — so in-flight flows crossing
   an update boundary never strand mid-chain.

     dune exec examples/live_reconfiguration.exe *)

let () =
  let deployment = Sim.Experiment.build_deployment Sim.Experiment.Campus ~seed:17 in
  let workload = Sim.Workload.generate ~deployment ~seed:17 ~flows:400 () in
  let rules = workload.Sim.Workload.rules in
  let traffic = Sim.Workload.measure workload in
  let configure kind =
    match Sdm.Controller.configure deployment ~rules kind with
    | Ok c -> c
    | Error e -> failwith e
  in
  let hp = configure Sdm.Controller.Hot_potato in
  let lb = configure (Sdm.Controller.Load_balanced traffic) in
  let max_load (s : Sim.Pktsim.stats) =
    Array.fold_left Stdlib.max 0.0 s.Sim.Pktsim.loads
  in

  (* Two static baselines bracket what the live loop can achieve. *)
  let stale = Sim.Pktsim.run ~controller:hp ~workload () in
  let clairvoyant = Sim.Pktsim.run ~controller:lb ~workload () in
  Format.printf
    "static hot-potato (stale plan):  busiest middlebox %.0f packets@."
    (max_load stale);
  Format.printf
    "static load-balanced (oracle):   busiest middlebox %.0f packets@.@."
    (max_load clairvoyant);

  (* Same workload, same stale starting plan — but now the controller
     lives inside the run, re-optimizing from what the proxies have
     measured so far, over a control channel that drops 10% of
     everything. *)
  let live =
    {
      Sim.Pktsim.default_live with
      epoch_interval = stale.Sim.Pktsim.sim_time /. 5.0;
      reconcile_interval = stale.Sim.Pktsim.sim_time /. 20.0;
    }
  in
  let faults = Fault.Schedule.make ~control_loss:0.10 ~loss_seed:23 [] in
  let stats =
    Sim.Pktsim.run
      ~config:
        {
          Sim.Pktsim.default_config with
          faults = Some faults;
          live = Some live;
        }
      ~controller:hp ~workload ()
  in
  Format.printf
    "live (epoch %.0f, 10%% control loss): busiest middlebox %.0f packets@.@."
    live.Sim.Pktsim.epoch_interval (max_load stats);
  Format.printf
    "versions published %d; pushes %d (acks %d, lost %d, %d bytes); \
     degradations %d@."
    stats.Sim.Pktsim.final_config_version stats.Sim.Pktsim.config_pushes
    stats.Sim.Pktsim.config_acks stats.Sim.Pktsim.config_lost
    stats.Sim.Pktsim.config_bytes stats.Sim.Pktsim.config_degraded;
  let n = Array.length stats.Sim.Pktsim.entity_config_version in
  let converged =
    Array.for_all
      (fun v -> v = stats.Sim.Pktsim.final_config_version)
      stats.Sim.Pktsim.entity_config_version
  in
  Format.printf "devices at final version: %s (%d managed, %d stale)@.@."
    (if converged then "all" else "NOT all")
    n stats.Sim.Pktsim.stale_devices;

  (* The robustness story, asserted. *)
  (* 1. The loop actually reconfigured, and the retried, reconciled
     pushes beat 10% loss: every device ends on the final version. *)
  assert (stats.Sim.Pktsim.final_config_version > 0);
  assert (converged && stats.Sim.Pktsim.stale_devices = 0);
  (* 2. Mixed-version safety: no packet of an enforced flow escaped
     its chain while configurations changed underneath it. *)
  assert (stats.Sim.Pktsim.policy_violations = 0);
  (* 3. Packet conservation across the update churn. *)
  assert (
    stats.Sim.Pktsim.delivered_packets + stats.Sim.Pktsim.dropped_packets
    = stats.Sim.Pktsim.injected_packets);
  (* 4. Measurement-driven re-optimization moved the busiest box off
     the hot-potato pile-up, toward (not past) the clairvoyant plan. *)
  assert (max_load stats < max_load stale);
  assert (max_load stats >= max_load clairvoyant -. 1e-9);
  (* 5. Determinism: same seed, same loss draws, bit-identical stats. *)
  let again =
    Sim.Pktsim.run
      ~config:
        {
          Sim.Pktsim.default_config with
          faults = Some faults;
          live = Some live;
        }
      ~controller:hp ~workload ()
  in
  assert (
    { again with Sim.Pktsim.loads = [||] } = { stats with Sim.Pktsim.loads = [||] }
    && again.Sim.Pktsim.loads = stats.Sim.Pktsim.loads);

  Format.printf
    "all invariants hold: convergence under loss, zero mixed-version \
     violations, deterministic replay@."
