(** Single-source shortest paths (Dijkstra).

    Deterministic tie-breaking: among equal-cost paths the one whose
    predecessor has the smaller node id wins, mirroring the
    lowest-router-id convention that makes an OSPF network's ECMP
    choice reproducible.  This guarantees that the distributed OSPF
    implementation and this global oracle compute identical routing
    tables (an integration test relies on it). *)

type tree = {
  source : int;
  dist : float array;   (** [infinity] if unreachable *)
  prev : int array;     (** predecessor on the chosen path, [-1] at source / unreachable *)
}

val run : Graph.t -> int -> tree

val path : tree -> int -> int list option
(** Node sequence from the source to the given destination, inclusive;
    [None] if unreachable. *)

val distance : tree -> int -> float option

val all_pairs : Graph.t -> float array array
(** [all_pairs g] runs Dijkstra from every node; [result.(u).(v)] is the
    shortest-path cost ([infinity] if disconnected). *)

val first_hop : tree -> int -> int option
(** First node after the source on the path to the destination. *)
