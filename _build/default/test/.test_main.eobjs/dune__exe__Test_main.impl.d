test/test_main.ml: Alcotest Test_dess Test_dvr Test_lp Test_mbox Test_netgraph Test_ospf Test_packet Test_policy Test_report Test_sdm Test_sim Test_stdx
