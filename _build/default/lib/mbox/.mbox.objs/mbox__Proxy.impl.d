lib/mbox/proxy.ml: Format Netpkt
