lib/netgraph/bellman_ford.mli: Graph
