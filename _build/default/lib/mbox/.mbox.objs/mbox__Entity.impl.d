lib/mbox/entity.ml: Format Printf Stdlib
